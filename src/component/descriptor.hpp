#pragma once

#include <string>

#include "component/deployment.hpp"
#include "net/topology.hpp"

namespace mutsvc::comp {

/// The "(extended) deployment descriptor" of §5, as a concrete artifact:
/// a declarative text format capturing placement, features, read-only
/// replication, query caches, entry points and consistency parameters.
/// An application deployer edits this; the container runtime realizes it.
///
/// Format (``#`` comments, blank lines ignored)::
///
///   main-server: main-as
///   edge-servers: edge-as-1, edge-as-2
///   features: remote-facade, stub-caching
///   query-refresh: push
///   staleness-bound: 0
///
///   [placement]
///   Catalog: main-as, edge-as-1, edge-as-2
///
///   [read-only-replicas]
///   Item: edge-as-1, edge-as-2
///
///   [query-caches]
///   edge-as-1, edge-as-2
///
///   [entry-points]
///   clients-main: main-as
[[nodiscard]] std::string serialize_descriptor(const DeploymentPlan& plan,
                                               const net::Topology& topo);

/// Parses a descriptor against a topology (node names must resolve).
/// Throws std::invalid_argument on malformed input or unknown names.
[[nodiscard]] DeploymentPlan parse_descriptor(const std::string& text,
                                              const net::Topology& topo);

/// Feature name round-trip helpers.
[[nodiscard]] Feature feature_from_string(const std::string& name);
[[nodiscard]] QueryRefreshMode refresh_from_string(const std::string& name);

}  // namespace mutsvc::comp

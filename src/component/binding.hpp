#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "component/deployment.hpp"
#include "net/types.hpp"
#include "sim/time.hpp"

namespace mutsvc::comp {

/// Versioned runtime component-location bindings (DESIGN §17).
///
/// The RAFDA position: distribution decisions are *data consulted at call
/// time*, not topology baked in at build time. Each logical component may
/// carry a runtime binding that overrides the static DeploymentPlan; the
/// dispatch path asks this table instead of the plan whenever a table is
/// installed. A component with no binding resolves through the plan with
/// exactly the plan's own rule (co-located replica, else primary), so an
/// installed-but-never-flipped table is indistinguishable — byte for byte —
/// from the static path.
///
/// Visibility model: a flip carries a `flip_at` instant and a small set of
/// `participants` (the migration's own sites, which learned of the flip
/// synchronously inside the protocol). Participants see the new binding at
/// `flip_at`; every other node sees it at `flip_at + notify_delay`, modeling
/// the asynchronous fan-out of a name-service update *as a pure time offset*
/// — no events are scheduled, so an unconsulted table costs nothing. During
/// the visibility window, stale views route to the old site, whose runtime
/// forwards stragglers to the new authority for one forwarding epoch.
/// Termination of forwarding is guaranteed by construction: the migration
/// manager validates notify_delay < forward_epoch, so every view has
/// converged before the old site stops forwarding.
///
/// Staged rollout: a flip may first be staged as a *canary*, routing a
/// configurable fraction of sessions (chosen by a deterministic hash of the
/// session key — no RNG draws, sticky per session) to the new location while
/// the rest stay on the old binding. Promotion turns the canary into a full
/// flip; cancellation drops it. Every mutation bumps the binding's version,
/// which is strictly monotone per component (asserted by the migration
/// property battery).
class BindingTable {
 public:
  struct Binding {
    /// Authoritative location set after the flip; first entry is the
    /// primary (same convention as DeploymentPlan placements).
    std::vector<net::NodeId> nodes;
    /// Pre-flip location set, served to views that have not converged yet.
    std::vector<net::NodeId> prev_nodes;
    /// Strictly monotone per component; bumped by every mutation.
    std::uint64_t version = 0;
    /// Instant the current `nodes` became authoritative.
    sim::SimTime flip_at;
    /// Visibility lag for non-participant nodes.
    sim::Duration notify_delay;
    /// Nodes that see the flip at flip_at exactly (migration participants).
    std::vector<net::NodeId> participants;
    /// Staged rollout: while canary_fraction > 0, sessions hashing under
    /// the fraction route to canary_nodes instead of `nodes`.
    std::vector<net::NodeId> canary_nodes;
    double canary_fraction = 0.0;
  };

  explicit BindingTable(const DeploymentPlan& plan) : plan_(&plan) {}

  /// Where a call from `from` at `now` for session `session_key` should be
  /// dispatched. Unbound components use the plan's rule verbatim.
  [[nodiscard]] net::NodeId resolve(const std::string& component, net::NodeId from,
                                    sim::SimTime now, std::uint64_t session_key) const;

  /// The fully-converged authority for a call that *arrived* at `at`: `at`
  /// itself when the current binding deploys the component there, else the
  /// binding's primary. Unbound components are authoritative wherever the
  /// plan dispatched them. The old site's dispatch path uses this to detect
  /// stragglers routed by a stale view.
  [[nodiscard]] net::NodeId authoritative(const std::string& component, net::NodeId at) const;

  /// True while the old site must forward stragglers for `component`
  /// (within forward_epoch of the last flip).
  [[nodiscard]] bool in_forward_epoch(const std::string& component, sim::SimTime now) const;

  /// Full cutover: `nodes` becomes authoritative at `now`; non-participant
  /// views converge at `now + notify_delay`. Clears any staged canary.
  void flip(const std::string& component, std::vector<net::NodeId> nodes, sim::SimTime now,
            sim::Duration notify_delay, std::vector<net::NodeId> participants);

  /// Stages a canary: `fraction` of sessions route to `nodes`, the rest to
  /// the current binding (or the plan). Throws unless 0 < fraction <= 1.
  void stage_canary(const std::string& component, std::vector<net::NodeId> nodes,
                    double fraction);

  /// Promotes a staged canary to a full flip (see flip for semantics).
  void promote_canary(const std::string& component, sim::SimTime now,
                      sim::Duration notify_delay, std::vector<net::NodeId> participants);

  /// Drops a staged canary; the pre-canary binding stays authoritative.
  void cancel_canary(const std::string& component);

  /// Forwarding-epoch length applied after each flip.
  void set_forward_epoch(sim::Duration epoch) { forward_epoch_ = epoch; }
  [[nodiscard]] sim::Duration forward_epoch() const { return forward_epoch_; }

  /// Binding version for `component`; 0 = unbound (plan-resolved).
  [[nodiscard]] std::uint64_t version(const std::string& component) const;
  /// Largest version across all bindings (0 when nothing is bound).
  [[nodiscard]] std::uint64_t max_version() const;
  [[nodiscard]] const Binding* find(const std::string& component) const;
  [[nodiscard]] std::size_t bound_components() const { return bindings_.size(); }
  [[nodiscard]] std::uint64_t flips() const { return flips_; }

  /// Deterministic canary routing predicate: splitmix64 over
  /// (session_key, component-version salt), compared against the fraction.
  /// Sticky per session, no RNG draws, identical on every replay.
  [[nodiscard]] static bool canary_selects(std::uint64_t session_key, std::uint64_t salt,
                                           double fraction);

 private:
  /// The plan's dispatch rule over an explicit node set.
  [[nodiscard]] static net::NodeId resolve_in(const std::vector<net::NodeId>& nodes,
                                              net::NodeId from);
  [[nodiscard]] static bool contains(const std::vector<net::NodeId>& nodes, net::NodeId n);

  const DeploymentPlan* plan_;
  std::map<std::string, Binding> bindings_;
  sim::Duration forward_epoch_ = sim::sec(5);
  std::uint64_t flips_ = 0;
};

}  // namespace mutsvc::comp

#include "component/migration.hpp"

#include <stdexcept>
#include <utility>

#include "net/flowcontrol.hpp"

namespace mutsvc::comp {

MigrationManager::MigrationManager(sim::Simulator& sim, Runtime& runtime,
                                   BindingTable& bindings, MigrationConfig cfg)
    : sim_(sim), runtime_(runtime), bindings_(bindings), cfg_(cfg) {
  if (cfg_.notify_delay >= cfg_.forward_epoch) {
    // Forwarding terminates because every stale view converges before the
    // old site stops forwarding; an epoch shorter than the visibility lag
    // would strand post-epoch stragglers.
    throw std::invalid_argument(
        "MigrationManager: notify_delay must be shorter than forward_epoch");
  }
  if (cfg_.drain_poll <= sim::Duration::zero()) {
    throw std::invalid_argument("MigrationManager: drain_poll must be positive");
  }
  bindings_.set_forward_epoch(cfg_.forward_epoch);
}

sim::Task<void> MigrationManager::quiesce(const std::vector<std::string>& components) {
  // Close every gate first, then drain: closing up front stops new work on
  // all migrating components before any drain wait begins.
  for (const std::string& comp : components) runtime_.component_gate(comp).close_gate();
  for (const std::string& comp : components) {
    while (runtime_.component_in_flight(comp) > 0) co_await sim_.wait(cfg_.drain_poll);
  }
}

void MigrationManager::reopen(const std::vector<std::string>& components) {
  for (const std::string& comp : components) runtime_.component_gate(comp).open_gate();
}

sim::Task<bool> MigrationManager::migrate(MigrationRequest req) {
  if (in_progress_ || req.from == req.to || req.components.empty()) {
    ++refused_;
    co_return false;
  }
  in_progress_ = true;
  ++started_;
  co_await quiesce(req.components);

  // State transfer. The new site joins the plan membership *before* the
  // snapshot ships: a write committing mid-transfer then pushes to both
  // sites, and the version-monotonic apply_push arbitrates either arrival
  // order — the snapshot can never roll back a concurrent push.
  bool ok = true;
  const bool moves_state = !req.entities.empty() || req.move_query_cache;
  // Memberships this migration *added* (vs. ones the target already held).
  // Rollback must undo only these: stripping a pre-existing membership
  // would silently de-replicate a healthy site and wipe its warm cache.
  std::vector<std::string> added_entities;
  bool added_query_cache = false;
  if (moves_state) {
    for (const std::string& entity : req.entities) {
      if (!runtime_.plan().has_ro_replica(entity, req.to)) {
        runtime_.plan().replicate_read_only(entity, req.to);
        added_entities.push_back(entity);
      }
    }
    if (req.move_query_cache && !runtime_.plan().has_query_cache(req.to)) {
      runtime_.plan().add_query_cache(req.to);
      added_query_cache = true;
    }
    runtime_.ensure_update_subscription(req.to);
    try {
      entries_transferred_ += co_await runtime_.transfer_replica_state(
          req.from, req.to, req.entities, req.move_query_cache);
    } catch (const net::NetError&) {
      ok = false;
    }
  }
  if (!ok) {
    // Rollback: old binding stays authoritative; strip the half-joined new
    // site and clear any partially transferred entries there, so a later
    // retry re-transfers from scratch instead of serving a partial
    // snapshot as fresh. Memberships (and state) the target held *before*
    // this migration stay untouched — that site is still a live replica
    // fed by the push protocol.
    for (const std::string& entity : added_entities) {
      runtime_.plan().remove_ro_replica(entity, req.to);
    }
    if (added_query_cache) runtime_.plan().remove_query_cache(req.to);
    runtime_.clear_replica_state(req.to, added_entities, added_query_cache);
    reopen(req.components);
    ++rolled_back_;
    in_progress_ = false;
    co_return false;
  }

  // Flip: each binding's node set with `from` replaced by `to`.
  auto target_nodes = [&](const std::string& comp) {
    const BindingTable::Binding* b = bindings_.find(comp);
    std::vector<net::NodeId> nodes =
        (b != nullptr && b->version > 0) ? b->nodes : runtime_.plan().nodes_of(comp);
    for (net::NodeId& n : nodes) {
      if (n == req.from) n = req.to;
    }
    std::vector<net::NodeId> deduped;
    for (net::NodeId n : nodes) {
      bool seen = false;
      for (net::NodeId d : deduped) seen = seen || d == n;
      if (!seen) deduped.push_back(n);
    }
    return deduped;
  };
  const std::vector<net::NodeId> participants{req.from, req.to};
  if (req.canary_fraction > 0.0) {
    // Staged rollout: the canary fraction routes to the new site (already a
    // full replica member) while the rest stay put; gates reopen so live
    // traffic bakes the canary, then a second quiesce promotes it.
    for (const std::string& comp : req.components) {
      bindings_.stage_canary(comp, target_nodes(comp), req.canary_fraction);
    }
    reopen(req.components);
    co_await sim_.wait(cfg_.canary_hold);
    co_await quiesce(req.components);
    for (const std::string& comp : req.components) {
      bindings_.promote_canary(comp, sim_.now(), cfg_.notify_delay, participants);
    }
  } else {
    for (const std::string& comp : req.components) {
      bindings_.flip(comp, target_nodes(comp), sim_.now(), cfg_.notify_delay, participants);
    }
  }
  reopen(req.components);

  // Forwarding epoch: stale views route to the old site, which forwards to
  // the new authority (Runtime dispatch path). The migration stays "in
  // progress" — and the old site stays a replica member, so pushes keep it
  // fresh for local straggler dispatch — until the epoch expires.
  co_await sim_.wait(cfg_.forward_epoch);
  if (moves_state) {
    for (const std::string& entity : req.entities) {
      runtime_.plan().remove_ro_replica(entity, req.from);
    }
    if (req.move_query_cache) runtime_.plan().remove_query_cache(req.from);
    runtime_.clear_replica_state(req.from, req.entities, req.move_query_cache);
  }
  ++completed_;
  in_progress_ = false;
  co_return true;
}

}  // namespace mutsvc::comp

#include "component/deployment.hpp"

#include <sstream>

namespace mutsvc::comp {

std::string DeploymentPlan::describe() const {
  std::ostringstream os;
  os << "features:";
  for (Feature f : {Feature::kRemoteFacade, Feature::kStubCaching,
                    Feature::kStatefulComponentCaching, Feature::kQueryCaching,
                    Feature::kAsyncUpdates}) {
    if (has(f)) os << " " << to_string(f);
  }
  os << "\nplacement:\n";
  for (const auto& [comp, nodes] : placement_) {
    os << "  " << comp << " ->";
    for (auto n : nodes) os << " " << n;
    os << "\n";
  }
  if (!ro_replicas_.empty()) {
    os << "read-only replicas:\n";
    for (const auto& [entity, nodes] : ro_replicas_) {
      os << "  " << entity << " ->";
      for (auto n : nodes) os << " " << n;
      os << "\n";
    }
  }
  if (!query_cache_nodes_.empty()) {
    os << "query caches:";
    for (auto n : query_cache_nodes_) os << " " << n;
    os << "\n";
  }
  return os.str();
}

}  // namespace mutsvc::comp

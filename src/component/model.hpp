#pragma once

#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "component/kind.hpp"
#include "net/types.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace mutsvc::comp {

class CallContext;

/// A method body is a coroutine written against the CallContext API; it can
/// consume CPU, call other components, issue queries, and read/write
/// entity state. Bodies may be empty (pure-cost methods).
using MethodBody = std::function<sim::Task<void>(CallContext&)>;

struct MethodDef {
  std::string name;
  sim::Duration cpu = sim::us(300);   // business-logic demand at the hosting node
  /// Non-CPU service latency (blocking I/O, reflection, GC, logging) — the
  /// part of a J2EE request's residence time that does not saturate a
  /// processor. Keeps modelled CPU utilization in the paper's <40% band
  /// while matching observed local response times.
  sim::Duration latency = sim::Duration::zero();
  net::Bytes args_bytes = 200;        // marshalled argument size
  net::Bytes result_bytes = 400;      // marshalled result size (excluding data rows)
  MethodBody body;                    // empty => cost-only method
};

/// A component type: an EJB, servlet, or web helper, with its methods.
class ComponentDef {
 public:
  ComponentDef(std::string name, ComponentKind kind)
      : name_(std::move(name)), kind_(kind) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] ComponentKind kind() const { return kind_; }

  /// EJB 2.0 local interfaces (§5): a local-only component may never be the
  /// target of a remote invocation; the runtime enforces this.
  ComponentDef& local_interface_only(bool v = true) {
    local_only_ = v;
    return *this;
  }
  [[nodiscard]] bool is_local_only() const { return local_only_; }

  ComponentDef& method(MethodDef m) {
    auto name = m.name;
    if (!methods_.emplace(name, std::move(m)).second) {
      throw std::invalid_argument("ComponentDef " + name_ + ": duplicate method " + name);
    }
    return *this;
  }

  [[nodiscard]] const MethodDef& find_method(const std::string& m) const {
    auto it = methods_.find(m);
    if (it == methods_.end()) {
      throw std::invalid_argument("ComponentDef " + name_ + ": no method " + m);
    }
    return it->second;
  }

  [[nodiscard]] const std::map<std::string, MethodDef>& methods() const { return methods_; }

 private:
  std::string name_;
  ComponentKind kind_;
  bool local_only_ = false;
  std::map<std::string, MethodDef> methods_;
};

/// A component-based application: the registry of component definitions.
class Application {
 public:
  explicit Application(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  ComponentDef& define(const std::string& name, ComponentKind kind) {
    auto [it, inserted] = components_.emplace(name, ComponentDef{name, kind});
    if (!inserted) throw std::invalid_argument("Application: component exists: " + name);
    return it->second;
  }

  [[nodiscard]] const ComponentDef& component(const std::string& name) const {
    auto it = components_.find(name);
    if (it == components_.end()) {
      throw std::invalid_argument("Application " + name_ + ": no component " + name);
    }
    return it->second;
  }

  [[nodiscard]] bool has_component(const std::string& name) const {
    return components_.contains(name);
  }

  [[nodiscard]] std::vector<std::string> component_names() const {
    std::vector<std::string> out;
    out.reserve(components_.size());
    for (const auto& [k, v] : components_) out.push_back(k);
    return out;
  }

  [[nodiscard]] std::size_t component_count() const { return components_.size(); }

 private:
  std::string name_;
  std::map<std::string, ComponentDef> components_;
};

}  // namespace mutsvc::comp

#pragma once

#include <array>
#include <cstddef>

#include "sim/time.hpp"

namespace mutsvc::comp {

/// Where a request's time went. Categories are designed to be additive:
/// nested work (e.g. the server-side portion of an RMI call) is recorded
/// under its own category and excluded from the enclosing wire time.
enum class SpanKind : std::size_t {
  kHttpWire,    // TCP handshake + request/response transfer
  kQueueing,    // waiting for a container thread
  kCpu,         // method CPU demand (incl. CPU queueing)
  kLatency,     // non-CPU container residence (MethodDef::latency)
  kCacheRead,   // read-only / query-cache access
  kJdbc,        // database statements incl. wire and DB service time
  kRmiWire,     // wide/local-area RMI transfer time (server work excluded)
  kStub,        // JNDI home / remote stub acquisition
  kLockWait,    // entity lock contention
  kPush,        // blocking update propagation (§4.3)
  kPublish,     // async publish incl. staleness-bound stalls (§4.5)
  kCount_,
};

[[nodiscard]] constexpr const char* to_string(SpanKind k) {
  switch (k) {
    case SpanKind::kHttpWire: return "http-wire";
    case SpanKind::kQueueing: return "thread-queue";
    case SpanKind::kCpu: return "cpu";
    case SpanKind::kLatency: return "container";
    case SpanKind::kCacheRead: return "cache";
    case SpanKind::kJdbc: return "jdbc";
    case SpanKind::kRmiWire: return "rmi-wire";
    case SpanKind::kStub: return "stub";
    case SpanKind::kLockWait: return "lock-wait";
    case SpanKind::kPush: return "push";
    case SpanKind::kPublish: return "publish";
    case SpanKind::kCount_: break;
  }
  return "?";
}

/// Accumulates span durations for one traced request. Pass a pointer into
/// Runtime::invoke (and Experiment::execute_traced); a null sink disables
/// tracing with zero overhead.
class TraceSink {
 public:
  void add(SpanKind kind, sim::Duration d) {
    totals_[static_cast<std::size_t>(kind)] += d;
  }

  [[nodiscard]] sim::Duration total(SpanKind kind) const {
    return totals_[static_cast<std::size_t>(kind)];
  }

  [[nodiscard]] sim::Duration sum() const {
    sim::Duration s = sim::Duration::zero();
    for (const auto& d : totals_) s += d;
    return s;
  }

  void clear() { totals_.fill(sim::Duration::zero()); }

 private:
  std::array<sim::Duration, static_cast<std::size_t>(SpanKind::kCount_)> totals_{};
};

}  // namespace mutsvc::comp

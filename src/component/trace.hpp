#pragma once

// The trace model lives in stats/ (stats depends only on sim/), so the
// transports (net/rmi, net/http, messaging/topic) can open spans without a
// dependency on the component layer. These aliases keep the historical
// comp::TraceSink spelling working for the runtime and every existing test.
#include "stats/trace.hpp"

namespace mutsvc::comp {

using SpanKind = stats::SpanKind;
using TraceSink = stats::TraceSink;
using TraceSpan = stats::Span;
using stats::to_string;

}  // namespace mutsvc::comp

#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/types.hpp"

namespace mutsvc::comp {

/// The incremental design rules of §4, expressed as deployment features —
/// exactly the paper's §5 position that these should be *declarative*
/// ("extended deployment descriptors") rather than hand-coded.
enum class Feature {
  kRemoteFacade,             // §4.2 web/session components at edges, bulk façade calls
  kStubCaching,              // §4.2 EJBHomeFactory: cache JNDI home + remote stubs
  kStatefulComponentCaching, // §4.3 read-only entity beans at edges
  kQueryCaching,             // §4.4 edge query-result caches
  kAsyncUpdates,             // §4.5 MDB/JMS propagation instead of blocking push
};

[[nodiscard]] constexpr const char* to_string(Feature f) {
  switch (f) {
    case Feature::kRemoteFacade: return "remote-facade";
    case Feature::kStubCaching: return "stub-caching";
    case Feature::kStatefulComponentCaching: return "stateful-component-caching";
    case Feature::kQueryCaching: return "query-caching";
    case Feature::kAsyncUpdates: return "asynchronous-updates";
  }
  return "?";
}

/// How committed writes reach edge replicas (§4.3 / §4.5).
enum class UpdateMode { kNone, kBlockingPush, kAsyncPush };

/// How an invalidated edge query cache refreshes (§4.4): re-execute at the
/// main server on next read (pull) or receive new rows with the update push.
enum class QueryRefreshMode { kPull, kPush };

/// The "extended deployment descriptor": which component runs where, which
/// entities have read-only replicas, where query caches sit, and which
/// design-rule features are on.
class DeploymentPlan {
 public:
  // --- component placement ------------------------------------------------
  /// Deploys `component` at `node`. The first placement is the component's
  /// primary (home) node.
  void place(const std::string& component, net::NodeId node) {
    auto& nodes = placement_[component];
    for (auto n : nodes) {
      if (n == node) return;
    }
    nodes.push_back(node);
  }

  [[nodiscard]] bool is_placed(const std::string& component) const {
    return placement_.contains(component);
  }

  [[nodiscard]] const std::vector<net::NodeId>& nodes_of(const std::string& component) const {
    auto it = placement_.find(component);
    if (it == placement_.end()) {
      throw std::invalid_argument("DeploymentPlan: component not placed: " + component);
    }
    return it->second;
  }

  [[nodiscard]] net::NodeId primary(const std::string& component) const {
    return nodes_of(component).front();
  }

  [[nodiscard]] bool is_deployed_at(const std::string& component, net::NodeId node) const {
    auto it = placement_.find(component);
    if (it == placement_.end()) return false;
    for (auto n : it->second) {
      if (n == node) return true;
    }
    return false;
  }

  /// Where a call from `from` should go: the co-located replica when one
  /// exists, else the primary.
  [[nodiscard]] net::NodeId resolve(const std::string& component, net::NodeId from) const {
    if (is_deployed_at(component, from)) return from;
    return primary(component);
  }

  [[nodiscard]] const std::map<std::string, std::vector<net::NodeId>>& placements() const {
    return placement_;
  }

  // --- features -------------------------------------------------------------
  void enable(Feature f) { features_.insert(f); }
  void disable(Feature f) { features_.erase(f); }
  [[nodiscard]] bool has(Feature f) const { return features_.contains(f); }

  [[nodiscard]] UpdateMode update_mode() const {
    if (has(Feature::kAsyncUpdates)) return UpdateMode::kAsyncPush;
    if (has(Feature::kStatefulComponentCaching)) return UpdateMode::kBlockingPush;
    return UpdateMode::kNone;
  }

  void set_query_refresh(QueryRefreshMode m) { query_refresh_ = m; }
  [[nodiscard]] QueryRefreshMode query_refresh() const { return query_refresh_; }

  /// TACT-style order-error bound for asynchronous updates (§5's
  /// "application-specific relaxed consistency parameters"): a writer may
  /// run at most this many update batches ahead of the slowest replica
  /// before it must block. Zero means unbounded (pure §4.5 behaviour).
  void set_staleness_bound(std::uint32_t max_outstanding_batches) {
    staleness_bound_ = max_outstanding_batches;
  }
  [[nodiscard]] std::uint32_t staleness_bound() const { return staleness_bound_; }

  // --- read-only entity replicas (§4.3) --------------------------------------
  void replicate_read_only(const std::string& entity, net::NodeId node) {
    ro_replicas_[entity].insert(node);
  }

  /// Removes a node from an entity's replica set (live-migration
  /// retirement / rollback). No-op if absent.
  void remove_ro_replica(const std::string& entity, net::NodeId node) {
    auto it = ro_replicas_.find(entity);
    if (it == ro_replicas_.end()) return;
    it->second.erase(node);
    if (it->second.empty()) ro_replicas_.erase(it);
  }

  [[nodiscard]] bool has_ro_replica(const std::string& entity, net::NodeId node) const {
    auto it = ro_replicas_.find(entity);
    return it != ro_replicas_.end() && it->second.contains(node);
  }

  [[nodiscard]] const std::set<net::NodeId>& ro_replica_nodes(const std::string& entity) const {
    static const std::set<net::NodeId> kEmpty;
    auto it = ro_replicas_.find(entity);
    return it == ro_replicas_.end() ? kEmpty : it->second;
  }

  [[nodiscard]] const std::map<std::string, std::set<net::NodeId>>& ro_replicas() const {
    return ro_replicas_;
  }

  // --- query caches (§4.4) ----------------------------------------------------
  void add_query_cache(net::NodeId node) { query_cache_nodes_.insert(node); }
  /// Removes a node's query cache from the plan (live-migration retirement
  /// / rollback). No-op if absent.
  void remove_query_cache(net::NodeId node) { query_cache_nodes_.erase(node); }
  [[nodiscard]] bool has_query_cache(net::NodeId node) const {
    return query_cache_nodes_.contains(node);
  }
  [[nodiscard]] const std::set<net::NodeId>& query_cache_nodes() const {
    return query_cache_nodes_;
  }

  // --- servers ------------------------------------------------------------------
  /// The main application server (co-located with the database).
  void set_main_server(net::NodeId n) { main_server_ = n; }
  [[nodiscard]] net::NodeId main_server() const { return main_server_; }

  void add_edge_server(net::NodeId n) { edge_servers_.push_back(n); }
  [[nodiscard]] const std::vector<net::NodeId>& edge_servers() const { return edge_servers_; }

  /// Which application server a client machine's HTTP requests enter at.
  void set_entry_point(net::NodeId client_node, net::NodeId server) {
    entry_points_[client_node] = server;
  }
  [[nodiscard]] net::NodeId entry_point(net::NodeId client_node) const {
    auto it = entry_points_.find(client_node);
    if (it == entry_points_.end()) {
      throw std::invalid_argument("DeploymentPlan: no entry point for client node");
    }
    return it->second;
  }

  [[nodiscard]] std::string describe() const;

 private:
  std::map<std::string, std::vector<net::NodeId>> placement_;
  std::set<Feature> features_;
  std::map<std::string, std::set<net::NodeId>> ro_replicas_;
  std::set<net::NodeId> query_cache_nodes_;
  std::map<net::NodeId, net::NodeId> entry_points_;
  net::NodeId main_server_{};
  std::vector<net::NodeId> edge_servers_;
  QueryRefreshMode query_refresh_ = QueryRefreshMode::kPush;
  std::uint32_t staleness_bound_ = 0;
};

}  // namespace mutsvc::comp

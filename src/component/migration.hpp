#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "component/binding.hpp"
#include "component/runtime.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace mutsvc::comp {

/// Live-migration protocol knobs (DESIGN §17).
struct MigrationConfig {
  /// How long the old site forwards stragglers after a binding flip. Must
  /// exceed notify_delay so every stale view converges before forwarding
  /// stops (validated at MigrationManager construction).
  sim::Duration forward_epoch = sim::sec(5);
  /// Binding-flip visibility lag for nodes outside the migration.
  sim::Duration notify_delay = sim::ms(200);
  /// Poll interval of the in-flight drain loop during quiesce.
  sim::Duration drain_poll = sim::ms(10);
  /// Canary bake time before a staged flip promotes to full cutover.
  sim::Duration canary_hold = sim::sec(10);
};

/// One migration: move `components`' bindings (and optionally the replica
/// state serving them) from `from` to `to`.
struct MigrationRequest {
  net::NodeId from;
  net::NodeId to;
  /// Components whose bindings flip (every placement of `from` in each
  /// binding's node set is replaced by `to`).
  std::vector<std::string> components;
  /// Entities whose read-only replica set moves with the components.
  std::vector<std::string> entities;
  /// Move the edge query cache as well.
  bool move_query_cache = false;
  /// Staged rollout: canary this fraction of sessions on the new site for
  /// canary_hold before full cutover. 0 = flip directly.
  double canary_fraction = 0.0;
};

/// Executes live component migrations (DESIGN §17):
///
///   1. *Quiesce*: close the migrating components' credit gates — new calls
///      park FIFO at the gate; calls already past it run to completion.
///   2. *Drain*: poll until the components' in-flight counts reach zero.
///   3. *Transfer*: the new site first joins the deployment plan's replica
///      membership, so writes committing during the transfer push to both
///      sites; then one bulk RMI per entity ships the old site's replica
///      snapshot, installed through the version-monotonic apply_push. The
///      monotonic apply arbitrates snapshot-vs-concurrent-push races in
///      both orders — a mid-migration push can never be rolled back by the
///      snapshot, and the snapshot never clobbers newer pushed state.
///   4. *Flip*: bump the binding (optionally staging a canary first; the
///      canary bakes for canary_hold with gates open, then promotes after
///      a second quiesce/drain). Gates reopen; parked calls resolve
///      against the new binding.
///   5. *Forward*: views that have not converged keep routing to the old
///      site, whose dispatch path forwards stragglers to the new authority
///      until forward_epoch expires (termination: notify_delay <
///      forward_epoch).
///   6. *Retire*: after the forwarding epoch, the old site leaves the
///      replica membership and drops the transferred entries.
///
/// Rollback: a transfer failing on a network fault reopens the gates with
/// the old binding untouched, removes the new site's half-joined
/// memberships, and clears any partially transferred entries at the new
/// site — a later migration must re-transfer from scratch rather than serve
/// a stale partial snapshot as fresh.
///
/// Migrations are strictly serialized: migrate() refuses (returns false)
/// while another migration — including its forwarding epoch — is running.
class MigrationManager {
 public:
  MigrationManager(sim::Simulator& sim, Runtime& runtime, BindingTable& bindings,
                   MigrationConfig cfg);

  MigrationManager(const MigrationManager&) = delete;
  MigrationManager& operator=(const MigrationManager&) = delete;

  /// Runs one migration end to end (including the forwarding epoch and the
  /// old site's retirement). Returns true on success, false when refused
  /// (one already in progress) or rolled back on a fault.
  [[nodiscard]] sim::Task<bool> migrate(MigrationRequest req);

  [[nodiscard]] bool in_progress() const { return in_progress_; }
  [[nodiscard]] std::uint64_t started() const { return started_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t rolled_back() const { return rolled_back_; }
  [[nodiscard]] std::uint64_t refused() const { return refused_; }
  [[nodiscard]] std::uint64_t entries_transferred() const { return entries_transferred_; }
  [[nodiscard]] const MigrationConfig& config() const { return cfg_; }

 private:
  [[nodiscard]] sim::Task<void> quiesce(const std::vector<std::string>& components);
  void reopen(const std::vector<std::string>& components);

  sim::Simulator& sim_;
  Runtime& runtime_;
  BindingTable& bindings_;
  MigrationConfig cfg_;
  bool in_progress_ = false;
  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t rolled_back_ = 0;
  std::uint64_t refused_ = 0;
  std::uint64_t entries_transferred_ = 0;
};

}  // namespace mutsvc::comp

#include "component/runtime.hpp"

#include <stdexcept>

#include "component/binding.hpp"
#include "sim/simcheck.hpp"
#include "sim/simrace.hpp"

namespace mutsvc::comp {

// --- CallContext thin wrappers ----------------------------------------------

const DeploymentPlan& CallContext::plan() const { return rt_.plan(); }
bool CallContext::has(Feature f) const { return rt_.plan().has(f); }

sim::Task<void> CallContext::cpu(sim::Duration d) {
  if (trace_ == nullptr) return rt_.topology().node(node_).cpu->consume(d);
  // Traced: bill the consume (including CPU queueing) so the flat totals
  // stay additive with the measured response time.
  return [](Runtime& rt, net::NodeId node, sim::Duration d, TraceSink* trace) -> sim::Task<void> {
    const sim::SimTime t0 = rt.simulator().now();
    co_await rt.topology().node(node).cpu->consume(d);
    trace->add(SpanKind::kCpu, rt.simulator().now() - t0);
  }(rt_, node_, d, trace_);
}

namespace {
std::string query_class(const db::Query& q) {
  return "query:" + (q.aggregate_name.empty() ? q.table : q.aggregate_name);
}

// SimRace state keys: one logical object per (node, cache). Only built
// when the analyzer is enabled — probe sites gate on simrace::enabled().
std::string ro_state_key(net::NodeId node, const std::string& entity) {
  return "rocache:" + std::to_string(node.value()) + ":" + entity;
}
std::string qc_state_key(net::NodeId node) {
  return "qcache:" + std::to_string(node.value());
}
}  // namespace

sim::Task<CallResult> CallContext::call(const std::string& component, const std::string& method,
                                        std::vector<db::Value> args) {
  return rt_.call_from(node_, component, method, std::move(args), comp_->name(), trace_,
                       session_key_);
}

sim::Task<db::QueryResult> CallContext::direct_query(db::Query q) {
  rt_.record_interaction(comp_->name(), "__database__", 400, !q.is_read());
  if (trace_ == nullptr) return rt_.jdbc_for(node_).execute(q);
  return [](Runtime& rt, net::NodeId node, db::Query q, TraceSink* trace)
             -> sim::Task<db::QueryResult> {
    const sim::SimTime t0 = rt.simulator().now();
    db::QueryResult res = co_await rt.jdbc_for(node).execute(std::move(q));
    trace->add(SpanKind::kJdbc, rt.simulator().now() - t0);
    co_return res;
  }(rt_, node_, std::move(q), trace_);
}

sim::Task<std::optional<db::Row>> CallContext::read_entity(const std::string& entity,
                                                           std::int64_t pk) {
  rt_.record_interaction(comp_->name(), entity, 256);
  return rt_.read_entity_impl(node_, entity, pk, trace_);
}

sim::Task<db::QueryResult> CallContext::cached_query(db::Query q) {
  rt_.record_interaction(comp_->name(), query_class(q), 1024);
  return rt_.cached_query_impl(node_, std::move(q), trace_);
}

sim::Task<void> CallContext::write_entity(const std::string& entity, std::int64_t pk,
                                          std::string column, db::Value v,
                                          std::vector<db::Query> affected_queries) {
  rt_.record_interaction(comp_->name(), entity, 256, /*is_write=*/true);
  for (const auto& q : affected_queries) {
    rt_.record_interaction(comp_->name(), query_class(q), 64, /*is_write=*/true);
  }
  db::Query w = db::Query::update(rt_.entity_table(entity), pk, std::move(column), std::move(v));
  return rt_.write_impl(this, node_, entity, std::move(w), std::move(affected_queries));
}

sim::Task<void> CallContext::insert_row(const std::string& entity, db::Row row,
                                        std::vector<db::Query> affected_queries) {
  rt_.record_interaction(comp_->name(), entity, 256, /*is_write=*/true);
  for (const auto& q : affected_queries) {
    rt_.record_interaction(comp_->name(), query_class(q), 64, /*is_write=*/true);
  }
  db::Query w = db::Query::insert(rt_.entity_table(entity), std::move(row));
  return rt_.write_impl(this, node_, entity, std::move(w), std::move(affected_queries));
}

std::int64_t CallContext::allocate_id(const std::string& table) {
  return rt_.database().allocate_id(table);
}

// --- Runtime ------------------------------------------------------------------

Runtime::Runtime(sim::Simulator& sim, net::Topology& topo, net::Network& net,
                 net::RmiTransport& rmi, db::Database& db, const Application& app,
                 DeploymentPlan plan, RuntimeConfig cfg)
    : sim_(sim),
      topo_(topo),
      net_(net),
      rmi_(rmi),
      db_(db),
      app_(app),
      plan_(std::move(plan)),
      cfg_(cfg),
      locks_(sim) {
  net::RmiConfig push_cfg = rmi.config();
  push_cfg.extra_rtt_prob = 0.0;
  update_rmi_ = std::make_unique<net::RmiTransport>(net_, push_cfg);
  // The updater façade runs under the same resilience policy as the
  // application transport (its breakers are independent per transport).
  update_rmi_->set_resilience(rmi.resilience());
  if (plan_.has(Feature::kAsyncUpdates)) {
    // One topic per data-tier shard: lane 0 keeps the name "updates" (with
    // one shard this is exactly the paper's single topic), lane s > 0 is
    // "updates-s<s>". Providers live with the main server (§4.5); every
    // update target subscribes to every lane.
    for (std::size_t s = 0; s < db_.shard_count(); ++s) {
      std::string name = s == 0 ? std::string("updates") : "updates-s" + std::to_string(s);
      topics_.push_back(std::make_unique<msg::Topic<cache::UpdateBatch>>(
          net_, plan_.main_server(), std::move(name), cfg_.mdb_dispatch));
      for (net::NodeId edge : update_targets()) {
        topics_[s]->subscribe(edge, [this, edge](const cache::UpdateBatch& batch) {
          return apply_batch(edge, batch);
        });
      }
    }
    for (net::NodeId edge : update_targets()) update_subscribers_.insert(edge);
    if (cfg_.coalesce_quantum > sim::Duration::zero()) {
      coalescer_ = std::make_unique<msg::Coalescer<cache::UpdateBatch>>(
          sim_, topics_.size(), cfg_.coalesce_quantum,
          [](cache::UpdateBatch& into, cache::UpdateBatch&& from) {
            cache::merge_into(into, std::move(from));
          },
          [this](std::size_t lane, cache::UpdateBatch merged) {
            return publish_lane(lane, std::move(merged));
          });
    }
    if (cfg_.flow.enabled) {
      for (auto& t : topics_) t->set_bound(cfg_.flow.topic_queue, cfg_.flow.backpressure);
      if (coalescer_) coalescer_->set_bound(cfg_.flow.coalescer_lane);
    }
  }
  // Freeze the lazily-populated per-node maps before traffic flows: under
  // parallel lookahead domains (sim/parallel.cpp) workers read these maps
  // concurrently, so structural mutation is confined to construction. The
  // accessors then only ever find pre-created entries. Sequential behaviour
  // is unchanged — creation itself costs no simulated time.
  profiles_.resize(std::max<std::size_t>(sim_.domain_count(), 1));
  const std::vector<std::string> component_names = app_.component_names();
  for (std::uint32_t n = 0; n < topo_.node_count(); ++n) {
    (void)jdbc_for(net::NodeId{n});
    for (const std::string& comp : component_names) stubs_.prepare(net::NodeId{n}, comp);
  }
  for (net::NodeId n : plan_.query_cache_nodes()) (void)query_cache(n);
  for (const auto& [entity, nodes] : plan_.ro_replicas()) {
    for (net::NodeId n : nodes) (void)ro_cache(n, entity);
  }
}

void Runtime::note_read(const std::string& key, std::uint64_t seen_version) {
  // Staged against the observed-read shadow tracker: sequentially the
  // closure runs inline right here; under parallel domains it replays at
  // the window barrier in deterministic (time, key) stamp order, so the
  // staleness stats (and the SimCheck probe) see exactly the sequential
  // interleaving of reads and master advances.
  sim_.sequenced([this, key, seen_version] {
    observed_.observe_read(key, seen_version);
    if (simcheck::enabled()) {
      const bool invariant_applies = plan_.update_mode() == UpdateMode::kBlockingPush &&
                                     failed_pushes_ == 0 && degraded_reads_ == 0;
      simcheck::probe_zero_staleness(observed_.stale_reads(), invariant_applies);
    }
  });
}

const std::string& Runtime::entity_table(const std::string& entity) const {
  auto it = entity_tables_.find(entity);
  if (it == entity_tables_.end()) {
    throw std::invalid_argument("Runtime: entity not bound to a table: " + entity);
  }
  return it->second;
}

cache::ReadOnlyCache& Runtime::ro_cache(net::NodeId node, const std::string& entity) {
  auto key = std::make_pair(node, entity);
  auto it = ro_caches_.find(key);  // simlint:allow(cross-node-state) — node-checked accessor: the single sanctioned door to per-node RO caches
  if (it == ro_caches_.end()) {  // simlint:allow(cross-node-state) — node-checked accessor (lazy creation)
    it = ro_caches_.emplace(key, std::make_unique<cache::ReadOnlyCache>(entity)).first;  // simlint:allow(cross-node-state) — node-checked accessor (lazy creation)
  }
  return *it->second;
}

cache::QueryCache& Runtime::query_cache(net::NodeId node) {
  auto it = query_caches_.find(node);  // simlint:allow(cross-node-state) — node-checked accessor: the single sanctioned door to per-node query caches
  if (it == query_caches_.end()) {  // simlint:allow(cross-node-state) — node-checked accessor (lazy creation)
    it = query_caches_.emplace(node, std::make_unique<cache::QueryCache>()).first;  // simlint:allow(cross-node-state) — node-checked accessor (lazy creation)
  }
  return *it->second;
}

void Runtime::reset_cache_stats() {
  for (auto& [key, cache] : ro_caches_) cache->reset_stats();
  for (auto& [node, qc] : query_caches_) qc->reset_stats();
  forwarded_calls_ = 0;
  late_stragglers_ = 0;
}

net::CreditGate& Runtime::component_gate(const std::string& component) {
  auto it = component_gates_.find(component);
  if (it == component_gates_.end()) {
    it = component_gates_.emplace(component, std::make_unique<net::CreditGate>(sim_)).first;
  }
  return *it->second;
}

net::CreditGate* Runtime::find_component_gate(const std::string& component) {
  auto it = component_gates_.find(component);
  return it == component_gates_.end() ? nullptr : it->second.get();
}

std::uint64_t Runtime::component_in_flight(const std::string& component) const {
  auto it = component_in_flight_.find(component);
  return it == component_in_flight_.end() ? 0 : it->second;
}

void Runtime::ensure_update_subscription(net::NodeId node) {
  if (topics_.empty() || node == plan_.main_server()) return;
  if (update_subscribers_.contains(node)) return;
  update_subscribers_.insert(node);
  for (auto& t : topics_) {
    t->subscribe(node,
                 [this, node](const cache::UpdateBatch& batch) { return apply_batch(node, batch); });
  }
}

sim::Task<std::uint64_t> Runtime::transfer_replica_state(net::NodeId from, net::NodeId to,
                                                         std::vector<std::string> entities,
                                                         bool move_query_cache) {
  std::uint64_t transferred = 0;
  for (const std::string& entity : entities) {
    // Key-sorted snapshot: the transfer's wire bytes and apply order are
    // independent of unordered_map iteration order.
    const auto snap = ro_cache(from, entity).snapshot();
    if (snap.empty()) continue;
    net::Bytes bytes = 64;
    for (const auto& [pk, e] : snap) bytes += db::wire_size(e.row) + 16;
    co_await update_rmi_->call_dynamic(from, to, bytes, [&]() -> sim::Task<net::Bytes> {
      co_await topo_.node(to).cpu->consume(cfg_.apply_update);
      // SimRace: the install executes server-side at the destination,
      // message-ordered after the snapshot read; synchronous below.
      simrace::NodeScope race_scope(to.value());
      if (simrace::enabled()) {
        simrace::on_state_access(to.value(), ro_state_key(to, entity), /*is_write=*/true);
      }
      cache::ReadOnlyCache& dst = ro_cache(to, entity);
      // apply_push, not fill: version-monotonic in both directions — a
      // concurrent push that already landed at `to` with a newer version
      // wins over the snapshot entry.
      for (const auto& [pk, e] : snap) dst.apply_push(pk, e.row, e.version, e.refreshed_at);
      co_return 16;
    });
    transferred += snap.size();
  }
  if (move_query_cache) {
    const auto snap = query_cache(from).snapshot();
    if (!snap.empty()) {
      net::Bytes bytes = 64;
      for (const auto& [key, e] : snap) {
        bytes += rows_bytes(e.rows) + static_cast<net::Bytes>(key.size());
      }
      co_await update_rmi_->call_dynamic(from, to, bytes, [&]() -> sim::Task<net::Bytes> {
        co_await topo_.node(to).cpu->consume(cfg_.apply_update);
        simrace::NodeScope race_scope(to.value());
        if (simrace::enabled()) {
          simrace::on_state_access(to.value(), qc_state_key(to), /*is_write=*/true);
        }
        cache::QueryCache& dst = query_cache(to);
        for (const auto& [key, e] : snap) dst.apply_push(key, e.rows, e.version);
        co_return 16;
      });
      transferred += snap.size();
    }
  }
  co_return transferred;
}

void Runtime::clear_replica_state(net::NodeId node, const std::vector<std::string>& entities,
                                  bool move_query_cache) {
  for (const std::string& entity : entities) {
    auto it = ro_caches_.find(std::make_pair(node, entity));  // simlint:allow(cross-node-state) — migration retirement/rollback clears the named node's own replica
    if (it != ro_caches_.end()) it->second->invalidate_all();
  }
  if (move_query_cache) {
    auto it = query_caches_.find(node);  // simlint:allow(cross-node-state) — migration retirement/rollback clears the named node's own replica
    if (it != query_caches_.end()) it->second->clear();
  }
}

void Runtime::sample_metrics(sim::SimTime now, sim::Duration window) {
  for (const auto& [key, cache] : ro_caches_) {
    stats::MetricsRegistry& m = metrics(key.first);
    const std::string p = "rocache." + key.second + ".";
    m.set_counter(p + "hits", cache->hits());
    m.set_counter(p + "misses", cache->misses());
    m.set_counter(p + "pushes_applied", cache->pushes_applied());
    m.set_counter(p + "invalidations", cache->invalidations());
    m.set_counter(p + "stale_fills_rejected", cache->stale_fills_rejected());
    m.set_counter(p + "stale_pushes_rejected", cache->stale_pushes_rejected());
    m.set_gauge(p + "hit_rate", cache->hit_rate());
    m.series(p + "size", window).add(now, static_cast<double>(cache->size()));
  }
  for (const auto& [node, qc] : query_caches_) {
    stats::MetricsRegistry& m = metrics(node);
    m.set_counter("qcache.hits", qc->hits());
    m.set_counter("qcache.misses", qc->misses());
    m.set_counter("qcache.pushes_applied", qc->pushes_applied());
    m.set_counter("qcache.invalidations", qc->invalidations());
    m.set_counter("qcache.stale_pushes_rejected", qc->stale_pushes_rejected());
    m.set_gauge("qcache.hit_rate", qc->hit_rate());
    m.series("qcache.size", window).add(now, static_cast<double>(qc->size()));
  }
  stats::MetricsRegistry& m = metrics(plan_.main_server());
  for (const auto& t : topics_) {
    const std::string p = "topic." + t->name() + ".";
    m.set_counter(p + "published", t->published());
    m.set_counter(p + "delivered", t->delivered());
    m.set_counter(p + "delivery_retries", t->delivery_retries());
    m.set_gauge(p + "queue_depth", static_cast<double>(t->queue_depth()));
    m.series(p + "pending", window).add(now, static_cast<double>(t->pending()));
    m.series(p + "queue_depth", window).add(now, static_cast<double>(t->queue_depth()));
    if (cfg_.flow.enabled) {
      m.set_counter(p + "shed", t->shed());
      m.set_counter(p + "bounced", t->bounced());
      m.set_counter(p + "spilled", t->spilled());
      m.set_counter(p + "credit_stalls", t->credit_stalls());
      m.set_gauge(p + "spill_depth", static_cast<double>(t->spill_depth()));
    }
  }
  if (coalescer_ != nullptr) {
    m.set_counter("coalescer.enqueued", coalescer_->enqueued());
    m.set_counter("coalescer.merges", coalescer_->merges());
    m.set_counter("coalescer.flushes", coalescer_->flushes());
    m.set_counter("coalescer.flush_failures", coalescer_->flush_failures());
    for (std::size_t lane = 0; lane < coalescer_->lanes(); ++lane) {
      m.series("coalescer.lane" + std::to_string(lane) + ".depth", window)
          .add(now, static_cast<double>(coalescer_->lane_depth(lane)));
    }
    if (cfg_.flow.enabled) {
      m.set_counter("coalescer.enqueue_attempts", coalescer_->enqueue_attempts());
      m.set_counter("coalescer.shed", coalescer_->shed());
      m.set_counter("coalescer.bounced", coalescer_->bounced());
      m.set_counter("coalescer.spilled", coalescer_->spilled());
      m.set_gauge("coalescer.spill_depth", static_cast<double>(coalescer_->spill_depth()));
    }
  }
  for (const auto& [edge, q] : write_queues_) {
    m.series("writequeue." + topo_.node(edge).name + ".pending", window)
        .add(now, static_cast<double>(q->pending()));
  }
  m.set_counter("runtime.blocking_pushes", blocking_pushes_);
  m.set_counter("runtime.failed_pushes", failed_pushes_);
  m.set_counter("runtime.async_publishes", async_publishes_);
  m.set_counter("runtime.bounded_waits", bounded_waits_);
  m.set_counter("runtime.degraded_reads", degraded_reads_);
  m.set_counter("runtime.queued_writes", queued_writes_);
  m.set_counter("runtime.queued_writes_applied", queued_writes_applied_);
  m.set_counter("runtime.queued_writes_dropped", queued_writes_dropped_);
  m.set_counter("runtime.cache_rewarms", cache_rewarms_);
  if (bindings_ != nullptr) {
    m.set_counter("placement.forwarded_calls", forwarded_calls_);
    m.set_counter("placement.late_stragglers", late_stragglers_);
    m.set_counter("placement.binding_flips", bindings_->flips());
    m.set_gauge("placement.max_binding_version", static_cast<double>(bindings_->max_version()));
  }
  // Replica staleness vs. the plan's TACT bound: the observed mean version
  // lag should stay at 0 under blocking push and within the bound under
  // async updates.
  m.set_counter("consistency.stale_reads", observed_.stale_reads());
  m.set_gauge("consistency.stale_fraction", observed_.stale_fraction());
  m.set_gauge("consistency.staleness_bound", static_cast<double>(plan_.staleness_bound()));
  m.series("consistency.mean_version_lag", window).add(now, observed_.mean_version_lag());
}

void Runtime::clear_node_caches(net::NodeId node) {
  ++cache_rewarms_;
  for (auto& [key, cache] : ro_caches_) {
    if (key.first == node) cache->invalidate_all();
  }
  auto qit = query_caches_.find(node);  // simlint:allow(cross-node-state) — crash re-warm clears the restarted node's own replica, not another node's
  if (qit != query_caches_.end()) qit->second->clear();  // simlint:allow(cross-node-state) — crash re-warm clears the restarted node's own replica, not another node's
  // The restarted container also lost its JNDI/remote-stub caches; the
  // StubCache is keyed per (node, component) but has no per-node erase, and
  // stub re-acquisition is cheap — clearing it all models the cold start.
  stubs_.clear();
}

bool Runtime::within_staleness_bound(const std::string& vkey, std::uint64_t version) {
  const std::uint32_t bound = plan_.staleness_bound();
  if (bound == 0) return true;  // degraded mode accepts any age
  return consistency_.master_version(vkey) - version <= bound;
}

msg::Topic<Runtime::QueuedWrite>& Runtime::write_queue(net::NodeId edge) {
  auto it = write_queues_.find(edge);  // simlint:allow(cross-node-state) — node-checked accessor: the single sanctioned door to per-edge write queues
  if (it == write_queues_.end()) {  // simlint:allow(cross-node-state) — node-checked accessor (lazy creation)
    // Provider co-located with the edge: accepting a queued write is a
    // local, durable operation; the provider then drains to the master
    // with the topic's at-least-once redelivery.
    auto topic = std::make_unique<msg::Topic<QueuedWrite>>(
        net_, edge, "queued-writes:" + topo_.node(edge).name, cfg_.mdb_dispatch);
    topic->set_retry_interval(sim::sec(1));
    topic->subscribe(plan_.main_server(),
                     [this](const QueuedWrite& w) { return apply_queued_write(w); });
    if (cfg_.flow.enabled) topic->set_bound(cfg_.flow.write_queue);
    it = write_queues_.emplace(edge, std::move(topic)).first;  // simlint:allow(cross-node-state) — node-checked accessor (lazy creation)
  }
  return *it->second;
}

sim::Task<void> Runtime::apply_queued_write(QueuedWrite w) {
  // The message reached the master; apply it as a standalone transaction.
  // Residual failures (message loss on the JDBC hop, a push racing a new
  // partition) are retried here with backoff so the queue still converges.
  for (int attempt = 0; attempt < 8; ++attempt) {
    bool ok = false;
    try {
      co_await write_impl(nullptr, plan_.main_server(), w.entity, w.write, w.affected);
      ok = true;
    } catch (const net::NetError&) {
    }
    if (ok) {
      ++queued_writes_applied_;
      co_return;
    }
    co_await sim_.wait(sim::ms(250.0 * static_cast<double>(1 << std::min(attempt, 4))));
  }
  ++queued_writes_dropped_;
}

db::JdbcClient& Runtime::jdbc_for(net::NodeId node) {
  auto it = jdbc_clients_.find(node);  // simlint:allow(cross-node-state) — node-checked accessor: the single sanctioned door to per-node JDBC clients
  if (it == jdbc_clients_.end()) {  // simlint:allow(cross-node-state) — node-checked accessor (lazy creation)
    it = jdbc_clients_
             .emplace(node, std::make_unique<db::JdbcClient>(net_, db_, node, cfg_.jdbc))
             .first;
  }
  return *it->second;
}

net::Bytes Runtime::values_bytes(const std::vector<db::Value>& vals) {
  net::Bytes total = 0;
  for (const auto& v : vals) total += db::wire_size(v);
  return total;
}

net::Bytes Runtime::rows_bytes(const std::vector<db::Row>& rows) {
  net::Bytes total = 0;
  for (const auto& r : rows) total += db::wire_size(r);
  return total;
}

sim::Task<CallResult> Runtime::invoke(net::NodeId caller_node, const std::string& component,
                                      const std::string& method, std::vector<db::Value> args,
                                      TraceSink* trace, std::uint64_t session_key) {
  return call_from(caller_node, component, method, std::move(args), "__client__", trace,
                   session_key);
}

sim::Task<CallResult> Runtime::call_from(net::NodeId caller, std::string comp_name,
                                         std::string method_name, std::vector<db::Value> args,
                                         std::string caller_component, TraceSink* trace,
                                         std::uint64_t session_key) {
  const ComponentDef& comp = app_.component(comp_name);
  const MethodDef& method = comp.find_method(method_name);
  record_interaction(caller_component, comp_name, method.args_bytes + method.result_bytes);

  // In-flight accounting for migration drains; released when the coroutine
  // frame unwinds (normal return or exception). Counted only while a
  // binding table is installed.
  struct InFlight {
    std::uint64_t* n = nullptr;
    ~InFlight() {
      if (n != nullptr) --*n;
    }
  } in_flight;

  net::NodeId target;
  if (bindings_ == nullptr) {
    target = plan_.resolve(comp_name, caller);
  } else {
    if (net::CreditGate* gate = find_component_gate(comp_name)) {
      // Deadlock avoidance: a call tree already past a migrating
      // component's gate must run to completion (the drain waits on it); a
      // nested call between migrating components therefore bypasses the
      // gate. Only fresh entry into the migration set parks.
      net::CreditGate* caller_gate = find_component_gate(caller_component);
      const bool inside_migration = caller_gate != nullptr && !caller_gate->open();
      if (!inside_migration) co_await gate->wait();
    }
    std::uint64_t& n = component_in_flight_[comp_name];
    ++n;
    in_flight.n = &n;
    target = bindings_->resolve(comp_name, caller, sim_.now(), session_key);
  }

  // Straggler detection: a stale view may have routed this call to the old
  // site; the old site forwards to the converged authority.
  net::NodeId exec = target;
  if (bindings_ != nullptr) {
    const net::NodeId authority = bindings_->authoritative(comp_name, target);
    if (authority != target) {
      if (bindings_->in_forward_epoch(comp_name, sim_.now())) {
        ++forwarded_calls_;
      } else {
        ++late_stragglers_;
      }
      exec = authority;
    }
  }

  CallResult out;
  if (target == caller && exec == target) {
    const sim::SimTime c0 = sim_.now();
    co_await topo_.node(caller).cpu->consume(cfg_.local_dispatch);
    if (trace) trace->add(SpanKind::kCpu, sim_.now() - c0);
    co_await dispatch(caller, comp, method, std::move(args), &out.rows, trace, session_key);
    co_return out;
  }

  if (comp.is_local_only()) {
    throw std::logic_error("Runtime: remote invocation of local-only component " + comp_name);
  }

  // JNDI home lookup / remote stub creation. With the EJBHomeFactory pattern
  // (§4.2) this happens once per (node, component); without it, every call.
  const bool need_stub =
      !plan_.has(Feature::kStubCaching) || stubs_.need_stub_exchange(caller, comp_name);
  if (need_stub) {
    co_await rmi_.stub_exchange(caller, target, trace);
  }

  const net::Bytes args_size = method.args_bytes + values_bytes(args);
  if (target == caller) {
    // The caller's own stale view dispatched locally to the retired site:
    // one forwarding RMI straight to the new authority.
    co_await rmi_.call_dynamic(
        caller, exec,
        args_size,
        [&]() -> sim::Task<net::Bytes> {
          co_await dispatch(exec, comp, method, std::move(args), &out.rows, trace, session_key);
          co_return method.result_bytes + rows_bytes(out.rows);
        },
        trace);
    co_return out;
  }

  // The transport owns the wire span + exclusive rmi-wire accounting; the
  // dispatched body opens child spans of its own.
  co_await rmi_.call_dynamic(
      caller, target, args_size,
      [&]() -> sim::Task<net::Bytes> {
        if (exec != target) {
          // Straggler forwarding: the old site relays the call to the new
          // authority with a second RMI hop, paying the real double-hop
          // cost of a not-yet-converged view.
          co_await rmi_.call_dynamic(
              target, exec, args_size,
              [&]() -> sim::Task<net::Bytes> {
                co_await dispatch(exec, comp, method, std::move(args), &out.rows, trace,
                                  session_key);
                co_return method.result_bytes + rows_bytes(out.rows);
              },
              trace);
        } else {
          co_await dispatch(target, comp, method, std::move(args), &out.rows, trace, session_key);
        }
        co_return method.result_bytes + rows_bytes(out.rows);
      },
      trace);
  co_return out;
}

sim::Task<void> Runtime::dispatch(net::NodeId node, const ComponentDef& comp,
                                  const MethodDef& method, std::vector<db::Value> args,
                                  std::vector<db::Row>* out, TraceSink* trace,
                                  std::uint64_t session_key) {
  {
    const sim::SimTime c0 = sim_.now();
    co_await topo_.node(node).cpu->consume(method.cpu);
    if (trace) {
      const sim::SimTime c1 = sim_.now();
      trace->add(SpanKind::kCpu, c1 - c0);
      trace->leaf(SpanKind::kCpu, "cpu:" + comp.name() + "." + method.name, node.value(),
                  node.value(), c0, c1);
    }
  }
  if (method.latency > sim::Duration::zero()) {
    const sim::SimTime l0 = sim_.now();
    co_await sim_.wait(method.latency);
    if (trace) {
      trace->add(SpanKind::kLatency, method.latency);
      trace->leaf(SpanKind::kLatency, "container:" + comp.name() + "." + method.name,
                  node.value(), node.value(), l0, sim_.now());
    }
  }
  if (method.body) {
    CallContext ctx{*this, node, comp, method, std::move(args)};
    ctx.trace_ = trace;
    ctx.session_key_ = session_key;
    try {
      co_await method.body(ctx);
      co_await commit_transaction(ctx);
    } catch (...) {
      // Abort: release locks without propagating edge updates.
      for (auto it = ctx.tx_locks_.rbegin(); it != ctx.tx_locks_.rend(); ++it) {
        locks_.release(*it);
      }
      ctx.tx_locks_.clear();
      throw;
    }
    if (out != nullptr) *out = std::move(ctx.result);
  }
}

sim::Task<std::optional<db::Row>> Runtime::read_entity_impl(net::NodeId node,
                                                            std::string entity,
                                                            std::int64_t pk, TraceSink* trace) {
  const std::string vkey = version_key(entity, pk);
  const std::string& table = entity_table(entity);
  const net::NodeId primary = plan_.main_server();

  if (plan_.has(Feature::kStatefulComponentCaching) && plan_.has_ro_replica(entity, node)) {
    cache::ReadOnlyCache& cache = ro_cache(node, entity);
    co_await topo_.node(node).cpu->consume(cfg_.cache_access);
    if (trace) trace->add(SpanKind::kCacheRead, cfg_.cache_access);
    {
      // SimRace: the replica lookup below is a synchronous section on the
      // reading node; the scope must close before the refresh RMI suspends.
      simrace::NodeScope race_scope(node.value());
      if (simrace::enabled()) {
        simrace::on_state_access(node.value(), ro_state_key(node, entity), /*is_write=*/false);
      }
    }
    // Degraded reads may need the raw entry even when the TTL has expired —
    // snapshot it before get_if_fresh erases a TTL-expired entry.
    const bool may_degrade =
        degraded_mode() && rmi_.resilience().degraded_reads && node != primary;
    std::optional<cache::ReadOnlyCache::Entry> raw;
    if (may_degrade) raw = cache.get(pk);
    auto serve_stale = [&]() -> bool {
      return raw.has_value() && within_staleness_bound(vkey, raw->version);
    };
    // Graceful degradation, fast path: the breaker to the master is open, so
    // a refresh RMI is doomed — serve the stale replica entry (ignoring the
    // TTL) when the TACT staleness bound admits it.
    if (may_degrade && rmi_.fast_fail(primary) && serve_stale()) {
      ++degraded_reads_;
      note_read(vkey, raw->version);
      co_return raw->row;
    }
    if (auto entry = cache.get_if_fresh(pk, sim_.now(), cfg_.ro_ttl)) {
      note_read(vkey, entry->version);
      co_return entry->row;
    }
    // Pull refresh: one RMI to the remote façade co-located with the data
    // (read-only beans "refresh their content by querying a remote façade
    // upon the first business method call after the invalidation", §4.3).
    std::optional<db::Row> fetched;
    std::uint64_t version = 0;
    bool refreshed = false;
    try {
      // The transport bills the exclusive wire time; the server-side body
      // accounts its own window under kJdbc, keeping the totals additive.
      co_await rmi_.call_dynamic(
          node, primary, 64,
          [&]() -> sim::Task<net::Bytes> {
            const sim::SimTime w0 = sim_.now();
            co_await topo_.node(primary).cpu->consume(cfg_.entity_access);
            db::QueryResult res =
                co_await jdbc_for(primary).execute(db::Query::pk_lookup(table, pk));
            if (!res.rows.empty()) fetched = std::move(res.rows[0]);
            version = consistency_.master_version(vkey);
            if (trace) {
              const sim::SimTime w1 = sim_.now();
              trace->add(SpanKind::kJdbc, w1 - w0);
              trace->leaf(SpanKind::kJdbc, "refresh:" + entity, primary.value(), primary.value(),
                          w0, w1);
            }
            co_return res.wire_bytes();
          },
          trace);
      refreshed = true;
    } catch (const net::NetError&) {
      if (!may_degrade) throw;
    }
    if (!refreshed) {
      // Refresh failed mid-outage: fall back to the stale replica.
      if (serve_stale()) {
        ++degraded_reads_;
        note_read(vkey, raw->version);
        co_return raw->row;
      }
      throw net::DeliveryError("Runtime: read of " + vkey +
                               " failed with no usable replica entry");
    }
    if (fetched.has_value()) {
      // SimRace: the refresh RMI completed above, so the fill is ordered
      // after the server-side read by a message edge; no co_await follows.
      simrace::NodeScope race_scope(node.value());
      if (simrace::enabled()) {
        simrace::on_state_access(node.value(), ro_state_key(node, entity), /*is_write=*/true);
      }
      cache.fill(pk, *fetched, version, sim_.now());
      note_read(vkey, version);
    }
    co_return fetched;
  }

  // No local replica: read through the entity bean at its primary.
  auto read_at_primary = [&]() -> sim::Task<std::optional<db::Row>> {
    const sim::SimTime j0 = sim_.now();
    co_await topo_.node(primary).cpu->consume(cfg_.entity_access);
    db::QueryResult res = co_await jdbc_for(primary).execute(db::Query::pk_lookup(table, pk));
    if (trace) trace->add(SpanKind::kJdbc, sim_.now() - j0);
    note_read(vkey, consistency_.master_version(vkey));
    if (res.rows.empty()) co_return std::nullopt;
    co_return std::move(res.rows[0]);
  };

  if (node == primary) co_return co_await read_at_primary();

  std::optional<db::Row> fetched;
  co_await rmi_.call_dynamic(
      node, primary, 64,
      [&]() -> sim::Task<net::Bytes> {
        fetched = co_await read_at_primary();
        co_return fetched ? db::wire_size(*fetched) + 16 : 16;
      },
      trace);
  co_return fetched;
}

sim::Task<db::QueryResult> Runtime::cached_query_impl(net::NodeId node, db::Query q,
                                                      TraceSink* trace) {
  if (plan_.has(Feature::kQueryCaching) && plan_.has_query_cache(node) && q.is_cacheable()) {
    const std::string key = q.cache_key();
    cache::QueryCache& qc = query_cache(node);
    co_await topo_.node(node).cpu->consume(cfg_.cache_access);
    if (trace) trace->add(SpanKind::kCacheRead, cfg_.cache_access);
    {
      // SimRace: synchronous query-cache lookup on the reading node.
      simrace::NodeScope race_scope(node.value());
      if (simrace::enabled()) {
        simrace::on_state_access(node.value(), qc_state_key(node), /*is_write=*/false);
      }
    }
    if (auto entry = qc.get(key)) {
      note_read(key, entry->version);
      co_return db::QueryResult{entry->rows, 0};
    }
    // The fill's version is captured by query_at_main at the primary,
    // immediately before the query executes: the fill must never claim a
    // version newer than the data it installs (a write committing
    // mid-flight would otherwise let stale rows masquerade as fresh), and
    // the live version state may only be read on the primary's side.
    std::uint64_t pre_version = 0;
    db::QueryResult res = co_await query_at_main(node, q, trace, &pre_version);
    {
      // SimRace: fill is ordered after the main-server read by the RMI's
      // reply message; synchronous from here to co_return.
      simrace::NodeScope race_scope(node.value());
      if (simrace::enabled()) {
        simrace::on_state_access(node.value(), qc_state_key(node), /*is_write=*/true);
      }
    }
    qc.fill(key, res.rows, pre_version);
    note_read(key, pre_version);
    co_return res;
  }
  co_return co_await query_at_main(node, std::move(q), trace);
}

sim::Task<db::QueryResult> Runtime::query_at_main(net::NodeId from, db::Query q,
                                                  TraceSink* trace,
                                                  std::uint64_t* pre_version) {
  const net::NodeId primary = plan_.main_server();
  if (from == primary) {
    const sim::SimTime j0 = sim_.now();
    if (pre_version != nullptr) *pre_version = consistency_.master_version(q.cache_key());
    db::QueryResult res = co_await jdbc_for(primary).execute(std::move(q));
    if (trace) trace->add(SpanKind::kJdbc, sim_.now() - j0);
    co_return res;
  }
  // One façade RMI to the main server, which runs the query next to the DB.
  db::QueryResult res;
  co_await rmi_.call_dynamic(
      from, primary, 128,
      [&]() -> sim::Task<net::Bytes> {
        const sim::SimTime w0 = sim_.now();
        co_await topo_.node(primary).cpu->consume(cfg_.local_dispatch);
        if (pre_version != nullptr) *pre_version = consistency_.master_version(q.cache_key());
        res = co_await jdbc_for(primary).execute(q);
        if (trace) {
          const sim::SimTime w1 = sim_.now();
          trace->add(SpanKind::kJdbc, w1 - w0);
          trace->leaf(SpanKind::kJdbc, "query:" + q.table, primary.value(), primary.value(),
                      w0, w1);
        }
        co_return res.wire_bytes();
      },
      trace);
  co_return res;
}

sim::Task<void> Runtime::write_impl(CallContext* ctx, net::NodeId node,
                                    std::string entity, db::Query write,
                                    std::vector<db::Query> affected_queries, TraceSink* trace) {
  if (ctx != nullptr) trace = ctx->trace_;
  const net::NodeId primary = plan_.main_server();
  if (node != primary) {
    const net::Bytes wire = 96 + values_bytes(write.row);
    const bool may_queue = degraded_mode() && rmi_.resilience().queue_writes;
    // Graceful degradation, fast path: master unreachable (breaker open) —
    // accept the write locally and queue it for redelivery.
    if (may_queue && rmi_.fast_fail(primary)) {
      // GCC 12 miscompiles braced temporaries inside co_await expressions
      // (bitwise frame spill) — build a named local instead.
      QueuedWrite queued{entity, write, affected_queries};
      const sim::SimTime q0 = sim_.now();
      // Counted only after the queue accepted the write: a bounced publish
      // (bounded write queue, kBounce) was never queued, so it must not
      // enter the write-queue conservation identity.
      co_await write_queue(node).publish(node, std::move(queued), wire, trace);
      ++queued_writes_;
      if (trace) trace->add(SpanKind::kPublish, sim_.now() - q0);
      co_return;
    }
    // Route through the façade co-located with the data source. The remote
    // side commits as its own transaction. (The façade body copies its
    // inputs: a failed attempt must leave them intact for the queue path.)
    bool ok = false;
    try {
      co_await rmi_.call_dynamic(
          node, primary, wire,
          [&]() -> sim::Task<net::Bytes> {
            co_await write_impl(nullptr, primary, entity, write, affected_queries, trace);
            co_return 32;
          },
          trace);
      ok = true;
    } catch (const net::NetError&) {
      if (!may_queue) throw;
    }
    if (!ok) {
      QueuedWrite queued{std::move(entity), std::move(write), std::move(affected_queries)};
      const sim::SimTime q0 = sim_.now();
      co_await write_queue(node).publish(node, std::move(queued), wire, trace);
      ++queued_writes_;
      if (trace) trace->add(SpanKind::kPublish, sim_.now() - q0);
    }
    co_return;
  }
  const std::int64_t pk =
      write.kind == db::QueryKind::kInsert ? db::as_int(write.row.at(0)) : write.pk;
  const LockManager::Key lock_key{entity, pk};
  const bool already_held = ctx != nullptr && ctx->holds_lock(lock_key);
  // Sanitizer identity: the transaction (CallContext) when the write joins
  // one, else a synthetic single-use actor. Zero when SimCheck is off.
  const simcheck::ActorId actor =
      !simcheck::enabled() ? 0
      : ctx != nullptr     ? simcheck::actor_from_pointer(ctx)
                           : simcheck::anonymous_actor();
  if (!already_held) {
    const sim::SimTime l0 = sim_.now();
    co_await locks_.acquire(lock_key, actor);
    if (trace) {
      const sim::SimTime l1 = sim_.now();
      trace->add(SpanKind::kLockWait, l1 - l0);
      if (l1 > l0) {
        trace->leaf(SpanKind::kLockWait, "lock:" + entity, primary.value(), primary.value(), l0,
                    l1);
      }
    }
  }
  if (ctx != nullptr && !already_held) ctx->tx_locks_.push_back(lock_key);

  try {
    // The write span covers the suspension points of the mutation; under
    // SimCheck, a second coroutine entering it for the same (entity, pk)
    // without the lock is flagged as a write overlap.
    simcheck::WriteGuard guard(actor, version_key(entity, pk), /*holds_lock=*/true);
    const sim::SimTime j0 = sim_.now();
    co_await topo_.node(primary).cpu->consume(cfg_.entity_access);
    (void)co_await jdbc_for(primary).execute(write);
    if (trace) {
      const sim::SimTime j1 = sim_.now();
      trace->add(SpanKind::kJdbc, j1 - j0);
      trace->leaf(SpanKind::kJdbc, "write:" + entity, primary.value(), primary.value(), j0, j1);
    }
  } catch (...) {
    if (ctx == nullptr && !already_held) locks_.release(lock_key);
    throw;
  }

  if (ctx != nullptr) {
    // Defer propagation to the enclosing transaction's commit.
    ctx->tx_writes_.push_back(CallContext::PendingWrite{entity, pk});
    for (auto& q : affected_queries) ctx->tx_affected_.push_back(std::move(q));
    co_return;
  }

  // Standalone write: commit immediately.
  std::vector<CallContext::PendingWrite> writes{CallContext::PendingWrite{entity, pk}};
  try {
    co_await propagate(writes, affected_queries, trace);
  } catch (...) {
    locks_.release(lock_key);
    throw;
  }
  locks_.release(lock_key);
}

sim::Task<void> Runtime::commit_transaction(CallContext& ctx) {
  if (!ctx.tx_writes_.empty() || !ctx.tx_affected_.empty()) {
    co_await propagate(ctx.tx_writes_, ctx.tx_affected_, ctx.trace_);
    ctx.tx_writes_.clear();
    ctx.tx_affected_.clear();
  }
  for (auto it = ctx.tx_locks_.rbegin(); it != ctx.tx_locks_.rend(); ++it) {
    locks_.release(*it);
  }
  ctx.tx_locks_.clear();
}

sim::Task<void> Runtime::propagate(const std::vector<CallContext::PendingWrite>& writes,
                                   const std::vector<db::Query>& affected, TraceSink* trace) {
  // Pre-allocate one version per touched key. Allocation is monotone across
  // concurrent transactions, so two writers sharing a query key get
  // distinct versions and the replicas' monotonic apply keeps the newest.
  // SimRace: version allocation mutates the master consistency tracker on
  // the main server; synchronous up to the switch below.
  {
    simrace::NodeScope race_scope(plan_.main_server().value());
    if (simrace::enabled()) {
      simrace::on_state_access(plan_.main_server().value(), "consistency:master",
                               /*is_write=*/true);
    }
  }
  std::map<std::string, std::uint64_t> versions;
  for (const auto& w : writes) {
    const std::string k = version_key(w.entity, w.pk);
    if (!versions.contains(k)) versions.emplace(k, consistency_.allocate(k));
  }
  for (const auto& q : affected) {
    const std::string k = q.cache_key();
    if (!versions.contains(k)) versions.emplace(k, consistency_.allocate(k));
  }
  auto advance_all = [&] {
    for (const auto& [k, v] : versions) consistency_.advance_to(k, v);
    // Mirror the advance into the observed-read shadow as a sequenced
    // effect, so its replayed observe_reads compare against the same master
    // trajectory a sequential run would have seen at each read's timestamp.
    sim_.sequenced([this, versions] {
      for (const auto& [k, v] : versions) observed_.advance_to(k, v);
    });
  };

  bool entity_replicated = false;
  for (const auto& w : writes) {
    if (!plan_.ro_replica_nodes(w.entity).empty()) entity_replicated = true;
  }
  const bool touches_edges =
      entity_replicated || (!affected.empty() && !plan_.query_cache_nodes().empty());

  switch (touches_edges ? plan_.update_mode() : UpdateMode::kNone) {
    case UpdateMode::kNone:
      advance_all();
      break;
    case UpdateMode::kBlockingPush: {
      // §4.3 zero staleness: the pushed entries carry their allocated
      // versions; the readable master only advances once every replica has
      // applied the update, so no read can observe a master version newer
      // than what its local replica holds.
      cache::UpdateBatch batch = build_batch(writes, affected, versions);
      co_await push_blocking(std::move(batch), trace);
      advance_all();
      break;
    }
    case UpdateMode::kAsyncPush: {
      cache::UpdateBatch batch = build_batch(writes, affected, versions);
      advance_all();
      co_await publish_async(std::move(batch), trace);
      break;
    }
  }
}

cache::UpdateBatch Runtime::build_batch(const std::vector<CallContext::PendingWrite>& writes,
                                        const std::vector<db::Query>& affected,
                                        const std::map<std::string, std::uint64_t>& versions) {
  // SimRace: batch assembly reads master DB rows next to the data. Plain
  // function (no co_await), so the scope safely spans the whole body.
  simrace::NodeScope race_scope(plan_.main_server().value());
  if (simrace::enabled()) {
    simrace::on_state_access(plan_.main_server().value(), "db:master", /*is_write=*/false);
  }
  cache::UpdateBatch batch;
  for (const auto& w : writes) {
    // Last write wins for duplicate (entity, pk) pairs.
    bool duplicate = false;
    for (const auto& e : batch.entities) {
      if (e.entity == w.entity && e.pk == w.pk) duplicate = true;
    }
    if (duplicate) continue;
    if (auto row = db_.table(entity_table(w.entity)).get(w.pk)) {
      batch.entities.push_back(cache::EntityUpdate{
          w.entity, w.pk, std::move(*row), versions.at(version_key(w.entity, w.pk))});
    }
  }
  const bool push_rows = plan_.query_refresh() == QueryRefreshMode::kPush;
  for (const auto& q : affected) {
    const std::string key = q.cache_key();
    bool duplicate = false;
    for (const auto& r : batch.queries) {
      if (r.cache_key == key) duplicate = true;
    }
    if (duplicate) continue;
    cache::QueryRefresh refresh;
    refresh.cache_key = key;
    refresh.version = versions.at(key);
    if (push_rows) {
      // Re-execute next to the data and ship the fresh rows (§4.4 push).
      refresh.rows = db_.execute_immediate(q).rows;
    } else {
      refresh.invalidate_only = true;
    }
    batch.queries.push_back(std::move(refresh));
  }
  return batch;
}

std::vector<net::NodeId> Runtime::update_targets() const {
  std::vector<net::NodeId> targets;
  auto add = [&](net::NodeId n) {
    if (n == plan_.main_server()) return;
    for (auto t : targets) {
      if (t == n) return;
    }
    targets.push_back(n);
  };
  for (const auto& [entity, nodes] : plan_.ro_replicas()) {
    for (auto n : nodes) add(n);
  }
  for (auto n : plan_.query_cache_nodes()) add(n);
  return targets;
}

sim::Task<void> Runtime::push_blocking(cache::UpdateBatch batch, TraceSink* trace) {
  const sim::SimTime p0 = sim_.now();
  // §4.3: "read-write entity beans block while the update is pushed to the
  // read-only beans" — one bulk façade RMI per edge, in sequence, holding
  // the transaction open.
  const net::NodeId primary = plan_.main_server();
  // One umbrella span for the whole push phase with one child leaf per edge,
  // so a traced Commit page shows the sequential wide-area pushes as
  // distinct children. The flat total is billed once for the umbrella; the
  // per-edge updater RMIs deliberately run untraced (their wire time IS the
  // push time — tracing both would double-bill).
  const std::uint32_t span =
      trace != nullptr
          ? trace->begin_span(SpanKind::kPush, "push", primary.value(), primary.value(), p0)
          : 0;
  const net::Bytes bytes = batch.wire_bytes(cfg_.delta_encoding);
  for (net::NodeId edge : update_targets()) {
    const sim::SimTime e0 = sim_.now();
    try {
      ++blocking_pushes_;
      co_await update_rmi_->call_dynamic(primary, edge, bytes, [&]() -> sim::Task<net::Bytes> {
        co_await apply_batch(edge, batch);
        co_return 16;  // ack
      });
    } catch (const net::NetError&) {
      // Partitioned or lossy edge (retries exhausted): the transaction
      // proceeds; the replica will serve stale data until reachability
      // returns (counted by the ConsistencyTracker — availability over
      // freshness during failures).
      ++failed_pushes_;
    }
    if (trace) {
      trace->leaf(SpanKind::kPush, "push:" + topo_.node(edge).name, primary.value(),
                  edge.value(), e0, sim_.now());
    }
  }
  if (trace) {
    const sim::SimTime p1 = sim_.now();
    trace->add(SpanKind::kPush, p1 - p0);
    trace->end_span(span, p1);
  }
}

std::vector<cache::UpdateBatch> Runtime::split_by_shard(cache::UpdateBatch batch) const {
  std::vector<cache::UpdateBatch> lanes(topics_.size());
  for (cache::EntityUpdate& e : batch.entities) {
    lanes[db_.router().shard_of(e.pk)].entities.push_back(std::move(e));
  }
  // Query results span shards; their refreshes ride the coordinator lane.
  for (cache::QueryRefresh& q : batch.queries) {
    lanes[0].queries.push_back(std::move(q));
  }
  return lanes;
}

sim::Task<void> Runtime::publish_lane(std::size_t lane, cache::UpdateBatch batch) {
  // Backpressure (flow control §4): when a subscriber's backlog crosses the
  // topic's high watermark its credit gate closes, parking the coalescer
  // flush (and direct publishers) until the drain brings the backlog back
  // under the low watermark. With the gate open this completes
  // synchronously — no simulator event, so the unprotected trajectory is
  // untouched.
  if (backpressure_enabled()) co_await topics_.at(lane)->credit_wait();
  const net::Bytes bytes = batch.wire_bytes(cfg_.delta_encoding);
  co_await topics_.at(lane)->publish(plan_.main_server(), std::move(batch), bytes, nullptr);
}

sim::Task<void> Runtime::publish_async(cache::UpdateBatch batch, TraceSink* trace) {
  const sim::SimTime p0 = sim_.now();
  if (topics_.empty()) throw std::logic_error("Runtime: async updates without a topic");
  const std::uint32_t span =
      trace != nullptr
          ? trace->begin_span(SpanKind::kPublish, "publish", plan_.main_server().value(),
                              plan_.main_server().value(), p0)
          : 0;
  ++async_publishes_;
  // TACT-style order-error bound: block the writer while the slowest
  // replica lags more than the configured number of batches (summed across
  // the shard topics — with one shard this is exactly the single-topic
  // bound).
  const std::uint32_t bound = plan_.staleness_bound();
  if (bound > 0 && topics_[0]->subscriber_count() > 0) {
    const auto subs = static_cast<std::uint64_t>(topics_[0]->subscriber_count());
    auto outstanding = [&] {
      std::uint64_t published = 0;
      std::uint64_t delivered = 0;
      for (const auto& t : topics_) {
        published += t->published();
        delivered += t->delivered();
      }
      return published * subs - delivered;
    };
    while (outstanding() >= bound * subs) {
      ++bounded_waits_;
      co_await sim_.wait(sim::ms(5));
    }
  }
  // The writer only waits for the local provider to accept the message.
  co_await sim_.wait(cfg_.jms_accept);
  if (topics_.size() == 1 && coalescer_ == nullptr) {
    // Unsharded, uncoalesced: the paper's §4.5 path, event for event.
    if (backpressure_enabled()) co_await topics_[0]->credit_wait();
    const net::Bytes bytes = batch.wire_bytes(cfg_.delta_encoding);
    co_await topics_[0]->publish(plan_.main_server(), std::move(batch), bytes, trace);
  } else {
    std::vector<cache::UpdateBatch> lanes = split_by_shard(std::move(batch));
    for (std::size_t s = 0; s < lanes.size(); ++s) {
      if (lanes[s].empty()) continue;
      if (coalescer_ != nullptr) {
        // Buffered for the lane's next quantum flush; the writer is done
        // once the provider has the dirty state.
        coalescer_->enqueue(s, std::move(lanes[s]));
      } else {
        if (backpressure_enabled()) co_await topics_[s]->credit_wait();
        const net::Bytes bytes = lanes[s].wire_bytes(cfg_.delta_encoding);
        co_await topics_[s]->publish(plan_.main_server(), std::move(lanes[s]), bytes, trace);
      }
    }
  }
  if (trace) {
    const sim::SimTime p1 = sim_.now();
    trace->add(SpanKind::kPublish, p1 - p0);
    trace->end_span(span, p1);
  }
}

sim::Task<void> Runtime::apply_batch(net::NodeId node, const cache::UpdateBatch& batch) {
  co_await topo_.node(node).cpu->consume(cfg_.apply_update);
  // SimRace: the apply executes server-side at the replica node (inside the
  // update RMI / topic handler, so it is message-ordered after the writer);
  // everything below is synchronous, so one scope spans it.
  simrace::NodeScope race_scope(node.value());
  for (const auto& e : batch.entities) {
    if (plan_.has_ro_replica(e.entity, node)) {
      if (simrace::enabled()) {
        simrace::on_state_access(node.value(), ro_state_key(node, e.entity), /*is_write=*/true);
      }
      ro_cache(node, e.entity).apply_push(e.pk, e.row, e.version, sim_.now());
    }
  }
  if (plan_.has_query_cache(node)) {
    cache::QueryCache& qc = query_cache(node);
    if (simrace::enabled() && !batch.queries.empty()) {
      simrace::on_state_access(node.value(), qc_state_key(node), /*is_write=*/true);
    }
    for (const auto& q : batch.queries) {
      if (q.invalidate_only) {
        qc.invalidate(q.cache_key);
      } else {
        // Install even when the key is absent: a concurrent cache-miss may
        // have executed the query against pre-write data and its (stale)
        // fill could land after this push — the version-monotonic fill
        // then rejects it, preserving zero staleness under blocking push.
        qc.apply_push(q.cache_key, q.rows, q.version);
      }
    }
  }
}

}  // namespace mutsvc::comp

#include "component/controller.hpp"

#include <stdexcept>
#include <utility>

namespace mutsvc::comp {

std::vector<PlacementAction> EdgeShiftPolicy::decide(const PlacementSnapshot& snap) {
  std::uint64_t total = 0;
  std::uint64_t holder_pages = 0;
  net::NodeId hottest{};
  std::uint64_t hottest_pages = 0;
  bool have_hottest = false;
  for (const auto& [edge, pages] : snap.edge_pages) {
    total += pages;
    if (edge == snap.replica_holder) holder_pages = pages;
    // Strict > keeps ties resolved by edge_pages order — deterministic.
    if (!have_hottest || pages > hottest_pages) {
      hottest = edge;
      hottest_pages = pages;
      have_hottest = true;
    }
  }
  if (total == 0 || !have_hottest || hottest == snap.replica_holder) {
    streak_ = 0;
    return {};
  }
  const double hot_share = static_cast<double>(hottest_pages) / static_cast<double>(total);
  const double holder_share = static_cast<double>(holder_pages) / static_cast<double>(total);
  if (hot_share >= cfg_.high_share && holder_share <= cfg_.low_share) {
    if (hottest == candidate_) {
      ++streak_;
    } else {
      candidate_ = hottest;
      streak_ = 1;
    }
    if (streak_ >= cfg_.confirm_quanta) {
      streak_ = 0;
      PlacementAction act;
      act.kind = PlacementAction::Kind::kMigrateReplicaSet;
      act.from = snap.replica_holder;
      act.to = hottest;
      return {act};
    }
  } else {
    streak_ = 0;
  }
  return {};
}

PlacementController::PlacementController(sim::Simulator& sim, Runtime& runtime,
                                         BindingTable& bindings, MigrationManager& migrator,
                                         const PlacementConfig& cfg)
    : sim_(sim),
      runtime_(runtime),
      bindings_(bindings),
      migrator_(migrator),
      quantum_(cfg.quantum),
      canary_fraction_(cfg.canary_fraction),
      entities_(cfg.entities),
      components_(cfg.components),
      move_query_cache_(cfg.move_query_cache),
      policy_(cfg.policy ? cfg.policy() : nullptr) {
  if (quantum_ <= sim::Duration::zero()) {
    throw std::invalid_argument("PlacementController: quantum must be positive");
  }
  holder_ = initial_holder();
}

net::NodeId PlacementController::initial_holder() const {
  const DeploymentPlan& plan = runtime_.plan();
  if (!entities_.empty()) {
    for (net::NodeId edge : plan.edge_servers()) {
      if (plan.has_ro_replica(entities_.front(), edge)) return edge;
    }
  } else if (!components_.empty()) {
    for (net::NodeId n : plan.nodes_of(components_.front())) {
      for (net::NodeId edge : plan.edge_servers()) {
        if (n == edge) return edge;
      }
    }
  }
  return plan.main_server();
}

void PlacementController::start(sim::SimTime end) {
  if (started_ || policy_ == nullptr) return;
  started_ = true;
  sim_.spawn(loop(end));
}

sim::Task<void> PlacementController::loop(sim::SimTime end) {
  while (true) {
    co_await sim_.wait(quantum_);
    if (sim_.now() > end) co_return;
    // A running migration (including its forwarding epoch) owns placement;
    // skip the evaluation entirely so its quantum's deltas fold into the
    // next one rather than being dropped.
    if (migrator_.in_progress()) continue;
    PlacementSnapshot snap;
    snap.now = sim_.now();
    snap.replica_holder = holder_;
    snap.evaluations = evaluations_;
    for (net::NodeId edge : runtime_.plan().edge_servers()) {
      const std::uint64_t now_pages =
          runtime_.metrics(edge).counter(kEntryPagesCounter);
      const std::uint64_t prev = last_pages_[edge];
      snap.edge_pages.emplace_back(edge, now_pages - prev);
      last_pages_[edge] = now_pages;
    }
    ++evaluations_;
    std::vector<PlacementAction> acts = policy_->decide(snap);
    for (const PlacementAction& act : acts) {
      if (act.kind == PlacementAction::Kind::kHold) continue;
      MigrationRequest req;
      req.from = act.from;
      req.to = act.to;
      req.components = components_;
      req.entities = entities_;
      req.move_query_cache = move_query_cache_;
      req.canary_fraction = canary_fraction_;
      ActionRecord rec;
      rec.at = sim_.now();
      rec.action = act;
      rec.completed = co_await migrator_.migrate(std::move(req));
      rec.binding_version = bindings_.max_version();
      if (rec.completed) {
        holder_ = act.to;
        ++migrations_completed_;
      }
      actions_.push_back(rec);
    }
  }
}

}  // namespace mutsvc::comp

#include "component/descriptor.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

namespace mutsvc::comp {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is{s};
  std::string item;
  while (std::getline(is, item, ',')) {
    item = trim(item);
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::string node_name(const net::Topology& topo, net::NodeId id) { return topo.node(id).name; }

std::string join_nodes(const net::Topology& topo, const std::vector<net::NodeId>& nodes) {
  std::string out;
  for (auto n : nodes) {
    if (!out.empty()) out += ", ";
    out += node_name(topo, n);
  }
  return out;
}

}  // namespace

Feature feature_from_string(const std::string& name) {
  for (Feature f : {Feature::kRemoteFacade, Feature::kStubCaching,
                    Feature::kStatefulComponentCaching, Feature::kQueryCaching,
                    Feature::kAsyncUpdates}) {
    if (name == to_string(f)) return f;
  }
  throw std::invalid_argument("descriptor: unknown feature: " + name);
}

QueryRefreshMode refresh_from_string(const std::string& name) {
  if (name == "pull") return QueryRefreshMode::kPull;
  if (name == "push") return QueryRefreshMode::kPush;
  throw std::invalid_argument("descriptor: unknown query-refresh mode: " + name);
}

std::string serialize_descriptor(const DeploymentPlan& plan, const net::Topology& topo) {
  std::ostringstream os;
  os << "# mutsvc extended deployment descriptor\n";
  os << "main-server: " << node_name(topo, plan.main_server()) << "\n";
  os << "edge-servers: " << join_nodes(topo, plan.edge_servers()) << "\n";

  os << "features:";
  bool first = true;
  for (Feature f : {Feature::kRemoteFacade, Feature::kStubCaching,
                    Feature::kStatefulComponentCaching, Feature::kQueryCaching,
                    Feature::kAsyncUpdates}) {
    if (plan.has(f)) {
      os << (first ? " " : ", ") << to_string(f);
      first = false;
    }
  }
  os << "\n";
  os << "query-refresh: " << (plan.query_refresh() == QueryRefreshMode::kPull ? "pull" : "push")
     << "\n";
  os << "staleness-bound: " << plan.staleness_bound() << "\n";

  os << "\n[placement]\n";
  for (const auto& [component, nodes] : plan.placements()) {
    os << component << ": " << join_nodes(topo, nodes) << "\n";
  }

  if (!plan.ro_replicas().empty()) {
    os << "\n[read-only-replicas]\n";
    for (const auto& [entity, nodes] : plan.ro_replicas()) {
      os << entity << ": "
         << join_nodes(topo, std::vector<net::NodeId>(nodes.begin(), nodes.end())) << "\n";
    }
  }

  if (!plan.query_cache_nodes().empty()) {
    os << "\n[query-caches]\n"
       << join_nodes(topo, std::vector<net::NodeId>(plan.query_cache_nodes().begin(),
                                                    plan.query_cache_nodes().end()))
       << "\n";
  }

  os << "\n[entry-points]\n";
  for (std::uint32_t i = 0; i < topo.node_count(); ++i) {
    const net::NodeId client{i};
    if (topo.node(client).role != net::NodeRole::kClientMachine) continue;
    try {
      os << node_name(topo, client) << ": " << node_name(topo, plan.entry_point(client)) << "\n";
    } catch (const std::invalid_argument&) {
      // client machine without an entry point: omit
    }
  }
  return os.str();
}

DeploymentPlan parse_descriptor(const std::string& text, const net::Topology& topo) {
  DeploymentPlan plan;
  std::istringstream is{text};
  std::string line;
  std::string section;

  while (std::getline(is, line)) {
    const auto comment = line.find('#');
    if (comment != std::string::npos) line = line.substr(0, comment);
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') throw std::invalid_argument("descriptor: malformed section");
      section = line.substr(1, line.size() - 2);
      continue;
    }

    if (section == "query-caches") {
      for (const auto& n : split_list(line)) plan.add_query_cache(topo.find(n));
      continue;
    }

    const auto colon = line.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument("descriptor: expected 'key: value': " + line);
    }
    const std::string key = trim(line.substr(0, colon));
    const std::string value = trim(line.substr(colon + 1));

    if (section.empty()) {
      if (key == "main-server") {
        plan.set_main_server(topo.find(value));
      } else if (key == "edge-servers") {
        for (const auto& n : split_list(value)) plan.add_edge_server(topo.find(n));
      } else if (key == "features") {
        for (const auto& f : split_list(value)) plan.enable(feature_from_string(f));
      } else if (key == "query-refresh") {
        plan.set_query_refresh(refresh_from_string(value));
      } else if (key == "staleness-bound") {
        plan.set_staleness_bound(static_cast<std::uint32_t>(std::stoul(value)));
      } else {
        throw std::invalid_argument("descriptor: unknown key: " + key);
      }
    } else if (section == "placement") {
      for (const auto& n : split_list(value)) plan.place(key, topo.find(n));
    } else if (section == "read-only-replicas") {
      for (const auto& n : split_list(value)) plan.replicate_read_only(key, topo.find(n));
    } else if (section == "entry-points") {
      plan.set_entry_point(topo.find(key), topo.find(value));
    } else {
      throw std::invalid_argument("descriptor: unknown section: " + section);
    }
  }
  return plan;
}

}  // namespace mutsvc::comp

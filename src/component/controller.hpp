#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "component/binding.hpp"
#include "component/migration.hpp"
#include "component/runtime.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace mutsvc::comp {

/// What the controller shows a policy each evaluation quantum: per-edge
/// entry-page deltas read from the per-node metrics registries, plus the
/// controller's own placement state.
struct PlacementSnapshot {
  sim::SimTime now;
  /// (edge server, pages entered during the last quantum), in the plan's
  /// edge_servers() order — deterministic.
  std::vector<std::pair<net::NodeId, std::uint64_t>> edge_pages;
  /// Edge currently holding the migratable replica set (main server when
  /// no edge holds it).
  net::NodeId replica_holder;
  std::uint64_t evaluations = 0;
};

/// One action a policy asks for. kHold actions are ignored.
struct PlacementAction {
  enum class Kind : std::uint8_t { kHold, kMigrateReplicaSet };
  Kind kind = Kind::kHold;
  net::NodeId from;
  net::NodeId to;
};

/// A placement policy: a deterministic pure-ish function from snapshots to
/// actions (it may keep internal hysteresis state, but must not read clocks
/// or RNGs of its own). Fresh instances are built per Experiment via the
/// PlacementConfig factory, so sweep-slot reuse can never leak one trial's
/// hysteresis into the next.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  [[nodiscard]] virtual std::vector<PlacementAction> decide(const PlacementSnapshot& snap) = 0;
};

/// Threshold + hysteresis policy over entry-page shares: when some edge
/// carries at least `high_share` of the pages while the current holder has
/// fallen to `low_share` or below, sustained for `confirm_quanta`
/// consecutive evaluations, migrate the replica set to the hot edge.
class EdgeShiftPolicy final : public PlacementPolicy {
 public:
  struct Config {
    double high_share = 0.6;
    double low_share = 0.4;
    int confirm_quanta = 2;
  };

  explicit EdgeShiftPolicy(Config cfg) : cfg_(cfg) {}
  EdgeShiftPolicy() : EdgeShiftPolicy(Config{}) {}

  [[nodiscard]] std::vector<PlacementAction> decide(const PlacementSnapshot& snap) override;

 private:
  Config cfg_;
  net::NodeId candidate_{};
  int streak_ = 0;
};

/// Runtime-placement configuration carried by ExperimentSpec. Off by
/// default; a disabled config constructs nothing — the run is byte-identical
/// to the static-placement harness. Enabled with a null policy factory, the
/// binding table is installed and consulted on every dispatch but no
/// controller loop is spawned: still zero events, still byte-identical
/// (golden-enforced).
struct PlacementConfig {
  bool enabled = false;
  /// Controller evaluation quantum.
  sim::Duration quantum = sim::sec(10);
  /// Builds the policy; null = observe-only (no controller loop).
  std::function<std::unique_ptr<PlacementPolicy>()> policy;
  /// Canary fraction applied to controller-issued migrations (0 = direct
  /// flip).
  double canary_fraction = 0.0;
  /// Entities whose replica set controller migrations move.
  std::vector<std::string> entities;
  /// Components whose bindings controller migrations flip.
  std::vector<std::string> components;
  /// Move the edge query cache with the replica set.
  bool move_query_cache = false;
  /// Migration protocol knobs (forward epoch, notify delay, drain poll,
  /// canary hold).
  MigrationConfig migration;
};

/// Deterministic placement controller (DESIGN §17): on a fixed evaluation
/// quantum, reads per-edge entry-page counters from the per-node metrics
/// registries, hands a snapshot to the policy, and executes the actions it
/// returns through the MigrationManager. Evaluations are skipped while a
/// migration (including its forwarding epoch) is still running. Every
/// executed action is appended to a deterministic action log the benches
/// fingerprint for bit-identity.
class PlacementController {
 public:
  struct ActionRecord {
    sim::SimTime at;
    PlacementAction action;
    bool completed = false;
    std::uint64_t binding_version = 0;
  };

  PlacementController(sim::Simulator& sim, Runtime& runtime, BindingTable& bindings,
                      MigrationManager& migrator, const PlacementConfig& cfg);

  PlacementController(const PlacementController&) = delete;
  PlacementController& operator=(const PlacementController&) = delete;

  /// Spawns the controller loop; evaluations run every quantum until `end`.
  void start(sim::SimTime end);

  [[nodiscard]] const std::vector<ActionRecord>& actions() const { return actions_; }
  [[nodiscard]] std::uint64_t evaluations() const { return evaluations_; }
  [[nodiscard]] std::uint64_t migrations_completed() const { return migrations_completed_; }
  [[nodiscard]] net::NodeId replica_holder() const { return holder_; }

  /// Metrics-registry counter the harness bumps per admitted page, and the
  /// controller reads per quantum.
  static constexpr const char* kEntryPagesCounter = "placement.entry_pages";

 private:
  [[nodiscard]] sim::Task<void> loop(sim::SimTime end);
  [[nodiscard]] net::NodeId initial_holder() const;

  sim::Simulator& sim_;
  Runtime& runtime_;
  BindingTable& bindings_;
  MigrationManager& migrator_;
  sim::Duration quantum_;
  double canary_fraction_;
  std::vector<std::string> entities_;
  std::vector<std::string> components_;
  bool move_query_cache_;
  std::unique_ptr<PlacementPolicy> policy_;
  net::NodeId holder_;
  std::map<net::NodeId, std::uint64_t> last_pages_;
  std::vector<ActionRecord> actions_;
  std::uint64_t evaluations_ = 0;
  std::uint64_t migrations_completed_ = 0;
  bool started_ = false;
};

}  // namespace mutsvc::comp

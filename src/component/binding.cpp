#include "component/binding.hpp"

#include <algorithm>
#include <stdexcept>

namespace mutsvc::comp {

namespace {
/// splitmix64 finalizer (local copy: component/ does not depend on
/// workload/). Pure function, so canary routing is replay-identical.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

bool BindingTable::contains(const std::vector<net::NodeId>& nodes, net::NodeId n) {
  for (net::NodeId x : nodes) {
    if (x == n) return true;
  }
  return false;
}

net::NodeId BindingTable::resolve_in(const std::vector<net::NodeId>& nodes, net::NodeId from) {
  if (nodes.empty()) {
    throw std::logic_error("BindingTable: binding with an empty node set");
  }
  if (contains(nodes, from)) return from;
  return nodes.front();
}

bool BindingTable::canary_selects(std::uint64_t session_key, std::uint64_t salt,
                                  double fraction) {
  if (fraction <= 0.0) return false;
  if (fraction >= 1.0) return true;
  // Threshold comparison in the top 53 bits: exact for every fraction a
  // double can represent, bit-identical everywhere.
  const auto threshold = static_cast<std::uint64_t>(fraction * 9007199254740992.0);  // 2^53
  return (mix64(session_key ^ mix64(salt)) >> 11) < threshold;
}

net::NodeId BindingTable::resolve(const std::string& component, net::NodeId from,
                                  sim::SimTime now, std::uint64_t session_key) const {
  const auto it = bindings_.find(component);
  if (it == bindings_.end()) return plan_->resolve(component, from);
  const Binding& b = it->second;
  const sim::SimTime visible_at =
      contains(b.participants, from) ? b.flip_at : b.flip_at + b.notify_delay;
  if (now < visible_at) return resolve_in(b.prev_nodes, from);
  if (b.canary_fraction > 0.0 &&
      canary_selects(session_key, b.version * 0x632be59bd9b4e019ULL, b.canary_fraction)) {
    return resolve_in(b.canary_nodes, from);
  }
  return resolve_in(b.nodes, from);
}

net::NodeId BindingTable::authoritative(const std::string& component, net::NodeId at) const {
  const auto it = bindings_.find(component);
  if (it == bindings_.end()) return at;
  const Binding& b = it->second;
  // A canary deliberately routes selected sessions to the canary site; a
  // call arriving there (or at any current-binding site) is not a straggler.
  if (b.canary_fraction > 0.0 && contains(b.canary_nodes, at)) return at;
  if (contains(b.nodes, at)) return at;
  return b.nodes.front();
}

bool BindingTable::in_forward_epoch(const std::string& component, sim::SimTime now) const {
  const auto it = bindings_.find(component);
  if (it == bindings_.end()) return false;
  const Binding& b = it->second;
  return now >= b.flip_at && now < b.flip_at + forward_epoch_;
}

void BindingTable::flip(const std::string& component, std::vector<net::NodeId> nodes,
                        sim::SimTime now, sim::Duration notify_delay,
                        std::vector<net::NodeId> participants) {
  if (nodes.empty()) throw std::invalid_argument("BindingTable::flip: empty node set");
  Binding& b = bindings_[component];
  // Pre-flip location: the previous binding when one exists, else the
  // plan's static placement (the very first flip retires the plan's view).
  b.prev_nodes = b.version > 0 ? std::move(b.nodes) : plan_->nodes_of(component);
  b.nodes = std::move(nodes);
  b.flip_at = now;
  b.notify_delay = notify_delay;
  b.participants = std::move(participants);
  b.canary_nodes.clear();
  b.canary_fraction = 0.0;
  ++b.version;
  ++flips_;
}

void BindingTable::stage_canary(const std::string& component, std::vector<net::NodeId> nodes,
                                double fraction) {
  if (nodes.empty()) throw std::invalid_argument("BindingTable::stage_canary: empty node set");
  if (fraction <= 0.0 || fraction > 1.0) {
    throw std::invalid_argument("BindingTable::stage_canary: fraction must be in (0, 1]");
  }
  Binding& b = bindings_[component];
  if (b.version == 0) {
    // First binding for this component: the non-canary path must keep
    // resolving exactly like the plan.
    b.nodes = plan_->nodes_of(component);
    b.prev_nodes = b.nodes;
  }
  b.canary_nodes = std::move(nodes);
  b.canary_fraction = fraction;
  ++b.version;
}

void BindingTable::promote_canary(const std::string& component, sim::SimTime now,
                                  sim::Duration notify_delay,
                                  std::vector<net::NodeId> participants) {
  const auto it = bindings_.find(component);
  if (it == bindings_.end() || it->second.canary_fraction <= 0.0) {
    throw std::logic_error("BindingTable::promote_canary: no staged canary for " + component);
  }
  std::vector<net::NodeId> nodes = it->second.canary_nodes;
  flip(component, std::move(nodes), now, notify_delay, std::move(participants));
}

void BindingTable::cancel_canary(const std::string& component) {
  const auto it = bindings_.find(component);
  if (it == bindings_.end() || it->second.canary_fraction <= 0.0) return;
  Binding& b = it->second;
  b.canary_nodes.clear();
  b.canary_fraction = 0.0;
  ++b.version;
}

std::uint64_t BindingTable::version(const std::string& component) const {
  const auto it = bindings_.find(component);
  return it == bindings_.end() ? 0 : it->second.version;
}

std::uint64_t BindingTable::max_version() const {
  std::uint64_t v = 0;
  for (const auto& [name, b] : bindings_) v = std::max(v, b.version);
  return v;
}

const BindingTable::Binding* BindingTable::find(const std::string& component) const {
  const auto it = bindings_.find(component);
  return it == bindings_.end() ? nullptr : &it->second;
}

}  // namespace mutsvc::comp

#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <utility>

#include "net/types.hpp"

namespace mutsvc::comp {

/// Tracks which (caller node, component) pairs already hold RMI stubs.
///
/// Without the EJBHomeFactory pattern (§4.2), every remote invocation pays
/// a JNDI home lookup round trip; with it, home stubs are cached after the
/// first call and remote stubs of stateless façades are pooled too.
class StubCache {
 public:
  /// Returns true if a stub exchange is needed (and records the stub as
  /// cached for next time).
  bool need_stub_exchange(net::NodeId caller, const std::string& component) {
    auto key = std::make_pair(caller, component);
    if (cached_.contains(key)) {
      ++hits_;
      return false;
    }
    cached_.insert(key);
    ++misses_;
    return true;
  }

  void clear() { cached_.clear(); }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  std::set<std::pair<net::NodeId, std::string>> cached_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace mutsvc::comp

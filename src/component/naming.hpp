#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "net/types.hpp"

namespace mutsvc::comp {

/// Tracks which (caller node, component) pairs already hold RMI stubs.
///
/// Without the EJBHomeFactory pattern (§4.2), every remote invocation pays
/// a JNDI home lookup round trip; with it, home stubs are cached after the
/// first call and remote stubs of stateless façades are pooled too.
///
/// Layout note: the map holds a per-pair cached flag and is pre-populated
/// (prepare) for every reachable pair before traffic flows, so during a
/// run — including a parallel-domain run — lookups never mutate the map
/// structure, and each pair's flag is only ever written by its caller
/// node's own lookahead domain.
class StubCache {
 public:
  /// Pre-registers a (caller node, component) pair with an empty stub slot.
  void prepare(net::NodeId caller, const std::string& component) {
    cached_.try_emplace(std::make_pair(caller, component), false);
  }

  /// Returns true if a stub exchange is needed (and records the stub as
  /// cached for next time).
  bool need_stub_exchange(net::NodeId caller, const std::string& component) {
    auto key = std::make_pair(caller, component);
    auto it = cached_.find(key);
    if (it == cached_.end()) it = cached_.emplace(std::move(key), false).first;
    if (it->second) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    it->second = true;
    misses_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Drops every cached stub (container cold start). Flags are reset in
  /// place; the prepared map structure survives.
  void clear() {
    for (auto& [key, cached] : cached_) cached = false;
  }

  [[nodiscard]] std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  std::map<std::pair<net::NodeId, std::string>, bool> cached_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace mutsvc::comp

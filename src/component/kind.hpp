#pragma once

namespace mutsvc::comp {

/// The J2EE component taxonomy the paper works with (§2.2).
enum class ComponentKind {
  kServlet,               // web tier, holds HTTP session state
  kJsp,                   // web tier, presentation
  kJavaBean,              // web tier helper (e.g. CatalogWebImpl)
  kStatelessSessionBean,  // generic services / façades
  kStatefulSessionBean,   // per-client session state (ShoppingCart)
  kEntityBeanRW,          // shared transactional state (read-write master)
  kEntityBeanRO,          // read-only replica of an entity bean (§4.3)
  kMessageDrivenBean,     // asynchronous façade (§4.5)
};

[[nodiscard]] constexpr const char* to_string(ComponentKind k) {
  switch (k) {
    case ComponentKind::kServlet: return "servlet";
    case ComponentKind::kJsp: return "jsp";
    case ComponentKind::kJavaBean: return "javabean";
    case ComponentKind::kStatelessSessionBean: return "stateless-session";
    case ComponentKind::kStatefulSessionBean: return "stateful-session";
    case ComponentKind::kEntityBeanRW: return "entity-rw";
    case ComponentKind::kEntityBeanRO: return "entity-ro";
    case ComponentKind::kMessageDrivenBean: return "message-driven";
  }
  return "?";
}

/// Web-tier components live in the servlet container.
[[nodiscard]] constexpr bool is_web_tier(ComponentKind k) {
  return k == ComponentKind::kServlet || k == ComponentKind::kJsp ||
         k == ComponentKind::kJavaBean;
}

/// Session-oriented stateful components: per-client state, freely
/// deployable at edges (§2.2 "since stateful session components are not
/// shared they can be deployed in edge servers").
[[nodiscard]] constexpr bool is_session_state(ComponentKind k) {
  return k == ComponentKind::kServlet || k == ComponentKind::kStatefulSessionBean;
}

/// Shared stateful components: the domain layer, co-located with the data
/// source unless replicated read-only.
[[nodiscard]] constexpr bool is_shared_state(ComponentKind k) {
  return k == ComponentKind::kEntityBeanRW || k == ComponentKind::kEntityBeanRO;
}

[[nodiscard]] constexpr bool is_stateless(ComponentKind k) {
  return k == ComponentKind::kStatelessSessionBean || k == ComponentKind::kMessageDrivenBean;
}

}  // namespace mutsvc::comp

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cache/consistency.hpp"
#include "cache/query_cache.hpp"
#include "cache/read_only_cache.hpp"
#include "cache/update.hpp"
#include "component/deployment.hpp"
#include "component/locks.hpp"
#include "component/model.hpp"
#include "component/naming.hpp"
#include "component/trace.hpp"
#include "db/database.hpp"
#include "db/jdbc.hpp"
#include "messaging/coalescer.hpp"
#include "messaging/topic.hpp"
#include "net/flowcontrol.hpp"
#include "net/http.hpp"
#include "net/network.hpp"
#include "net/rmi.hpp"
#include "sim/task.hpp"
#include "stats/metrics.hpp"

namespace mutsvc::comp {

/// Container-level service demands (calibrated; see core/calibration.hpp).
struct RuntimeConfig {
  sim::Duration local_dispatch = sim::us(60);  // in-container EJB call
  sim::Duration entity_access = sim::us(150);  // entity bean instance access
  sim::Duration cache_access = sim::us(80);    // RO-cache / query-cache read
  sim::Duration apply_update = sim::us(200);   // applying one pushed batch
  sim::Duration mdb_dispatch = sim::us(300);   // onMessage dispatch (§4.5)
  sim::Duration jms_accept = sim::ms(2);       // provider accept (publish side)
  db::JdbcConfig jdbc;
  bool delta_encoding = false;  // push only modified fields (§4.3)
  /// Batched update coalescing for async propagation: zero (the default,
  /// the paper's behaviour) publishes one batch per transaction; positive
  /// buffers dirty state per shard topic and flushes one merged batch per
  /// quantum, so push cost scales with shards × edges instead of
  /// transactions × edges.
  sim::Duration coalesce_quantum = sim::Duration::zero();
  /// §4.3 vendor-style timeout invalidation for read-only beans; zero (the
  /// default, the paper's configuration) disables expiry — freshness is
  /// the push protocol's job.
  sim::Duration ro_ttl = sim::Duration::zero();
  /// Overload protection knobs (net/flowcontrol.hpp). Disabled by default:
  /// no bounds are installed, so every flow-control branch in the runtime
  /// is dead and the trajectory is bit-identical to the unprotected build.
  net::FlowControlConfig flow;
};

struct CallResult {
  std::vector<db::Row> rows;
};

class Runtime;
class BindingTable;

/// The view a running method body has of its container (the "EJB context").
class CallContext {
 public:
  CallContext(Runtime& rt, net::NodeId node, const ComponentDef& comp, const MethodDef& method,
              std::vector<db::Value> args)
      : rt_(rt), node_(node), comp_(&comp), method_(&method), args_(std::move(args)) {}

  [[nodiscard]] Runtime& runtime() { return rt_; }
  [[nodiscard]] net::NodeId node() const { return node_; }
  [[nodiscard]] const ComponentDef& component() const { return *comp_; }
  [[nodiscard]] const MethodDef& method() const { return *method_; }

  [[nodiscard]] const DeploymentPlan& plan() const;
  [[nodiscard]] bool has(Feature f) const;

  /// The request's trace sink (null when tracing is off). Nested calls
  /// inherit it automatically.
  [[nodiscard]] TraceSink* trace() const { return trace_; }

  /// The originating session's routing key (0 when the caller has none).
  /// Nested calls inherit it, so canary binding decisions are sticky across
  /// a whole call tree.
  [[nodiscard]] std::uint64_t session_key() const { return session_key_; }

  [[nodiscard]] std::size_t arg_count() const { return args_.size(); }
  [[nodiscard]] const db::Value& arg(std::size_t i) const {
    if (i >= args_.size()) throw std::out_of_range("CallContext::arg");
    return args_[i];
  }
  [[nodiscard]] std::int64_t arg_int(std::size_t i) const { return db::as_int(arg(i)); }
  [[nodiscard]] const std::string& arg_text(std::size_t i) const { return db::as_text(arg(i)); }

  /// Consume CPU on this node.
  [[nodiscard]] sim::Task<void> cpu(sim::Duration d);

  /// Invoke another component's method (local dispatch or RMI, per plan).
  [[nodiscard]] sim::Task<CallResult> call(const std::string& component,
                                           const std::string& method,
                                           std::vector<db::Value> args = {});

  /// Variadic convenience (also works around a GCC 12 bug with braced
  /// init-lists inside co_await expressions). Pass std::int64_t / double /
  /// string-ish values explicitly.
  template <class A0, class... A>
  [[nodiscard]] sim::Task<CallResult> call(const std::string& component,
                                           const std::string& method, A0&& a0, A&&... rest) {
    std::vector<db::Value> v;
    v.reserve(1 + sizeof...(A));
    v.emplace_back(db::Value(std::forward<A0>(a0)));
    (v.emplace_back(db::Value(std::forward<A>(rest))), ...);
    return call(component, method, std::move(v));
  }

  /// Raw JDBC from this node — the web tier's direct database access the
  /// paper starts from (and the façade rule eliminates).
  [[nodiscard]] sim::Task<db::QueryResult> direct_query(db::Query q);

  /// Entity read through the read-mostly machinery (§4.3): served by a local
  /// read-only replica when deployed, else by the entity's primary.
  [[nodiscard]] sim::Task<std::optional<db::Row>> read_entity(const std::string& entity,
                                                              std::int64_t pk);

  /// Aggregate/finder query through the query-cache machinery (§4.4).
  [[nodiscard]] sim::Task<db::QueryResult> cached_query(db::Query q);

  /// Transactional entity update at the primary, then propagation per the
  /// plan's update mode. `affected_queries` are the aggregate queries whose
  /// cached results this write invalidates (declared by the application —
  /// §4.4 leaves invalidating-operation identification to developers).
  [[nodiscard]] sim::Task<void> write_entity(const std::string& entity, std::int64_t pk,
                                             std::string column, db::Value v,
                                             std::vector<db::Query> affected_queries = {});

  /// Transactional insert (new bid, new comment, new order line).
  [[nodiscard]] sim::Task<void> insert_row(const std::string& entity, db::Row row,
                                           std::vector<db::Query> affected_queries = {});

  /// Allocates the next primary key for `table` (container id generator).
  [[nodiscard]] std::int64_t allocate_id(const std::string& table);

  /// Rows returned to the caller (marshalled into the RMI reply).
  std::vector<db::Row> result;

 private:
  friend class Runtime;

  struct PendingWrite {
    std::string entity;
    std::int64_t pk = 0;
  };

  [[nodiscard]] bool holds_lock(const std::pair<std::string, std::int64_t>& key) const {
    for (const auto& k : tx_locks_) {
      if (k == key) return true;
    }
    return false;
  }

  Runtime& rt_;
  net::NodeId node_;
  const ComponentDef* comp_;
  const MethodDef* method_;
  std::vector<db::Value> args_;
  TraceSink* trace_ = nullptr;
  std::uint64_t session_key_ = 0;

  // Transaction state: writes made by this method body. All of them commit
  // together when the body finishes — one update batch per transaction,
  // matching §4.3/§4.4's "one bulk RMI call".
  std::vector<PendingWrite> tx_writes_;
  std::vector<db::Query> tx_affected_;
  std::vector<std::pair<std::string, std::int64_t>> tx_locks_;
};

/// The distributed container runtime: resolves invocations against the
/// deployment plan, executes method bodies on node CPUs, and implements the
/// read-mostly / query-cache / update-propagation design rules.
class Runtime {
 public:
  Runtime(sim::Simulator& sim, net::Topology& topo, net::Network& net, net::RmiTransport& rmi,
          db::Database& db, const Application& app, DeploymentPlan plan, RuntimeConfig cfg = {});

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Invokes `component.method` on behalf of code running at `caller_node`.
  /// Pass a TraceSink to collect a per-category time breakdown of the
  /// whole call tree (null = tracing off).
  [[nodiscard]] sim::Task<CallResult> invoke(net::NodeId caller_node,
                                             const std::string& component,
                                             const std::string& method,
                                             std::vector<db::Value> args = {},
                                             TraceSink* trace = nullptr,
                                             std::uint64_t session_key = 0);

  /// Variadic convenience (see CallContext::call).
  template <class A0, class... A>
  [[nodiscard]] sim::Task<CallResult> invoke(net::NodeId caller_node,
                                             const std::string& component,
                                             const std::string& method, A0&& a0, A&&... rest) {
    std::vector<db::Value> v;
    v.reserve(1 + sizeof...(A));
    v.emplace_back(db::Value(std::forward<A0>(a0)));
    (v.emplace_back(db::Value(std::forward<A>(rest))), ...);
    return invoke(caller_node, component, method, std::move(v));
  }

  // --- accessors -----------------------------------------------------------
  [[nodiscard]] const Application& app() const { return app_; }
  [[nodiscard]] const DeploymentPlan& plan() const { return plan_; }
  [[nodiscard]] DeploymentPlan& plan() { return plan_; }
  [[nodiscard]] const RuntimeConfig& config() const { return cfg_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] net::Topology& topology() { return topo_; }
  [[nodiscard]] net::RmiTransport& rmi() { return rmi_; }
  [[nodiscard]] db::Database& database() { return db_; }
  /// Read-staleness accounting (reads/stale_reads/version lag). This is the
  /// *observed* tracker: it receives every observe_read and advance_to as a
  /// sequenced effect, so under parallel lookahead domains the stats are
  /// replayed in deterministic timestamp order at window barriers and match
  /// a sequential run exactly. The live master-version tracker backing
  /// allocate/advance/master_version stays private (main-domain state).
  [[nodiscard]] cache::ConsistencyTracker& consistency() { return observed_; }
  [[nodiscard]] LockManager& locks() { return locks_; }
  [[nodiscard]] StubCache& stubs() { return stubs_; }

  [[nodiscard]] cache::ReadOnlyCache& ro_cache(net::NodeId node, const std::string& entity);
  [[nodiscard]] cache::QueryCache& query_cache(net::NodeId node);
  [[nodiscard]] db::JdbcClient& jdbc_for(net::NodeId node);

  /// Crash-restart hook: a restarted server loses its in-memory replica
  /// state and must re-warm. Drops every ReadOnlyCache entry, the
  /// QueryCache, and the cached remote stubs held at `node`.
  void clear_node_caches(net::NodeId node);

  /// Zeroes the hit/miss/push counters of every cache without touching the
  /// cached entries. Trial harnesses call this at the warm/measure boundary
  /// so per-trial metrics are not contaminated by warm-up traffic.
  void reset_cache_stats();

  // --- per-node metrics ----------------------------------------------------
  /// The metrics registry for `node` (created on first use).
  [[nodiscard]] stats::MetricsRegistry& metrics(net::NodeId node) { return metrics_[node]; }
  [[nodiscard]] const std::map<net::NodeId, stats::MetricsRegistry>& metrics_by_node() const {
    return metrics_;
  }

  /// Attaches the application and update transports' live resilience
  /// counters (retries, timeouts, breaker transitions) to the main server's
  /// registry.
  void enable_transport_metrics() {
    rmi_.set_metrics(&metrics(plan_.main_server()), "rmi.");
    update_rmi_->set_metrics(&metrics(plan_.main_server()), "push_rmi.");
  }

  /// Snapshots cache / topic / consistency / degradation counters into the
  /// per-node registries and records one TimeSeries sample per gauge-like
  /// quantity. Read-only: sampling never perturbs the simulation.
  void sample_metrics(sim::SimTime now, sim::Duration window);

  /// The read-write master's binding to its table, via the Application.
  void bind_entity(const std::string& entity, std::string table) {
    entity_tables_[entity] = std::move(table);
  }
  [[nodiscard]] const std::string& entity_table(const std::string& entity) const;

  /// One edge of the measured component interaction graph: who invoked
  /// whom, how often, carrying how many bytes. Feeds the placement
  /// optimizer (core/placement). Pseudo-components: "__client__" for HTTP
  /// entry traffic, "query:<name>" for aggregate/finder query classes.
  struct InteractionStat {
    std::uint64_t calls = 0;
    std::uint64_t writes = 0;
    net::Bytes bytes = 0;
  };
  using InteractionProfile = std::map<std::pair<std::string, std::string>, InteractionStat>;

  /// Merged view over the per-domain profile slabs (map-ordered, so the
  /// merge is deterministic regardless of how domains interleaved).
  [[nodiscard]] const InteractionProfile& interaction_profile() const {
    merged_profile_.clear();
    for (const auto& slab : profiles_) {
      for (const auto& [key, s] : slab) {
        auto& m = merged_profile_[key];
        m.calls += s.calls;
        m.writes += s.writes;
        m.bytes += s.bytes;
      }
    }
    return merged_profile_;
  }
  void reset_interaction_profile() {
    for (auto& slab : profiles_) slab.clear();
    merged_profile_.clear();
  }

  [[nodiscard]] std::uint64_t blocking_pushes() const { return blocking_pushes_; }
  [[nodiscard]] std::uint64_t failed_pushes() const { return failed_pushes_; }
  [[nodiscard]] std::uint64_t async_publishes() const { return async_publishes_; }
  [[nodiscard]] std::uint64_t bounded_waits() const { return bounded_waits_; }
  /// Shard 0's update topic (the only one with an unsharded data tier).
  [[nodiscard]] msg::Topic<cache::UpdateBatch>* update_topic() {
    return topics_.empty() ? nullptr : topics_.front().get();
  }
  /// Shard `s`'s update topic; one per data-tier shard under async updates.
  [[nodiscard]] msg::Topic<cache::UpdateBatch>* update_topic(std::size_t s) {
    return s < topics_.size() ? topics_[s].get() : nullptr;
  }
  [[nodiscard]] std::size_t update_topic_count() const { return topics_.size(); }
  /// The batched-update coalescer; null unless async updates run with a
  /// positive coalesce_quantum.
  [[nodiscard]] msg::Coalescer<cache::UpdateBatch>* coalescer() { return coalescer_.get(); }

  // --- graceful degradation accounting ------------------------------------
  [[nodiscard]] std::uint64_t degraded_reads() const { return degraded_reads_; }
  [[nodiscard]] std::uint64_t queued_writes() const { return queued_writes_; }
  [[nodiscard]] std::uint64_t queued_writes_applied() const { return queued_writes_applied_; }
  [[nodiscard]] std::uint64_t queued_writes_dropped() const { return queued_writes_dropped_; }
  [[nodiscard]] std::uint64_t cache_rewarms() const { return cache_rewarms_; }

  /// True when all asynchronously published updates have been applied —
  /// nothing buffered in the coalescer, nothing in flight on any shard
  /// topic.
  [[nodiscard]] bool updates_quiescent() const {
    if (coalescer_ != nullptr && !coalescer_->idle()) return false;
    for (const auto& t : topics_) {
      if (!t->quiescent()) return false;
    }
    return true;
  }

  // --- runtime placement (DESIGN §17) --------------------------------------
  /// Installs (or removes, with null) the versioned runtime binding table.
  /// With a table installed, every dispatch resolves the callee's location
  /// through it instead of the static plan; an empty table resolves with
  /// exactly the plan's rule, so installation alone is byte-identical
  /// (golden-enforced).
  void set_binding_table(const BindingTable* bindings) { bindings_ = bindings; }
  [[nodiscard]] const BindingTable* binding_table() const { return bindings_; }

  /// The migration quiesce gate for `component` (created open on first
  /// use). The dispatch path only consults gates that already exist, so a
  /// run that never migrates never allocates one.
  [[nodiscard]] net::CreditGate& component_gate(const std::string& component);
  [[nodiscard]] net::CreditGate* find_component_gate(const std::string& component);

  /// Calls for `component` currently past the quiesce gate and not yet
  /// completed (counted only while a binding table is installed).
  [[nodiscard]] std::uint64_t component_in_flight(const std::string& component) const;

  /// Subscribes `node` to every update topic unless it already is (the
  /// constructor subscribes the initial update targets). Used when a
  /// migration adds a replica site after construction; removed members are
  /// handled by apply_batch's membership checks, so nodes never
  /// unsubscribe.
  void ensure_update_subscription(net::NodeId node);

  /// Ships `from`'s replica entries for `entities` (and its query cache,
  /// when `move_query_cache`) to `to` — one bulk RMI per cache on the
  /// update transport, installed through the version-monotonic apply_push
  /// so the snapshot can never roll back a concurrent push. Returns the
  /// number of entries shipped.
  [[nodiscard]] sim::Task<std::uint64_t> transfer_replica_state(net::NodeId from, net::NodeId to,
                                                                std::vector<std::string> entities,
                                                                bool move_query_cache);

  /// Drops `node`'s replica entries for `entities` (and its query cache
  /// entries, when `move_query_cache`). Migration retirement / rollback;
  /// find-only, so it never creates caches at `node`.
  void clear_replica_state(net::NodeId node, const std::vector<std::string>& entities,
                           bool move_query_cache);

  /// Stragglers the old site forwarded to the new authority during a
  /// forwarding epoch.
  [[nodiscard]] std::uint64_t forwarded_calls() const { return forwarded_calls_; }
  /// Non-authoritative arrivals after the forwarding epoch expired (still
  /// forwarded — correctness over protocol purity — but counted separately;
  /// the property battery asserts this stays zero).
  [[nodiscard]] std::uint64_t late_stragglers() const { return late_stragglers_; }

  /// True when every queued degraded-mode write has been applied (or
  /// dropped after exhausting redelivery, or terminally shed by a bounded
  /// write queue under the kDrop overflow policy).
  [[nodiscard]] bool write_queues_quiescent() const {
    return queued_writes_ ==
           queued_writes_applied_ + queued_writes_dropped_ + write_queue_shed();
  }

  // --- flow-control accounting ---------------------------------------------
  /// Queued degraded-mode writes shed by bounded write queues (kDrop), summed
  /// across edges.
  [[nodiscard]] std::uint64_t write_queue_shed() const {
    std::uint64_t n = 0;
    for (const auto& [edge, q] : write_queues_) n += q->shed();
    return n;
  }
  /// Degraded-mode writes bounced by bounded write queues (kBounce), summed
  /// across edges. Bounced writes were never accepted, so they do not count
  /// toward queued_writes().
  [[nodiscard]] std::uint64_t write_queue_bounced() const {
    std::uint64_t n = 0;
    for (const auto& [edge, q] : write_queues_) n += q->bounced();
    return n;
  }
  /// Update-fan-out deliveries shed across all shard topics (kDrop).
  [[nodiscard]] std::uint64_t topic_shed() const {
    std::uint64_t n = 0;
    for (const auto& t : topics_) n += t->shed();
    return n;
  }
  /// Async publishes bounced by bounded shard topics (kBounce).
  [[nodiscard]] std::uint64_t topic_bounced() const {
    std::uint64_t n = 0;
    for (const auto& t : topics_) n += t->bounced();
    return n;
  }
  /// Deliveries parked in per-subscriber spill buffers (kLocalOverflow).
  [[nodiscard]] std::uint64_t topic_spilled() const {
    std::uint64_t n = 0;
    for (const auto& t : topics_) n += t->spilled();
    return n;
  }
  /// Publisher stalls absorbed by topic credit gates (backpressure).
  [[nodiscard]] std::uint64_t credit_stalls() const {
    std::uint64_t n = 0;
    for (const auto& t : topics_) n += t->credit_stalls();
    return n;
  }

 private:
  friend class CallContext;

  /// A façade write accepted at an edge while the master was unreachable,
  /// queued through a local JMS topic for redelivery (graceful degradation).
  struct QueuedWrite {
    std::string entity;
    db::Query write;
    std::vector<db::Query> affected;
  };

  /// True when the middleware-level degradation policy is active.
  [[nodiscard]] bool degraded_mode() const { return rmi_.resilience().enabled; }

  /// True when publishers should wait on topic credit gates before
  /// publishing (flow control enabled, backpressure on, bounded topics).
  [[nodiscard]] bool backpressure_enabled() const {
    return cfg_.flow.enabled && cfg_.flow.backpressure && cfg_.flow.topic_queue.bounded();
  }

  /// Bounded staleness check for degraded reads: the entry at `version` may
  /// be served when it lags the master by at most the plan's TACT staleness
  /// bound (0 = unbounded during degradation).
  [[nodiscard]] bool within_staleness_bound(const std::string& vkey, std::uint64_t version);

  /// Per-edge store-and-forward write queue (provider co-located with the
  /// edge, subscriber at the master).
  [[nodiscard]] msg::Topic<QueuedWrite>& write_queue(net::NodeId edge);
  [[nodiscard]] sim::Task<void> apply_queued_write(QueuedWrite w);

  // NOTE: coroutine — all parameters by value. A const-ref parameter would
  // dangle when the lazy task outlives the caller's temporaries (e.g. a
  // default argument constructed in a non-coroutine forwarding wrapper).
  [[nodiscard]] sim::Task<CallResult> call_from(net::NodeId caller, std::string component,
                                                std::string method, std::vector<db::Value> args,
                                                std::string caller_component = "__client__",
                                                TraceSink* trace = nullptr,
                                                std::uint64_t session_key = 0);

  void record_interaction(const std::string& caller, const std::string& callee, net::Bytes bytes,
                          bool is_write = false) {
    // One slab per lookahead domain: each domain's worker only touches its
    // own map. .at() catches the misuse of enabling domains after
    // construction (the slabs are sized from sim_.domain_count() then).
    auto& stat = profiles_.at(sim_.current_domain())[{caller, callee}];
    ++stat.calls;
    if (is_write) ++stat.writes;
    stat.bytes += bytes;
  }

  [[nodiscard]] sim::Task<void> dispatch(net::NodeId node, const ComponentDef& comp,
                                         const MethodDef& method, std::vector<db::Value> args,
                                         std::vector<db::Row>* out, TraceSink* trace,
                                         std::uint64_t session_key = 0);

  [[nodiscard]] sim::Task<std::optional<db::Row>> read_entity_impl(net::NodeId node,
                                                                   std::string entity,
                                                                   std::int64_t pk,
                                                                   TraceSink* trace);

  [[nodiscard]] sim::Task<db::QueryResult> cached_query_impl(net::NodeId node, db::Query q,
                                                             TraceSink* trace);

  /// Executes a query at the main server (locally or via one façade RMI).
  /// When `pre_version` is non-null, the master version of the query's
  /// cache key is captured *at the primary*, immediately before the query
  /// executes — the latest instant that still cannot claim a version newer
  /// than the data read (and, under parallel domains, the only side of the
  /// call where the live version state may be read).
  [[nodiscard]] sim::Task<db::QueryResult> query_at_main(net::NodeId from, db::Query q,
                                                         TraceSink* trace,
                                                         std::uint64_t* pre_version = nullptr);

  /// Applies one write. When `ctx` is non-null the write joins the calling
  /// method's transaction (deferred propagation); a null ctx commits it as
  /// a standalone transaction, tracing into `trace` (the edge->primary write
  /// route threads the caller's sink through so the remote commit's lock,
  /// JDBC and push time stay on the traced request's books).
  [[nodiscard]] sim::Task<void> write_impl(CallContext* ctx, net::NodeId node,
                                           std::string entity, db::Query write,
                                           std::vector<db::Query> affected_queries,
                                           TraceSink* trace = nullptr);

  /// Commits the transaction accumulated in `ctx`: builds one update batch,
  /// propagates it per the plan's update mode, bumps master versions at the
  /// right instant (after blocking pushes, before async publish), releases
  /// locks.
  [[nodiscard]] sim::Task<void> commit_transaction(CallContext& ctx);

  [[nodiscard]] sim::Task<void> propagate(const std::vector<CallContext::PendingWrite>& writes,
                                          const std::vector<db::Query>& affected,
                                          TraceSink* trace);

  /// Builds the update batch for a set of committed writes, stamping each
  /// entry with its pre-allocated version.
  [[nodiscard]] cache::UpdateBatch build_batch(
      const std::vector<CallContext::PendingWrite>& writes,
      const std::vector<db::Query>& affected,
      const std::map<std::string, std::uint64_t>& versions);

  [[nodiscard]] sim::Task<void> push_blocking(cache::UpdateBatch batch, TraceSink* trace);
  [[nodiscard]] sim::Task<void> publish_async(cache::UpdateBatch batch, TraceSink* trace);
  [[nodiscard]] sim::Task<void> apply_batch(net::NodeId node, const cache::UpdateBatch& batch);

  /// Splits a transaction's batch into per-shard-topic lanes: entity
  /// updates route by their primary key's owner shard, query refreshes
  /// (whose results span shards) ride the coordinator lane 0.
  [[nodiscard]] std::vector<cache::UpdateBatch> split_by_shard(cache::UpdateBatch batch) const;

  /// Publishes one (possibly coalesced) batch on shard lane `lane`.
  /// NOTE: coroutine — `batch` by value.
  [[nodiscard]] sim::Task<void> publish_lane(std::size_t lane, cache::UpdateBatch batch);

  /// Edge nodes that must receive updates (RO replicas or query caches).
  [[nodiscard]] std::vector<net::NodeId> update_targets() const;

  [[nodiscard]] static std::string version_key(const std::string& entity, std::int64_t pk) {
    return entity + ":" + std::to_string(pk);
  }

  /// Observes a read through the ConsistencyTracker and, under
  /// MUTSVC_SIMCHECK, hard-fails on a stale read whenever the §4.3
  /// zero-staleness invariant applies (blocking push, no failed pushes, no
  /// degraded reads).
  void note_read(const std::string& key, std::uint64_t seen_version);

  static net::Bytes values_bytes(const std::vector<db::Value>& vals);
  static net::Bytes rows_bytes(const std::vector<db::Row>& rows);

  sim::Simulator& sim_;
  net::Topology& topo_;
  net::Network& net_;
  net::RmiTransport& rmi_;
  db::Database& db_;
  const Application& app_;
  DeploymentPlan plan_;
  RuntimeConfig cfg_;

  /// Dedicated transport for update propagation (§4.3): the updater façade
  /// keeps hot container-to-container connections, so pushes pay exactly
  /// one round trip (no ping/DGC extras).
  std::unique_ptr<net::RmiTransport> update_rmi_;

  LockManager locks_;
  StubCache stubs_;
  /// Live master-version state (allocate / advance_to / master_version).
  /// Only ever touched from the main server's lookahead domain.
  cache::ConsistencyTracker consistency_;
  /// Observed-read shadow: fed observe_read + advance_to through
  /// sim_.sequenced(), replayed in stamp order — see consistency().
  cache::ConsistencyTracker observed_;
  std::map<std::string, std::string> entity_tables_;
  std::map<std::pair<net::NodeId, std::string>, std::unique_ptr<cache::ReadOnlyCache>> ro_caches_;
  std::map<net::NodeId, std::unique_ptr<cache::QueryCache>> query_caches_;
  std::map<net::NodeId, std::unique_ptr<db::JdbcClient>> jdbc_clients_;
  /// One update topic per data-tier shard (lane s carries shard s's dirty
  /// rows); empty unless the plan runs async updates.
  std::vector<std::unique_ptr<msg::Topic<cache::UpdateBatch>>> topics_;
  std::unique_ptr<msg::Coalescer<cache::UpdateBatch>> coalescer_;
  std::map<net::NodeId, std::unique_ptr<msg::Topic<QueuedWrite>>> write_queues_;
  /// Interaction-profile slabs, one per lookahead domain (index 0 when
  /// domains are off); merged on demand into merged_profile_.
  std::vector<InteractionProfile> profiles_;
  mutable InteractionProfile merged_profile_;
  std::map<net::NodeId, stats::MetricsRegistry> metrics_;

  // Runtime placement (DESIGN §17). All null/empty unless the experiment
  // installs a binding table; every placement branch in the hot path is
  // `bindings_ != nullptr`-gated, so a disabled run is bit-identical.
  const BindingTable* bindings_ = nullptr;
  std::map<std::string, std::unique_ptr<net::CreditGate>> component_gates_;
  std::map<std::string, std::uint64_t> component_in_flight_;
  std::set<net::NodeId> update_subscribers_;
  std::uint64_t forwarded_calls_ = 0;
  std::uint64_t late_stragglers_ = 0;

  // Domain discipline for the plain counters below: the push/publish ones
  // are only written from the main server's domain; the degradation ones
  // only move under resilience/fault configs, which the experiment refuses
  // to combine with parallel domains. Reads from staged closures happen at
  // window barriers, ordered after all worker writes by the pool's barrier.
  std::uint64_t blocking_pushes_ = 0;
  std::uint64_t failed_pushes_ = 0;
  std::uint64_t async_publishes_ = 0;
  std::uint64_t bounded_waits_ = 0;
  std::uint64_t degraded_reads_ = 0;
  std::uint64_t queued_writes_ = 0;
  std::uint64_t queued_writes_applied_ = 0;
  std::uint64_t queued_writes_dropped_ = 0;
  std::uint64_t cache_rewarms_ = 0;
};

}  // namespace mutsvc::comp

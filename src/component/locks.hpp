#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "sim/resource.hpp"
#include "sim/simulator.hpp"

namespace mutsvc::comp {

/// Per-entity-instance exclusive locks.
///
/// Models the container's transactional serialization on entity beans: a
/// write transaction holds the (entity, pk) lock until commit — including,
/// under blocking push (§4.3), the wide-area propagation, which is exactly
/// the reduced-concurrency effect the paper warns about.
class LockManager {
 public:
  explicit LockManager(sim::Simulator& sim) : sim_(sim) {}

  using Key = std::pair<std::string, std::int64_t>;

  [[nodiscard]] sim::Task<void> acquire(const Key& key) {
    ++acquisitions_;
    sim::SimMutex& m = mutex_for(key);
    if (m.locked()) ++contended_;
    co_await m.acquire();
  }

  void release(const Key& key) { mutex_for(key).release(); }

  [[nodiscard]] bool is_locked(const Key& key) {
    auto it = locks_.find(key);
    return it != locks_.end() && it->second->locked();
  }

  [[nodiscard]] std::uint64_t acquisitions() const { return acquisitions_; }
  [[nodiscard]] std::uint64_t contended_acquisitions() const { return contended_; }

 private:
  sim::SimMutex& mutex_for(const Key& key) {
    auto it = locks_.find(key);
    if (it == locks_.end()) {
      it = locks_.emplace(key, std::make_unique<sim::SimMutex>(sim_)).first;
    }
    return *it->second;
  }

  sim::Simulator& sim_;
  std::map<Key, std::unique_ptr<sim::SimMutex>> locks_;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t contended_ = 0;
};

}  // namespace mutsvc::comp

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/resource.hpp"
#include "sim/simcheck.hpp"
#include "sim/simulator.hpp"

namespace mutsvc::comp {

/// Per-entity-instance exclusive locks.
///
/// Models the container's transactional serialization on entity beans: a
/// write transaction holds the (entity, pk) lock until commit — including,
/// under blocking push (§4.3), the wide-area propagation, which is exactly
/// the reduced-concurrency effect the paper warns about.
///
/// Mutexes are created on first acquire and evicted again on the release
/// that leaves them unlocked and uncontended, so the table tracks live
/// locks, not every key ever written (a long benchmark run touches millions
/// of distinct keys).
///
/// Under MUTSVC_SIMCHECK the acquire/release pair feeds the sanitizer's
/// wait-for graph: `actor` identifies the owning transaction, and a cycle
/// among waiters (or a re-entrant acquire) fails fast instead of hanging
/// the simulation.
class LockManager {
 public:
  explicit LockManager(sim::Simulator& sim) : sim_(sim) {}

  using Key = std::pair<std::string, std::int64_t>;

  // simlint:allow(lock-balance) — this IS the lock API; callers pair it with release().
  [[nodiscard]] sim::Task<void> acquire(const Key& key, simcheck::ActorId actor = 0) {
    ++acquisitions_;
    sim::SimMutex& m = mutex_for(key);
    if (m.locked()) ++contended_;
    if (simcheck::enabled()) {
      if (actor == 0) actor = simcheck::anonymous_actor();
      const simcheck::LockId id = simcheck::intern_lock(lock_name(key));
      simcheck::on_lock_request(actor, id);
      co_await m.acquire();
      simcheck::on_lock_acquired(actor, id);
    } else {
      co_await m.acquire();
    }
  }

  void release(const Key& key) {
    auto it = locks_.find(key);
    if (it == locks_.end()) {
      throw std::logic_error("LockManager::release: no mutex for key " + lock_name(key));
    }
    it->second->release();
    if (simcheck::enabled()) simcheck::on_lock_released(simcheck::intern_lock(lock_name(key)));
    // Evict once unlocked and uncontended. A release that handed the slot to
    // a queued waiter leaves the mutex locked, so contended entries survive.
    if (!it->second->locked() && it->second->queue_length() == 0) locks_.erase(it);
  }

  [[nodiscard]] bool is_locked(const Key& key) const {
    auto it = locks_.find(key);
    return it != locks_.end() && it->second->locked();
  }

  /// Number of currently held locks (the sanitizer's wait-for graph and
  /// tests use this to check holder bookkeeping).
  [[nodiscard]] std::size_t held_count() const {
    std::size_t n = 0;
    for (const auto& [key, m] : locks_) {
      if (m->locked()) ++n;
    }
    return n;
  }

  /// Mutex-table size (eviction keeps this at live locks, not keys ever seen).
  [[nodiscard]] std::size_t tracked_mutexes() const { return locks_.size(); }

  [[nodiscard]] std::uint64_t acquisitions() const { return acquisitions_; }
  [[nodiscard]] std::uint64_t contended_acquisitions() const { return contended_; }

  [[nodiscard]] static std::string lock_name(const Key& key) {
    return key.first + ":" + std::to_string(key.second);
  }

 private:
  sim::SimMutex& mutex_for(const Key& key) {
    auto it = locks_.find(key);
    if (it == locks_.end()) {
      it = locks_.emplace(key, std::make_unique<sim::SimMutex>(sim_)).first;
    }
    return *it->second;
  }

  sim::Simulator& sim_;
  std::map<Key, std::unique_ptr<sim::SimMutex>> locks_;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t contended_ = 0;
};

}  // namespace mutsvc::comp

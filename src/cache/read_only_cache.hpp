#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "db/value.hpp"
#include "sim/time.hpp"

namespace mutsvc::cache {

/// The state replica held by a read-only entity bean (§4.3).
///
/// One instance exists per (edge node, entity bean) pair. Entries carry the
/// master's version number at the time they were written, so staleness is
/// observable (ConsistencyTracker) rather than assumed.
class ReadOnlyCache {
 public:
  struct Entry {
    db::Row row;
    std::uint64_t version = 0;
    sim::SimTime refreshed_at;  // for §4.3's vendor-style timeout invalidation
  };

  explicit ReadOnlyCache(std::string entity) : entity_(std::move(entity)) {}

  [[nodiscard]] const std::string& entity() const { return entity_; }

  [[nodiscard]] std::optional<Entry> get(std::int64_t pk) {
    auto it = entries_.find(pk);
    if (it == entries_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    return it->second;
  }

  /// §4.3: "most application server vendors already support some form of
  /// read-only entity beans with a timeout invalidation mechanism". An
  /// entry older than `ttl` counts as a miss (and is dropped); a zero ttl
  /// disables expiry.
  [[nodiscard]] std::optional<Entry> get_if_fresh(std::int64_t pk, sim::SimTime now,
                                                  sim::Duration ttl) {
    auto it = entries_.find(pk);
    if (it != entries_.end() && ttl > sim::Duration::zero() &&
        now - it->second.refreshed_at > ttl) {
      ++timeout_invalidations_;
      entries_.erase(it);
      it = entries_.end();
    }
    if (it == entries_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    return it->second;
  }

  [[nodiscard]] bool contains(std::int64_t pk) const { return entries_.contains(pk); }

  /// Installs state fetched by a pull refresh (demand-driven, §4.3).
  /// Version-monotonic: a pull that raced with a concurrent push (fetched
  /// before the write committed, arrived after the push) must not clobber
  /// the newer pushed state.
  void fill(std::int64_t pk, db::Row row, std::uint64_t version,
            sim::SimTime now = sim::SimTime::origin()) {
    auto it = entries_.find(pk);
    if (it != entries_.end() && it->second.version > version) {
      ++stale_fills_rejected_;
      return;
    }
    entries_[pk] = Entry{std::move(row), version, now};
  }

  /// Applies a pushed update from the read-write master. Version-monotonic
  /// like `fill`: an async-topic push redelivered late (or reordered by the
  /// fault injector) must not roll the replica back to older state.
  void apply_push(std::int64_t pk, db::Row row, std::uint64_t version,
                  sim::SimTime now = sim::SimTime::origin()) {
    auto it = entries_.find(pk);
    if (it != entries_.end() && it->second.version > version) {
      ++stale_pushes_rejected_;
      return;
    }
    ++pushes_applied_;
    entries_[pk] = Entry{std::move(row), version, now};
  }

  /// Programmatic invalidation (the container interface §4.3 mentions).
  void invalidate(std::int64_t pk) {
    ++invalidations_;
    entries_.erase(pk);
  }

  void invalidate_all() {
    ++invalidations_;
    entries_.clear();
  }

  /// Zeroes every counter without touching the entries (see
  /// QueryCache::reset_stats).
  void reset_stats() {
    hits_ = 0;
    misses_ = 0;
    pushes_applied_ = 0;
    invalidations_ = 0;
    stale_fills_rejected_ = 0;
    stale_pushes_rejected_ = 0;
    timeout_invalidations_ = 0;
  }

  /// Key-sorted export of every entry, for migration state transfer. The
  /// sort makes the snapshot independent of unordered_map iteration order,
  /// so transfer traffic is bit-identical across runs and STL
  /// implementations.
  [[nodiscard]] std::vector<std::pair<std::int64_t, Entry>> snapshot() const {
    std::vector<std::pair<std::int64_t, Entry>> out;
    out.reserve(entries_.size());
    // Sorted below, so iteration order cannot leak.  // simlint:allow(unordered-iter)
    for (const auto& [pk, entry] : entries_) out.emplace_back(pk, entry);
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return out;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t pushes_applied() const { return pushes_applied_; }
  [[nodiscard]] std::uint64_t invalidations() const { return invalidations_; }
  [[nodiscard]] std::uint64_t stale_fills_rejected() const { return stale_fills_rejected_; }
  [[nodiscard]] std::uint64_t stale_pushes_rejected() const { return stale_pushes_rejected_; }
  [[nodiscard]] std::uint64_t timeout_invalidations() const { return timeout_invalidations_; }

  [[nodiscard]] double hit_rate() const {
    auto total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }

 private:
  std::string entity_;
  std::unordered_map<std::int64_t, Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t pushes_applied_ = 0;
  std::uint64_t invalidations_ = 0;
  std::uint64_t stale_fills_rejected_ = 0;
  std::uint64_t stale_pushes_rejected_ = 0;
  std::uint64_t timeout_invalidations_ = 0;
};

}  // namespace mutsvc::cache

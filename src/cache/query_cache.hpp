#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "db/value.hpp"
#include "net/types.hpp"

namespace mutsvc::cache {

/// Edge-server cache of aggregate SQL query results (§4.4).
///
/// Keys are `db::Query::cache_key()` strings. Invalidation is by exact key
/// or by prefix (a write to item 7 invalidates every cached bid list for
/// item 7 regardless of parameters). Refresh can be pull (drop, re-execute
/// at the main server on next read) or push (the updater sends new rows).
class QueryCache {
 public:
  struct Entry {
    std::vector<db::Row> rows;
    std::uint64_t version = 0;
  };

  [[nodiscard]] std::optional<Entry> get(const std::string& key) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    return it->second;
  }

  [[nodiscard]] bool contains(const std::string& key) const { return entries_.contains(key); }

  /// Version-monotonic, like ReadOnlyCache::fill: a pull result that raced
  /// with a concurrent push never clobbers newer state.
  void fill(const std::string& key, std::vector<db::Row> rows, std::uint64_t version = 0) {
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.version > version) return;
    entries_[key] = Entry{std::move(rows), version};
  }

  /// Version-monotonic like `fill`: a JMS push reordered or delayed (e.g.
  /// redelivered after a fault-injector loss) must never clobber newer state
  /// with older rows.
  void apply_push(const std::string& key, std::vector<db::Row> rows, std::uint64_t version) {
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.version > version) {
      ++stale_pushes_rejected_;
      return;
    }
    ++pushes_applied_;
    entries_[key] = Entry{std::move(rows), version};
  }

  void invalidate(const std::string& key) {
    if (entries_.erase(key) > 0) ++invalidations_;
  }

  /// Drops every entry whose key starts with `prefix`.
  std::size_t invalidate_prefix(const std::string& prefix) {
    std::size_t dropped = 0;
    // Order-independent sweep: every matching entry is erased and counted.  // simlint:allow(unordered-iter)
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->first.starts_with(prefix)) {
        it = entries_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    invalidations_ += dropped;
    return dropped;
  }

  void clear() { entries_.clear(); }

  /// Zeroes the hit/miss/push/invalidation counters without touching the
  /// entries. Trial harnesses call this at the warm/measure boundary so
  /// per-trial metrics are not cross-contaminated by the warm-up traffic.
  void reset_stats() {
    hits_ = 0;
    misses_ = 0;
    pushes_applied_ = 0;
    invalidations_ = 0;
    stale_pushes_rejected_ = 0;
  }

  /// Key-sorted export of every entry, for migration state transfer (see
  /// ReadOnlyCache::snapshot for the determinism rationale).
  [[nodiscard]] std::vector<std::pair<std::string, Entry>> snapshot() const {
    std::vector<std::pair<std::string, Entry>> out;
    out.reserve(entries_.size());
    // Sorted below, so iteration order cannot leak.  // simlint:allow(unordered-iter)
    for (const auto& [key, entry] : entries_) out.emplace_back(key, entry);
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return out;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t pushes_applied() const { return pushes_applied_; }
  [[nodiscard]] std::uint64_t invalidations() const { return invalidations_; }
  [[nodiscard]] std::uint64_t stale_pushes_rejected() const { return stale_pushes_rejected_; }

  [[nodiscard]] double hit_rate() const {
    auto total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }

 private:
  std::unordered_map<std::string, Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t pushes_applied_ = 0;
  std::uint64_t invalidations_ = 0;
  std::uint64_t stale_pushes_rejected_ = 0;
};

}  // namespace mutsvc::cache

#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>

namespace mutsvc::cache {

/// Tracks the master version of every entity and query result, and counts
/// how often edge reads observed stale state.
///
/// §4.3's blocking push promises *zero staleness* ("a read operation that
/// arrives after a previous write has committed will always read the
/// correct value"); §4.5 deliberately gives that up. This tracker turns the
/// claim into a measurable invariant: tests assert stale_reads() == 0 under
/// blocking push, and the staleness ablation bench quantifies the async
/// trade-off.
class ConsistencyTracker {
 public:
  /// Bumps and returns the master version for `key`
  /// (e.g. "Item:42" or a query cache key).
  std::uint64_t bump(const std::string& key) {
    const std::uint64_t v = allocate(key);
    advance_to(key, v);
    return v;
  }

  /// Reserves the next version for `key` without advancing the readable
  /// master. Concurrent transactions affecting the same key each get a
  /// distinct, monotonically increasing version — the propagation protocol
  /// installs them at replicas first and only then advances the master
  /// (advance_to), which is what makes blocking push zero-staleness even
  /// under write-write concurrency on a shared query key.
  std::uint64_t allocate(const std::string& key) {
    std::uint64_t& a = allocated_[key];
    a = std::max(a, master_version(key)) + 1;
    return a;
  }

  /// Advances the readable master version to at least `v`.
  void advance_to(const std::string& key, std::uint64_t v) {
    std::uint64_t& m = versions_[key];
    m = std::max(m, v);
    // Reclaim the allocation entry once the master has caught up with every
    // version handed out for this key: allocate() re-derives from the master,
    // so the entry only needs to outlive in-flight transactions.
    auto it = allocated_.find(key);
    if (it != allocated_.end() && it->second <= m) allocated_.erase(it);
  }

  /// Keys with a version allocated but not yet advanced to (in-flight
  /// transactions). Bounded by concurrency, not by keys ever written.
  [[nodiscard]] std::size_t pending_allocations() const { return allocated_.size(); }

  [[nodiscard]] std::uint64_t master_version(const std::string& key) const {
    auto it = versions_.find(key);
    return it == versions_.end() ? 0 : it->second;
  }

  /// Records that a read observed `seen_version` for `key`.
  void observe_read(const std::string& key, std::uint64_t seen_version) {
    ++reads_;
    std::uint64_t master = master_version(key);
    if (seen_version < master) {
      ++stale_reads_;
      lag_sum_ += master - seen_version;
    }
  }

  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t stale_reads() const { return stale_reads_; }

  [[nodiscard]] double stale_fraction() const {
    return reads_ == 0 ? 0.0 : static_cast<double>(stale_reads_) / static_cast<double>(reads_);
  }

  /// Mean number of versions a stale read lagged behind the master.
  [[nodiscard]] double mean_version_lag() const {
    return stale_reads_ == 0 ? 0.0
                             : static_cast<double>(lag_sum_) / static_cast<double>(stale_reads_);
  }

  void reset_read_stats() {
    reads_ = 0;
    stale_reads_ = 0;
    lag_sum_ = 0;
  }

 private:
  std::unordered_map<std::string, std::uint64_t> versions_;
  std::unordered_map<std::string, std::uint64_t> allocated_;
  std::uint64_t reads_ = 0;
  std::uint64_t stale_reads_ = 0;
  std::uint64_t lag_sum_ = 0;
};

}  // namespace mutsvc::cache

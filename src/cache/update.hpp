#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "db/value.hpp"
#include "net/types.hpp"

namespace mutsvc::cache {

/// One entity-state change pushed from a read-write bean to its read-only
/// replicas (§4.3). Carries the full new row; the "transfer only changed
/// fields" optimization is modelled by UpdateBatch::wire_bytes.
struct EntityUpdate {
  std::string entity;
  std::int64_t pk = 0;
  db::Row row;
  std::uint64_t version = 0;
};

/// One refreshed query result pushed to edge query caches (§4.4, push
/// protocol), or an invalidation when `rows` is empty and `invalidate_only`.
struct QueryRefresh {
  std::string cache_key;
  std::vector<db::Row> rows;
  std::uint64_t version = 0;
  bool invalidate_only = false;
};

/// Everything one committed transaction needs to propagate to one edge —
/// sent as a single bulk façade call ("updates to read-only beans and query
/// caches are made in one bulk RMI call", §4.4).
struct UpdateBatch {
  std::vector<EntityUpdate> entities;
  std::vector<QueryRefresh> queries;

  [[nodiscard]] bool empty() const { return entities.empty() && queries.empty(); }

  /// Approximate marshalled size. `delta_encoding` models the §4.3
  /// optimization of sending only modified fields.
  [[nodiscard]] net::Bytes wire_bytes(bool delta_encoding = false) const {
    net::Bytes total = 64;
    for (const auto& e : entities) {
      net::Bytes row_bytes = db::wire_size(e.row);
      total += 32 + (delta_encoding ? row_bytes / 4 : row_bytes);
    }
    for (const auto& q : queries) {
      total += 48;
      if (!q.invalidate_only) {
        for (const auto& r : q.rows) total += db::wire_size(r);
      }
    }
    return total;
  }
};

}  // namespace mutsvc::cache

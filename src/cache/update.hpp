#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "db/value.hpp"
#include "net/types.hpp"

namespace mutsvc::cache {

/// One entity-state change pushed from a read-write bean to its read-only
/// replicas (§4.3). Carries the full new row; the "transfer only changed
/// fields" optimization is modelled by UpdateBatch::wire_bytes.
struct EntityUpdate {
  std::string entity;
  std::int64_t pk = 0;
  db::Row row;
  std::uint64_t version = 0;
};

/// One refreshed query result pushed to edge query caches (§4.4, push
/// protocol), or an invalidation when `rows` is empty and `invalidate_only`.
struct QueryRefresh {
  std::string cache_key;
  std::vector<db::Row> rows;
  std::uint64_t version = 0;
  bool invalidate_only = false;
};

/// Everything one committed transaction needs to propagate to one edge —
/// sent as a single bulk façade call ("updates to read-only beans and query
/// caches are made in one bulk RMI call", §4.4).
struct UpdateBatch {
  std::vector<EntityUpdate> entities;
  std::vector<QueryRefresh> queries;

  [[nodiscard]] bool empty() const { return entities.empty() && queries.empty(); }

  /// Approximate marshalled size. `delta_encoding` models the §4.3
  /// optimization of sending only modified fields.
  [[nodiscard]] net::Bytes wire_bytes(bool delta_encoding = false) const {
    net::Bytes total = 64;
    for (const auto& e : entities) {
      net::Bytes row_bytes = db::wire_size(e.row);
      total += 32 + (delta_encoding ? row_bytes / 4 : row_bytes);
    }
    for (const auto& q : queries) {
      total += 48;
      if (!q.invalidate_only) {
        for (const auto& r : q.rows) total += db::wire_size(r);
      }
    }
    return total;
  }
};

/// Merges `from` into `into`, last-write-wins *by version* per key: for an
/// (entity, pk) or cache_key present in both, the entry with the higher
/// version survives (ties keep the incoming entry — equal versions carry
/// identical state, see the caches' apply_push). Entries only ever get
/// replaced by same-or-newer state, so coalescing batches can never roll a
/// replica back or drop a key's final state, and the merge commutes with
/// the replicas' version-monotonic apply.
inline void merge_into(UpdateBatch& into, UpdateBatch&& from) {
  for (EntityUpdate& e : from.entities) {
    bool found = false;
    for (EntityUpdate& existing : into.entities) {
      if (existing.entity == e.entity && existing.pk == e.pk) {
        found = true;
        if (e.version >= existing.version) existing = std::move(e);
        break;
      }
    }
    if (!found) into.entities.push_back(std::move(e));
  }
  for (QueryRefresh& q : from.queries) {
    bool found = false;
    for (QueryRefresh& existing : into.queries) {
      if (existing.cache_key == q.cache_key) {
        found = true;
        if (q.version >= existing.version) existing = std::move(q);
        break;
      }
    }
    if (!found) into.queries.push_back(std::move(q));
  }
}

}  // namespace mutsvc::cache

// simlint:allow-file(sim-shared-across-threads)
//
// Conservative time-windowed parallel execution (DESIGN §15). This is the
// ONE sanctioned intra-trial crossing of Simulator state and OS threads:
// within a window each worker owns a disjoint set of shards (claimed
// through an atomic ticket, like core/sweep's across-trial pool), and the
// only shared mutable state — outbox slots, staged effects, captured
// errors — is drained single-threaded at the window barrier. Determinism
// does not come from the threads at all: every event's order key is
// assigned at creation, so the merged schedule is the same at any worker
// count.

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>

#include "sim/simulator.hpp"

namespace mutsvc::sim {

/// Persistent worker pool driving one trial's windows. Workers park on a
/// condition variable between windows; each window is a generation bump.
/// The coordinating thread participates in shard execution, so `workers`
/// is the total number of executing threads (workers-1 are spawned).
class ParallelWindowPool {
 public:
  ParallelWindowPool(Simulator& sim, std::size_t workers) : sim_(sim) {
    const std::size_t spawn = workers - 1;
    threads_.reserve(spawn);
    for (std::size_t i = 0; i < spawn; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ParallelWindowPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  /// Executes one window across all shards and blocks until every
  /// participant — not merely every shard — is done. Waiting for the
  /// participants, not the shards, means no worker can still be reaching
  /// for the ticket counter when the next window resets it; the
  /// acquire/release pair on `active_` also publishes all shard writes to
  /// the coordinator before the barrier merge reads them.
  void run_window(SimTime until) {
    next_shard_.store(0, std::memory_order_relaxed);
    until_ = until;
    active_.store(static_cast<std::uint32_t>(threads_.size()) + 1,
                  std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++generation_;
    }
    cv_work_.notify_all();
    claim_shards();
    finish_pass();
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [this] { return active_.load(std::memory_order_acquire) == 0; });
  }

 private:
  void claim_shards() {
    const auto nshards = static_cast<std::uint32_t>(sim_.shards_.size());
    std::uint32_t i;
    while ((i = next_shard_.fetch_add(1, std::memory_order_relaxed)) < nshards) {
      sim_.run_shard_span(sim_.shards_[i], sim_.window_end_, until_,
                          /*capture_errors=*/true);
    }
  }

  void finish_pass() {
    if (active_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(mu_);
      cv_done_.notify_one();
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_work_.wait(lk, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
      }
      claim_shards();
      finish_pass();
    }
  }

  Simulator& sim_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::atomic<std::uint32_t> next_shard_{0};
  std::atomic<std::uint32_t> active_{0};
  SimTime until_;
};

std::size_t Simulator::run_windows_until(SimTime until, std::size_t workers) {
  if (!windowed_) {
    throw std::logic_error("Simulator::run_windows_until requires enable_windowed()");
  }
  if (workers == 0) workers = 1;

  const auto total_executed = [this] {
    std::size_t n = 0;
    for (const Shard& s : shards_) n += s.executed;
    return n;
  };
  const std::size_t before = total_executed();

  // Restore the caller's scheduling domain and refresh the global executed
  // count even when a captured error propagates out of the barrier.
  struct Restore {
    Simulator& sim;
    DomainId prev;
    ~Restore() {
      Simulator::set_current_domain(prev);
      std::size_t n = 0;
      for (const Shard& s : sim.shards_) n += s.executed;
      sim.executed_ = n;
    }
  } restore{*this, current_domain()};

  std::optional<ParallelWindowPool> pool;
  if (workers > 1 && shards_.size() > 1) pool.emplace(*this, workers);

  const std::int64_t width = window_.count_micros();
  for (;;) {
    SimTime front = SimTime::max();
    for (const Shard& s : shards_) {
      if (!s.heap.empty() && s.heap.front().at < front) front = s.heap.front().at;
    }
    if (front == SimTime::max() || front > until) break;
    // Windows live on a fixed grid so the partition of events into windows
    // is a pure function of event times, never of execution pacing.
    window_end_ = SimTime::from_micros((front.count_micros() / width + 1) * width);
    if (pool) {
      pool->run_window(until);
    } else {
      for (Shard& s : shards_) run_shard_span(s, window_end_, until, /*capture_errors=*/true);
    }
    merge_barrier();
  }

  if (until != SimTime::max()) {
    for (Shard& s : shards_) {
      if (s.now < until) s.now = until;
    }
  }
  return total_executed() - before;
}

}  // namespace mutsvc::sim

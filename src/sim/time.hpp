#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>

namespace mutsvc::sim {

/// A span of simulated time, with microsecond resolution.
///
/// Strong type: cannot be silently mixed with raw integers or wall-clock
/// time. Construct via the `us()` / `ms()` / `sec()` factories.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration micros(std::int64_t v) { return Duration{v}; }
  [[nodiscard]] static constexpr Duration millis(double v) {
    return Duration{static_cast<std::int64_t>(v * 1000.0)};
  }
  [[nodiscard]] static constexpr Duration seconds(double v) {
    return Duration{static_cast<std::int64_t>(v * 1'000'000.0)};
  }
  [[nodiscard]] static constexpr Duration zero() { return Duration{0}; }
  [[nodiscard]] static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t count_micros() const { return micros_; }
  [[nodiscard]] constexpr double as_millis() const { return static_cast<double>(micros_) / 1000.0; }
  [[nodiscard]] constexpr double as_seconds() const {
    return static_cast<double>(micros_) / 1'000'000.0;
  }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration& operator+=(Duration o) {
    micros_ += o.micros_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    micros_ -= o.micros_;
    return *this;
  }
  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.micros_ + b.micros_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.micros_ - b.micros_}; }
  friend constexpr Duration operator*(Duration a, double k) {
    return Duration{static_cast<std::int64_t>(static_cast<double>(a.micros_) * k)};
  }
  friend constexpr Duration operator*(double k, Duration a) { return a * k; }
  friend constexpr double operator/(Duration a, Duration b) {
    return static_cast<double>(a.micros_) / static_cast<double>(b.micros_);
  }

  friend std::ostream& operator<<(std::ostream& os, Duration d) {
    return os << d.as_millis() << "ms";
  }

 private:
  explicit constexpr Duration(std::int64_t v) : micros_(v) {}
  std::int64_t micros_ = 0;
};

/// Convenience factories, intended to be brought in with
/// `using namespace mutsvc::sim::literals;` or qualified.
[[nodiscard]] constexpr Duration us(std::int64_t v) { return Duration::micros(v); }
[[nodiscard]] constexpr Duration ms(double v) { return Duration::millis(v); }
[[nodiscard]] constexpr Duration sec(double v) { return Duration::seconds(v); }

/// An absolute point on the simulated clock (microseconds since sim start).
class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime origin() { return SimTime{}; }
  [[nodiscard]] static constexpr SimTime from_micros(std::int64_t v) { return SimTime{v}; }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t count_micros() const { return micros_; }
  [[nodiscard]] constexpr double as_millis() const { return static_cast<double>(micros_) / 1000.0; }
  [[nodiscard]] constexpr double as_seconds() const {
    return static_cast<double>(micros_) / 1'000'000.0;
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  friend constexpr SimTime operator+(SimTime t, Duration d) {
    return SimTime{t.micros_ + d.count_micros()};
  }
  friend constexpr SimTime operator+(Duration d, SimTime t) { return t + d; }
  friend constexpr SimTime operator-(SimTime t, Duration d) {
    return SimTime{t.micros_ - d.count_micros()};
  }
  friend constexpr Duration operator-(SimTime a, SimTime b) {
    return Duration::micros(a.micros_ - b.micros_);
  }

  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.as_millis() << "ms";
  }

 private:
  explicit constexpr SimTime(std::int64_t v) : micros_(v) {}
  std::int64_t micros_ = 0;
};

}  // namespace mutsvc::sim

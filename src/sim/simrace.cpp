#include "sim/simrace.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace mutsvc::simrace {

namespace detail {

namespace {
bool env_enabled() {
  const char* v = std::getenv("MUTSVC_SIMRACE");
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "on") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "yes") == 0;
}
}  // namespace

std::atomic<bool> g_enabled{env_enabled()};

}  // namespace detail

namespace {

constexpr std::size_t kMaxFindingMessages = 64;
constexpr std::uint32_t kNoDomain = 0xffffffffu;

/// Last-epoch state of one instrumented key. A full vector-clock-per-reader
/// history is unnecessary for the zero-race bar this enforces: tracking the
/// last write and the last access (FastTrack-style epochs) catches every
/// unordered write-access pair against the most recent conflicting epoch.
struct KeyState {
  std::uint32_t write_domain = kNoDomain;
  std::vector<std::uint64_t> write_clock;
  std::uint32_t access_domain = kNoDomain;
  std::vector<std::uint64_t> access_clock;
};

/// All analyzer state. One simulation is single-threaded (one event loop),
/// and the sweep runner pins each trial to one worker thread, so a
/// thread-local singleton needs no synchronization: concurrent trials get
/// disjoint registries, and reset() at trial start makes the state
/// trial-scoped regardless of which thread ran it.
struct Registry {
  Report report;

  bool configured = false;
  std::vector<std::uint32_t> domain_of;  // node id -> domain id
  std::vector<std::string> names;        // node id -> name
  std::size_t domains = 0;
  std::vector<std::vector<std::uint64_t>> clocks;  // per-domain vector clock

  std::uint32_t current = kNoNode;  // innermost NodeScope

  std::map<std::string, KeyState, std::less<>> keys;

  void add_finding(std::string msg) {
    if (report.findings.size() < kMaxFindingMessages) report.findings.push_back(std::move(msg));
  }

  [[nodiscard]] std::string name_of(std::uint32_t node) const {
    if (node < names.size() && !names[node].empty()) return names[node];
    return "node-" + std::to_string(node);
  }
};

Registry& reg() {
  static thread_local Registry r;
  return r;
}

/// Pointwise a >= b (b empty counts as dominated).
bool dominates(const std::vector<std::uint64_t>& a, const std::vector<std::uint64_t>& b) {
  if (b.size() > a.size()) return false;
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (a[i] < b[i]) return false;
  }
  return true;
}

}  // namespace

void set_enabled(bool on) { detail::g_enabled = on; }

void reset() { reg() = Registry{}; }

const Report& report() { return reg().report; }

void configure(std::vector<std::uint32_t> domain_of_node, std::vector<std::string> node_names) {
  Registry& r = reg();
  r.domain_of = std::move(domain_of_node);
  r.names = std::move(node_names);
  std::uint32_t max_domain = 0;
  for (std::uint32_t d : r.domain_of) max_domain = std::max(max_domain, d);
  r.domains = r.domain_of.empty() ? 0 : static_cast<std::size_t>(max_domain) + 1;
  r.clocks.assign(r.domains, std::vector<std::uint64_t>(r.domains, 0));
  r.configured = !r.domain_of.empty();
}

bool configured() { return reg().configured; }

std::uint32_t domain_of(std::uint32_t node) {
  const Registry& r = reg();
  if (!r.configured || node >= r.domain_of.size()) return kNoNode;
  return r.domain_of[node];
}

namespace detail {

std::uint32_t swap_current(std::uint32_t node) {
  Registry& r = reg();
  const std::uint32_t prev = r.current;
  r.current = node;
  return prev;
}

void restore_current(std::uint32_t node) { reg().current = node; }

}  // namespace detail

std::uint32_t current_node() { return reg().current; }

MessageToken on_send(std::uint32_t from) {
  MessageToken t;
  t.from = from;
  Registry& r = reg();
  if (!r.configured || from >= r.domain_of.size()) return t;
  std::vector<std::uint64_t>& vc = r.clocks[r.domain_of[from]];
  ++vc[r.domain_of[from]];
  t.clock = vc;
  return t;
}

void on_delivered(const MessageToken& token, std::uint32_t to) {
  Registry& r = reg();
  if (!r.configured || token.clock.empty() || to >= r.domain_of.size()) return;
  std::vector<std::uint64_t>& vc = r.clocks[r.domain_of[to]];
  for (std::size_t i = 0; i < vc.size() && i < token.clock.size(); ++i) {
    vc[i] = std::max(vc[i], token.clock[i]);
  }
  ++vc[r.domain_of[to]];
  ++r.report.message_edges;
}

void on_link_crossing(std::uint32_t from, std::uint32_t to, std::int64_t declared_us,
                      std::int64_t observed_us) {
  Registry& r = reg();
  LinkStat& ls = r.report.wan_links[{from, to}];
  ls.declared_us = declared_us;
  if (ls.min_observed_us < 0 || observed_us < ls.min_observed_us) {
    ls.min_observed_us = observed_us;
  }
  ++ls.crossings;
  if (observed_us < declared_us) {
    ++r.report.lookahead_violations;
    r.add_finding("lookahead violation: " + r.name_of(from) + "->" + r.name_of(to) +
                  " crossed in " + std::to_string(observed_us) + "us < declared " +
                  std::to_string(declared_us) + "us");
  }
}

void on_state_access(std::uint32_t owner_node, const std::string& key, bool is_write) {
  Registry& r = reg();
  if (!r.configured || r.current == kNoNode || r.current >= r.domain_of.size()) return;
  const std::uint32_t acting = r.current;
  const std::uint32_t ad = r.domain_of[acting];
  const std::uint32_t od =
      owner_node < r.domain_of.size() ? r.domain_of[owner_node] : kNoDomain;
  ++r.report.scoped_accesses;
  if (od != kNoDomain && od != ad) ++r.report.cross_domain_accesses;

  std::vector<std::uint64_t>& vc = r.clocks[ad];
  KeyState& ks = r.keys[key];

  // An access must be ordered after the key's last write from another
  // domain; a write must additionally be ordered after its last access.
  // "Ordered" means the acting domain's clock dominates that epoch — i.e.
  // a chain of delivered messages carried the knowledge here.
  if (ks.write_domain != kNoDomain && ks.write_domain != ad &&
      !dominates(vc, ks.write_clock)) {
    ++r.report.races;
    r.add_finding("race on '" + key + "': " + (is_write ? "write" : "read") + " at " +
                  r.name_of(acting) + " (domain " + std::to_string(ad) +
                  ") is not ordered after the last write from domain " +
                  std::to_string(ks.write_domain) + " by any message edge");
  } else if (is_write && ks.access_domain != kNoDomain && ks.access_domain != ad &&
             !dominates(vc, ks.access_clock)) {
    ++r.report.races;
    r.add_finding("race on '" + key + "': write at " + r.name_of(acting) + " (domain " +
                  std::to_string(ad) + ") is not ordered after the last access from domain " +
                  std::to_string(ks.access_domain) + " by any message edge");
  }

  ++vc[ad];
  if (is_write) {
    ks.write_domain = ad;
    ks.write_clock = vc;
  }
  ks.access_domain = ad;
  ks.access_clock = vc;
}

}  // namespace mutsvc::simrace

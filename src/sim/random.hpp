#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace mutsvc::sim {

/// A deterministic, named random stream.
///
/// Every source of randomness in a simulation draws from its own stream,
/// derived from the root seed and a name; this keeps runs reproducible and
/// makes components statistically independent of each other's draw order.
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed)
      : engine_(seed), seed_mix_(0xcbf29ce484222325ULL ^ (seed * 0x9e3779b97f4a7c15ULL)) {}

  /// Derives an independent child stream. The child's seed is a stable
  /// function of this stream's seed and `name` (not of any draws made).
  [[nodiscard]] RngStream fork(std::string_view name) const {
    std::uint64_t h = seed_mix_;
    for (char c : name) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      h *= 0x100000001b3ULL;  // FNV-1a prime
    }
    return RngStream{h, /*mix=*/h * 0x9e3779b97f4a7c15ULL};
  }

  [[nodiscard]] double uniform01() {
    return std::uniform_real_distribution<double>{0.0, 1.0}(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }

  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }

  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution{p}(engine_);
  }

  [[nodiscard]] double exponential(double mean) {
    if (mean <= 0.0) throw std::invalid_argument("exponential: mean must be > 0");
    return std::exponential_distribution<double>{1.0 / mean}(engine_);
  }

  [[nodiscard]] Duration exponential(Duration mean) {
    return Duration::seconds(exponential(mean.as_seconds()));
  }

  /// Picks an index in [0, weights.size()) with probability proportional to
  /// its weight. Weights need not be normalized.
  [[nodiscard]] std::size_t weighted_index(std::span<const double> weights) {
    if (weights.empty()) throw std::invalid_argument("weighted_index: empty weights");
    double total = 0.0;
    for (double w : weights) {
      if (w < 0.0) throw std::invalid_argument("weighted_index: negative weight");
      total += w;
    }
    if (total <= 0.0) throw std::invalid_argument("weighted_index: zero total weight");
    double r = uniform01() * total;
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (r < acc) return i;
    }
    return weights.size() - 1;
  }

  template <class T>
  [[nodiscard]] const T& pick(const std::vector<T>& items) {
    if (items.empty()) throw std::invalid_argument("pick: empty vector");
    return items[static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

 private:
  RngStream(std::uint64_t seed, std::uint64_t mix) : engine_(seed), seed_mix_(mix) {}

  std::mt19937_64 engine_;
  std::uint64_t seed_mix_;
};

}  // namespace mutsvc::sim

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace mutsvc::simrace {

/// SimRace: the compiled-in, off-by-default node-isolation analyzer — the
/// dynamic half of the SimRace tooling (the static half lives in
/// tools/simlint).
///
/// ROADMAP item 2 (intra-trial parallel simulation) rests on one claim: no
/// event touches another node's state except through a Network::deliver
/// edge whose link latency bounds the lookahead window. Enabled with
/// MUTSVC_SIMRACE=1 (or set_enabled), SimRace checks that claim on real
/// runs:
///
///  - nodes are partitioned into *lookahead domains*: the connected
///    components of the sub-WAN-threshold link graph. LAN links give no
///    usable lookahead, so a LAN island (main + its rdbms shards + its
///    client machines) would share one event queue; only WAN links are
///    parallelization boundaries (Topology::lookahead_domains);
///  - instrumented synchronous sections declare the node they execute on
///    via the NodeScope RAII (threaded through component/runtime,
///    net/network, messaging/topic), and state probes record which node's
///    object is touched;
///  - every completed Network::deliver is a happens-before edge: the
///    sender domain's vector clock is snapshotted at send and joined into
///    the receiver domain's clock at arrival;
///  - an access to state last written by a *different* domain that is not
///    ordered after that write by a chain of message edges is exactly a
///    pair that would race under per-node event queues — it is counted and
///    reported;
///  - per directed WAN link, the minimum observed event-crossing time
///    (hop ingress to last byte out) is recorded; the conservative
///    executor may only rely on lookahead >= the declared latency, so
///    min observed < declared is a lookahead violation. tools/lookahead
///    turns these stats into the JSON "lookahead certificate" gated in CI.
///
/// Every probe is a no-op (one relaxed bool load) when disabled, and an
/// enabled run schedules no events and draws no randomness: instrumented
/// runs are bit-identical to plain runs (enforced by test).
///
/// NodeScope is a thread_local and MUST only span synchronous sections —
/// never a co_await — or interleaved coroutines would corrupt it. Probe
/// sites in coroutines scope each synchronous block separately.

/// Thrown by future hard-failing modes; today races are recorded, not
/// thrown, so one run reports every unordered pair. Derives from
/// logic_error so retry paths can never swallow it.
class SimRaceError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Sentinel: "no node" (no scope active / unconfigured).
inline constexpr std::uint32_t kNoNode = 0xffffffffu;

/// Per-directed-WAN-link crossing statistics for the lookahead certificate.
struct LinkStat {
  std::int64_t declared_us = 0;       // Link::latency
  std::int64_t min_observed_us = -1;  // -1 until the first crossing
  std::uint64_t crossings = 0;
};

/// Aggregate findings of one analyzed run (thread-local, trial-scoped
/// under the sweep runner, like simcheck::Report).
struct Report {
  std::uint64_t scoped_accesses = 0;        // probes seen inside a NodeScope
  std::uint64_t cross_domain_accesses = 0;  // acting domain != owner domain
  std::uint64_t races = 0;                  // unordered cross-domain pairs
  std::uint64_t message_edges = 0;          // completed deliveries
  std::uint64_t lookahead_violations = 0;   // observed crossing < declared
  /// Human-readable messages, bounded (the counters are exhaustive).
  std::vector<std::string> findings;
  /// Keyed by (from, to) node ids of each directed WAN link crossed.
  std::map<std::pair<std::uint32_t, std::uint32_t>, LinkStat> wan_links;

  [[nodiscard]] std::uint64_t total() const { return races + lookahead_violations; }
};

namespace detail {
extern std::atomic<bool> g_enabled;  // initialized from MUTSVC_SIMRACE at startup
}

/// True when the analyzer is active. Callers gate probe calls on this so
/// the disabled path stays a single relaxed load (and builds no keys).
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Programmatic override of the MUTSVC_SIMRACE environment switch (tests).
void set_enabled(bool on);

/// Clears all tracked state, the domain map, and the report (call between
/// independent runs; the sweep runner resets at every trial start).
void reset();

/// The calling thread's findings.
[[nodiscard]] const Report& report();

// --- topology wiring ---------------------------------------------------------

/// Installs the node -> lookahead-domain map (index = node id) and the node
/// names used in findings. Called by Experiment construction when enabled;
/// until configured every probe is a no-op.
void configure(std::vector<std::uint32_t> domain_of_node, std::vector<std::string> node_names);

[[nodiscard]] bool configured();

/// Domain of `node` (kNoNode when unconfigured / out of range).
[[nodiscard]] std::uint32_t domain_of(std::uint32_t node);

// --- node scopes -------------------------------------------------------------

namespace detail {
[[nodiscard]] std::uint32_t swap_current(std::uint32_t node);
void restore_current(std::uint32_t node);
}  // namespace detail

/// The node whose synchronous section is executing (kNoNode outside any
/// scope — harness/setup code stays unattributed and unflagged).
[[nodiscard]] std::uint32_t current_node();

/// RAII: declares that the enclosed *synchronous* section executes on
/// `node`. The current node is a thread_local, so a scope must never span
/// a co_await — interleaved coroutines would see each other's scopes.
/// Inert (no TLS touch) when the analyzer is disabled at construction.
class NodeScope {
 public:
  explicit NodeScope(std::uint32_t node) {
    if (enabled()) {
      prev_ = detail::swap_current(node);
      active_ = true;
    }
  }
  NodeScope(const NodeScope&) = delete;
  NodeScope& operator=(const NodeScope&) = delete;
  ~NodeScope() {
    if (active_) detail::restore_current(prev_);
  }

 private:
  std::uint32_t prev_ = kNoNode;
  bool active_ = false;
};

// --- happens-before edges ----------------------------------------------------

/// Snapshot of the sender domain's vector clock, carried by one in-flight
/// message. A token that is destroyed without on_delivered (message lost)
/// creates no happens-before edge — exactly the semantics of a drop.
struct MessageToken {
  std::uint32_t from = kNoNode;
  std::vector<std::uint64_t> clock;
};

/// Called at Network::deliver entry (after route resolution): ticks the
/// sender domain's clock and snapshots it.
[[nodiscard]] MessageToken on_send(std::uint32_t from);

/// Called when the last hop completes: joins the carried snapshot into the
/// receiver domain's clock. This is the ONLY way one domain's knowledge
/// reaches another — matching the parallel executor, where a message is
/// the only cross-queue synchronization.
void on_delivered(const MessageToken& token, std::uint32_t to);

/// Called per completed WAN hop with the link's declared propagation
/// latency and the observed ingress-to-delivery time (both µs). Observed <
/// declared is a lookahead violation (counted + reported); the minimum per
/// link feeds the lookahead certificate.
void on_link_crossing(std::uint32_t from, std::uint32_t to, std::int64_t declared_us,
                      std::int64_t observed_us);

// --- state access probes -----------------------------------------------------

/// Records that the current scope's node touches state owned by
/// `owner_node` under `key` (e.g. "rocache:edge-1:item"). Outside any
/// NodeScope the probe is a no-op (harness code). A cross-domain access
/// not ordered (vector-clock dominance) after the key's last write — or a
/// write not ordered after its last access — is a race.
void on_state_access(std::uint32_t owner_node, const std::string& key, bool is_write);

}  // namespace mutsvc::simrace

#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace mutsvc::simcheck {

/// SimCheck: the compiled-in, off-by-default runtime simulation sanitizer.
///
/// Enabled with MUTSVC_SIMCHECK=1 (or programmatically via set_enabled),
/// it threads lightweight probes through the lock layer, the write path,
/// and the propagation protocols, and turns the paper's correctness claims
/// into hard-failing invariants:
///
///  - a wait-for graph over LockManager/SimMutex acquisitions detects
///    deadlock cycles (and re-entrant self-deadlock) at acquire time, and
///    records lock-order inversions (potential deadlocks) as findings;
///  - a suspension-point write-overlap detector flags two coroutines
///    mutating the same (entity, pk) state concurrently without both
///    holding its lock;
///  - protocol probes hard-fail when a stale read is observed under
///    blocking push (§4.3 promises zero staleness) or when the RMI
///    exactly-once memoization executes server work twice for one call id.
///
/// Every probe is a no-op (one relaxed bool load) when the sanitizer is
/// disabled, so instrumented code costs nothing in normal runs. The
/// sanitizer itself never schedules events or draws randomness: an enabled
/// run follows the exact same trajectory as an uninstrumented one.

/// Thrown on a hard invariant violation (deadlock cycle, stale read under
/// blocking push, double server execution). Derives from logic_error so it
/// is never swallowed by the transport's NetError handling.
class SimCheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Aggregate findings of one sanitized run.
struct Report {
  std::uint64_t deadlocks = 0;
  std::uint64_t lock_order_inversions = 0;
  std::uint64_t write_overlaps = 0;
  std::uint64_t stale_read_violations = 0;
  std::uint64_t double_executions = 0;
  /// Human-readable messages, bounded (the counters are exhaustive).
  std::vector<std::string> findings;

  [[nodiscard]] std::uint64_t total() const {
    return deadlocks + lock_order_inversions + write_overlaps + stale_read_violations +
           double_executions;
  }
};

namespace detail {
extern std::atomic<bool> g_enabled;  // initialized from MUTSVC_SIMCHECK at startup
}

/// True when the sanitizer is active. Callers gate probe calls on this so
/// the disabled path stays a single relaxed load.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Programmatic override of the MUTSVC_SIMCHECK environment switch (tests).
void set_enabled(bool on);

/// Clears all tracked state and the report (call between independent runs).
///
/// All registry state (locks, write spans, the report) is thread-local:
/// each sweep worker thread sanitizes its own trials independently, and the
/// parallel trial executor resets the state at the start of every trial, so
/// a sanitized trial's behavior does not depend on which thread ran it.
/// Hard violations still throw and propagate out of the sweep.
void reset();

/// The calling thread's findings (trial-scoped under the sweep runner).
[[nodiscard]] const Report& report();

// --- lock instrumentation ----------------------------------------------------

/// Opaque identity of a logical transaction / coroutine chain. Zero is
/// never a valid actor.
using ActorId = std::uint64_t;
/// Opaque identity of one lock (interned by name, stable across the
/// LockManager's mutex eviction).
using LockId = std::uint64_t;

/// A fresh synthetic actor for contexts with no natural identity
/// (standalone transactions holding a single lock).
[[nodiscard]] ActorId anonymous_actor();

/// Derives an actor id from a stable object address (e.g. a CallContext).
[[nodiscard]] inline ActorId actor_from_pointer(const void* p) noexcept {
  return static_cast<ActorId>(reinterpret_cast<std::uintptr_t>(p));
}

/// Interns `name` ("entity:pk") to a stable lock id.
[[nodiscard]] LockId intern_lock(const std::string& name);

/// Called before suspending on a contended lock (or acquiring a free one).
/// Throws SimCheckError when granting the wait would close a cycle in the
/// wait-for graph, or on a re-entrant acquire by the current holder.
void on_lock_request(ActorId actor, LockId lock);

/// Called after the lock is granted. Updates holder bookkeeping and the
/// global lock-order graph; records (but does not throw on) lock-order
/// inversions.
void on_lock_acquired(ActorId actor, LockId lock);

/// Called on release. The holder is looked up internally, so release paths
/// that have no actor in scope stay uninstrumented-simple.
void on_lock_released(LockId lock);

// --- suspension-point write-overlap detector ---------------------------------

/// Opens a write span on `key` ("entity:pk") for `actor`. If another
/// actor's span is already active on the key and either side does not hold
/// the entity lock, a write-overlap finding is recorded. Returns a token
/// for on_write_end.
[[nodiscard]] std::uint64_t on_write_begin(ActorId actor, const std::string& key,
                                           bool holds_lock);
void on_write_end(std::uint64_t token);

/// RAII write span covering the suspension points of one entity mutation.
/// Inert when the sanitizer is disabled at construction.
class WriteGuard {
 public:
  WriteGuard(ActorId actor, const std::string& key, bool holds_lock) {
    if (enabled()) {
      token_ = on_write_begin(actor, key, holds_lock);
      active_ = true;
    }
  }
  WriteGuard(const WriteGuard&) = delete;
  WriteGuard& operator=(const WriteGuard&) = delete;
  ~WriteGuard() {
    if (active_) on_write_end(token_);
  }

 private:
  std::uint64_t token_ = 0;
  bool active_ = false;
};

// --- protocol invariant probes -----------------------------------------------

/// Allocates a unique id for one resilient RMI call (spanning its retries).
[[nodiscard]] std::uint64_t begin_rmi_call();

/// Marks the server-side work of `call_id` as executing. Throws
/// SimCheckError on a second execution for the same id — the exactly-once
/// memoization layer must replay completed work, never re-run it.
void on_server_execution(std::uint64_t call_id);

/// Zero-staleness probe (§4.3). `invariant_applies` is true when the run is
/// under blocking push with no failed pushes and no degraded reads — i.e.
/// when the paper's claim must hold unconditionally. Throws SimCheckError
/// when it does not.
void probe_zero_staleness(std::uint64_t stale_reads, bool invariant_applies);

}  // namespace mutsvc::simcheck

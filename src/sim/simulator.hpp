#pragma once

#include <coroutine>
#include <cstdint>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace mutsvc::sim {

/// Discrete-event simulation kernel.
///
/// Owns the virtual clock and the event heap. Events scheduled for the same
/// time fire in insertion order (stable FIFO tie-break), which makes runs
/// fully deterministic.
///
/// Hot-path layout: the heap itself holds 24-byte POD nodes (time, FIFO
/// sequence, slab slot), so sift operations are plain memmoves with no
/// callable moves; the callables live in a slab of `EventFn` slots recycled
/// through a freelist. Slot recycling is driven purely by the (deterministic)
/// event order, so it never perturbs results.
class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (clamped to now()).
  void schedule_at(SimTime at, EventFn fn);

  /// Schedules `fn` to run `after` from now.
  void schedule_after(Duration after, EventFn fn) {
    schedule_at(now_ + after, std::move(fn));
  }

  /// Launches a top-level coroutine. The task starts immediately (runs
  /// until its first suspension point) and its frame self-destroys on
  /// completion. An exception escaping a detached task terminates the
  /// simulation with a diagnostic — detached failures must not be silent.
  void spawn(Task<void> task);

  /// Awaitable that suspends the current task for `d` of simulated time.
  [[nodiscard]] auto wait(Duration d) {
    struct Awaiter {
      Simulator& sim;
      Duration d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule_after(d, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// Awaitable that reschedules the current task at the back of the
  /// current-time event queue (a cooperative yield).
  [[nodiscard]] auto yield() { return wait(Duration::zero()); }

  /// Runs until the event queue empties or the clock passes `until`.
  /// Returns the number of events executed.
  std::size_t run_until(SimTime until = SimTime::max());

  /// Runs for `d` of simulated time from the current clock.
  std::size_t run_for(Duration d) { return run_until(now_ + d); }

  [[nodiscard]] bool idle() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return heap_.size(); }
  [[nodiscard]] std::size_t executed_events() const { return executed_; }

  /// Root RNG; subsystems should fork named streams from it.
  [[nodiscard]] RngStream& rng() { return rng_; }

 private:
  /// Heap node: POD, so push_heap/pop_heap never touch a callable.
  struct HeapNode {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct NodeOrder {
    bool operator()(const HeapNode& a, const HeapNode& b) const {
      if (a.at != b.at) return a.at > b.at;  // min-heap on time
      return a.seq > b.seq;                  // FIFO among equal times
    }
  };

  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
  std::vector<HeapNode> heap_;
  std::vector<EventFn> slots_;          // slab of pending callables
  std::vector<std::uint32_t> free_slots_;  // recycled slab slots
  RngStream rng_;
};

}  // namespace mutsvc::sim

#pragma once

#include <coroutine>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace mutsvc::sim {

/// A cross-domain event undercut the lookahead window: the topology's
/// declared latencies (the lookahead certificate) no longer cover the
/// configured window width. Always a configuration/model bug, never a
/// scheduling race — the check is deterministic.
struct LookaheadViolation : std::logic_error {
  using std::logic_error::logic_error;
};

/// Discrete-event simulation kernel.
///
/// Owns the virtual clock and the event heap. Events scheduled for the same
/// time fire in insertion order (stable FIFO tie-break), which makes runs
/// fully deterministic.
///
/// Hot-path layout: the heap itself holds 24-byte POD nodes (time, order
/// key, payload), so sift operations are plain memmoves with no callable
/// moves. A payload with bit 0 set is a bare coroutine-resume handle — the
/// dominant `wait()` path — executed without ever touching the callable
/// slab; otherwise the payload is a slab slot (an `EventFn` recycled through
/// a freelist). Slot recycling is driven purely by the (deterministic)
/// event order, so it never perturbs results.
///
/// Lookahead domains (DESIGN §15): `enable_domains()` tags every event with
/// the domain that created it (owner) and the domain it runs in (target).
/// The order key packs `target(8) | owner(8) | per-owner seq(48)` and the
/// heap comparator masks the target byte off, so execution order is
/// `(time, owner, seq)` — a total order assigned where the event is
/// *created*. Because a domain's schedule sequence is the same whether the
/// simulation runs on one heap or on per-domain heaps (cross-domain events
/// only arrive a full lookahead window later), the order is identical in
/// every execution mode, which is what makes the windowed parallel mode
/// (`enable_windowed` + `run_windows_until`) bit-identical to sequential at
/// any worker count. With domains disabled the key degenerates to the
/// legacy global FIFO sequence — bare Simulator users see the old kernel,
/// byte for byte.
class Simulator {
 public:
  using DomainId = std::uint8_t;

  explicit Simulator(std::uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const {
    return windowed_ ? now_windowed() : shards_[0].now;
  }

  /// Schedules `fn` to run at absolute time `at` (clamped to now()).
  void schedule_at(SimTime at, EventFn fn);

  /// Schedules `fn` to run `after` from now.
  void schedule_after(Duration after, EventFn fn) {
    schedule_at(now() + after, std::move(fn));
  }

  /// Schedules a bare coroutine resume — the `wait()` hot path. Skips the
  /// callable slab entirely: the handle rides in the heap node itself.
  void schedule_resume_at(SimTime at, std::coroutine_handle<> h);
  void schedule_resume_after(Duration after, std::coroutine_handle<> h) {
    schedule_resume_at(now() + after, h);
  }

  /// Launches a top-level coroutine. The task starts immediately (runs
  /// until its first suspension point) and its frame self-destroys on
  /// completion. An exception escaping a detached task terminates the
  /// simulation with a diagnostic — detached failures must not be silent.
  void spawn(Task<void> task);

  /// Awaitable that suspends the current task for `d` of simulated time.
  [[nodiscard]] auto wait(Duration d) {
    struct Awaiter {
      Simulator& sim;
      Duration d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { sim.schedule_resume_after(d, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// Awaitable that reschedules the current task at the back of the
  /// current-time event queue (a cooperative yield).
  [[nodiscard]] auto yield() { return wait(Duration::zero()); }

  /// Runs until the event queue empties or the clock passes `until`.
  /// Returns the number of events executed.
  std::size_t run_until(SimTime until = SimTime::max());

  /// Runs for `d` of simulated time from the current clock.
  std::size_t run_for(Duration d) { return run_until(now() + d); }

  [[nodiscard]] bool idle() const;
  [[nodiscard]] std::size_t pending_events() const;
  [[nodiscard]] std::size_t executed_events() const { return executed_; }

  /// Root RNG; subsystems should fork named streams from it.
  [[nodiscard]] RngStream& rng() { return rng_; }

  // --- lookahead domains (conservative parallel execution, DESIGN §15) ----

  /// Turns on domain tagging with `count` domains (single heap, sequential
  /// execution). Must be called before any event is scheduled. Also forks
  /// one named RNG stream per domain (`domain-<i>`) — forking is a pure
  /// function of the root seed and the name, so the streams are identical
  /// regardless of when or in which order domains later draw from them.
  void enable_domains(std::uint32_t count);

  /// Turns on the windowed parallel mode: per-domain event heaps, slabs and
  /// clocks, executed in lock-step windows of width `window` with
  /// cross-domain deliveries exchanged at window barriers. Must be called
  /// before any event is scheduled. `window` must not exceed the minimum
  /// cross-domain message latency (the lookahead) — `wait_in` enforces this
  /// per staged event and throws on a violation.
  void enable_windowed(std::uint32_t count, Duration window);

  [[nodiscard]] bool domains_enabled() const { return domain_count_ > 0; }
  [[nodiscard]] bool windowed() const { return windowed_; }
  [[nodiscard]] std::uint32_t domain_count() const {
    return domain_count_ > 0 ? domain_count_ : 1;
  }
  [[nodiscard]] Duration window() const { return window_; }

  /// Domain that owns the currently executing event (events it schedules
  /// are tagged with it). 0 outside event execution unless a DomainScope is
  /// active. Thread-local: in windowed mode each worker sees the domain of
  /// the shard it is executing.
  [[nodiscard]] DomainId current_domain() const;

  /// Per-domain RNG stream forked at enable time (`domain-<i>`). Only the
  /// owning domain may draw from it during windowed execution.
  [[nodiscard]] RngStream& domain_rng(DomainId d) { return domain_rngs_[d]; }

  /// RAII scope that sets the scheduling domain for setup-time code (client
  /// spawns, per-node timers). Must not span a co_await.
  class DomainScope {
   public:
    DomainScope(Simulator& sim, DomainId d);
    ~DomainScope();
    DomainScope(const DomainScope&) = delete;
    DomainScope& operator=(const DomainScope&) = delete;

   private:
    DomainId prev_;
  };

  /// Awaitable that resumes the current task in domain `dest` after `d`.
  /// The hop that carries a message across a lookahead boundary. In
  /// windowed mode the resume is staged into an index-addressed outbox slot
  /// and merged into the destination heap at the next window barrier; its
  /// order key was assigned here, at the sender, so the merge order is
  /// deterministic regardless of barrier arrival order. Throws
  /// LookaheadViolation when `d` undercuts the window width.
  [[nodiscard]] auto wait_in(DomainId dest, Duration d) {
    struct Awaiter {
      Simulator& sim;
      DomainId dest;
      Duration d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { sim.schedule_resume_in(dest, d, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, dest, d};
  }

  /// Runs `fn` in the global deterministic event order. Sequential modes
  /// execute it inline; windowed mode stamps it with the executing event's
  /// order key (plus an intra-event counter) and replays all staged effects
  /// in sorted stamp order at the window barrier — the exact interleaving
  /// the sequential run would have produced. For order-sensitive shared
  /// accumulators (response collectors, consistency shadows) that multiple
  /// domains feed.
  void sequenced(EventFn fn);

  /// Windowed parallel run: executes lock-step windows on `workers` OS
  /// threads (1 = inline on the caller, no threads spawned) until the clock
  /// passes `until`. Requires enable_windowed(). Bit-identical to
  /// run_until() on a tagged single heap at any worker count. A throwing
  /// event stops its own domain's window; the remaining domains finish the
  /// window, then the error with the smallest event stamp is rethrown —
  /// deterministic regardless of worker interleaving (the across-trial
  /// sweep runner's contract, applied within a trial).
  std::size_t run_windows_until(SimTime until, std::size_t workers);

 private:
  friend class ParallelWindowPool;

  /// Order key: target(8) | owner(8) | per-owner sequence(48). The
  /// comparator masks the target byte so the order is (time, owner, seq) —
  /// invariant across execution modes. Untagged events use owner 0 and the
  /// global sequence: exactly the legacy (time, seq) FIFO order.
  static constexpr std::uint64_t kOrderMask = 0x00FF'FFFF'FFFF'FFFFULL;

  struct HeapNode {
    SimTime at;
    std::uint64_t key;
    std::uintptr_t payload;  // bit 0: coroutine handle; else slab slot << 1
  };
  struct NodeOrder {
    bool operator()(const HeapNode& a, const HeapNode& b) const {
      if (a.at != b.at) return a.at > b.at;                      // min-heap on time
      return (a.key & kOrderMask) > (b.key & kOrderMask);        // (owner, seq)
    }
  };

  /// A cross-domain resume staged at the sender; merged at the barrier.
  struct StagedEvent {
    SimTime at;
    std::uint64_t key;
    std::uintptr_t payload;
  };

  /// A side effect staged by sequenced(), stamped with its event of origin.
  struct SequencedOp {
    SimTime at;
    std::uint64_t key;
    std::uint32_t intra;
    EventFn fn;
  };

  /// One domain's event machinery. In sequential modes only shard 0 exists.
  /// Alignment keeps two workers' hot fields off a shared cache line.
  struct alignas(64) Shard {
    SimTime now;
    std::size_t executed = 0;
    std::vector<HeapNode> heap;
    std::vector<EventFn> slots;              // slab of pending callables
    std::vector<std::uint32_t> free_slots;   // recycled slab slots
    // Stamp of the event being executed (sequenced() ordering).
    SimTime exec_at;
    std::uint64_t exec_key = 0;
    std::uint32_t exec_intra = 0;
    // Windowed mode only:
    std::vector<std::vector<StagedEvent>> outbox;  // indexed by destination
    std::vector<SequencedOp> effects;
    std::exception_ptr error;
    SimTime error_at;
    std::uint64_t error_key = 0;
  };
  struct alignas(64) DomainSeq {
    std::uint64_t next = 0;
  };

  static void set_current_domain(DomainId d);
  [[nodiscard]] SimTime now_windowed() const;
  [[nodiscard]] Shard& sched_shard();
  [[nodiscard]] std::uint64_t next_key(DomainId target, DomainId owner);
  void push_event(Shard& s, SimTime at, std::uint64_t key, std::uintptr_t payload);
  [[nodiscard]] std::uintptr_t make_slot(Shard& s, EventFn fn);
  void schedule_resume_in(DomainId dest, Duration d, std::coroutine_handle<> h);
  void dispatch(Shard& s, const HeapNode& node);
  /// Executes shard events with at <= until and at < limit.
  void run_shard_span(Shard& s, SimTime limit, SimTime until, bool capture_errors);
  /// Window barrier: merge outboxes into destination heaps, replay staged
  /// side effects in stamp order, surface the earliest captured error.
  void merge_barrier();
  void setup_domains(std::uint32_t count);

  std::size_t executed_ = 0;
  std::uint32_t domain_count_ = 0;  // 0 = untagged legacy mode
  bool windowed_ = false;
  Duration window_;
  SimTime window_end_;  // written by the coordinator between windows only
  std::vector<Shard> shards_;       // size 1 until enable_windowed
  std::vector<DomainSeq> dseq_;     // per-owner sequence counters
  std::vector<RngStream> domain_rngs_;
  std::vector<SequencedOp> effect_scratch_;
  RngStream rng_;
};

}  // namespace mutsvc::sim

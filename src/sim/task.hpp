#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace mutsvc::sim {

/// A lazy coroutine task used for all simulated activities.
///
/// A `Task<T>` does not run until awaited; when it completes, control
/// transfers back to the awaiter (symmetric transfer, no stack growth).
/// Top-level tasks are launched with `Simulator::spawn`, which detaches
/// them and lets the frame self-destroy on completion.
template <class T>
class [[nodiscard]] Task;

namespace detail {

template <class T>
struct TaskPromise;

struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }

  template <class Promise>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
    auto& p = h.promise();
    if (p.continuation) return p.continuation;
    return std::noop_coroutine();
  }

  void await_resume() const noexcept {}
};

struct TaskPromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <class T>
struct TaskPromise : TaskPromiseBase {
  alignas(T) unsigned char storage[sizeof(T)];
  bool has_value = false;

  [[nodiscard]] Task<T> get_return_object() noexcept;

  template <class U>
  void return_value(U&& v) {
    ::new (static_cast<void*>(storage)) T(std::forward<U>(v));
    has_value = true;
  }

  ~TaskPromise() {
    if (has_value) reinterpret_cast<T*>(storage)->~T();
  }

  T take() {
    if (exception) std::rethrow_exception(exception);
    return std::move(*reinterpret_cast<T*>(storage));
  }
};

template <>
struct TaskPromise<void> : TaskPromiseBase {
  [[nodiscard]] Task<void> get_return_object() noexcept;
  void return_void() noexcept {}
  void take() {
    if (exception) std::rethrow_exception(exception);
  }
};

}  // namespace detail

template <class T>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::TaskPromise<T>;
  using handle_type = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(handle_type h) noexcept : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      if (h_) h_.destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  [[nodiscard]] bool valid() const noexcept { return static_cast<bool>(h_); }
  [[nodiscard]] bool done() const noexcept { return h_ && h_.done(); }

  /// Releases ownership of the coroutine handle (used by Simulator::spawn).
  [[nodiscard]] handle_type release() noexcept { return std::exchange(h_, {}); }

  // --- awaitable interface ----------------------------------------------
  bool await_ready() const noexcept { return !h_ || h_.done(); }

  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    h_.promise().continuation = cont;
    return h_;  // start (or resume into) the child task
  }

  T await_resume() { return h_.promise().take(); }

 private:
  handle_type h_{};
};

namespace detail {

template <class T>
Task<T> TaskPromise<T>::get_return_object() noexcept {
  return Task<T>{std::coroutine_handle<TaskPromise<T>>::from_promise(*this)};
}

inline Task<void> TaskPromise<void>::get_return_object() noexcept {
  return Task<void>{std::coroutine_handle<TaskPromise<void>>::from_promise(*this)};
}

}  // namespace detail

}  // namespace mutsvc::sim

#include "sim/simcheck.hpp"

#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <utility>

namespace mutsvc::simcheck {

namespace detail {

namespace {
bool env_enabled() {
  const char* v = std::getenv("MUTSVC_SIMCHECK");
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "on") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "yes") == 0;
}
}  // namespace

std::atomic<bool> g_enabled{env_enabled()};

}  // namespace detail

namespace {

constexpr std::size_t kMaxFindingMessages = 64;

struct ActiveWrite {
  std::uint64_t token = 0;
  ActorId actor = 0;
  bool holds_lock = false;
};

/// All sanitizer state. One simulation is single-threaded (one event loop),
/// and the sweep runner pins each trial to one worker thread, so a
/// thread-local singleton needs no synchronization: concurrent trials get
/// disjoint registries, and reset() at trial start makes the state
/// trial-scoped regardless of which thread ran it.
struct Registry {
  Report report;

  // Lock bookkeeping.
  std::map<std::string, LockId> lock_ids;
  std::vector<std::string> lock_names;          // id - 1 -> name
  std::map<LockId, ActorId> holder;             // currently held locks
  std::map<ActorId, LockId> waiting;            // each actor waits on <= 1 lock
  std::map<ActorId, std::vector<LockId>> held;  // locks held per actor
  std::map<LockId, std::set<LockId>> order;     // edge H -> L: L taken while holding H
  std::set<std::pair<LockId, LockId>> reported_inversions;

  // Write spans, active per key.
  std::map<std::string, std::vector<ActiveWrite>> spans;
  std::map<std::uint64_t, std::string> span_keys;

  // Exactly-once server executions.
  std::set<std::uint64_t> executed_calls;

  std::uint64_t next_actor = 1;
  std::uint64_t next_token = 1;
  std::uint64_t next_call = 1;

  void add_finding(std::string msg) {
    if (report.findings.size() < kMaxFindingMessages) report.findings.push_back(std::move(msg));
  }

  [[nodiscard]] const std::string& name_of(LockId id) const { return lock_names[id - 1]; }

  /// True when `to` is reachable from `from` in the lock-order graph.
  [[nodiscard]] bool order_reaches(LockId from, LockId to) const {
    std::set<LockId> seen;
    std::vector<LockId> stack{from};
    while (!stack.empty()) {
      LockId cur = stack.back();
      stack.pop_back();
      if (cur == to) return true;
      if (!seen.insert(cur).second) continue;
      auto it = order.find(cur);
      if (it == order.end()) continue;
      for (LockId next : it->second) stack.push_back(next);
    }
    return false;
  }
};

Registry& reg() {
  static thread_local Registry r;
  return r;
}

}  // namespace

void set_enabled(bool on) { detail::g_enabled = on; }

void reset() { reg() = Registry{}; }

const Report& report() { return reg().report; }

ActorId anonymous_actor() {
  // Odd synthetic ids cannot collide with (even, word-aligned) pointer-derived
  // actor ids.
  return (reg().next_actor++ << 1) | 1;
}

LockId intern_lock(const std::string& name) {
  Registry& r = reg();
  auto it = r.lock_ids.find(name);
  if (it != r.lock_ids.end()) return it->second;
  r.lock_names.push_back(name);
  const LockId id = static_cast<LockId>(r.lock_names.size());
  r.lock_ids.emplace(name, id);
  return id;
}

void on_lock_request(ActorId actor, LockId lock) {
  Registry& r = reg();
  auto holder_it = r.holder.find(lock);
  if (holder_it == r.holder.end()) return;  // free: granted without waiting

  if (holder_it->second == actor) {
    ++r.report.deadlocks;
    const std::string msg = "simcheck: re-entrant acquire of '" + r.name_of(lock) +
                            "' by its holder (self-deadlock under a FIFO mutex)";
    r.add_finding(msg);
    throw SimCheckError(msg);
  }

  // Walk the wait-for chain from the lock's holder. Each actor waits on at
  // most one lock, so the chain is linear; revisiting `actor` closes a cycle.
  std::string chain = r.name_of(lock);
  std::set<ActorId> visited{actor};
  ActorId cur = holder_it->second;
  while (true) {
    if (!visited.insert(cur).second) break;  // cycle among other actors: theirs to report
    auto wait_it = r.waiting.find(cur);
    if (wait_it == r.waiting.end()) break;  // chain ends at a runnable actor
    chain += " -> " + r.name_of(wait_it->second);
    auto next_holder = r.holder.find(wait_it->second);
    if (next_holder == r.holder.end()) break;
    if (next_holder->second == actor) {
      ++r.report.deadlocks;
      const std::string msg = "simcheck: deadlock cycle detected at acquire: waits " + chain +
                              " which is held by the requester";
      r.add_finding(msg);
      throw SimCheckError(msg);
    }
    cur = next_holder->second;
  }
  r.waiting[actor] = lock;
}

void on_lock_acquired(ActorId actor, LockId lock) {
  Registry& r = reg();
  r.waiting.erase(actor);
  // Lock-order graph: taking `lock` while holding H records H -> lock. A
  // pre-existing path lock -> ... -> H means some other chain takes these
  // locks in the opposite order: a potential deadlock even if this run got
  // lucky with its interleaving.
  auto held_it = r.held.find(actor);
  if (held_it != r.held.end()) {
    for (LockId h : held_it->second) {
      if (h == lock) continue;
      if (r.order_reaches(lock, h) &&
          r.reported_inversions.insert({std::min(h, lock), std::max(h, lock)}).second) {
        ++r.report.lock_order_inversions;
        r.add_finding("simcheck: lock-order inversion: '" + r.name_of(h) + "' then '" +
                      r.name_of(lock) + "' here, but the opposite order exists elsewhere");
      }
      r.order[h].insert(lock);
    }
  }
  r.holder[lock] = actor;
  r.held[actor].push_back(lock);
}

void on_lock_released(LockId lock) {
  Registry& r = reg();
  auto it = r.holder.find(lock);
  if (it == r.holder.end()) return;
  const ActorId actor = it->second;
  r.holder.erase(it);
  auto held_it = r.held.find(actor);
  if (held_it != r.held.end()) {
    auto& v = held_it->second;
    for (auto h = v.begin(); h != v.end(); ++h) {
      if (*h == lock) {
        v.erase(h);
        break;
      }
    }
    if (v.empty()) r.held.erase(held_it);
  }
}

std::uint64_t on_write_begin(ActorId actor, const std::string& key, bool holds_lock) {
  Registry& r = reg();
  const std::uint64_t token = r.next_token++;
  for (const ActiveWrite& w : r.spans[key]) {
    if (w.actor != actor && (!w.holds_lock || !holds_lock)) {
      ++r.report.write_overlaps;
      r.add_finding("simcheck: overlapping unlocked writes to '" + key +
                    "' by two coroutines across a suspension point");
    }
  }
  r.spans[key].push_back(ActiveWrite{token, actor, holds_lock});
  r.span_keys.emplace(token, key);
  return token;
}

void on_write_end(std::uint64_t token) {
  Registry& r = reg();
  auto key_it = r.span_keys.find(token);
  if (key_it == r.span_keys.end()) return;
  auto span_it = r.spans.find(key_it->second);
  if (span_it != r.spans.end()) {
    auto& v = span_it->second;
    for (auto w = v.begin(); w != v.end(); ++w) {
      if (w->token == token) {
        v.erase(w);
        break;
      }
    }
    if (v.empty()) r.spans.erase(span_it);
  }
  r.span_keys.erase(key_it);
}

std::uint64_t begin_rmi_call() { return reg().next_call++; }

void on_server_execution(std::uint64_t call_id) {
  Registry& r = reg();
  if (!r.executed_calls.insert(call_id).second) {
    ++r.report.double_executions;
    const std::string msg = "simcheck: server work executed twice for RMI call id " +
                            std::to_string(call_id) +
                            " (exactly-once memoization must replay, not re-run)";
    r.add_finding(msg);
    throw SimCheckError(msg);
  }
}

void probe_zero_staleness(std::uint64_t stale_reads, bool invariant_applies) {
  if (!invariant_applies || stale_reads == 0) return;
  Registry& r = reg();
  ++r.report.stale_read_violations;
  const std::string msg =
      "simcheck: " + std::to_string(stale_reads) +
      " stale read(s) observed under blocking push with no failed pushes "
      "(zero-staleness invariant of §4.3 violated)";
  r.add_finding(msg);
  throw SimCheckError(msg);
}

}  // namespace mutsvc::simcheck

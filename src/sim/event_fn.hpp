#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace mutsvc::sim {

/// Move-only type-erased callable tuned for the event loop's hot path.
///
/// The overwhelmingly common event payload is a coroutine resume — an
/// 8-byte `[h] { h.resume(); }` lambda that `Simulator::wait()` schedules
/// millions of times per run. `EventFn` keeps any nothrow-movable callable
/// up to `kInlineBytes` directly in the object (no allocation, no pointer
/// chase on invoke); larger captures spill to a single heap block owned by
/// the callable. Invocation, relocation, and destruction each cost one
/// indirect call through a static vtable.
class EventFn {
 public:
  /// Covers every capture list the simulation schedules today ([this]
  /// plus a handful of values); chosen so a heap node's slab slot stays
  /// within one cache line.
  static constexpr std::size_t kInlineBytes = 48;

  EventFn() noexcept = default;

  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): intended sink type
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &SpillOps<Fn>::ops;
    }
  }

  EventFn(EventFn&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) ops_->relocate(o.storage_, storage_);
    o.ops_ = nullptr;
  }

  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      if (ops_ != nullptr) ops_->destroy(storage_);
      ops_ = o.ops_;
      if (ops_ != nullptr) ops_->relocate(o.storage_, storage_);
      o.ops_ = nullptr;
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() {
    if (ops_ != nullptr) ops_->destroy(storage_);
  }

  void operator()() { ops_->call(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True when the callable spilled past the inline buffer (tests/benches).
  [[nodiscard]] bool spilled() const noexcept { return ops_ != nullptr && ops_->spill; }

 private:
  struct Ops {
    void (*call)(void* self);
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void* self) noexcept;
    bool spill;
  };

  template <class Fn>
  struct InlineOps {
    static Fn* self(void* s) noexcept { return std::launder(reinterpret_cast<Fn*>(s)); }
    static void call(void* s) { (*self(s))(); }
    static void relocate(void* from, void* to) noexcept {
      Fn* f = self(from);
      ::new (to) Fn(std::move(*f));
      f->~Fn();
    }
    static void destroy(void* s) noexcept { self(s)->~Fn(); }
    static constexpr Ops ops{&call, &relocate, &destroy, false};
  };

  template <class Fn>
  struct SpillOps {
    static Fn* self(void* s) noexcept {
      return *std::launder(reinterpret_cast<Fn**>(s));
    }
    static void call(void* s) { (*self(s))(); }
    static void relocate(void* from, void* to) noexcept {
      ::new (to) Fn*(self(from));
    }
    static void destroy(void* s) noexcept { delete self(s); }
    static constexpr Ops ops{&call, &relocate, &destroy, true};
  };

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace mutsvc::sim

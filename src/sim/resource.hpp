#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <stdexcept>
#include <string>

#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace mutsvc::sim {

/// A FIFO multi-server resource (e.g. a CPU pool with k processors).
///
/// Requests are served in arrival order; each holder occupies one server
/// until release. Tracks the busy-time integral so callers can compute
/// utilization over a measurement window.
class FifoResource {
 public:
  FifoResource(Simulator& sim, std::size_t servers, std::string name = "resource")
      : sim_(sim), servers_(servers), free_(servers), name_(std::move(name)) {
    if (servers == 0) throw std::invalid_argument("FifoResource: servers must be > 0");
  }

  FifoResource(const FifoResource&) = delete;
  FifoResource& operator=(const FifoResource&) = delete;

  /// Awaitable acquisition of one server slot.
  [[nodiscard]] auto acquire() {
    struct Awaiter {
      FifoResource& r;
      bool await_ready() {
        if (r.free_ > 0) {
          r.take_slot();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { r.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Releases one previously acquired server slot.
  void release() {
    if (busy_ == 0) throw std::logic_error("FifoResource::release without acquire");
    accumulate_busy();
    --busy_;
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      ++busy_;  // hand the slot straight to the next waiter
      sim_.schedule_resume_after(Duration::zero(), h);
    } else {
      ++free_;
    }
  }

  /// Acquires a server, holds it for `d`, releases. This is the common
  /// "consume CPU" primitive.
  [[nodiscard]] Task<void> consume(Duration d) {
    co_await acquire();
    co_await sim_.wait(d);
    release();
  }

  [[nodiscard]] std::size_t servers() const { return servers_; }
  [[nodiscard]] std::size_t busy() const { return busy_; }
  [[nodiscard]] std::size_t queue_length() const { return waiters_.size(); }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Resets the utilization accounting window (call at end of warm-up).
  void reset_utilization() {
    accumulate_busy();
    busy_integral_ = Duration::zero();
    integral_reset_at_ = sim_.now();
  }

  /// Mean per-server utilization since the last reset (or sim start).
  [[nodiscard]] double utilization() {
    accumulate_busy();
    Duration window = sim_.now() - integral_reset_at_;
    if (window <= Duration::zero()) return 0.0;
    return busy_integral_ / window / static_cast<double>(servers_);
  }

 private:
  void take_slot() {
    accumulate_busy();
    --free_;
    ++busy_;
  }

  void accumulate_busy() {
    busy_integral_ += (sim_.now() - last_change_) * static_cast<double>(busy_);
    last_change_ = sim_.now();
  }

  Simulator& sim_;
  std::size_t servers_;
  std::size_t free_;
  std::size_t busy_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
  std::string name_;
  Duration busy_integral_ = Duration::zero();
  SimTime last_change_ = SimTime::origin();
  SimTime integral_reset_at_ = SimTime::origin();
};

/// A FIFO mutual-exclusion lock for simulated tasks.
class SimMutex {
 public:
  explicit SimMutex(Simulator& sim) : res_(sim, 1, "mutex") {}

  [[nodiscard]] auto acquire() { return res_.acquire(); }
  void release() { res_.release(); }
  [[nodiscard]] bool locked() const { return res_.busy() > 0; }
  [[nodiscard]] std::size_t queue_length() const { return res_.queue_length(); }

 private:
  FifoResource res_;
};

}  // namespace mutsvc::sim

#include "sim/simulator.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>

namespace mutsvc::sim {

namespace {

/// Eager, self-destroying root coroutine used by Simulator::spawn.
struct DetachedTask {
  struct promise_type {
    DetachedTask get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept {
      try {
        std::rethrow_exception(std::current_exception());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "mutsvc: exception escaped detached task: %s\n", e.what());
      } catch (...) {
        std::fprintf(stderr, "mutsvc: unknown exception escaped detached task\n");
      }
      std::terminate();
    }
  };
};

DetachedTask run_detached(Task<void> task) { co_await std::move(task); }

}  // namespace

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

void Simulator::schedule_at(SimTime at, EventFn fn) {
  if (at < now_) at = now_;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(fn));
  }
  heap_.push_back(HeapNode{at, next_seq_++, slot});
  std::push_heap(heap_.begin(), heap_.end(), NodeOrder{});
}

void Simulator::spawn(Task<void> task) {
  if (!task.valid()) return;
  run_detached(std::move(task));
}

std::size_t Simulator::run_until(SimTime until) {
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.front().at <= until) {
    std::pop_heap(heap_.begin(), heap_.end(), NodeOrder{});
    const HeapNode node = heap_.back();
    heap_.pop_back();
    // Move the callable out and recycle its slot before invoking: the
    // handler may schedule new events into the slab.
    EventFn fn = std::move(slots_[node.slot]);
    free_slots_.push_back(node.slot);
    now_ = node.at;
    fn();
    ++executed;
  }
  executed_ += executed;
  if (until != SimTime::max() && now_ < until) now_ = until;
  return executed;
}

}  // namespace mutsvc::sim

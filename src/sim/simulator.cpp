#include "sim/simulator.hpp"

#include <cstdio>
#include <exception>

namespace mutsvc::sim {

namespace {

/// Eager, self-destroying root coroutine used by Simulator::spawn.
struct DetachedTask {
  struct promise_type {
    DetachedTask get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept {
      try {
        std::rethrow_exception(std::current_exception());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "mutsvc: exception escaped detached task: %s\n", e.what());
      } catch (...) {
        std::fprintf(stderr, "mutsvc: unknown exception escaped detached task\n");
      }
      std::terminate();
    }
  };
};

DetachedTask run_detached(Task<void> task) { co_await std::move(task); }

}  // namespace

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

void Simulator::schedule_at(SimTime at, std::function<void()> fn) {
  if (at < now_) at = now_;
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

void Simulator::spawn(Task<void> task) {
  if (!task.valid()) return;
  run_detached(std::move(task));
}

std::size_t Simulator::run_until(SimTime until) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().at <= until) {
    // Copy out before pop: the handler may schedule new events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ev.fn();
    ++executed;
  }
  executed_ += executed;
  if (until != SimTime::max() && now_ < until) now_ = until;
  return executed;
}

}  // namespace mutsvc::sim

#include "sim/simulator.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <string>

namespace mutsvc::sim {

namespace {

/// Eager, self-destroying root coroutine used by Simulator::spawn.
struct DetachedTask {
  struct promise_type {
    DetachedTask get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept {
      try {
        std::rethrow_exception(std::current_exception());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "mutsvc: exception escaped detached task: %s\n", e.what());
      } catch (...) {
        std::fprintf(stderr, "mutsvc: unknown exception escaped detached task\n");
      }
      std::terminate();
    }
  };
};

DetachedTask run_detached(Task<void> task) { co_await std::move(task); }

/// Scheduling/executing domain of the current thread. Thread-local so each
/// windowed worker carries the domain of the shard it is executing; a trial
/// never migrates threads mid-event, so this is always coherent with the
/// simulator the thread is driving.
thread_local Simulator::DomainId t_current_domain = 0;

constexpr std::uintptr_t kResumeBit = 1;

}  // namespace

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {
  shards_.resize(1);
  dseq_.resize(1);
}

Simulator::DomainId Simulator::current_domain() const { return t_current_domain; }

void Simulator::set_current_domain(DomainId d) { t_current_domain = d; }

Simulator::DomainScope::DomainScope(Simulator& sim, DomainId d) : prev_(t_current_domain) {
  if (sim.domain_count_ > 0 && d >= sim.domain_count_) {
    throw std::out_of_range("Simulator::DomainScope: domain out of range");
  }
  t_current_domain = d;
}

Simulator::DomainScope::~DomainScope() { t_current_domain = prev_; }

void Simulator::setup_domains(std::uint32_t count) {
  if (count == 0 || count > 256) {
    throw std::invalid_argument("Simulator: domain count must be in [1, 256]");
  }
  if (domain_count_ > 0) throw std::logic_error("Simulator: domains already enabled");
  if (!shards_[0].heap.empty() || executed_ > 0) {
    throw std::logic_error("Simulator: enable domains before scheduling events");
  }
  domain_count_ = count;
  dseq_.assign(count, DomainSeq{});
  domain_rngs_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    domain_rngs_.push_back(rng_.fork("domain-" + std::to_string(i)));
  }
}

void Simulator::enable_domains(std::uint32_t count) { setup_domains(count); }

void Simulator::enable_windowed(std::uint32_t count, Duration window) {
  if (window <= Duration::zero()) {
    throw std::invalid_argument("Simulator: window width must be positive");
  }
  setup_domains(count);
  windowed_ = true;
  window_ = window;
  window_end_ = SimTime::origin() + window;
  shards_.resize(count);
  for (Shard& s : shards_) s.outbox.resize(count);
}

SimTime Simulator::now_windowed() const { return shards_[t_current_domain].now; }

Simulator::Shard& Simulator::sched_shard() {
  return windowed_ ? shards_[t_current_domain] : shards_[0];
}

std::uint64_t Simulator::next_key(DomainId target, DomainId owner) {
  if (domain_count_ == 0) return dseq_[0].next++;
  return (static_cast<std::uint64_t>(target) << 56) |
         (static_cast<std::uint64_t>(owner) << 48) | dseq_[owner].next++;
}

void Simulator::push_event(Shard& s, SimTime at, std::uint64_t key, std::uintptr_t payload) {
  s.heap.push_back(HeapNode{at, key, payload});
  std::push_heap(s.heap.begin(), s.heap.end(), NodeOrder{});
}

std::uintptr_t Simulator::make_slot(Shard& s, EventFn fn) {
  std::uint32_t slot;
  if (!s.free_slots.empty()) {
    slot = s.free_slots.back();
    s.free_slots.pop_back();
    s.slots[slot] = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(s.slots.size());
    s.slots.push_back(std::move(fn));
  }
  return static_cast<std::uintptr_t>(slot) << 1;
}

void Simulator::schedule_at(SimTime at, EventFn fn) {
  Shard& s = sched_shard();
  if (at < s.now) at = s.now;
  const DomainId d = domain_count_ > 0 ? t_current_domain : 0;
  const std::uint64_t key = next_key(d, d);
  push_event(s, at, key, make_slot(s, std::move(fn)));
}

void Simulator::schedule_resume_at(SimTime at, std::coroutine_handle<> h) {
  Shard& s = sched_shard();
  if (at < s.now) at = s.now;
  const DomainId d = domain_count_ > 0 ? t_current_domain : 0;
  push_event(s, at, next_key(d, d), reinterpret_cast<std::uintptr_t>(h.address()) | kResumeBit);
}

void Simulator::schedule_resume_in(DomainId dest, Duration d, std::coroutine_handle<> h) {
  if (domain_count_ == 0) {  // bare simulator: no domains to cross
    schedule_resume_after(d, h);
    return;
  }
  if (dest >= domain_count_) {
    throw std::out_of_range("Simulator::wait_in: destination domain out of range");
  }
  const DomainId cur = t_current_domain;
  const std::uintptr_t payload = reinterpret_cast<std::uintptr_t>(h.address()) | kResumeBit;
  if (!windowed_ || dest == cur) {
    Shard& s = sched_shard();
    SimTime at = s.now + d;
    if (at < s.now) at = s.now;
    push_event(windowed_ ? shards_[dest] : s, at, next_key(dest, cur), payload);
    return;
  }
  // Cross-domain: stage at the sender with a sender-assigned key; the
  // barrier merge just moves it into the destination heap, so merge order
  // is deterministic. The lookahead check is what makes the conservative
  // window safe: the event must not land inside the window being executed.
  Shard& s = shards_[cur];
  const SimTime at = s.now + d;
  if (at < window_end_) {
    throw LookaheadViolation(
        "Simulator::wait_in: cross-domain event at t=" + std::to_string(at.count_micros()) +
        "us lands inside the current window (ends t=" +
        std::to_string(window_end_.count_micros()) +
        "us); a link latency undercuts the certified lookahead window of " +
        std::to_string(window_.count_micros()) + "us");
  }
  s.outbox[dest].push_back(StagedEvent{at, next_key(dest, cur), payload});
}

void Simulator::sequenced(EventFn fn) {
  if (!windowed_) {
    fn();
    return;
  }
  Shard& s = shards_[t_current_domain];
  s.effects.push_back(SequencedOp{s.exec_at, s.exec_key, s.exec_intra++, std::move(fn)});
}

void Simulator::spawn(Task<void> task) {
  if (!task.valid()) return;
  run_detached(std::move(task));
}

void Simulator::dispatch(Shard& s, const HeapNode& node) {
  if (node.payload & kResumeBit) {
    std::coroutine_handle<>::from_address(
        reinterpret_cast<void*>(node.payload & ~kResumeBit))
        .resume();
    return;
  }
  // Move the callable out and recycle its slot before invoking: the
  // handler may schedule new events into the slab.
  const auto slot = static_cast<std::uint32_t>(node.payload >> 1);
  EventFn fn = std::move(s.slots[slot]);
  s.free_slots.push_back(slot);
  fn();
}

void Simulator::run_shard_span(Shard& s, SimTime limit, SimTime until, bool capture_errors) {
  const bool tagged = domain_count_ > 0;
  while (!s.heap.empty()) {
    const SimTime at = s.heap.front().at;
    if (at > until || at >= limit) break;
    std::pop_heap(s.heap.begin(), s.heap.end(), NodeOrder{});
    const HeapNode node = s.heap.back();
    s.heap.pop_back();
    s.now = node.at;
    s.exec_at = node.at;
    s.exec_key = node.key;
    s.exec_intra = 0;
    if (tagged) t_current_domain = static_cast<DomainId>(node.key >> 56);
    if (capture_errors) {
      try {
        dispatch(s, node);
      } catch (...) {
        // Remember the earliest failing event; the barrier rethrows the
        // globally earliest one, deterministically at any worker count.
        s.error = std::current_exception();
        s.error_at = node.at;
        s.error_key = node.key;
        ++s.executed;
        break;
      }
    } else {
      dispatch(s, node);
    }
    ++s.executed;
  }
}

std::size_t Simulator::run_until(SimTime until) {
  if (windowed_) return run_windows_until(until, 1);
  Shard& s = shards_[0];
  const std::size_t before = s.executed;
  const DomainId prev_domain = t_current_domain;
  run_shard_span(s, SimTime::max(), until, /*capture_errors=*/false);
  t_current_domain = prev_domain;
  const std::size_t executed = s.executed - before;
  executed_ += executed;
  if (until != SimTime::max() && s.now < until) s.now = until;
  return executed;
}

void Simulator::merge_barrier() {
  // Move staged cross-domain events into their destination heaps. Their
  // keys were assigned at the sender, so heap order — and therefore
  // execution order — is independent of the merge traversal.
  for (Shard& s : shards_) {
    for (std::size_t d = 0; d < s.outbox.size(); ++d) {
      for (const StagedEvent& ev : s.outbox[d]) {
        push_event(shards_[d], ev.at, ev.key, ev.payload);
      }
      s.outbox[d].clear();
    }
  }
  // Surface the earliest error before replaying effects: the sequential
  // run would have stopped at that event.
  Shard* failed = nullptr;
  for (Shard& s : shards_) {
    if (!s.error) continue;
    if (failed == nullptr || s.error_at < failed->error_at ||
        (s.error_at == failed->error_at &&
         (s.error_key & kOrderMask) < (failed->error_key & kOrderMask))) {
      failed = &s;
    }
  }
  if (failed != nullptr) {
    std::exception_ptr err = failed->error;
    for (Shard& s : shards_) s.error = nullptr;
    std::rethrow_exception(err);
  }
  // Replay stamped side effects in global event order — the interleaving
  // the sequential run produced inline.
  for (Shard& s : shards_) {
    for (SequencedOp& op : s.effects) effect_scratch_.push_back(std::move(op));
    s.effects.clear();
  }
  std::sort(effect_scratch_.begin(), effect_scratch_.end(),
            [](const SequencedOp& a, const SequencedOp& b) {
              if (a.at != b.at) return a.at < b.at;
              if ((a.key & kOrderMask) != (b.key & kOrderMask)) {
                return (a.key & kOrderMask) < (b.key & kOrderMask);
              }
              return a.intra < b.intra;
            });
  for (SequencedOp& op : effect_scratch_) op.fn();
  effect_scratch_.clear();
}

bool Simulator::idle() const {
  for (const Shard& s : shards_) {
    if (!s.heap.empty()) return false;
  }
  return true;
}

std::size_t Simulator::pending_events() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) n += s.heap.size();
  return n;
}

}  // namespace mutsvc::sim

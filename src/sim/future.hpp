#pragma once

#include <coroutine>
#include <exception>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "sim/simulator.hpp"

namespace mutsvc::sim {

/// One-shot asynchronous value, usable across coroutines.
///
/// `Promise<T>` is the producer side; `Future<T>` the (copyable, shared)
/// consumer side. Waiters are resumed through the event queue at the time
/// of fulfilment, so wake-ups interleave deterministically with other
/// events scheduled at the same instant.
template <class T>
class Promise;

namespace detail {

template <class T>
struct FutureState {
  Simulator* sim = nullptr;
  std::optional<T> value;
  std::exception_ptr exception;
  std::vector<std::coroutine_handle<>> waiters;

  [[nodiscard]] bool ready() const { return value.has_value() || exception != nullptr; }

  void wake_all() {
    auto pending = std::move(waiters);
    waiters.clear();
    for (auto h : pending) {
      sim->schedule_after(Duration::zero(), [h] { h.resume(); });
    }
  }
};

struct Unit {};

}  // namespace detail

template <class T>
class Future {
 public:
  Future() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] bool ready() const { return state_ && state_->ready(); }

  bool await_ready() const {
    if (!state_) throw std::logic_error("await on invalid Future");
    return state_->ready();
  }
  void await_suspend(std::coroutine_handle<> h) { state_->waiters.push_back(h); }
  T await_resume() {
    if (state_->exception) std::rethrow_exception(state_->exception);
    return *state_->value;
  }

  /// Non-awaiting accessor for tests and post-run inspection.
  [[nodiscard]] const T& get() const {
    if (!ready()) throw std::logic_error("Future::get before ready");
    if (state_->exception) std::rethrow_exception(state_->exception);
    return *state_->value;
  }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<detail::FutureState<T>> s) : state_(std::move(s)) {}
  std::shared_ptr<detail::FutureState<T>> state_;
};

template <class T>
class Promise {
 public:
  explicit Promise(Simulator& sim) : state_(std::make_shared<detail::FutureState<T>>()) {
    state_->sim = &sim;
  }

  [[nodiscard]] Future<T> future() const { return Future<T>{state_}; }

  void set_value(T v) {
    if (state_->ready()) throw std::logic_error("Promise fulfilled twice");
    state_->value = std::move(v);
    state_->wake_all();
  }

  void set_exception(std::exception_ptr e) {
    if (state_->ready()) throw std::logic_error("Promise fulfilled twice");
    state_->exception = std::move(e);
    state_->wake_all();
  }

  [[nodiscard]] bool fulfilled() const { return state_->ready(); }

 private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

/// Event-style future with no payload.
class Signal {
 public:
  explicit Signal(Simulator& sim) : promise_(sim) {}

  void fire() {
    if (!promise_.fulfilled()) promise_.set_value(detail::Unit{});
  }
  [[nodiscard]] bool fired() const { return promise_.fulfilled(); }

  [[nodiscard]] auto wait() {
    struct Awaiter {
      Future<detail::Unit> f;
      bool await_ready() { return f.await_ready(); }
      void await_suspend(std::coroutine_handle<> h) { f.await_suspend(h); }
      void await_resume() { (void)f.await_resume(); }
    };
    return Awaiter{promise_.future()};
  }

 private:
  Promise<detail::Unit> promise_;
};

}  // namespace mutsvc::sim

#pragma once

#include <coroutine>
#include <exception>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace mutsvc::sim {

/// One-shot asynchronous value, usable across coroutines.
///
/// `Promise<T>` is the producer side; `Future<T>` the (copyable, shared)
/// consumer side. Waiters are resumed through the event queue at the time
/// of fulfilment, so wake-ups interleave deterministically with other
/// events scheduled at the same instant.
template <class T>
class Promise;

namespace detail {

template <class T>
struct FutureState {
  Simulator* sim = nullptr;
  std::optional<T> value;
  std::exception_ptr exception;
  std::vector<std::coroutine_handle<>> waiters;

  [[nodiscard]] bool ready() const { return value.has_value() || exception != nullptr; }

  void wake_all() {
    auto pending = std::move(waiters);
    waiters.clear();
    for (auto h : pending) {
      sim->schedule_after(Duration::zero(), [h] { h.resume(); });
    }
  }
};

struct Unit {};

}  // namespace detail

template <class T>
class Future {
 public:
  Future() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] bool ready() const { return state_ && state_->ready(); }

  bool await_ready() const {
    if (!state_) throw std::logic_error("await on invalid Future");
    return state_->ready();
  }
  void await_suspend(std::coroutine_handle<> h) { state_->waiters.push_back(h); }
  T await_resume() {
    if (state_->exception) std::rethrow_exception(state_->exception);
    return *state_->value;
  }

  /// Non-awaiting accessor for tests and post-run inspection.
  [[nodiscard]] const T& get() const {
    if (!ready()) throw std::logic_error("Future::get before ready");
    if (state_->exception) std::rethrow_exception(state_->exception);
    return *state_->value;
  }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<detail::FutureState<T>> s) : state_(std::move(s)) {}
  std::shared_ptr<detail::FutureState<T>> state_;
};

template <class T>
class Promise {
 public:
  explicit Promise(Simulator& sim) : state_(std::make_shared<detail::FutureState<T>>()) {
    state_->sim = &sim;
  }

  [[nodiscard]] Future<T> future() const { return Future<T>{state_}; }

  void set_value(T v) {
    if (state_->ready()) throw std::logic_error("Promise fulfilled twice");
    state_->value = std::move(v);
    state_->wake_all();
  }

  void set_exception(std::exception_ptr e) {
    if (state_->ready()) throw std::logic_error("Promise fulfilled twice");
    state_->exception = std::move(e);
    state_->wake_all();
  }

  [[nodiscard]] bool fulfilled() const { return state_->ready(); }

 private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

namespace detail {

// NOTE: coroutine — parameters by value (the lazy task must own them).
[[nodiscard]] inline Task<void> fulfil_when_done(Task<void> task, Promise<Unit> done) {
  std::exception_ptr err;
  try {
    co_await std::move(task);
  } catch (...) {
    err = std::current_exception();
  }
  if (err != nullptr) {
    done.set_exception(std::move(err));
  } else {
    done.set_value(Unit{});
  }
}

}  // namespace detail

/// Runs `tasks` concurrently (each spawned as its own top-level task, in
/// index order) and completes once every one has finished. Joins are awaited
/// in index order, so completion interleaving is deterministic. If any task
/// threw, the first exception *by index* is rethrown — but only after all
/// tasks have finished, so no work is abandoned mid-flight.
///
/// This is the scatter-gather primitive of the sharded data tier: one leg
/// per shard, all in flight at once, merged on the caller's coroutine.
// NOTE: coroutine — `tasks` by value.
[[nodiscard]] inline Task<void> when_all(Simulator& sim, std::vector<Task<void>> tasks) {
  std::vector<Future<detail::Unit>> joins;
  joins.reserve(tasks.size());
  for (Task<void>& t : tasks) {
    Promise<detail::Unit> done{sim};
    joins.push_back(done.future());
    sim.spawn(detail::fulfil_when_done(std::move(t), std::move(done)));
  }
  std::exception_ptr first;
  for (Future<detail::Unit>& join : joins) {
    try {
      (void)co_await join;
    } catch (...) {
      if (first == nullptr) first = std::current_exception();
    }
  }
  if (first != nullptr) std::rethrow_exception(first);
}

/// Event-style future with no payload.
class Signal {
 public:
  explicit Signal(Simulator& sim) : promise_(sim) {}

  void fire() {
    if (!promise_.fulfilled()) promise_.set_value(detail::Unit{});
  }
  [[nodiscard]] bool fired() const { return promise_.fulfilled(); }

  [[nodiscard]] auto wait() {
    struct Awaiter {
      Future<detail::Unit> f;
      bool await_ready() { return f.await_ready(); }
      void await_suspend(std::coroutine_handle<> h) { f.await_suspend(h); }
      void await_resume() { (void)f.await_resume(); }
    };
    return Awaiter{promise_.future()};
  }

 private:
  Promise<detail::Unit> promise_;
};

}  // namespace mutsvc::sim

#pragma once

#include <string>
#include <vector>

#include "component/deployment.hpp"

namespace mutsvc::apps {

/// What the configuration ladder (core/ladder.hpp) needs to know about an
/// application to apply the paper's design rules to it.
struct AppMetadata {
  std::string name;

  /// Web-tier components (servlets/JSPs/JavaBeans): deployed at edge
  /// servers from the Remote Façade configuration on (§4.2).
  std::vector<std::string> web_components;

  /// Stateful session beans: per-client state, deployed at edges with the
  /// web tier (§4.2: "Pet Store uses stateful session beans ... together
  /// with web components they were deployed in all three servers").
  std::vector<std::string> stateful_session;

  /// Stateless façades additionally replicated to edges from the Stateful
  /// Component Caching configuration on (§4.3: edge Catalog, RUBiS's
  /// SB_View* beans), delegating to the centre when a request cannot be
  /// served locally.
  std::vector<std::string> edge_facades;

  /// Stateless beans hosting query caches, replicated to edges from the
  /// Query Caching configuration on (§4.4: "query result caches were
  /// naturally incorporated in those stateless session beans that make
  /// corresponding finder method invocations").
  std::vector<std::string> query_facades;

  /// Façades that always stay with the data (SignOn, Customer, writers).
  std::vector<std::string> main_facades;

  /// Entity beans; always placed at the main server (the read-write
  /// masters).
  std::vector<std::string> entities;

  /// Entities that receive read-only edge replicas from the Stateful
  /// Component Caching configuration on (§4.3).
  std::vector<std::string> read_mostly;

  /// §4.4: Pet Store implemented pull-based query refresh, RUBiS push.
  comp::QueryRefreshMode query_refresh = comp::QueryRefreshMode::kPush;
};

}  // namespace mutsvc::apps

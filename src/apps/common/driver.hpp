#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "apps/common/metadata.hpp"
#include "component/model.hpp"
#include "component/runtime.hpp"
#include "db/database.hpp"
#include "sim/random.hpp"
#include "workload/session.hpp"

namespace mutsvc::apps {

/// Uniform handle the experiment harness uses to drive an application.
/// Both PetStoreApp and RubisApp produce one via their `driver()` method.
struct AppDriver {
  std::string name;
  const comp::Application* app = nullptr;
  const AppMetadata* meta = nullptr;
  std::function<void(db::Database&)> install_database;
  std::function<void(comp::Runtime&)> bind_entities;
  std::function<workload::SessionFactory(sim::RngStream)> browser_factory;
  std::function<workload::SessionFactory(sim::RngStream)> writer_factory;
  std::vector<std::pair<std::string, std::string>> table_pages;  // (pattern, page)
  std::string browser_pattern = "Browser";  // the read-only usage pattern
  std::string writer_pattern;               // "Buyer", "Bidder", "Operator", ...
  /// §3.1: the RUBiS database ran on the main application server itself;
  /// Pet Store's Oracle ran on a separate workstation on the same LAN.
  bool db_colocated = false;
};

}  // namespace mutsvc::apps

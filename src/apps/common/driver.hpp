#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/common/metadata.hpp"
#include "component/model.hpp"
#include "component/runtime.hpp"
#include "db/database.hpp"
#include "sim/random.hpp"
#include "workload/session.hpp"
#include "workload/session_fsm.hpp"

namespace mutsvc::apps {

/// Uniform handle the experiment harness uses to drive an application.
/// Both PetStoreApp and RubisApp produce one via their `driver()` method.
struct AppDriver {
  std::string name;
  const comp::Application* app = nullptr;
  const AppMetadata* meta = nullptr;
  std::function<void(db::Database&)> install_database;
  std::function<void(comp::Runtime&)> bind_entities;
  std::function<workload::SessionFactory(sim::RngStream)> browser_factory;
  std::function<workload::SessionFactory(sim::RngStream)> writer_factory;
  /// Optional FSM script models for the million-session load engine
  /// (DESIGN §16): pure per-step functions over the 40-byte session record,
  /// parameterized by the Zipf item-popularity exponent (0 = uniform). Apps
  /// that leave these unset cannot run with ExperimentSpec::fsm_load.
  std::function<std::shared_ptr<const workload::FsmScriptModel>(double zipf_s)>
      fsm_browser_model;
  std::function<std::shared_ptr<const workload::FsmScriptModel>(double zipf_s)>
      fsm_writer_model;
  std::vector<std::pair<std::string, std::string>> table_pages;  // (pattern, page)
  std::string browser_pattern = "Browser";  // the read-only usage pattern
  std::string writer_pattern;               // "Buyer", "Bidder", "Operator", ...
  /// §3.1: the RUBiS database ran on the main application server itself;
  /// Pet Store's Oracle ran on a separate workstation on the same LAN.
  bool db_colocated = false;
};

}  // namespace mutsvc::apps

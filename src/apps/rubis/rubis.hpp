#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/common/driver.hpp"
#include "apps/common/metadata.hpp"
#include "component/model.hpp"
#include "component/runtime.hpp"
#include "db/database.hpp"
#include "sim/random.hpp"
#include "workload/session.hpp"

namespace mutsvc::apps::rubis {

/// Auction-site sizing, per §3.4: "400 users from 20 regions, selling 400
/// items belonging to 20 categories".
struct Shape {
  int regions = 20;
  int categories = 20;
  int users = 400;
  int items = 400;
  int initial_bids_per_item = 5;
  int initial_comments_per_user = 3;

  [[nodiscard]] std::int64_t item_category(std::int64_t item) const {
    return (item - 1) % categories + 1;
  }
  [[nodiscard]] std::int64_t item_seller(std::int64_t item) const {
    return (item - 1) % users + 1;
  }
  [[nodiscard]] std::int64_t user_region(std::int64_t user) const {
    return (user - 1) % regions + 1;
  }
};

/// Per-page service demands, calibrated to the *centralized local* column
/// of Table 7 ("RUBiS is a significantly more lightweight application").
struct Calibration {
  sim::Duration page_cpu = sim::ms(1.2);
  sim::Duration ejb_cpu = sim::us(400);

  sim::Duration main_latency = sim::ms(10);
  sim::Duration browse_latency = sim::ms(9);
  sim::Duration allcategories_latency = sim::ms(24);
  sim::Duration allregions_latency = sim::ms(18);
  sim::Duration region_latency = sim::ms(26);
  sim::Duration category_latency = sim::ms(28);
  sim::Duration categoryregion_latency = sim::ms(13);
  sim::Duration item_latency = sim::ms(18);
  sim::Duration bids_latency = sim::ms(26);
  sim::Duration userinfo_latency = sim::ms(26);
  sim::Duration putbidauth_latency = sim::ms(9);
  sim::Duration putbidform_latency = sim::ms(18);
  sim::Duration storebid_latency = sim::ms(20);
  sim::Duration putcommentauth_latency = sim::ms(9);
  sim::Duration putcommentform_latency = sim::ms(15);
  sim::Duration storecomment_latency = sim::ms(20);
};

/// RUBiS (Rice University Bidding System, §2.2) in its Session Façade
/// configuration, with the §3.4 modifications (CMP 2.0 finders, stub
/// caching, enlarged database).
class RubisApp {
 public:
  explicit RubisApp(Shape shape = {}, Calibration cal = {});

  [[nodiscard]] const comp::Application& application() const { return app_; }
  [[nodiscard]] const AppMetadata& metadata() const { return meta_; }
  [[nodiscard]] const Shape& shape() const { return shape_; }

  void install_database(db::Database& db) const;
  void bind_entities(comp::Runtime& rt) const;

  [[nodiscard]] workload::SessionFactory browser_factory(sim::RngStream rng) const;
  [[nodiscard]] workload::SessionFactory bidder_factory(sim::RngStream rng) const;

  /// (pattern, page) rows in Table 7's column order.
  [[nodiscard]] static std::vector<std::pair<std::string, std::string>> table_pages();

  /// Uniform handle for the experiment harness. The RubisApp must outlive
  /// the returned driver.
  [[nodiscard]] AppDriver driver() const;

  static constexpr int kBrowserSessionLength = 40;  // §3.2

 private:
  void define_components();
  static AppMetadata build_metadata();

  Shape shape_;
  Calibration cal_;
  comp::Application app_;
  AppMetadata meta_;
};

}  // namespace mutsvc::apps::rubis

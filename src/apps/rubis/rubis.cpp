#include "apps/rubis/rubis.hpp"

#include <array>
#include <memory>

#include "db/query.hpp"

namespace mutsvc::apps::rubis {

using comp::CallContext;
using comp::ComponentKind;
using db::Query;
using db::Row;
using db::Value;
using sim::Task;

RubisApp::RubisApp(Shape shape, Calibration cal)
    : shape_(shape), cal_(cal), app_("rubis"), meta_(build_metadata()) {
  define_components();
}

AppMetadata RubisApp::build_metadata() {
  AppMetadata m;
  m.name = "rubis";
  // §4.2: "RUBiS does not use stateful session beans, so only web
  // components were deployed in the edge servers."
  m.web_components = {"RubisWeb"};
  m.stateful_session = {};
  // §4.3: "the read-only beans and SB_ViewBidHistory, SB_ViewItem, and
  // SB_ViewUserInfo façade stateless session beans were also deployed on
  // the edge servers."
  m.edge_facades = {"SB_ViewItem", "SB_ViewBidHistory", "SB_ViewUserInfo"};
  // §4.4: query caches live in the stateless beans issuing the finders.
  m.query_facades = {"SB_BrowseCategories", "SB_BrowseRegions", "SB_SearchItemsByCategory",
                     "SB_SearchItemsByRegion", "SB_Auth", "SB_PutBid", "SB_PutComment"};
  m.main_facades = {"SB_StoreBid", "SB_StoreComment"};
  m.entities = {"UserEJB", "ItemEJB", "BidEJB", "CommentEJB", "CategoryEJB", "RegionEJB"};
  // §4.3: "Read-only BMP versions of Item and User beans were introduced."
  m.read_mostly = {"Item", "User"};
  // §4.4: "A push-based query update mechanism was implemented" for RUBiS.
  m.query_refresh = comp::QueryRefreshMode::kPush;
  return m;
}

void RubisApp::define_components() {
  // ----- session façades (EJB tier) -------------------------------------------
  auto& browse_cat = app_.define("SB_BrowseCategories", ComponentKind::kStatelessSessionBean);
  browse_cat.method({.name = "getCategories",
                     .cpu = cal_.ejb_cpu,
                     .body = [](CallContext& ctx) -> Task<void> {
                       auto res = co_await ctx.cached_query(Query::aggregate("all_categories"));
                       ctx.result = std::move(res.rows);
                     }});
  browse_cat.method({.name = "getCategoriesForRegion",
                     .cpu = cal_.ejb_cpu,
                     .body = [](CallContext& ctx) -> Task<void> {
                       Query q = Query::aggregate("categories_in_region", {ctx.arg(0)});
                       auto res = co_await ctx.cached_query(std::move(q));
                       ctx.result = std::move(res.rows);
                     }});

  auto& browse_reg = app_.define("SB_BrowseRegions", ComponentKind::kStatelessSessionBean);
  browse_reg.method({.name = "getRegions",
                     .cpu = cal_.ejb_cpu,
                     .body = [](CallContext& ctx) -> Task<void> {
                       auto res = co_await ctx.cached_query(Query::aggregate("all_regions"));
                       ctx.result = std::move(res.rows);
                     }});

  auto& search_cat = app_.define("SB_SearchItemsByCategory", ComponentKind::kStatelessSessionBean);
  search_cat.method({.name = "getItems",
                     .cpu = cal_.ejb_cpu,
                     .body = [](CallContext& ctx) -> Task<void> {
                       auto res = co_await ctx.cached_query(
                           Query::finder("items", "category_id", ctx.arg(0)));
                       ctx.result = std::move(res.rows);
                     }});

  auto& search_reg = app_.define("SB_SearchItemsByRegion", ComponentKind::kStatelessSessionBean);
  search_reg.method({.name = "getItems",
                     .cpu = cal_.ejb_cpu,
                     .body = [](CallContext& ctx) -> Task<void> {
                       Query q = Query::aggregate("items_in_category_region",
                                                  {ctx.arg(0), ctx.arg(1)});
                       auto res = co_await ctx.cached_query(std::move(q));
                       ctx.result = std::move(res.rows);
                     }});

  auto& view_item = app_.define("SB_ViewItem", ComponentKind::kStatelessSessionBean);
  view_item.method({.name = "getItem",
                    .cpu = cal_.ejb_cpu,
                    .body = [](CallContext& ctx) -> Task<void> {
                      auto item = co_await ctx.read_entity("Item", ctx.arg_int(0));
                      if (item) ctx.result.push_back(std::move(*item));
                    }});

  auto& view_bids = app_.define("SB_ViewBidHistory", ComponentKind::kStatelessSessionBean);
  view_bids.method({.name = "getBids",
                    .cpu = cal_.ejb_cpu,
                    .body = [](CallContext& ctx) -> Task<void> {
                      auto res = co_await ctx.cached_query(
                          Query::finder("bids", "item_id", ctx.arg(0)));
                      ctx.result = std::move(res.rows);
                    }});

  auto& view_user = app_.define("SB_ViewUserInfo", ComponentKind::kStatelessSessionBean);
  view_user.method({.name = "getUserInfo",
                    .cpu = cal_.ejb_cpu,
                    .body = [](CallContext& ctx) -> Task<void> {
                      auto user = co_await ctx.read_entity("User", ctx.arg_int(0));
                      if (user) ctx.result.push_back(std::move(*user));
                      auto comments = co_await ctx.cached_query(
                          Query::finder("comments", "to_user", ctx.arg(0)));
                      for (auto& r : comments.rows) ctx.result.push_back(std::move(r));
                    }});

  // Authentication is a finder on (nickname, password) — a query, which is
  // why it becomes edge-local only once query caching is enabled (§4.4's
  // "triumphal" bidder-form improvement).
  auto& auth = app_.define("SB_Auth", ComponentKind::kStatelessSessionBean);
  auth.method({.name = "authenticate",
               .cpu = cal_.ejb_cpu,
               .body = [](CallContext& ctx) -> Task<void> {
                 auto res = co_await ctx.cached_query(
                     Query::finder("users", "nickname", ctx.arg(0)));
                 ctx.result = std::move(res.rows);
               }});

  auto& put_bid = app_.define("SB_PutBid", ComponentKind::kStatelessSessionBean);
  put_bid.method({.name = "buildForm",
                  .cpu = cal_.ejb_cpu,
                  .body = [](CallContext& ctx) -> Task<void> {
                    // Verify credentials, then show current item state.
                    (void)co_await ctx.call("SB_Auth", "authenticate", ctx.arg(0));
                    auto item = co_await ctx.read_entity("Item", ctx.arg_int(1));
                    if (item) ctx.result.push_back(std::move(*item));
                  }});

  auto& store_bid = app_.define("SB_StoreBid", ComponentKind::kStatelessSessionBean);
  store_bid.method(
      {.name = "storeBid",
       .cpu = cal_.ejb_cpu,
       .body = [](CallContext& ctx) -> Task<void> {
         const std::int64_t user = ctx.arg_int(0);
         const std::int64_t item = ctx.arg_int(1);
         const double amount = db::as_real(ctx.arg(2));
         auto current = co_await ctx.read_entity("Item", item);
         if (!current) co_return;
         const std::int64_t category = db::as_int((*current)[2]);
         const std::int64_t nb_bids = db::as_int((*current)[5]);
         // One transaction: insert the bid, update the item's bid count and
         // current price; invalidates the item's bid history and the item
         // listings that display prices/bid counts.
         std::vector<Query> affected{
             Query::finder("bids", "item_id", Value{item}),
             Query::finder("items", "category_id", Value{category}),
         };
         const std::int64_t bid_id = ctx.allocate_id("bids");
         Row bid{bid_id, item, user, amount};
         co_await ctx.insert_row("Bid", std::move(bid), affected);
         co_await ctx.write_entity("Item", item, "nb_bids", nb_bids + 1, affected);
         co_await ctx.write_entity("Item", item, "current_price", amount);
       }});

  auto& put_comment = app_.define("SB_PutComment", ComponentKind::kStatelessSessionBean);
  put_comment.method({.name = "buildForm",
                      .cpu = cal_.ejb_cpu,
                      .body = [](CallContext& ctx) -> Task<void> {
                        (void)co_await ctx.call("SB_Auth", "authenticate", ctx.arg(0));
                        auto user = co_await ctx.read_entity("User", ctx.arg_int(1));
                        if (user) ctx.result.push_back(std::move(*user));
                      }});

  auto& store_comment = app_.define("SB_StoreComment", ComponentKind::kStatelessSessionBean);
  store_comment.method(
      {.name = "storeComment",
       .cpu = cal_.ejb_cpu,
       .body = [](CallContext& ctx) -> Task<void> {
         const std::int64_t from = ctx.arg_int(0);
         const std::int64_t to = ctx.arg_int(1);
         const std::int64_t item = ctx.arg_int(2);
         auto target = co_await ctx.read_entity("User", to);
         if (!target) co_return;
         const std::int64_t rating = db::as_int((*target)[4]);
         std::vector<Query> affected{Query::finder("comments", "to_user", Value{to})};
         const std::int64_t comment_id = ctx.allocate_id("comments");
         Row comment{comment_id, from, to, item, std::int64_t{5}, std::string{"Great seller"}};
         co_await ctx.insert_row("Comment", std::move(comment), affected);
         co_await ctx.write_entity("User", to, "rating", rating + 1);
       }});

  // Entity beans (placement anchors; data access via CallContext helpers).
  for (const char* e :
       {"UserEJB", "ItemEJB", "BidEJB", "CommentEJB", "CategoryEJB", "RegionEJB"}) {
    app_.define(e, ComponentKind::kEntityBeanRW).local_interface_only();
  }

  // ----- web tier: one servlet per page type (§2.2) ----------------------------
  auto& web = app_.define("RubisWeb", ComponentKind::kServlet);

  auto simple_page = [&](const char* name, sim::Duration latency, net::Bytes bytes) {
    web.method({.name = name, .cpu = cal_.page_cpu, .latency = latency, .result_bytes = bytes});
  };
  simple_page("main", cal_.main_latency, 2 * 1024);
  simple_page("browse", cal_.browse_latency, 2 * 1024);
  simple_page("putbidauth", cal_.putbidauth_latency, 2 * 1024);
  simple_page("putcommentauth", cal_.putcommentauth_latency, 2 * 1024);

  auto facade_page = [&](const char* name, sim::Duration latency, const char* bean,
                         const char* method, net::Bytes bytes) {
    std::string bean_s = bean;
    std::string method_s = method;
    web.method({.name = name,
                .cpu = cal_.page_cpu,
                .latency = latency,
                .result_bytes = bytes,
                .body = [bean_s, method_s](CallContext& ctx) -> Task<void> {
                  std::vector<Value> args;
                  for (std::size_t i = 0; i < ctx.arg_count(); ++i) args.push_back(ctx.arg(i));
                  auto res = co_await ctx.call(bean_s, method_s, std::move(args));
                  ctx.result = std::move(res.rows);
                }});
  };

  facade_page("allcategories", cal_.allcategories_latency, "SB_BrowseCategories",
              "getCategories", 4 * 1024);
  facade_page("allregions", cal_.allregions_latency, "SB_BrowseRegions", "getRegions", 3 * 1024);
  facade_page("region", cal_.region_latency, "SB_BrowseCategories", "getCategoriesForRegion",
              4 * 1024);
  facade_page("category", cal_.category_latency, "SB_SearchItemsByCategory", "getItems",
              6 * 1024);
  facade_page("categoryregion", cal_.categoryregion_latency, "SB_SearchItemsByRegion",
              "getItems", 5 * 1024);
  facade_page("item", cal_.item_latency, "SB_ViewItem", "getItem", 4 * 1024);
  facade_page("bids", cal_.bids_latency, "SB_ViewBidHistory", "getBids", 4 * 1024);
  facade_page("userinfo", cal_.userinfo_latency, "SB_ViewUserInfo", "getUserInfo", 4 * 1024);
  facade_page("putbidform", cal_.putbidform_latency, "SB_PutBid", "buildForm", 3 * 1024);
  facade_page("storebid", cal_.storebid_latency, "SB_StoreBid", "storeBid", 2 * 1024);
  facade_page("putcommentform", cal_.putcommentform_latency, "SB_PutComment", "buildForm",
              3 * 1024);
  facade_page("storecomment", cal_.storecomment_latency, "SB_StoreComment", "storeComment",
              2 * 1024);
}

void RubisApp::install_database(db::Database& db) const {
  using db::Column;
  using db::ColumnType;

  auto& regions =
      db.create_table("regions", {{"id", ColumnType::kInt}, {"name", ColumnType::kText}});
  auto& categories =
      db.create_table("categories", {{"id", ColumnType::kInt}, {"name", ColumnType::kText}});
  auto& users = db.create_table("users", {{"id", ColumnType::kInt},
                                          {"nickname", ColumnType::kText},
                                          {"password", ColumnType::kText},
                                          {"region_id", ColumnType::kInt},
                                          {"rating", ColumnType::kInt}});
  auto& items = db.create_table("items", {{"id", ColumnType::kInt},
                                          {"name", ColumnType::kText},
                                          {"category_id", ColumnType::kInt},
                                          {"seller_id", ColumnType::kInt},
                                          {"initial_price", ColumnType::kReal},
                                          {"nb_bids", ColumnType::kInt},
                                          {"current_price", ColumnType::kReal}});
  auto& bids = db.create_table("bids", {{"id", ColumnType::kInt},
                                        {"item_id", ColumnType::kInt},
                                        {"user_id", ColumnType::kInt},
                                        {"amount", ColumnType::kReal}});
  auto& comments = db.create_table("comments", {{"id", ColumnType::kInt},
                                                {"from_user", ColumnType::kInt},
                                                {"to_user", ColumnType::kInt},
                                                {"item_id", ColumnType::kInt},
                                                {"rating", ColumnType::kInt},
                                                {"text", ColumnType::kText}});

  users.create_index("nickname");
  items.create_index("category_id");
  bids.create_index("item_id");
  comments.create_index("to_user");

  for (std::int64_t r = 1; r <= shape_.regions; ++r) {
    regions.insert(Row{r, std::string{"Region-"} + std::to_string(r)});
  }
  for (std::int64_t c = 1; c <= shape_.categories; ++c) {
    categories.insert(Row{c, std::string{"Category-"} + std::to_string(c)});
  }
  for (std::int64_t u = 1; u <= shape_.users; ++u) {
    users.insert(Row{u, std::string{"user"} + std::to_string(u), std::string{"pw"},
                     shape_.user_region(u), std::int64_t{0}});
  }
  std::int64_t bid_id = 0;
  for (std::int64_t i = 1; i <= shape_.items; ++i) {
    items.insert(Row{i, std::string{"Item-"} + std::to_string(i), shape_.item_category(i),
                     shape_.item_seller(i), 10.0, std::int64_t{shape_.initial_bids_per_item},
                     10.0 + static_cast<double>(shape_.initial_bids_per_item)});
    for (int b = 0; b < shape_.initial_bids_per_item; ++b) {
      bids.insert(Row{++bid_id, i, (i + b) % shape_.users + 1, 10.0 + b});
    }
  }
  std::int64_t comment_id = 0;
  for (std::int64_t u = 1; u <= shape_.users; ++u) {
    for (int c = 0; c < shape_.initial_comments_per_user; ++c) {
      comments.insert(Row{++comment_id, (u + c) % shape_.users + 1, u, (u % shape_.items) + 1,
                          std::int64_t{5}, std::string{"ok"}});
    }
  }

  db.register_aggregate("all_categories", [](db::Database& d, const std::vector<Value>&) {
    return d.table("categories").scan([](const Row&) { return true; });
  });
  db.register_aggregate("all_regions", [](db::Database& d, const std::vector<Value>&) {
    return d.table("regions").scan([](const Row&) { return true; });
  });
  db.register_aggregate("categories_in_region",
                        [](db::Database& d, const std::vector<Value>&) {
                          // The region filters which items exist per category;
                          // the category list itself is global.
                          return d.table("categories").scan([](const Row&) { return true; });
                        });
  db.register_aggregate(
      "items_in_category_region", [](db::Database& d, const std::vector<Value>& params) {
        const std::int64_t category = db::as_int(params.at(0));
        const std::int64_t region = db::as_int(params.at(1));
        std::vector<Row> out;
        // Non-copying index walk: only the rows that survive the region
        // filter are copied into the result.
        d.table("items").for_each_equal("category_id", category, [&](const Row& item) {
          auto seller = d.table("users").get(db::as_int(item[3]));
          if (seller && db::as_int((*seller)[3]) == region) out.push_back(item);
        });
        return out;
      });
}

void RubisApp::bind_entities(comp::Runtime& rt) const {
  rt.bind_entity("User", "users");
  rt.bind_entity("Item", "items");
  rt.bind_entity("Bid", "bids");
  rt.bind_entity("Comment", "comments");
  rt.bind_entity("Category", "categories");
  rt.bind_entity("Region", "regions");
}

// --- session scripts -------------------------------------------------------------

namespace {

workload::PageRequest make_request(const char* pattern, std::string page, std::string method,
                                   std::vector<Value> args) {
  workload::PageRequest req;
  req.page = std::move(page);
  req.pattern = pattern;
  req.component = "RubisWeb";
  req.method = std::move(method);
  req.args = std::move(args);
  req.response_bytes = 4 * 1024;
  return req;
}

/// Table 4: 40 requests with the listed weights, logically ordered (Item /
/// Bids requests follow a Category listing, User Info follows Bids, ...).
class BrowserScript final : public workload::SessionScript {
 public:
  BrowserScript(Shape shape, sim::RngStream rng) : shape_(shape), rng_(std::move(rng)) {}

  std::optional<workload::PageRequest> next() override {
    if (issued_ >= RubisApp::kBrowserSessionLength) return std::nullopt;
    ++issued_;
    if (issued_ == 1) return make_request("Browser", "Main", "main", {});

    static constexpr std::array<double, 10> kWeights = {2.5, 2.5, 2.5,  2.5, 2.5,
                                                        7.5, 7.5, 42.5, 15,  15};
    switch (rng_.weighted_index(kWeights)) {
      case 0: return make_request("Browser", "Main", "main", {});
      case 1: return make_request("Browser", "Browse", "browse", {});
      case 2: return make_request("Browser", "All Categories", "allcategories", {});
      case 3: return make_request("Browser", "All Regions", "allregions", {});
      case 4: {
        region_ = rng_.uniform_int(1, shape_.regions);
        return make_request("Browser", "Region", "region", {Value{region_}});
      }
      case 5: {
        category_ = rng_.uniform_int(1, shape_.categories);
        return make_request("Browser", "Category", "category", {Value{category_}});
      }
      case 6: {
        category_ = rng_.uniform_int(1, shape_.categories);
        if (region_ == 0) region_ = rng_.uniform_int(1, shape_.regions);
        return make_request("Browser", "Category & Region", "categoryregion",
                            {Value{category_}, Value{region_}});
      }
      case 7: {
        item_ = pick_item();
        return make_request("Browser", "Item", "item", {Value{item_}});
      }
      case 8: {
        item_ = pick_item();
        return make_request("Browser", "Bids", "bids", {Value{item_}});
      }
      default: {
        std::int64_t user = item_ != 0 ? shape_.item_seller(item_)
                                       : rng_.uniform_int(1, shape_.users);
        return make_request("Browser", "User Info", "userinfo", {Value{user}});
      }
    }
  }

  const char* pattern() const override { return "Browser"; }

 private:
  [[nodiscard]] std::int64_t pick_item() {
    if (category_ == 0) category_ = rng_.uniform_int(1, shape_.categories);
    // Items of a category are spaced `categories` apart (item_category).
    const auto per_cat = static_cast<std::int64_t>(shape_.items / shape_.categories);
    const std::int64_t k = rng_.uniform_int(0, per_cat - 1);
    return (category_ - 1) + k * shape_.categories + 1;
  }

  Shape shape_;
  sim::RngStream rng_;
  int issued_ = 0;
  std::int64_t region_ = 0;
  std::int64_t category_ = 0;
  std::int64_t item_ = 0;
};

/// Table 5: the fixed bidder scenario — bid on an item, then leave a
/// comment for its seller.
class BidderScript final : public workload::SessionScript {
 public:
  BidderScript(Shape shape, sim::RngStream rng) : shape_(shape), rng_(std::move(rng)) {
    user_ = rng_.uniform_int(1, shape_.users);
    // Bidding concentrates on active auctions: 80% of bids go to a hot
    // tenth of the items (auction traffic is heavily skewed).
    const std::int64_t hot = std::max<std::int64_t>(1, shape_.items / 10);
    item_ = rng_.bernoulli(0.8) ? rng_.uniform_int(1, hot)
                                : rng_.uniform_int(1, shape_.items);
    seller_ = shape_.item_seller(item_);
    amount_ = rng_.uniform(20.0, 200.0);
  }

  std::optional<workload::PageRequest> next() override {
    const std::string nick = "user" + std::to_string(user_);
    switch (step_++) {
      case 0: return make_request("Bidder", "Main", "main", {});
      case 1: return make_request("Bidder", "Put Bid Auth", "putbidauth", {});
      case 2:
        return make_request("Bidder", "Put Bid Form", "putbidform",
                            {Value{nick}, Value{item_}});
      case 3:
        return make_request("Bidder", "Store Bid", "storebid",
                            {Value{user_}, Value{item_}, Value{amount_}});
      case 4: return make_request("Bidder", "Put Comment Auth", "putcommentauth", {});
      case 5:
        return make_request("Bidder", "Put Comment Form", "putcommentform",
                            {Value{nick}, Value{seller_}});
      case 6:
        return make_request("Bidder", "Store Comment", "storecomment",
                            {Value{user_}, Value{seller_}, Value{item_}});
      default: return std::nullopt;
    }
  }

  const char* pattern() const override { return "Bidder"; }

 private:
  Shape shape_;
  sim::RngStream rng_;
  int step_ = 0;
  std::int64_t user_ = 0;
  std::int64_t item_ = 0;
  std::int64_t seller_ = 0;
  double amount_ = 0.0;
};

}  // namespace

workload::SessionFactory RubisApp::browser_factory(sim::RngStream rng) const {
  auto master = std::make_shared<sim::RngStream>(std::move(rng));
  auto counter = std::make_shared<int>(0);
  Shape shape = shape_;
  return [master, counter, shape]() -> std::unique_ptr<workload::SessionScript> {
    return std::make_unique<BrowserScript>(shape,
                                           master->fork("s" + std::to_string((*counter)++)));
  };
}

workload::SessionFactory RubisApp::bidder_factory(sim::RngStream rng) const {
  auto master = std::make_shared<sim::RngStream>(std::move(rng));
  auto counter = std::make_shared<int>(0);
  Shape shape = shape_;
  return [master, counter, shape]() -> std::unique_ptr<workload::SessionScript> {
    return std::make_unique<BidderScript>(shape,
                                          master->fork("s" + std::to_string((*counter)++)));
  };
}

AppDriver RubisApp::driver() const {
  AppDriver d;
  d.name = "RUBiS";
  d.app = &app_;
  d.meta = &meta_;
  d.install_database = [this](db::Database& db) { install_database(db); };
  d.bind_entities = [this](comp::Runtime& rt) { bind_entities(rt); };
  d.browser_factory = [this](sim::RngStream rng) { return browser_factory(std::move(rng)); };
  d.writer_factory = [this](sim::RngStream rng) { return bidder_factory(std::move(rng)); };
  d.table_pages = table_pages();
  d.writer_pattern = "Bidder";
  d.db_colocated = true;  // MySQL on the main app-server workstation (§3.1)
  return d;
}

std::vector<std::pair<std::string, std::string>> RubisApp::table_pages() {
  return {{"Browser", "Main"},
          {"Browser", "Browse"},
          {"Browser", "All Categories"},
          {"Browser", "All Regions"},
          {"Browser", "Region"},
          {"Browser", "Category"},
          {"Browser", "Category & Region"},
          {"Browser", "Item"},
          {"Browser", "Bids"},
          {"Browser", "User Info"},
          {"Bidder", "Main"},
          {"Bidder", "Put Bid Auth"},
          {"Bidder", "Put Bid Form"},
          {"Bidder", "Store Bid"},
          {"Bidder", "Put Comment Auth"},
          {"Bidder", "Put Comment Form"},
          {"Bidder", "Store Comment"}};
  }

}  // namespace mutsvc::apps::rubis

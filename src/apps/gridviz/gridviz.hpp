#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/common/driver.hpp"
#include "apps/common/metadata.hpp"
#include "component/model.hpp"
#include "component/runtime.hpp"
#include "db/database.hpp"
#include "sim/random.hpp"
#include "workload/session.hpp"

namespace mutsvc::apps::gridviz {

/// Repository sizing: simulation runs with frame sequences and live
/// instrument probes.
struct Shape {
  int datasets = 40;
  int frames_per_dataset = 50;
  int probes_per_dataset = 4;
  int initial_readings_per_probe = 20;
  int operators = 60;

  [[nodiscard]] std::int64_t frame_id(std::int64_t dataset, int timestep) const {
    return dataset * 1000 + timestep + 1;
  }
  [[nodiscard]] std::int64_t probe_id(std::int64_t dataset, int k) const {
    return dataset * 100 + k + 1;
  }
};

/// Page demands: visualization pages are light on container time but heavy
/// on payload (frame tiles), which is what makes edge caching of frames
/// pay off beyond latency alone.
struct Calibration {
  sim::Duration page_cpu = sim::ms(1.5);
  sim::Duration render_cpu = sim::ms(4);       // tile encode/decode
  sim::Duration ejb_cpu = sim::us(400);
  sim::Duration catalog_latency = sim::ms(14);
  sim::Duration dataset_latency = sim::ms(12);
  sim::Duration frame_latency = sim::ms(10);
  sim::Duration dashboard_latency = sim::ms(12);
  sim::Duration auth_latency = sim::ms(8);
  sim::Duration steer_latency = sim::ms(12);
  sim::Duration append_latency = sim::ms(10);
  net::Bytes frame_tile_bytes = 48 * 1024;     // rendered frame tile
};

/// GridViz — the §6 "interactive scientific grid-based application":
/// client-side visualization components scrubbing through simulation
/// frames and live instrument dashboards, server-side data processing, and
/// a back-end repository of structured results. Analysts (read-heavy
/// scrubbing) play the Browser role; Operators (steering + instrument
/// appends) play the Buyer/Bidder role.
class GridVizApp {
 public:
  explicit GridVizApp(Shape shape = {}, Calibration cal = {});

  [[nodiscard]] const comp::Application& application() const { return app_; }
  [[nodiscard]] const AppMetadata& metadata() const { return meta_; }
  [[nodiscard]] const Shape& shape() const { return shape_; }

  void install_database(db::Database& db) const;
  void bind_entities(comp::Runtime& rt) const;

  [[nodiscard]] workload::SessionFactory analyst_factory(sim::RngStream rng) const;
  [[nodiscard]] workload::SessionFactory operator_factory(sim::RngStream rng) const;

  [[nodiscard]] static std::vector<std::pair<std::string, std::string>> table_pages();

  [[nodiscard]] AppDriver driver() const;

  static constexpr int kAnalystSessionLength = 30;

 private:
  void define_components();
  static AppMetadata build_metadata();

  Shape shape_;
  Calibration cal_;
  comp::Application app_;
  AppMetadata meta_;
};

}  // namespace mutsvc::apps::gridviz

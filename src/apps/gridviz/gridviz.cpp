#include "apps/gridviz/gridviz.hpp"

#include <array>
#include <memory>

#include "db/query.hpp"

namespace mutsvc::apps::gridviz {

using comp::CallContext;
using comp::ComponentKind;
using db::Query;
using db::Row;
using db::Value;
using sim::Task;

GridVizApp::GridVizApp(Shape shape, Calibration cal)
    : shape_(shape), cal_(cal), app_("gridviz"), meta_(build_metadata()) {
  define_components();
}

AppMetadata GridVizApp::build_metadata() {
  AppMetadata m;
  m.name = "gridviz";
  m.web_components = {"VizWeb"};
  m.stateful_session = {"SessionState"};  // per-analyst viewport/camera state
  m.edge_facades = {"SB_Catalog", "SB_FrameServer", "SB_Dashboard"};
  m.query_facades = {"SB_Catalog", "SB_FrameServer", "SB_Dashboard", "SB_Auth"};
  m.main_facades = {"SB_Steering"};
  m.entities = {"DatasetEJB", "FrameEJB", "ProbeEJB", "ReadingEJB", "OperatorEJB"};
  // Frames and datasets are written only by the (rare) simulation ingest;
  // probes are static descriptors. All are read-mostly.
  m.read_mostly = {"Dataset", "Frame", "Probe"};
  m.query_refresh = comp::QueryRefreshMode::kPush;  // live dashboards
  return m;
}

void GridVizApp::define_components() {
  auto& catalog = app_.define("SB_Catalog", ComponentKind::kStatelessSessionBean);
  catalog.method({.name = "listDatasets",
                  .cpu = cal_.ejb_cpu,
                  .body = [](CallContext& ctx) -> Task<void> {
                    auto res = co_await ctx.cached_query(Query::aggregate("all_datasets"));
                    ctx.result = std::move(res.rows);
                  }});
  catalog.method({.name = "getDataset",
                  .cpu = cal_.ejb_cpu,
                  .body = [](CallContext& ctx) -> Task<void> {
                    auto ds = co_await ctx.read_entity("Dataset", ctx.arg_int(0));
                    if (ds) ctx.result.push_back(std::move(*ds));
                    auto probes = co_await ctx.cached_query(
                        Query::finder("probes", "dataset_id", ctx.arg(0)));
                    for (auto& r : probes.rows) ctx.result.push_back(std::move(r));
                  }});

  auto& frames = app_.define("SB_FrameServer", ComponentKind::kStatelessSessionBean);
  frames.method({.name = "getFrame",
                 .cpu = cal_.render_cpu,  // tile encode
                 .result_bytes = cal_.frame_tile_bytes,
                 .body = [](CallContext& ctx) -> Task<void> {
                   auto frame = co_await ctx.read_entity("Frame", ctx.arg_int(0));
                   if (frame) ctx.result.push_back(std::move(*frame));
                 }});
  frames.method({.name = "getScrubStrip",
                 .cpu = cal_.ejb_cpu,
                 .body = [](CallContext& ctx) -> Task<void> {
                   auto res = co_await ctx.cached_query(
                       Query::finder("frames", "dataset_id", ctx.arg(0)));
                   ctx.result = std::move(res.rows);
                 }});

  auto& dash = app_.define("SB_Dashboard", ComponentKind::kStatelessSessionBean);
  dash.method({.name = "recentReadings",
               .cpu = cal_.ejb_cpu,
               .body = [](CallContext& ctx) -> Task<void> {
                 Query q = Query::aggregate("recent_readings", {ctx.arg(0)});
                 auto res = co_await ctx.cached_query(std::move(q));
                 ctx.result = std::move(res.rows);
               }});

  auto& auth = app_.define("SB_Auth", ComponentKind::kStatelessSessionBean);
  auth.method({.name = "authenticate",
               .cpu = cal_.ejb_cpu,
               .body = [](CallContext& ctx) -> Task<void> {
                 auto res = co_await ctx.cached_query(
                     Query::finder("operators", "login", ctx.arg(0)));
                 ctx.result = std::move(res.rows);
               }});

  // Steering and instrumentation writes stay with the repository.
  auto& steering = app_.define("SB_Steering", ComponentKind::kStatelessSessionBean);
  steering.method({.name = "setParameter",
                   .cpu = cal_.ejb_cpu,
                   .body = [](CallContext& ctx) -> Task<void> {
                     // Steering changes the dataset's control field; frame
                     // consumers see it via the pushed Dataset update.
                     co_await ctx.write_entity("Dataset", ctx.arg_int(0), "param",
                                               ctx.arg(1));
                   }});
  steering.method(
      {.name = "appendReadings",
       .cpu = cal_.ejb_cpu,
       .body = [](CallContext& ctx) -> Task<void> {
         const std::int64_t probe = ctx.arg_int(0);
         auto probe_row = co_await ctx.read_entity("Probe", probe);
         if (!probe_row) co_return;
         const std::int64_t dataset = db::as_int((*probe_row)[1]);
         std::vector<Query> affected{Query::aggregate("recent_readings", {Value{dataset}})};
         const std::int64_t id = ctx.allocate_id("readings");
         Row reading{id, probe, id, 42.0};
         co_await ctx.insert_row("Reading", std::move(reading), std::move(affected));
       }});

  auto& session = app_.define("SessionState", ComponentKind::kStatefulSessionBean);
  session.method({.name = "updateViewport", .cpu = sim::us(200)});

  for (const char* e :
       {"DatasetEJB", "FrameEJB", "ProbeEJB", "ReadingEJB", "OperatorEJB"}) {
    app_.define(e, ComponentKind::kEntityBeanRW).local_interface_only();
  }

  // ----- web tier --------------------------------------------------------------
  auto& web = app_.define("VizWeb", ComponentKind::kServlet);
  auto facade_page = [&](const char* name, sim::Duration latency, const char* bean,
                         const char* method, net::Bytes bytes) {
    std::string bean_s = bean;
    std::string method_s = method;
    web.method({.name = name,
                .cpu = cal_.page_cpu,
                .latency = latency,
                .result_bytes = bytes,
                .body = [bean_s, method_s](CallContext& ctx) -> Task<void> {
                  std::vector<Value> args;
                  for (std::size_t i = 0; i < ctx.arg_count(); ++i) args.push_back(ctx.arg(i));
                  auto res = co_await ctx.call(bean_s, method_s, std::move(args));
                  ctx.result = std::move(res.rows);
                }});
  };
  facade_page("catalog", cal_.catalog_latency, "SB_Catalog", "listDatasets", 5 * 1024);
  facade_page("dataset", cal_.dataset_latency, "SB_Catalog", "getDataset", 4 * 1024);
  web.method({.name = "frame",
              .cpu = cal_.page_cpu,
              .latency = cal_.frame_latency,
              .result_bytes = cal_.frame_tile_bytes,
              .body = [](CallContext& ctx) -> Task<void> {
                (void)co_await ctx.call("SessionState", "updateViewport", {});
                auto res = co_await ctx.call("SB_FrameServer", "getFrame", ctx.arg(0));
                ctx.result = std::move(res.rows);
              }});
  facade_page("scrub", cal_.frame_latency, "SB_FrameServer", "getScrubStrip", 6 * 1024);
  facade_page("dashboard", cal_.dashboard_latency, "SB_Dashboard", "recentReadings", 4 * 1024);
  facade_page("auth", cal_.auth_latency, "SB_Auth", "authenticate", 2 * 1024);
  facade_page("steer", cal_.steer_latency, "SB_Steering", "setParameter", 2 * 1024);
  facade_page("append", cal_.append_latency, "SB_Steering", "appendReadings", 2 * 1024);
}

void GridVizApp::install_database(db::Database& db) const {
  using db::ColumnType;

  auto& datasets = db.create_table("datasets", {{"id", ColumnType::kInt},
                                                {"name", ColumnType::kText},
                                                {"frames", ColumnType::kInt},
                                                {"param", ColumnType::kReal}});
  auto& frames = db.create_table("frames", {{"id", ColumnType::kInt},
                                            {"dataset_id", ColumnType::kInt},
                                            {"timestep", ColumnType::kInt},
                                            {"bytes", ColumnType::kInt}});
  auto& probes = db.create_table("probes", {{"id", ColumnType::kInt},
                                            {"dataset_id", ColumnType::kInt},
                                            {"kind", ColumnType::kText}});
  auto& readings = db.create_table("readings", {{"id", ColumnType::kInt},
                                                {"probe_id", ColumnType::kInt},
                                                {"seq", ColumnType::kInt},
                                                {"value", ColumnType::kReal}});
  auto& operators = db.create_table("operators", {{"id", ColumnType::kInt},
                                                  {"login", ColumnType::kText},
                                                  {"clearance", ColumnType::kInt}});

  frames.create_index("dataset_id");
  probes.create_index("dataset_id");
  readings.create_index("probe_id");
  operators.create_index("login");

  std::int64_t reading_id = 0;
  for (std::int64_t d = 1; d <= shape_.datasets; ++d) {
    datasets.insert(Row{d, "run-" + std::to_string(d),
                        std::int64_t{shape_.frames_per_dataset}, 1.0});
    for (int f = 0; f < shape_.frames_per_dataset; ++f) {
      frames.insert(Row{shape_.frame_id(d, f), d, std::int64_t{f}, std::int64_t{48 * 1024}});
    }
    for (int p = 0; p < shape_.probes_per_dataset; ++p) {
      const std::int64_t pid = shape_.probe_id(d, p);
      probes.insert(Row{pid, d, std::string{"thermocouple"}});
      for (int r = 0; r < shape_.initial_readings_per_probe; ++r) {
        readings.insert(Row{++reading_id, pid, std::int64_t{r}, 20.0 + r});
      }
    }
  }
  for (std::int64_t o = 1; o <= shape_.operators; ++o) {
    operators.insert(Row{o, "op" + std::to_string(o), std::int64_t{2}});
  }

  db.register_aggregate("all_datasets", [](db::Database& d, const std::vector<Value>&) {
    return d.table("datasets").scan([](const Row&) { return true; });
  });
  db.register_aggregate(
      "recent_readings", [](db::Database& d, const std::vector<Value>& params) {
        // Latest readings across the dataset's probes (bounded window).
        const std::int64_t dataset = db::as_int(params.at(0));
        std::vector<Row> out;
        const db::Table& probes = d.table("probes");
        const db::Table& readings = d.table("readings");
        probes.for_each_equal("dataset_id", dataset, [&](const Row& probe) {
          // Keep only the last 10 readings per probe: walk the index
          // without copying, remembering the tail in a ring of pointers.
          std::vector<const Row*> tail;
          std::size_t seen = 0;
          readings.for_each_equal("probe_id", probe[0], [&](const Row& r) {
            if (tail.size() < 10) {
              tail.push_back(&r);
            } else {
              tail[seen % 10] = &r;
            }
            ++seen;
          });
          const std::size_t start = seen > 10 ? seen % 10 : 0;
          for (std::size_t i = 0; i < tail.size(); ++i) {
            out.push_back(*tail[(start + i) % tail.size()]);
          }
        });
        return out;
      });
}

void GridVizApp::bind_entities(comp::Runtime& rt) const {
  rt.bind_entity("Dataset", "datasets");
  rt.bind_entity("Frame", "frames");
  rt.bind_entity("Probe", "probes");
  rt.bind_entity("Reading", "readings");
  rt.bind_entity("Operator", "operators");
}

// --- session scripts ------------------------------------------------------------

namespace {

workload::PageRequest make_request(const char* pattern, std::string page, std::string method,
                                   std::vector<Value> args, net::Bytes response = 4 * 1024) {
  workload::PageRequest req;
  req.page = std::move(page);
  req.pattern = pattern;
  req.component = "VizWeb";
  req.method = std::move(method);
  req.args = std::move(args);
  req.response_bytes = response;
  return req;
}

/// Analyst: open the catalog, pick a run, scrub frames, watch dashboards.
class AnalystScript final : public workload::SessionScript {
 public:
  AnalystScript(Shape shape, sim::RngStream rng) : shape_(shape), rng_(std::move(rng)) {}

  std::optional<workload::PageRequest> next() override {
    if (issued_ >= GridVizApp::kAnalystSessionLength) return std::nullopt;
    ++issued_;
    if (issued_ == 1) return make_request("Analyst", "Catalog", "catalog", {});
    static constexpr std::array<double, 4> kWeights = {10, 10, 55, 25};
    switch (rng_.weighted_index(kWeights)) {
      case 0: return make_request("Analyst", "Catalog", "catalog", {});
      case 1: {
        dataset_ = rng_.uniform_int(1, shape_.datasets);
        timestep_ = 0;
        return make_request("Analyst", "Dataset", "dataset", {Value{dataset_}});
      }
      case 2: {
        if (dataset_ == 0) dataset_ = rng_.uniform_int(1, shape_.datasets);
        // Scrubbing walks forward through the sequence (temporal locality).
        timestep_ = (timestep_ + static_cast<int>(rng_.uniform_int(1, 3))) %
                    shape_.frames_per_dataset;
        const std::int64_t frame = shape_.frame_id(dataset_, timestep_);
        return make_request("Analyst", "Frame", "frame", {Value{frame}}, 48 * 1024);
      }
      default: {
        if (dataset_ == 0) dataset_ = rng_.uniform_int(1, shape_.datasets);
        return make_request("Analyst", "Dashboard", "dashboard", {Value{dataset_}});
      }
    }
  }

  const char* pattern() const override { return "Analyst"; }

 private:
  Shape shape_;
  sim::RngStream rng_;
  int issued_ = 0;
  std::int64_t dataset_ = 0;
  int timestep_ = 0;
};

/// Operator: authenticate, steer the run, stream instrument readings.
class OperatorScript final : public workload::SessionScript {
 public:
  OperatorScript(Shape shape, sim::RngStream rng) : shape_(shape), rng_(std::move(rng)) {
    operator_ = rng_.uniform_int(1, shape_.operators);
    dataset_ = rng_.uniform_int(1, shape_.datasets);
    probe_ = shape_.probe_id(dataset_,
                             static_cast<int>(rng_.uniform_int(0, shape_.probes_per_dataset - 1)));
  }

  std::optional<workload::PageRequest> next() override {
    const std::string login = "op" + std::to_string(operator_);
    switch (step_++) {
      case 0: return make_request("Operator", "Auth", "auth", {Value{login}});
      case 1:
        return make_request("Operator", "Steer", "steer",
                            {Value{dataset_}, Value{rng_.uniform(0.1, 9.9)}});
      case 2: return make_request("Operator", "Append", "append", {Value{probe_}});
      case 3: return make_request("Operator", "Dashboard", "dashboard", {Value{dataset_}});
      case 4: return make_request("Operator", "Append", "append", {Value{probe_}});
      case 5: return make_request("Operator", "Dashboard", "dashboard", {Value{dataset_}});
      default: return std::nullopt;
    }
  }

  const char* pattern() const override { return "Operator"; }

 private:
  Shape shape_;
  sim::RngStream rng_;
  int step_ = 0;
  std::int64_t operator_ = 0;
  std::int64_t dataset_ = 0;
  std::int64_t probe_ = 0;
};

}  // namespace

workload::SessionFactory GridVizApp::analyst_factory(sim::RngStream rng) const {
  auto master = std::make_shared<sim::RngStream>(std::move(rng));
  auto counter = std::make_shared<int>(0);
  Shape shape = shape_;
  return [master, counter, shape]() -> std::unique_ptr<workload::SessionScript> {
    return std::make_unique<AnalystScript>(shape,
                                           master->fork("s" + std::to_string((*counter)++)));
  };
}

workload::SessionFactory GridVizApp::operator_factory(sim::RngStream rng) const {
  auto master = std::make_shared<sim::RngStream>(std::move(rng));
  auto counter = std::make_shared<int>(0);
  Shape shape = shape_;
  return [master, counter, shape]() -> std::unique_ptr<workload::SessionScript> {
    return std::make_unique<OperatorScript>(shape,
                                            master->fork("s" + std::to_string((*counter)++)));
  };
}

std::vector<std::pair<std::string, std::string>> GridVizApp::table_pages() {
  return {{"Analyst", "Catalog"},   {"Analyst", "Dataset"},   {"Analyst", "Frame"},
          {"Analyst", "Dashboard"}, {"Operator", "Auth"},     {"Operator", "Steer"},
          {"Operator", "Append"},   {"Operator", "Dashboard"}};
}

AppDriver GridVizApp::driver() const {
  AppDriver d;
  d.name = "GridViz";
  d.app = &app_;
  d.meta = &meta_;
  d.install_database = [this](db::Database& db) { install_database(db); };
  d.bind_entities = [this](comp::Runtime& rt) { bind_entities(rt); };
  d.browser_factory = [this](sim::RngStream rng) { return analyst_factory(std::move(rng)); };
  d.writer_factory = [this](sim::RngStream rng) { return operator_factory(std::move(rng)); };
  d.table_pages = table_pages();
  d.browser_pattern = "Analyst";
  d.writer_pattern = "Operator";
  d.db_colocated = true;  // the repository lives with the main processing site
  return d;
}

}  // namespace mutsvc::apps::gridviz

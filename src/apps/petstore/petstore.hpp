#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/common/driver.hpp"
#include "apps/common/metadata.hpp"
#include "component/model.hpp"
#include "component/runtime.hpp"
#include "db/database.hpp"
#include "sim/random.hpp"
#include "workload/session.hpp"

namespace mutsvc::apps::petstore {

/// Catalog sizing, reflecting the §3.4 database enlargement ("added five
/// artificial categories, 50 products and 300 items").
struct Shape {
  int categories = 10;
  int products_per_category = 6;
  int items_per_product = 6;
  int accounts = 500;

  [[nodiscard]] std::int64_t product_id(std::int64_t category, int k) const {
    return category * 1000 + k + 1;
  }
  [[nodiscard]] std::int64_t item_id(std::int64_t product, int k) const {
    return product * 1000 + k + 1;
  }
  [[nodiscard]] int total_products() const { return categories * products_per_category; }
  [[nodiscard]] int total_items() const { return total_products() * items_per_product; }
};

/// Per-page service demands, calibrated so the *centralized local* column
/// of Table 6 lands near the paper's measurements; every other cell is a
/// model prediction.
struct Calibration {
  sim::Duration page_cpu = sim::ms(3);       // servlet + JSP render CPU
  sim::Duration ejb_cpu = sim::us(500);      // façade business method CPU

  // Non-CPU container residence per page (JBoss/Jetty 2001-era overhead).
  sim::Duration main_latency = sim::ms(70);
  sim::Duration category_latency = sim::ms(66);
  sim::Duration product_latency = sim::ms(66);
  sim::Duration item_latency = sim::ms(70);
  sim::Duration search_latency = sim::ms(76);
  sim::Duration signin_latency = sim::ms(62);
  sim::Duration verify_latency = sim::ms(64);
  sim::Duration cart_latency = sim::ms(92);
  sim::Duration checkout_latency = sim::ms(60);
  sim::Duration placeorder_latency = sim::ms(55);
  sim::Duration billing_latency = sim::ms(55);
  sim::Duration commit_latency = sim::ms(62);
  sim::Duration commit_tx_latency = sim::ms(66);  // order-processing tx overhead
  sim::Duration signout_latency = sim::ms(72);
};

/// Sun's Java Pet Store 1.1.2 (§2.2), modelled after Figure 1 / Table 1,
/// with the §3.4 modifications applied (no ejbStore on read-only
/// transactions, enlarged catalog, pooled connections).
class PetStoreApp {
 public:
  explicit PetStoreApp(Shape shape = {}, Calibration cal = {});

  [[nodiscard]] const comp::Application& application() const { return app_; }
  [[nodiscard]] const AppMetadata& metadata() const { return meta_; }
  [[nodiscard]] const Shape& shape() const { return shape_; }

  /// Creates schema, populates catalog/accounts, registers aggregates.
  void install_database(db::Database& db) const;

  /// Binds entity-bean names to their tables on a runtime.
  void bind_entities(comp::Runtime& rt) const;

  /// Session factories for the two usage patterns (Tables 2 and 3).
  [[nodiscard]] workload::SessionFactory browser_factory(sim::RngStream rng) const;
  [[nodiscard]] workload::SessionFactory buyer_factory(sim::RngStream rng) const;

  /// FSM script models for the million-session load engine (DESIGN §16):
  /// the same Table 2/3 scripts as pure per-step functions. `zipf_s > 0`
  /// draws item popularity Zipf(s)-skewed over the whole catalog (rank 0 =
  /// item 1001001) instead of the uniform category/product chain.
  [[nodiscard]] std::shared_ptr<const workload::FsmScriptModel> fsm_browser_model(
      double zipf_s) const;
  [[nodiscard]] std::shared_ptr<const workload::FsmScriptModel> fsm_buyer_model(
      double zipf_s) const;

  /// (pattern, page) rows in Table 6's column order.
  [[nodiscard]] static std::vector<std::pair<std::string, std::string>> table_pages();

  /// Uniform handle for the experiment harness. The PetStoreApp must
  /// outlive the returned driver.
  [[nodiscard]] AppDriver driver() const;

  static constexpr int kBrowserSessionLength = 20;  // §3.2

 private:
  void define_components();
  static AppMetadata build_metadata();

  Shape shape_;
  Calibration cal_;
  comp::Application app_;
  AppMetadata meta_;
};

}  // namespace mutsvc::apps::petstore

#include "apps/petstore/petstore.hpp"

#include <array>
#include <memory>

#include "db/query.hpp"

namespace mutsvc::apps::petstore {

using comp::CallContext;
using comp::ComponentKind;
using comp::Feature;
using db::Query;
using db::Row;
using db::Value;
using sim::Task;

namespace {

const std::array<const char*, 5> kKeywords = {"fish", "dog", "cat", "bird", "snake"};

/// The web tier's pre-façade data access (§4.2): entity-by-entity BMP-style
/// traversal — one finder plus one pk load per row (the "n+1 database
/// calls problem", §5).
[[nodiscard]] Task<void> n_plus_1_fetch(CallContext& ctx, Query finder, const std::string& table) {
  db::QueryResult heads = co_await ctx.direct_query(std::move(finder));
  for (const auto& head : heads.rows) {
    db::QueryResult full = co_await ctx.direct_query(Query::pk_lookup(table, db::as_int(head[0])));
    if (!full.rows.empty()) ctx.result.push_back(std::move(full.rows[0]));
  }
}

}  // namespace

PetStoreApp::PetStoreApp(Shape shape, Calibration cal)
    : shape_(shape), cal_(cal), app_("petstore"), meta_(build_metadata()) {
  define_components();
}

AppMetadata PetStoreApp::build_metadata() {
  AppMetadata m;
  m.name = "petstore";
  m.web_components = {"PetStoreWeb", "CatalogWebImpl"};
  m.stateful_session = {"ShoppingCart", "ShoppingClientController"};
  m.edge_facades = {"Catalog"};
  m.main_facades = {"SignOn", "Customer", "OrderProcessor"};
  m.entities = {"CategoryEJB", "ProductEJB", "ItemEJB", "InventoryEJB", "AccountEJB",
                "OrderEJB", "LineItemEJB"};
  m.read_mostly = {"Category", "Product", "Item", "Inventory"};
  // §4.4: "For simplicity, we implemented the pull-based update mechanism
  // for caching query results" (the Pet Store catalog is read-only anyway).
  m.query_refresh = comp::QueryRefreshMode::kPull;
  return m;
}

void PetStoreApp::define_components() {
  // ----- EJB tier ------------------------------------------------------------
  auto& catalog = app_.define("Catalog", ComponentKind::kStatelessSessionBean);
  catalog.method({.name = "getProducts",
                  .cpu = cal_.ejb_cpu,
                  .body = [](CallContext& ctx) -> Task<void> {
                    auto res = co_await ctx.cached_query(
                        Query::finder("product", "category_id", ctx.arg(0)));
                    ctx.result = std::move(res.rows);
                  }});
  catalog.method({.name = "getItems",
                  .cpu = cal_.ejb_cpu,
                  .body = [](CallContext& ctx) -> Task<void> {
                    auto res = co_await ctx.cached_query(
                        Query::finder("item", "product_id", ctx.arg(0)));
                    ctx.result = std::move(res.rows);
                  }});
  catalog.method({.name = "getItem",
                  .cpu = cal_.ejb_cpu,
                  .body = [](CallContext& ctx) -> Task<void> {
                    // Item details plus availability (Inventory), §2.2/Fig 1.
                    auto item = co_await ctx.read_entity("Item", ctx.arg_int(0));
                    auto inv = co_await ctx.read_entity("Inventory", ctx.arg_int(0));
                    if (item) ctx.result.push_back(std::move(*item));
                    if (inv) ctx.result.push_back(std::move(*inv));
                  }});
  catalog.method({.name = "search",
                  .cpu = cal_.ejb_cpu,
                  .body = [](CallContext& ctx) -> Task<void> {
                    // Keyword queries are never cached (§4.4) — cached_query
                    // recognizes them as uncacheable and runs them at the DB.
                    auto res = co_await ctx.cached_query(
                        Query::keyword_search("product", "name", ctx.arg_text(0)));
                    ctx.result = std::move(res.rows);
                  }});

  auto& signon = app_.define("SignOn", ComponentKind::kStatelessSessionBean);
  signon.method({.name = "authenticate",
                 .cpu = cal_.ejb_cpu,
                 .body = [](CallContext& ctx) -> Task<void> {
                   auto acct = co_await ctx.read_entity("Account", ctx.arg_int(0));
                   if (acct) ctx.result.push_back(std::move(*acct));
                 }});

  auto& customer = app_.define("Customer", ComponentKind::kStatelessSessionBean);
  customer.method({.name = "getProfile",
                   .cpu = cal_.ejb_cpu,
                   .body = [](CallContext& ctx) -> Task<void> {
                     auto acct = co_await ctx.read_entity("Account", ctx.arg_int(0));
                     if (acct) ctx.result.push_back(std::move(*acct));
                   }});

  auto& orders = app_.define("OrderProcessor", ComponentKind::kStatelessSessionBean);
  orders.method({.name = "commitOrder",
                 .cpu = cal_.ejb_cpu,
                 .latency = cal_.commit_tx_latency,
                 .body = [](CallContext& ctx) -> Task<void> {
                   const std::int64_t account = ctx.arg_int(0);
                   const std::int64_t item = ctx.arg_int(1);
                   // Create the order and its line item.
                   const std::int64_t order_id = ctx.allocate_id("orders");
                   Row order{order_id, account, std::string{"pending"}, 0.0};
                   co_await ctx.insert_row("Order", std::move(order));
                   const std::int64_t li_id = ctx.allocate_id("lineitem");
                   Row line{li_id, order_id, item, std::int64_t{1}, 0.0};
                   co_await ctx.insert_row("LineItem", std::move(line));
                   // Decrement inventory — per line item (§4.5 notes Commit
                   // "causes writes to the Inventory EJB for each item in
                   // the user's shopping cart"; sessions carry one item).
                   auto inv = co_await ctx.read_entity("Inventory", item);
                   const std::int64_t qty = inv ? db::as_int((*inv)[1]) : 0;
                   co_await ctx.write_entity("Inventory", item, "qty",
                                             qty > 0 ? qty - 1 : std::int64_t{0});
                 }});

  // Stateful session beans: pure session state, no shared data.
  auto& cart = app_.define("ShoppingCart", ComponentKind::kStatefulSessionBean);
  cart.method({.name = "addItem", .cpu = sim::us(300)});
  cart.method({.name = "getItems", .cpu = sim::us(300)});
  auto& scc = app_.define("ShoppingClientController", ComponentKind::kStatefulSessionBean);
  scc.method({.name = "handleEvent", .cpu = sim::us(300)});

  // Entity beans (read-write masters; data access goes through the
  // CallContext entity helpers, these definitions anchor placement).
  for (const char* e : {"CategoryEJB", "ProductEJB", "ItemEJB", "InventoryEJB", "AccountEJB",
                        "OrderEJB", "LineItemEJB"}) {
    app_.define(e, ComponentKind::kEntityBeanRW).local_interface_only();
  }

  // Web helper bean (always co-located with the servlets).
  app_.define("CatalogWebImpl", ComponentKind::kJavaBean).local_interface_only();

  // ----- web tier -------------------------------------------------------------
  auto& web = app_.define("PetStoreWeb", ComponentKind::kServlet);

  web.method({.name = "main", .cpu = cal_.page_cpu, .latency = cal_.main_latency,
              .result_bytes = 7 * 1024});

  web.method({.name = "category",
              .cpu = cal_.page_cpu,
              .latency = cal_.category_latency,
              .result_bytes = 6 * 1024,
              .body = [](CallContext& ctx) -> Task<void> {
                if (ctx.has(Feature::kRemoteFacade)) {
                  auto res = co_await ctx.call("Catalog", "getProducts", ctx.arg(0));
                  ctx.result = std::move(res.rows);
                } else {
                  co_await n_plus_1_fetch(
                      ctx, Query::finder("product", "category_id", ctx.arg(0)), "product");
                }
              }});

  web.method({.name = "product",
              .cpu = cal_.page_cpu,
              .latency = cal_.product_latency,
              .result_bytes = 6 * 1024,
              .body = [](CallContext& ctx) -> Task<void> {
                if (ctx.has(Feature::kRemoteFacade)) {
                  auto res = co_await ctx.call("Catalog", "getItems", ctx.arg(0));
                  ctx.result = std::move(res.rows);
                } else {
                  co_await n_plus_1_fetch(
                      ctx, Query::finder("item", "product_id", ctx.arg(0)), "item");
                }
              }});

  web.method({.name = "item",
              .cpu = cal_.page_cpu,
              .latency = cal_.item_latency,
              .result_bytes = 5 * 1024,
              .body = [](CallContext& ctx) -> Task<void> {
                if (ctx.has(Feature::kRemoteFacade)) {
                  auto res = co_await ctx.call("Catalog", "getItem", ctx.arg(0));
                  ctx.result = std::move(res.rows);
                } else {
                  auto item = co_await ctx.direct_query(Query::pk_lookup("item", ctx.arg_int(0)));
                  auto inv =
                      co_await ctx.direct_query(Query::pk_lookup("inventory", ctx.arg_int(0)));
                  ctx.result = std::move(item.rows);
                  for (auto& r : inv.rows) ctx.result.push_back(std::move(r));
                }
              }});

  web.method({.name = "search",
              .cpu = cal_.page_cpu,
              .latency = cal_.search_latency,
              .result_bytes = 6 * 1024,
              .body = [](CallContext& ctx) -> Task<void> {
                if (ctx.has(Feature::kRemoteFacade)) {
                  auto res = co_await ctx.call("Catalog", "search", ctx.arg(0));
                  ctx.result = std::move(res.rows);
                } else {
                  auto res = co_await ctx.direct_query(
                      Query::keyword_search("product", "name", ctx.arg_text(0)));
                  ctx.result = std::move(res.rows);
                }
              }});

  web.method({.name = "signin", .cpu = cal_.page_cpu, .latency = cal_.signin_latency,
              .result_bytes = 3 * 1024});

  web.method({.name = "verifysignin",
              .cpu = cal_.page_cpu,
              .latency = cal_.verify_latency,
              .result_bytes = 4 * 1024,
              .body = [](CallContext& ctx) -> Task<void> {
                // §4.2: "the only exception is the Verify Signin page, which
                // makes two RMI calls": create the Customer session + fetch
                // the profile.
                (void)co_await ctx.call("SignOn", "authenticate", ctx.arg(0));
                (void)co_await ctx.call("Customer", "getProfile", ctx.arg(0));
              }});

  web.method({.name = "cart",
              .cpu = cal_.page_cpu,
              .latency = cal_.cart_latency,
              .result_bytes = 5 * 1024,
              .body = [](CallContext& ctx) -> Task<void> {
                (void)co_await ctx.call("ShoppingCart", "addItem", ctx.arg(0));
                // Render the updated cart: item details + availability.
                if (ctx.has(Feature::kRemoteFacade)) {
                  auto res = co_await ctx.call("Catalog", "getItem", ctx.arg(0));
                  ctx.result = std::move(res.rows);
                } else {
                  auto item = co_await ctx.direct_query(Query::pk_lookup("item", ctx.arg_int(0)));
                  auto inv =
                      co_await ctx.direct_query(Query::pk_lookup("inventory", ctx.arg_int(0)));
                  ctx.result = std::move(item.rows);
                  for (auto& r : inv.rows) ctx.result.push_back(std::move(r));
                }
              }});

  web.method({.name = "checkout",
              .cpu = cal_.page_cpu,
              .latency = cal_.checkout_latency,
              .result_bytes = 4 * 1024,
              .body = [](CallContext& ctx) -> Task<void> {
                (void)co_await ctx.call("ShoppingCart", "getItems", {});
              }});

  web.method({.name = "placeorder",
              .cpu = cal_.page_cpu,
              .latency = cal_.placeorder_latency,
              .result_bytes = 4 * 1024,
              .body = [](CallContext& ctx) -> Task<void> {
                (void)co_await ctx.call("ShoppingClientController", "handleEvent", {});
              }});

  web.method({.name = "billing", .cpu = cal_.page_cpu, .latency = cal_.billing_latency,
              .result_bytes = 4 * 1024});

  web.method({.name = "commitorder",
              .cpu = cal_.page_cpu,
              .latency = cal_.commit_latency,
              .result_bytes = 4 * 1024,
              .body = [](CallContext& ctx) -> Task<void> {
                (void)co_await ctx.call("OrderProcessor", "commitOrder", ctx.arg(0), ctx.arg(1));
              }});

  web.method({.name = "signout", .cpu = cal_.page_cpu, .latency = cal_.signout_latency,
              .result_bytes = 3 * 1024});
}

void PetStoreApp::install_database(db::Database& db) const {
  using db::Column;
  using db::ColumnType;

  auto& category = db.create_table(
      "category", {{"id", ColumnType::kInt}, {"name", ColumnType::kText}});
  auto& product = db.create_table(
      "product", {{"id", ColumnType::kInt},
                  {"category_id", ColumnType::kInt},
                  {"name", ColumnType::kText},
                  {"descn", ColumnType::kText}});
  auto& item = db.create_table("item", {{"id", ColumnType::kInt},
                                        {"product_id", ColumnType::kInt},
                                        {"attr", ColumnType::kText},
                                        {"listprice", ColumnType::kReal}});
  auto& inventory =
      db.create_table("inventory", {{"id", ColumnType::kInt}, {"qty", ColumnType::kInt}});
  auto& account = db.create_table("account", {{"id", ColumnType::kInt},
                                              {"username", ColumnType::kText},
                                              {"password", ColumnType::kText},
                                              {"email", ColumnType::kText}});
  db.create_table("orders", {{"id", ColumnType::kInt},
                             {"account_id", ColumnType::kInt},
                             {"status", ColumnType::kText},
                             {"total", ColumnType::kReal}});
  db.create_table("lineitem", {{"id", ColumnType::kInt},
                               {"order_id", ColumnType::kInt},
                               {"item_id", ColumnType::kInt},
                               {"qty", ColumnType::kInt},
                               {"unitprice", ColumnType::kReal}});

  product.create_index("category_id");
  item.create_index("product_id");

  const std::array<const char*, 5> kSpecies = {"Angelfish", "Bulldog", "Persian cat",
                                               "Parrot bird", "Rattlesnake"};
  for (std::int64_t c = 1; c <= shape_.categories; ++c) {
    category.insert(Row{c, std::string{"Category-"} + std::to_string(c)});
    for (int p = 0; p < shape_.products_per_category; ++p) {
      const std::int64_t pid = shape_.product_id(c, p);
      std::string name = std::string{kSpecies[static_cast<std::size_t>(p) % kSpecies.size()]} +
                         " #" + std::to_string(pid);
      product.insert(Row{pid, c, std::move(name), std::string{"A fine pet"}});
      for (int i = 0; i < shape_.items_per_product; ++i) {
        const std::int64_t iid = shape_.item_id(pid, i);
        item.insert(Row{iid, pid, std::string{"EST-"} + std::to_string(iid),
                        9.99 + static_cast<double>(i)});
        inventory.insert(Row{iid, std::int64_t{10000}});
      }
    }
  }
  for (std::int64_t a = 1; a <= shape_.accounts; ++a) {
    account.insert(Row{a, std::string{"user"} + std::to_string(a), std::string{"pw"},
                       std::string{"u@example.com"}});
  }
}

void PetStoreApp::bind_entities(comp::Runtime& rt) const {
  rt.bind_entity("Category", "category");
  rt.bind_entity("Product", "product");
  rt.bind_entity("Item", "item");
  rt.bind_entity("Inventory", "inventory");
  rt.bind_entity("Account", "account");
  rt.bind_entity("Order", "orders");
  rt.bind_entity("LineItem", "lineitem");
}

// --- session scripts -----------------------------------------------------------

namespace {

/// Table 2: 20 requests, Main 5% / Category 15% / Product 30% / Item 45% /
/// Search 5%, logically ordered (an Item always belongs to the previously
/// requested Product, a Product to the previous Category).
class BrowserScript final : public workload::SessionScript {
 public:
  BrowserScript(Shape shape, sim::RngStream rng) : shape_(shape), rng_(std::move(rng)) {}

  std::optional<workload::PageRequest> next() override {
    if (issued_ >= PetStoreApp::kBrowserSessionLength) return std::nullopt;
    ++issued_;
    if (issued_ == 1) return page("Main", "main", {});

    static constexpr std::array<double, 5> kWeights = {5, 15, 30, 45, 5};
    switch (rng_.weighted_index(kWeights)) {
      case 0:
        return page("Main", "main", {});
      case 1: {
        category_ = rng_.uniform_int(1, shape_.categories);
        product_ = 0;
        return page("Category", "category", {Value{category_}});
      }
      case 2: {
        if (category_ == 0) category_ = rng_.uniform_int(1, shape_.categories);
        product_ = shape_.product_id(
            category_, static_cast<int>(rng_.uniform_int(0, shape_.products_per_category - 1)));
        return page("Product", "product", {Value{product_}});
      }
      case 3: {
        if (product_ == 0) {
          if (category_ == 0) category_ = rng_.uniform_int(1, shape_.categories);
          product_ = shape_.product_id(
              category_, static_cast<int>(rng_.uniform_int(0, shape_.products_per_category - 1)));
        }
        std::int64_t item = shape_.item_id(
            product_, static_cast<int>(rng_.uniform_int(0, shape_.items_per_product - 1)));
        return page("Item", "item", {Value{item}});
      }
      default:
        return page("Search", "search",
                    {Value{std::string{rng_.pick(std::vector<std::string>{
                        "fish", "dog", "cat", "bird", "snake"})}}});
    }
  }

  const char* pattern() const override { return "Browser"; }

 private:
  workload::PageRequest page(std::string name, std::string method, std::vector<Value> args) {
    workload::PageRequest req;
    req.page = std::move(name);
    req.pattern = "Browser";
    req.component = "PetStoreWeb";
    req.method = std::move(method);
    req.args = std::move(args);
    return req;
  }

  Shape shape_;
  sim::RngStream rng_;
  int issued_ = 0;
  std::int64_t category_ = 0;
  std::int64_t product_ = 0;
};

/// Table 3: the fixed buyer scenario — sign in, buy one item, sign out.
class BuyerScript final : public workload::SessionScript {
 public:
  BuyerScript(Shape shape, sim::RngStream rng) : shape_(shape), rng_(std::move(rng)) {
    account_ = rng_.uniform_int(1, shape_.accounts);
    std::int64_t cat = rng_.uniform_int(1, shape_.categories);
    std::int64_t prod = shape_.product_id(
        cat, static_cast<int>(rng_.uniform_int(0, shape_.products_per_category - 1)));
    item_ = shape_.item_id(prod,
                           static_cast<int>(rng_.uniform_int(0, shape_.items_per_product - 1)));
  }

  std::optional<workload::PageRequest> next() override {
    switch (step_++) {
      case 0: return page("Main", "main", {});
      case 1: return page("Signin", "signin", {});
      case 2: return page("Verify Signin", "verifysignin", {Value{account_}});
      case 3: return page("Shopping Cart", "cart", {Value{item_}});
      case 4: return page("Checkout", "checkout", {});
      case 5: return page("Place Order", "placeorder", {});
      case 6: return page("Billing", "billing", {});
      case 7: return page("Commit Order", "commitorder", {Value{account_}, Value{item_}});
      case 8: return page("Signout", "signout", {});
      default: return std::nullopt;
    }
  }

  const char* pattern() const override { return "Buyer"; }

 private:
  workload::PageRequest page(std::string name, std::string method, std::vector<Value> args) {
    workload::PageRequest req;
    req.page = std::move(name);
    req.pattern = "Buyer";
    req.component = "PetStoreWeb";
    req.method = std::move(method);
    req.args = std::move(args);
    return req;
  }

  Shape shape_;
  sim::RngStream rng_;
  int step_ = 0;
  std::int64_t account_ = 0;
  std::int64_t item_ = 0;
};

// --- FSM script models (million-session load engine, DESIGN §16) ---------------

/// Rank -> item id in fixed catalog order: rank 0 is item 1001001 (category
/// 1, first product, first item). Gives the Zipf sampler a stable popularity
/// order whose head maps to one primary key — and therefore one shard.
std::int64_t item_for_rank(const Shape& shape, std::size_t rank) {
  const int per_category = shape.products_per_category * shape.items_per_product;
  const auto flat = static_cast<std::int64_t>(rank);
  const std::int64_t category = flat / per_category + 1;
  const std::int64_t within = flat % per_category;
  const std::int64_t product =
      shape.product_id(category, static_cast<int>(within / shape.items_per_product));
  return shape.item_id(product, static_cast<int>(within % shape.items_per_product));
}

workload::PageRequest fsm_page(const char* pattern, std::string name, std::string method,
                               std::vector<Value> args) {
  workload::PageRequest req;
  req.page = std::move(name);
  req.pattern = pattern;
  req.component = "PetStoreWeb";
  req.method = std::move(method);
  req.args = std::move(args);
  return req;
}

/// Table 2 as an FSM: scratch.w0 carries the current category, scratch.w1
/// the current product — the same logically ordered chain as BrowserScript,
/// replayed from 16 bytes of per-session state.
class FsmBrowserModel final : public workload::FsmScriptModel {
 public:
  FsmBrowserModel(Shape shape, double zipf_s) : shape_(shape) {
    if (zipf_s > 0.0) {
      zipf_.emplace(static_cast<std::size_t>(shape.total_items()), zipf_s);
    }
  }

  std::optional<workload::PageRequest> next(std::uint32_t step, workload::FsmScratch& scratch,
                                            workload::SmallRng& rng) const override {
    if (step >= static_cast<std::uint32_t>(PetStoreApp::kBrowserSessionLength)) {
      return std::nullopt;
    }
    if (step == 0) return fsm_page("Browser", "Main", "main", {});

    auto category = static_cast<std::int64_t>(scratch.w0);
    auto product = static_cast<std::int64_t>(scratch.w1);
    static constexpr std::array<double, 5> kWeights = {5, 15, 30, 45, 5};
    std::optional<workload::PageRequest> req;
    switch (rng.weighted_index(kWeights)) {
      case 0:
        req = fsm_page("Browser", "Main", "main", {});
        break;
      case 1:
        category = rng.uniform_int(1, shape_.categories);
        product = 0;
        req = fsm_page("Browser", "Category", "category", {Value{category}});
        break;
      case 2:
        if (category == 0) category = rng.uniform_int(1, shape_.categories);
        product = shape_.product_id(
            category, static_cast<int>(rng.uniform_int(0, shape_.products_per_category - 1)));
        req = fsm_page("Browser", "Product", "product", {Value{product}});
        break;
      case 3: {
        std::int64_t item = 0;
        if (zipf_) {
          // Popularity-skewed mode: items are drawn by global Zipf rank
          // instead of the uniform category/product chain, concentrating
          // views (and the buyers' writes) on the head of the catalog.
          item = item_for_rank(shape_, zipf_->sample(rng));
        } else {
          if (product == 0) {
            if (category == 0) category = rng.uniform_int(1, shape_.categories);
            product = shape_.product_id(
                category,
                static_cast<int>(rng.uniform_int(0, shape_.products_per_category - 1)));
          }
          item = shape_.item_id(
              product, static_cast<int>(rng.uniform_int(0, shape_.items_per_product - 1)));
        }
        req = fsm_page("Browser", "Item", "item", {Value{item}});
        break;
      }
      default:
        req = fsm_page(
            "Browser", "Search", "search",
            {Value{std::string{kKeywords[static_cast<std::size_t>(rng.uniform_int(0, 4))]}}});
        break;
    }
    scratch.w0 = static_cast<std::uint64_t>(category);
    scratch.w1 = static_cast<std::uint64_t>(product);
    return req;
  }

  const char* pattern() const override { return "Browser"; }

 private:
  Shape shape_;
  std::optional<workload::ZipfSampler> zipf_;
};

/// Table 3 as an FSM: the account lands in scratch.w0 and the item in
/// scratch.w1 at step 0 (BuyerScript draws them at construction).
class FsmBuyerModel final : public workload::FsmScriptModel {
 public:
  FsmBuyerModel(Shape shape, double zipf_s) : shape_(shape) {
    if (zipf_s > 0.0) {
      zipf_.emplace(static_cast<std::size_t>(shape.total_items()), zipf_s);
    }
  }

  std::optional<workload::PageRequest> next(std::uint32_t step, workload::FsmScratch& scratch,
                                            workload::SmallRng& rng) const override {
    if (step == 0) {
      scratch.w0 = static_cast<std::uint64_t>(rng.uniform_int(1, shape_.accounts));
      std::int64_t item = 0;
      if (zipf_) {
        item = item_for_rank(shape_, zipf_->sample(rng));
      } else {
        const std::int64_t cat = rng.uniform_int(1, shape_.categories);
        const std::int64_t prod = shape_.product_id(
            cat, static_cast<int>(rng.uniform_int(0, shape_.products_per_category - 1)));
        item = shape_.item_id(
            prod, static_cast<int>(rng.uniform_int(0, shape_.items_per_product - 1)));
      }
      scratch.w1 = static_cast<std::uint64_t>(item);
    }
    const auto account = static_cast<std::int64_t>(scratch.w0);
    const auto item = static_cast<std::int64_t>(scratch.w1);
    switch (step) {
      case 0: return fsm_page("Buyer", "Main", "main", {});
      case 1: return fsm_page("Buyer", "Signin", "signin", {});
      case 2: return fsm_page("Buyer", "Verify Signin", "verifysignin", {Value{account}});
      case 3: return fsm_page("Buyer", "Shopping Cart", "cart", {Value{item}});
      case 4: return fsm_page("Buyer", "Checkout", "checkout", {});
      case 5: return fsm_page("Buyer", "Place Order", "placeorder", {});
      case 6: return fsm_page("Buyer", "Billing", "billing", {});
      case 7:
        return fsm_page("Buyer", "Commit Order", "commitorder", {Value{account}, Value{item}});
      case 8: return fsm_page("Buyer", "Signout", "signout", {});
      default: return std::nullopt;
    }
  }

  const char* pattern() const override { return "Buyer"; }

 private:
  Shape shape_;
  std::optional<workload::ZipfSampler> zipf_;
};

}  // namespace

workload::SessionFactory PetStoreApp::browser_factory(sim::RngStream rng) const {
  auto master = std::make_shared<sim::RngStream>(std::move(rng));
  auto counter = std::make_shared<int>(0);
  Shape shape = shape_;
  return [master, counter, shape]() -> std::unique_ptr<workload::SessionScript> {
    return std::make_unique<BrowserScript>(shape,
                                           master->fork("s" + std::to_string((*counter)++)));
  };
}

workload::SessionFactory PetStoreApp::buyer_factory(sim::RngStream rng) const {
  auto master = std::make_shared<sim::RngStream>(std::move(rng));
  auto counter = std::make_shared<int>(0);
  Shape shape = shape_;
  return [master, counter, shape]() -> std::unique_ptr<workload::SessionScript> {
    return std::make_unique<BuyerScript>(shape,
                                         master->fork("s" + std::to_string((*counter)++)));
  };
}

std::shared_ptr<const workload::FsmScriptModel> PetStoreApp::fsm_browser_model(
    double zipf_s) const {
  return std::make_shared<FsmBrowserModel>(shape_, zipf_s);
}

std::shared_ptr<const workload::FsmScriptModel> PetStoreApp::fsm_buyer_model(
    double zipf_s) const {
  return std::make_shared<FsmBuyerModel>(shape_, zipf_s);
}

AppDriver PetStoreApp::driver() const {
  AppDriver d;
  d.name = "Pet Store";
  d.app = &app_;
  d.meta = &meta_;
  d.install_database = [this](db::Database& db) { install_database(db); };
  d.bind_entities = [this](comp::Runtime& rt) { bind_entities(rt); };
  d.browser_factory = [this](sim::RngStream rng) { return browser_factory(std::move(rng)); };
  d.writer_factory = [this](sim::RngStream rng) { return buyer_factory(std::move(rng)); };
  d.fsm_browser_model = [this](double zipf_s) { return fsm_browser_model(zipf_s); };
  d.fsm_writer_model = [this](double zipf_s) { return fsm_buyer_model(zipf_s); };
  d.table_pages = table_pages();
  d.writer_pattern = "Buyer";
  d.db_colocated = false;  // Oracle on its own workstation, same LAN (§3.1)
  return d;
}

std::vector<std::pair<std::string, std::string>> PetStoreApp::table_pages() {
  return {{"Browser", "Main"},        {"Browser", "Category"},
          {"Browser", "Product"},     {"Browser", "Item"},
          {"Browser", "Search"},      {"Buyer", "Main"},
          {"Buyer", "Signin"},        {"Buyer", "Verify Signin"},
          {"Buyer", "Shopping Cart"}, {"Buyer", "Checkout"},
          {"Buyer", "Place Order"},   {"Buyer", "Billing"},
          {"Buyer", "Commit Order"},  {"Buyer", "Signout"}};
}

}  // namespace mutsvc::apps::petstore

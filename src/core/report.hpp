#pragma once

#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "apps/common/driver.hpp"
#include "net/topology.hpp"
#include "core/design_rules.hpp"
#include "stats/collector.hpp"
#include "stats/metrics.hpp"
#include "stats/table.hpp"

namespace mutsvc::core {

/// One configuration rung's measured results.
struct ConfigResult {
  ConfigLevel level;
  const stats::ResponseTimeCollector* collector = nullptr;
};

/// Prints the paper's Table 6/7 layout: one Local and one Remote row per
/// configuration, one column per page.
inline void print_paper_table(std::ostream& os, const apps::AppDriver& driver,
                              const std::vector<ConfigResult>& results) {
  std::vector<std::string> header{"Configuration", "Cl."};
  for (const auto& [pattern, page] : driver.table_pages) header.push_back(page);
  stats::TextTable table{header};

  for (const auto& result : results) {
    for (stats::ClientGroup group : {stats::ClientGroup::kLocal, stats::ClientGroup::kRemote}) {
      std::vector<std::string> row;
      row.push_back(group == stats::ClientGroup::kLocal ? to_string(result.level) : "");
      row.push_back(group == stats::ClientGroup::kLocal ? "L" : "R");
      for (const auto& [pattern, page] : driver.table_pages) {
        row.push_back(stats::TextTable::cell_ms(
            result.collector->page_mean_ms(pattern, page, group)));
      }
      table.add_row(std::move(row));
    }
  }
  table.print(os);
}

/// Prints the Figure 7/8 series: session-average response time per
/// (client group × usage pattern) for every configuration.
inline void print_session_averages(std::ostream& os, const apps::AppDriver& driver,
                                   const std::vector<ConfigResult>& results) {
  const std::string browser = driver.browser_pattern;
  const std::string writer = driver.writer_pattern;
  stats::TextTable table{{"Configuration", "Local " + browser, "Local " + writer,
                          "Remote " + browser, "Remote " + writer}};
  for (const auto& result : results) {
    table.add_row({to_string(result.level),
                   stats::TextTable::cell_ms(
                       result.collector->pattern_mean_ms(browser, stats::ClientGroup::kLocal)),
                   stats::TextTable::cell_ms(
                       result.collector->pattern_mean_ms(writer, stats::ClientGroup::kLocal)),
                   stats::TextTable::cell_ms(
                       result.collector->pattern_mean_ms(browser, stats::ClientGroup::kRemote)),
                   stats::TextTable::cell_ms(
                       result.collector->pattern_mean_ms(writer, stats::ClientGroup::kRemote))});
  }
  table.print(os);
}

/// Prints one node's MetricsRegistry as report sections: counters + gauges,
/// then each latency histogram's bucket table, then each TimeSeries as
/// per-window means. Iteration is std::map order, so the output is
/// deterministic; an empty registry prints nothing at all (reports stay
/// byte-identical when metrics are off).
inline void print_metrics(std::ostream& os, const std::string& title,
                          const stats::MetricsRegistry& reg) {
  if (reg.empty()) return;
  os << "== " << title << " ==\n";
  if (!reg.counters().empty() || !reg.gauges().empty()) {
    stats::TextTable t{{"Metric", "Value"}};
    for (const auto& [name, v] : reg.counters()) t.add_row({name, std::to_string(v)});
    for (const auto& [name, v] : reg.gauges()) t.add_row({name, stats::TextTable::cell_fixed(v, 3)});
    t.print(os);
  }
  for (const auto& [name, h] : reg.histograms()) {
    if (h.count() == 0) continue;
    os << name << ": count=" << h.count()
       << " sum_ms=" << stats::TextTable::cell_fixed(h.sum(), 1) << "\n";
    stats::TextTable t{{"le (ms)", "count"}};
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      t.add_row({stats::TextTable::cell_ms(h.bounds()[i]), std::to_string(h.bucket(i))});
    }
    t.add_row({"+inf", std::to_string(h.bucket(h.bounds().size()))});
    t.print(os);
  }
  for (const auto& [name, ts] : reg.all_series()) {
    os << name << " (window=" << stats::TextTable::cell_fixed(ts.window_width().as_seconds(), 0)
       << "s, mean/window):";
    for (double m : ts.window_means()) {
      os << " " << (m < 0.0 ? std::string{"-"} : stats::TextTable::cell_fixed(m, 2));
    }
    os << "\n";
  }
}

/// Prints every node's registry (skipping empty ones).
inline void print_all_metrics(std::ostream& os,
                              const std::map<net::NodeId, stats::MetricsRegistry>& by_node,
                              const net::Topology& topo) {
  for (const auto& [node, reg] : by_node) {
    print_metrics(os, "Metrics: " + topo.node(node).name, reg);
  }
}

}  // namespace mutsvc::core

#pragma once

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "apps/common/driver.hpp"
#include "core/design_rules.hpp"
#include "stats/collector.hpp"
#include "stats/table.hpp"

namespace mutsvc::core {

/// One configuration rung's measured results.
struct ConfigResult {
  ConfigLevel level;
  const stats::ResponseTimeCollector* collector = nullptr;
};

/// Prints the paper's Table 6/7 layout: one Local and one Remote row per
/// configuration, one column per page.
inline void print_paper_table(std::ostream& os, const apps::AppDriver& driver,
                              const std::vector<ConfigResult>& results) {
  std::vector<std::string> header{"Configuration", "Cl."};
  for (const auto& [pattern, page] : driver.table_pages) header.push_back(page);
  stats::TextTable table{header};

  for (const auto& result : results) {
    for (stats::ClientGroup group : {stats::ClientGroup::kLocal, stats::ClientGroup::kRemote}) {
      std::vector<std::string> row;
      row.push_back(group == stats::ClientGroup::kLocal ? to_string(result.level) : "");
      row.push_back(group == stats::ClientGroup::kLocal ? "L" : "R");
      for (const auto& [pattern, page] : driver.table_pages) {
        row.push_back(stats::TextTable::cell_ms(
            result.collector->page_mean_ms(pattern, page, group)));
      }
      table.add_row(std::move(row));
    }
  }
  table.print(os);
}

/// Prints the Figure 7/8 series: session-average response time per
/// (client group × usage pattern) for every configuration.
inline void print_session_averages(std::ostream& os, const apps::AppDriver& driver,
                                   const std::vector<ConfigResult>& results) {
  const std::string browser = driver.browser_pattern;
  const std::string writer = driver.writer_pattern;
  stats::TextTable table{{"Configuration", "Local " + browser, "Local " + writer,
                          "Remote " + browser, "Remote " + writer}};
  for (const auto& result : results) {
    table.add_row({to_string(result.level),
                   stats::TextTable::cell_ms(
                       result.collector->pattern_mean_ms(browser, stats::ClientGroup::kLocal)),
                   stats::TextTable::cell_ms(
                       result.collector->pattern_mean_ms(writer, stats::ClientGroup::kLocal)),
                   stats::TextTable::cell_ms(
                       result.collector->pattern_mean_ms(browser, stats::ClientGroup::kRemote)),
                   stats::TextTable::cell_ms(
                       result.collector->pattern_mean_ms(writer, stats::ClientGroup::kRemote))});
  }
  table.print(os);
}

}  // namespace mutsvc::core

#pragma once

#include <string>
#include <vector>

#include "core/placement/graph.hpp"

namespace mutsvc::core::placement {

/// The optimization problem: which replicable vertices should be deployed
/// at the edge servers (in addition to the main server, which always holds
/// everything), to minimize expected wide-area delay.
struct PlacementProblem {
  InteractionGraph graph;
  double wan_rtt_ms = 200.0;             // one wide-area round trip
  int edge_count = 2;                    // Figure 2
  /// Writers' propagation cost per update to a replicated state vertex:
  /// blocking push pays edge_count sequential WAN round trips (§4.3);
  /// asynchronous updates pay only the local publish cost (§4.5).
  bool async_updates = true;
  double async_publish_ms = 5.0;
  /// Small per-replica maintenance weight (memory, subscription upkeep) so
  /// useless replication is never free.
  double replica_overhead_ms_per_s = 0.05;

  /// Scale-out data tier (matches GraphBuildOptions.db_shards): statements
  /// fan out across this many main-site shard nodes.
  int db_shards = 1;
  /// Mean single-shard database service time per statement. 0 (the
  /// default) leaves the data tier out of the cost entirely — the paper's
  /// WAN-only model — so existing problems cost exactly what they did.
  double db_service_ms = 0.0;
  /// Coordination cost per extra shard leg per statement (scatter-gather
  /// messaging on the main site's LAN); the term that stops "more shards"
  /// from being free.
  double db_fanout_overhead_ms = 0.1;
};

/// Decision vector: replicated[i] == true deploys vertex i at every edge.
/// Entries for pinned vertices are ignored (treated per their pin).
using Assignment = std::vector<bool>;

/// Evaluates the expected wide-area delay rate (ms of WAN-induced latency
/// incurred per second of workload) of an assignment.
///
/// An edge (u -> v) crosses the WAN for the share of u's executions that
/// happen at edge servers when v is only available at the main server.
/// Replicated state additionally pays update-propagation cost per write.
class CostModel {
 public:
  explicit CostModel(const PlacementProblem& problem) : p_(problem) {}

  [[nodiscard]] const PlacementProblem& problem() const { return p_; }

  /// Fraction of vertex executions happening at edge servers.
  [[nodiscard]] double edge_execution_fraction(std::size_t vertex,
                                               const Assignment& a) const {
    const Vertex& v = p_.graph.vertex(vertex);
    switch (v.kind) {
      case VertexKind::kClientRemote: return 1.0;
      case VertexKind::kClientLocal: return 0.0;
      case VertexKind::kDatabase: return 0.0;
      case VertexKind::kSharedEntity:
      case VertexKind::kQueryResults:
        // Read-only replicas serve reads from their own state; they never
        // re-issue the master's outgoing calls (ejbLoad/SQL) at the edge —
        // refresh traffic is captured by the update-propagation cost.
        return 0.0;
      default:
        // A replicated component executes at the edge for requests entering
        // there; a main-only component always executes at the main server.
        return replicated(vertex, a) ? remote_share_ : 0.0;
    }
  }

  [[nodiscard]] bool replicated(std::size_t vertex, const Assignment& a) const {
    const Vertex& v = p_.graph.vertex(vertex);
    if (v.kind == VertexKind::kClientRemote) return true;  // lives at edges
    if (is_pinned(v.kind)) return false;
    return vertex < a.size() && a[vertex];
  }

  [[nodiscard]] double cost(const Assignment& a) const {
    double total = 0.0;
    for (const Edge& e : p_.graph.edges()) {
      const double f_edge = edge_execution_fraction(e.from, a);
      if (f_edge <= 0.0) continue;
      const bool callee_at_edges = replicated(e.to, a);
      const Vertex& callee = p_.graph.vertex(e.to);
      // Reads are served by an edge replica when one exists; writes to
      // shared state always route to the primary (replicas are read-only).
      double crossing_rate = callee_at_edges ? 0.0 : e.rate - e.write_rate;
      if (carries_shared_state(callee.kind) || callee.kind == VertexKind::kDatabase) {
        crossing_rate += e.write_rate;
      } else if (!callee_at_edges) {
        crossing_rate += e.write_rate;
      }
      total += crossing_rate * f_edge * e.round_trips * p_.wan_rtt_ms;
    }
    for (std::size_t i = 0; i < p_.graph.vertex_count(); ++i) {
      const Vertex& v = p_.graph.vertex(i);
      if (!replicated(i, a) || is_pinned(v.kind)) continue;
      if (carries_shared_state(v.kind) && v.write_rate > 0.0) {
        const double per_update = p_.async_updates
                                      ? p_.async_publish_ms
                                      : static_cast<double>(p_.edge_count) * p_.wan_rtt_ms;
        total += v.write_rate * per_update;
      }
      total += p_.replica_overhead_ms_per_s * static_cast<double>(p_.edge_count);
    }
    total += data_tier_cost();
    return total;
  }

  /// Data-tier service cost: every statement is served by its slice of the
  /// shard fleet in parallel (~1/S the single-shard service time) but pays
  /// a scatter-gather overhead per extra leg. Zero unless db_service_ms is
  /// set, so the paper's WAN-only problems are unchanged.
  [[nodiscard]] double data_tier_cost() const {
    if (p_.db_service_ms <= 0.0) return 0.0;
    const double shards = static_cast<double>(p_.db_shards < 1 ? 1 : p_.db_shards);
    double db_rate = 0.0;
    for (const Edge& e : p_.graph.edges()) {
      if (p_.graph.vertex(e.to).kind == VertexKind::kDatabase) db_rate += e.rate;
    }
    return db_rate * (p_.db_service_ms / shards + p_.db_fanout_overhead_ms * (shards - 1.0));
  }

  /// The cost of keeping everything centralized.
  [[nodiscard]] double centralized_cost() const {
    return cost(Assignment(p_.graph.vertex_count(), false));
  }

  /// Remote traffic share used for edge execution fractions.
  void set_remote_share(double f) { remote_share_ = f; }
  [[nodiscard]] double remote_share() const { return remote_share_; }

 private:
  const PlacementProblem& p_;
  double remote_share_ = 2.0 / 3.0;
};

/// Indices of replicable (free) vertices — the search space.
[[nodiscard]] inline std::vector<std::size_t> free_vertices(const PlacementProblem& p) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < p.graph.vertex_count(); ++i) {
    if (is_replicable(p.graph.vertex(i).kind)) out.push_back(i);
  }
  return out;
}

}  // namespace mutsvc::core::placement

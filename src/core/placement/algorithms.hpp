#pragma once

#include <cstdint>
#include <string>

#include "core/placement/model.hpp"
#include "sim/random.hpp"

namespace mutsvc::core::placement {

struct SolveResult {
  Assignment assignment;
  double cost = 0.0;
  std::uint64_t evaluations = 0;
  std::string algorithm;
};

/// Enumerates every subset of replicable vertices. Exact; throws when the
/// free-vertex count exceeds `max_free` (2^n blow-up).
[[nodiscard]] SolveResult solve_exhaustive(const PlacementProblem& problem,
                                           std::size_t max_free = 24);

/// Exact branch-and-bound: depth-first over replicate/don't decisions in
/// descending incident-weight order, pruned by an admissible per-edge
/// lower bound and a greedy incumbent. Same optimum as exhaustive with far
/// fewer evaluations; practical well beyond exhaustive's ~24-vertex limit.
[[nodiscard]] SolveResult solve_branch_and_bound(const PlacementProblem& problem);

/// Marginal-gain greedy: starting centralized, repeatedly replicate the
/// vertex with the largest cost reduction until none improves.
[[nodiscard]] SolveResult solve_greedy(const PlacementProblem& problem);

/// Single-flip hill climbing (Kernighan–Lin flavoured: both directions,
/// steepest descent) with random restarts.
[[nodiscard]] SolveResult solve_local_search(const PlacementProblem& problem,
                                             sim::RngStream rng, int restarts = 8);

struct AnnealingParams {
  /// <= 0 auto-scales to a fraction of the centralized cost, so acceptance
  /// probabilities are meaningful regardless of the workload's magnitude.
  double initial_temperature = 0.0;
  double cooling = 0.9995;
  int iterations = 30000;
};

/// Simulated annealing over single flips; seeded and deterministic.
[[nodiscard]] SolveResult solve_annealing(const PlacementProblem& problem, sim::RngStream rng,
                                          AnnealingParams params = {});

}  // namespace mutsvc::core::placement

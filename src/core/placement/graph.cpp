#include "core/placement/graph.hpp"

#include <sstream>

#include "component/kind.hpp"

namespace mutsvc::core::placement {

const char* to_string(VertexKind k) {
  switch (k) {
    case VertexKind::kClientLocal: return "client-local";
    case VertexKind::kClientRemote: return "client-remote";
    case VertexKind::kDatabase: return "database";
    case VertexKind::kWebComponent: return "web";
    case VertexKind::kSessionState: return "session-state";
    case VertexKind::kStatelessService: return "stateless";
    case VertexKind::kSharedEntity: return "shared-entity";
    case VertexKind::kQueryResults: return "query-results";
  }
  return "?";
}

std::size_t InteractionGraph::add_vertex(Vertex v) {
  if (index_.contains(v.name)) {
    throw std::invalid_argument("InteractionGraph: duplicate vertex " + v.name);
  }
  index_.emplace(v.name, vertices_.size());
  vertices_.push_back(std::move(v));
  return vertices_.size() - 1;
}

std::size_t InteractionGraph::index_of(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) throw std::invalid_argument("InteractionGraph: no vertex " + name);
  return it->second;
}

void InteractionGraph::add_edge(const std::string& from, const std::string& to, double rate,
                                double round_trips, double bytes, double write_rate) {
  const std::size_t f = index_of(from);
  const std::size_t t = index_of(to);
  for (Edge& e : edges_) {
    if (e.from == f && e.to == t) {
      // Accumulate rates; keep the weighted mean of round trips and bytes.
      const double total = e.rate + rate;
      if (total > 0.0) {
        e.round_trips = (e.round_trips * e.rate + round_trips * rate) / total;
        e.bytes = (e.bytes * e.rate + bytes * rate) / total;
      }
      e.rate = total;
      e.write_rate += write_rate;
      return;
    }
  }
  edges_.push_back(Edge{f, t, rate, write_rate, round_trips, bytes});
}

std::size_t InteractionGraph::free_vertex_count() const {
  std::size_t n = 0;
  for (const auto& v : vertices_) {
    if (is_replicable(v.kind)) ++n;
  }
  return n;
}

std::string InteractionGraph::describe() const {
  std::ostringstream os;
  os << "vertices (" << vertices_.size() << "):\n";
  for (const auto& v : vertices_) {
    os << "  " << v.name << " [" << to_string(v.kind) << "]";
    if (v.write_rate > 0.0) os << " writes/s=" << v.write_rate;
    os << "\n";
  }
  os << "edges (" << edges_.size() << "):\n";
  for (const auto& e : edges_) {
    os << "  " << vertices_[e.from].name << " -> " << vertices_[e.to].name
       << " rate/s=" << e.rate << " rtts=" << e.round_trips << "\n";
  }
  return os.str();
}

namespace {

VertexKind kind_for_component(const comp::Application& app, const std::string& name) {
  if (!app.has_component(name)) {
    // Names that are not components are entity-state or query classes.
    if (name.starts_with("query:")) return VertexKind::kQueryResults;
    return VertexKind::kSharedEntity;
  }
  switch (app.component(name).kind()) {
    case comp::ComponentKind::kServlet:
    case comp::ComponentKind::kJsp:
    case comp::ComponentKind::kJavaBean: return VertexKind::kWebComponent;
    case comp::ComponentKind::kStatefulSessionBean: return VertexKind::kSessionState;
    case comp::ComponentKind::kStatelessSessionBean:
    case comp::ComponentKind::kMessageDrivenBean: return VertexKind::kStatelessService;
    case comp::ComponentKind::kEntityBeanRW:
    case comp::ComponentKind::kEntityBeanRO: return VertexKind::kSharedEntity;
  }
  return VertexKind::kStatelessService;
}

}  // namespace

std::string database_vertex_name(std::size_t shard) {
  return shard == 0 ? "__database__" : "__database_s" + std::to_string(shard) + "__";
}

InteractionGraph build_graph(const comp::Runtime::InteractionProfile& profile,
                             const comp::Application& app, const GraphBuildOptions& opts) {
  if (opts.db_shards == 0) {
    throw std::invalid_argument("build_graph: db_shards must be > 0");
  }
  InteractionGraph g;
  g.add_vertex(Vertex{"__client_local__", VertexKind::kClientLocal, 0.0});
  g.add_vertex(Vertex{"__client_remote__", VertexKind::kClientRemote, 0.0});
  for (std::size_t s = 0; s < opts.db_shards; ++s) {
    g.add_vertex(Vertex{database_vertex_name(s), VertexKind::kDatabase, 0.0});
  }

  const double window_s = opts.window.as_seconds();
  auto ensure_vertex = [&](const std::string& name) {
    if (name == "__client__" || g.has_vertex(name)) return;
    g.add_vertex(Vertex{name, kind_for_component(app, name), 0.0});
  };

  for (const auto& [pair, stat] : profile) {
    ensure_vertex(pair.first);
    ensure_vertex(pair.second);
  }

  for (const auto& [pair, stat] : profile) {
    const auto& [from, to] = pair;
    const double rate = static_cast<double>(stat.calls) / window_s;
    const double bytes =
        stat.calls == 0 ? 512.0 : static_cast<double>(stat.bytes) / static_cast<double>(stat.calls);

    const double write_rate = static_cast<double>(stat.writes) / window_s;
    if (from == "__client__") {
      // Split entry traffic between the local and remote client groups.
      g.add_edge("__client_remote__", to, rate * opts.remote_traffic_fraction,
                 opts.http_round_trips, bytes, write_rate * opts.remote_traffic_fraction);
      g.add_edge("__client_local__", to, rate * (1.0 - opts.remote_traffic_fraction),
                 opts.http_round_trips, bytes, write_rate * (1.0 - opts.remote_traffic_fraction));
    } else if (to == "__database__" && opts.db_shards > 1) {
      // The hash router spreads pk traffic uniformly and fans scans out to
      // every shard: split this component's DB interaction evenly across
      // the per-shard vertices, conserving the total rate.
      const double share = 1.0 / static_cast<double>(opts.db_shards);
      for (std::size_t s = 0; s < opts.db_shards; ++s) {
        g.add_edge(from, database_vertex_name(s), rate * share, opts.rmi_round_trips, bytes,
                   write_rate * share);
      }
    } else {
      g.add_edge(from, to, rate, opts.rmi_round_trips, bytes, write_rate);
    }

    // Writes against shared state drive the replication cost.
    if (stat.writes > 0 && g.has_vertex(to)) {
      Vertex& v = g.vertex(g.index_of(to));
      if (carries_shared_state(v.kind)) {
        v.write_rate += static_cast<double>(stat.writes) / window_s;
      }
    }
  }
  return g;
}

}  // namespace mutsvc::core::placement

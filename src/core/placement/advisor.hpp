#pragma once

#include <string>
#include <vector>

#include "apps/common/metadata.hpp"
#include "component/deployment.hpp"
#include "core/placement/algorithms.hpp"
#include "core/testbed.hpp"

namespace mutsvc::core::placement {

/// The §5 vision made concrete: an automatically derived "extended
/// deployment descriptor" — which components to replicate to the edges,
/// which entities get read-only replicas, which query classes get edge
/// caches — plus the predicted benefit.
struct Advice {
  Assignment assignment;
  std::vector<std::string> replicate_components;  // web/session/stateless
  std::vector<std::string> read_only_entities;
  std::vector<std::string> cached_query_classes;
  double optimized_cost = 0.0;    // expected WAN-delay ms per second
  double centralized_cost = 0.0;
  std::string algorithm;

  [[nodiscard]] double improvement_factor() const {
    return optimized_cost > 0.0 ? centralized_cost / optimized_cost : 0.0;
  }

  [[nodiscard]] std::string describe(const InteractionGraph& graph) const;
};

enum class Algorithm { kExhaustive, kBranchAndBound, kGreedy, kLocalSearch, kAnnealing };

[[nodiscard]] const char* to_string(Algorithm a);

/// Solves the placement problem and interprets the assignment back into
/// component-level deployment advice.
[[nodiscard]] Advice advise(const PlacementProblem& problem, Algorithm algorithm,
                            std::uint64_t seed = 1);

/// Synthesizes a runnable DeploymentPlan from the advice: the centralized
/// baseline plus the advised replication, with the matching design-rule
/// features enabled.
[[nodiscard]] comp::DeploymentPlan to_deployment_plan(const Advice& advice,
                                                      const comp::Application& app,
                                                      const apps::AppMetadata& meta,
                                                      const TestbedNodes& nodes,
                                                      bool async_updates = true);

}  // namespace mutsvc::core::placement

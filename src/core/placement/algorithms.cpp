#include "core/placement/algorithms.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mutsvc::core::placement {

SolveResult solve_exhaustive(const PlacementProblem& problem, std::size_t max_free) {
  const CostModel model{problem};
  const std::vector<std::size_t> free = free_vertices(problem);
  if (free.size() > max_free) {
    throw std::invalid_argument("solve_exhaustive: too many free vertices (" +
                                std::to_string(free.size()) + ")");
  }

  SolveResult best;
  best.algorithm = "exhaustive";
  best.assignment.assign(problem.graph.vertex_count(), false);
  best.cost = model.cost(best.assignment);
  best.evaluations = 1;

  Assignment candidate(problem.graph.vertex_count(), false);
  const std::uint64_t combinations = 1ULL << free.size();
  for (std::uint64_t mask = 1; mask < combinations; ++mask) {
    for (std::size_t b = 0; b < free.size(); ++b) {
      candidate[free[b]] = (mask >> b) & 1ULL;
    }
    const double c = model.cost(candidate);
    ++best.evaluations;
    if (c < best.cost) {
      best.cost = c;
      best.assignment = candidate;
    }
  }
  return best;
}

namespace {

/// Branch-and-bound search state over the free vertices in `order`.
class BranchAndBound {
 public:
  BranchAndBound(const PlacementProblem& p, const CostModel& model,
                 std::vector<std::size_t> order)
      : p_(p), model_(model), order_(std::move(order)) {}

  void run(Assignment& incumbent, double& incumbent_cost, std::uint64_t& evaluations) {
    Assignment partial(p_.graph.vertex_count(), false);
    std::vector<char> decided(p_.graph.vertex_count(), 0);
    for (std::size_t i = 0; i < p_.graph.vertex_count(); ++i) {
      if (!is_replicable(p_.graph.vertex(i).kind)) decided[i] = 1;  // pinned
    }
    evaluations_ = 0;
    dfs(0, partial, decided, incumbent, incumbent_cost);
    evaluations += evaluations_;
  }

 private:
  void dfs(std::size_t depth, Assignment& partial, std::vector<char>& decided,
           Assignment& incumbent, double& incumbent_cost) {
    if (depth == order_.size()) {
      const double c = model_.cost(partial);
      ++evaluations_;
      if (c < incumbent_cost) {
        incumbent_cost = c;
        incumbent = partial;
      }
      return;
    }
    if (lower_bound(partial, decided) >= incumbent_cost) return;  // prune

    const std::size_t v = order_[depth];
    decided[v] = 1;
    // Explore "replicated" first: on read-heavy graphs it reaches good
    // incumbents early, tightening the bound.
    for (bool value : {true, false}) {
      partial[v] = value;
      dfs(depth + 1, partial, decided, incumbent, incumbent_cost);
    }
    partial[v] = false;
    decided[v] = 0;
  }

  /// Admissible bound: each edge contributes the minimum crossing cost
  /// over every completion consistent with the decided variables; update
  /// and overhead costs count only for vertices already decided
  /// replicated. Never exceeds the true cost of any completion.
  [[nodiscard]] double lower_bound(const Assignment& partial,
                                   const std::vector<char>& decided) const {
    ++evaluations_;
    double bound = 0.0;
    for (const Edge& e : p_.graph.edges()) {
      double best = std::numeric_limits<double>::infinity();
      for (bool u_rep : candidate_states(e.from, partial, decided)) {
        for (bool v_rep : candidate_states(e.to, partial, decided)) {
          best = std::min(best, edge_cost(e, u_rep, v_rep));
        }
      }
      bound += best;
    }
    for (std::size_t i = 0; i < p_.graph.vertex_count(); ++i) {
      if (decided[i] == 0 || !partial[i]) continue;
      const Vertex& v = p_.graph.vertex(i);
      if (!is_replicable(v.kind)) continue;
      if (carries_shared_state(v.kind) && v.write_rate > 0.0) {
        const double per_update = p_.async_updates
                                      ? p_.async_publish_ms
                                      : static_cast<double>(p_.edge_count) * p_.wan_rtt_ms;
        bound += v.write_rate * per_update;
      }
      bound += p_.replica_overhead_ms_per_s * static_cast<double>(p_.edge_count);
    }
    return bound;
  }

  [[nodiscard]] std::vector<bool> candidate_states(std::size_t vertex,
                                                   const Assignment& partial,
                                                   const std::vector<char>& decided) const {
    const Vertex& v = p_.graph.vertex(vertex);
    if (v.kind == VertexKind::kClientRemote) return {true};
    if (is_pinned(v.kind)) return {false};
    if (decided[vertex] != 0) return {partial[vertex]};
    return {false, true};
  }

  /// One edge's cost contribution for given endpoint replication states —
  /// kept in sync with CostModel::cost.
  [[nodiscard]] double edge_cost(const Edge& e, bool u_rep, bool v_rep) const {
    const Vertex& caller = p_.graph.vertex(e.from);
    const Vertex& callee = p_.graph.vertex(e.to);
    double f_edge = 0.0;
    switch (caller.kind) {
      case VertexKind::kClientRemote: f_edge = 1.0; break;
      case VertexKind::kClientLocal:
      case VertexKind::kDatabase:
      case VertexKind::kSharedEntity:
      case VertexKind::kQueryResults: f_edge = 0.0; break;
      default: f_edge = u_rep ? model_.remote_share() : 0.0; break;
    }
    if (f_edge <= 0.0) return 0.0;
    double crossing_rate = v_rep ? 0.0 : e.rate - e.write_rate;
    if (carries_shared_state(callee.kind) || callee.kind == VertexKind::kDatabase || !v_rep) {
      crossing_rate += e.write_rate;
    }
    return crossing_rate * f_edge * e.round_trips * p_.wan_rtt_ms;
  }

  const PlacementProblem& p_;
  const CostModel& model_;
  std::vector<std::size_t> order_;
  mutable std::uint64_t evaluations_ = 0;
};

}  // namespace

SolveResult solve_branch_and_bound(const PlacementProblem& problem) {
  const CostModel model{problem};
  std::vector<std::size_t> free = free_vertices(problem);

  // Decide high-traffic vertices first: they drive the bound.
  std::vector<double> weight(problem.graph.vertex_count(), 0.0);
  for (const Edge& e : problem.graph.edges()) {
    weight[e.from] += e.rate * e.round_trips;
    weight[e.to] += e.rate * e.round_trips;
  }
  std::sort(free.begin(), free.end(),
            [&](std::size_t a, std::size_t b) { return weight[a] > weight[b]; });

  // Greedy incumbent to start pruning immediately.
  SolveResult result = solve_greedy(problem);
  result.algorithm = "branch-and-bound";

  BranchAndBound bb{problem, model, std::move(free)};
  bb.run(result.assignment, result.cost, result.evaluations);
  return result;
}

SolveResult solve_greedy(const PlacementProblem& problem) {
  const CostModel model{problem};
  const std::vector<std::size_t> free = free_vertices(problem);

  SolveResult result;
  result.algorithm = "greedy";
  result.assignment.assign(problem.graph.vertex_count(), false);
  result.cost = model.cost(result.assignment);
  result.evaluations = 1;

  bool improved = true;
  while (improved) {
    improved = false;
    std::size_t best_vertex = 0;
    double best_cost = result.cost;
    for (std::size_t v : free) {
      if (result.assignment[v]) continue;
      result.assignment[v] = true;
      const double c = model.cost(result.assignment);
      ++result.evaluations;
      result.assignment[v] = false;
      if (c < best_cost) {
        best_cost = c;
        best_vertex = v;
        improved = true;
      }
    }
    if (improved) {
      result.assignment[best_vertex] = true;
      result.cost = best_cost;
    }
  }
  return result;
}

namespace {

/// Steepest-descent single-flip refinement from a starting assignment.
void hill_climb(const CostModel& model, const std::vector<std::size_t>& free,
                Assignment& a, double& cost, std::uint64_t& evaluations) {
  bool improved = true;
  while (improved) {
    improved = false;
    std::size_t best_vertex = 0;
    double best_cost = cost;
    for (std::size_t v : free) {
      a[v] = !a[v];
      const double c = model.cost(a);
      ++evaluations;
      a[v] = !a[v];
      if (c < best_cost) {
        best_cost = c;
        best_vertex = v;
        improved = true;
      }
    }
    if (improved) {
      a[best_vertex] = !a[best_vertex];
      cost = best_cost;
    }
  }
}

}  // namespace

SolveResult solve_local_search(const PlacementProblem& problem, sim::RngStream rng,
                               int restarts) {
  const CostModel model{problem};
  const std::vector<std::size_t> free = free_vertices(problem);

  SolveResult best;
  best.algorithm = "local-search";
  best.assignment.assign(problem.graph.vertex_count(), false);
  best.cost = model.cost(best.assignment);
  best.evaluations = 1;

  for (int r = 0; r < restarts; ++r) {
    Assignment a(problem.graph.vertex_count(), false);
    if (r > 0) {  // restart 0 climbs from the centralized assignment
      for (std::size_t v : free) a[v] = rng.bernoulli(0.5);
    }
    double cost = model.cost(a);
    ++best.evaluations;
    hill_climb(model, free, a, cost, best.evaluations);
    if (cost < best.cost) {
      best.cost = cost;
      best.assignment = std::move(a);
    }
  }
  return best;
}

SolveResult solve_annealing(const PlacementProblem& problem, sim::RngStream rng,
                            AnnealingParams params) {
  const CostModel model{problem};
  const std::vector<std::size_t> free = free_vertices(problem);

  SolveResult best;
  best.algorithm = "annealing";
  best.assignment.assign(problem.graph.vertex_count(), false);
  best.cost = model.cost(best.assignment);
  best.evaluations = 1;
  if (free.empty()) return best;

  Assignment current = best.assignment;
  double current_cost = best.cost;
  double temperature = params.initial_temperature > 0.0
                           ? params.initial_temperature
                           : std::max(1.0, 0.3 * best.cost);

  for (int i = 0; i < params.iterations; ++i) {
    const std::size_t v = free[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(free.size()) - 1))];
    current[v] = !current[v];
    const double c = model.cost(current);
    ++best.evaluations;
    const double delta = c - current_cost;
    if (delta <= 0.0 || rng.uniform01() < std::exp(-delta / temperature)) {
      current_cost = c;
      if (c < best.cost) {
        best.cost = c;
        best.assignment = current;
      }
    } else {
      current[v] = !current[v];  // reject
    }
    temperature *= params.cooling;
  }
  // Polish: descend from the best state found so neutral flips that rode
  // along with improving moves (e.g. replicating state nobody reads) are
  // cleaned off.
  hill_climb(model, free, best.assignment, best.cost, best.evaluations);
  return best;
}

}  // namespace mutsvc::core::placement

#include "core/placement/advisor.hpp"

#include <sstream>

namespace mutsvc::core::placement {

const char* to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kExhaustive: return "exhaustive";
    case Algorithm::kBranchAndBound: return "branch-and-bound";
    case Algorithm::kGreedy: return "greedy";
    case Algorithm::kLocalSearch: return "local-search";
    case Algorithm::kAnnealing: return "annealing";
  }
  return "?";
}

std::string Advice::describe(const InteractionGraph& graph) const {
  std::ostringstream os;
  os << "placement advice (" << algorithm << "):\n";
  os << "  expected WAN delay: " << centralized_cost << " -> " << optimized_cost
     << " ms/s (x" << improvement_factor() << " better)\n";
  os << "  replicate to edges:";
  for (const auto& c : replicate_components) os << " " << c;
  os << "\n  read-only entity replicas:";
  for (const auto& e : read_only_entities) os << " " << e;
  os << "\n  edge-cached query classes:";
  for (const auto& q : cached_query_classes) os << " " << q;
  os << "\n";
  (void)graph;
  return os.str();
}

Advice advise(const PlacementProblem& problem, Algorithm algorithm, std::uint64_t seed) {
  SolveResult solved;
  switch (algorithm) {
    case Algorithm::kExhaustive: solved = solve_exhaustive(problem); break;
    case Algorithm::kBranchAndBound: solved = solve_branch_and_bound(problem); break;
    case Algorithm::kGreedy: solved = solve_greedy(problem); break;
    case Algorithm::kLocalSearch:
      solved = solve_local_search(problem, sim::RngStream{seed}.fork("local-search"));
      break;
    case Algorithm::kAnnealing:
      solved = solve_annealing(problem, sim::RngStream{seed}.fork("annealing"));
      break;
  }

  const CostModel model{problem};
  Advice advice;
  advice.assignment = solved.assignment;
  advice.optimized_cost = solved.cost;
  advice.centralized_cost = model.centralized_cost();
  advice.algorithm = solved.algorithm;

  for (std::size_t i = 0; i < problem.graph.vertex_count(); ++i) {
    if (i >= solved.assignment.size() || !solved.assignment[i]) continue;
    const Vertex& v = problem.graph.vertex(i);
    switch (v.kind) {
      case VertexKind::kWebComponent:
      case VertexKind::kSessionState:
      case VertexKind::kStatelessService:
        advice.replicate_components.push_back(v.name);
        break;
      case VertexKind::kSharedEntity:
        advice.read_only_entities.push_back(v.name);
        break;
      case VertexKind::kQueryResults:
        advice.cached_query_classes.push_back(v.name);
        break;
      default:
        break;
    }
  }
  return advice;
}

comp::DeploymentPlan to_deployment_plan(const Advice& advice, const comp::Application& app,
                                        const apps::AppMetadata& meta, const TestbedNodes& nodes,
                                        bool async_updates) {
  comp::DeploymentPlan plan;
  plan.set_main_server(nodes.main_server);
  for (net::NodeId edge : nodes.edge_servers) plan.add_edge_server(edge);
  for (const auto& name : app.component_names()) plan.place(name, nodes.main_server);
  plan.set_query_refresh(meta.query_refresh);

  plan.set_entry_point(nodes.local_clients, nodes.main_server);

  const bool any_replication = !advice.replicate_components.empty();
  for (std::size_t i = 0; i < nodes.remote_clients.size(); ++i) {
    plan.set_entry_point(nodes.remote_clients[i],
                         any_replication ? nodes.edge_servers[i % nodes.edge_servers.size()]
                                         : nodes.main_server);
  }

  if (any_replication) {
    plan.enable(comp::Feature::kRemoteFacade);
    plan.enable(comp::Feature::kStubCaching);
    for (net::NodeId edge : nodes.edge_servers) {
      for (const auto& c : advice.replicate_components) {
        if (app.has_component(c)) plan.place(c, edge);
      }
    }
  }
  if (!advice.read_only_entities.empty()) {
    plan.enable(comp::Feature::kStatefulComponentCaching);
    for (net::NodeId edge : nodes.edge_servers) {
      for (const auto& e : advice.read_only_entities) plan.replicate_read_only(e, edge);
    }
  }
  if (!advice.cached_query_classes.empty()) {
    plan.enable(comp::Feature::kQueryCaching);
    for (net::NodeId edge : nodes.edge_servers) plan.add_query_cache(edge);
  }
  if (async_updates &&
      (!advice.read_only_entities.empty() || !advice.cached_query_classes.empty())) {
    plan.enable(comp::Feature::kAsyncUpdates);
  }
  return plan;
}

}  // namespace mutsvc::core::placement

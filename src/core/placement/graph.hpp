#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/common/metadata.hpp"
#include "component/model.hpp"
#include "component/runtime.hpp"
#include "sim/time.hpp"

namespace mutsvc::core::placement {

/// Vertex taxonomy for the component interaction graph. Pinned kinds have a
/// fixed location; replicable kinds are the optimizer's decision variables.
enum class VertexKind {
  kClientLocal,       // traffic entering at the main site (pinned)
  kClientRemote,      // traffic entering at the edge sites (pinned)
  kDatabase,          // the RDBMS (pinned at main)
  kWebComponent,      // servlets/JSPs/web beans
  kSessionState,      // stateful session beans (per-client state)
  kStatelessService,  // stateless façades / MDBs
  kSharedEntity,      // entity-bean state (read-only replicable, update cost)
  kQueryResults,      // a cacheable query class (§4.4), update cost on writes
};

[[nodiscard]] constexpr bool is_pinned(VertexKind k) {
  return k == VertexKind::kClientLocal || k == VertexKind::kClientRemote ||
         k == VertexKind::kDatabase;
}

[[nodiscard]] constexpr bool is_replicable(VertexKind k) { return !is_pinned(k); }

/// Replicating shared state pays a propagation cost per write; stateless
/// and session-scoped components replicate for free.
[[nodiscard]] constexpr bool carries_shared_state(VertexKind k) {
  return k == VertexKind::kSharedEntity || k == VertexKind::kQueryResults;
}

[[nodiscard]] const char* to_string(VertexKind k);

struct Vertex {
  std::string name;
  VertexKind kind = VertexKind::kStatelessService;
  double write_rate = 0.0;  // updates/sec against this state
};

struct Edge {
  std::size_t from = 0;
  std::size_t to = 0;
  double rate = 0.0;         // calls/sec (reads + writes)
  double write_rate = 0.0;   // writes/sec — these always route to the
                             // primary copy, replication cannot localize them
  double round_trips = 1.0;  // WAN RTTs per call when it crosses
  double bytes = 512.0;      // payload per call
};

/// The weighted component interaction graph the optimizer partitions.
class InteractionGraph {
 public:
  std::size_t add_vertex(Vertex v);

  /// Adds (or accumulates onto) a directed edge between named vertices.
  void add_edge(const std::string& from, const std::string& to, double rate,
                double round_trips = 1.0, double bytes = 512.0, double write_rate = 0.0);

  [[nodiscard]] bool has_vertex(const std::string& name) const { return index_.contains(name); }
  [[nodiscard]] std::size_t index_of(const std::string& name) const;
  [[nodiscard]] const Vertex& vertex(std::size_t i) const { return vertices_.at(i); }
  [[nodiscard]] Vertex& vertex(std::size_t i) { return vertices_.at(i); }
  [[nodiscard]] const std::vector<Vertex>& vertices() const { return vertices_; }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }
  [[nodiscard]] std::size_t vertex_count() const { return vertices_.size(); }
  [[nodiscard]] std::size_t free_vertex_count() const;

  [[nodiscard]] std::string describe() const;

 private:
  std::vector<Vertex> vertices_;
  std::vector<Edge> edges_;
  std::map<std::string, std::size_t> index_;
};

/// Parameters for turning a measured runtime profile into a graph.
struct GraphBuildOptions {
  sim::Duration window = sim::sec(3600);  // profiling window the counts cover
  double remote_traffic_fraction = 2.0 / 3.0;
  /// HTTP without keep-alive costs two round trips per page (§4.1).
  double http_round_trips = 2.0;
  /// Mean WAN round trips per RMI call (1 + ping/DGC extras, §4.2).
  double rmi_round_trips = 1.5;
  /// Scale-out data tier: with more than one shard the graph gets one
  /// pinned database vertex per shard (`__database__`, `__database_s1__`,
  /// ...) and every component's DB traffic splits uniformly across them —
  /// the multi-main interaction edges the hash router induces. 1 keeps the
  /// paper's single `__database__` vertex.
  std::size_t db_shards = 1;
};

/// Name of shard `s`'s pinned database vertex (`__database__` for shard 0).
[[nodiscard]] std::string database_vertex_name(std::size_t shard);

/// Builds the interaction graph from a Runtime's measured interaction
/// profile (typically collected in a centralized profiling run) plus the
/// application's component kinds.
[[nodiscard]] InteractionGraph build_graph(const comp::Runtime::InteractionProfile& profile,
                                           const comp::Application& app,
                                           const GraphBuildOptions& opts = {});

}  // namespace mutsvc::core::placement

#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "core/sweep.hpp"
#include "sim/simcheck.hpp"
#include "sim/simrace.hpp"

namespace mutsvc::core {

namespace {
TestbedConfig testbed_for(const apps::AppDriver& driver, HarnessCalibration cal,
                          const ExperimentSpec& spec) {
  TestbedConfig t = cal.testbed;
  t.db_colocated = driver.db_colocated;
  t.db_shards = spec.shard.shards;
  return t;
}

comp::RuntimeConfig runtime_config_for(const HarnessCalibration& cal,
                                       const ExperimentSpec& spec) {
  comp::RuntimeConfig cfg = cal.runtime;
  cfg.coalesce_quantum = spec.shard.coalesce_quantum;
  cfg.flow = spec.flow;
  return cfg;
}

/// MUTSVC_PAR_DOMAINS: worker count for the windowed parallel executor.
/// Host configuration, not simulation state; anything unparsable means 0
/// (the classic sequential loop).
int env_par_domains() {
  const char* env = std::getenv("MUTSVC_PAR_DOMAINS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 0) return 0;
  return static_cast<int>(v);
}
}  // namespace

Experiment::Experiment(const apps::AppDriver& driver, ExperimentSpec spec,
                       HarnessCalibration cal)
    : driver_(driver),
      spec_(spec),
      cal_(cal),
      sim_(spec.seed),
      topo_(sim_),
      nodes_(build_testbed(topo_, testbed_for(driver, cal, spec))),
      net_(sim_, topo_),
      http_(net_, cal.http),
      rmi_(net_, cal.rmi),
      collector_(spec.warmup) {
  db_ = std::make_unique<db::Database>(topo_, nodes_.db_nodes, cal_.db_cost);
  driver_.install_database(*db_);
  // Install the policy before the runtime copies the transport config for
  // its dedicated update transport.
  rmi_.set_resilience(spec_.resilience);
  comp::DeploymentPlan plan = spec_.custom_plan
                                  ? spec_.custom_plan(nodes_)
                                  : build_plan(*driver_.app, *driver_.meta, nodes_, spec_.level);
  // Before the Runtime exists: domain tagging (and the windowed mode) must
  // see an empty event heap, and the Runtime's construction-time spawns
  // (update coalescer) land in the tagged main domain.
  setup_parallel_domains(plan);
  runtime_ = std::make_unique<comp::Runtime>(sim_, topo_, net_, rmi_, *db_, *driver_.app,
                                             std::move(plan), runtime_config_for(cal_, spec_));
  driver_.bind_entities(*runtime_);
  if (spec_.placement.enabled) {
    // Versioned runtime bindings + live migration + controller (DESIGN
    // §17). The policy is built fresh per Experiment through the config's
    // factory, so a sweep slot reusing one spec can never leak a previous
    // trial's bindings or hysteresis state into the next trial.
    bindings_ = std::make_unique<comp::BindingTable>(runtime_->plan());
    runtime_->set_binding_table(bindings_.get());
    migrator_ = std::make_unique<comp::MigrationManager>(sim_, *runtime_, *bindings_,
                                                         spec_.placement.migration);
    if (spec_.placement.policy) {
      controller_ = std::make_unique<comp::PlacementController>(sim_, *runtime_, *bindings_,
                                                                *migrator_, spec_.placement);
    }
  }
  // Freeze the lazily-created per-server thread pools before traffic flows:
  // entry handlers on different islands would otherwise race to create map
  // entries. Creation costs no simulated time, so sequential runs are
  // unchanged.
  (void)thread_pool(nodes_.main_server);
  for (net::NodeId s : runtime_->plan().edge_servers()) (void)thread_pool(s);
  (void)thread_pool(runtime_->plan().entry_point(nodes_.local_clients));
  for (net::NodeId c : nodes_.remote_clients) {
    (void)thread_pool(runtime_->plan().entry_point(c));
  }
  if (spec_.flow.enabled && spec_.flow.wan_rate_bps > 0.0) {
    net_.set_wan_rate_limit(spec_.flow.wan_rate_bps, spec_.flow.wan_burst_bytes);
  }
  if (!spec_.fault_plan.empty()) {
    faults_ = std::make_unique<net::FaultInjector>(sim_, topo_, spec_.fault_plan);
    faults_->set_restart_listener(
        [this](net::NodeId n) { runtime_->clear_node_caches(n); });
    net_.set_fault_injector(faults_.get());
    faults_->arm();
  }
  if (simrace::enabled()) {
    // SimRace: hand the analyzer the lookahead-domain partition (LAN
    // islands; WAN links are the parallelization boundaries) and the node
    // names used in findings.
    std::vector<std::string> names;
    names.reserve(topo_.node_count());
    for (std::uint32_t i = 0; i < topo_.node_count(); ++i) {
      names.push_back(topo_.node(net::NodeId{i}).name);
    }
    simrace::configure(topo_.lookahead_domains(net_.wan_threshold()), std::move(names));
  }
}

void Experiment::setup_parallel_domains(const comp::DeploymentPlan& plan) {
  const sim::Duration threshold = net_.wan_threshold();
  std::vector<std::uint32_t> groups = topo_.lookahead_domains(threshold);

  if (plan.update_mode() == comp::UpdateMode::kAsyncPush) {
    // Asynchronous updates couple the publisher with every subscriber: the
    // topics' drain tasks touch provider-side queue state from the
    // subscriber's side of a delivery, so all coupled islands must execute
    // as one domain. Merging only removes cross-domain links, so the
    // certified window stays conservative. (Blocking push needs no merge —
    // each push is an ordinary RMI whose server work runs at the edge.)
    const std::uint32_t main_group = groups[plan.main_server().value()];
    std::vector<char> to_main(groups.size(), 0);  // indexed by group id (< node count)
    to_main[main_group] = 1;
    for (const auto& [entity, replica_nodes] : plan.ro_replicas()) {
      for (net::NodeId n : replica_nodes) to_main[groups[n.value()]] = 1;
    }
    for (net::NodeId n : plan.query_cache_nodes()) to_main[groups[n.value()]] = 1;
    for (std::uint32_t& g : groups) {
      if (to_main[g] != 0) g = main_group;
    }
  }

  // Renumber dense in node order (node 0's island is always domain 0).
  std::vector<std::uint32_t> remap(groups.size(), UINT32_MAX);
  std::uint32_t domain_count = 0;
  node_domains_.resize(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    if (remap[groups[i]] == UINT32_MAX) remap[groups[i]] = domain_count++;
    node_domains_[i] = static_cast<sim::Simulator::DomainId>(remap[groups[i]]);
  }
  if (domain_count > 256) {
    throw std::invalid_argument("Experiment: more than 256 lookahead domains");
  }

  const int requested =
      spec_.parallel_domains >= 0 ? spec_.parallel_domains : env_par_domains();
  par_workers_ = requested > 0 ? static_cast<std::size_t>(requested) : 0;
  if (par_workers_ > 0) {
    // Features whose state crosses domains outside the windowed protocol
    // cannot parallelize. An explicit spec request fails loudly; an
    // env-derived one quietly falls back to the sequential tagged loop
    // (MUTSVC_PAR_DOMAINS is a fleet-wide knob — e.g. a CI matrix row
    // running every test — and the sequential loop is bit-identical, so
    // the fallback only costs the speedup).
    const char* blocked = nullptr;
    if (!spec_.fault_plan.empty()) {
      blocked = "fault injection (shared fault RNG streams and cross-domain link flaps)";
    } else if (spec_.resilience.enabled) {
      blocked = "the resilience policy (per-callee breakers are shared across caller domains)";
    } else if (spec_.flow.enabled && spec_.flow.admission_rate > 0.0) {
      blocked = "admission control (entry buckets are created on first use)";
    } else if (cal_.http.keep_alive) {
      blocked = "HTTP keep-alive (connection reuse state spans client domains)";
    } else if (spec_.placement.enabled) {
      blocked = "runtime placement (bindings, quiesce gates and cache state migrate across "
                "domains)";
    }
    if (blocked != nullptr) {
      if (spec_.parallel_domains >= 1) {
        throw std::invalid_argument(
            std::string("Experiment: MUTSVC_PAR_DOMAINS is incompatible with ") + blocked +
            "; run this configuration with parallel_domains = 0");
      }
      par_workers_ = 0;
    }
  }
  if (par_workers_ > 0) {
    // The window width is the certified lookahead: the narrowest link that
    // crosses a domain in the final (merged) partition. By construction of
    // lookahead_domains() every crossing link carries at least the WAN
    // threshold of latency; re-verify that here against the topology as
    // built, so a mis-calibrated threshold or a hand-edited link fails
    // loudly at startup instead of corrupting a run (satellite of
    // LOOKAHEAD_cert.json: declared wan_threshold <= min observed crossing
    // latency).
    sim::Duration window = threshold;
    bool has_crossing = false;
    for (const net::Link* l : topo_.all_links()) {
      if (node_domains_[l->from.value()] == node_domains_[l->to.value()]) continue;
      if (l->latency < threshold) {
        throw std::invalid_argument(
            "Experiment: lookahead certificate violated: link " + topo_.node(l->from).name +
            " -> " + topo_.node(l->to).name + " crosses a lookahead domain with latency " +
            std::to_string(l->latency.as_millis()) + " ms < the declared WAN threshold " +
            std::to_string(threshold.as_millis()) +
            " ms (see LOOKAHEAD_cert.json). Lower the WAN threshold or keep the link "
            "inside one island.");
      }
      window = has_crossing ? std::min(window, l->latency) : l->latency;
      has_crossing = true;
    }
    // Instrumented runs serialize: SimCheck/SimRace keep thread-local
    // registries, and a trial already on an across-trial sweep worker must
    // not spawn a nested pool. The clamp never changes results — windowed
    // output is worker-count invariant by construction.
    if (simcheck::enabled() || simrace::enabled() || sweep::inside_worker()) {
      par_workers_ = 1;
    }
    sim_.enable_windowed(domain_count, window);
  } else {
    // Tagging is on even for sequential runs, so the (time, owner, seq)
    // event order — and therefore every result bit — is shared by the
    // sequential loop and the windowed executor at any worker count.
    sim_.enable_domains(domain_count);
  }
  net_.set_domains(node_domains_);
  // Per-caller-node RMI streams: a node's stream is drawn only while that
  // node's events execute, i.e. from its own domain. Forks are pure
  // functions of (root seed, name), so sequential and parallel runs see
  // identical streams.
  rmi_.partition_streams(topo_.node_count());
}

sim::FifoResource& Experiment::thread_pool(net::NodeId server) {
  auto it = thread_pools_.find(server);
  if (it == thread_pools_.end()) {
    it = thread_pools_
             .emplace(server, std::make_unique<sim::FifoResource>(
                                  sim_, cal_.container_threads,
                                  topo_.node(server).name + ".threads"))
             .first;
  }
  return *it->second;
}

sim::Task<workload::RequestOutcome> Experiment::execute(net::NodeId client_node,
                                                        const workload::PageRequest& request) {
  net::NodeId server = runtime_->plan().entry_point(client_node);
  // Admission control (flow control §1): a deterministic token bucket per
  // entry node sheds excess pages up front — the cheapest place to refuse
  // work is before any of it happens. Refusal is instant (no sim time).
  if (spec_.flow.enabled && spec_.flow.admission_rate > 0.0) {
    auto it = admission_.find(server);
    if (it == admission_.end()) {
      it = admission_
               .emplace(server, net::TokenBucket{spec_.flow.admission_rate,
                                                 spec_.flow.admission_burst})
               .first;
    }
    if (!it->second.try_acquire(sim_.now())) {
      rejected_admission_.fetch_add(1, std::memory_order_relaxed);
      co_return workload::RequestOutcome::kRejected;
    }
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  if (spec_.placement.enabled) {
    // The controller's load signal: pages entering at this server. A plain
    // registry counter — no events, so enabling placement without a policy
    // stays byte-identical.
    runtime_->metrics(server).inc(comp::PlacementController::kEntryPagesCounter);
  }
  const int max_page_retries = spec_.resilience.enabled ? spec_.resilience.http_retries : 0;
  for (int attempt = 0;;) {
    enum class Outcome { kOk, kUnreachable, kFailed };
    Outcome out = Outcome::kOk;
    try {
      co_await execute_at(client_node, server, request);
    } catch (const net::NoRouteError&) {
      out = Outcome::kUnreachable;  // co_await is illegal in a catch block
    } catch (const net::NetError&) {
      out = Outcome::kFailed;  // lost messages / open breaker: transient
    }
    if (out == Outcome::kOk) co_return workload::RequestOutcome::kOk;

    if (out == Outcome::kUnreachable) {
      // Connection attempt to a dead/partitioned server: the client notices
      // after a connect timeout.
      co_await sim_.wait(spec_.failover_timeout);
      if (!spec_.failover_enabled || server == nodes_.main_server) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        co_return workload::RequestOutcome::kFailed;
      }
      // §1: "client requests can utilize several entry points into the
      // service" — fall back to the main server. Switching entry points does
      // not consume the retry budget, so transient faults on the fallback
      // path still get the policy's whole-page retries.
      failovers_.fetch_add(1, std::memory_order_relaxed);
      server = nodes_.main_server;
      continue;
    }

    // Transient failure: the browser retries the whole page (when the
    // resilience policy allows) after a short pause.
    if (attempt >= max_page_retries) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      co_return workload::RequestOutcome::kFailed;
    }
    ++attempt;
    co_await sim_.wait(sim::ms(200 * attempt));
  }
}

sim::Task<void> Experiment::execute_at(net::NodeId client_node, net::NodeId server,
                                       const workload::PageRequest& request,
                                       comp::TraceSink* trace) {
  // The HTTP transport owns the root span and the exclusive http-wire
  // accounting (elapsed minus the handler's window); the handler bills the
  // thread-pool wait and everything the runtime does below it.
  co_await http_.request(client_node, server, request.request_bytes,
                         [this, server, &request, trace]() -> sim::Task<net::Bytes> {
                           const sim::SimTime s0 = sim_.now();
                           sim::FifoResource& pool = thread_pool(server);
                           co_await pool.acquire();
                           if (trace) {
                             const sim::SimTime s1 = sim_.now();
                             trace->add(comp::SpanKind::kQueueing, s1 - s0);
                             if (s1 > s0) {
                               trace->leaf(comp::SpanKind::kQueueing, "thread-queue",
                                           server.value(), server.value(), s0, s1);
                             }
                           }
                           try {
                             (void)co_await runtime_->invoke(server, request.component,
                                                             request.method, request.args,
                                                             trace, request.session_key);
                           } catch (...) {
                             pool.release();
                             throw;
                           }
                           pool.release();
                           co_return request.response_bytes;
                         },
                         trace);
}

sim::Task<void> Experiment::execute_traced(net::NodeId client_node,
                                           const workload::PageRequest& request,
                                           comp::TraceSink& sink) {
  sink.set_trace_id(++trace_counter_);
  const net::NodeId server = runtime_->plan().entry_point(client_node);
  co_await execute_at(client_node, server, request, &sink);
}

void Experiment::enable_metrics(sim::Duration window) {
  if (par_workers_ > 0) {
    throw std::invalid_argument(
        "Experiment: enable_metrics is incompatible with MUTSVC_PAR_DOMAINS (the "
        "sampler reads every node's gauges from one domain and the transports "
        "mirror counters into shared registries); run with parallel_domains = 0");
  }
  metrics_window_ = window;
  runtime_->enable_transport_metrics();
  stats::Histogram& h = runtime_->metrics(nodes_.main_server).histogram("response_ms");
  collector_.set_observer([&h](double ms) { h.observe(ms); });
}

sim::Task<void> Experiment::metrics_sampler(sim::SimTime end) {
  while (sim_.now() < end) {
    co_await sim_.wait(metrics_window_);
    runtime_->sample_metrics(sim_.now(), metrics_window_);
    if (spec_.flow.enabled) {
      for (const auto& [node, bucket] : admission_) {
        stats::MetricsRegistry& reg = runtime_->metrics(node);
        reg.set_counter("flow.admission.admitted", bucket.admitted());
        reg.set_counter("flow.admission.rejected", bucket.rejected());
      }
      stats::MetricsRegistry& main = runtime_->metrics(nodes_.main_server);
      main.set_counter("flow.wan.throttled", net_.wan_throttled());
      main.set_counter("flow.wan.throttle_ms",
                       static_cast<std::uint64_t>(net_.wan_throttle_time().as_millis()));
    }
  }
}

void Experiment::start_coroutine_load(sim::SimTime end) {
  loadgen_ = std::make_unique<workload::LoadGenerator>(sim_, *this, collector_, spec_.loadgen);

  sim::RngStream root = sim_.rng().fork("workload");
  const double per_group =
      spec_.total_request_rate / static_cast<double>(1 + nodes_.remote_clients.size());

  auto start_group = [&](net::NodeId client, stats::ClientGroup group, const std::string& tag) {
    workload::ClientGroupSpec s;
    s.client_node = client;
    s.group = group;
    s.requests_per_second = per_group;
    s.browser_fraction = spec_.browser_fraction;
    s.browser_factory = driver_.browser_factory(root.fork(tag + "-browser"));
    s.writer_factory = driver_.writer_factory(root.fork(tag + "-writer"));
    if (spec_.open_loop_arrivals) {
      loadgen_->start_open_group(s, end, root.fork(tag + "-clients"));
    } else {
      loadgen_->start_group(s, end, root.fork(tag + "-clients"));
    }
  };

  // Each client group is spawned under its own island's domain, so the
  // whole client lifecycle (think-time timers included) executes where the
  // clients live — sequentially this only relabels event owners, identically
  // for the classic loop and the windowed executor.
  {
    sim::Simulator::DomainScope in_domain(sim_, domain_of(nodes_.local_clients));
    start_group(nodes_.local_clients, stats::ClientGroup::kLocal, "local");
  }
  for (std::size_t i = 0; i < nodes_.remote_clients.size(); ++i) {
    sim::Simulator::DomainScope in_domain(sim_, domain_of(nodes_.remote_clients[i]));
    start_group(nodes_.remote_clients[i], stats::ClientGroup::kRemote,
                "remote-" + std::to_string(i));
  }
}

void Experiment::start_fsm_load(sim::SimTime end) {
  if (!driver_.fsm_browser_model || !driver_.fsm_writer_model) {
    throw std::invalid_argument("Experiment: fsm_load.enabled but the '" + driver_.name +
                                "' driver provides no FSM script models");
  }
  if (spec_.open_loop_arrivals) {
    throw std::invalid_argument(
        "Experiment: fsm_load is mutually exclusive with open_loop_arrivals — express the "
        "arrival process as fsm_load.arrivals (a RateEnvelope) instead");
  }
  const std::shared_ptr<const workload::FsmScriptModel> browser =
      driver_.fsm_browser_model(spec_.fsm_load.zipf_s);
  const std::shared_ptr<const workload::FsmScriptModel> writer =
      driver_.fsm_writer_model(spec_.fsm_load.zipf_s);
  const auto group_count = static_cast<double>(1 + nodes_.remote_clients.size());
  const double per_group = spec_.total_request_rate / group_count;

  auto start_group = [&](std::size_t gi, net::NodeId client, stats::ClientGroup group,
                         const std::string& tag) {
    workload::SessionFsmEngine::Config cfg;
    cfg.think_time = spec_.loadgen.think_time;
    cfg.between_sessions = spec_.loadgen.between_sessions;
    cfg.calendar_quantum = spec_.fsm_load.calendar_quantum;
    // Per-group salt for the sticky session routing keys — pure function of
    // (seed, tag), no RNG draw.
    cfg.session_salt = workload::SmallRng::named_seed(spec_.seed, tag + "-key");
    auto engine = std::make_unique<workload::SessionFsmEngine>(sim_, *this, collector_, cfg);
    const std::uint8_t b = engine->add_kind(browser, client, group);
    const std::uint8_t w = engine->add_kind(writer, client, group);
    const std::uint64_t bseed = workload::SmallRng::named_seed(spec_.seed, tag + "-browser");
    const std::uint64_t wseed = workload::SmallRng::named_seed(spec_.seed, tag + "-writer");
    // A group-specific envelope (diurnal antiphase across sites) overrides
    // the even split of the shared envelope; it is this group's whole
    // session-arrival rate, split only browser/writer.
    const workload::RateEnvelope* per_group_env =
        gi < spec_.fsm_load.group_arrivals.size() && !spec_.fsm_load.group_arrivals[gi].empty()
            ? &spec_.fsm_load.group_arrivals[gi]
            : nullptr;
    if (per_group_env != nullptr) {
      engine->start_arrivals(b, per_group_env->scaled(spec_.browser_fraction), end, bseed);
      engine->start_arrivals(w, per_group_env->scaled(1.0 - spec_.browser_fraction), end,
                             wseed);
    } else if (!spec_.fsm_load.arrivals.empty()) {
      // The envelope is the combined session-arrival rate: split evenly
      // across groups, then browser/writer by the spec mix.
      const double share = 1.0 / group_count;
      engine->start_arrivals(
          b, spec_.fsm_load.arrivals.scaled(share * spec_.browser_fraction), end, bseed);
      engine->start_arrivals(
          w, spec_.fsm_load.arrivals.scaled(share * (1.0 - spec_.browser_fraction)), end,
          wseed);
    } else {
      // Closed-loop population, sized like the coroutine driver (and split
      // with the same total-conserving rule).
      std::size_t total = spec_.fsm_load.sessions_per_group;
      workload::LoadGenerator::ClientSplit split;
      if (total == 0) {
        split = workload::LoadGenerator::split_clients(per_group, spec_.browser_fraction,
                                                       spec_.loadgen.think_time);
      } else {
        auto browsers = static_cast<std::size_t>(
            std::llround(static_cast<double>(total) * spec_.browser_fraction));
        browsers = std::min(browsers, total);
        split.browsers = static_cast<int>(browsers);
        split.writers = static_cast<int>(total - browsers);
      }
      engine->start_population(b, static_cast<std::size_t>(split.browsers), end, bseed);
      engine->start_population(w, static_cast<std::size_t>(split.writers), end, wseed);
    }
    fsm_engines_.push_back(std::move(engine));
  };

  {
    sim::Simulator::DomainScope in_domain(sim_, domain_of(nodes_.local_clients));
    start_group(0, nodes_.local_clients, stats::ClientGroup::kLocal, "fsm-local");
  }
  for (std::size_t i = 0; i < nodes_.remote_clients.size(); ++i) {
    sim::Simulator::DomainScope in_domain(sim_, domain_of(nodes_.remote_clients[i]));
    start_group(i + 1, nodes_.remote_clients[i], stats::ClientGroup::kRemote,
                "fsm-remote-" + std::to_string(i));
  }
}

void Experiment::run() {
  const sim::SimTime end = sim::SimTime::origin() + spec_.duration;
  if (spec_.fsm_load.enabled) {
    start_fsm_load(end);
  } else {
    start_coroutine_load(end);
  }

  if (metrics_window_ > sim::Duration::zero()) {
    sim_.spawn(metrics_sampler(end));
  }
  if (controller_ != nullptr) controller_->start(end);

  // Utilization accounting starts after warm-up, like the measurements.
  // One reset event per node, in the node's own domain — a node's CPU
  // counters are only ever touched from its island.
  for (std::uint32_t i = 0; i < topo_.node_count(); ++i) {
    sim::Simulator::DomainScope in_domain(sim_, node_domains_[i]);
    sim_.schedule_at(sim::SimTime::origin() + spec_.warmup, [this, i] {
      topo_.node(net::NodeId{i}).cpu->reset_utilization();
    });
  }

  if (par_workers_ > 0) {
    sim_.run_windows_until(end, par_workers_);
  } else {
    sim_.run_until(end);
  }
}

}  // namespace mutsvc::core

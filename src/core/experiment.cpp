#include "core/experiment.hpp"

#include "sim/simrace.hpp"

namespace mutsvc::core {

namespace {
TestbedConfig testbed_for(const apps::AppDriver& driver, HarnessCalibration cal,
                          const ExperimentSpec& spec) {
  TestbedConfig t = cal.testbed;
  t.db_colocated = driver.db_colocated;
  t.db_shards = spec.shard.shards;
  return t;
}

comp::RuntimeConfig runtime_config_for(const HarnessCalibration& cal,
                                       const ExperimentSpec& spec) {
  comp::RuntimeConfig cfg = cal.runtime;
  cfg.coalesce_quantum = spec.shard.coalesce_quantum;
  cfg.flow = spec.flow;
  return cfg;
}
}  // namespace

Experiment::Experiment(const apps::AppDriver& driver, ExperimentSpec spec,
                       HarnessCalibration cal)
    : driver_(driver),
      spec_(spec),
      cal_(cal),
      sim_(spec.seed),
      topo_(sim_),
      nodes_(build_testbed(topo_, testbed_for(driver, cal, spec))),
      net_(sim_, topo_),
      http_(net_, cal.http),
      rmi_(net_, cal.rmi),
      collector_(spec.warmup) {
  db_ = std::make_unique<db::Database>(topo_, nodes_.db_nodes, cal_.db_cost);
  driver_.install_database(*db_);
  // Install the policy before the runtime copies the transport config for
  // its dedicated update transport.
  rmi_.set_resilience(spec_.resilience);
  comp::DeploymentPlan plan = spec_.custom_plan
                                  ? spec_.custom_plan(nodes_)
                                  : build_plan(*driver_.app, *driver_.meta, nodes_, spec_.level);
  runtime_ = std::make_unique<comp::Runtime>(sim_, topo_, net_, rmi_, *db_, *driver_.app,
                                             std::move(plan), runtime_config_for(cal_, spec_));
  driver_.bind_entities(*runtime_);
  if (spec_.flow.enabled && spec_.flow.wan_rate_bps > 0.0) {
    net_.set_wan_rate_limit(spec_.flow.wan_rate_bps, spec_.flow.wan_burst_bytes);
  }
  if (!spec_.fault_plan.empty()) {
    faults_ = std::make_unique<net::FaultInjector>(sim_, topo_, spec_.fault_plan);
    faults_->set_restart_listener(
        [this](net::NodeId n) { runtime_->clear_node_caches(n); });
    net_.set_fault_injector(faults_.get());
    faults_->arm();
  }
  if (simrace::enabled()) {
    // SimRace: hand the analyzer the lookahead-domain partition (LAN
    // islands; WAN links are the parallelization boundaries) and the node
    // names used in findings.
    std::vector<std::string> names;
    names.reserve(topo_.node_count());
    for (std::uint32_t i = 0; i < topo_.node_count(); ++i) {
      names.push_back(topo_.node(net::NodeId{i}).name);
    }
    simrace::configure(topo_.lookahead_domains(net_.wan_threshold()), std::move(names));
  }
}

sim::FifoResource& Experiment::thread_pool(net::NodeId server) {
  auto it = thread_pools_.find(server);
  if (it == thread_pools_.end()) {
    it = thread_pools_
             .emplace(server, std::make_unique<sim::FifoResource>(
                                  sim_, cal_.container_threads,
                                  topo_.node(server).name + ".threads"))
             .first;
  }
  return *it->second;
}

sim::Task<workload::RequestOutcome> Experiment::execute(net::NodeId client_node,
                                                        const workload::PageRequest& request) {
  net::NodeId server = runtime_->plan().entry_point(client_node);
  // Admission control (flow control §1): a deterministic token bucket per
  // entry node sheds excess pages up front — the cheapest place to refuse
  // work is before any of it happens. Refusal is instant (no sim time).
  if (spec_.flow.enabled && spec_.flow.admission_rate > 0.0) {
    auto it = admission_.find(server);
    if (it == admission_.end()) {
      it = admission_
               .emplace(server, net::TokenBucket{spec_.flow.admission_rate,
                                                 spec_.flow.admission_burst})
               .first;
    }
    if (!it->second.try_acquire(sim_.now())) {
      ++rejected_admission_;
      co_return workload::RequestOutcome::kRejected;
    }
  }
  ++admitted_;
  const int max_page_retries = spec_.resilience.enabled ? spec_.resilience.http_retries : 0;
  for (int attempt = 0;;) {
    enum class Outcome { kOk, kUnreachable, kFailed };
    Outcome out = Outcome::kOk;
    try {
      co_await execute_at(client_node, server, request);
    } catch (const net::NoRouteError&) {
      out = Outcome::kUnreachable;  // co_await is illegal in a catch block
    } catch (const net::NetError&) {
      out = Outcome::kFailed;  // lost messages / open breaker: transient
    }
    if (out == Outcome::kOk) co_return workload::RequestOutcome::kOk;

    if (out == Outcome::kUnreachable) {
      // Connection attempt to a dead/partitioned server: the client notices
      // after a connect timeout.
      co_await sim_.wait(spec_.failover_timeout);
      if (!spec_.failover_enabled || server == nodes_.main_server) {
        ++dropped_;
        co_return workload::RequestOutcome::kFailed;
      }
      // §1: "client requests can utilize several entry points into the
      // service" — fall back to the main server. Switching entry points does
      // not consume the retry budget, so transient faults on the fallback
      // path still get the policy's whole-page retries.
      ++failovers_;
      server = nodes_.main_server;
      continue;
    }

    // Transient failure: the browser retries the whole page (when the
    // resilience policy allows) after a short pause.
    if (attempt >= max_page_retries) {
      ++dropped_;
      co_return workload::RequestOutcome::kFailed;
    }
    ++attempt;
    co_await sim_.wait(sim::ms(200 * attempt));
  }
}

sim::Task<void> Experiment::execute_at(net::NodeId client_node, net::NodeId server,
                                       const workload::PageRequest& request,
                                       comp::TraceSink* trace) {
  // The HTTP transport owns the root span and the exclusive http-wire
  // accounting (elapsed minus the handler's window); the handler bills the
  // thread-pool wait and everything the runtime does below it.
  co_await http_.request(client_node, server, request.request_bytes,
                         [this, server, &request, trace]() -> sim::Task<net::Bytes> {
                           const sim::SimTime s0 = sim_.now();
                           sim::FifoResource& pool = thread_pool(server);
                           co_await pool.acquire();
                           if (trace) {
                             const sim::SimTime s1 = sim_.now();
                             trace->add(comp::SpanKind::kQueueing, s1 - s0);
                             if (s1 > s0) {
                               trace->leaf(comp::SpanKind::kQueueing, "thread-queue",
                                           server.value(), server.value(), s0, s1);
                             }
                           }
                           try {
                             (void)co_await runtime_->invoke(server, request.component,
                                                             request.method, request.args,
                                                             trace);
                           } catch (...) {
                             pool.release();
                             throw;
                           }
                           pool.release();
                           co_return request.response_bytes;
                         },
                         trace);
}

sim::Task<void> Experiment::execute_traced(net::NodeId client_node,
                                           const workload::PageRequest& request,
                                           comp::TraceSink& sink) {
  sink.set_trace_id(++trace_counter_);
  const net::NodeId server = runtime_->plan().entry_point(client_node);
  co_await execute_at(client_node, server, request, &sink);
}

void Experiment::enable_metrics(sim::Duration window) {
  metrics_window_ = window;
  runtime_->enable_transport_metrics();
  stats::Histogram& h = runtime_->metrics(nodes_.main_server).histogram("response_ms");
  collector_.set_observer([&h](double ms) { h.observe(ms); });
}

sim::Task<void> Experiment::metrics_sampler(sim::SimTime end) {
  while (sim_.now() < end) {
    co_await sim_.wait(metrics_window_);
    runtime_->sample_metrics(sim_.now(), metrics_window_);
    if (spec_.flow.enabled) {
      for (const auto& [node, bucket] : admission_) {
        stats::MetricsRegistry& reg = runtime_->metrics(node);
        reg.set_counter("flow.admission.admitted", bucket.admitted());
        reg.set_counter("flow.admission.rejected", bucket.rejected());
      }
      stats::MetricsRegistry& main = runtime_->metrics(nodes_.main_server);
      main.set_counter("flow.wan.throttled", net_.wan_throttled());
      main.set_counter("flow.wan.throttle_ms",
                       static_cast<std::uint64_t>(net_.wan_throttle_time().as_millis()));
    }
  }
}

void Experiment::run() {
  loadgen_ = std::make_unique<workload::LoadGenerator>(sim_, *this, collector_, spec_.loadgen);

  sim::RngStream root = sim_.rng().fork("workload");
  const double per_group =
      spec_.total_request_rate / static_cast<double>(1 + nodes_.remote_clients.size());
  const sim::SimTime end = sim::SimTime::origin() + spec_.duration;

  auto start_group = [&](net::NodeId client, stats::ClientGroup group, const std::string& tag) {
    workload::ClientGroupSpec s;
    s.client_node = client;
    s.group = group;
    s.requests_per_second = per_group;
    s.browser_fraction = spec_.browser_fraction;
    s.browser_factory = driver_.browser_factory(root.fork(tag + "-browser"));
    s.writer_factory = driver_.writer_factory(root.fork(tag + "-writer"));
    if (spec_.open_loop_arrivals) {
      loadgen_->start_open_group(s, end, root.fork(tag + "-clients"));
    } else {
      loadgen_->start_group(s, end, root.fork(tag + "-clients"));
    }
  };

  start_group(nodes_.local_clients, stats::ClientGroup::kLocal, "local");
  for (std::size_t i = 0; i < nodes_.remote_clients.size(); ++i) {
    start_group(nodes_.remote_clients[i], stats::ClientGroup::kRemote,
                "remote-" + std::to_string(i));
  }

  if (metrics_window_ > sim::Duration::zero()) {
    sim_.spawn(metrics_sampler(end));
  }

  // Utilization accounting starts after warm-up, like the measurements.
  sim_.schedule_at(sim::SimTime::origin() + spec_.warmup, [this] {
    for (std::uint32_t i = 0; i < topo_.node_count(); ++i) {
      topo_.node(net::NodeId{i}).cpu->reset_utilization();
    }
  });

  sim_.run_until(end);
}

}  // namespace mutsvc::core

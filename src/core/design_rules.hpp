#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/common/metadata.hpp"
#include "component/deployment.hpp"
#include "component/model.hpp"
#include "core/testbed.hpp"

namespace mutsvc::core {

/// One of the paper's design rules (§4.2–§4.5), expressed as a deployment
/// transformation — the §5 thesis: these rules are declarative deployment
/// policy, implementable by containers, not application code.
class DesignRule {
 public:
  virtual ~DesignRule() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  virtual void apply(comp::DeploymentPlan& plan, const apps::AppMetadata& meta,
                     const TestbedNodes& nodes) const = 0;
};

/// §4.2: deploy web components and stateful session beans at the edges,
/// route each client group to its nearest server, collapse entity access
/// into bulk façade calls, and cache JNDI home/remote stubs
/// (EJBHomeFactory).
class RemoteFacadeRule final : public DesignRule {
 public:
  const char* name() const override { return "remote-facade"; }
  void apply(comp::DeploymentPlan& plan, const apps::AppMetadata& meta,
             const TestbedNodes& nodes) const override;
};

/// §4.3: split read-mostly entity beans into a read-write master and
/// read-only edge replicas kept fresh by a blocking push protocol; deploy
/// the delegating façades (edge Catalog / SB_View*) alongside them.
class StatefulComponentCachingRule final : public DesignRule {
 public:
  const char* name() const override { return "stateful-component-caching"; }
  void apply(comp::DeploymentPlan& plan, const apps::AppMetadata& meta,
             const TestbedNodes& nodes) const override;
};

/// §4.4: cache aggregate/finder query results at edge servers, refreshed by
/// pull (re-execute on next read) or push (rows ride the update call).
class QueryCachingRule final : public DesignRule {
 public:
  const char* name() const override { return "query-caching"; }
  void apply(comp::DeploymentPlan& plan, const apps::AppMetadata& meta,
             const TestbedNodes& nodes) const override;
};

/// §4.5: replace the blocking push with asynchronous propagation through a
/// JMS topic and message-driven façades — writers stop paying WAN latency.
class AsynchronousUpdatesRule final : public DesignRule {
 public:
  const char* name() const override { return "asynchronous-updates"; }
  void apply(comp::DeploymentPlan& plan, const apps::AppMetadata& meta,
             const TestbedNodes& nodes) const override;
};

/// The five incremental configurations of §4.
enum class ConfigLevel {
  kCentralized = 1,               // §4.1
  kRemoteFacade = 2,              // §4.2
  kStatefulComponentCaching = 3,  // §4.3
  kQueryCaching = 4,              // §4.4
  kAsyncUpdates = 5,              // §4.5
};

[[nodiscard]] const char* to_string(ConfigLevel level);

/// The rules that are active at `level`, in application order.
[[nodiscard]] std::vector<std::unique_ptr<DesignRule>> rules_for(ConfigLevel level);

/// Builds the complete deployment plan for one rung of the ladder:
/// the centralized baseline plus every rule up to and including `level`.
[[nodiscard]] comp::DeploymentPlan build_plan(const comp::Application& app,
                                              const apps::AppMetadata& meta,
                                              const TestbedNodes& nodes, ConfigLevel level);

}  // namespace mutsvc::core

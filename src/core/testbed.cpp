#include "core/testbed.hpp"

namespace mutsvc::core {

TestbedNodes build_testbed(net::Topology& topo, const TestbedConfig& cfg) {
  if (cfg.edge_count == 0) throw std::invalid_argument("build_testbed: edge_count must be > 0");
  if (cfg.db_shards == 0) throw std::invalid_argument("build_testbed: db_shards must be > 0");

  TestbedNodes n;
  n.main_server = topo.add_node("main-as", net::NodeRole::kAppServer, cfg.server_cpus);
  for (std::size_t i = 0; i < cfg.edge_count; ++i) {
    n.edge_servers.push_back(topo.add_node("edge-as-" + std::to_string(i + 1),
                                           net::NodeRole::kAppServer, cfg.server_cpus));
  }
  n.wan_hub = topo.add_node("wan-router", net::NodeRole::kRouter, 1);
  n.local_clients = topo.add_node("clients-main", net::NodeRole::kClientMachine, 2);
  for (std::size_t i = 0; i < cfg.edge_count; ++i) {
    n.remote_clients.push_back(topo.add_node("clients-edge-" + std::to_string(i + 1),
                                             net::NodeRole::kClientMachine, 2));
  }

  if (cfg.db_colocated) {
    n.db_node = n.main_server;
  } else {
    n.db_node = topo.add_node("rdbms", net::NodeRole::kDatabaseServer, cfg.server_cpus);
    topo.add_link(n.main_server, n.db_node, cfg.lan_latency, cfg.lan_bandwidth_bps);
  }
  // Scale-out data tier: shard 0 keeps the single-DB placement above (so
  // db_shards=1 is the paper's topology, node for node); every further
  // shard is its own workstation on the main site's LAN.
  n.db_nodes.push_back(n.db_node);
  for (std::size_t i = 1; i < cfg.db_shards; ++i) {
    const net::NodeId shard = topo.add_node("rdbms-s" + std::to_string(i),
                                            net::NodeRole::kDatabaseServer, cfg.server_cpus);
    topo.add_link(n.main_server, shard, cfg.lan_latency, cfg.lan_bandwidth_bps);
    n.db_nodes.push_back(shard);
  }

  // WAN star through the traffic-shaped software router: 50 ms per hop
  // makes every server-to-server path 100 ms one way.
  const sim::Duration half_wan = cfg.wan_one_way * 0.5;
  topo.add_link(n.main_server, n.wan_hub, half_wan, cfg.wan_bandwidth_bps);
  for (auto edge : n.edge_servers) {
    topo.add_link(edge, n.wan_hub, half_wan, cfg.wan_bandwidth_bps);
  }

  // Client LANs. Remote client sites also see the wide-area router
  // directly — they are on the Internet, not behind their edge server —
  // which is what makes entry-point failover possible when an edge dies.
  topo.add_link(n.local_clients, n.main_server, cfg.lan_latency, cfg.lan_bandwidth_bps);
  for (std::size_t i = 0; i < cfg.edge_count; ++i) {
    topo.add_link(n.remote_clients[i], n.edge_servers[i], cfg.lan_latency,
                  cfg.lan_bandwidth_bps);
    topo.add_link(n.remote_clients[i], n.wan_hub, half_wan, cfg.wan_bandwidth_bps);
  }

  topo.build_routes();
  return n;
}

}  // namespace mutsvc::core

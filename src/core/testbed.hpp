#pragma once

#include <vector>

#include "net/topology.hpp"
#include "sim/time.hpp"

namespace mutsvc::core {

/// Parameters of the Figure 2 network emulation.
struct TestbedConfig {
  sim::Duration wan_one_way = sim::ms(100);  // §3.1: 100 ms each way
  double wan_bandwidth_bps = 100e6;          // §3.1: 100 Mbit/s combined
  sim::Duration lan_latency = sim::us(200);
  double lan_bandwidth_bps = 100e6;
  std::size_t server_cpus = 2;  // dual-processor P-III workstations
  /// True: the database runs on the main app-server node (RUBiS);
  /// false: on its own workstation on the main LAN (Pet Store).
  bool db_colocated = false;
  /// Number of edge servers (the paper's testbed has two); each edge gets
  /// its own co-located client group. Used by the scaling experiments.
  std::size_t edge_count = 2;
  /// Data-tier shards. 1 (the paper's testbed) reproduces the single-RDBMS
  /// topology exactly; N > 1 gives each shard its own node with its own
  /// service resource on the main site's LAN. Shard 0 keeps the single-DB
  /// placement (co-located with the main server, or the "rdbms" node).
  std::size_t db_shards = 1;
};

/// Node handles for the scaled-down wide-area testbed of Figure 2:
/// one main application server (co-located with the RDBMS), two edge
/// application servers across the WAN, and one client machine per server
/// (standing in for the paper's three per server; rates are aggregated).
struct TestbedNodes {
  net::NodeId main_server;
  std::vector<net::NodeId> edge_servers;  // two edges
  net::NodeId db_node;                    // shard 0; == main_server when co-located
  std::vector<net::NodeId> db_nodes;      // one per data-tier shard (db_nodes[0] == db_node)
  net::NodeId wan_hub;                    // the Click software router
  net::NodeId local_clients;              // LAN with the main server
  std::vector<net::NodeId> remote_clients;  // one per edge server
};

/// Builds Figure 2 into `topo` and returns the node handles.
///
/// WAN paths go through a hub (the software router), with half the one-way
/// latency on each hop, so edge-to-edge latency equals main-to-edge — as in
/// the emulated star.
[[nodiscard]] TestbedNodes build_testbed(net::Topology& topo, const TestbedConfig& cfg = {});

}  // namespace mutsvc::core

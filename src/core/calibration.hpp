#pragma once

#include "component/runtime.hpp"
#include "core/testbed.hpp"
#include "db/database.hpp"
#include "net/http.hpp"
#include "net/rmi.hpp"

namespace mutsvc::core {

/// Everything tuned to reproduce the paper's testbed behaviour in one
/// place. Per-page demands live with the applications
/// (apps::petstore::Calibration / apps::rubis::Calibration); this struct
/// holds the infrastructure-level constants shared by all pages.
struct HarnessCalibration {
  TestbedConfig testbed;
  net::HttpConfig http;    // keep-alive off (§4.1)
  net::RmiConfig rmi;      // extra round trips + DGC traffic (§4.2)
  comp::RuntimeConfig runtime;
  db::DbCostModel db_cost;

  /// Container request threads per application server. Must comfortably
  /// cover requests that hold a thread across a WAN façade call; the
  /// paper's JBoss thread pools were never the bottleneck.
  std::size_t container_threads = 24;
};

/// Pet Store ran against JBoss 2.4.4/Jetty 3.1.3 with Oracle on a separate
/// workstation (§3.1); heavier pages, pull-based query refresh, and a
/// JMS provider whose publish path costs tens of milliseconds.
[[nodiscard]] inline HarnessCalibration petstore_calibration() {
  HarnessCalibration cal;
  cal.testbed.db_colocated = false;
  cal.rmi.extra_rtt_prob = 0.5;       // §4.2: RMI ping / DGC round trips
  cal.rmi.dgc_traffic_factor = 2.0;   // §4.3: >half of RMI traffic is DGC
  cal.runtime.jdbc.fetch_size = 8;
  cal.runtime.jms_accept = sim::ms(48);  // persistent-topic publish cost
  return cal;
}

/// RUBiS ran against JBoss 3.0.3/Jetty 4.1.0 with MySQL co-located on the
/// main server (§3.1); a much lighter container generation.
[[nodiscard]] inline HarnessCalibration rubis_calibration() {
  HarnessCalibration cal;
  cal.testbed.db_colocated = true;
  cal.rmi.extra_rtt_prob = 0.5;
  cal.rmi.dgc_traffic_factor = 2.0;
  cal.runtime.jdbc.fetch_size = 16;
  cal.runtime.jms_accept = sim::ms(2);
  return cal;
}

}  // namespace mutsvc::core

#include "core/design_rules.hpp"

#include "component/model.hpp"

namespace mutsvc::core {

using comp::DeploymentPlan;
using comp::Feature;

void RemoteFacadeRule::apply(DeploymentPlan& plan, const apps::AppMetadata& meta,
                             const TestbedNodes& nodes) const {
  for (net::NodeId edge : nodes.edge_servers) {
    for (const auto& c : meta.web_components) plan.place(c, edge);
    for (const auto& c : meta.stateful_session) plan.place(c, edge);
  }
  plan.enable(Feature::kRemoteFacade);
  plan.enable(Feature::kStubCaching);
  // Remote client groups now enter through their co-located edge server.
  for (std::size_t i = 0; i < nodes.remote_clients.size(); ++i) {
    plan.set_entry_point(nodes.remote_clients[i],
                         nodes.edge_servers[i % nodes.edge_servers.size()]);
  }
}

void StatefulComponentCachingRule::apply(DeploymentPlan& plan, const apps::AppMetadata& meta,
                                         const TestbedNodes& nodes) const {
  for (net::NodeId edge : nodes.edge_servers) {
    for (const auto& c : meta.edge_facades) plan.place(c, edge);
    for (const auto& e : meta.read_mostly) plan.replicate_read_only(e, edge);
  }
  plan.enable(Feature::kStatefulComponentCaching);
}

void QueryCachingRule::apply(DeploymentPlan& plan, const apps::AppMetadata& meta,
                             const TestbedNodes& nodes) const {
  for (net::NodeId edge : nodes.edge_servers) {
    for (const auto& c : meta.query_facades) plan.place(c, edge);
    plan.add_query_cache(edge);
  }
  plan.set_query_refresh(meta.query_refresh);
  plan.enable(Feature::kQueryCaching);
}

void AsynchronousUpdatesRule::apply(DeploymentPlan& plan, const apps::AppMetadata&,
                                    const TestbedNodes&) const {
  plan.enable(Feature::kAsyncUpdates);
}

const char* to_string(ConfigLevel level) {
  switch (level) {
    case ConfigLevel::kCentralized: return "Centralized";
    case ConfigLevel::kRemoteFacade: return "Remote facade";
    case ConfigLevel::kStatefulComponentCaching: return "Stateful component caching";
    case ConfigLevel::kQueryCaching: return "Query caching";
    case ConfigLevel::kAsyncUpdates: return "Asynchronous updates";
  }
  return "?";
}

std::vector<std::unique_ptr<DesignRule>> rules_for(ConfigLevel level) {
  std::vector<std::unique_ptr<DesignRule>> rules;
  const int l = static_cast<int>(level);
  if (l >= static_cast<int>(ConfigLevel::kRemoteFacade)) {
    rules.push_back(std::make_unique<RemoteFacadeRule>());
  }
  if (l >= static_cast<int>(ConfigLevel::kStatefulComponentCaching)) {
    rules.push_back(std::make_unique<StatefulComponentCachingRule>());
  }
  if (l >= static_cast<int>(ConfigLevel::kQueryCaching)) {
    rules.push_back(std::make_unique<QueryCachingRule>());
  }
  if (l >= static_cast<int>(ConfigLevel::kAsyncUpdates)) {
    rules.push_back(std::make_unique<AsynchronousUpdatesRule>());
  }
  return rules;
}

comp::DeploymentPlan build_plan(const comp::Application& app, const apps::AppMetadata& meta,
                                const TestbedNodes& nodes, ConfigLevel level) {
  DeploymentPlan plan;
  plan.set_main_server(nodes.main_server);
  for (net::NodeId edge : nodes.edge_servers) plan.add_edge_server(edge);

  // Centralized baseline (§4.1): every component on the main server; all
  // client groups enter there.
  for (const auto& name : app.component_names()) plan.place(name, nodes.main_server);
  plan.set_entry_point(nodes.local_clients, nodes.main_server);
  for (net::NodeId rc : nodes.remote_clients) plan.set_entry_point(rc, nodes.main_server);
  plan.set_query_refresh(meta.query_refresh);

  for (const auto& rule : rules_for(level)) rule->apply(plan, meta, nodes);
  return plan;
}

}  // namespace mutsvc::core

#include "core/sweep.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>

#include "sim/simcheck.hpp"
#include "sim/simrace.hpp"

namespace mutsvc::core::sweep {

namespace {
// Host-thread identity, not simulation state: thread_local gives every
// sweep worker its own flag, so trials cannot observe each other through it.
thread_local bool t_inside_worker = false;  // simlint:allow(global-mutable)
}  // namespace

bool inside_worker() { return t_inside_worker; }

std::size_t configured_jobs() {
  // Host introspection for a worker-pool size, not simulation state.
  // simlint:allow(sim-shared-across-threads)
  const unsigned hc = std::thread::hardware_concurrency();
  const std::size_t fallback = hc > 0 ? hc : 1;
  const char* env = std::getenv("MUTSVC_JOBS");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v <= 0) return fallback;
  return static_cast<std::size_t>(v);
}

void run_indexed(std::size_t n, const std::function<void(std::size_t)>& body,
                 std::size_t jobs) {
  if (n == 0) return;
  if (jobs == 0) jobs = configured_jobs();

  std::vector<std::exception_ptr> errors(n);
  auto run_one = [&](std::size_t i) {
    // Per-trial sanitizer reset: findings are trial-scoped, and a sanitized
    // trial behaves identically whichever worker (or the inline path) runs
    // it. Hard violations still throw and are captured like any failure.
    simcheck::reset();
    simrace::reset();
    try {
      body(i);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };

  if (jobs <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) run_one(i);
  } else {
    // Share-nothing fan-out: workers claim the next unstarted index from an
    // atomic ticket; results land in index-addressed slots, so merge order
    // equals submission order regardless of scheduling.
    // simlint:allow(sim-shared-across-threads)
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    const std::size_t workers = jobs < n ? jobs : n;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        t_inside_worker = true;
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= n) return;
          run_one(i);
        }
      });
    }
    for (auto& t : pool) t.join();
  }

  // The pool drained fully; surface the lowest-index failure so the caller
  // sees a deterministic error regardless of worker interleaving.
  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
}

}  // namespace mutsvc::core::sweep

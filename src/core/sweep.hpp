#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace mutsvc::core::sweep {

/// Worker count for parallel trial execution: MUTSVC_JOBS when it parses as
/// a positive integer, else the host's core count (min 1). Benches record
/// it next to their wall metrics so speedups are interpretable.
[[nodiscard]] std::size_t configured_jobs();

/// Runs `body(0) .. body(n-1)`, each exactly once, across `jobs` worker
/// threads (0 = configured_jobs(); 1 = inline serial path, no threads).
///
/// Trials must be share-nothing: each owns its Simulator, testbed, and
/// collectors, so results are byte-identical at any job count. SimCheck's
/// thread-local registry is reset at the start of every trial, making a
/// sanitized trial's findings independent of which worker ran it.
///
/// A throwing trial never deadlocks the pool or skips other trials: every
/// index runs, exceptions are captured per slot, and after the pool drains
/// the lowest-index exception is rethrown.
void run_indexed(std::size_t n, const std::function<void(std::size_t)>& body,
                 std::size_t jobs = 0);

/// True on a run_indexed worker thread. Within-trial parallelism (the
/// windowed lookahead-domain executor, MUTSVC_PAR_DOMAINS) consults this to
/// clamp itself to one worker when the trial already runs on an
/// across-trial worker — the two levels compose without oversubscribing the
/// host, and a clamped windowed run is bit-identical at any worker count by
/// construction, so composition never changes results.
[[nodiscard]] bool inside_worker();

/// Runs every trial callable and returns their results merged in submission
/// order (index-addressed slots — identical to a serial loop at any job
/// count). `T` must be default-constructible and move-assignable.
template <class T>
[[nodiscard]] std::vector<T> run_trials(std::vector<std::function<T()>> trials,
                                        std::size_t jobs = 0) {
  std::vector<T> out(trials.size());
  run_indexed(
      trials.size(), [&](std::size_t i) { out[i] = trials[i](); }, jobs);
  return out;
}

}  // namespace mutsvc::core::sweep

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "apps/common/driver.hpp"
#include "component/binding.hpp"
#include "component/controller.hpp"
#include "component/migration.hpp"
#include "component/runtime.hpp"
#include "core/calibration.hpp"
#include "core/design_rules.hpp"
#include "core/testbed.hpp"
#include "db/database.hpp"
#include "net/faults.hpp"
#include "net/flowcontrol.hpp"
#include "net/http.hpp"
#include "net/network.hpp"
#include "net/resilience.hpp"
#include "net/rmi.hpp"
#include "net/topology.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "stats/collector.hpp"
#include "workload/arrivals.hpp"
#include "workload/loadgen.hpp"
#include "workload/session_fsm.hpp"

namespace mutsvc::core {

/// Scale-out data tier configuration (extends §4.5 beyond the paper's
/// single-RDBMS testbed). Defaults reproduce the paper exactly.
struct ShardConfig {
  /// Hash-partitioned database shards; each gets its own node and service
  /// resource on the main site's LAN (shard 0 keeps the single-DB
  /// placement, so 1 is the unsharded baseline bit for bit).
  std::size_t shards = 1;
  /// Batched update coalescing for async propagation: zero (default, the
  /// paper's behaviour) publishes one batch per transaction; positive
  /// flushes one merged batch per shard topic per quantum.
  sim::Duration coalesce_quantum = sim::Duration::zero();
};

/// Million-session FSM load engine configuration (DESIGN §16). Opt-in: the
/// paper ladder keeps the per-session coroutine driver; enabling this
/// replaces it with 40-byte session records in a flat arena, so one trial
/// can hold millions of concurrent sessions.
struct FsmLoadSpec {
  bool enabled = false;
  /// Closed-loop population per client group. 0 derives the paper sizing
  /// round(rate_per_group * think_time), like the coroutine driver.
  std::size_t sessions_per_group = 0;
  /// When non-empty, sessions *arrive* instead: the envelope is the
  /// combined session-arrival rate (nonhomogeneous Poisson), split evenly
  /// across client groups and browser/writer by browser_fraction; each
  /// arriving session runs one script and leaves. Diurnal curves and
  /// flash-crowd steps come from the RateEnvelope factories.
  workload::RateEnvelope arrivals;
  /// Per-client-group arrival envelopes, overriding the even split of
  /// `arrivals`: index 0 is the local group, 1 and 2 the remote groups (in
  /// TestbedNodes order). Groups beyond the vector fall back to the shared
  /// `arrivals` split. Lets a diurnal bench put antiphase day/night curves
  /// on different sites (see RateEnvelope::shifted).
  std::vector<workload::RateEnvelope> group_arrivals;
  /// Zipf exponent for item popularity inside the scripts (0 = the paper's
  /// uniform catalog use). Positive values concentrate traffic on the few
  /// hottest items — and therefore on one hot shard of the sharded tier.
  double zipf_s = 0.0;
  /// Calendar bucket width of the engine's due-time calendar.
  sim::Duration calendar_quantum = sim::ms(100);
};

/// Run parameters (§3.3): one hour of combined 30 req/s load from an 80/20
/// browser/writer mix, split equally across three client groups, after a
/// warm-up. Defaults are a scaled-down run; the table benches use the full
/// paper-scale parameters.
struct ExperimentSpec {
  ConfigLevel level = ConfigLevel::kCentralized;
  sim::Duration duration = sim::sec(600);
  sim::Duration warmup = sim::sec(60);
  double total_request_rate = 30.0;
  double browser_fraction = 0.8;
  std::uint64_t seed = 42;
  workload::LoadGenConfig loadgen;
  /// When set, deploys this plan instead of the `level` ladder rung (used
  /// by the placement advisor to run machine-derived plans). Receives the
  /// freshly built testbed's node handles.
  std::function<comp::DeploymentPlan(const TestbedNodes&)> custom_plan;

  /// Entry-point failover (the availability motivation of §1): when a
  /// client cannot reach its assigned server, it retries at the main
  /// server after this connection timeout. Zero disables failover —
  /// unreachable requests are then dropped after the timeout.
  sim::Duration failover_timeout = sim::sec(2);
  bool failover_enabled = true;

  /// Scale-out data tier (1 shard = the paper's testbed).
  ShardConfig shard;

  /// Injected faults for this run (empty = fault-free, the default).
  net::FaultPlan fault_plan;
  /// Middleware resilience policy: RMI retry/timeout/circuit-breaker plus
  /// client-side whole-page retries. Disabled by default (seed behavior).
  net::ResilienceConfig resilience;
  /// Overload protection: admission control, bounded queues with shedding,
  /// WAN rate limits, backpressure. Off by default — a disabled config is
  /// bit-identical to the pre-flow-control harness (golden-enforced).
  net::FlowControlConfig flow;
  /// Flash-crowd arrival process: open-loop Poisson arrivals at the spec
  /// rate instead of the paper's closed-loop client fleet. The offered
  /// load then stays up when the service saturates — the regime overload
  /// protection exists for. Default keeps §3.3's closed loop.
  bool open_loop_arrivals = false;

  /// Million-session FSM load engine (DESIGN §16); mutually exclusive with
  /// open_loop_arrivals (the FSM engine has its own arrival layer).
  FsmLoadSpec fsm_load;

  /// Runtime placement: versioned component bindings, live migration, and
  /// the deterministic placement controller (DESIGN §17). Off by default —
  /// a disabled config constructs nothing and the run is byte-identical to
  /// the static-placement harness; enabled with no policy installs the
  /// binding table but spawns no controller (still byte-identical,
  /// golden-enforced).
  comp::PlacementConfig placement;

  /// Conservative parallel execution of this single trial (DESIGN §15):
  /// the testbed's LAN islands become lookahead domains that execute in
  /// lock-step windows one certified WAN latency wide. -1 (default) reads
  /// the MUTSVC_PAR_DOMAINS environment variable; 0 keeps the classic
  /// sequential event loop; >= 1 runs the windowed executor with that many
  /// worker threads. Results are bit-identical at every worker count
  /// (including the windowed 1-worker run), so the setting is purely a
  /// wall-clock knob. Incompatible features (fault injection, resilience,
  /// admission control, keep-alive, live metrics) are refused with a
  /// diagnostic rather than silently degraded.
  int parallel_domains = -1;
};

/// One full testbed run: Figure 2 topology + application + configuration
/// rung + client load; collects per-page and per-pattern response times.
class Experiment final : public workload::RequestExecutor {
 public:
  Experiment(const apps::AppDriver& driver, ExperimentSpec spec, HarnessCalibration cal);

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  /// Runs the full load for spec.duration of simulated time.
  void run();

  [[nodiscard]] const stats::ResponseTimeCollector& results() const { return collector_; }

  /// Enables windowed time-series collection (call before run()).
  void enable_timeseries(sim::Duration window) { collector_.enable_timeseries(window); }

  /// Enables per-node metrics collection (call before run()): the transports
  /// mirror their resilience counters live, cache/topic/consistency gauges
  /// are sampled every `window`, and post-warm-up response times feed a
  /// fixed-bucket latency histogram ("response_ms") on the main server's
  /// registry. Off by default — enabling adds only read-only sampling, so
  /// the simulated trajectory is unchanged.
  void enable_metrics(sim::Duration window);
  [[nodiscard]] stats::MetricsRegistry& metrics(net::NodeId node) {
    return runtime_->metrics(node);
  }
  [[nodiscard]] comp::Runtime& runtime() { return *runtime_; }
  /// Null unless spec.placement.enabled.
  [[nodiscard]] comp::BindingTable* bindings() { return bindings_.get(); }
  [[nodiscard]] comp::MigrationManager* migrator() { return migrator_.get(); }
  /// Null unless spec.placement.enabled with a policy installed.
  [[nodiscard]] comp::PlacementController* placement_controller() { return controller_.get(); }
  [[nodiscard]] const TestbedNodes& nodes() const { return nodes_; }
  [[nodiscard]] net::Network& network() { return net_; }
  [[nodiscard]] net::RmiTransport& rmi() { return rmi_; }
  /// Null when the spec's FaultPlan is empty.
  [[nodiscard]] net::FaultInjector* fault_injector() { return faults_.get(); }
  [[nodiscard]] db::Database& database() { return *db_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  /// Post-warm-up mean CPU utilization of a node (the paper kept app
  /// servers under 40% and the DB under 5%).
  [[nodiscard]] double cpu_utilization(net::NodeId node) {
    return topo_.node(node).cpu->utilization();
  }

  // workload::RequestExecutor: one HTTP page request end to end, with
  // admission control at the entry node (when flow control enables it),
  // entry-point failover on unreachable servers and (when resilience is
  // enabled) bounded whole-page retries on transient network faults.
  // kFailed means the request was ultimately dropped; kRejected means
  // admission refused it up front.
  [[nodiscard]] sim::Task<workload::RequestOutcome> execute(
      net::NodeId client_node, const workload::PageRequest& request) override;

  [[nodiscard]] std::uint64_t failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped_requests() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Worker threads the windowed parallel executor will use for run()
  /// (0 = the classic sequential loop). Resolved from spec.parallel_domains
  /// / MUTSVC_PAR_DOMAINS at construction, then clamped to 1 under
  /// SimCheck, SimRace, or an across-trial sweep worker — the clamp never
  /// changes results, only the thread count.
  [[nodiscard]] std::size_t parallel_workers() const { return par_workers_; }
  /// Lookahead domain a node executes in (after the async-update coupling
  /// merge; always installed, so sequential and parallel runs share one
  /// event order).
  [[nodiscard]] sim::Simulator::DomainId domain_of(net::NodeId n) const {
    return node_domains_[n.value()];
  }

  // --- admission accounting -------------------------------------------------
  // Counted at execute() entry, so the identity
  //   pages_started == requests_admitted + rejected_admission
  // holds exactly at any instant. The drivers count requests at the same
  // moment they hand the page to execute(), so pages_started ==
  // requests_issued as well.
  [[nodiscard]] std::uint64_t pages_started() const {
    return requests_admitted() + rejected_admission();
  }
  [[nodiscard]] std::uint64_t requests_admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t rejected_admission() const {
    return rejected_admission_.load(std::memory_order_relaxed);
  }

  /// Lets a bench observe every post-warm-up response sample (milliseconds)
  /// without enabling the full metrics pipeline. Mutually exclusive with
  /// enable_metrics (both install the collector's single observer hook).
  void set_response_observer(std::function<void(double)> obs) {
    collector_.set_observer(std::move(obs));
  }

  /// Page requests the active driver issued, counted at issue time (the
  /// documented end-of-run rule: nothing issues at or after end_at, and a
  /// completion landing after end_at records whenever the simulation runs
  /// it). The conservation identity — issued == recorded samples +
  /// failures + rejections + discarded warm-up samples + in-flight — holds
  /// exactly at any instant; the shard property battery asserts it across
  /// the config ladder.
  [[nodiscard]] std::uint64_t requests_issued() const {
    std::uint64_t n = loadgen_ ? loadgen_->requests_issued() : 0;
    for (const auto& e : fsm_engines_) n += e->requests_issued();
    return n;
  }
  [[nodiscard]] std::uint64_t requests_completed() const {
    std::uint64_t n = loadgen_ ? loadgen_->requests_completed() : 0;
    for (const auto& e : fsm_engines_) n += e->requests_completed();
    return n;
  }
  /// Issued before end_at but still awaiting a response (truncated runs
  /// leave these permanently in flight).
  [[nodiscard]] std::uint64_t requests_in_flight() const {
    return requests_issued() - requests_completed();
  }
  [[nodiscard]] std::uint64_t sessions_started() const {
    std::uint64_t n = loadgen_ ? loadgen_->sessions_started() : 0;
    for (const auto& e : fsm_engines_) n += e->sessions_started();
    return n;
  }

  // --- FSM load engine observability (empty unless fsm_load.enabled) -------
  [[nodiscard]] std::size_t fsm_live_sessions() const {
    std::size_t n = 0;
    for (const auto& e : fsm_engines_) n += e->live_sessions();
    return n;
  }
  [[nodiscard]] std::size_t fsm_peak_live_sessions() const {
    std::size_t n = 0;
    for (const auto& e : fsm_engines_) n += e->peak_live_sessions();
    return n;
  }
  [[nodiscard]] std::size_t fsm_arena_bytes() const {
    std::size_t n = 0;
    for (const auto& e : fsm_engines_) n += e->arena_bytes();
    return n;
  }

  /// Issues one page request with full trace collection: the sink receives
  /// the per-category time breakdown (HTTP wire, queueing, CPU, JDBC, RMI,
  /// lock waits, push/publish, ...). Used by the breakdown benchmarks.
  [[nodiscard]] sim::Task<void> execute_traced(net::NodeId client_node,
                                               const workload::PageRequest& request,
                                               comp::TraceSink& sink);

 private:
  /// Resolves the parallel-domain configuration, merges async-update-coupled
  /// islands into one domain, validates the topology against the lookahead
  /// window (the LOOKAHEAD_cert.json contract) and installs domain tagging
  /// (or the windowed mode) on the kernel. Must run before any component
  /// schedules an event, so it is called before the Runtime is built.
  void setup_parallel_domains(const comp::DeploymentPlan& plan);

  /// Builds the per-group coroutine load (the paper's driver) for run().
  void start_coroutine_load(sim::SimTime end);
  /// Builds one SessionFsmEngine per client group (fsm_load.enabled).
  void start_fsm_load(sim::SimTime end);

  [[nodiscard]] sim::FifoResource& thread_pool(net::NodeId server);

  [[nodiscard]] sim::Task<void> execute_at(net::NodeId client_node, net::NodeId server,
                                           const workload::PageRequest& request,
                                           comp::TraceSink* trace = nullptr);

  /// Periodic read-only snapshot of runtime gauges into the registries.
  [[nodiscard]] sim::Task<void> metrics_sampler(sim::SimTime end);

  apps::AppDriver driver_;
  ExperimentSpec spec_;
  HarnessCalibration cal_;

  sim::Simulator sim_;
  net::Topology topo_;
  TestbedNodes nodes_;
  net::Network net_;
  net::HttpTransport http_;
  net::RmiTransport rmi_;
  std::unique_ptr<db::Database> db_;
  std::unique_ptr<comp::Runtime> runtime_;
  // Runtime placement (all null when spec.placement is disabled). Declared
  // after runtime_: they hold references into it and must be destroyed
  // first.
  std::unique_ptr<comp::BindingTable> bindings_;
  std::unique_ptr<comp::MigrationManager> migrator_;
  std::unique_ptr<comp::PlacementController> controller_;
  std::unique_ptr<net::FaultInjector> faults_;
  stats::ResponseTimeCollector collector_;
  std::unique_ptr<workload::LoadGenerator> loadgen_;
  /// One FSM engine per client group (fsm_load.enabled), each living in its
  /// group's lookahead domain.
  std::vector<std::unique_ptr<workload::SessionFsmEngine>> fsm_engines_;
  std::map<net::NodeId, std::unique_ptr<sim::FifoResource>> thread_pools_;
  /// One admission bucket per entry node (lazily created; empty unless the
  /// flow config enables admission control).
  std::map<net::NodeId, net::TokenBucket> admission_;
  /// Node → lookahead domain after the coupling merge; installed on the
  /// kernel and the network at construction.
  std::vector<sim::Simulator::DomainId> node_domains_;
  std::size_t par_workers_ = 0;  // 0 = classic sequential event loop
  // Commutative request-accounting sums bumped from client-island domains;
  // relaxed atomics keep the totals exact under the parallel executor.
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_admission_{0};
  sim::Duration metrics_window_ = sim::Duration::zero();
  std::uint64_t trace_counter_ = 0;
};

}  // namespace mutsvc::core

#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace mutsvc::stats {

/// Accumulates a sample set and answers summary queries.
///
/// Stores raw samples (the experiment scale — a few hundred thousand
/// doubles — makes exact percentiles affordable), plus Welford running
/// moments so mean/variance stay numerically stable.
class Summary {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }

  [[nodiscard]] double mean() const {
    if (n_ == 0) throw std::logic_error("Summary::mean on empty summary");
    return mean_;
  }

  [[nodiscard]] double variance() const {
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
  }

  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  [[nodiscard]] double min() const {
    if (n_ == 0) throw std::logic_error("Summary::min on empty summary");
    return min_;
  }

  [[nodiscard]] double max() const {
    if (n_ == 0) throw std::logic_error("Summary::max on empty summary");
    return max_;
  }

  /// Exact percentile via nearest-rank on the sorted samples, p in [0, 100].
  [[nodiscard]] double percentile(double p) const {
    if (n_ == 0) throw std::logic_error("Summary::percentile on empty summary");
    if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile out of range");
    ensure_sorted();
    auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * static_cast<double>(n_)));
    if (rank == 0) rank = 1;
    return samples_[rank - 1];
  }

  [[nodiscard]] double median() const { return percentile(50.0); }

  /// Half-width of the 95% confidence interval for the mean
  /// (normal approximation; our sample counts are large).
  [[nodiscard]] double ci95_halfwidth() const {
    if (n_ < 2) return 0.0;
    return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
  }

  void merge(const Summary& other) {
    for (double x : other.samples_) add(x);
  }

  void clear() {
    samples_.clear();
    sorted_ = false;
    n_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
  }

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace mutsvc::stats

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "stats/summary.hpp"

namespace mutsvc::stats {

/// Fixed-width windowed aggregation of a metric over simulated time —
/// response time over the run, request rate during an outage, replica lag
/// during recovery. Windows are created lazily up to the latest sample.
class TimeSeries {
 public:
  explicit TimeSeries(sim::Duration window) : window_(window) {
    if (window <= sim::Duration::zero()) {
      throw std::invalid_argument("TimeSeries: window must be positive");
    }
  }

  void add(sim::SimTime at, double value) {
    const std::size_t idx = index_of(at);
    if (idx >= windows_.size()) windows_.resize(idx + 1);
    windows_[idx].add(value);
  }

  /// Number of windows touched so far (trailing empty windows included).
  [[nodiscard]] std::size_t window_count() const { return windows_.size(); }
  [[nodiscard]] sim::Duration window_width() const { return window_; }

  [[nodiscard]] const Summary& window(std::size_t i) const { return windows_.at(i); }

  [[nodiscard]] sim::SimTime window_start(std::size_t i) const {
    return sim::SimTime::origin() + window_ * static_cast<double>(i);
  }

  /// Mean per window; empty windows yield `empty_value` (default -1).
  [[nodiscard]] std::vector<double> window_means(double empty_value = -1.0) const {
    std::vector<double> out;
    out.reserve(windows_.size());
    for (const auto& w : windows_) out.push_back(w.empty() ? empty_value : w.mean());
    return out;
  }

  /// Count per window — e.g. achieved request throughput.
  [[nodiscard]] std::vector<std::size_t> window_counts() const {
    std::vector<std::size_t> out;
    out.reserve(windows_.size());
    for (const auto& w : windows_) out.push_back(w.count());
    return out;
  }

 private:
  [[nodiscard]] std::size_t index_of(sim::SimTime at) const {
    const auto micros = at.count_micros();
    if (micros < 0) throw std::invalid_argument("TimeSeries: negative time");
    return static_cast<std::size_t>(micros / window_.count_micros());
  }

  sim::Duration window_;
  std::vector<Summary> windows_;
};

}  // namespace mutsvc::stats

#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "stats/trace.hpp"

namespace mutsvc::stats {

/// Exports sampled TraceSinks as Chrome trace-event JSON ("X" complete
/// events), loadable in Perfetto / chrome://tracing.
///
/// Mapping: pid = topology node id (one "process" per node, named via
/// name_process), tid = index of the sampled trace (one lane per request),
/// ts/dur = simulated microseconds. Timestamps come exclusively from the
/// simulated clock — the exporter is simlint-clean and its output is
/// bit-identical across runs and MUTSVC_JOBS values.
class ChromeTraceWriter {
 public:
  /// Records every `sample_every`-th offered trace (1 = all).
  explicit ChromeTraceWriter(std::size_t sample_every = 1)
      : sample_every_(sample_every == 0 ? 1 : sample_every) {}

  /// Maps a pid (topology node id) to a human-readable process name.
  void name_process(std::uint32_t node, std::string name) {
    process_names_[node] = std::move(name);
  }

  /// Offers one finished trace; returns true when it was sampled.
  bool offer(const TraceSink& sink, std::string label) {
    const bool take = offered_ % sample_every_ == 0;
    ++offered_;
    if (!take) return false;
    recorded_.push_back(Recorded{sink.trace_id(), std::move(label), sink.spans()});
    return true;
  }

  [[nodiscard]] std::size_t offered() const { return offered_; }
  [[nodiscard]] std::size_t recorded() const { return recorded_.size(); }

  void write(std::ostream& os) const {
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
      if (!first) os << ",";
      first = false;
      os << "\n";
    };
    for (const auto& [node, name] : process_names_) {
      sep();
      os << R"({"ph":"M","pid":)" << node << R"(,"tid":0,"name":"process_name","args":{"name":")"
         << escaped(name) << "\"}}";
    }
    for (std::size_t lane = 0; lane < recorded_.size(); ++lane) {
      const Recorded& r = recorded_[lane];
      for (const Span& s : r.spans) {
        sep();
        os << R"({"ph":"X","name":")" << escaped(event_name(r, s)) << R"(","cat":")"
           << to_string(s.kind) << R"(","pid":)" << s.src << R"(,"tid":)" << lane + 1
           << R"(,"ts":)" << s.start.count_micros() << R"(,"dur":)" << s.duration().count_micros()
           << R"(,"args":{"trace":)" << r.trace_id << R"(,"span":)" << s.id << R"(,"parent":)"
           << s.parent << R"(,"dst":)" << s.dst << "}}";
      }
    }
    os << "\n]}\n";
  }

 private:
  struct Recorded {
    std::uint64_t trace_id = 0;
    std::string label;
    std::vector<Span> spans;
  };

  [[nodiscard]] static std::string event_name(const Recorded& r, const Span& s) {
    std::string name = s.label.empty() ? std::string{to_string(s.kind)} : s.label;
    if (s.parent == 0 && !r.label.empty()) name = r.label + ": " + name;
    return name;
  }

  [[nodiscard]] static std::string escaped(const std::string& in) {
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            out += ' ';  // other control characters: not worth escaping
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  std::size_t sample_every_;
  std::size_t offered_ = 0;
  std::vector<Recorded> recorded_;
  std::map<std::uint32_t, std::string> process_names_;
};

}  // namespace mutsvc::stats

#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "stats/timeseries.hpp"

namespace mutsvc::stats {

/// Fixed-bucket histogram (Prometheus-style cumulative-free buckets: one
/// count per upper bound, plus an overflow bucket). Bounds are fixed at
/// construction, so two runs of the same workload produce bit-identical
/// bucket counts — benchstat treats `hist_*` metrics as strictly
/// deterministic.
class Histogram {
 public:
  /// Default latency bucket bounds, in milliseconds.
  [[nodiscard]] static std::vector<double> default_latency_bounds_ms() {
    return {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000};
  }

  explicit Histogram(std::vector<double> bounds = default_latency_bounds_ms())
      : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {
    for (std::size_t i = 1; i < bounds_.size(); ++i) {
      if (bounds_[i] <= bounds_[i - 1]) {
        throw std::invalid_argument("Histogram: bounds must be strictly increasing");
      }
    }
  }

  void observe(double v) {
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    ++buckets_[i];
    ++count_;
    sum_ += v;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return buckets_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }

  void clear() {
    for (auto& b : buckets_) b = 0;
    count_ = 0;
    sum_ = 0.0;
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// One node's metric store: monotonic counters, point-in-time gauges,
/// fixed-bucket histograms, and windowed TimeSeries. Everything is keyed by
/// name in std::map so iteration (reports, exports) is deterministic.
///
/// Naming convention: dotted lowercase paths, subsystem first —
/// `rmi.retries`, `rmi.breaker.opened`, `qcache.hits`,
/// `rocache.<entity>.stale_pushes_rejected`, `topic.updates.pending`.
/// Histogram-derived metrics exported to bench JSON use the `hist_` prefix.
class MetricsRegistry {
 public:
  // --- counters (monotonic) ------------------------------------------------
  void inc(const std::string& name, std::uint64_t delta = 1) { counters_[name] += delta; }
  /// Snapshot-style overwrite, for mirroring an externally maintained
  /// counter (cache hit counts, transport totals).
  void set_counter(const std::string& name, std::uint64_t value) { counters_[name] = value; }
  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  // --- gauges --------------------------------------------------------------
  void set_gauge(const std::string& name, double value) { gauges_[name] = value; }
  [[nodiscard]] double gauge(const std::string& name) const {
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
  }

  // --- histograms ----------------------------------------------------------
  /// Created on first use with the default latency bounds; pass `bounds` to
  /// control them (only honored at creation).
  Histogram& histogram(const std::string& name) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) it = histograms_.emplace(name, Histogram{}).first;
    return it->second;
  }
  Histogram& histogram(const std::string& name, std::vector<double> bounds) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, Histogram{std::move(bounds)}).first;
    }
    return it->second;
  }
  void observe(const std::string& name, double value) { histogram(name).observe(value); }

  // --- time series ---------------------------------------------------------
  /// Created on first use with `window` (only honored at creation).
  TimeSeries& series(const std::string& name, sim::Duration window) {
    auto it = series_.find(name);
    if (it == series_.end()) it = series_.emplace(name, TimeSeries{window}).first;
    return it->second;
  }
  [[nodiscard]] const TimeSeries* find_series(const std::string& name) const {
    auto it = series_.find(name);
    return it == series_.end() ? nullptr : &it->second;
  }

  // --- iteration (deterministic: std::map order) ---------------------------
  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const { return counters_; }
  [[nodiscard]] const std::map<std::string, double>& gauges() const { return gauges_; }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const { return histograms_; }
  [[nodiscard]] const std::map<std::string, TimeSeries>& all_series() const { return series_; }

  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty() && series_.empty();
  }

  void clear() {
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
    series_.clear();
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, TimeSeries> series_;
};

}  // namespace mutsvc::stats

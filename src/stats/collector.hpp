#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "stats/summary.hpp"
#include "stats/timeseries.hpp"

namespace mutsvc::stats {

/// Identifies a client group the way the paper's tables do.
enum class ClientGroup { kLocal, kRemote };

[[nodiscard]] inline const char* to_string(ClientGroup g) {
  return g == ClientGroup::kLocal ? "Local" : "Remote";
}

/// Collects per-(page, group) and per-(usage-pattern, group) response
/// times, excluding a warm-up window — mirroring §3.3's methodology
/// ("each test ... preceded by several minutes of system warm-up").
class ResponseTimeCollector {
 public:
  explicit ResponseTimeCollector(sim::Duration warmup = sim::Duration::zero())
      : warmup_(warmup) {}

  void set_warmup(sim::Duration warmup) { warmup_ = warmup; }
  [[nodiscard]] sim::Duration warmup() const { return warmup_; }

  /// Stable key for a page within a usage pattern (the paper's tables list
  /// e.g. "Main" separately under Browser and Buyer).
  [[nodiscard]] static std::string page_key(const std::string& pattern, const std::string& page) {
    return pattern + "|" + page;
  }

  /// Records one completed page request.
  /// `pattern` is the service usage pattern (e.g. "Browser", "Buyer").
  void record(sim::SimTime completed_at, const std::string& page, const std::string& pattern,
              ClientGroup group, sim::Duration response_time) {
    if (completed_at < sim::SimTime::origin() + warmup_) {
      ++discarded_;
      return;
    }
    double ms = response_time.as_millis();
    if (observer_) observer_(ms);
    by_page_[{page_key(pattern, page), group}].add(ms);
    by_pattern_[{pattern, group}].add(ms);
    if (series_window_ > sim::Duration::zero()) {
      auto& ts = series_[group];
      if (ts == nullptr) ts = std::make_unique<TimeSeries>(series_window_);
      ts->add(completed_at, ms);
    }
  }

  /// Installs a hook invoked with every post-warm-up sample (milliseconds)
  /// as it is recorded — used to feed a MetricsRegistry latency histogram
  /// without the collector depending on the registry.
  void set_observer(std::function<void(double)> obs) { observer_ = std::move(obs); }

  /// Records one failed page request (availability / SLO accounting).
  /// Failures inside the warm-up window are discarded like samples.
  void record_failure(sim::SimTime at, const std::string& page, const std::string& pattern,
                      ClientGroup group) {
    (void)page;
    if (at < sim::SimTime::origin() + warmup_) {
      ++discarded_;
      return;
    }
    ++failures_;
    ++pattern_failures_[{pattern, group}];
  }

  [[nodiscard]] std::uint64_t failures() const { return failures_; }

  [[nodiscard]] std::uint64_t pattern_failures(const std::string& pattern,
                                               ClientGroup group) const {
    auto it = pattern_failures_.find({pattern, group});
    return it == pattern_failures_.end() ? 0 : it->second;
  }

  /// Records one page request refused up front by admission control — the
  /// distinct `rejected_admission` outcome. Intentional shedding, so it is
  /// counted apart from failures (which mean something broke). Rejections
  /// inside the warm-up window are discarded like samples.
  void record_rejection(sim::SimTime at, const std::string& page, const std::string& pattern,
                        ClientGroup group) {
    (void)page;
    if (at < sim::SimTime::origin() + warmup_) {
      ++discarded_;
      return;
    }
    ++rejections_;
    ++pattern_rejections_[{pattern, group}];
  }

  [[nodiscard]] std::uint64_t rejections() const { return rejections_; }

  [[nodiscard]] std::uint64_t pattern_rejections(const std::string& pattern,
                                                 ClientGroup group) const {
    auto it = pattern_rejections_.find({pattern, group});
    return it == pattern_rejections_.end() ? 0 : it->second;
  }

  /// Fraction of post-warmup requests that succeeded (1.0 when idle).
  [[nodiscard]] double success_fraction() const {
    const std::size_t ok = total_samples();
    const std::uint64_t total = ok + failures_;
    return total == 0 ? 1.0 : static_cast<double>(ok) / static_cast<double>(total);
  }

  /// Enables per-group windowed time series (response time over the run);
  /// used by the failure/recovery benchmarks. Call before the run.
  void enable_timeseries(sim::Duration window) { series_window_ = window; }

  [[nodiscard]] const TimeSeries* timeseries(ClientGroup group) const {
    auto it = series_.find(group);
    return it == series_.end() ? nullptr : it->second.get();
  }

  [[nodiscard]] const Summary* page_summary(const std::string& pattern, const std::string& page,
                                            ClientGroup group) const {
    auto it = by_page_.find({page_key(pattern, page), group});
    return it == by_page_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] const Summary* pattern_summary(const std::string& pattern,
                                               ClientGroup group) const {
    auto it = by_pattern_.find({pattern, group});
    return it == by_pattern_.end() ? nullptr : &it->second;
  }

  /// Mean in ms, or -1 if no samples (rendered as "-" by the reporters).
  [[nodiscard]] double page_mean_ms(const std::string& pattern, const std::string& page,
                                    ClientGroup group) const {
    const Summary* s = page_summary(pattern, page, group);
    return (s == nullptr || s->empty()) ? -1.0 : s->mean();
  }

  [[nodiscard]] double pattern_mean_ms(const std::string& pattern, ClientGroup group) const {
    const Summary* s = pattern_summary(pattern, group);
    return (s == nullptr || s->empty()) ? -1.0 : s->mean();
  }

  [[nodiscard]] std::size_t total_samples() const {
    std::size_t n = 0;
    for (const auto& [k, v] : by_page_) n += v.count();
    return n;
  }

  [[nodiscard]] std::size_t discarded_samples() const { return discarded_; }

  [[nodiscard]] std::vector<std::string> pages() const {
    std::vector<std::string> out;
    for (const auto& [k, v] : by_page_) {
      if (out.empty() || out.back() != k.first) out.push_back(k.first);
    }
    return out;
  }

 private:
  using Key = std::pair<std::string, ClientGroup>;
  sim::Duration warmup_;
  std::map<Key, Summary> by_page_;
  std::map<Key, Summary> by_pattern_;
  sim::Duration series_window_ = sim::Duration::zero();
  std::map<ClientGroup, std::unique_ptr<TimeSeries>> series_;
  std::size_t discarded_ = 0;
  std::uint64_t failures_ = 0;
  std::map<Key, std::uint64_t> pattern_failures_;
  std::uint64_t rejections_ = 0;
  std::map<Key, std::uint64_t> pattern_rejections_;
  std::function<void(double)> observer_;
};

}  // namespace mutsvc::stats

#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace mutsvc::stats {

/// Minimal fixed-width text-table writer used by the benchmark harness to
/// print paper-style result tables.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Renders a numeric cell the way the paper does: integral milliseconds,
  /// "-" when there is no data.
  [[nodiscard]] static std::string cell_ms(double ms) {
    if (ms < 0.0) return "-";
    std::ostringstream os;
    os << static_cast<long long>(ms + 0.5);
    return os.str();
  }

  [[nodiscard]] static std::string cell_fixed(double v, int digits) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << v;
    return os.str();
  }

  void print(std::ostream& os) const {
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    }
    print_row(os, header_, widths);
    std::size_t total = 0;
    for (auto w : widths) total += w + 3;
    os << std::string(total, '-') << "\n";
    for (const auto& row : rows_) print_row(os, row, widths);
  }

 private:
  static void print_row(std::ostream& os, const std::vector<std::string>& row,
                        const std::vector<std::size_t>& widths) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i])) << row[i];
      os << (i + 1 < widths.size() ? " | " : "");
    }
    os << "\n";
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mutsvc::stats

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace mutsvc::stats {

/// Where a request's time went. Categories are designed to be additive:
/// nested work (e.g. the server-side portion of an RMI call) is recorded
/// under its own category and excluded from the enclosing wire time, so the
/// per-kind totals of a traced request sum exactly to its response time.
enum class SpanKind : std::size_t {
  kHttpWire,    // TCP handshake + request/response transfer
  kQueueing,    // waiting for a container thread
  kCpu,         // method CPU demand (incl. CPU queueing)
  kLatency,     // non-CPU container residence (MethodDef::latency)
  kCacheRead,   // read-only / query-cache access
  kJdbc,        // database statements incl. wire and DB service time
  kRmiWire,     // wide/local-area RMI transfer time (server work excluded)
  kStub,        // JNDI home / remote stub acquisition
  kLockWait,    // entity lock contention
  kPush,        // blocking update propagation (§4.3)
  kPublish,     // async publish incl. staleness-bound stalls (§4.5)
  kCount_,
};

[[nodiscard]] constexpr const char* to_string(SpanKind k) {
  switch (k) {
    case SpanKind::kHttpWire: return "http-wire";
    case SpanKind::kQueueing: return "thread-queue";
    case SpanKind::kCpu: return "cpu";
    case SpanKind::kLatency: return "container";
    case SpanKind::kCacheRead: return "cache";
    case SpanKind::kJdbc: return "jdbc";
    case SpanKind::kRmiWire: return "rmi-wire";
    case SpanKind::kStub: return "stub";
    case SpanKind::kLockWait: return "lock-wait";
    case SpanKind::kPush: return "push";
    case SpanKind::kPublish: return "publish";
    case SpanKind::kCount_: break;
  }
  return "?";
}

/// One node of a request's causal tree: an interval on the simulated clock,
/// attributed to a category, linked to the span that was open when it
/// started. Node ids are raw topology indices (stats cannot depend on net).
struct Span {
  std::uint32_t id = 0;      // 1-based; 0 means "no span"
  std::uint32_t parent = 0;  // 0 = root
  SpanKind kind = SpanKind::kCount_;
  std::string label;
  std::uint32_t src = 0;  // node where the interval was observed
  std::uint32_t dst = 0;  // peer node for wire spans (== src otherwise)
  sim::SimTime start;
  sim::SimTime end;

  [[nodiscard]] sim::Duration duration() const { return end - start; }
};

/// Collects one traced request: flat per-category totals (the additive
/// breakdown the paper's Tables 6-7 narrative is built on) plus the
/// hierarchical span tree behind them. Pass a pointer into
/// Runtime::invoke / Experiment::execute_traced; a null sink disables
/// tracing with zero overhead.
///
/// The two views have distinct contracts:
///  - `add()` totals are *exclusive* and additive: `sum()` equals the traced
///    request's measured response time exactly (`conforms()`).
///  - spans are *inclusive* intervals (an rmi-wire span covers the nested
///    server work; its flat total does not), organized into a tree by the
///    begin/end stack — this is what renders as client -> edge -> main.
class TraceSink {
 public:
  // --- flat additive totals ------------------------------------------------
  void add(SpanKind kind, sim::Duration d) {
    totals_[static_cast<std::size_t>(kind)] += d;
  }

  [[nodiscard]] sim::Duration total(SpanKind kind) const {
    return totals_[static_cast<std::size_t>(kind)];
  }

  [[nodiscard]] sim::Duration sum() const {
    sim::Duration s = sim::Duration::zero();
    for (const auto& d : totals_) s += d;
    return s;
  }

  /// The additivity invariant: the exclusive totals of a traced request sum
  /// to exactly its measured response time (integer microseconds, no
  /// tolerance). bench_breakdown and traceview enforce this per page.
  [[nodiscard]] bool conforms(sim::Duration measured) const { return sum() == measured; }

  // --- span tree -----------------------------------------------------------
  /// Opens an inclusive span as a child of the currently open span and makes
  /// it the innermost open span. Returns its id (pass back to end_span).
  std::uint32_t begin_span(SpanKind kind, std::string label, std::uint32_t src,
                           std::uint32_t dst, sim::SimTime start) {
    const auto id = static_cast<std::uint32_t>(spans_.size() + 1);
    Span s;
    s.id = id;
    s.parent = open_.empty() ? 0 : open_.back();
    s.kind = kind;
    s.label = std::move(label);
    s.src = src;
    s.dst = dst;
    s.start = start;
    s.end = start;
    spans_.push_back(std::move(s));
    open_.push_back(id);
    return id;
  }

  /// Closes span `id` at `end`. Any still-open descendants (abandoned by an
  /// exception unwinding through their frames) are closed at the same time.
  void end_span(std::uint32_t id, sim::SimTime end) {
    while (!open_.empty()) {
      const std::uint32_t top = open_.back();
      open_.pop_back();
      spans_[top - 1].end = end;
      if (top == id) return;
    }
  }

  /// Records a complete child span of the currently open span, without
  /// touching the open stack. Tree-only: callers account the flat total
  /// separately (or not at all, for purely decorative children such as the
  /// per-edge pushes under the push umbrella).
  void leaf(SpanKind kind, std::string label, std::uint32_t src, std::uint32_t dst,
            sim::SimTime start, sim::SimTime end) {
    const auto id = static_cast<std::uint32_t>(spans_.size() + 1);
    Span s;
    s.id = id;
    s.parent = open_.empty() ? 0 : open_.back();
    s.kind = kind;
    s.label = std::move(label);
    s.src = src;
    s.dst = dst;
    s.start = start;
    s.end = end;
    spans_.push_back(std::move(s));
  }

  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] std::size_t open_span_count() const { return open_.size(); }

  /// Children of span `id` (0 = roots), in recording order.
  [[nodiscard]] std::vector<const Span*> children(std::uint32_t id) const {
    std::vector<const Span*> out;
    for (const Span& s : spans_) {
      if (s.parent == id) out.push_back(&s);
    }
    return out;
  }

  // --- identity ------------------------------------------------------------
  /// Deterministically assigned per traced request (a counter, never a
  /// random or wall-clock-derived value).
  void set_trace_id(std::uint64_t id) { trace_id_ = id; }
  [[nodiscard]] std::uint64_t trace_id() const { return trace_id_; }

  void clear() {
    totals_.fill(sim::Duration::zero());
    spans_.clear();
    open_.clear();
    trace_id_ = 0;
  }

 private:
  std::array<sim::Duration, static_cast<std::size_t>(SpanKind::kCount_)> totals_{};
  std::vector<Span> spans_;
  std::vector<std::uint32_t> open_;
  std::uint64_t trace_id_ = 0;
};

}  // namespace mutsvc::stats

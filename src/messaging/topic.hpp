#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "net/types.hpp"
#include "sim/task.hpp"
#include "stats/trace.hpp"

namespace mutsvc::msg {

/// A JMS-style publish/subscribe topic (§4.5).
///
/// The provider lives on a node (the paper hosts it with the main server).
/// `publish` delivers the message to the provider, then fans it out to every
/// subscriber asynchronously: the publisher's task completes as soon as the
/// provider has the message — subscribers receive it later, each paying the
/// network path from the provider to its own node plus a small MDB
/// dispatch delay. Per-subscriber delivery is FIFO (JMS topic ordering).
template <class T>
class Topic {
 public:
  using Handler = std::function<sim::Task<void>(const T&)>;

  Topic(net::Network& net, net::NodeId provider, std::string name,
        sim::Duration mdb_dispatch = sim::us(300))
      : net_(net), provider_(provider), name_(std::move(name)), mdb_dispatch_(mdb_dispatch) {}

  Topic(const Topic&) = delete;
  Topic& operator=(const Topic&) = delete;

  [[nodiscard]] net::NodeId provider_node() const { return provider_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Registers a message-driven subscriber at `node`.
  void subscribe(net::NodeId node, Handler handler) {
    subscribers_.push_back(std::make_unique<Subscriber>(Subscriber{node, std::move(handler), {}, false}));
  }

  [[nodiscard]] std::size_t subscriber_count() const { return subscribers_.size(); }

  /// Publishes a message of marshalled size `bytes`. Completes when the
  /// provider has accepted the message; fan-out continues in the background.
  /// A TraceSink (publisher-side only) gets a child span for the accept hop;
  /// the background drain never traces — the sink does not outlive the
  /// publishing request.
  [[nodiscard]] sim::Task<void> publish(net::NodeId from, T message, net::Bytes bytes,
                                        stats::TraceSink* trace = nullptr) {
    ++published_;
    const sim::SimTime t0 = net_.simulator().now();
    co_await net_.deliver(from, provider_, bytes);
    if (trace != nullptr) {
      trace->leaf(stats::SpanKind::kPublish, "jms:" + name_, from.value(), provider_.value(), t0,
                  net_.simulator().now());
    }
    auto shared = std::make_shared<const T>(std::move(message));
    for (auto& sub : subscribers_) {
      sub->queue.push_back(Pending{shared, bytes});
      if (!sub->draining) {
        sub->draining = true;
        net_.simulator().spawn(drain(*sub));
      }
    }
  }

  [[nodiscard]] std::uint64_t published() const { return published_; }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t delivery_retries() const { return delivery_retries_; }

  /// How long the provider waits before redelivering to a partitioned
  /// subscriber.
  void set_retry_interval(sim::Duration d) { retry_interval_ = d; }

  /// True when every published message has been handled by every subscriber.
  [[nodiscard]] bool quiescent() const {
    return delivered_ == published_ * subscribers_.size();
  }

  /// Messages accepted by the provider but not yet handled by every
  /// subscriber (in-flight dispatches included) — the topic's logical queue
  /// depth, fed into the metrics registry.
  [[nodiscard]] std::uint64_t pending() const {
    return published_ * subscribers_.size() - delivered_;
  }

  /// Sum of the per-subscriber provider-side queue lengths right now.
  [[nodiscard]] std::size_t queue_depth() const {
    std::size_t n = 0;
    for (const auto& sub : subscribers_) n += sub->queue.size();
    return n;
  }

 private:
  struct Pending {
    std::shared_ptr<const T> message;
    net::Bytes bytes;
  };
  struct Subscriber {
    net::NodeId node;
    Handler handler;
    std::vector<Pending> queue;
    bool draining = false;
  };

  [[nodiscard]] sim::Task<void> drain(Subscriber& sub) {
    while (!sub.queue.empty()) {
      // At-least-once delivery: on a network partition — or a message lost
      // by the fault injector — the provider holds the message and retries
      // until the subscriber receives it.
      // (co_await is illegal inside a catch block, hence the flag.)
      bool sent = false;
      try {
        co_await net_.deliver(provider_, sub.node, sub.queue.front().bytes);
        sent = true;
      } catch (const net::NetError&) {
        ++delivery_retries_;
      }
      if (!sent) {
        co_await net_.simulator().wait(retry_interval_);
        continue;
      }
      Pending p = std::move(sub.queue.front());
      sub.queue.erase(sub.queue.begin());
      co_await net_.simulator().wait(mdb_dispatch_);  // onMessage dispatch
      co_await sub.handler(*p.message);
      ++delivered_;
    }
    sub.draining = false;
  }

  net::Network& net_;
  net::NodeId provider_;
  std::string name_;
  sim::Duration mdb_dispatch_;
  std::vector<std::unique_ptr<Subscriber>> subscribers_;
  sim::Duration retry_interval_ = sim::sec(5);
  std::uint64_t published_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t delivery_retries_ = 0;
};

}  // namespace mutsvc::msg

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/flowcontrol.hpp"
#include "net/network.hpp"
#include "net/types.hpp"
#include "sim/simrace.hpp"
#include "sim/task.hpp"
#include "stats/trace.hpp"

namespace mutsvc::msg {

/// A JMS-style publish/subscribe topic (§4.5).
///
/// The provider lives on a node (the paper hosts it with the main server).
/// `publish` delivers the message to the provider, then fans it out to every
/// subscriber asynchronously: the publisher's task completes as soon as the
/// provider has the message — subscribers receive it later, each paying the
/// network path from the provider to its own node plus a small MDB
/// dispatch delay. Per-subscriber delivery is FIFO (JMS topic ordering).
///
/// Overload protection (opt-in via set_bound): each subscriber's provider-
/// side queue gets a capacity and an overflow policy — drop (terminal shed),
/// bounce (the publisher sees a retryable OverloadError before the message
/// is accepted), or local overflow (diverted into a per-subscriber spill
/// buffer, drained back once the queue falls to the low watermark; a full
/// spill buffer sheds). A credit gate over the backlog watermarks gives
/// upstream writers a backpressure signal (`credit_wait`). With no bound
/// installed every new branch is dead and the topic behaves exactly like
/// the unbounded original.
template <class T>
class Topic {
 public:
  using Handler = std::function<sim::Task<void>(const T&)>;

  Topic(net::Network& net, net::NodeId provider, std::string name,
        sim::Duration mdb_dispatch = sim::us(300))
      : net_(net),
        provider_(provider),
        name_(std::move(name)),
        mdb_dispatch_(mdb_dispatch),
        credit_(net_.simulator()) {}

  Topic(const Topic&) = delete;
  Topic& operator=(const Topic&) = delete;

  [[nodiscard]] net::NodeId provider_node() const { return provider_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Registers a message-driven subscriber at `node`. A subscriber only
  /// expects messages published from its subscribe time on — earlier
  /// traffic was never addressed to it.
  void subscribe(net::NodeId node, Handler handler) {
    subscribers_.push_back(std::make_unique<Subscriber>(node, std::move(handler)));
  }

  [[nodiscard]] std::size_t subscriber_count() const { return subscribers_.size(); }

  /// Bounds every subscriber queue with `b` (see class comment). With
  /// `backpressure` the credit gate tracks the bound's watermarks; without
  /// it the gate stays open forever and credit_wait() is free.
  void set_bound(const net::QueueBound& b, bool backpressure = false) {
    bound_ = b;
    backpressure_ = backpressure && b.bounded();
  }
  [[nodiscard]] const net::QueueBound& bound() const { return bound_; }

  /// Publishes a message of marshalled size `bytes`. Completes when the
  /// provider has accepted the message; fan-out continues in the background.
  /// Under OverflowPolicy::kBounce a provider with any subscriber queue at
  /// capacity refuses the message instead (OverloadError, retryable), after
  /// the network cost of reaching it was paid — like a JMS resource-limit
  /// rejection. A TraceSink (publisher-side only) gets a child span for the
  /// accept hop; the background drain never traces — the sink does not
  /// outlive the publishing request.
  [[nodiscard]] sim::Task<void> publish(net::NodeId from, T message, net::Bytes bytes,
                                        stats::TraceSink* trace = nullptr) {
    const sim::SimTime t0 = net_.simulator().now();
    co_await net_.deliver(from, provider_, bytes);
    if (trace != nullptr) {
      trace->leaf(stats::SpanKind::kPublish, "jms:" + name_, from.value(), provider_.value(), t0,
                  net_.simulator().now());
    }
    if (bound_.bounded() && bound_.policy == net::OverflowPolicy::kBounce) {
      for (const auto& sub : subscribers_) {
        if (sub->queue.size() >= bound_.capacity) {
          ++bounced_;
          throw net::OverloadError("Topic " + name_ + ": bounced, subscriber queue at capacity");
        }
      }
    }
    ++published_;
    // SimRace: everything below is synchronous (spawn is not a suspension
    // point) and mutates the provider-side queues — provider-owned state.
    simrace::NodeScope race_scope(provider_.value());
    if (simrace::enabled()) {
      simrace::on_state_access(provider_.value(), "topic:" + name_, /*is_write=*/true);
    }
    auto shared = std::make_shared<const T>(std::move(message));
    for (auto& sub : subscribers_) {
      ++sub->expected;
      // A non-empty spill also diverts arrivals: letting them into the main
      // queue would reorder them ahead of older spilled messages, breaking
      // per-subscriber FIFO.
      if (bound_.bounded() && (sub->queue.size() >= bound_.capacity || !sub->spill.empty())) {
        if (bound_.policy == net::OverflowPolicy::kLocalOverflow &&
            (bound_.spill_capacity == 0 || sub->spill.size() < bound_.spill_capacity)) {
          sub->spill.push_back(Pending{shared, bytes});
          ++spilled_;
        } else {
          ++sub->shed;  // kDrop, or the spill buffer itself is full
          ++shed_;
        }
      } else {
        sub->queue.push_back(Pending{shared, bytes});
      }
      if (!sub->draining && (!sub->queue.empty() || !sub->spill.empty())) {
        sub->draining = true;
        net_.simulator().spawn(drain(*sub));
      }
    }
    update_credit();
  }

  [[nodiscard]] std::uint64_t published() const { return published_; }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t delivery_retries() const { return delivery_retries_; }

  // --- overload accounting (all zero while unbounded) ----------------------
  // Conservation: publish attempts == published + bounced, and per topic
  // expected_deliveries == delivered + shed + pending (exact at any time).
  [[nodiscard]] std::uint64_t publish_attempts() const { return published_ + bounced_; }
  [[nodiscard]] std::uint64_t shed() const { return shed_; }
  [[nodiscard]] std::uint64_t bounced() const { return bounced_; }
  [[nodiscard]] std::uint64_t spilled() const { return spilled_; }
  /// Fan-out copies addressed to subscribers since their subscribe times.
  [[nodiscard]] std::uint64_t expected_deliveries() const {
    std::uint64_t n = 0;
    for (const auto& sub : subscribers_) n += sub->expected;
    return n;
  }
  [[nodiscard]] std::uint64_t credit_stalls() const { return credit_.stalls(); }
  [[nodiscard]] bool credit_open() const { return credit_.open(); }

  /// Backpressure hook for upstream writers: completes immediately while
  /// the gate is open (always, unless set_bound enabled backpressure).
  [[nodiscard]] sim::Task<void> credit_wait() { return credit_.wait(); }

  /// How long the provider waits before redelivering to a partitioned
  /// subscriber.
  void set_retry_interval(sim::Duration d) { retry_interval_ = d; }

  /// True when every message addressed to a subscriber has been handled by
  /// it (or terminally shed). Tracked per subscriber from its subscribe
  /// time, so a late subscriber does not make the topic permanently
  /// non-quiescent over messages that predate it.
  [[nodiscard]] bool quiescent() const {
    for (const auto& sub : subscribers_) {
      if (sub->expected != sub->delivered + sub->shed) return false;
    }
    return true;
  }

  /// Messages accepted by the provider but not yet handled by (or shed for)
  /// every subscriber (in-flight dispatches included) — the topic's logical
  /// queue depth, fed into the metrics registry.
  [[nodiscard]] std::uint64_t pending() const {
    std::uint64_t n = 0;
    for (const auto& sub : subscribers_) n += sub->expected - sub->delivered - sub->shed;
    return n;
  }

  /// Sum of the per-subscriber provider-side queue lengths right now.
  [[nodiscard]] std::size_t queue_depth() const {
    std::size_t n = 0;
    for (const auto& sub : subscribers_) n += sub->queue.size();
    return n;
  }

  /// Sum of the per-subscriber spill-buffer lengths right now.
  [[nodiscard]] std::size_t spill_depth() const {
    std::size_t n = 0;
    for (const auto& sub : subscribers_) n += sub->spill.size();
    return n;
  }

 private:
  struct Pending {
    std::shared_ptr<const T> message;
    net::Bytes bytes;
  };
  struct Subscriber {
    Subscriber(net::NodeId n, Handler h) : node(n), handler(std::move(h)) {}
    net::NodeId node;
    Handler handler;
    std::deque<Pending> queue;  // deque: the drain pops the front in O(1)
    std::deque<Pending> spill;  // kLocalOverflow buffer
    bool draining = false;
    std::uint64_t expected = 0;
    std::uint64_t delivered = 0;
    std::uint64_t shed = 0;
  };

  [[nodiscard]] sim::Task<void> drain(Subscriber& sub) {
    while (!sub.queue.empty() || !sub.spill.empty()) {
      // Low-watermark refill: spilled messages re-enter the main queue once
      // it has drained to the low watermark, preserving FIFO order.
      while (!sub.spill.empty() && sub.queue.size() <= bound_.low()) {
        sub.queue.push_back(std::move(sub.spill.front()));
        sub.spill.pop_front();
      }
      // At-least-once delivery: on a network partition — or a message lost
      // by the fault injector — the provider holds the message and retries
      // until the subscriber receives it.
      // (co_await is illegal inside a catch block, hence the flag.)
      bool sent = false;
      try {
        co_await net_.deliver(provider_, sub.node, sub.queue.front().bytes);
        sent = true;
      } catch (const net::NetError&) {
        ++delivery_retries_;
      }
      if (!sent) {
        co_await net_.simulator().wait(retry_interval_);
        continue;
      }
      Pending p = std::move(sub.queue.front());
      {
        // SimRace: the pop + credit update are a synchronous provider-side
        // section; the scope must not span the co_awaits below.
        simrace::NodeScope race_scope(provider_.value());
        if (simrace::enabled()) {
          simrace::on_state_access(provider_.value(), "topic:" + name_, /*is_write=*/true);
        }
        sub.queue.pop_front();
        update_credit();
      }
      co_await net_.simulator().wait(mdb_dispatch_);  // onMessage dispatch
      co_await sub.handler(*p.message);
      ++sub.delivered;
      ++delivered_;
    }
    sub.draining = false;
  }

  /// Hysteresis: any subscriber backlog (queue + spill) at/over the high
  /// watermark closes the credit gate; it reopens only once every backlog
  /// is at/under the low watermark.
  void update_credit() {
    if (!backpressure_) return;
    if (credit_.open()) {
      for (const auto& sub : subscribers_) {
        if (sub->queue.size() + sub->spill.size() >= bound_.high()) {
          credit_.close_gate();
          return;
        }
      }
    } else {
      for (const auto& sub : subscribers_) {
        if (sub->queue.size() + sub->spill.size() > bound_.low()) return;
      }
      credit_.open_gate();
    }
  }

  net::Network& net_;
  net::NodeId provider_;
  std::string name_;
  sim::Duration mdb_dispatch_;
  net::CreditGate credit_;
  net::QueueBound bound_;
  bool backpressure_ = false;
  std::vector<std::unique_ptr<Subscriber>> subscribers_;
  sim::Duration retry_interval_ = sim::sec(5);
  std::uint64_t published_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t delivery_retries_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t bounced_ = 0;
  std::uint64_t spilled_ = 0;
};

}  // namespace mutsvc::msg

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <stdexcept>
#include <vector>

#include "net/flowcontrol.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace mutsvc::msg {

/// Batched update coalescing (§4.5 extended for the sharded data tier):
/// writers enqueue items into per-lane buffers (one lane per shard topic);
/// every quantum, each lane's pending items are merged into one message and
/// flushed, so downstream publish cost scales with lanes × subscribers per
/// quantum instead of writes × subscribers.
///
/// The merge function must be last-write-wins *by version* for overlapping
/// keys — not by call order — so a flush (and a re-merge after a failed
/// flush) never rolls state back and never drops final state. The flusher
/// is a single lazily started simulation task; lanes flush in index order,
/// so the whole schedule is deterministic.
///
/// Overload protection (opt-in via set_bound): each lane tracks its logical
/// depth — items buffered since the last successful flush. At capacity an
/// arriving item is dropped, bounced (OverloadError to the writer, who
/// retries like any transient failure), or spilled into a per-lane overflow
/// buffer that re-merges into the lane after its next successful flush
/// (depth back at zero, i.e. under any low watermark). Unbounded lanes
/// (the default) behave exactly like the original.
template <class T>
class Coalescer {
 public:
  using Merge = std::function<void(T& into, T&& item)>;
  using Flush = std::function<sim::Task<void>(std::size_t lane, T merged)>;

  Coalescer(sim::Simulator& sim, std::size_t lanes, sim::Duration quantum, Merge merge,
            Flush flush)
      : sim_(sim),
        quantum_(quantum),
        merge_(std::move(merge)),
        flush_(std::move(flush)),
        pending_(lanes),
        dirty_(lanes, false),
        depth_(lanes, 0),
        spill_(lanes) {
    if (lanes == 0) throw std::invalid_argument("Coalescer: needs at least one lane");
    if (quantum_ <= sim::Duration::zero()) {
      throw std::invalid_argument("Coalescer: quantum must be positive");
    }
  }

  Coalescer(const Coalescer&) = delete;
  Coalescer& operator=(const Coalescer&) = delete;

  /// Bounds every lane's logical depth with `b` (see class comment).
  void set_bound(const net::QueueBound& b) { bound_ = b; }
  [[nodiscard]] const net::QueueBound& bound() const { return bound_; }

  /// Buffers `item` into `lane`'s current quantum; the item reaches the
  /// flush callback at the next quantum boundary, merged with everything
  /// else the lane accumulated. Starts the flusher lazily. A lane at
  /// capacity sheds / bounces / spills per the installed bound.
  void enqueue(std::size_t lane, T item) {
    if (bound_.bounded() && depth_.at(lane) >= bound_.capacity) {
      switch (bound_.policy) {
        case net::OverflowPolicy::kBounce:
          ++bounced_;
          throw net::OverloadError("Coalescer: lane " + std::to_string(lane) + " at capacity");
        case net::OverflowPolicy::kLocalOverflow:
          if (bound_.spill_capacity == 0 || spill_[lane].size() < bound_.spill_capacity) {
            spill_[lane].push_back(std::move(item));
            ++spilled_;
            ensure_running();
            return;
          }
          [[fallthrough]];  // spill buffer full: terminal shed
        case net::OverflowPolicy::kDrop:
          ++shed_;
          return;
      }
    }
    accept(lane, std::move(item));
    ensure_running();
  }

  [[nodiscard]] std::size_t lanes() const { return pending_.size(); }
  [[nodiscard]] sim::Duration quantum() const { return quantum_; }
  [[nodiscard]] std::uint64_t enqueued() const { return enqueued_; }
  [[nodiscard]] std::uint64_t merges() const { return merges_; }
  [[nodiscard]] std::uint64_t flushes() const { return flushes_; }
  [[nodiscard]] std::uint64_t flush_failures() const { return flush_failures_; }

  // --- overload accounting (all zero while unbounded) ----------------------
  // Conservation: every enqueue() call lands in exactly one of
  // enqueued (accepted into a lane) / spilled / shed / bounced, so
  // enqueue_attempts == enqueued + spilled + shed + bounced at any time.
  // Spilled items re-enter a lane after its next successful flush without
  // recounting as enqueued.
  [[nodiscard]] std::uint64_t enqueue_attempts() const {
    return enqueued_ + spilled_ + shed_ + bounced_;
  }
  [[nodiscard]] std::uint64_t shed() const { return shed_; }
  [[nodiscard]] std::uint64_t bounced() const { return bounced_; }
  [[nodiscard]] std::uint64_t spilled() const { return spilled_; }

  /// Items buffered in `lane` since its last successful flush (the
  /// watermarked quantity).
  [[nodiscard]] std::uint64_t lane_depth(std::size_t lane) const { return depth_.at(lane); }
  [[nodiscard]] std::uint64_t total_depth() const {
    std::uint64_t n = 0;
    for (std::uint64_t d : depth_) n += d;
    return n;
  }
  [[nodiscard]] std::size_t spill_depth() const {
    std::size_t n = 0;
    for (const auto& s : spill_) n += s.size();
    return n;
  }

  /// True when nothing is buffered (spill included) and no flush is in
  /// flight. The flusher task itself may still be parked on its quantum
  /// timer — that is idle.
  [[nodiscard]] bool idle() const {
    if (in_flight_ > 0) return false;
    for (bool d : dirty_) {
      if (d) return false;
    }
    for (const auto& s : spill_) {
      if (!s.empty()) return false;
    }
    return true;
  }

 private:
  /// `count_enqueued` is false when re-accepting a drained spill item: it
  /// was already counted as spilled, so counting it as enqueued too would
  /// break the conservation identity above.
  void accept(std::size_t lane, T item, bool count_enqueued = true) {
    if (count_enqueued) ++enqueued_;
    ++depth_[lane];
    if (dirty_.at(lane)) {
      ++merges_;
      merge_(pending_[lane], std::move(item));
    } else {
      pending_[lane] = std::move(item);
      dirty_[lane] = true;
    }
  }

  void ensure_running() {
    if (!running_) {
      running_ = true;
      sim_.spawn(run());
    }
  }

  [[nodiscard]] sim::Task<void> run() {
    while (true) {
      co_await sim_.wait(quantum_);
      bool flushed_any = false;
      for (std::size_t lane = 0; lane < pending_.size(); ++lane) {
        if (!dirty_[lane]) continue;
        flushed_any = true;
        T batch = std::move(pending_[lane]);
        pending_[lane] = T{};
        dirty_[lane] = false;
        const std::uint64_t batch_depth = depth_[lane];
        depth_[lane] = 0;
        ++flushes_;
        ++in_flight_;
        // The flush gets a copy so a failed flush can re-merge the batch
        // instead of dropping final state. (co_await is illegal in a catch
        // block, hence the flag.)
        bool ok = true;
        try {
          co_await flush_(lane, T{batch});
        } catch (...) {
          ok = false;
        }
        --in_flight_;
        if (!ok) {
          ++flush_failures_;
          // Re-merge under the version-monotonic merge: anything newer
          // enqueued during the failed flush wins over the old batch. The
          // batch's logical depth comes back with it.
          depth_[lane] += batch_depth;
          if (dirty_[lane]) {
            ++merges_;
            merge_(batch, std::move(pending_[lane]));
            pending_[lane] = std::move(batch);
          } else {
            pending_[lane] = std::move(batch);
            dirty_[lane] = true;
          }
        } else {
          // Successful flush: the lane is empty (at/under any low
          // watermark), so drain spilled items back in, up to capacity.
          while (!spill_[lane].empty() &&
                 (!bound_.bounded() || depth_[lane] < bound_.capacity)) {
            accept(lane, std::move(spill_[lane].front()), /*count_enqueued=*/false);
            spill_[lane].pop_front();
          }
        }
      }
      if (!flushed_any) {
        // A full quantum passed with nothing to do; stop until the next
        // enqueue restarts the task. No suspension point below, so no
        // enqueue can slip between this check and the return.
        running_ = false;
        co_return;
      }
    }
  }

  sim::Simulator& sim_;
  sim::Duration quantum_;
  Merge merge_;
  Flush flush_;
  std::vector<T> pending_;
  std::vector<bool> dirty_;
  std::vector<std::uint64_t> depth_;
  std::vector<std::deque<T>> spill_;
  net::QueueBound bound_;
  bool running_ = false;
  std::uint32_t in_flight_ = 0;
  std::uint64_t enqueued_ = 0;
  std::uint64_t merges_ = 0;
  std::uint64_t flushes_ = 0;
  std::uint64_t flush_failures_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t bounced_ = 0;
  std::uint64_t spilled_ = 0;
};

}  // namespace mutsvc::msg

#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace mutsvc::msg {

/// Batched update coalescing (§4.5 extended for the sharded data tier):
/// writers enqueue items into per-lane buffers (one lane per shard topic);
/// every quantum, each lane's pending items are merged into one message and
/// flushed, so downstream publish cost scales with lanes × subscribers per
/// quantum instead of writes × subscribers.
///
/// The merge function must be last-write-wins *by version* for overlapping
/// keys — not by call order — so a flush (and a re-merge after a failed
/// flush) never rolls state back and never drops final state. The flusher
/// is a single lazily started simulation task; lanes flush in index order,
/// so the whole schedule is deterministic.
template <class T>
class Coalescer {
 public:
  using Merge = std::function<void(T& into, T&& item)>;
  using Flush = std::function<sim::Task<void>(std::size_t lane, T merged)>;

  Coalescer(sim::Simulator& sim, std::size_t lanes, sim::Duration quantum, Merge merge,
            Flush flush)
      : sim_(sim),
        quantum_(quantum),
        merge_(std::move(merge)),
        flush_(std::move(flush)),
        pending_(lanes),
        dirty_(lanes, false) {
    if (lanes == 0) throw std::invalid_argument("Coalescer: needs at least one lane");
    if (quantum_ <= sim::Duration::zero()) {
      throw std::invalid_argument("Coalescer: quantum must be positive");
    }
  }

  Coalescer(const Coalescer&) = delete;
  Coalescer& operator=(const Coalescer&) = delete;

  /// Buffers `item` into `lane`'s current quantum; the item reaches the
  /// flush callback at the next quantum boundary, merged with everything
  /// else the lane accumulated. Starts the flusher lazily.
  void enqueue(std::size_t lane, T item) {
    ++enqueued_;
    if (dirty_.at(lane)) {
      ++merges_;
      merge_(pending_[lane], std::move(item));
    } else {
      pending_[lane] = std::move(item);
      dirty_[lane] = true;
    }
    if (!running_) {
      running_ = true;
      sim_.spawn(run());
    }
  }

  [[nodiscard]] std::size_t lanes() const { return pending_.size(); }
  [[nodiscard]] sim::Duration quantum() const { return quantum_; }
  [[nodiscard]] std::uint64_t enqueued() const { return enqueued_; }
  [[nodiscard]] std::uint64_t merges() const { return merges_; }
  [[nodiscard]] std::uint64_t flushes() const { return flushes_; }
  [[nodiscard]] std::uint64_t flush_failures() const { return flush_failures_; }

  /// True when nothing is buffered and no flush is in flight. The flusher
  /// task itself may still be parked on its quantum timer — that is idle.
  [[nodiscard]] bool idle() const {
    if (in_flight_ > 0) return false;
    for (bool d : dirty_) {
      if (d) return false;
    }
    return true;
  }

 private:
  [[nodiscard]] sim::Task<void> run() {
    while (true) {
      co_await sim_.wait(quantum_);
      bool flushed_any = false;
      for (std::size_t lane = 0; lane < pending_.size(); ++lane) {
        if (!dirty_[lane]) continue;
        flushed_any = true;
        T batch = std::move(pending_[lane]);
        pending_[lane] = T{};
        dirty_[lane] = false;
        ++flushes_;
        ++in_flight_;
        // The flush gets a copy so a failed flush can re-merge the batch
        // instead of dropping final state. (co_await is illegal in a catch
        // block, hence the flag.)
        bool ok = true;
        try {
          co_await flush_(lane, T{batch});
        } catch (...) {
          ok = false;
        }
        --in_flight_;
        if (!ok) {
          ++flush_failures_;
          // Re-merge under the version-monotonic merge: anything newer
          // enqueued during the failed flush wins over the old batch.
          if (dirty_[lane]) {
            ++merges_;
            merge_(batch, std::move(pending_[lane]));
            pending_[lane] = std::move(batch);
          } else {
            pending_[lane] = std::move(batch);
            dirty_[lane] = true;
          }
        }
      }
      if (!flushed_any) {
        // A full quantum passed with nothing to do; stop until the next
        // enqueue restarts the task. No suspension point below, so no
        // enqueue can slip between this check and the return.
        running_ = false;
        co_return;
      }
    }
  }

  sim::Simulator& sim_;
  sim::Duration quantum_;
  Merge merge_;
  Flush flush_;
  std::vector<T> pending_;
  std::vector<bool> dirty_;
  bool running_ = false;
  std::uint32_t in_flight_ = 0;
  std::uint64_t enqueued_ = 0;
  std::uint64_t merges_ = 0;
  std::uint64_t flushes_ = 0;
  std::uint64_t flush_failures_ = 0;
};

}  // namespace mutsvc::msg

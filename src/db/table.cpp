#include "db/table.hpp"

#include <iterator>

namespace mutsvc::db {

Table::Table(std::string name, std::vector<Column> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("Table: needs at least one column");
  if (columns_[0].type != ColumnType::kInt) {
    throw std::invalid_argument("Table: primary key (column 0) must be integer");
  }
}

std::size_t Table::column_index(const std::string& col) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == col) return i;
  }
  throw std::invalid_argument("Table " + name_ + ": no column " + col);
}

void Table::create_index(const std::string& col) {
  std::size_t ci = column_index(col);
  auto& idx = indexes_[col];
  idx.clear();
  for (const auto& [pk, row] : rows_) idx.emplace(row[ci], IndexEntry{pk, &row});
}

bool Table::has_index(const std::string& col) const { return indexes_.contains(col); }

void Table::insert(Row row) {
  if (row.size() != columns_.size()) {
    throw std::invalid_argument("Table " + name_ + ": wrong arity on insert");
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (!matches_type(row[i], columns_[i].type)) {
      throw std::invalid_argument("Table " + name_ + ": type mismatch in column " +
                                  columns_[i].name);
    }
  }
  std::int64_t pk = as_int(row[0]);
  if (rows_.contains(pk)) {
    throw std::invalid_argument("Table " + name_ + ": duplicate primary key");
  }
  // Store first, then index: the index holds pointers into the stored row.
  auto [it, inserted] = rows_.emplace(pk, std::move(row));
  index_row(it->second, pk);
}

void Table::update(std::int64_t pk, Row row) {
  auto it = rows_.find(pk);
  if (it == rows_.end()) throw std::out_of_range("Table " + name_ + ": update of missing row");
  if (row.size() != columns_.size()) {
    throw std::invalid_argument("Table " + name_ + ": wrong arity on update");
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (!matches_type(row[i], columns_[i].type)) {
      throw std::invalid_argument("Table " + name_ + ": type mismatch in column " +
                                  columns_[i].name);
    }
  }
  if (as_int(row[0]) != pk) {
    throw std::invalid_argument("Table " + name_ + ": update must not change primary key");
  }
  unindex_row(it->second, pk);
  it->second = std::move(row);
  index_row(it->second, pk);
}

void Table::update_column(std::int64_t pk, const std::string& col, Value v) {
  auto it = rows_.find(pk);
  if (it == rows_.end()) throw std::out_of_range("Table " + name_ + ": update of missing row");
  std::size_t ci = column_index(col);
  if (ci == 0) throw std::invalid_argument("Table " + name_ + ": cannot update primary key");
  if (!matches_type(v, columns_[ci].type)) {
    throw std::invalid_argument("Table " + name_ + ": type mismatch in column " + col);
  }
  unindex_row(it->second, pk);
  it->second[ci] = std::move(v);
  index_row(it->second, pk);
}

bool Table::erase(std::int64_t pk) {
  auto it = rows_.find(pk);
  if (it == rows_.end()) return false;
  unindex_row(it->second, pk);
  rows_.erase(it);
  return true;
}

std::optional<Row> Table::get(std::int64_t pk) const {
  auto it = rows_.find(pk);
  if (it == rows_.end()) return std::nullopt;
  return it->second;
}

std::vector<Row> Table::find_equal(const std::string& col, const Value& v) const {
  std::vector<Row> out;
  auto idx_it = indexes_.find(col);
  if (idx_it != indexes_.end()) {
    auto [lo, hi] = idx_it->second.equal_range(v);
    out.reserve(static_cast<std::size_t>(std::distance(lo, hi)));
    for (auto it = lo; it != hi; ++it) out.push_back(*it->second.row);
    return out;
  }
  std::size_t ci = column_index(col);
  for (const auto& [pk, row] : rows_) {
    if (row[ci] == v) out.push_back(row);
  }
  return out;
}

std::vector<Row> Table::scan(const std::function<bool(const Row&)>& predicate) const {
  std::vector<Row> out;
  for (const auto& [pk, row] : rows_) {
    if (predicate(row)) out.push_back(row);
  }
  return out;
}

std::int64_t Table::approx_row_bytes() const {
  if (rows_.empty()) return 64;
  std::int64_t total = 0;
  std::size_t sampled = 0;
  for (const auto& [pk, row] : rows_) {
    total += wire_size(row);
    if (++sampled >= 16) break;
  }
  return total / static_cast<std::int64_t>(sampled);
}

void Table::index_row(const Row& row, std::int64_t pk) {
  for (auto& [col, idx] : indexes_) {
    idx.emplace(row[column_index(col)], IndexEntry{pk, &row});
  }
}

void Table::unindex_row(const Row& row, std::int64_t pk) {
  for (auto& [col, idx] : indexes_) {
    auto [lo, hi] = idx.equal_range(row[column_index(col)]);
    for (auto it = lo; it != hi; ++it) {
      if (it->second.pk == pk) {
        idx.erase(it);
        break;
      }
    }
  }
}

}  // namespace mutsvc::db

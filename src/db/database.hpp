#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/query.hpp"
#include "db/shard.hpp"
#include "db/table.hpp"
#include "net/topology.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace mutsvc::db {

/// Per-query-kind service demands on the database server's CPUs.
///
/// Defaults are calibrated so the reproduced *centralized local* column of
/// Tables 6/7 lands near the paper's; see core/calibration.hpp.
struct DbCostModel {
  sim::Duration pk_lookup = sim::us(400);
  sim::Duration finder_base = sim::ms(1.0);
  sim::Duration finder_per_row = sim::us(25);
  sim::Duration aggregate_base = sim::ms(2.5);
  sim::Duration aggregate_per_row = sim::us(50);
  sim::Duration keyword_base = sim::ms(6.0);
  sim::Duration keyword_per_row = sim::us(40);
  sim::Duration update = sim::ms(1.2);
  sim::Duration insert = sim::ms(1.2);
  sim::Duration del = sim::ms(1.0);
};

/// The relational database tier (Oracle/MySQL stand-in, §3.1) — one logical
/// database served by one or more shard nodes.
///
/// Tables stay logically unified (queries see every row, so results are
/// independent of the shard count), while service time and result traffic
/// are attributed to the shard nodes that own the touched rows: the
/// ShardRouter hash-partitions each table's primary-key space, primary-key
/// operations run entirely on the owning shard, and scan-class queries
/// (finders, aggregates, keyword searches) fan out to every shard in
/// parallel, each shard paying for its slice of the result. With one shard
/// this collapses exactly to the paper's single-RDBMS testbed.
class Database {
 public:
  using AggregateFn = std::function<std::vector<Row>(Database&, const std::vector<Value>&)>;

  Database(net::Topology& topo, net::NodeId home, DbCostModel cost = {})
      : Database(topo, std::vector<net::NodeId>{home}, cost) {}

  Database(net::Topology& topo, std::vector<net::NodeId> homes, DbCostModel cost = {})
      : topo_(topo), homes_(std::move(homes)), cost_(cost), router_(homes_.size()) {
    if (homes_.empty()) throw std::invalid_argument("Database: needs at least one shard node");
  }

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Shard 0's node — the coordinator, and with one shard the single RDBMS.
  [[nodiscard]] net::NodeId home_node() const { return homes_.front(); }
  [[nodiscard]] const DbCostModel& cost_model() const { return cost_; }
  [[nodiscard]] const ShardRouter& router() const { return router_; }
  [[nodiscard]] std::size_t shard_count() const { return homes_.size(); }
  [[nodiscard]] net::NodeId shard_node(std::size_t shard) const { return homes_.at(shard); }

  Table& create_table(std::string name, std::vector<Column> columns);
  [[nodiscard]] Table& table(const std::string& name);
  [[nodiscard]] const Table& table(const std::string& name) const;
  [[nodiscard]] bool has_table(const std::string& name) const { return tables_.contains(name); }

  /// Registers a named aggregate query (the stand-in for app-specific SQL).
  void register_aggregate(std::string name, AggregateFn fn);

  /// Executes with simulated service time on the owning shard's CPUs —
  /// all shards in parallel for fan-out kinds.
  /// NOTE: coroutine — `q` by value (lazy task must own its query).
  [[nodiscard]] sim::Task<QueryResult> execute(Query q);

  /// Executes instantly (no simulated cost) — for population and tests.
  QueryResult execute_immediate(const Query& q);

  /// The shard that exclusively serves `q` (primary-key kinds route by the
  /// key's owner; every kind with one shard), or nullopt for cross-shard
  /// fan-out kinds.
  [[nodiscard]] std::optional<std::size_t> single_shard(const Query& q) const;

  /// One shard's share of a fan-out result: its row count and wire bytes.
  struct ShardSlice {
    std::size_t rows = 0;
    net::Bytes bytes = 0;
  };

  /// Partitions a result across shards, attributing each row to the shard
  /// owning its primary key (synthetic rows without an integer key column
  /// round-robin deterministically by index). Sized shard_count().
  [[nodiscard]] std::vector<ShardSlice> partition_result(const QueryResult& res) const;

  /// The service demand `q` would incur given its result size.
  [[nodiscard]] sim::Duration cost_of(const Query& q, std::size_t result_rows) const;

  /// Charges one shard the service demand of its slice of `q` — the JDBC
  /// scatter-gather legs bill each shard's CPU through this.
  /// NOTE: coroutine — parameters by value.
  [[nodiscard]] sim::Task<void> consume_shard(std::size_t shard, Query q, std::size_t rows);

  /// Allocates the next primary key for `table` (sequence stand-in).
  [[nodiscard]] std::int64_t allocate_id(const std::string& name) {
    auto [it, inserted] = sequences_.try_emplace(name, table(name).max_pk());
    return ++it->second;
  }

  [[nodiscard]] std::uint64_t queries_executed() const { return executed_; }
  [[nodiscard]] std::uint64_t writes_executed() const { return writes_; }
  /// Logical statements that fanned out to more than one shard.
  [[nodiscard]] std::uint64_t cross_shard_queries() const { return cross_shard_; }

 private:
  /// Charges every shard its slice of the fan-out service demand, in
  /// parallel. Accepts the slices by value (coroutine).
  [[nodiscard]] sim::Task<void> consume_fanout(Query q, std::vector<ShardSlice> slices);

  net::Topology& topo_;
  std::vector<net::NodeId> homes_;
  DbCostModel cost_;
  ShardRouter router_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, AggregateFn> aggregates_;
  std::unordered_map<std::string, std::int64_t> sequences_;
  std::uint64_t executed_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t cross_shard_ = 0;
};

}  // namespace mutsvc::db

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "db/query.hpp"
#include "db/table.hpp"
#include "net/topology.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace mutsvc::db {

/// Per-query-kind service demands on the database server's CPUs.
///
/// Defaults are calibrated so the reproduced *centralized local* column of
/// Tables 6/7 lands near the paper's; see core/calibration.hpp.
struct DbCostModel {
  sim::Duration pk_lookup = sim::us(400);
  sim::Duration finder_base = sim::ms(1.0);
  sim::Duration finder_per_row = sim::us(25);
  sim::Duration aggregate_base = sim::ms(2.5);
  sim::Duration aggregate_per_row = sim::us(50);
  sim::Duration keyword_base = sim::ms(6.0);
  sim::Duration keyword_per_row = sim::us(40);
  sim::Duration update = sim::ms(1.2);
  sim::Duration insert = sim::ms(1.2);
  sim::Duration del = sim::ms(1.0);
};

/// The relational database server (Oracle/MySQL stand-in, §3.1).
///
/// Executes queries against in-memory tables, charging the configured
/// service demand to the CPU pool of the node it lives on. The paper's
/// testbed kept DB utilization under 5%; tests assert ours does too.
class Database {
 public:
  using AggregateFn = std::function<std::vector<Row>(Database&, const std::vector<Value>&)>;

  Database(net::Topology& topo, net::NodeId home, DbCostModel cost = {})
      : topo_(topo), home_(home), cost_(cost) {}

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  [[nodiscard]] net::NodeId home_node() const { return home_; }
  [[nodiscard]] const DbCostModel& cost_model() const { return cost_; }

  Table& create_table(std::string name, std::vector<Column> columns);
  [[nodiscard]] Table& table(const std::string& name);
  [[nodiscard]] const Table& table(const std::string& name) const;
  [[nodiscard]] bool has_table(const std::string& name) const { return tables_.contains(name); }

  /// Registers a named aggregate query (the stand-in for app-specific SQL).
  void register_aggregate(std::string name, AggregateFn fn);

  /// Executes with simulated service time on the DB node's CPUs.
  /// NOTE: coroutine — `q` by value (lazy task must own its query).
  [[nodiscard]] sim::Task<QueryResult> execute(Query q);

  /// Executes instantly (no simulated cost) — for population and tests.
  QueryResult execute_immediate(const Query& q);

  /// The service demand `q` would incur given its result size.
  [[nodiscard]] sim::Duration cost_of(const Query& q, std::size_t result_rows) const;

  /// Allocates the next primary key for `table` (sequence stand-in).
  [[nodiscard]] std::int64_t allocate_id(const std::string& name) {
    auto [it, inserted] = sequences_.try_emplace(name, table(name).max_pk());
    return ++it->second;
  }

  [[nodiscard]] std::uint64_t queries_executed() const { return executed_; }
  [[nodiscard]] std::uint64_t writes_executed() const { return writes_; }

 private:
  net::Topology& topo_;
  net::NodeId home_;
  DbCostModel cost_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, AggregateFn> aggregates_;
  std::unordered_map<std::string, std::int64_t> sequences_;
  std::uint64_t executed_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace mutsvc::db

#include "db/database.hpp"

#include <stdexcept>

namespace mutsvc::db {

Table& Database::create_table(std::string name, std::vector<Column> columns) {
  auto [it, inserted] =
      tables_.emplace(name, std::make_unique<Table>(name, std::move(columns)));
  if (!inserted) throw std::invalid_argument("Database: table exists: " + name);
  return *it->second;
}

Table& Database::table(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) throw std::invalid_argument("Database: no table " + name);
  return *it->second;
}

const Table& Database::table(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) throw std::invalid_argument("Database: no table " + name);
  return *it->second;
}

void Database::register_aggregate(std::string name, AggregateFn fn) {
  aggregates_[std::move(name)] = std::move(fn);
}

QueryResult Database::execute_immediate(const Query& q) {
  ++executed_;
  QueryResult res;
  switch (q.kind) {
    case QueryKind::kPkLookup: {
      if (auto row = table(q.table).get(q.pk)) res.rows.push_back(std::move(*row));
      break;
    }
    case QueryKind::kFinder: {
      res.rows = table(q.table).find_equal(q.column, q.value);
      break;
    }
    case QueryKind::kAggregate: {
      auto it = aggregates_.find(q.aggregate_name);
      if (it == aggregates_.end()) {
        throw std::invalid_argument("Database: no aggregate " + q.aggregate_name);
      }
      res.rows = it->second(*this, q.params);
      break;
    }
    case QueryKind::kKeywordSearch: {
      Table& t = table(q.table);
      std::size_t ci = t.column_index(q.column);
      res.rows = t.scan([&](const Row& r) {
        return std::holds_alternative<std::string>(r[ci]) &&
               std::get<std::string>(r[ci]).find(q.keyword) != std::string::npos;
      });
      break;
    }
    case QueryKind::kUpdate: {
      ++writes_;
      table(q.table).update_column(q.pk, q.column, q.value);
      res.affected = 1;
      break;
    }
    case QueryKind::kInsert: {
      ++writes_;
      table(q.table).insert(q.row);
      res.affected = 1;
      break;
    }
    case QueryKind::kDelete: {
      ++writes_;
      res.affected = table(q.table).erase(q.pk) ? 1 : 0;
      break;
    }
  }
  return res;
}

sim::Duration Database::cost_of(const Query& q, std::size_t result_rows) const {
  const auto n = static_cast<double>(result_rows);
  switch (q.kind) {
    case QueryKind::kPkLookup: return cost_.pk_lookup;
    case QueryKind::kFinder: return cost_.finder_base + cost_.finder_per_row * n;
    case QueryKind::kAggregate: return cost_.aggregate_base + cost_.aggregate_per_row * n;
    case QueryKind::kKeywordSearch: return cost_.keyword_base + cost_.keyword_per_row * n;
    case QueryKind::kUpdate: return cost_.update;
    case QueryKind::kInsert: return cost_.insert;
    case QueryKind::kDelete: return cost_.del;
  }
  return sim::Duration::zero();
}

sim::Task<QueryResult> Database::execute(Query q) {
  QueryResult res = execute_immediate(q);
  co_await topo_.node(home_).cpu->consume(cost_of(q, res.rows.size()));
  co_return res;
}

}  // namespace mutsvc::db

#include "db/database.hpp"

#include <stdexcept>

#include "sim/future.hpp"

namespace mutsvc::db {

Table& Database::create_table(std::string name, std::vector<Column> columns) {
  auto [it, inserted] =
      tables_.emplace(name, std::make_unique<Table>(name, std::move(columns)));
  if (!inserted) throw std::invalid_argument("Database: table exists: " + name);
  return *it->second;
}

Table& Database::table(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) throw std::invalid_argument("Database: no table " + name);
  return *it->second;
}

const Table& Database::table(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) throw std::invalid_argument("Database: no table " + name);
  return *it->second;
}

void Database::register_aggregate(std::string name, AggregateFn fn) {
  aggregates_[std::move(name)] = std::move(fn);
}

QueryResult Database::execute_immediate(const Query& q) {
  ++executed_;
  QueryResult res;
  switch (q.kind) {
    case QueryKind::kPkLookup: {
      if (auto row = table(q.table).get(q.pk)) res.rows.push_back(std::move(*row));
      break;
    }
    case QueryKind::kFinder: {
      res.rows = table(q.table).find_equal(q.column, q.value);
      break;
    }
    case QueryKind::kAggregate: {
      auto it = aggregates_.find(q.aggregate_name);
      if (it == aggregates_.end()) {
        throw std::invalid_argument("Database: no aggregate " + q.aggregate_name);
      }
      res.rows = it->second(*this, q.params);
      break;
    }
    case QueryKind::kKeywordSearch: {
      Table& t = table(q.table);
      std::size_t ci = t.column_index(q.column);
      res.rows = t.scan([&](const Row& r) {
        return std::holds_alternative<std::string>(r[ci]) &&
               std::get<std::string>(r[ci]).find(q.keyword) != std::string::npos;
      });
      break;
    }
    case QueryKind::kUpdate: {
      ++writes_;
      table(q.table).update_column(q.pk, q.column, q.value);
      res.affected = 1;
      break;
    }
    case QueryKind::kInsert: {
      ++writes_;
      table(q.table).insert(q.row);
      res.affected = 1;
      break;
    }
    case QueryKind::kDelete: {
      ++writes_;
      res.affected = table(q.table).erase(q.pk) ? 1 : 0;
      break;
    }
  }
  return res;
}

sim::Duration Database::cost_of(const Query& q, std::size_t result_rows) const {
  const auto n = static_cast<double>(result_rows);
  switch (q.kind) {
    case QueryKind::kPkLookup: return cost_.pk_lookup;
    case QueryKind::kFinder: return cost_.finder_base + cost_.finder_per_row * n;
    case QueryKind::kAggregate: return cost_.aggregate_base + cost_.aggregate_per_row * n;
    case QueryKind::kKeywordSearch: return cost_.keyword_base + cost_.keyword_per_row * n;
    case QueryKind::kUpdate: return cost_.update;
    case QueryKind::kInsert: return cost_.insert;
    case QueryKind::kDelete: return cost_.del;
  }
  return sim::Duration::zero();
}

std::optional<std::size_t> Database::single_shard(const Query& q) const {
  if (homes_.size() == 1) return 0;
  switch (q.kind) {
    case QueryKind::kPkLookup:
    case QueryKind::kUpdate:
    case QueryKind::kDelete:
      return router_.shard_of(q.pk);
    case QueryKind::kInsert:
      // The inserted row's first column is its primary key (Table::insert
      // enforces this) — the row lands on, and is paid for by, its owner.
      return router_.shard_of(as_int(q.row.at(0)));
    case QueryKind::kFinder:
    case QueryKind::kAggregate:
    case QueryKind::kKeywordSearch:
      return std::nullopt;  // scan class: every shard scans its partition
  }
  return std::nullopt;
}

std::vector<Database::ShardSlice> Database::partition_result(const QueryResult& res) const {
  std::vector<ShardSlice> slices(homes_.size());
  for (std::size_t i = 0; i < res.rows.size(); ++i) {
    const Row& r = res.rows[i];
    // Rows keyed by an integer first column belong to that key's owner;
    // synthetic aggregate rows (no key column) round-robin by index so the
    // attribution stays deterministic and balanced.
    const std::size_t s = (!r.empty() && std::holds_alternative<std::int64_t>(r[0]))
                              ? router_.shard_of(std::get<std::int64_t>(r[0]))
                              : i % homes_.size();
    slices[s].rows += 1;
    slices[s].bytes += wire_size(r);
  }
  for (ShardSlice& s : slices) s.bytes += 16;  // per-shard result envelope
  return slices;
}

sim::Task<void> Database::consume_shard(std::size_t shard, Query q, std::size_t rows) {
  co_await topo_.node(homes_.at(shard)).cpu->consume(cost_of(q, rows));
}

sim::Task<void> Database::consume_fanout(Query q, std::vector<ShardSlice> slices) {
  // Every shard scans its own partition concurrently: each pays the
  // per-kind base plus the per-row cost of its slice, so the fan-out's
  // latency is governed by the largest slice while the *total* service
  // demand per shard node shrinks as shards are added.
  std::vector<sim::Task<void>> legs;
  legs.reserve(slices.size());
  for (std::size_t s = 0; s < slices.size(); ++s) {
    legs.push_back(consume_shard(s, q, slices[s].rows));
  }
  co_await sim::when_all(topo_.simulator(), std::move(legs));
}

sim::Task<QueryResult> Database::execute(Query q) {
  QueryResult res = execute_immediate(q);
  if (std::optional<std::size_t> shard = single_shard(q)) {
    co_await topo_.node(homes_[*shard]).cpu->consume(cost_of(q, res.rows.size()));
    co_return res;
  }
  ++cross_shard_;
  co_await consume_fanout(q, partition_result(res));
  co_return res;
}

}  // namespace mutsvc::db

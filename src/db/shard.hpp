#pragma once

#include <cstdint>
#include <stdexcept>

namespace mutsvc::db {

/// Deterministic hash partitioning of primary-key space across N database
/// shards (the scale-out data tier; RAFDA's "where data lives is a
/// deployment-time decision" applied to the RDBMS itself).
///
/// The mapping is a pure function of (key, shard_count): the same key maps
/// to the same shard in every run, every process, every platform — the
/// property the shard battery's determinism suite pins down. The hash is a
/// splitmix64 finalizer, so consecutive keys spread uniformly instead of
/// striping (pk % N would put every Nth row on one shard and make the
/// "hot tail" of freshly inserted rows collide).
class ShardRouter {
 public:
  explicit ShardRouter(std::size_t shard_count) : shards_(shard_count) {
    if (shard_count == 0) throw std::invalid_argument("ShardRouter: shard_count must be > 0");
  }

  [[nodiscard]] std::size_t shard_count() const { return shards_; }
  [[nodiscard]] bool single() const { return shards_ == 1; }

  [[nodiscard]] std::size_t shard_of(std::int64_t pk) const {
    if (shards_ == 1) return 0;
    return static_cast<std::size_t>(mix(static_cast<std::uint64_t>(pk)) %
                                    static_cast<std::uint64_t>(shards_));
  }

 private:
  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  std::size_t shards_;
};

}  // namespace mutsvc::db

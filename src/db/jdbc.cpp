#include "db/jdbc.hpp"

#include <stdexcept>

#include "sim/future.hpp"

namespace mutsvc::db {

sim::Task<QueryResult> JdbcClient::execute(Query q) {
  ++statements_;
  if (std::optional<std::size_t> shard = db_.single_shard(q)) {
    co_return co_await execute_at_shard(std::move(q), *shard);
  }
  // Scatter-gather: the logical query runs once (results are identical to a
  // single-shard run), while each shard's leg pays its own connection,
  // query round trip, slice of the service demand, and slice of the result
  // traffic — all legs in flight concurrently, joined in shard order.
  ++cross_shard_statements_;
  // The scatter's logical execution reads the data tier synchronously in
  // the calling context, so under the windowed parallel executor it is only
  // legal from the data tier's own lookahead domain (the main island). A
  // deterministic configuration check, never a scheduling race — scans are
  // issued at the main server on every ladder rung.
  if (net_.simulator().windowed() &&
      net_.simulator().current_domain() != net_.domain_of(db_.shard_node(0))) {
    throw std::logic_error(
        "JdbcClient: cross-shard scatter from a foreign lookahead domain is not "
        "supported under MUTSVC_PAR_DOMAINS; route scan-class statements through "
        "the main server");
  }
  QueryResult res = db_.execute_immediate(q);
  std::vector<Database::ShardSlice> slices = db_.partition_result(res);
  std::vector<sim::Task<void>> legs;
  legs.reserve(slices.size());
  for (std::size_t s = 0; s < slices.size(); ++s) {
    legs.push_back(shard_leg(s, q, slices[s]));
  }
  co_await sim::when_all(net_.simulator(), std::move(legs));
  co_return res;
}

sim::Task<QueryResult> JdbcClient::execute_at_shard(Query q, std::size_t shard) {
  const net::NodeId server = db_.shard_node(shard);

  bool have_connection = cfg_.pool_connections && pooled_available_[shard] > 0;
  if (have_connection) {
    --pooled_available_[shard];
  } else {
    ++connections_opened_;
    co_await net_.deliver(client_, server, cfg_.connect_bytes);
    co_await net_.deliver(server, client_, cfg_.connect_bytes);
  }

  co_await net_.deliver(client_, server, cfg_.query_bytes);
  QueryResult res = co_await db_.execute(q);
  co_await fetch_result(server, res.rows.size(), res.wire_bytes());

  if (cfg_.pool_connections) ++pooled_available_[shard];
  co_return res;
}

sim::Task<void> JdbcClient::shard_leg(std::size_t shard, Query q, Database::ShardSlice slice) {
  const net::NodeId server = db_.shard_node(shard);

  bool have_connection = cfg_.pool_connections && pooled_available_[shard] > 0;
  if (have_connection) {
    --pooled_available_[shard];
  } else {
    ++connections_opened_;
    co_await net_.deliver(client_, server, cfg_.connect_bytes);
    co_await net_.deliver(server, client_, cfg_.connect_bytes);
  }

  co_await net_.deliver(client_, server, cfg_.query_bytes);
  co_await db_.consume_shard(shard, q, slice.rows);
  co_await fetch_result(server, slice.rows, slice.bytes);

  if (cfg_.pool_connections) ++pooled_available_[shard];
}

sim::Task<void> JdbcClient::fetch_result(net::NodeId server, std::size_t rows,
                                         net::Bytes bytes) {
  // First batch rides on the query response.
  const auto n = static_cast<std::int64_t>(rows);
  const auto fetch = static_cast<std::int64_t>(cfg_.fetch_size);
  std::int64_t batches = n <= fetch ? 1 : (n + fetch - 1) / fetch;
  net::Bytes per_batch = batches > 0 ? bytes / batches : bytes;
  co_await net_.deliver(server, client_, per_batch + 32);
  for (std::int64_t b = 1; b < batches; ++b) {
    ++fetch_round_trips_;
    co_await net_.deliver(client_, server, cfg_.fetch_request_bytes);
    co_await net_.deliver(server, client_, per_batch + 32);
  }
}

}  // namespace mutsvc::db

#include "db/jdbc.hpp"

namespace mutsvc::db {

sim::Task<QueryResult> JdbcClient::execute(Query q) {
  ++statements_;
  const net::NodeId server = db_.home_node();

  bool have_connection = cfg_.pool_connections && pooled_available_ > 0;
  if (have_connection) {
    --pooled_available_;
  } else {
    ++connections_opened_;
    co_await net_.deliver(client_, server, cfg_.connect_bytes);
    co_await net_.deliver(server, client_, cfg_.connect_bytes);
  }

  co_await net_.deliver(client_, server, cfg_.query_bytes);
  QueryResult res = co_await db_.execute(q);

  // First batch rides on the query response.
  const auto rows = static_cast<std::int64_t>(res.rows.size());
  const auto fetch = static_cast<std::int64_t>(cfg_.fetch_size);
  std::int64_t batches = rows <= fetch ? 1 : (rows + fetch - 1) / fetch;
  net::Bytes per_batch = batches > 0 ? res.wire_bytes() / batches : res.wire_bytes();
  co_await net_.deliver(server, client_, per_batch + 32);
  for (std::int64_t b = 1; b < batches; ++b) {
    ++fetch_round_trips_;
    co_await net_.deliver(client_, server, cfg_.fetch_request_bytes);
    co_await net_.deliver(server, client_, per_batch + 32);
  }

  if (cfg_.pool_connections) ++pooled_available_;
  co_return res;
}

}  // namespace mutsvc::db

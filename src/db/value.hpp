#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace mutsvc::db {

/// A cell value. Kept deliberately small: the applications only need
/// integers, reals, and text.
using Value = std::variant<std::int64_t, double, std::string>;

using Row = std::vector<Value>;

[[nodiscard]] inline std::int64_t as_int(const Value& v) { return std::get<std::int64_t>(v); }
[[nodiscard]] inline double as_real(const Value& v) { return std::get<double>(v); }
[[nodiscard]] inline const std::string& as_text(const Value& v) {
  return std::get<std::string>(v);
}

enum class ColumnType { kInt, kReal, kText };

struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt;
};

[[nodiscard]] inline bool matches_type(const Value& v, ColumnType t) {
  switch (t) {
    case ColumnType::kInt: return std::holds_alternative<std::int64_t>(v);
    case ColumnType::kReal: return std::holds_alternative<double>(v);
    case ColumnType::kText: return std::holds_alternative<std::string>(v);
  }
  return false;
}

/// Approximate wire size of a value, used by the JDBC model to estimate
/// result-set transfer sizes.
[[nodiscard]] inline std::int64_t wire_size(const Value& v) {
  if (std::holds_alternative<std::int64_t>(v)) return 8;
  if (std::holds_alternative<double>(v)) return 8;
  return static_cast<std::int64_t>(std::get<std::string>(v).size()) + 4;
}

[[nodiscard]] inline std::int64_t wire_size(const Row& r) {
  std::int64_t total = 0;
  for (const auto& v : r) total += wire_size(v);
  return total;
}

}  // namespace mutsvc::db

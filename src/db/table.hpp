#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/value.hpp"

namespace mutsvc::db {

/// One relational table with an integer primary key (column 0) and optional
/// secondary indexes on other columns.
class Table {
 public:
  Table(std::string name, std::vector<Column> columns);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Column>& columns() const { return columns_; }
  [[nodiscard]] std::size_t column_index(const std::string& col) const;

  /// Builds a secondary index on `col`; existing rows are indexed.
  void create_index(const std::string& col);
  [[nodiscard]] bool has_index(const std::string& col) const;

  void insert(Row row);

  /// Replaces the row with the given primary key; throws if absent.
  void update(std::int64_t pk, Row row);

  /// In-place single-column update; throws if row absent.
  void update_column(std::int64_t pk, const std::string& col, Value v);

  bool erase(std::int64_t pk);

  [[nodiscard]] std::optional<Row> get(std::int64_t pk) const;
  [[nodiscard]] bool contains(std::int64_t pk) const { return rows_.contains(pk); }
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] std::int64_t max_pk() const { return rows_.empty() ? 0 : rows_.rbegin()->first; }

  /// All rows whose `col` equals `v`. Uses a secondary index when present;
  /// falls back to a full scan.
  [[nodiscard]] std::vector<Row> find_equal(const std::string& col, const Value& v) const;

  /// Full scan with predicate (used by keyword search and aggregates).
  [[nodiscard]] std::vector<Row> scan(
      const std::function<bool(const Row&)>& predicate) const;

  /// Mean wire size per row (from a sample), for transfer estimation.
  [[nodiscard]] std::int64_t approx_row_bytes() const;

 private:
  void index_row(const Row& row, std::int64_t pk);
  void unindex_row(const Row& row, std::int64_t pk);
  static std::string value_key(const Value& v);

  std::string name_;
  std::vector<Column> columns_;
  std::map<std::int64_t, Row> rows_;  // ordered: deterministic scans
  // index name -> (value key -> pks)
  std::unordered_map<std::string, std::multimap<std::string, std::int64_t>> indexes_;
};

}  // namespace mutsvc::db

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

#include "db/value.hpp"

namespace mutsvc::db {

/// Transparent strict-weak order over index keys. Values order by
/// alternative rank (int < real < text — the variant's own order) and then
/// by value; the heterogeneous overloads let probes compare raw integers
/// and string views against stored keys without materializing a `Value`
/// (and, before this comparator, a formatted `std::string` key) per lookup.
struct ValueLess {
  using is_transparent = void;

  bool operator()(const Value& a, const Value& b) const { return a < b; }

  bool operator()(const Value& a, std::int64_t b) const {
    const auto* i = std::get_if<std::int64_t>(&a);
    return i != nullptr && *i < b;  // non-int ranks above every int
  }
  bool operator()(std::int64_t a, const Value& b) const {
    const auto* i = std::get_if<std::int64_t>(&b);
    return i == nullptr || a < *i;
  }
  bool operator()(const Value& a, std::string_view b) const {
    const auto* s = std::get_if<std::string>(&a);
    return s == nullptr || *s < b;  // non-text ranks below every text
  }
  bool operator()(std::string_view a, const Value& b) const {
    const auto* s = std::get_if<std::string>(&b);
    return s != nullptr && a < *s;
  }
};

/// One relational table with an integer primary key (column 0) and optional
/// secondary indexes on other columns.
class Table {
 public:
  Table(std::string name, std::vector<Column> columns);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Column>& columns() const { return columns_; }
  [[nodiscard]] std::size_t column_index(const std::string& col) const;

  /// Builds a secondary index on `col`; existing rows are indexed.
  void create_index(const std::string& col);
  [[nodiscard]] bool has_index(const std::string& col) const;

  void insert(Row row);

  /// Replaces the row with the given primary key; throws if absent.
  void update(std::int64_t pk, Row row);

  /// In-place single-column update; throws if row absent.
  void update_column(std::int64_t pk, const std::string& col, Value v);

  bool erase(std::int64_t pk);

  [[nodiscard]] std::optional<Row> get(std::int64_t pk) const;
  [[nodiscard]] bool contains(std::int64_t pk) const { return rows_.contains(pk); }
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] std::int64_t max_pk() const { return rows_.empty() ? 0 : rows_.rbegin()->first; }

  /// All rows whose `col` equals `v`. Uses a secondary index when present
  /// (result pre-reserved, rows read through the index's row pointers — no
  /// per-match primary-key re-lookup); falls back to a full scan.
  [[nodiscard]] std::vector<Row> find_equal(const std::string& col, const Value& v) const;

  /// Non-copying variant of find_equal: visits each matching row in place,
  /// in primary-key-insertion order for indexed columns and primary-key
  /// order for scans — the same order find_equal returns. Used by the query
  /// layer (aggregates) to filter/join without copying whole rows.
  template <class Fn>
  void for_each_equal(const std::string& col, const Value& v, Fn&& fn) const {
    auto idx_it = indexes_.find(col);
    if (idx_it != indexes_.end()) {
      auto [lo, hi] = idx_it->second.equal_range(v);
      for (auto it = lo; it != hi; ++it) fn(*it->second.row);
      return;
    }
    const std::size_t ci = column_index(col);
    for (const auto& [pk, row] : rows_) {
      if (row[ci] == v) fn(row);
    }
  }

  /// Full scan with predicate (used by keyword search and aggregates).
  [[nodiscard]] std::vector<Row> scan(
      const std::function<bool(const Row&)>& predicate) const;

  /// Mean wire size per row (from a sample), for transfer estimation.
  [[nodiscard]] std::int64_t approx_row_bytes() const;

 private:
  /// Index entry: the primary key (for unindexing) plus a direct pointer to
  /// the row storage. std::map nodes are stable and updates assign in
  /// place, so the pointer stays valid until the row is erased (which
  /// unindexes first).
  struct IndexEntry {
    std::int64_t pk;
    const Row* row;
  };
  using Index = std::multimap<Value, IndexEntry, ValueLess>;

  void index_row(const Row& row, std::int64_t pk);
  void unindex_row(const Row& row, std::int64_t pk);

  std::string name_;
  std::vector<Column> columns_;
  std::map<std::int64_t, Row> rows_;  // ordered: deterministic scans
  std::unordered_map<std::string, Index> indexes_;  // index name -> value -> entry
};

}  // namespace mutsvc::db

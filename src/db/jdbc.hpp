#pragma once

#include <cstdint>
#include <vector>

#include "db/database.hpp"
#include "db/query.hpp"
#include "net/network.hpp"

namespace mutsvc::db {

struct JdbcConfig {
  /// Rows returned per fetch round trip when traversing a result set.
  /// Small fetch sizes reproduce the "verbose communication with the
  /// database server" the paper blames for the naive web-tier-over-WAN
  /// deployment (§4.2), and the "n+1 database calls problem" (§5).
  int fetch_size = 10;
  net::Bytes query_bytes = 300;     // SQL text + bind parameters
  net::Bytes fetch_request_bytes = 60;
  net::Bytes connect_bytes = 250;   // login handshake payload

  /// When false, every statement opens (and discards) a fresh connection —
  /// the original Pet Store behaviour the paper's §3.4 modifications fixed.
  bool pool_connections = true;
};

/// JDBC client bound to one (client node, database) pair.
///
/// Wire behaviour per statement and shard: [connection open: one round
/// trip, skipped when a pooled connection to that shard is available] +
/// query round trip carrying the first fetch batch + one extra round trip
/// per additional fetch batch. Connections pool per shard. A statement that
/// only touches one shard (primary-key kinds; everything with one shard)
/// talks to that shard's node alone; scan-class statements scatter to every
/// shard in parallel and gather the merged result deterministically.
class JdbcClient {
 public:
  JdbcClient(net::Network& net, Database& db, net::NodeId client, JdbcConfig cfg = {})
      : net_(net),
        db_(db),
        client_(client),
        cfg_(cfg),
        pooled_available_(db.shard_count(), 0) {}

  JdbcClient(const JdbcClient&) = delete;
  JdbcClient& operator=(const JdbcClient&) = delete;

  /// NOTE: coroutine — `q` by value so the lazy task owns its query even
  /// when the caller's wrapper returns before the task is awaited.
  [[nodiscard]] sim::Task<QueryResult> execute(Query q);

  [[nodiscard]] std::uint64_t statements() const { return statements_; }
  [[nodiscard]] std::uint64_t connections_opened() const { return connections_opened_; }
  [[nodiscard]] std::uint64_t fetch_round_trips() const { return fetch_round_trips_; }
  /// Statements that scattered to more than one shard.
  [[nodiscard]] std::uint64_t cross_shard_statements() const { return cross_shard_statements_; }
  [[nodiscard]] const JdbcConfig& config() const { return cfg_; }

 private:
  /// Runs `q` entirely against one shard (the pre-sharding wire sequence).
  [[nodiscard]] sim::Task<QueryResult> execute_at_shard(Query q, std::size_t shard);

  /// One scatter-gather leg: connection + query + this shard's share of the
  /// service time and result traffic.
  [[nodiscard]] sim::Task<void> shard_leg(std::size_t shard, Query q,
                                          Database::ShardSlice slice);

  /// Ships `bytes` of result rows back in fetch batches.
  [[nodiscard]] sim::Task<void> fetch_result(net::NodeId server, std::size_t rows,
                                             net::Bytes bytes);

  net::Network& net_;
  Database& db_;
  net::NodeId client_;
  JdbcConfig cfg_;
  std::vector<int> pooled_available_;  // per shard
  std::uint64_t statements_ = 0;
  std::uint64_t connections_opened_ = 0;
  std::uint64_t fetch_round_trips_ = 0;
  std::uint64_t cross_shard_statements_ = 0;
};

}  // namespace mutsvc::db

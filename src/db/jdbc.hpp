#pragma once

#include <cstdint>
#include <unordered_map>

#include "db/database.hpp"
#include "db/query.hpp"
#include "net/network.hpp"

namespace mutsvc::db {

struct JdbcConfig {
  /// Rows returned per fetch round trip when traversing a result set.
  /// Small fetch sizes reproduce the "verbose communication with the
  /// database server" the paper blames for the naive web-tier-over-WAN
  /// deployment (§4.2), and the "n+1 database calls problem" (§5).
  int fetch_size = 10;
  net::Bytes query_bytes = 300;     // SQL text + bind parameters
  net::Bytes fetch_request_bytes = 60;
  net::Bytes connect_bytes = 250;   // login handshake payload

  /// When false, every statement opens (and discards) a fresh connection —
  /// the original Pet Store behaviour the paper's §3.4 modifications fixed.
  bool pool_connections = true;
};

/// JDBC client bound to one (client node, database) pair.
///
/// Wire behaviour per statement: [connection open: one round trip, skipped
/// when a pooled connection is available] + query round trip carrying the
/// first fetch batch + one extra round trip per additional fetch batch.
class JdbcClient {
 public:
  JdbcClient(net::Network& net, Database& db, net::NodeId client, JdbcConfig cfg = {})
      : net_(net), db_(db), client_(client), cfg_(cfg) {}

  JdbcClient(const JdbcClient&) = delete;
  JdbcClient& operator=(const JdbcClient&) = delete;

  /// NOTE: coroutine — `q` by value so the lazy task owns its query even
  /// when the caller's wrapper returns before the task is awaited.
  [[nodiscard]] sim::Task<QueryResult> execute(Query q);

  [[nodiscard]] std::uint64_t statements() const { return statements_; }
  [[nodiscard]] std::uint64_t connections_opened() const { return connections_opened_; }
  [[nodiscard]] std::uint64_t fetch_round_trips() const { return fetch_round_trips_; }
  [[nodiscard]] const JdbcConfig& config() const { return cfg_; }

 private:
  net::Network& net_;
  Database& db_;
  net::NodeId client_;
  JdbcConfig cfg_;
  int pooled_available_ = 0;
  std::uint64_t statements_ = 0;
  std::uint64_t connections_opened_ = 0;
  std::uint64_t fetch_round_trips_ = 0;
};

}  // namespace mutsvc::db

#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "db/value.hpp"
#include "net/types.hpp"

namespace mutsvc::db {

enum class QueryKind {
  kPkLookup,       // SELECT * WHERE pk = ?
  kFinder,         // SELECT * WHERE col = ?   (entity-bean home finder)
  kAggregate,      // registered multi-table/aggregate query
  kKeywordSearch,  // SELECT * WHERE col LIKE %kw%
  kUpdate,         // single-column UPDATE WHERE pk = ?
  kInsert,
  kDelete,
};

[[nodiscard]] inline const char* to_string(QueryKind k) {
  switch (k) {
    case QueryKind::kPkLookup: return "pk-lookup";
    case QueryKind::kFinder: return "finder";
    case QueryKind::kAggregate: return "aggregate";
    case QueryKind::kKeywordSearch: return "keyword-search";
    case QueryKind::kUpdate: return "update";
    case QueryKind::kInsert: return "insert";
    case QueryKind::kDelete: return "delete";
  }
  return "?";
}

/// A declarative query description. Aggregates are referenced by the name
/// they were registered under on the Database (apps register their own).
struct Query {
  QueryKind kind = QueryKind::kPkLookup;
  std::string table;
  std::int64_t pk = 0;
  std::string column;
  Value value = std::int64_t{0};
  std::string keyword;
  Row row;                     // insert payload
  std::string aggregate_name;  // aggregate queries
  std::vector<Value> params;

  [[nodiscard]] static Query pk_lookup(std::string table, std::int64_t pk) {
    Query q;
    q.kind = QueryKind::kPkLookup;
    q.table = std::move(table);
    q.pk = pk;
    return q;
  }

  [[nodiscard]] static Query finder(std::string table, std::string column, Value v) {
    Query q;
    q.kind = QueryKind::kFinder;
    q.table = std::move(table);
    q.column = std::move(column);
    q.value = std::move(v);
    return q;
  }

  [[nodiscard]] static Query aggregate(std::string name, std::vector<Value> params = {}) {
    Query q;
    q.kind = QueryKind::kAggregate;
    q.aggregate_name = std::move(name);
    q.params = std::move(params);
    return q;
  }

  [[nodiscard]] static Query keyword_search(std::string table, std::string column,
                                            std::string keyword) {
    Query q;
    q.kind = QueryKind::kKeywordSearch;
    q.table = std::move(table);
    q.column = std::move(column);
    q.keyword = std::move(keyword);
    return q;
  }

  [[nodiscard]] static Query update(std::string table, std::int64_t pk, std::string column,
                                    Value v) {
    Query q;
    q.kind = QueryKind::kUpdate;
    q.table = std::move(table);
    q.pk = pk;
    q.column = std::move(column);
    q.value = std::move(v);
    return q;
  }

  [[nodiscard]] static Query insert(std::string table, Row row) {
    Query q;
    q.kind = QueryKind::kInsert;
    q.table = std::move(table);
    q.row = std::move(row);
    return q;
  }

  [[nodiscard]] static Query del(std::string table, std::int64_t pk) {
    Query q;
    q.kind = QueryKind::kDelete;
    q.table = std::move(table);
    q.pk = pk;
    return q;
  }

  /// Eligible for edge query caching (§4.4). Keyword searches are "highly
  /// customized aggregate queries [whose] caching is typically ineffective"
  /// (§6) and always execute at the database server.
  [[nodiscard]] bool is_cacheable() const {
    return kind == QueryKind::kFinder || kind == QueryKind::kAggregate;
  }

  [[nodiscard]] bool is_read() const {
    return kind == QueryKind::kPkLookup || kind == QueryKind::kFinder ||
           kind == QueryKind::kAggregate || kind == QueryKind::kKeywordSearch;
  }

  /// Stable identity string; used as the query-cache key (§4.4).
  [[nodiscard]] std::string cache_key() const {
    std::ostringstream os;
    os << to_string(kind) << ":" << table << ":" << aggregate_name << ":" << column << ":"
       << pk << ":" << keyword;
    auto emit = [&os](const Value& v) {
      if (std::holds_alternative<std::int64_t>(v)) {
        os << "#i" << std::get<std::int64_t>(v);
      } else if (std::holds_alternative<double>(v)) {
        os << "#r" << std::get<double>(v);
      } else {
        os << "#t" << std::get<std::string>(v);
      }
    };
    emit(value);
    for (const auto& p : params) emit(p);
    return os.str();
  }
};

struct QueryResult {
  std::vector<Row> rows;
  std::int64_t affected = 0;

  [[nodiscard]] net::Bytes wire_bytes() const {
    net::Bytes total = 16;  // status/metadata
    for (const auto& r : rows) total += wire_size(r);
    return total;
  }
};

}  // namespace mutsvc::db

#include "workload/arrivals.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace mutsvc::workload {

RateEnvelope::RateEnvelope(std::vector<RateStep> steps, sim::Duration period)
    : steps_(std::move(steps)), period_(period) {
  if (steps_.empty()) throw std::invalid_argument("RateEnvelope: no steps");
  if (steps_.front().offset != sim::Duration::zero()) {
    throw std::invalid_argument("RateEnvelope: first step must start at offset zero");
  }
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    if (steps_[i].rate_per_sec < 0.0) {
      throw std::invalid_argument("RateEnvelope: negative rate");
    }
    if (i > 0 && steps_[i].offset <= steps_[i - 1].offset) {
      throw std::invalid_argument("RateEnvelope: step offsets must be strictly increasing");
    }
  }
  if (periodic()) {
    if (steps_.back().offset >= period_) {
      throw std::invalid_argument("RateEnvelope: steps must fit inside the period");
    }
    full_cycle_integral_ = cycle_integral_to(period_);
  }
}

RateEnvelope RateEnvelope::constant(double rate_per_sec) {
  return steps({{sim::Duration::zero(), rate_per_sec}});
}

RateEnvelope RateEnvelope::steps(std::vector<RateStep> s) {
  return RateEnvelope{std::move(s), sim::Duration::zero()};
}

RateEnvelope RateEnvelope::flash_crowd(double base, double spike_multiplier,
                                       sim::Duration spike_at, sim::Duration spike_len) {
  if (spike_at <= sim::Duration::zero() || spike_len <= sim::Duration::zero()) {
    throw std::invalid_argument("RateEnvelope::flash_crowd: spike must start after zero");
  }
  return steps({{sim::Duration::zero(), base},
                {spike_at, base * spike_multiplier},
                {spike_at + spike_len, base}});
}

RateEnvelope RateEnvelope::diurnal(double trough, double peak, sim::Duration period,
                                   int buckets) {
  if (buckets < 2) throw std::invalid_argument("RateEnvelope::diurnal: need >= 2 buckets");
  if (period <= sim::Duration::zero()) {
    throw std::invalid_argument("RateEnvelope::diurnal: period must be positive");
  }
  const double mid = (trough + peak) / 2.0;
  const double amp = (peak - trough) / 2.0;
  std::vector<RateStep> s;
  s.reserve(static_cast<std::size_t>(buckets));
  for (int i = 0; i < buckets; ++i) {
    // Sample the sinusoid at the bucket midpoint; phase puts the trough at
    // offset 0 and the peak half a period in.
    const double frac = (static_cast<double>(i) + 0.5) / static_cast<double>(buckets);
    const double rate = mid - amp * std::cos(2.0 * std::numbers::pi * frac);
    s.push_back({period * (static_cast<double>(i) / static_cast<double>(buckets)), rate});
  }
  return RateEnvelope{std::move(s), period};
}

double RateEnvelope::rate_at(sim::Duration offset) const {
  if (steps_.empty() || offset < sim::Duration::zero()) return 0.0;
  sim::Duration t = offset;
  if (periodic()) {
    t = sim::Duration::micros(offset.count_micros() % period_.count_micros());
  }
  // Last step whose offset <= t.
  auto it = std::upper_bound(steps_.begin(), steps_.end(), t,
                             [](sim::Duration v, const RateStep& s) { return v < s.offset; });
  return std::prev(it)->rate_per_sec;
}

double RateEnvelope::max_rate() const {
  double m = 0.0;
  for (const RateStep& s : steps_) m = std::max(m, s.rate_per_sec);
  return m;
}

double RateEnvelope::cycle_integral_to(sim::Duration t) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const sim::Duration lo = steps_[i].offset;
    if (t <= lo) break;
    sim::Duration hi = i + 1 < steps_.size() ? steps_[i + 1].offset : t;
    if (periodic() && i + 1 == steps_.size()) hi = period_;
    hi = std::min(hi, t);
    acc += steps_[i].rate_per_sec * (hi - lo).as_seconds();
  }
  return acc;
}

double RateEnvelope::expected_count(sim::Duration a, sim::Duration b) const {
  if (steps_.empty() || b <= a) return 0.0;
  a = std::max(a, sim::Duration::zero());
  auto integral_to = [this](sim::Duration t) {
    if (!periodic()) return cycle_integral_to(t);
    const std::int64_t p = period_.count_micros();
    const std::int64_t full = t.count_micros() / p;
    const sim::Duration rem = sim::Duration::micros(t.count_micros() % p);
    return static_cast<double>(full) * full_cycle_integral_ + cycle_integral_to(rem);
  };
  return integral_to(b) - integral_to(a);
}

RateEnvelope RateEnvelope::scaled(double k) const {
  if (k < 0.0) throw std::invalid_argument("RateEnvelope::scaled: negative factor");
  if (steps_.empty()) return {};
  std::vector<RateStep> s = steps_;
  for (RateStep& step : s) step.rate_per_sec *= k;
  return RateEnvelope{std::move(s), period_};
}

RateEnvelope RateEnvelope::shifted(sim::Duration phase) const {
  if (steps_.empty()) return {};
  if (!periodic()) {
    throw std::invalid_argument("RateEnvelope::shifted: periodic envelopes only");
  }
  const std::int64_t p = period_.count_micros();
  // Normalize into [0, p): shifting by the period (or zero) is the identity.
  const std::int64_t shift = ((phase.count_micros() % p) + p) % p;
  if (shift == 0) return *this;
  std::vector<RateStep> s;
  s.reserve(steps_.size() + 1);
  for (const RateStep& step : steps_) {
    const std::int64_t at = (step.offset.count_micros() + shift) % p;
    s.push_back({sim::Duration::micros(at), step.rate_per_sec});
  }
  std::sort(s.begin(), s.end(),
            [](const RateStep& a, const RateStep& b) { return a.offset < b.offset; });
  if (s.front().offset != sim::Duration::zero()) {
    // The segment straddling the wrap point: whatever rate was active at
    // old-time (period - shift) now covers offset zero.
    s.insert(s.begin(),
             {sim::Duration::zero(), rate_at(sim::Duration::micros(p - shift))});
  }
  return RateEnvelope{std::move(s), period_};
}

std::optional<sim::Duration> RateEnvelope::next_boundary_after(sim::Duration offset) const {
  if (steps_.empty()) return std::nullopt;
  if (offset < sim::Duration::zero()) return sim::Duration::zero();
  if (!periodic()) {
    auto it = std::upper_bound(steps_.begin(), steps_.end(), offset,
                               [](sim::Duration v, const RateStep& s) { return v < s.offset; });
    if (it == steps_.end()) return std::nullopt;  // last rate holds forever
    return it->offset;
  }
  const std::int64_t p = period_.count_micros();
  const sim::Duration rem = sim::Duration::micros(offset.count_micros() % p);
  auto it = std::upper_bound(steps_.begin(), steps_.end(), rem,
                             [](sim::Duration v, const RateStep& s) { return v < s.offset; });
  const sim::Duration next_in_cycle = it == steps_.end() ? period_ : it->offset;
  return offset + (next_in_cycle - rem);
}

std::optional<sim::Duration> PoissonProcess::next_after(sim::Duration offset,
                                                        SmallRng& rng) const {
  if (env_.empty()) return std::nullopt;
  sim::Duration t = std::max(offset, sim::Duration::zero());
  // Bounded only as a safety net: each iteration either returns or advances
  // to the next rate boundary, and real envelopes have few boundaries per
  // arrival.
  for (int guard = 0; guard < 1'000'000; ++guard) {
    const double rate = env_.rate_at(t);
    const std::optional<sim::Duration> boundary = env_.next_boundary_after(t);
    if (rate <= 0.0) {
      if (!boundary) return std::nullopt;  // zero rate forever: process over
      t = *boundary;
      continue;
    }
    // Clamp the gap to the clock resolution so the process always advances.
    const sim::Duration gap =
        std::max(sim::Duration::seconds(rng.exponential(1.0 / rate)), sim::us(1));
    const sim::Duration candidate = t + gap;
    if (boundary && candidate >= *boundary) {
      // Crossed into the next segment: restart there (exact by
      // memorylessness of the exponential).
      t = *boundary;
      continue;
    }
    return candidate;
  }
  return std::nullopt;
}

ZipfSampler::ZipfSampler(std::size_t n, double s) : s_(s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: empty support");
  if (s < 0.0) throw std::invalid_argument("ZipfSampler: negative exponent");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += std::pow(static_cast<double>(k + 1), -s);
    cdf_[k] = acc;
  }
  for (double& c : cdf_) c /= acc;
}

std::size_t ZipfSampler::sample(SmallRng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? cdf_.size() - 1 : static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::expected_freq(std::size_t rank) const {
  if (rank >= cdf_.size()) return 0.0;
  const double lo = rank == 0 ? 0.0 : cdf_[rank - 1];
  return cdf_[rank] - lo;
}

}  // namespace mutsvc::workload

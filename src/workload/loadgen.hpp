#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/types.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "stats/collector.hpp"
#include "workload/session.hpp"

namespace mutsvc::workload {

/// How one page request ended, as the client sees it.
enum class RequestOutcome {
  kOk,        // page served
  kFailed,    // dropped after the harness exhausted its recovery options
  kRejected,  // refused up front by admission control (overload shedding)
};

/// How a page request actually reaches the service; implemented by the
/// experiment harness (HTTP + container runtime). Implementations must not
/// leak exceptions — an escaping exception kills the client task.
class RequestExecutor {
 public:
  virtual ~RequestExecutor() = default;
  [[nodiscard]] virtual sim::Task<RequestOutcome> execute(net::NodeId client_node,
                                                          const PageRequest& request) = 0;
};

/// One group of client machines co-located with an application server
/// (§3.1: "three client machines for each application server").
struct ClientGroupSpec {
  net::NodeId client_node;          // the LAN node the clients sit on
  stats::ClientGroup group = stats::ClientGroup::kLocal;
  double requests_per_second = 10;  // this group's share of the combined load
  double browser_fraction = 0.8;    // §3.3: 80% browsers, 20% buyers/bidders
  SessionFactory browser_factory;
  SessionFactory writer_factory;    // buyer (Pet Store) / bidder (RUBiS)
};

struct LoadGenConfig {
  /// Soft inter-request DELAY (§3.3): the interval between *sending*
  /// requests, independent of response time.
  sim::Duration think_time = sim::sec(7);
  /// Pause between consecutive sessions of one simulated client.
  sim::Duration between_sessions = sim::sec(2);
};

/// Open-loop client driver implementing §3.3.
///
/// Each group runs `round(rate * think_time)` concurrent clients; a client
/// repeatedly executes sessions, waiting `DELAY - response_time` (clamped
/// at zero) after each request — the paper's soft delay, which keeps the
/// offered load steady regardless of response times.
///
/// End-of-run rule (shared with SessionFsmEngine): requests are counted
/// when they are *issued*; no request is issued at or after `end_at`, and
/// a response landing after `end_at` is recorded whenever the simulation
/// runs it — in both the closed-loop and open-loop drivers. At any instant
/// `requests_issued() == requests_completed() + requests_in_flight()`.
class LoadGenerator {
 public:
  /// How start_group splits a group's client fleet between the two session
  /// kinds. The *total* is rounded first and the writer share is carved out
  /// of it (writers = total - browsers): rounding the two shares
  /// independently can drift from round(rate * think) and lets a low-rate
  /// group round to zero clients and silently offer no load — any positive
  /// rate gets at least one client.
  struct ClientSplit {
    int browsers = 0;
    int writers = 0;
    [[nodiscard]] int total() const { return browsers + writers; }
  };
  [[nodiscard]] static ClientSplit split_clients(double requests_per_second,
                                                double browser_fraction,
                                                sim::Duration think_time);

  LoadGenerator(sim::Simulator& sim, RequestExecutor& executor,
                stats::ResponseTimeCollector& collector, LoadGenConfig cfg = {})
      : sim_(sim), executor_(executor), collector_(collector), cfg_(cfg) {}

  LoadGenerator(const LoadGenerator&) = delete;
  LoadGenerator& operator=(const LoadGenerator&) = delete;

  /// Spawns all client tasks for `spec`. Clients run until `end_at`.
  void start_group(const ClientGroupSpec& spec, sim::SimTime end_at, sim::RngStream rng);

  /// Open-loop variant (the flash-crowd generator): Poisson arrivals at
  /// `spec.requests_per_second`, each arrival issuing the next page of a
  /// rotating per-kind session — WITHOUT waiting for the previous response.
  /// A closed loop self-throttles when the service saturates, hiding the
  /// overload; an open loop keeps offering load, which is exactly what a
  /// flash crowd does. Offered rate is independent of response times by
  /// construction.
  void start_open_group(const ClientGroupSpec& spec, sim::SimTime end_at, sim::RngStream rng);

  /// Page requests handed to the executor, counted at issue time.
  [[nodiscard]] std::uint64_t requests_issued() const {
    return requests_.load(std::memory_order_relaxed);
  }
  /// Requests whose outcome has been recorded.
  [[nodiscard]] std::uint64_t requests_completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  /// Issued but not yet completed — nonzero at end_at when responses are
  /// still on the wire (those requests stay counted as issued).
  [[nodiscard]] std::uint64_t requests_in_flight() const {
    return requests_issued() - requests_completed();
  }
  /// Sessions that issued at least one request (a factory yielding an empty
  /// script is never counted).
  [[nodiscard]] std::uint64_t sessions_started() const {
    return sessions_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] sim::Task<void> run_client(ClientGroupSpec spec, bool is_browser,
                                           sim::SimTime end_at, sim::RngStream rng);
  [[nodiscard]] sim::Task<void> run_open_arrivals(ClientGroupSpec spec, sim::SimTime end_at,
                                                  sim::RngStream rng);
  [[nodiscard]] sim::Task<void> issue_one(ClientGroupSpec spec, PageRequest req);
  void record_outcome(const ClientGroupSpec& spec, const PageRequest& req,
                      RequestOutcome outcome, sim::Duration response_time);

  sim::Simulator& sim_;
  RequestExecutor& executor_;
  stats::ResponseTimeCollector& collector_;
  LoadGenConfig cfg_;
  // Commutative sums in relaxed atomics — safe from any lookahead domain.
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> sessions_{0};
};

}  // namespace mutsvc::workload

#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace mutsvc::workload {

/// Compact counter-based random stream for the million-session FSM load
/// engine (DESIGN §16): the whole generator is one 64-bit word (a splitmix64
/// counter), so a million sessions carry a million words instead of a
/// million full-size engines. Like sim::RngStream::fork, streams are pure
/// functions of (seed, stream index / name) — independent of creation order
/// and of draws made on any other stream.
class SmallRng {
 public:
  explicit constexpr SmallRng(std::uint64_t state) : state_(state) {}

  /// splitmix64 finalizer: a bijective avalanche mix on 64 bits.
  [[nodiscard]] static constexpr std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  /// Seed for the `stream`-th independent stream under `seed` — a pure
  /// function of its arguments, so per-session streams don't depend on the
  /// order sessions are created in.
  [[nodiscard]] static constexpr std::uint64_t stream_seed(std::uint64_t seed,
                                                           std::uint64_t stream) {
    return mix(seed ^ mix(stream));
  }

  /// Named variant (FNV-1a over the name, like RngStream::fork).
  [[nodiscard]] static std::uint64_t named_seed(std::uint64_t seed, std::string_view name) {
    std::uint64_t h = 0xcbf29ce484222325ULL ^ (seed * 0x9e3779b97f4a7c15ULL);
    for (char c : name) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      h *= 0x100000001b3ULL;
    }
    return mix(h);
  }

  [[nodiscard]] std::uint64_t next_u64() {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t x = state_;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  /// Uniform in [0, 1).
  [[nodiscard]] double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  [[nodiscard]] double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Uniform integer in [lo, hi] inclusive. The modulo bias is below 2^-32
  /// for every range this simulation uses — irrelevant next to model error,
  /// and the fixed algorithm keeps draws bit-reproducible everywhere.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo + 1);
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  [[nodiscard]] bool bernoulli(double p) { return uniform01() < p; }

  /// Exponential with the given mean (inverse-CDF; uniform01() < 1 keeps
  /// the log argument positive).
  [[nodiscard]] double exponential(double mean) {
    double u = uniform01();
    return -mean * std::log(1.0 - u);
  }

  /// Index in [0, weights.size()) with probability proportional to weight.
  /// Same contract as RngStream::weighted_index, one uniform01() draw.
  [[nodiscard]] std::size_t weighted_index(std::span<const double> weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    double r = uniform01() * total;
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (r < acc) return i;
    }
    return weights.empty() ? 0 : weights.size() - 1;
  }

  [[nodiscard]] constexpr std::uint64_t state() const { return state_; }

 private:
  std::uint64_t state_;
};

/// One constant-rate segment of a rate envelope, starting at `offset` from
/// the envelope origin.
struct RateStep {
  sim::Duration offset;
  double rate_per_sec = 0.0;
};

/// Piecewise-constant arrival-rate envelope: the intensity function of a
/// nonhomogeneous Poisson arrival process. An aperiodic envelope holds its
/// last rate forever; a periodic one (diurnal curves) repeats its cycle.
class RateEnvelope {
 public:
  /// Empty envelope: rate zero everywhere (no arrivals).
  RateEnvelope() = default;

  [[nodiscard]] static RateEnvelope constant(double rate_per_sec);
  /// Aperiodic step sequence. Steps must start at offset zero, be strictly
  /// increasing, and carry non-negative rates; the last rate holds forever.
  [[nodiscard]] static RateEnvelope steps(std::vector<RateStep> steps);
  /// Flash-crowd shape (bench_flash_crowd): `base` rate, spiking to
  /// `base * spike_multiplier` during [spike_at, spike_at + spike_len).
  [[nodiscard]] static RateEnvelope flash_crowd(double base, double spike_multiplier,
                                                sim::Duration spike_at,
                                                sim::Duration spike_len);
  /// Periodic diurnal curve: a sinusoid between `trough` and `peak` over
  /// `period`, sampled into `buckets` constant steps (trough at offset 0).
  [[nodiscard]] static RateEnvelope diurnal(double trough, double peak, sim::Duration period,
                                            int buckets = 24);

  [[nodiscard]] bool empty() const { return steps_.empty(); }
  [[nodiscard]] bool periodic() const { return period_ > sim::Duration::zero(); }
  [[nodiscard]] sim::Duration period() const { return period_; }
  [[nodiscard]] const std::vector<RateStep>& step_list() const { return steps_; }

  /// Instantaneous rate at `offset` from the envelope origin.
  [[nodiscard]] double rate_at(sim::Duration offset) const;
  [[nodiscard]] double max_rate() const;

  /// Expected arrivals in [a, b): the integral of the rate over the window.
  [[nodiscard]] double expected_count(sim::Duration a, sim::Duration b) const;

  /// Same shape with every rate multiplied by `k` (splitting one envelope
  /// across client groups and session kinds).
  [[nodiscard]] RateEnvelope scaled(double k) const;

  /// Same periodic shape phase-shifted by `phase` (antiphase diurnal
  /// curves: clients in the other hemisphere peak half a period later).
  /// Periodic envelopes only — an aperiodic shift would need to invent a
  /// rate before the first step.
  [[nodiscard]] RateEnvelope shifted(sim::Duration phase) const;

  /// Next boundary strictly after `offset` where the rate changes (step
  /// edges and period wraps); nullopt when the rate is constant from
  /// `offset` on.
  [[nodiscard]] std::optional<sim::Duration> next_boundary_after(sim::Duration offset) const;

 private:
  RateEnvelope(std::vector<RateStep> steps, sim::Duration period);

  /// Integral of the rate over [0, t) for t within one cycle (aperiodic:
  /// any t).
  [[nodiscard]] double cycle_integral_to(sim::Duration t) const;

  std::vector<RateStep> steps_;
  sim::Duration period_ = sim::Duration::zero();  // zero = aperiodic
  double full_cycle_integral_ = 0.0;              // cached for periodic envelopes
};

/// Samples a nonhomogeneous Poisson process driven by a RateEnvelope.
/// Piecewise-exponential redraw: draw an exponential gap at the current
/// segment's rate; if it crosses a rate boundary, restart from the boundary
/// (memorylessness makes the restart exact, no thinning required).
class PoissonProcess {
 public:
  explicit PoissonProcess(RateEnvelope envelope) : env_(std::move(envelope)) {}

  [[nodiscard]] const RateEnvelope& envelope() const { return env_; }

  /// Offset of the next arrival strictly after `offset`; nullopt when the
  /// rate is zero forever after (the process has ended).
  [[nodiscard]] std::optional<sim::Duration> next_after(sim::Duration offset,
                                                        SmallRng& rng) const;

 private:
  RateEnvelope env_;
};

/// Zipf(s) sampler over ranks [0, n): P(rank k) proportional to 1/(k+1)^s.
/// Built once per model (a cumulative table), shared by every session.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }
  [[nodiscard]] double exponent() const { return s_; }

  /// Rank in [0, n), inverse-CDF over one uniform01() draw.
  [[nodiscard]] std::size_t sample(SmallRng& rng) const;

  /// Closed-form P(rank k) — what sampled frequencies must converge to.
  [[nodiscard]] double expected_freq(std::size_t rank) const;

 private:
  std::vector<double> cdf_;  // cumulative, normalized to end at 1.0
  double s_ = 0.0;
};

}  // namespace mutsvc::workload

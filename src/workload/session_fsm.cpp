#include "workload/session_fsm.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace mutsvc::workload {

SessionFsmEngine::SessionFsmEngine(sim::Simulator& sim, RequestExecutor& executor,
                                   stats::ResponseTimeCollector& collector, Config cfg)
    : sim_(sim), executor_(executor), collector_(collector), cfg_(cfg) {
  if (cfg_.calendar_quantum <= sim::Duration::zero()) {
    throw std::invalid_argument("SessionFsmEngine: calendar_quantum must be positive");
  }
  if (cfg_.think_time <= sim::Duration::zero()) {
    throw std::invalid_argument("SessionFsmEngine: think_time must be positive");
  }
}

SessionFsmEngine::SessionFsmEngine(sim::Simulator& sim, RequestExecutor& executor,
                                   stats::ResponseTimeCollector& collector)
    : SessionFsmEngine(sim, executor, collector, Config{}) {}

std::uint8_t SessionFsmEngine::add_kind(std::shared_ptr<const FsmScriptModel> model,
                                        net::NodeId client_node, stats::ClientGroup group) {
  if (started_) throw std::logic_error("SessionFsmEngine: add kinds before starting load");
  if (model == nullptr) throw std::invalid_argument("SessionFsmEngine: null script model");
  if (kinds_.size() >= 255) throw std::invalid_argument("SessionFsmEngine: too many kinds");
  kinds_.push_back(Kind{std::move(model), client_node, group});
  return static_cast<std::uint8_t>(kinds_.size() - 1);
}

void SessionFsmEngine::set_end(sim::SimTime end_at) {
  if (started_ && end_at != end_at_) {
    throw std::invalid_argument("SessionFsmEngine: all load sources must share one end_at");
  }
  end_at_ = end_at;
  started_ = true;
}

std::uint32_t SessionFsmEngine::alloc_session(std::uint8_t kind, std::uint64_t rng_seed,
                                              Mode mode) {
  std::uint32_t id = 0;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    id = static_cast<std::uint32_t>(arena_.size());
    arena_.emplace_back();
  }
  SessionRecord& rec = arena_[id];
  rec = SessionRecord{};
  rec.rng_state = rng_seed;
  rec.kind = kind;
  rec.mode = static_cast<std::uint8_t>(mode);
  ++live_;
  peak_live_ = std::max(peak_live_, live_);
  return id;
}

void SessionFsmEngine::release_session(std::uint32_t id) {
  free_ids_.push_back(id);
  --live_;
}

void SessionFsmEngine::start_population(std::uint8_t kind, std::size_t count,
                                        sim::SimTime end_at, std::uint64_t seed) {
  if (kind >= kinds_.size()) throw std::invalid_argument("SessionFsmEngine: unknown kind");
  set_end(end_at);
  const double think_s = cfg_.think_time.as_seconds();
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t id =
        alloc_session(kind, SmallRng::stream_seed(seed, i), Mode::kRecurring);
    // Stagger starts uniformly across one think interval (the session's
    // first own draw), so the fleet does not fire in lock-step.
    SmallRng rng(arena_[id].rng_state);
    const sim::SimTime due = sim_.now() + sim::Duration::seconds(rng.uniform(0.0, think_s));
    arena_[id].rng_state = rng.state();
    enqueue(id, due);
  }
}

void SessionFsmEngine::start_arrivals(std::uint8_t kind, RateEnvelope envelope,
                                      sim::SimTime end_at, std::uint64_t seed) {
  if (kind >= kinds_.size()) throw std::invalid_argument("SessionFsmEngine: unknown kind");
  set_end(end_at);
  if (envelope.empty()) return;
  sim_.spawn(arrival_pump(kind, std::move(envelope), seed));
}

sim::Task<void> SessionFsmEngine::arrival_pump(std::uint8_t kind, RateEnvelope envelope,
                                               std::uint64_t seed) {
  const PoissonProcess process(std::move(envelope));
  SmallRng rng(SmallRng::stream_seed(seed, 0));
  std::uint64_t arrivals = 0;
  sim::Duration offset = sim_.now() - sim::SimTime::origin();
  for (;;) {
    const std::optional<sim::Duration> next = process.next_after(offset, rng);
    if (!next) co_return;
    offset = *next;
    const sim::SimTime at = sim::SimTime::origin() + offset;
    if (at >= end_at_) co_return;
    co_await sim_.wait(at - sim_.now());
    // Per-session streams keyed off a separate stream index space (+1) so
    // they never collide with the pump's own stream.
    const std::uint32_t id =
        alloc_session(kind, SmallRng::stream_seed(seed, ++arrivals), Mode::kOneShot);
    fire(id);
  }
}

void SessionFsmEngine::enqueue(std::uint32_t id, sim::SimTime due) {
  arena_[id].next_fire = due;
  const std::int64_t quantum = cfg_.calendar_quantum.count_micros();
  const std::int64_t bucket = due.count_micros() / quantum;
  const sim::SimTime bucket_start = sim::SimTime::from_micros(bucket * quantum);
  if (bucket_start <= sim_.now()) {
    // The bucket has already started (or `due` is in the past): a precise
    // kernel event directly.
    sim_.schedule_at(due, [this, id] { fire(id); });
    return;
  }
  auto [it, fresh] = calendar_.try_emplace(bucket);
  it->second.push_back(id);
  if (fresh) {
    sim_.schedule_at(bucket_start, [this, bucket] { drain_bucket(bucket); });
  }
}

void SessionFsmEngine::drain_bucket(std::int64_t bucket) {
  const auto it = calendar_.find(bucket);
  if (it == calendar_.end()) return;
  std::vector<std::uint32_t> due = std::move(it->second);
  calendar_.erase(it);
  // Sort by (due time, session id): the kernel sees one deterministic
  // insertion order however the bucket was filled.
  std::sort(due.begin(), due.end(), [this](std::uint32_t a, std::uint32_t b) {
    if (arena_[a].next_fire != arena_[b].next_fire) {
      return arena_[a].next_fire < arena_[b].next_fire;
    }
    return a < b;
  });
  for (const std::uint32_t id : due) {
    sim_.schedule_at(arena_[id].next_fire, [this, id] { fire(id); });
  }
}

void SessionFsmEngine::fire(std::uint32_t id) {
  if (sim_.now() >= end_at_) {  // no request is issued at or after end_at
    release_session(id);
    return;
  }
  SessionRecord& rec = arena_[id];
  SmallRng rng(rec.rng_state);
  FsmScratch scratch{rec.w0, rec.w1};
  std::optional<PageRequest> req = kinds_[rec.kind].model->next(rec.step, scratch, rng);
  rec.rng_state = rng.state();
  rec.w0 = scratch.w0;
  rec.w1 = scratch.w1;
  if (!req) {
    finish_script(id);
    return;
  }
  ++rec.step;
  // Sticky routing key: a pure mix of the arena slot and the engine salt —
  // no RNG draw, no extra record bytes. Slot reuse re-keys one-shot
  // sessions only after the previous occupant fully left.
  req->session_key = SmallRng::mix(static_cast<std::uint64_t>(id) ^ cfg_.session_salt);
  requests_.fetch_add(1, std::memory_order_relaxed);  // counted at issue time
  if (rec.step == 1) sessions_.fetch_add(1, std::memory_order_relaxed);
  sim_.spawn(issue(id, std::move(*req), sim_.now()));
}

void SessionFsmEngine::finish_script(std::uint32_t id) {
  SessionRecord& rec = arena_[id];
  if (static_cast<Mode>(rec.mode) == Mode::kOneShot || rec.step == 0) {
    // One-shot sessions leave at script end; a script empty from step 0
    // (rec.step == 0) is sterile — retiring it keeps a zero-length
    // between_sessions from looping forever and keeps it out of
    // sessions_started, like the open-loop LoadGenerator.
    release_session(id);
    return;
  }
  rec.step = 0;
  rec.w0 = 0;
  rec.w1 = 0;
  const sim::SimTime next = sim_.now() + cfg_.between_sessions;
  if (next >= end_at_) {
    release_session(id);
    return;
  }
  enqueue(id, next);
}

sim::Task<void> SessionFsmEngine::issue(std::uint32_t id, PageRequest req,
                                        sim::SimTime issued_at) {
  // Copy kind fields out before the await: the arena may grow while this
  // request is in flight, so `rec` references must not be held across it.
  const Kind kind = kinds_[arena_[id].kind];
  const RequestOutcome out = co_await executor_.execute(kind.client_node, req);
  const sim::Duration response_time = sim_.now() - issued_at;
  // Same sequenced-effect channel as LoadGenerator::record_outcome: inline
  // sequentially, replayed in deterministic stamp order at the window
  // barrier under the parallel executor.
  sim_.sequenced([this, now = sim_.now(), page = req.page, pattern = req.pattern,
                  group = kind.group, out, response_time] {
    switch (out) {
      case RequestOutcome::kOk:
        collector_.record(now, page, pattern, group, response_time);
        break;
      case RequestOutcome::kFailed:
        collector_.record_failure(now, page, pattern, group);
        break;
      case RequestOutcome::kRejected:
        collector_.record_rejection(now, page, pattern, group);
        break;
    }
  });
  completed_.fetch_add(1, std::memory_order_relaxed);
  // §3.3 soft delay: the next request fires think_time after this one was
  // issued, response time notwithstanding (clamped to now for slow pages).
  sim::SimTime next = issued_at + cfg_.think_time;
  if (next < sim_.now()) next = sim_.now();
  if (next >= end_at_) {
    release_session(id);
    co_return;
  }
  enqueue(id, next);
}

std::size_t SessionFsmEngine::arena_bytes() const {
  std::size_t calendar_bytes = 0;
  for (const auto& [bucket, ids] : calendar_) {
    calendar_bytes += ids.capacity() * sizeof(std::uint32_t) + 3 * sizeof(void*);
  }
  return arena_.capacity() * sizeof(SessionRecord) +
         free_ids_.capacity() * sizeof(std::uint32_t) + calendar_bytes;
}

}  // namespace mutsvc::workload

#include "workload/loadgen.hpp"

#include <algorithm>
#include <cmath>

#include "workload/arrivals.hpp"

namespace mutsvc::workload {

LoadGenerator::ClientSplit LoadGenerator::split_clients(double requests_per_second,
                                                        double browser_fraction,
                                                        sim::Duration think_time) {
  // Open-loop sizing: each client issues ~1/think_time requests per second,
  // so the group needs round(rate*think_time) concurrent clients in total.
  // Round the total first, then carve the browser share out of it — see
  // the ClientSplit doc for why the shares are not rounded independently.
  const double think_s = think_time.as_seconds();
  ClientSplit split;
  int total = static_cast<int>(std::lround(requests_per_second * think_s));
  if (total < 1 && requests_per_second > 0.0) total = 1;
  if (total == 1) {
    // A single client goes to whichever kind holds the majority share.
    split.browsers = browser_fraction >= 0.5 ? 1 : 0;
  } else {
    split.browsers = static_cast<int>(
        std::lround(requests_per_second * browser_fraction * think_s));
    split.browsers = std::clamp(split.browsers, 0, total);
  }
  split.writers = total - split.browsers;
  return split;
}

void LoadGenerator::start_group(const ClientGroupSpec& spec, sim::SimTime end_at,
                                sim::RngStream rng) {
  const ClientSplit split =
      split_clients(spec.requests_per_second, spec.browser_fraction, cfg_.think_time);
  const int browsers = split.browsers;
  const int writers = split.writers;

  for (int i = 0; i < browsers; ++i) {
    sim_.spawn(run_client(spec, /*is_browser=*/true, end_at,
                          rng.fork("browser-" + std::to_string(i))));
  }
  for (int i = 0; i < writers; ++i) {
    sim_.spawn(run_client(spec, /*is_browser=*/false, end_at,
                          rng.fork("writer-" + std::to_string(i))));
  }
}

void LoadGenerator::start_open_group(const ClientGroupSpec& spec, sim::SimTime end_at,
                                     sim::RngStream rng) {
  sim_.spawn(run_open_arrivals(spec, end_at, std::move(rng)));
}

void LoadGenerator::record_outcome(const ClientGroupSpec& spec, const PageRequest& req,
                                   RequestOutcome outcome, sim::Duration response_time) {
  completed_.fetch_add(1, std::memory_order_relaxed);
  // The collector's histograms are shared, order-sensitive state: stage the
  // record as a sequenced effect. Sequentially it runs inline right here;
  // under parallel domains it replays at the window barrier in
  // deterministic (time, key) stamp order, so the collector ingests
  // completions in exactly the sequential order.
  sim_.sequenced([this, now = sim_.now(), page = req.page, pattern = req.pattern,
                  group = spec.group, outcome, response_time] {
    switch (outcome) {
      case RequestOutcome::kOk:
        collector_.record(now, page, pattern, group, response_time);
        break;
      case RequestOutcome::kFailed:
        collector_.record_failure(now, page, pattern, group);
        break;
      case RequestOutcome::kRejected:
        collector_.record_rejection(now, page, pattern, group);
        break;
    }
  });
}

sim::Task<void> LoadGenerator::run_client(ClientGroupSpec spec, bool is_browser,
                                          sim::SimTime end_at, sim::RngStream rng) {
  // Stagger client start uniformly across one think interval so the fleet
  // does not fire in lock-step.
  co_await sim_.wait(sim::Duration::seconds(rng.uniform(0.0, cfg_.think_time.as_seconds())));

  while (sim_.now() < end_at) {
    auto script = is_browser ? spec.browser_factory() : spec.writer_factory();
    // Session routing key: a mixed session ordinal, sticky for every page
    // of this session. No RNG draw, so the request trajectory is untouched.
    const std::uint64_t session_key =
        SmallRng::mix(sessions_.fetch_add(1, std::memory_order_relaxed) + 1);
    while (auto req = script->next()) {
      if (sim_.now() >= end_at) co_return;
      req->session_key = session_key;
      const sim::SimTime start = sim_.now();
      requests_.fetch_add(1, std::memory_order_relaxed);  // counted at issue time
      const RequestOutcome out = co_await executor_.execute(spec.client_node, *req);
      const sim::Duration response_time = sim_.now() - start;
      record_outcome(spec, *req, out, response_time);
      // Soft delay (§3.3): DELAY - response_time, so DELAY is the interval
      // between *sending* successive requests.
      const sim::Duration remaining = cfg_.think_time - response_time;
      if (remaining > sim::Duration::zero()) co_await sim_.wait(remaining);
    }
    co_await sim_.wait(cfg_.between_sessions);
  }
}

sim::Task<void> LoadGenerator::issue_one(ClientGroupSpec spec, PageRequest req) {
  const sim::SimTime start = sim_.now();
  requests_.fetch_add(1, std::memory_order_relaxed);  // counted at issue time
  const RequestOutcome out = co_await executor_.execute(spec.client_node, req);
  record_outcome(spec, req, out, sim_.now() - start);
}

sim::Task<void> LoadGenerator::run_open_arrivals(ClientGroupSpec spec, sim::SimTime end_at,
                                                 sim::RngStream rng) {
  if (spec.requests_per_second <= 0.0) co_return;
  const sim::Duration mean_gap = sim::Duration::seconds(1.0 / spec.requests_per_second);
  // One rotating session per kind: each arrival draws its kind, then takes
  // that kind's next page, starting a fresh session when the script ends.
  std::unique_ptr<SessionScript> browser;
  std::unique_ptr<SessionScript> writer;
  std::uint64_t browser_key = 0;
  std::uint64_t writer_key = 0;
  bool browser_sterile = false;
  bool writer_sterile = false;
  while (true) {
    co_await sim_.wait(rng.exponential(mean_gap));
    if (sim_.now() >= end_at) co_return;
    const bool is_browser = rng.bernoulli(spec.browser_fraction);
    if (is_browser ? browser_sterile : writer_sterile) continue;
    std::unique_ptr<SessionScript>& script = is_browser ? browser : writer;
    std::optional<PageRequest> req = script ? script->next() : std::nullopt;
    if (!req) {
      std::unique_ptr<SessionScript> fresh =
          is_browser ? spec.browser_factory() : spec.writer_factory();
      req = fresh->next();
      if (!req) {
        // The factory yields empty scripts: mark the kind sterile once,
        // instead of re-creating (and counting) a session on every later
        // arrival of this kind. A session only counts once its script
        // proves non-empty.
        (is_browser ? browser_sterile : writer_sterile) = true;
        if (browser_sterile && writer_sterile) co_return;
        continue;
      }
      (is_browser ? browser_key : writer_key) =
          SmallRng::mix(sessions_.fetch_add(1, std::memory_order_relaxed) + 1);
      script = std::move(fresh);
    }
    req->session_key = is_browser ? browser_key : writer_key;
    // Open loop: fire and move on — do not await the response. A request
    // in flight at end_at is already counted (issue-time counting) and its
    // outcome is recorded whenever the simulation runs the completion.
    sim_.spawn(issue_one(spec, std::move(*req)));
  }
}

}  // namespace mutsvc::workload

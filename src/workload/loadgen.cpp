#include "workload/loadgen.hpp"

#include <cmath>

namespace mutsvc::workload {

void LoadGenerator::start_group(const ClientGroupSpec& spec, sim::SimTime end_at,
                                sim::RngStream rng) {
  // Open-loop sizing: each client issues ~1/think_time requests per second,
  // so the group needs rate*think_time concurrent clients.
  const double think_s = cfg_.think_time.as_seconds();
  const auto browsers = static_cast<int>(
      std::lround(spec.requests_per_second * spec.browser_fraction * think_s));
  const auto writers = static_cast<int>(
      std::lround(spec.requests_per_second * (1.0 - spec.browser_fraction) * think_s));

  for (int i = 0; i < browsers; ++i) {
    sim_.spawn(run_client(spec, /*is_browser=*/true, end_at,
                          rng.fork("browser-" + std::to_string(i))));
  }
  for (int i = 0; i < writers; ++i) {
    sim_.spawn(run_client(spec, /*is_browser=*/false, end_at,
                          rng.fork("writer-" + std::to_string(i))));
  }
}

sim::Task<void> LoadGenerator::run_client(ClientGroupSpec spec, bool is_browser,
                                          sim::SimTime end_at, sim::RngStream rng) {
  // Stagger client start uniformly across one think interval so the fleet
  // does not fire in lock-step.
  co_await sim_.wait(sim::Duration::seconds(rng.uniform(0.0, cfg_.think_time.as_seconds())));

  while (sim_.now() < end_at) {
    auto script = is_browser ? spec.browser_factory() : spec.writer_factory();
    ++sessions_;
    while (auto req = script->next()) {
      if (sim_.now() >= end_at) co_return;
      const sim::SimTime start = sim_.now();
      const bool ok = co_await executor_.execute(spec.client_node, *req);
      const sim::Duration response_time = sim_.now() - start;
      ++requests_;
      if (ok) {
        collector_.record(sim_.now(), req->page, req->pattern, spec.group, response_time);
      } else {
        collector_.record_failure(sim_.now(), req->page, req->pattern, spec.group);
      }
      // Soft delay (§3.3): DELAY - response_time, so DELAY is the interval
      // between *sending* successive requests.
      const sim::Duration remaining = cfg_.think_time - response_time;
      if (remaining > sim::Duration::zero()) co_await sim_.wait(remaining);
    }
    co_await sim_.wait(cfg_.between_sessions);
  }
}

}  // namespace mutsvc::workload

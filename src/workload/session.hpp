#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "db/value.hpp"
#include "net/types.hpp"

namespace mutsvc::workload {

/// One page request a simulated client issues (a row of Tables 2–5).
struct PageRequest {
  std::string page;       // display name used in the results tables
  std::string pattern;    // service usage pattern: "Browser", "Buyer", "Bidder"
  std::string component;  // entry web component
  std::string method;
  std::vector<db::Value> args;
  net::Bytes request_bytes = 350;
  net::Bytes response_bytes = 6 * 1024;
  /// Deterministic per-session routing key, sticky across every page of a
  /// session (canary binding flips route whole sessions, never single
  /// pages). 0 = unkeyed; stamped by the load drivers without consuming
  /// any RNG draws, so pre-placement trajectories are untouched.
  std::uint64_t session_key = 0;
};

/// A *service usage pattern* (§3.2): a frequently executed scenario of
/// service invocation. Concrete scripts produce a logically ordered page
/// sequence (e.g. an Item request always follows the Product it belongs
/// to); returning nullopt ends the session.
class SessionScript {
 public:
  virtual ~SessionScript() = default;
  [[nodiscard]] virtual std::optional<PageRequest> next() = 0;
  [[nodiscard]] virtual const char* pattern() const = 0;
};

using SessionFactory = std::function<std::unique_ptr<SessionScript>()>;

}  // namespace mutsvc::workload

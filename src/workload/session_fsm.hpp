#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "net/types.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "stats/collector.hpp"
#include "workload/arrivals.hpp"
#include "workload/loadgen.hpp"
#include "workload/session.hpp"

namespace mutsvc::workload {

/// Per-session scratch words carried inside the 40-byte session record. A
/// script model interprets them however it likes (the Pet Store browser
/// keeps the current category and product; the buyer its account and item).
struct FsmScratch {
  std::uint64_t w0 = 0;
  std::uint64_t w1 = 0;
};

/// A session script as an explicit FSM (DESIGN §16): one immutable, shared
/// model instance replays any number of concurrent sessions, each described
/// entirely by (step, scratch, rng state) in its session record.
///
/// `next` must be a pure function of its arguments — no hidden per-session
/// state — so the engine can suspend a session as 40 bytes and resume it
/// from any creation order with identical results.
class FsmScriptModel {
 public:
  virtual ~FsmScriptModel() = default;
  /// Page for 0-based `step`, or nullopt to end the session.
  [[nodiscard]] virtual std::optional<PageRequest> next(std::uint32_t step, FsmScratch& scratch,
                                                        SmallRng& rng) const = 0;
  [[nodiscard]] virtual const char* pattern() const = 0;
};

/// Million-session load engine (DESIGN §16).
///
/// Instead of one live coroutine per simulated client, every session is a
/// 40-byte POD record in a flat arena: {rng word, two scratch words,
/// next-fire time, script cursor, kind, mode}. Idle sessions cost no kernel
/// events at all — they sit in a calendar of due-time buckets
/// (`calendar_quantum` wide, 4 bytes per session); each bucket is armed
/// with a single tick event that fans its sessions out to precise kernel
/// timers, so the event heap only ever holds ~one bucket's worth of the
/// fleet. A transient coroutine exists only while a request is in flight.
///
/// Timing semantics match the coroutine LoadGenerator exactly: §3.3 soft
/// delay (next request fires think_time after the previous one was
/// *issued*), between_sessions pause between recurring sessions, uniform
/// stagger across one think interval at start. Requests are counted at
/// issue time and no request is issued at or after end_at; completions
/// landing after end_at record whenever the simulation runs them (the
/// documented end-of-run rule shared with LoadGenerator).
///
/// Determinism: all engine state is touched only from the engine's own
/// events, so an engine constructed under a DomainScope runs entirely
/// inside that lookahead domain; collector records go through
/// Simulator::sequenced like LoadGenerator::record_outcome, and bucket
/// drains sort by (due time, session id). Results are therefore
/// bit-identical under the windowed parallel executor at any worker count.
/// Per-session rng streams are pure functions of (seed, stream index).
class SessionFsmEngine {
 public:
  enum class Mode : std::uint8_t {
    kRecurring,  // closed-loop population: re-runs after between_sessions
    kOneShot,    // arrival-driven: one script, then the session leaves
  };

  struct Config {
    /// §3.3 soft inter-request DELAY (interval between *sending* requests).
    sim::Duration think_time = sim::sec(7);
    /// Pause between consecutive sessions of one recurring client.
    sim::Duration between_sessions = sim::sec(2);
    /// Calendar bucket width. Smaller buckets mean more tick events but a
    /// smaller peak event heap; the default keeps the heap near
    /// think_time/quantum-th of the fleet.
    sim::Duration calendar_quantum = sim::ms(100);
    /// Salt mixed into each session's sticky routing key
    /// (mix(id ^ salt), no RNG draw — the record stays 40 bytes and the
    /// request trajectory is untouched).
    std::uint64_t session_salt = 0;
  };

  SessionFsmEngine(sim::Simulator& sim, RequestExecutor& executor,
                   stats::ResponseTimeCollector& collector, Config cfg);
  SessionFsmEngine(sim::Simulator& sim, RequestExecutor& executor,
                   stats::ResponseTimeCollector& collector);

  SessionFsmEngine(const SessionFsmEngine&) = delete;
  SessionFsmEngine& operator=(const SessionFsmEngine&) = delete;

  /// Registers a session kind. All kinds must be added before any load is
  /// started.
  std::uint8_t add_kind(std::shared_ptr<const FsmScriptModel> model, net::NodeId client_node,
                        stats::ClientGroup group);

  /// Closed-loop population: `count` recurring sessions of `kind`, start
  /// staggered uniformly across one think interval. Runs until `end_at`.
  void start_population(std::uint8_t kind, std::size_t count, sim::SimTime end_at,
                        std::uint64_t seed);

  /// Arrival-driven load: sessions of `kind` arrive per the envelope
  /// (nonhomogeneous Poisson), each runs one script and leaves.
  void start_arrivals(std::uint8_t kind, RateEnvelope envelope, sim::SimTime end_at,
                      std::uint64_t seed);

  // --- accounting ---------------------------------------------------------
  // issued == completed + in_flight at any instant; a session is counted in
  // sessions_started once its first request is issued (a script that is
  // empty from step 0 is never counted — the rule the open-loop
  // LoadGenerator fix shares).
  [[nodiscard]] std::uint64_t requests_issued() const {
    return requests_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t requests_completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t requests_in_flight() const {
    return requests_issued() - requests_completed();
  }
  [[nodiscard]] std::uint64_t sessions_started() const {
    return sessions_.load(std::memory_order_relaxed);
  }

  /// Sessions currently resident in the arena (recurring sessions stay
  /// resident for the whole run; one-shot sessions leave at script end).
  [[nodiscard]] std::size_t live_sessions() const { return live_; }
  [[nodiscard]] std::size_t peak_live_sessions() const { return peak_live_; }

  /// Bytes of session state actually held: arena records plus calendar
  /// entries and free-list slots. The metric behind kernel.sessions'
  /// memory-per-session.
  [[nodiscard]] std::size_t arena_bytes() const;

  [[nodiscard]] static constexpr std::size_t record_bytes() { return sizeof(SessionRecord); }

 private:
  struct SessionRecord {
    std::uint64_t rng_state = 0;
    std::uint64_t w0 = 0;
    std::uint64_t w1 = 0;
    sim::SimTime next_fire;
    std::uint32_t step = 0;
    std::uint8_t kind = 0;
    std::uint8_t mode = 0;
    std::uint16_t reserved = 0;
  };
  static_assert(sizeof(SessionRecord) == 40, "session records must stay tens of bytes");

  struct Kind {
    std::shared_ptr<const FsmScriptModel> model;
    net::NodeId client_node;
    stats::ClientGroup group;
  };

  void set_end(sim::SimTime end_at);
  [[nodiscard]] std::uint32_t alloc_session(std::uint8_t kind, std::uint64_t rng_seed,
                                            Mode mode);
  void release_session(std::uint32_t id);
  /// Files the session under its due-time bucket (or schedules a precise
  /// event directly when the bucket has already started).
  void enqueue(std::uint32_t id, sim::SimTime due);
  void drain_bucket(std::int64_t bucket);
  /// Advances the session's FSM one step: draws the next page and launches
  /// the in-flight coroutine, or handles script end.
  void fire(std::uint32_t id);
  void finish_script(std::uint32_t id);
  [[nodiscard]] sim::Task<void> issue(std::uint32_t id, PageRequest req, sim::SimTime issued_at);
  [[nodiscard]] sim::Task<void> arrival_pump(std::uint8_t kind, RateEnvelope envelope,
                                             std::uint64_t seed);

  sim::Simulator& sim_;
  RequestExecutor& executor_;
  stats::ResponseTimeCollector& collector_;
  Config cfg_;
  std::vector<Kind> kinds_;

  std::vector<SessionRecord> arena_;
  std::vector<std::uint32_t> free_ids_;
  /// bucket index (due_micros / quantum_micros) -> session ids due inside
  /// it. Each key is armed with exactly one tick event at the bucket start.
  std::map<std::int64_t, std::vector<std::uint32_t>> calendar_;

  sim::SimTime end_at_ = sim::SimTime::max();
  bool started_ = false;
  // Engine structures above are single-domain; these sums are read by
  // cross-domain observers, so they follow the loadgen convention:
  // commutative sums in relaxed atomics.
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> sessions_{0};
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;
};

}  // namespace mutsvc::workload

#include "net/http.hpp"

namespace mutsvc::net {

sim::Task<void> HttpTransport::request(NodeId client, NodeId server, Bytes request_body,
                                       std::function<sim::Task<Bytes>()> handler) {
  ++requests_;

  bool need_handshake = true;
  if (cfg_.keep_alive) {
    auto key = std::make_pair(client, server);
    if (pooled_.contains(key)) {
      need_handshake = false;
    } else {
      pooled_.insert(key);
    }
  }
  if (need_handshake && client != server) {
    ++handshakes_;
    co_await net_.deliver(client, server, cfg_.handshake_bytes);  // SYN
    co_await net_.deliver(server, client, cfg_.handshake_bytes);  // SYN-ACK
  }

  co_await net_.deliver(client, server, cfg_.request_overhead + request_body);
  Bytes response_body = co_await handler();
  co_await net_.deliver(server, client, cfg_.response_overhead + response_body);
}

}  // namespace mutsvc::net

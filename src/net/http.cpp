#include "net/http.hpp"

#include <exception>

namespace mutsvc::net {

sim::Task<void> HttpTransport::request(NodeId client, NodeId server, Bytes request_body,
                                       std::function<sim::Task<Bytes>()> handler,
                                       stats::TraceSink* trace) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const sim::SimTime t0 = net_.simulator().now();
  const std::uint32_t span =
      trace == nullptr ? 0
                       : trace->begin_span(stats::SpanKind::kHttpWire, "http", client.value(),
                                           server.value(), t0);
  sim::Duration server_time = sim::Duration::zero();
  std::exception_ptr err;
  try {
    bool need_handshake = true;
    if (cfg_.keep_alive) {
      auto key = std::make_pair(client, server);
      if (pooled_.contains(key)) {
        need_handshake = false;
      } else {
        pooled_.insert(key);
      }
    }
    if (need_handshake && client != server) {
      handshakes_.fetch_add(1, std::memory_order_relaxed);
      co_await net_.deliver(client, server, cfg_.handshake_bytes);  // SYN
      co_await net_.deliver(server, client, cfg_.handshake_bytes);  // SYN-ACK
    }

    co_await net_.deliver(client, server, cfg_.request_overhead + request_body);
    const sim::SimTime s0 = net_.simulator().now();
    Bytes response_body = co_await handler();
    server_time = net_.simulator().now() - s0;
    co_await net_.deliver(server, client, cfg_.response_overhead + response_body);
  } catch (...) {
    // co_await is illegal in a catch block; close the span outside.
    err = std::current_exception();
  }
  if (trace != nullptr) {
    const sim::SimTime end = net_.simulator().now();
    trace->add(stats::SpanKind::kHttpWire, (end - t0) - server_time);
    trace->end_span(span, end);
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace mutsvc::net

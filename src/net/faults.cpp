#include "net/faults.hpp"

#include <algorithm>

namespace mutsvc::net {

FaultInjector::FaultInjector(sim::Simulator& sim, Topology& topo, FaultPlan plan)
    : sim_(sim),
      topo_(topo),
      plan_(std::move(plan)),
      loss_rng_(sim.rng().fork("fault-loss")),
      jitter_rng_(sim.rng().fork("fault-jitter")),
      flap_rng_(sim.rng().fork("fault-flap")) {}

double FaultInjector::loss_prob_for(const Link& link) const {
  for (const auto& o : plan_.link_loss) {
    if ((o.a == link.from && o.b == link.to) || (o.a == link.to && o.b == link.from)) {
      return o.prob;
    }
  }
  return plan_.loss_prob;
}

bool FaultInjector::lose_message(const Link& link) {
  const double p = loss_prob_for(link);
  return p > 0.0 && loss_rng_.bernoulli(p);
}

sim::Duration FaultInjector::jitter(const Link& link) {
  (void)link;
  if (plan_.jitter == JitterKind::kNone || plan_.jitter_mean <= sim::Duration::zero()) {
    return sim::Duration::zero();
  }
  if (plan_.jitter == JitterKind::kUniform) {
    return sim::Duration::seconds(
        jitter_rng_.uniform(0.0, 2.0 * plan_.jitter_mean.as_seconds()));
  }
  return jitter_rng_.exponential(plan_.jitter_mean);
}

void FaultInjector::set_partition(const std::vector<NodeId>& members, bool cut) {
  auto inside = [&](NodeId n) {
    return std::find(members.begin(), members.end(), n) != members.end();
  };
  for (Link* l : topo_.all_links()) {
    if (inside(l->from) != inside(l->to)) l->up = !cut;
  }
  topo_.invalidate_routes();
}

sim::Task<void> FaultInjector::random_flapper() {
  const sim::SimTime until = sim::SimTime::origin() + plan_.random_flap_until;
  const double mean_gap = 1.0 / plan_.random_flap_rate_per_sec;
  while (true) {
    co_await sim_.wait(sim::Duration::seconds(flap_rng_.exponential(mean_gap)));
    if (sim_.now() >= until) co_return;
    // Pick a duplex pair: directed links are created in adjacent pairs.
    std::vector<Link*> links = topo_.all_links();
    if (links.empty()) co_return;
    const auto pair_count = static_cast<std::int64_t>(links.size() / 2);
    Link* l = links[static_cast<std::size_t>(flap_rng_.uniform_int(0, pair_count - 1)) * 2];
    const NodeId a = l->from;
    const NodeId b = l->to;
    ++random_flaps_;
    topo_.set_link_state(a, b, false);
    const sim::Duration down = flap_rng_.exponential(plan_.random_flap_mean_down);
    sim_.schedule_after(down, [this, a, b] { topo_.set_link_state(a, b, true); });
  }
}

void FaultInjector::arm() {
  const sim::SimTime origin = sim::SimTime::origin();
  for (const FaultPlan::LinkFlap& f : plan_.flaps) {
    sim_.schedule_at(origin + f.down_at, [this, f] {
      ++flaps_;
      topo_.set_link_state(f.a, f.b, false);
    });
    sim_.schedule_at(origin + f.down_at + f.down_for,
                     [this, f] { topo_.set_link_state(f.a, f.b, true); });
  }
  for (const FaultPlan::NodeCrash& c : plan_.crashes) {
    sim_.schedule_at(origin + c.crash_at, [this, c] {
      ++crashes_;
      topo_.set_node_state(c.node, false);
    });
    sim_.schedule_at(origin + c.crash_at + c.down_for, [this, c] {
      ++restarts_;
      topo_.set_node_state(c.node, true);
      // The restarted server comes back with cold caches: whoever owns the
      // cached state (the component runtime) drops it here.
      if (on_restart_) on_restart_(c.node);
    });
  }
  for (const FaultPlan::Partition& p : plan_.partitions) {
    sim_.schedule_at(origin + p.start_at, [this, p] {
      ++partitions_;
      set_partition(p.members, true);
    });
    sim_.schedule_at(origin + p.start_at + p.heal_after,
                     [this, p] { set_partition(p.members, false); });
  }
  if (plan_.random_flap_rate_per_sec > 0.0 &&
      plan_.random_flap_until > sim::Duration::zero()) {
    sim_.spawn(random_flapper());
  }
}

}  // namespace mutsvc::net

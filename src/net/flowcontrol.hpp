#pragma once

#include <algorithm>
#include <cmath>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <stdexcept>

#include "net/types.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace mutsvc::net {

/// A bounded queue refused an item under OverflowPolicy::kBounce. Derives
/// from NetError so it rides the existing transient-failure machinery —
/// whole-page retries, coalescer flush re-merge, queued-write redelivery —
/// instead of needing its own recovery paths.
class OverloadError : public NetError {
 public:
  using NetError::NetError;
};

/// What a bounded queue does with an arrival once it is at capacity
/// (the multi-DC overflow menu): drop it on the floor, bounce it back to
/// the producer as a retryable failure, or divert it into a local spill
/// buffer that drains once the queue falls to its low watermark.
enum class OverflowPolicy { kDrop, kBounce, kLocalOverflow };

[[nodiscard]] inline const char* to_string(OverflowPolicy p) {
  switch (p) {
    case OverflowPolicy::kDrop:
      return "drop";
    case OverflowPolicy::kBounce:
      return "bounce";
    case OverflowPolicy::kLocalOverflow:
      return "local-overflow";
  }
  return "?";
}

/// Capacity + overflow policy for one queue family. `capacity == 0` keeps
/// the seed's unbounded behaviour (no shedding, no watermarks, no credit
/// signal) — the off state must be indistinguishable from the pre-flow-
/// control code, event for event.
struct QueueBound {
  std::size_t capacity = 0;
  OverflowPolicy policy = OverflowPolicy::kDrop;
  /// kLocalOverflow: spill-buffer capacity per queue (0 = unbounded spill).
  /// A full spill buffer sheds, so memory stays bounded either way.
  std::size_t spill_capacity = 0;
  /// Credit watermarks on the backlog (queue + spill). Zero derives 3/4 of
  /// capacity (high) and 1/4 (low).
  std::size_t high_watermark = 0;
  std::size_t low_watermark = 0;

  [[nodiscard]] bool bounded() const { return capacity > 0; }
  [[nodiscard]] std::size_t high() const {
    if (!bounded()) return 0;
    const std::size_t h =
        high_watermark > 0 ? high_watermark : std::max<std::size_t>(1, capacity * 3 / 4);
    return std::min(h, capacity);
  }
  [[nodiscard]] std::size_t low() const {
    if (!bounded()) return 0;
    const std::size_t h = high();
    const std::size_t l = low_watermark > 0 ? low_watermark : capacity / 4;
    return h > 0 ? std::min(l, h - 1) : 0;  // hysteresis needs low < high
  }
};

/// Deterministic token bucket on the integer simulation clock, in GCRA
/// form: instead of a fractional token count it tracks the theoretical
/// arrival time (TAT) of the next conforming request, so admission is pure
/// integer-microsecond arithmetic — bit-identical at any MUTSVC_JOBS value
/// and under SimCheck, with no float accumulation drift.
class TokenBucket {
 public:
  /// `rate_per_sec` sustained admissions per second; `burst` requests may
  /// pass back to back after an idle period (>= 1).
  TokenBucket(double rate_per_sec, double burst) {
    if (rate_per_sec <= 0.0) throw std::invalid_argument("TokenBucket: rate must be > 0");
    if (burst < 1.0) throw std::invalid_argument("TokenBucket: burst must be >= 1");
    const auto us = static_cast<std::int64_t>(std::llround(1e6 / rate_per_sec));
    increment_ = sim::Duration::micros(std::max<std::int64_t>(us, 1));
    tolerance_ = sim::Duration::micros(static_cast<std::int64_t>(
        std::llround((burst - 1.0) * static_cast<double>(increment_.count_micros()))));
  }

  /// Admits or rejects the arrival at `now`; admission commits one token.
  [[nodiscard]] bool try_acquire(sim::SimTime now) {
    if (tat_ <= now + tolerance_) {
      tat_ = std::max(tat_, now) + increment_;
      ++admitted_;
      return true;
    }
    ++rejected_;
    return false;
  }

  [[nodiscard]] std::uint64_t admitted() const { return admitted_; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }

 private:
  sim::Duration increment_;
  sim::Duration tolerance_;
  sim::SimTime tat_ = sim::SimTime::origin();
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
};

/// Byte-rate shaper for a link (the WAN rate limit): a leaky bucket over
/// bytes that never rejects — it returns how long the caller must delay
/// before its bytes may enter the pipe. State commits at reservation time,
/// so concurrent senders are serialized deterministically in call order.
class RateLimiter {
 public:
  /// `rate_bps` in bits per second (matching Link::bandwidth_bps);
  /// exactly `burst_bytes` may enter immediately after an idle period.
  RateLimiter(double rate_bps, Bytes burst_bytes)
      : rate_bps_(rate_bps), burst_(static_cast<double>(burst_bytes)), tokens_(burst_) {
    if (rate_bps <= 0.0) throw std::invalid_argument("RateLimiter: rate must be > 0");
  }

  /// Reserves `size` bytes at `now`; the caller must wait the returned
  /// duration before transmitting (zero when within the burst allowance).
  [[nodiscard]] sim::Duration reserve(sim::SimTime now, Bytes size) {
    // Continuous line-rate refill capped at the burst depth. `tokens_`
    // goes negative when callers reserve ahead of the line rate; the
    // deficit is exactly the backlog this reservation must wait out.
    if (now > last_) {
      const double refill = (now - last_).as_seconds() * rate_bps_ / 8.0;
      tokens_ = std::min(burst_, tokens_ + refill);
      last_ = now;
    }
    tokens_ -= static_cast<double>(size);
    bytes_ += size;
    if (tokens_ >= 0.0) return sim::Duration::zero();
    const sim::Duration delay = sim::Duration::seconds(-tokens_ * 8.0 / rate_bps_);
    ++throttled_;
    throttle_time_ += delay;
    return delay;
  }

  [[nodiscard]] std::uint64_t throttled() const { return throttled_; }
  [[nodiscard]] sim::Duration throttle_time() const { return throttle_time_; }
  [[nodiscard]] Bytes bytes_shaped() const { return bytes_; }

 private:
  double rate_bps_;
  double burst_;
  double tokens_;
  sim::SimTime last_ = sim::SimTime::origin();
  std::uint64_t throttled_ = 0;
  sim::Duration throttle_time_;
  Bytes bytes_ = 0;
};

/// The backpressure credit signal: writers `co_await wait()` before
/// producing; a queue crossing its high watermark closes the gate, parking
/// them, and falling back to the low watermark reopens it, resuming the
/// parked writers in FIFO order. Each resumed writer re-checks the gate, so
/// a refill that immediately re-crosses the high watermark parks the rest
/// again — the producers collectively slow to the consumer's drain rate.
class CreditGate {
 public:
  explicit CreditGate(sim::Simulator& sim) : sim_(sim) {}

  CreditGate(const CreditGate&) = delete;
  CreditGate& operator=(const CreditGate&) = delete;

  [[nodiscard]] bool open() const { return open_; }
  [[nodiscard]] std::size_t waiting() const { return waiters_.size(); }
  /// Number of wait() calls that actually parked (counted once per call).
  [[nodiscard]] std::uint64_t stalls() const { return stalls_; }

  void close_gate() { open_ = false; }

  void open_gate() {
    if (open_) return;
    open_ = true;
    // Move the list out first: a resumed writer may close the gate and
    // park again inside its resume.
    std::deque<std::coroutine_handle<>> parked = std::move(waiters_);
    waiters_.clear();
    for (std::coroutine_handle<> h : parked) {
      // schedule_after(0) preserves FIFO order via the event heap's stable
      // same-time tie-break.
      sim_.schedule_after(sim::Duration::zero(), [h] { h.resume(); });
    }
  }

  /// Completes immediately while the gate is open (no event scheduled, so
  /// the trajectory is untouched when flow control never closes it).
  [[nodiscard]] sim::Task<void> wait() {
    bool counted = false;
    while (!open_) {
      if (!counted) {
        ++stalls_;
        counted = true;
      }
      co_await Park{*this};
    }
  }

 private:
  struct Park {
    CreditGate& gate;
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { gate.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };

  sim::Simulator& sim_;
  bool open_ = true;
  std::deque<std::coroutine_handle<>> waiters_;
  std::uint64_t stalls_ = 0;
};

/// Off-by-default overload protection (flash-crowd robustness). When
/// `enabled` is false nothing below is installed anywhere: no buckets, no
/// bounds, no limiters, no gates — trajectories are bit-identical to the
/// pre-flow-control simulator (golden-enforced).
struct FlowControlConfig {
  bool enabled = false;

  /// (1) Admission control: one deterministic token bucket per entry node,
  /// in pages/sec. Rejected pages complete instantly with the distinct
  /// `rejected_admission` outcome. Zero leaves admission off even when
  /// flow control is otherwise enabled.
  double admission_rate = 0.0;
  double admission_burst = 10.0;

  /// (2) Bounded queues with shedding.
  QueueBound topic_queue;     // msg::Topic per-subscriber queues
  QueueBound coalescer_lane;  // msg::Coalescer per-lane buffered items
  QueueBound write_queue;     // degraded-mode store-and-forward queues

  /// (3) Per-WAN-link byte shaping, bits/sec per directed link crossing the
  /// WAN threshold (0 = unlimited).
  double wan_rate_bps = 0.0;
  Bytes wan_burst_bytes = 64 * 1024;

  /// (4) Backpressure: credit gates on the topic-queue watermarks; the
  /// facade async publish path and the coalescer flush park while closed.
  bool backpressure = true;
};

}  // namespace mutsvc::net

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "net/flowcontrol.hpp"
#include "net/topology.hpp"
#include "net/types.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace mutsvc::net {

class FaultInjector;

/// Moves messages across the topology.
///
/// Per directed link a message first queues at the link's FIFO serializer
/// (transmission time = size / bandwidth) and then experiences the link's
/// propagation latency; consecutive hops are traversed store-and-forward,
/// with a small per-hop router overhead (the Click router of Figure 2).
class Network {
 public:
  Network(sim::Simulator& sim, Topology& topo, sim::Duration per_hop_overhead = sim::us(50))
      : sim_(sim), topo_(topo), per_hop_overhead_(per_hop_overhead) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Delivers one message; completes when the last byte arrives at `to`.
  /// Throws NoRouteError before any traffic is generated when no live route
  /// exists, and DeliveryError (after the time spent up to the losing hop)
  /// when the fault injector drops the message.
  [[nodiscard]] sim::Task<void> deliver(NodeId from, NodeId to, Bytes size);

  /// Installs a fault injector consulted per hop for message loss and
  /// latency jitter. Null detaches it. The injector must outlive all
  /// in-flight deliveries.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }
  [[nodiscard]] FaultInjector* fault_injector() const { return faults_; }

  /// Round-trip propagation latency between two nodes (no queueing).
  [[nodiscard]] sim::Duration rtt(NodeId a, NodeId b) { return topo_.rtt(a, b); }

  [[nodiscard]] Topology& topology() { return topo_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  /// Installs the node→lookahead-domain map (DESIGN §15). Once set, every
  /// hop's propagation wait resumes the delivery in the destination node's
  /// domain (`wait_in`), which is the ONLY way an event crosses a domain
  /// boundary — exactly the SimRace message-edge discipline, now enforced
  /// by the kernel. Same-domain hops degenerate to a local wait.
  void set_domains(std::vector<sim::Simulator::DomainId> domain_of_node) {
    domain_of_node_ = std::move(domain_of_node);
  }

  /// Lookahead domain a node executes in (0 when domains are not installed).
  [[nodiscard]] sim::Simulator::DomainId domain_of(NodeId n) const {
    return domain_of_node_.empty() ? 0 : domain_of_node_[n.value()];
  }

  // --- accounting ---------------------------------------------------------
  // A message counts as "sent" only once a live route was resolved (a send
  // that throws NoRouteError generated no traffic). Lost messages DID
  // occupy the wire up to the losing hop, so they stay in messages_sent and
  // are additionally counted in messages_lost. Counters are commutative
  // sums held in relaxed atomics so parallel-domain trials read/write them
  // without an order dependency — totals are identical either way.
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t wan_messages_sent() const { return wan_messages_.load(std::memory_order_relaxed); }
  [[nodiscard]] Bytes bytes_sent() const { return bytes_.load(std::memory_order_relaxed); }
  [[nodiscard]] Bytes wan_bytes_sent() const { return wan_bytes_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t messages_lost() const { return messages_lost_.load(std::memory_order_relaxed); }
  [[nodiscard]] Bytes bytes_lost() const { return bytes_lost_.load(std::memory_order_relaxed); }
  void reset_counters() {
    messages_ = wan_messages_ = messages_lost_ = 0;
    bytes_ = wan_bytes_ = bytes_lost_ = 0;
  }

  /// A link is "WAN" if its propagation latency passes this threshold;
  /// used for accounting (tests assert WAN-crossing counts per page), for
  /// selecting which links the WAN rate limit applies to, and as the
  /// lookahead-domain boundary for SimRace.
  void set_wan_threshold(sim::Duration d) { wan_threshold_ = d; }
  [[nodiscard]] sim::Duration wan_threshold() const { return wan_threshold_; }

  /// Installs a per-directed-WAN-link byte shaper (flow control §3):
  /// messages entering a WAN link beyond `rate_bps` (burst allowance
  /// `burst_bytes`) are delayed to the conforming rate before they reach
  /// the link serializer. Limiters are created lazily per link, keyed by
  /// (from, to) — deterministic regardless of traversal order.
  void set_wan_rate_limit(double rate_bps, Bytes burst_bytes);

  [[nodiscard]] std::uint64_t wan_throttled() const { return wan_throttled_.load(std::memory_order_relaxed); }
  [[nodiscard]] sim::Duration wan_throttle_time() const {
    return sim::Duration::micros(wan_throttle_micros_.load(std::memory_order_relaxed));
  }

 private:
  [[nodiscard]] RateLimiter& wan_limiter(const Link& link);

  sim::Simulator& sim_;
  Topology& topo_;
  sim::Duration per_hop_overhead_;
  sim::Duration wan_threshold_ = sim::ms(10);
  FaultInjector* faults_ = nullptr;
  double wan_rate_bps_ = 0.0;  // 0 = no WAN shaping (the default)
  Bytes wan_burst_bytes_ = 0;
  // Pre-created for every WAN link when the limit is installed, so the map
  // structure is immutable during a (possibly parallel) run; each limiter's
  // state is only touched from its own link's source domain.
  std::map<std::pair<std::uint32_t, std::uint32_t>, RateLimiter> wan_limiters_;
  std::vector<sim::Simulator::DomainId> domain_of_node_;  // empty = sequential
  std::atomic<std::uint64_t> wan_throttled_{0};
  std::atomic<std::int64_t> wan_throttle_micros_{0};
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> wan_messages_{0};
  std::atomic<std::uint64_t> messages_lost_{0};
  std::atomic<Bytes> bytes_{0};
  std::atomic<Bytes> wan_bytes_{0};
  std::atomic<Bytes> bytes_lost_{0};
};

}  // namespace mutsvc::net

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include <string>

#include "net/network.hpp"
#include "net/resilience.hpp"
#include "net/types.hpp"
#include "sim/random.hpp"
#include "stats/metrics.hpp"
#include "stats/trace.hpp"

namespace mutsvc::net {

struct RmiConfig {
  Bytes call_overhead = 300;   // marshalled method descriptor + headers
  Bytes reply_overhead = 200;

  /// §4.2: "RMI can require more than one round trip for a single method
  /// invocation ... mainly due to ping packets and distributed garbage
  /// collection" [Campadello et al.]. Fraction of calls paying one extra
  /// small round trip.
  double extra_rtt_prob = 0.25;

  /// §4.3: "more than half of the data traffic incurred by RMI is due to
  /// distributed garbage collection" — multiplier on transferred bytes.
  double dgc_traffic_factor = 2.0;
  Bytes ping_bytes = 64;

  /// One JNDI lookup / stub-creation exchange (amortized away by the
  /// EJBHomeFactory pattern; see comp::StubCache).
  Bytes stub_request = 200;
  Bytes stub_response = 1024;
};

/// Remote Method Invocation cost model over pooled container-to-container
/// connections (no per-call TCP handshake).
///
/// When a ResilienceConfig is enabled, every remote call runs under the
/// resilience policy: per-attempt timeout (lost messages are silent — the
/// caller waits out the timeout before retrying), bounded retries with
/// exponential backoff + jitter, and a per-destination circuit breaker.
/// Server work executes at most once per call: a retry whose predecessor
/// completed the work but lost the reply only replays the exchange
/// (idempotent replay, the reply is served from the completed execution).
class RmiTransport {
 public:
  RmiTransport(Network& net, RmiConfig cfg = {})
      : net_(net), cfg_(cfg), rng_(net.simulator().rng().fork("rmi")) {}

  RmiTransport(const RmiTransport&) = delete;
  RmiTransport& operator=(const RmiTransport&) = delete;

  /// One remote invocation: marshal + request, server-side work
  /// (caller-provided), reply. Local (same-node) calls are free at this
  /// layer; the container adds local dispatch cost. With a TraceSink the
  /// transport opens an inclusive caller -> callee span around the whole
  /// call (retries, backoff and timeout waits included) and accounts the
  /// exclusive wire time — elapsed minus server work — under
  /// SpanKind::kRmiWire; spans opened by the server work become children.
  [[nodiscard]] sim::Task<void> call(NodeId caller, NodeId callee, Bytes args, Bytes result,
                                     std::function<sim::Task<void>()> server_work,
                                     stats::TraceSink* trace = nullptr);

  /// Like `call`, but the reply payload size is produced by the server-side
  /// work (result sets whose size is only known after execution).
  [[nodiscard]] sim::Task<void> call_dynamic(NodeId caller, NodeId callee, Bytes args,
                                             std::function<sim::Task<Bytes>()> server_work,
                                             stats::TraceSink* trace = nullptr);

  /// One stub-acquisition exchange (JNDI lookup or initial remote-stub
  /// creation). Costs one round trip.
  [[nodiscard]] sim::Task<void> stub_exchange(NodeId caller, NodeId callee,
                                              stats::TraceSink* trace = nullptr);

  /// Switches the extra-RTT / backoff randomness from the shared "rmi"
  /// stream to one forked stream per caller node ("rmi-node-<i>"). Forking
  /// is a pure function of the root seed and the name, so each node's draw
  /// sequence is fixed regardless of how calls from different nodes
  /// interleave — the property that lets lookahead domains run in parallel
  /// without perturbing the draws. Call before issuing traffic.
  void partition_streams(std::size_t node_count);

  /// Installs the resilience policy. Call before issuing traffic.
  void set_resilience(ResilienceConfig res) { res_ = res; }
  [[nodiscard]] const ResilienceConfig& resilience() const { return res_; }

  /// Mirrors the resilience counters (retries, timeouts, failed calls,
  /// breaker rejections and state transitions) into `m` live, at the event
  /// that bumps them. Names are `<prefix>retries`, `<prefix>breaker.opened`,
  /// ... Null detaches.
  void set_metrics(stats::MetricsRegistry* m, std::string prefix = "rmi.") {
    metrics_ = m;
    metrics_prefix_ = std::move(prefix);
    sync_metrics();
  }

  /// True when a call to `callee` made now would be rejected by its open
  /// circuit breaker — callers can skip doomed work and degrade instead.
  [[nodiscard]] bool fast_fail(NodeId callee) const {
    if (!res_.enabled) return false;
    auto it = breakers_.find(callee);
    return it != breakers_.end() && it->second.would_reject(net_.simulator().now());
  }

  /// Breaker for `callee` (created on first use).
  [[nodiscard]] CircuitBreaker& breaker(NodeId callee);

  [[nodiscard]] const RmiConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t calls() const { return calls_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t remote_calls() const { return remote_calls_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t extra_round_trips() const {
    return extra_round_trips_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t stub_exchanges() const {
    return stub_exchanges_.load(std::memory_order_relaxed);
  }

  // --- resilience accounting ----------------------------------------------
  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  [[nodiscard]] std::uint64_t failed_calls() const { return failed_calls_; }
  [[nodiscard]] std::uint64_t breaker_rejections() const { return breaker_rejections_; }
  [[nodiscard]] std::uint64_t breaker_opens() const;
  [[nodiscard]] std::uint64_t breaker_half_opens() const;
  [[nodiscard]] std::uint64_t breaker_closes() const;

 private:
  /// One wire attempt (extra-RTT draw, request, server work, reply).
  [[nodiscard]] sim::Task<void> attempt(NodeId caller, NodeId callee, Bytes args,
                                        std::function<sim::Task<Bytes>()> server_work);

  /// Resilient envelope shared by call/call_dynamic.
  [[nodiscard]] sim::Task<void> do_call(NodeId caller, NodeId callee, Bytes args,
                                        std::function<sim::Task<Bytes>()> server_work);

  /// do_call wrapped in the span + exclusive-wire accounting (no-op sink ->
  /// plain do_call).
  [[nodiscard]] sim::Task<void> traced_call(NodeId caller, NodeId callee, Bytes args,
                                            std::function<sim::Task<Bytes>()> server_work,
                                            stats::TraceSink* trace);

  [[nodiscard]] sim::Duration backoff_delay(NodeId caller, int attempt_no);

  /// Randomness source for a call issued by `caller`: the node's own
  /// stream once partition_streams() ran, the shared legacy stream before.
  [[nodiscard]] sim::RngStream& stream_for(NodeId caller) {
    const std::size_t i = caller.value();
    return i < node_rngs_.size() ? node_rngs_[i] : rng_;
  }

  /// Pushes the current resilience counters into the attached registry.
  void sync_metrics();

  Network& net_;
  RmiConfig cfg_;
  ResilienceConfig res_;
  sim::RngStream rng_;
  std::vector<sim::RngStream> node_rngs_;  // indexed by caller node id
  std::map<NodeId, CircuitBreaker> breakers_;
  // Commutative sums in relaxed atomics: safe to bump from any lookahead
  // domain without an ordering dependency.
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> remote_calls_{0};
  std::atomic<std::uint64_t> extra_round_trips_{0};
  std::atomic<std::uint64_t> stub_exchanges_{0};
  std::uint64_t retries_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t failed_calls_ = 0;
  std::uint64_t breaker_rejections_ = 0;
  stats::MetricsRegistry* metrics_ = nullptr;
  std::string metrics_prefix_ = "rmi.";
};

}  // namespace mutsvc::net

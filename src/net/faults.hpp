#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/topology.hpp"
#include "net/types.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace mutsvc::net {

/// Distribution of the extra per-hop latency injected on top of
/// `Link::latency` (wide-area jitter).
enum class JitterKind { kNone, kUniform, kExponential };

/// Declarative description of every fault a run should experience.
///
/// All time fields are offsets from `SimTime::origin()`, so a plan is
/// independent of when the experiment is constructed. A default-constructed
/// plan is inert (`empty()` is true) and injects nothing.
struct FaultPlan {
  // --- stochastic per-link behaviour --------------------------------------
  /// Probability that one message traversal of one link loses the message.
  double loss_prob = 0.0;

  /// Per-link loss overrides (duplex: matches both directions).
  struct LinkLoss {
    NodeId a, b;
    double prob = 0.0;
  };
  std::vector<LinkLoss> link_loss;

  JitterKind jitter = JitterKind::kNone;
  /// Mean extra latency per hop (uniform draws from [0, 2*mean]).
  sim::Duration jitter_mean = sim::Duration::zero();

  // --- scheduled faults ---------------------------------------------------
  /// Takes the duplex link a<->b down at `down_at` for `down_for`.
  struct LinkFlap {
    NodeId a, b;
    sim::Duration down_at;
    sim::Duration down_for;
  };
  std::vector<LinkFlap> flaps;

  /// Crashes `node` at `crash_at`; it restarts `down_for` later with cold
  /// caches (the restart listener lets the runtime drop that node's
  /// ReadOnlyCache / QueryCache contents).
  struct NodeCrash {
    NodeId node;
    sim::Duration crash_at;
    sim::Duration down_for;
  };
  std::vector<NodeCrash> crashes;

  /// Cuts every link with exactly one endpoint in `members` (a clean
  /// network partition), healing `heal_after` later.
  struct Partition {
    std::vector<NodeId> members;
    sim::Duration start_at;
    sim::Duration heal_after;
  };
  std::vector<Partition> partitions;

  // --- random link flaps --------------------------------------------------
  /// Poisson rate of spontaneous duplex-link flaps across the whole
  /// topology; each flap lasts Exp(flap_mean_down).
  double random_flap_rate_per_sec = 0.0;
  sim::Duration random_flap_mean_down = sim::sec(5);
  /// Random flapping stops at this offset (zero = never starts).
  sim::Duration random_flap_until = sim::Duration::zero();

  [[nodiscard]] bool empty() const {
    return loss_prob <= 0.0 && link_loss.empty() && jitter == JitterKind::kNone &&
           flaps.empty() && crashes.empty() && partitions.empty() &&
           random_flap_rate_per_sec <= 0.0;
  }
};

/// Seeded, deterministic driver of a `FaultPlan`.
///
/// Stochastic draws (loss, jitter, random flaps) come from named streams
/// forked off the simulator's root RNG, so the same seed and plan always
/// produce the same fault sequence. The injector owns the scheduled state
/// transitions; `Network::deliver` consults it per hop for loss and jitter.
class FaultInjector {
 public:
  FaultInjector(sim::Simulator& sim, Topology& topo, FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every planned flap, crash, and partition, and starts the
  /// random-flap process. Call once, before the run.
  void arm();

  /// Invoked with the node id when a crashed node restarts (cache re-warm
  /// hook). Set before `arm()`.
  void set_restart_listener(std::function<void(NodeId)> fn) { on_restart_ = std::move(fn); }

  /// One message is about to traverse `link`: does it get dropped?
  [[nodiscard]] bool lose_message(const Link& link);

  /// Extra latency for one traversal of `link`.
  [[nodiscard]] sim::Duration jitter(const Link& link);

  // --- accounting ---------------------------------------------------------
  [[nodiscard]] std::uint64_t scheduled_flaps() const { return flaps_; }
  [[nodiscard]] std::uint64_t random_flaps() const { return random_flaps_; }
  [[nodiscard]] std::uint64_t crashes() const { return crashes_; }
  [[nodiscard]] std::uint64_t restarts() const { return restarts_; }
  [[nodiscard]] std::uint64_t partitions_cut() const { return partitions_; }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  [[nodiscard]] double loss_prob_for(const Link& link) const;
  void set_partition(const std::vector<NodeId>& members, bool cut);
  [[nodiscard]] sim::Task<void> random_flapper();

  sim::Simulator& sim_;
  Topology& topo_;
  FaultPlan plan_;
  sim::RngStream loss_rng_;
  sim::RngStream jitter_rng_;
  sim::RngStream flap_rng_;
  std::function<void(NodeId)> on_restart_;

  std::uint64_t flaps_ = 0;
  std::uint64_t random_flaps_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t restarts_ = 0;
  std::uint64_t partitions_ = 0;
};

}  // namespace mutsvc::net

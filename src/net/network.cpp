#include "net/network.hpp"

namespace mutsvc::net {

sim::Task<void> Network::deliver(NodeId from, NodeId to, Bytes size) {
  ++messages_;
  bytes_ += size;
  if (from == to) co_return;  // loopback is free

  bool crossed_wan = false;
  for (Link* link : topo_.path(from, to)) {
    if (link->latency >= wan_threshold_) crossed_wan = true;
    co_await link->serializer->consume(link->transmission_time(size));
    co_await sim_.wait(link->latency + per_hop_overhead_);
  }
  if (crossed_wan) {
    ++wan_messages_;
    wan_bytes_ += size;
  }
}

}  // namespace mutsvc::net

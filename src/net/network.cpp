#include "net/network.hpp"

#include "net/faults.hpp"
#include "sim/simrace.hpp"

namespace mutsvc::net {

sim::Task<void> Network::deliver(NodeId from, NodeId to, Bytes size) {
  if (from == to) {  // loopback is free (and lossless: no link traversed)
    messages_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(size, std::memory_order_relaxed);
    co_return;
  }
  // Resolve the route before touching any counter: a send with no live
  // route (NoRouteError) never put a byte on the wire.
  std::vector<Link*> route = topo_.path(from, to);
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(size, std::memory_order_relaxed);

  // SimRace: every delivery is a happens-before edge from the sender's
  // domain to the receiver's. The clock snapshot is taken at send time; a
  // lost message destroys its token and creates no edge. Probes only read
  // the clock — no events scheduled, no randomness drawn — so an analyzed
  // run is bit-identical to a plain one.
  const bool race_on = simrace::enabled();
  simrace::MessageToken race_token;
  if (race_on) race_token = simrace::on_send(from.value());

  bool crossed_wan = false;
  for (Link* link : route) {
    const bool is_wan = link->latency >= wan_threshold_;
    if (is_wan) crossed_wan = true;
    const sim::SimTime hop_entered = sim_.now();
    // WAN shaping (flow control §3): hold the message at the link ingress
    // until its bytes conform to the configured rate. The shaper commits
    // state up front, so concurrent senders serialize deterministically;
    // it draws no randomness, so the fault injector's stream is untouched.
    if (wan_rate_bps_ > 0.0 && is_wan) {
      const sim::Duration hold = wan_limiter(*link).reserve(sim_.now(), size);
      if (hold > sim::Duration::zero()) {
        wan_throttled_.fetch_add(1, std::memory_order_relaxed);
        wan_throttle_micros_.fetch_add(hold.count_micros(), std::memory_order_relaxed);
        co_await sim_.wait(hold);
      }
    }
    // Decide loss up front so the draw order is independent of queueing,
    // but surface it only after the would-be transmission time has passed:
    // a lost message still occupied the serializer and the pipe.
    const bool lost = faults_ != nullptr && faults_->lose_message(*link);
    co_await link->serializer->consume(link->transmission_time(size));
    sim::Duration hop_latency = link->latency + per_hop_overhead_;
    if (faults_ != nullptr) hop_latency += faults_->jitter(*link);
    // The propagation wait carries the delivery into the destination
    // node's lookahead domain (DESIGN §15). A cross-domain hop is staged
    // at the window barrier; a same-domain hop is a plain local wait.
    if (!domain_of_node_.empty()) {
      co_await sim_.wait_in(domain_of_node_[link->to.value()], hop_latency);
    } else {
      co_await sim_.wait(hop_latency);
    }
    if (lost) {
      messages_lost_.fetch_add(1, std::memory_order_relaxed);
      bytes_lost_.fetch_add(size, std::memory_order_relaxed);
      throw DeliveryError("Network::deliver: message lost on link " +
                          topo_.node(link->from).name + "->" + topo_.node(link->to).name);
    }
    // SimRace lookahead certificate: observed event-crossing time of this
    // WAN hop, ingress (before shaping/serialization) to last byte out.
    // Lost messages delivered nothing, so they are excluded above.
    if (race_on && is_wan) {
      simrace::on_link_crossing(link->from.value(), link->to.value(),
                                link->latency.count_micros(),
                                (sim_.now() - hop_entered).count_micros());
    }
  }
  if (race_on) simrace::on_delivered(race_token, to.value());
  if (crossed_wan) {
    wan_messages_.fetch_add(1, std::memory_order_relaxed);
    wan_bytes_.fetch_add(size, std::memory_order_relaxed);
  }
}

void Network::set_wan_rate_limit(double rate_bps, Bytes burst_bytes) {
  wan_rate_bps_ = rate_bps;
  wan_burst_bytes_ = burst_bytes;
  // Pre-create a limiter for every WAN link so the map never mutates once
  // traffic flows; a parallel-domain run touches each limiter from its own
  // link's source domain only, and map lookups are then read-only.
  wan_limiters_.clear();
  if (rate_bps <= 0.0) return;
  for (Link* link : topo_.all_links()) {
    if (link->latency >= wan_threshold_) {
      wan_limiters_.emplace(std::make_pair(link->from.value(), link->to.value()),
                            RateLimiter{wan_rate_bps_, wan_burst_bytes_});
    }
  }
}

RateLimiter& Network::wan_limiter(const Link& link) {
  const auto key = std::make_pair(link.from.value(), link.to.value());
  auto it = wan_limiters_.find(key);
  if (it == wan_limiters_.end()) {
    it = wan_limiters_.emplace(key, RateLimiter{wan_rate_bps_, wan_burst_bytes_}).first;
  }
  return it->second;
}

}  // namespace mutsvc::net

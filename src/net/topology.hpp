#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/types.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace mutsvc::net {

/// What a node is for; used by deployment planning and reporting.
enum class NodeRole { kClientMachine, kAppServer, kDatabaseServer, kRouter };

[[nodiscard]] inline const char* to_string(NodeRole r) {
  switch (r) {
    case NodeRole::kClientMachine: return "client";
    case NodeRole::kAppServer: return "app-server";
    case NodeRole::kDatabaseServer: return "db-server";
    case NodeRole::kRouter: return "router";
  }
  return "?";
}

/// One machine in the testbed. The CPU pool models the paper's
/// dual-processor workstations.
struct Node {
  NodeId id;
  std::string name;
  NodeRole role = NodeRole::kAppServer;
  std::unique_ptr<sim::FifoResource> cpu;  // created by Topology::add_node
};

/// Thrown when no live route exists between two nodes (failure injection).
class NoRouteError : public NetError {
 public:
  using NetError::NetError;
};

/// A directed link: propagation latency plus a FIFO serializer at the link
/// bandwidth (this is how the paper's Click traffic shaper behaved).
struct Link {
  NodeId from;
  NodeId to;
  sim::Duration latency;
  double bandwidth_bps = 0.0;                   // 0 => infinite
  bool up = true;                               // failure injection
  std::unique_ptr<sim::FifoResource> serializer;  // 1-server FIFO

  [[nodiscard]] sim::Duration transmission_time(Bytes size) const {
    if (bandwidth_bps <= 0.0) return sim::Duration::zero();
    return sim::Duration::seconds(static_cast<double>(size) * 8.0 / bandwidth_bps);
  }
};

/// The emulated network graph with static shortest-latency routing.
class Topology {
 public:
  explicit Topology(sim::Simulator& sim) : sim_(sim) {}

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  NodeId add_node(std::string name, NodeRole role, std::size_t cpus = 2);

  /// Adds a duplex link (two directed links with identical parameters).
  void add_link(NodeId a, NodeId b, sim::Duration latency, double bandwidth_bps = 0.0);

  /// Failure injection: takes the duplex link between `a` and `b` down or
  /// back up; routes are recomputed lazily. Throws if no such link exists.
  void set_link_state(NodeId a, NodeId b, bool up);

  /// Takes every link adjacent to `node` down/up (server crash model).
  void set_node_state(NodeId node, bool up);

  /// True if a live route exists.
  [[nodiscard]] bool reachable(NodeId a, NodeId b);

  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] NodeId find(const std::string& name) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  /// Every node carrying `role`, in creation order — e.g. the data tier's
  /// shard nodes for multi-DB topologies.
  [[nodiscard]] std::vector<NodeId> nodes_with_role(NodeRole role) const {
    std::vector<NodeId> out;
    for (const Node& n : nodes_) {
      if (n.role == role) out.push_back(n.id);
    }
    return out;
  }

  /// Every directed link, in creation order (duplex pairs are adjacent).
  /// Used by the fault injector to pick flap victims and cut partitions.
  [[nodiscard]] std::vector<Link*> all_links();

  /// Marks routes stale after direct `Link::up` manipulation.
  void invalidate_routes() { routes_valid_ = false; }

  /// Recomputes routes; called automatically on first routing query after a
  /// topology change.
  void build_routes();

  /// Ordered directed links along the route from `a` to `b`.
  [[nodiscard]] std::vector<Link*> path(NodeId a, NodeId b);

  /// Sum of propagation latencies along the route (no queueing/transmission).
  [[nodiscard]] sim::Duration path_latency(NodeId a, NodeId b);

  /// Partitions nodes into lookahead domains for SimRace / the conservative
  /// parallel executor: connected components of the links whose latency is
  /// below `wan_threshold`, link up/down state ignored (a flapping link is
  /// still the same parallelization boundary). Sub-threshold (LAN) links
  /// give no usable lookahead window, so a LAN island must share one event
  /// queue; only WAN links separate domains. Returns domain id per node
  /// index, ids dense and assigned in node order.
  [[nodiscard]] std::vector<std::uint32_t> lookahead_domains(sim::Duration wan_threshold) const;

  /// Round-trip propagation latency.
  [[nodiscard]] sim::Duration rtt(NodeId a, NodeId b) {
    return path_latency(a, b) + path_latency(b, a);
  }

 private:
  [[nodiscard]] Link* link_between(NodeId a, NodeId b);

  sim::Simulator& sim_;
  std::vector<Node> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  // next_hop_[a][b] = next node on the shortest path a->b, or UINT32_MAX.
  std::vector<std::vector<std::uint32_t>> next_hop_;
  bool routes_valid_ = false;
};

}  // namespace mutsvc::net

#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace mutsvc::net {

/// Client-side resilience policy for remote invocations (RAFDA's argument:
/// distribution policy belongs in the middleware, not in component code).
/// Disabled by default — the seed behaviour (one attempt, failures
/// propagate) is unchanged unless an experiment opts in.
struct ResilienceConfig {
  bool enabled = false;

  /// Per-attempt client-side timeout: a lost message is silent, the caller
  /// only learns of it when this much time has passed since the attempt
  /// started. (Fast failures — no route, open breaker — don't wait.)
  sim::Duration call_timeout = sim::sec(1);

  /// Bounded retries: total attempts = 1 + max_retries.
  int max_retries = 3;
  sim::Duration backoff_base = sim::ms(50);
  double backoff_multiplier = 2.0;
  sim::Duration backoff_cap = sim::sec(2);
  /// Uniform +/- fraction applied to each backoff (decorrelates retries).
  double backoff_jitter = 0.2;

  /// Per-destination circuit breaker.
  int breaker_failure_threshold = 5;        // consecutive failures -> open
  sim::Duration breaker_open_for = sim::sec(5);  // open window before half-open

  // --- graceful degradation (component runtime) ---------------------------
  /// Serve bounded-stale ReadOnlyCache entries when the master is
  /// unreachable (bounded by the plan's TACT staleness bound; 0 = any age).
  bool degraded_reads = true;
  /// Queue façade writes through a local JMS topic when the master is
  /// unreachable; the provider redelivers once the partition heals.
  bool queue_writes = true;
  /// Client-side (browser) whole-page retries on transient failures.
  int http_retries = 3;
};

/// Closed -> Open -> Half-open circuit breaker on simulated time.
///
/// Closed: calls flow; `failure_threshold` consecutive failures open it.
/// Open: calls are rejected without traffic until `open_for` elapses.
/// Half-open: exactly one probe call is admitted at a time; success closes
/// the breaker, failure re-opens it. Every transition is counted so the
/// experiment results can report breaker activity.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  CircuitBreaker(int failure_threshold, sim::Duration open_for)
      : threshold_(failure_threshold), open_for_(open_for) {}

  /// May a call proceed at `now`? Moves Open -> HalfOpen once the open
  /// window has elapsed (the returned `true` is the probe's admission).
  [[nodiscard]] bool allow(sim::SimTime now) {
    switch (state_) {
      case State::kClosed:
        return true;
      case State::kOpen:
        if (now < open_until_) {
          ++rejected_;
          return false;
        }
        state_ = State::kHalfOpen;
        ++half_opened_;
        probe_in_flight_ = true;
        return true;
      case State::kHalfOpen:
        if (probe_in_flight_) {
          ++rejected_;
          return false;
        }
        probe_in_flight_ = true;
        return true;
    }
    return true;
  }

  /// Like allow() but without side effects: true when a call made now would
  /// be rejected (used to pre-empt doomed work and degrade immediately).
  [[nodiscard]] bool would_reject(sim::SimTime now) const {
    if (state_ == State::kOpen) return now < open_until_;
    if (state_ == State::kHalfOpen) return probe_in_flight_;
    return false;
  }

  void on_success(sim::SimTime) {
    if (state_ != State::kClosed) ++closed_;
    state_ = State::kClosed;
    probe_in_flight_ = false;
    consecutive_failures_ = 0;
  }

  void on_failure(sim::SimTime now) {
    if (state_ == State::kHalfOpen) {
      probe_in_flight_ = false;
      open(now);
      return;
    }
    if (state_ == State::kClosed && ++consecutive_failures_ >= threshold_) open(now);
  }

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] std::uint64_t opened() const { return opened_; }
  [[nodiscard]] std::uint64_t half_opened() const { return half_opened_; }
  [[nodiscard]] std::uint64_t closed() const { return closed_; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }

 private:
  void open(sim::SimTime now) {
    state_ = State::kOpen;
    ++opened_;
    open_until_ = now + open_for_;
    consecutive_failures_ = 0;
  }

  int threshold_;
  sim::Duration open_for_;
  State state_ = State::kClosed;
  sim::SimTime open_until_;
  bool probe_in_flight_ = false;
  int consecutive_failures_ = 0;
  std::uint64_t opened_ = 0;
  std::uint64_t half_opened_ = 0;
  std::uint64_t closed_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace mutsvc::net

#include "net/rmi.hpp"

#include <cmath>

namespace mutsvc::net {

sim::Task<void> RmiTransport::call(NodeId caller, NodeId callee, Bytes args, Bytes result,
                                   std::function<sim::Task<void>()> server_work) {
  ++calls_;
  if (caller == callee) {
    co_await server_work();
    co_return;
  }
  ++remote_calls_;

  if (cfg_.extra_rtt_prob > 0.0 && rng_.bernoulli(cfg_.extra_rtt_prob)) {
    ++extra_round_trips_;
    co_await net_.deliver(caller, callee, cfg_.ping_bytes);
    co_await net_.deliver(callee, caller, cfg_.ping_bytes);
  }

  auto inflate = [&](Bytes b) {
    return static_cast<Bytes>(std::llround(static_cast<double>(b) * cfg_.dgc_traffic_factor));
  };
  co_await net_.deliver(caller, callee, inflate(cfg_.call_overhead + args));
  co_await server_work();
  co_await net_.deliver(callee, caller, inflate(cfg_.reply_overhead + result));
}

sim::Task<void> RmiTransport::call_dynamic(NodeId caller, NodeId callee, Bytes args,
                                           std::function<sim::Task<Bytes>()> server_work) {
  ++calls_;
  if (caller == callee) {
    (void)co_await server_work();
    co_return;
  }
  ++remote_calls_;

  if (cfg_.extra_rtt_prob > 0.0 && rng_.bernoulli(cfg_.extra_rtt_prob)) {
    ++extra_round_trips_;
    co_await net_.deliver(caller, callee, cfg_.ping_bytes);
    co_await net_.deliver(callee, caller, cfg_.ping_bytes);
  }

  auto inflate = [&](Bytes b) {
    return static_cast<Bytes>(std::llround(static_cast<double>(b) * cfg_.dgc_traffic_factor));
  };
  co_await net_.deliver(caller, callee, inflate(cfg_.call_overhead + args));
  Bytes result = co_await server_work();
  co_await net_.deliver(callee, caller, inflate(cfg_.reply_overhead + result));
}

sim::Task<void> RmiTransport::stub_exchange(NodeId caller, NodeId callee) {
  if (caller == callee) co_return;
  ++stub_exchanges_;
  co_await net_.deliver(caller, callee, cfg_.stub_request);
  co_await net_.deliver(callee, caller, cfg_.stub_response);
}

}  // namespace mutsvc::net

#include "net/rmi.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <utility>

#include "sim/simcheck.hpp"

namespace mutsvc::net {

void RmiTransport::partition_streams(std::size_t node_count) {
  node_rngs_.clear();
  node_rngs_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    node_rngs_.push_back(net_.simulator().rng().fork("rmi-node-" + std::to_string(i)));
  }
}

CircuitBreaker& RmiTransport::breaker(NodeId callee) {
  auto it = breakers_.find(callee);
  if (it == breakers_.end()) {
    it = breakers_
             .emplace(callee,
                      CircuitBreaker{res_.breaker_failure_threshold, res_.breaker_open_for})
             .first;
  }
  return it->second;
}

std::uint64_t RmiTransport::breaker_opens() const {
  std::uint64_t n = 0;
  for (const auto& [node, br] : breakers_) n += br.opened();
  return n;
}

std::uint64_t RmiTransport::breaker_half_opens() const {
  std::uint64_t n = 0;
  for (const auto& [node, br] : breakers_) n += br.half_opened();
  return n;
}

std::uint64_t RmiTransport::breaker_closes() const {
  std::uint64_t n = 0;
  for (const auto& [node, br] : breakers_) n += br.closed();
  return n;
}

void RmiTransport::sync_metrics() {
  if (metrics_ == nullptr) return;
  metrics_->set_counter(metrics_prefix_ + "retries", retries_);
  metrics_->set_counter(metrics_prefix_ + "timeouts", timeouts_);
  metrics_->set_counter(metrics_prefix_ + "failed_calls", failed_calls_);
  metrics_->set_counter(metrics_prefix_ + "breaker_rejections", breaker_rejections_);
  metrics_->set_counter(metrics_prefix_ + "breaker.opened", breaker_opens());
  metrics_->set_counter(metrics_prefix_ + "breaker.half_opened", breaker_half_opens());
  metrics_->set_counter(metrics_prefix_ + "breaker.closed", breaker_closes());
}

sim::Duration RmiTransport::backoff_delay(NodeId caller, int attempt_no) {
  double d = res_.backoff_base.as_seconds() * std::pow(res_.backoff_multiplier, attempt_no);
  d = std::min(d, res_.backoff_cap.as_seconds());
  if (res_.backoff_jitter > 0.0) {
    d *= 1.0 + stream_for(caller).uniform(-res_.backoff_jitter, res_.backoff_jitter);
  }
  return sim::Duration::seconds(std::max(d, 0.0));
}

sim::Task<void> RmiTransport::attempt(NodeId caller, NodeId callee, Bytes args,
                                      std::function<sim::Task<Bytes>()> server_work) {
  if (cfg_.extra_rtt_prob > 0.0 && stream_for(caller).bernoulli(cfg_.extra_rtt_prob)) {
    extra_round_trips_.fetch_add(1, std::memory_order_relaxed);
    co_await net_.deliver(caller, callee, cfg_.ping_bytes);
    co_await net_.deliver(callee, caller, cfg_.ping_bytes);
  }
  auto inflate = [&](Bytes b) {
    return static_cast<Bytes>(std::llround(static_cast<double>(b) * cfg_.dgc_traffic_factor));
  };
  co_await net_.deliver(caller, callee, inflate(cfg_.call_overhead + args));
  Bytes result = co_await server_work();
  co_await net_.deliver(callee, caller, inflate(cfg_.reply_overhead + result));
}

sim::Task<void> RmiTransport::do_call(NodeId caller, NodeId callee, Bytes args,
                                      std::function<sim::Task<Bytes>()> server_work) {
  if (!res_.enabled) {
    co_await attempt(caller, callee, args, std::move(server_work));
    co_return;
  }

  CircuitBreaker& br = breaker(callee);
  // Exactly-once server execution across retries: a replayed request whose
  // predecessor already ran the work gets the memoized reply size. A failure
  // thrown *by* the work (e.g. a nested call exhausting its own retries) is a
  // server-side error, not transport loss of this call: it must propagate to
  // the caller instead of triggering a replay of a partially-run body.
  bool work_done = false;
  bool work_failed = false;
  Bytes done_result = 0;
  // SimCheck probe: one id per logical call, spanning its retries. The
  // sanitizer hard-fails if the guarded body below ever runs twice for it.
  const std::uint64_t call_id = simcheck::enabled() ? simcheck::begin_rmi_call() : 0;
  auto once = [&]() -> sim::Task<Bytes> {
    if (!work_done) {
      if (call_id != 0) simcheck::on_server_execution(call_id);
      try {
        done_result = co_await server_work();
      } catch (...) {
        work_failed = true;  // no co_await here: flag and rethrow only
        throw;
      }
      work_done = true;
    }
    co_return done_result;
  };

  for (int attempt_no = 0;; ++attempt_no) {
    const bool allowed = br.allow(net_.simulator().now());
    sync_metrics();  // allow() may have moved the breaker to half-open
    if (!allowed) {
      ++breaker_rejections_;
      sync_metrics();
      throw CircuitOpenError("RmiTransport: circuit to callee is open");
    }
    const sim::SimTime t0 = net_.simulator().now();
    bool ok = false;
    bool silent_loss = false;  // co_await is illegal in a catch block
    try {
      co_await attempt(caller, callee, args, once);
      ok = true;
    } catch (const DeliveryError&) {
      if (work_failed) throw;  // server-side failure: do not replay
      silent_loss = true;
    } catch (const NoRouteError&) {
      if (work_failed) throw;
      // Connection refused / no route: the caller notices immediately.
    }
    if (ok) {
      br.on_success(net_.simulator().now());
      sync_metrics();  // a half-open probe success closes the breaker
      co_return;
    }
    if (silent_loss) {
      // A lost message gives the caller no signal; it waits out the
      // per-attempt timeout before acting.
      const sim::SimTime deadline = t0 + res_.call_timeout;
      if (net_.simulator().now() < deadline) {
        co_await net_.simulator().wait(deadline - net_.simulator().now());
      }
      ++timeouts_;
    }
    br.on_failure(net_.simulator().now());
    sync_metrics();  // a threshold-crossing failure opens the breaker
    if (attempt_no >= res_.max_retries) {
      ++failed_calls_;
      sync_metrics();
      throw DeliveryError("RmiTransport: call failed after " +
                          std::to_string(attempt_no + 1) + " attempts");
    }
    ++retries_;
    sync_metrics();
    co_await net_.simulator().wait(backoff_delay(caller, attempt_no));
  }
}

sim::Task<void> RmiTransport::traced_call(NodeId caller, NodeId callee, Bytes args,
                                          std::function<sim::Task<Bytes>()> server_work,
                                          stats::TraceSink* trace) {
  if (trace == nullptr) {
    co_await do_call(caller, callee, args, std::move(server_work));
    co_return;
  }
  const sim::SimTime t0 = net_.simulator().now();
  const std::uint32_t span = trace->begin_span(stats::SpanKind::kRmiWire, "rmi", caller.value(),
                                               callee.value(), t0);
  // Exclusive wire accounting: the server work's duration (measured around
  // its at-most-once execution) is subtracted from the call's elapsed time,
  // so nested spans keep the flat totals additive.
  sim::Duration server_time = sim::Duration::zero();
  auto timed = [this, &server_time, work = std::move(server_work)]() -> sim::Task<Bytes> {
    const sim::SimTime w0 = net_.simulator().now();
    Bytes r = co_await work();
    server_time += net_.simulator().now() - w0;
    co_return r;
  };
  std::exception_ptr err;
  try {
    co_await do_call(caller, callee, args, std::move(timed));
  } catch (...) {
    // co_await is illegal in a catch block; close the span outside.
    err = std::current_exception();
  }
  const sim::SimTime end = net_.simulator().now();
  trace->add(stats::SpanKind::kRmiWire, (end - t0) - server_time);
  trace->end_span(span, end);
  if (err) std::rethrow_exception(err);
}

sim::Task<void> RmiTransport::call(NodeId caller, NodeId callee, Bytes args, Bytes result,
                                   std::function<sim::Task<void>()> server_work,
                                   stats::TraceSink* trace) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  if (caller == callee) {
    co_await server_work();
    co_return;
  }
  remote_calls_.fetch_add(1, std::memory_order_relaxed);
  co_await traced_call(caller, callee, args,
                       [result, work = std::move(server_work)]() -> sim::Task<Bytes> {
                         co_await work();
                         co_return result;
                       },
                       trace);
}

sim::Task<void> RmiTransport::call_dynamic(NodeId caller, NodeId callee, Bytes args,
                                           std::function<sim::Task<Bytes>()> server_work,
                                           stats::TraceSink* trace) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  if (caller == callee) {
    (void)co_await server_work();
    co_return;
  }
  remote_calls_.fetch_add(1, std::memory_order_relaxed);
  co_await traced_call(caller, callee, args, std::move(server_work), trace);
}

sim::Task<void> RmiTransport::stub_exchange(NodeId caller, NodeId callee,
                                            stats::TraceSink* trace) {
  if (caller == callee) co_return;
  stub_exchanges_.fetch_add(1, std::memory_order_relaxed);
  const sim::SimTime t0 = net_.simulator().now();
  co_await net_.deliver(caller, callee, cfg_.stub_request);
  co_await net_.deliver(callee, caller, cfg_.stub_response);
  if (trace != nullptr) {
    const sim::SimTime end = net_.simulator().now();
    trace->add(stats::SpanKind::kStub, end - t0);
    trace->leaf(stats::SpanKind::kStub, "stub", caller.value(), callee.value(), t0, end);
  }
}

}  // namespace mutsvc::net

#include "net/rmi.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sim/simcheck.hpp"

namespace mutsvc::net {

CircuitBreaker& RmiTransport::breaker(NodeId callee) {
  auto it = breakers_.find(callee);
  if (it == breakers_.end()) {
    it = breakers_
             .emplace(callee,
                      CircuitBreaker{res_.breaker_failure_threshold, res_.breaker_open_for})
             .first;
  }
  return it->second;
}

std::uint64_t RmiTransport::breaker_opens() const {
  std::uint64_t n = 0;
  for (const auto& [node, br] : breakers_) n += br.opened();
  return n;
}

std::uint64_t RmiTransport::breaker_half_opens() const {
  std::uint64_t n = 0;
  for (const auto& [node, br] : breakers_) n += br.half_opened();
  return n;
}

std::uint64_t RmiTransport::breaker_closes() const {
  std::uint64_t n = 0;
  for (const auto& [node, br] : breakers_) n += br.closed();
  return n;
}

sim::Duration RmiTransport::backoff_delay(int attempt_no) {
  double d = res_.backoff_base.as_seconds() * std::pow(res_.backoff_multiplier, attempt_no);
  d = std::min(d, res_.backoff_cap.as_seconds());
  if (res_.backoff_jitter > 0.0) {
    d *= 1.0 + rng_.uniform(-res_.backoff_jitter, res_.backoff_jitter);
  }
  return sim::Duration::seconds(std::max(d, 0.0));
}

sim::Task<void> RmiTransport::attempt(NodeId caller, NodeId callee, Bytes args,
                                      std::function<sim::Task<Bytes>()> server_work) {
  if (cfg_.extra_rtt_prob > 0.0 && rng_.bernoulli(cfg_.extra_rtt_prob)) {
    ++extra_round_trips_;
    co_await net_.deliver(caller, callee, cfg_.ping_bytes);
    co_await net_.deliver(callee, caller, cfg_.ping_bytes);
  }
  auto inflate = [&](Bytes b) {
    return static_cast<Bytes>(std::llround(static_cast<double>(b) * cfg_.dgc_traffic_factor));
  };
  co_await net_.deliver(caller, callee, inflate(cfg_.call_overhead + args));
  Bytes result = co_await server_work();
  co_await net_.deliver(callee, caller, inflate(cfg_.reply_overhead + result));
}

sim::Task<void> RmiTransport::do_call(NodeId caller, NodeId callee, Bytes args,
                                      std::function<sim::Task<Bytes>()> server_work) {
  if (!res_.enabled) {
    co_await attempt(caller, callee, args, std::move(server_work));
    co_return;
  }

  CircuitBreaker& br = breaker(callee);
  // Exactly-once server execution across retries: a replayed request whose
  // predecessor already ran the work gets the memoized reply size. A failure
  // thrown *by* the work (e.g. a nested call exhausting its own retries) is a
  // server-side error, not transport loss of this call: it must propagate to
  // the caller instead of triggering a replay of a partially-run body.
  bool work_done = false;
  bool work_failed = false;
  Bytes done_result = 0;
  // SimCheck probe: one id per logical call, spanning its retries. The
  // sanitizer hard-fails if the guarded body below ever runs twice for it.
  const std::uint64_t call_id = simcheck::enabled() ? simcheck::begin_rmi_call() : 0;
  auto once = [&]() -> sim::Task<Bytes> {
    if (!work_done) {
      if (call_id != 0) simcheck::on_server_execution(call_id);
      try {
        done_result = co_await server_work();
      } catch (...) {
        work_failed = true;  // no co_await here: flag and rethrow only
        throw;
      }
      work_done = true;
    }
    co_return done_result;
  };

  for (int attempt_no = 0;; ++attempt_no) {
    if (!br.allow(net_.simulator().now())) {
      ++breaker_rejections_;
      throw CircuitOpenError("RmiTransport: circuit to callee is open");
    }
    const sim::SimTime t0 = net_.simulator().now();
    bool ok = false;
    bool silent_loss = false;  // co_await is illegal in a catch block
    try {
      co_await attempt(caller, callee, args, once);
      ok = true;
    } catch (const DeliveryError&) {
      if (work_failed) throw;  // server-side failure: do not replay
      silent_loss = true;
    } catch (const NoRouteError&) {
      if (work_failed) throw;
      // Connection refused / no route: the caller notices immediately.
    }
    if (ok) {
      br.on_success(net_.simulator().now());
      co_return;
    }
    if (silent_loss) {
      // A lost message gives the caller no signal; it waits out the
      // per-attempt timeout before acting.
      const sim::SimTime deadline = t0 + res_.call_timeout;
      if (net_.simulator().now() < deadline) {
        co_await net_.simulator().wait(deadline - net_.simulator().now());
      }
      ++timeouts_;
    }
    br.on_failure(net_.simulator().now());
    if (attempt_no >= res_.max_retries) {
      ++failed_calls_;
      throw DeliveryError("RmiTransport: call failed after " +
                          std::to_string(attempt_no + 1) + " attempts");
    }
    ++retries_;
    co_await net_.simulator().wait(backoff_delay(attempt_no));
  }
}

sim::Task<void> RmiTransport::call(NodeId caller, NodeId callee, Bytes args, Bytes result,
                                   std::function<sim::Task<void>()> server_work) {
  ++calls_;
  if (caller == callee) {
    co_await server_work();
    co_return;
  }
  ++remote_calls_;
  co_await do_call(caller, callee, args,
                   [result, work = std::move(server_work)]() -> sim::Task<Bytes> {
                     co_await work();
                     co_return result;
                   });
}

sim::Task<void> RmiTransport::call_dynamic(NodeId caller, NodeId callee, Bytes args,
                                           std::function<sim::Task<Bytes>()> server_work) {
  ++calls_;
  if (caller == callee) {
    (void)co_await server_work();
    co_return;
  }
  ++remote_calls_;
  co_await do_call(caller, callee, args, std::move(server_work));
}

sim::Task<void> RmiTransport::stub_exchange(NodeId caller, NodeId callee) {
  if (caller == callee) co_return;
  ++stub_exchanges_;
  co_await net_.deliver(caller, callee, cfg_.stub_request);
  co_await net_.deliver(callee, caller, cfg_.stub_response);
}

}  // namespace mutsvc::net

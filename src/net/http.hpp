#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <set>
#include <utility>

#include "net/network.hpp"
#include "net/types.hpp"
#include "stats/trace.hpp"

namespace mutsvc::net {

struct HttpConfig {
  /// The paper did not use keep-alive connections (§4.1), so every request
  /// pays a TCP handshake round trip.
  bool keep_alive = false;
  Bytes handshake_bytes = 64;
  Bytes request_overhead = 350;   // request line + headers
  Bytes response_overhead = 250;  // status line + headers
};

/// HTTP-over-TCP request model.
///
/// One request is: [TCP handshake RTT unless a kept-alive connection
/// exists] + request upload + server-side handling (caller-provided) +
/// response download. This reproduces §4.1's observation that a WAN HTTP
/// access costs two wide-area round trips (~400 ms at 100 ms one-way).
class HttpTransport {
 public:
  explicit HttpTransport(Network& net, HttpConfig cfg = {}) : net_(net), cfg_(cfg) {}

  HttpTransport(const HttpTransport&) = delete;
  HttpTransport& operator=(const HttpTransport&) = delete;

  /// Runs one HTTP request. `handler` executes on the server side and
  /// returns the response body size. With a TraceSink the transport opens
  /// the request's root span (inclusive, client -> server) and accounts the
  /// exclusive wire time — handshake plus transfers, server time excluded —
  /// under SpanKind::kHttpWire.
  [[nodiscard]] sim::Task<void> request(NodeId client, NodeId server, Bytes request_body,
                                        std::function<sim::Task<Bytes>()> handler,
                                        stats::TraceSink* trace = nullptr);

  [[nodiscard]] const HttpConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t requests() const { return requests_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t handshakes() const { return handshakes_.load(std::memory_order_relaxed); }

 private:
  Network& net_;
  HttpConfig cfg_;
  // Keep-alive connection pool: mutated per request, so keep-alive is
  // refused under parallel domains (it was unused by the paper, §4.1).
  std::set<std::pair<NodeId, NodeId>> pooled_;
  // Commutative sums in relaxed atomics — safe from any lookahead domain.
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> handshakes_{0};
};

}  // namespace mutsvc::net

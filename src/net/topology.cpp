#include "net/topology.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>

namespace mutsvc::net {

namespace {
constexpr std::uint32_t kNoHop = std::numeric_limits<std::uint32_t>::max();
}

NodeId Topology::add_node(std::string name, NodeRole role, std::size_t cpus) {
  NodeId id{static_cast<std::uint32_t>(nodes_.size())};
  Node n;
  n.id = id;
  n.name = std::move(name);
  n.role = role;
  n.cpu = std::make_unique<sim::FifoResource>(sim_, cpus, n.name + ".cpu");
  nodes_.push_back(std::move(n));
  routes_valid_ = false;
  return id;
}

void Topology::add_link(NodeId a, NodeId b, sim::Duration latency, double bandwidth_bps) {
  auto make = [&](NodeId f, NodeId t) {
    auto l = std::make_unique<Link>();
    l->from = f;
    l->to = t;
    l->latency = latency;
    l->bandwidth_bps = bandwidth_bps;
    l->serializer = std::make_unique<sim::FifoResource>(
        sim_, 1, node(f).name + "->" + node(t).name + ".link");
    links_.push_back(std::move(l));
  };
  make(a, b);
  make(b, a);
  routes_valid_ = false;
}

std::vector<Link*> Topology::all_links() {
  std::vector<Link*> out;
  out.reserve(links_.size());
  for (const auto& l : links_) out.push_back(l.get());
  return out;
}

Node& Topology::node(NodeId id) {
  if (id.value() >= nodes_.size()) throw std::out_of_range("Topology::node: bad id");
  return nodes_[id.value()];
}

const Node& Topology::node(NodeId id) const {
  if (id.value() >= nodes_.size()) throw std::out_of_range("Topology::node: bad id");
  return nodes_[id.value()];
}

NodeId Topology::find(const std::string& name) const {
  for (const auto& n : nodes_) {
    if (n.name == name) return n.id;
  }
  throw std::invalid_argument("Topology::find: no node named " + name);
}

void Topology::build_routes() {
  const std::size_t n = nodes_.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, kInf));
  next_hop_.assign(n, std::vector<std::uint32_t>(n, kNoHop));
  for (std::size_t i = 0; i < n; ++i) {
    dist[i][i] = 0.0;
    next_hop_[i][i] = static_cast<std::uint32_t>(i);
  }
  for (const auto& l : links_) {
    if (!l->up) continue;
    auto f = l->from.value();
    auto t = l->to.value();
    double w = static_cast<double>(l->latency.count_micros());
    if (w < dist[f][t]) {
      dist[f][t] = w;
      next_hop_[f][t] = t;
    }
  }
  // Floyd–Warshall; topologies are small (≈15 nodes), O(n^3) is fine.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (dist[i][k] == kInf) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (dist[k][j] == kInf) continue;
        if (dist[i][k] + dist[k][j] < dist[i][j]) {
          dist[i][j] = dist[i][k] + dist[k][j];
          next_hop_[i][j] = next_hop_[i][k];
        }
      }
    }
  }
  routes_valid_ = true;
}

Link* Topology::link_between(NodeId a, NodeId b) {
  // Parallel links are allowed; traffic takes the lowest-latency live one
  // (mirroring the routing metric).
  Link* best = nullptr;
  for (const auto& l : links_) {
    if (l->from == a && l->to == b && l->up) {
      if (best == nullptr || l->latency < best->latency) best = l.get();
    }
  }
  return best;
}

void Topology::set_link_state(NodeId a, NodeId b, bool up) {
  bool found = false;
  for (const auto& l : links_) {
    if ((l->from == a && l->to == b) || (l->from == b && l->to == a)) {
      l->up = up;
      found = true;
    }
  }
  if (!found) throw std::invalid_argument("Topology::set_link_state: no such link");
  routes_valid_ = false;
}

void Topology::set_node_state(NodeId node, bool up) {
  for (const auto& l : links_) {
    if (l->from == node || l->to == node) l->up = up;
  }
  routes_valid_ = false;
}

bool Topology::reachable(NodeId a, NodeId b) {
  try {
    (void)path(a, b);
    return true;
  } catch (const NoRouteError&) {
    return false;
  }
}

std::vector<Link*> Topology::path(NodeId a, NodeId b) {
  if (!routes_valid_) build_routes();
  std::vector<Link*> out;
  if (a == b) return out;
  std::uint32_t cur = a.value();
  const std::uint32_t dst = b.value();
  while (cur != dst) {
    std::uint32_t nh = next_hop_[cur][dst];
    if (nh == kNoHop) {
      throw NoRouteError("Topology::path: no route from " + nodes_[a.value()].name + " to " +
                         nodes_[b.value()].name);
    }
    Link* l = link_between(NodeId{cur}, NodeId{nh});
    if (l == nullptr) throw std::logic_error("Topology::path: route uses missing link");
    out.push_back(l);
    cur = nh;
  }
  return out;
}

sim::Duration Topology::path_latency(NodeId a, NodeId b) {
  sim::Duration total = sim::Duration::zero();
  for (Link* l : path(a, b)) total += l->latency;
  return total;
}

std::vector<std::uint32_t> Topology::lookahead_domains(sim::Duration wan_threshold) const {
  // Union-find over the sub-threshold (LAN) links.
  std::vector<std::uint32_t> parent(nodes_.size());
  for (std::uint32_t i = 0; i < parent.size(); ++i) parent[i] = i;
  auto find = [&](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& link : links_) {
    if (link->latency >= wan_threshold) continue;
    const std::uint32_t a = find(link->from.value());
    const std::uint32_t b = find(link->to.value());
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }
  // Dense domain ids in node order, so domain 0 is the lowest-id island.
  std::vector<std::uint32_t> domain(nodes_.size(), 0);
  std::vector<std::uint32_t> id_of_root(nodes_.size(), std::numeric_limits<std::uint32_t>::max());
  std::uint32_t next = 0;
  for (std::uint32_t i = 0; i < domain.size(); ++i) {
    const std::uint32_t root = find(i);
    if (id_of_root[root] == std::numeric_limits<std::uint32_t>::max()) id_of_root[root] = next++;
    domain[i] = id_of_root[root];
  }
  return domain;
}

}  // namespace mutsvc::net

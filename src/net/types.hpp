#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>
#include <stdexcept>

namespace mutsvc::net {

/// Base of every network-layer failure a caller may want to survive
/// (no route, lost message, open circuit breaker). Application-level
/// errors do NOT derive from this, so resilience code can retry network
/// failures without swallowing bugs.
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A message was lost in flight (fault injection): the sender gets no
/// signal — in real deployments only a timeout reveals the loss — but the
/// simulation surfaces it as an exception raised after the would-be
/// transmission time so callers can model that timeout.
class DeliveryError : public NetError {
 public:
  using NetError::NetError;
};

/// Fast-fail: the per-destination circuit breaker is open, the call was
/// rejected without generating any traffic.
class CircuitOpenError : public NetError {
 public:
  using NetError::NetError;
};

/// Identifies a node in the emulated topology.
class NodeId {
 public:
  constexpr NodeId() = default;
  explicit constexpr NodeId(std::uint32_t v) : v_(v) {}
  [[nodiscard]] constexpr std::uint32_t value() const { return v_; }
  constexpr auto operator<=>(const NodeId&) const = default;

  friend std::ostream& operator<<(std::ostream& os, NodeId id) { return os << "n" << id.v_; }

 private:
  std::uint32_t v_ = 0;
};

/// Message payload size in bytes.
using Bytes = std::int64_t;

constexpr Bytes operator""_B(unsigned long long v) { return static_cast<Bytes>(v); }
constexpr Bytes operator""_KB(unsigned long long v) { return static_cast<Bytes>(v * 1024); }

}  // namespace mutsvc::net

template <>
struct std::hash<mutsvc::net::NodeId> {
  std::size_t operator()(mutsvc::net::NodeId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};

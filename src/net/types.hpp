#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace mutsvc::net {

/// Identifies a node in the emulated topology.
class NodeId {
 public:
  constexpr NodeId() = default;
  explicit constexpr NodeId(std::uint32_t v) : v_(v) {}
  [[nodiscard]] constexpr std::uint32_t value() const { return v_; }
  constexpr auto operator<=>(const NodeId&) const = default;

  friend std::ostream& operator<<(std::ostream& os, NodeId id) { return os << "n" << id.v_; }

 private:
  std::uint32_t v_ = 0;
};

/// Message payload size in bytes.
using Bytes = std::int64_t;

constexpr Bytes operator""_B(unsigned long long v) { return static_cast<Bytes>(v); }
constexpr Bytes operator""_KB(unsigned long long v) { return static_cast<Bytes>(v * 1024); }

}  // namespace mutsvc::net

template <>
struct std::hash<mutsvc::net::NodeId> {
  std::size_t operator()(mutsvc::net::NodeId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "sim/simulator.hpp"
#include "workload/loadgen.hpp"
#include "workload/session.hpp"

namespace mutsvc::workload {
namespace {

using sim::Duration;
using sim::ms;
using sim::sec;
using sim::Simulator;
using sim::Task;

/// Fixed-latency executor that records request arrival times and pages.
class FakeExecutor final : public RequestExecutor {
 public:
  FakeExecutor(Simulator& sim, Duration latency) : sim_(sim), latency_(latency) {}

  [[nodiscard]] Task<RequestOutcome> execute(net::NodeId, const PageRequest& req) override {
    ++requests_;
    pages_[req.page]++;
    patterns_[req.pattern]++;
    co_await sim_.wait(latency_);
    co_return RequestOutcome::kOk;
  }

  std::uint64_t requests_ = 0;
  std::map<std::string, int> pages_;
  std::map<std::string, int> patterns_;

 private:
  Simulator& sim_;
  Duration latency_;
};

/// Three-page fixed session.
class FixedSession final : public SessionScript {
 public:
  explicit FixedSession(const char* pattern) : pattern_(pattern) {}
  std::optional<PageRequest> next() override {
    if (step_ >= 3) return std::nullopt;
    PageRequest req;
    req.page = "P" + std::to_string(step_++);
    req.pattern = pattern_;
    req.component = "Web";
    req.method = "page";
    return req;
  }
  const char* pattern() const override { return pattern_; }

 private:
  const char* pattern_;
  int step_ = 0;
};

SessionFactory fixed_factory(const char* pattern) {
  return [pattern] { return std::make_unique<FixedSession>(pattern); };
}

struct LoadWorld {
  Simulator sim{5};
  stats::ResponseTimeCollector collector;

  ClientGroupSpec spec(double rate, double browser_fraction) {
    ClientGroupSpec s;
    s.client_node = net::NodeId{0};
    s.group = stats::ClientGroup::kLocal;
    s.requests_per_second = rate;
    s.browser_fraction = browser_fraction;
    s.browser_factory = fixed_factory("Browser");
    s.writer_factory = fixed_factory("Writer");
    return s;
  }
};

TEST(LoadGeneratorTest, OfferedRateMatchesSpec) {
  LoadWorld w;
  FakeExecutor exec{w.sim, ms(20)};
  LoadGenConfig cfg;
  cfg.think_time = sec(5);
  cfg.between_sessions = Duration::zero();
  LoadGenerator gen{w.sim, exec, w.collector, cfg};
  const double duration_s = 300.0;
  gen.start_group(w.spec(10.0, 0.8), sim::SimTime::origin() + sec(duration_s),
                  w.sim.rng().fork("g"));
  w.sim.run_until();
  const double achieved = static_cast<double>(exec.requests_) / duration_s;
  EXPECT_NEAR(achieved, 10.0, 1.0);
}

TEST(LoadGeneratorTest, BrowserWriterMixRespected) {
  LoadWorld w;
  FakeExecutor exec{w.sim, ms(10)};
  LoadGenConfig cfg;
  cfg.think_time = sec(5);
  LoadGenerator gen{w.sim, exec, w.collector, cfg};
  gen.start_group(w.spec(20.0, 0.8), sim::SimTime::origin() + sec(200), w.sim.rng().fork("g"));
  w.sim.run_until();
  const double total = exec.patterns_["Browser"] + exec.patterns_["Writer"];
  EXPECT_NEAR(exec.patterns_["Browser"] / total, 0.8, 0.05);
}

TEST(LoadGeneratorTest, SoftDelayKeepsRateUnderSlowResponses) {
  // §3.3: "effectively DELAY becomes the time interval between sending
  // requests, which allowed us to simulate steady client load independent
  // of response times". A 2s response with a 5s DELAY must not reduce the
  // offered rate.
  LoadWorld w;
  FakeExecutor slow{w.sim, sec(2)};
  LoadGenConfig cfg;
  cfg.think_time = sec(5);
  cfg.between_sessions = Duration::zero();
  LoadGenerator gen{w.sim, slow, w.collector, cfg};
  gen.start_group(w.spec(10.0, 1.0), sim::SimTime::origin() + sec(300), w.sim.rng().fork("g"));
  w.sim.run_until();
  EXPECT_NEAR(static_cast<double>(slow.requests_) / 300.0, 10.0, 1.2);
}

TEST(LoadGeneratorTest, ResponsesRecordedWithPatternAndGroup) {
  LoadWorld w;
  FakeExecutor exec{w.sim, ms(30)};
  LoadGenerator gen{w.sim, exec, w.collector, {}};
  gen.start_group(w.spec(5.0, 1.0), sim::SimTime::origin() + sec(60), w.sim.rng().fork("g"));
  w.sim.run_until();
  EXPECT_GT(w.collector.total_samples(), 0u);
  EXPECT_NEAR(w.collector.page_mean_ms("Browser", "P0", stats::ClientGroup::kLocal), 30.0, 0.5);
  EXPECT_NEAR(w.collector.pattern_mean_ms("Browser", stats::ClientGroup::kLocal), 30.0, 0.5);
}

TEST(LoadGeneratorTest, ClientsStopAtEndTime) {
  LoadWorld w;
  FakeExecutor exec{w.sim, ms(1)};
  LoadGenerator gen{w.sim, exec, w.collector, {}};
  gen.start_group(w.spec(10.0, 0.8), sim::SimTime::origin() + sec(30), w.sim.rng().fork("g"));
  w.sim.run_until();
  // All clients eventually stop: simulation drains with no runaway events.
  EXPECT_TRUE(w.sim.idle());
  EXPECT_LT(w.sim.now().as_seconds(), 60.0);
}

TEST(LoadGeneratorTest, SessionsRestartAfterCompletion) {
  LoadWorld w;
  FakeExecutor exec{w.sim, ms(1)};
  LoadGenConfig cfg;
  cfg.think_time = sec(2);
  cfg.between_sessions = sec(1);
  LoadGenerator gen{w.sim, exec, w.collector, cfg};
  gen.start_group(w.spec(2.0, 1.0), sim::SimTime::origin() + sec(120), w.sim.rng().fork("g"));
  w.sim.run_until();
  // 4 clients x (~1 session per 7s) over 120s => tens of sessions.
  EXPECT_GT(gen.sessions_started(), 30u);
  EXPECT_EQ(gen.requests_issued(), exec.requests_);
}

/// Property sweep: the offered rate tracks the spec across a range of
/// rates and think times (parameterized, §3.3 soft-delay invariant).
class LoadRateSweep : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(LoadRateSweep, AchievedRateTracksSpec) {
  const auto [rate, think_s] = GetParam();
  LoadWorld w;
  FakeExecutor exec{w.sim, ms(25)};
  LoadGenConfig cfg;
  cfg.think_time = sim::Duration::seconds(think_s);
  cfg.between_sessions = Duration::zero();
  LoadGenerator gen{w.sim, exec, w.collector, cfg};
  gen.start_group(w.spec(rate, 0.8), sim::SimTime::origin() + sec(400), w.sim.rng().fork("g"));
  w.sim.run_until();
  const double achieved = static_cast<double>(exec.requests_) / 400.0;
  EXPECT_NEAR(achieved, rate, rate * 0.15 + 0.5);
}

INSTANTIATE_TEST_SUITE_P(Rates, LoadRateSweep,
                         ::testing::Values(std::make_tuple(2.0, 4.0),
                                           std::make_tuple(5.0, 7.0),
                                           std::make_tuple(10.0, 7.0),
                                           std::make_tuple(20.0, 5.0),
                                           std::make_tuple(30.0, 10.0)));

// --- Regression: client-split rounding (ISSUE 9 bugfix 1) --------------------
// start_group used to round browsers and writers independently, which could
// drop or invent a client (round(r*f*T) + round(r*(1-f)*T) != round(r*T))
// and left low-rate groups with zero clients.

TEST(ClientSplitTest, TotalIsConservedAcrossRatesAndMixes) {
  const double rates[] = {0.05, 0.3, 1.5, 2.9, 6.0, 10.0, 30.0, 80.0};
  const double fractions[] = {0.0, 0.2, 0.5, 0.8, 0.95, 1.0};
  const double thinks[] = {4.0, 5.0, 7.0, 10.0};
  for (double rate : rates) {
    for (double f : fractions) {
      for (double think_s : thinks) {
        const auto split =
            LoadGenerator::split_clients(rate, f, Duration::seconds(think_s));
        const long rounded = std::lround(rate * think_s);
        const int expected_total = static_cast<int>(rounded < 1 ? 1 : rounded);
        EXPECT_EQ(split.total(), expected_total)
            << "rate=" << rate << " f=" << f << " think=" << think_s;
        EXPECT_GE(split.browsers, 0);
        EXPECT_GE(split.writers, 0);
        // The browser share lands within one client of its exact value.
        EXPECT_LE(std::abs(split.browsers - rate * f * think_s), 1.0)
            << "rate=" << rate << " f=" << f << " think=" << think_s;
      }
    }
  }
}

TEST(ClientSplitTest, HalfRoundingDoesNotInventAClient) {
  // rate*think = 10.5 and both shares at *.25: independent rounding gave
  // 5 + 5 = 10 against a total of 11.
  const auto split = LoadGenerator::split_clients(1.5, 0.5, sec(7));
  EXPECT_EQ(split.total(), 11);
  EXPECT_EQ(split.browsers, 5);
  EXPECT_EQ(split.writers, 6);
}

TEST(ClientSplitTest, TrickleRateGroupStillIssuesRequests) {
  // rate*think = 0.35 rounded both kinds to zero clients: a configured
  // group silently produced no load at all.
  LoadWorld w;
  FakeExecutor exec{w.sim, ms(10)};
  LoadGenConfig cfg;
  cfg.think_time = sec(7);
  LoadGenerator gen{w.sim, exec, w.collector, cfg};
  gen.start_group(w.spec(0.05, 0.5), sim::SimTime::origin() + sec(100), w.sim.rng().fork("g"));
  w.sim.run_until();
  EXPECT_GT(exec.requests_, 0u) << "a group with rate > 0 must field at least one client";
  EXPECT_EQ(gen.requests_issued(), exec.requests_);
}

// --- Regression: empty scripts in the open-loop driver (ISSUE 9 bugfix 2) ----
// run_open_arrivals used to create (and count) a fresh session on *every*
// arrival when a factory yields empty scripts, inflating sessions_started
// without ever issuing a request.

class EmptySession final : public SessionScript {
 public:
  std::optional<PageRequest> next() override { return std::nullopt; }
  const char* pattern() const override { return "Empty"; }
};

SessionFactory empty_factory() {
  return [] { return std::make_unique<EmptySession>(); };
}

TEST(OpenLoopTest, EmptyScriptsAreNeverCountedAsSessions) {
  LoadWorld w;
  FakeExecutor exec{w.sim, ms(10)};
  LoadGenerator gen{w.sim, exec, w.collector, {}};
  ClientGroupSpec s = w.spec(20.0, 0.5);
  s.browser_factory = empty_factory();
  s.writer_factory = empty_factory();
  gen.start_open_group(s, sim::SimTime::origin() + sec(60), w.sim.rng().fork("g"));
  w.sim.run_until();
  EXPECT_EQ(gen.sessions_started(), 0u)
      << "an empty script proves nothing started; ~1200 arrivals must not count";
  EXPECT_EQ(gen.requests_issued(), 0u);
  EXPECT_TRUE(w.sim.idle());
}

TEST(OpenLoopTest, OneSterileKindLeavesTheOtherRunning) {
  LoadWorld w;
  FakeExecutor exec{w.sim, ms(10)};
  LoadGenerator gen{w.sim, exec, w.collector, {}};
  ClientGroupSpec s = w.spec(10.0, 0.5);
  s.browser_factory = empty_factory();  // writers stay productive
  gen.start_open_group(s, sim::SimTime::origin() + sec(120), w.sim.rng().fork("g"));
  w.sim.run_until();
  EXPECT_GT(gen.sessions_started(), 0u);
  EXPECT_EQ(exec.patterns_["Browser"], 0);
  EXPECT_GT(exec.patterns_["Writer"], 0);
  // Every counted session produced at least one request.
  EXPECT_LE(gen.sessions_started(), gen.requests_issued());
}

// --- Regression: the end-of-run window rule (ISSUE 9 bugfix 3) ---------------
// Requests count at issue time; nothing issues at or after end_at; a
// completion landing after end_at records whenever the simulation runs it.
// requests_ used to be bumped at completion, so a truncated run undercounted
// by exactly the in-flight tail.

TEST(EndOfRunTest, IssueTimeCountingExposesTheInFlightTail) {
  LoadWorld w;
  FakeExecutor slow{w.sim, sec(60)};  // responses land far past end_at
  LoadGenConfig cfg;
  cfg.think_time = sec(5);
  cfg.between_sessions = Duration::zero();
  LoadGenerator gen{w.sim, slow, w.collector, cfg};
  const sim::SimTime end = sim::SimTime::origin() + sec(30);
  // rate*think = 10 clients; each issues exactly one request before end.
  gen.start_group(w.spec(2.0, 1.0), end, w.sim.rng().fork("g"));

  w.sim.run_until(end);
  EXPECT_EQ(gen.requests_issued(), 10u) << "issue-time counting sees the in-flight requests";
  EXPECT_EQ(gen.requests_completed(), 0u);
  EXPECT_EQ(gen.requests_in_flight(), 10u);
  EXPECT_EQ(w.collector.total_samples() + w.collector.discarded_samples(), 0u);

  // Draining past end_at records every completion without issuing anything
  // new: issued == completed once the tail lands.
  w.sim.run_until();
  EXPECT_EQ(gen.requests_issued(), 10u);
  EXPECT_EQ(gen.requests_completed(), 10u);
  EXPECT_EQ(gen.requests_in_flight(), 0u);
  EXPECT_EQ(w.collector.total_samples() + w.collector.discarded_samples(), 10u);
}

}  // namespace
}  // namespace mutsvc::workload

// Migration correctness battery (ISSUE 10): properties of the runtime
// placement subsystem that must hold for *every* migration, swept across
// rollout policies (direct flip vs. staged canary) × data-tier shard counts:
//
//   1. Conservation: across a full migration epoch — quiesce, drain,
//      transfer, flip, forwarding, retirement — the harness neither creates
//      nor loses page requests: issued == samples + failures + discarded +
//      in_flight, exactly.
//   2. Version monotonicity: a component's binding version is strictly
//      monotone across every mutation (flip, canary stage, promote,
//      cancel); observed versions over a live run never decrease.
//   3. Straggler-forwarding termination: every call routed by a stale view
//      reaches the new authority during the forwarding epoch; no call
//      arrives at a non-authoritative site after the epoch expires
//      (late_stragglers stays zero).
//
// Plus unit coverage of the BindingTable visibility/canary model, the
// migrate() refusal rules, and the EdgeShiftPolicy hysteresis.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/petstore/petstore.hpp"
#include "component/binding.hpp"
#include "component/controller.hpp"
#include "component/deployment.hpp"
#include "component/migration.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"

namespace mutsvc {
namespace {

using comp::BindingTable;
using comp::DeploymentPlan;
using comp::EdgeShiftPolicy;
using comp::MigrationRequest;
using comp::PlacementAction;
using comp::PlacementSnapshot;
using net::NodeId;

// --- BindingTable unit properties --------------------------------------------

DeploymentPlan two_edge_plan(NodeId main, NodeId e0, NodeId e1) {
  DeploymentPlan plan;
  plan.set_main_server(main);
  plan.add_edge_server(e0);
  plan.add_edge_server(e1);
  plan.place("C", main);
  plan.place("C", e0);
  return plan;
}

TEST(BindingTableTest, UnboundComponentResolvesExactlyLikeThePlan) {
  const NodeId main{0}, e0{1}, e1{2};
  DeploymentPlan plan = two_edge_plan(main, e0, e1);
  BindingTable table{plan};
  const sim::SimTime t = sim::SimTime::origin();
  for (NodeId from : {main, e0, e1}) {
    EXPECT_EQ(table.resolve("C", from, t, 7), plan.resolve("C", from));
  }
  EXPECT_EQ(table.version("C"), 0u);
  EXPECT_EQ(table.bound_components(), 0u);
  EXPECT_FALSE(table.in_forward_epoch("C", t));
  // Unbound: authoritative wherever the plan dispatched it.
  EXPECT_EQ(table.authoritative("C", e1), e1);
}

TEST(BindingTableTest, VersionStrictlyMonotoneAcrossEveryMutation) {
  const NodeId main{0}, e0{1}, e1{2};
  DeploymentPlan plan = two_edge_plan(main, e0, e1);
  BindingTable table{plan};
  const sim::SimTime t = sim::SimTime::origin() + sim::sec(100);
  std::vector<std::uint64_t> versions;
  versions.push_back(table.version("C"));  // 0: unbound
  table.stage_canary("C", {main, e1}, 0.25);
  versions.push_back(table.version("C"));
  table.cancel_canary("C");
  versions.push_back(table.version("C"));
  table.flip("C", {main, e1}, t, sim::ms(200), {e0, e1});
  versions.push_back(table.version("C"));
  table.stage_canary("C", {main, e0}, 0.5);
  versions.push_back(table.version("C"));
  table.promote_canary("C", t + sim::sec(10), sim::ms(200), {e0, e1});
  versions.push_back(table.version("C"));
  for (std::size_t i = 1; i < versions.size(); ++i) {
    EXPECT_GT(versions[i], versions[i - 1]) << "mutation " << i;
  }
  EXPECT_EQ(table.max_version(), versions.back());
  EXPECT_EQ(table.flips(), 2u);  // flip + promote; stage/cancel are not flips
}

TEST(BindingTableTest, ParticipantsSeeFlipImmediatelyOthersAfterNotifyDelay) {
  const NodeId main{0}, e0{1}, e1{2};
  DeploymentPlan plan = two_edge_plan(main, e0, e1);
  BindingTable table{plan};
  const sim::SimTime flip_at = sim::SimTime::origin() + sim::sec(60);
  table.flip("C", {main, e1}, flip_at, sim::sec(1), {e0, e1});

  // Participant e1 sees the new binding at flip_at exactly.
  EXPECT_EQ(table.resolve("C", e1, flip_at, 7), e1);
  // Non-participant main still sees the pre-flip set (plan placement:
  // primary main) until flip_at + notify_delay.
  EXPECT_EQ(table.resolve("C", main, flip_at + sim::ms(999), 7), main);
  // A non-participant old-site view routes to its old co-located replica —
  // the straggler the old site must forward. (Fresh table where e0 is not
  // a participant.)
  BindingTable stale{plan};
  stale.flip("C", {main, e1}, flip_at, sim::sec(1), {main, e1});
  EXPECT_EQ(stale.resolve("C", e0, flip_at + sim::ms(500), 7), e0);
  // After the delay every view has converged.
  EXPECT_EQ(stale.resolve("C", e0, flip_at + sim::sec(1), 7), main);
  // The old site is no longer authoritative; the new set is.
  EXPECT_EQ(stale.authoritative("C", e0), main);
  EXPECT_EQ(stale.authoritative("C", e1), e1);
}

TEST(BindingTableTest, ForwardEpochCoversExactlyTheWindowAfterTheFlip) {
  const NodeId main{0}, e0{1}, e1{2};
  DeploymentPlan plan = two_edge_plan(main, e0, e1);
  BindingTable table{plan};
  table.set_forward_epoch(sim::sec(5));
  const sim::SimTime flip_at = sim::SimTime::origin() + sim::sec(60);
  EXPECT_FALSE(table.in_forward_epoch("C", flip_at));
  table.flip("C", {e1}, flip_at, sim::ms(200), {e0, e1});
  EXPECT_TRUE(table.in_forward_epoch("C", flip_at));
  EXPECT_TRUE(table.in_forward_epoch("C", flip_at + sim::ms(4999)));
  EXPECT_FALSE(table.in_forward_epoch("C", flip_at + sim::sec(5)));
  // Termination by construction: the epoch outlives the visibility lag, so
  // every stale view converges before forwarding stops.
  EXPECT_GT(table.forward_epoch(), sim::ms(200));
}

TEST(BindingTableTest, CanarySelectionIsStickyDeterministicAndProportional) {
  // Same (key, salt, fraction) always answers the same — sticky per
  // session, identical across instances and replays (pure splitmix64, no
  // RNG draws).
  for (std::uint64_t key = 0; key < 200; ++key) {
    const bool a = BindingTable::canary_selects(key, 42, 0.3);
    const bool b = BindingTable::canary_selects(key, 42, 0.3);
    EXPECT_EQ(a, b) << key;
  }
  EXPECT_FALSE(BindingTable::canary_selects(123, 42, 0.0));
  EXPECT_TRUE(BindingTable::canary_selects(123, 42, 1.0));
  // Fractions select roughly proportionally over many keys.
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += BindingTable::canary_selects(static_cast<std::uint64_t>(i), 7, 0.5) ? 1 : 0;
  }
  const double share = static_cast<double>(hits) / n;
  EXPECT_GT(share, 0.47);
  EXPECT_LT(share, 0.53);
}

TEST(BindingTableTest, StagedCanaryRoutesSelectedSessionsOnly) {
  const NodeId main{0}, e0{1}, e1{2};
  DeploymentPlan plan = two_edge_plan(main, e0, e1);
  BindingTable table{plan};
  table.stage_canary("C", {main, e1}, 0.5);
  const std::uint64_t salt = table.version("C") * 0x632be59bd9b4e019ULL;
  const sim::SimTime t = sim::SimTime::origin() + sim::sec(1);
  int canaried = 0;
  for (std::uint64_t key = 0; key < 500; ++key) {
    const NodeId got = table.resolve("C", e1, t, key);
    if (BindingTable::canary_selects(key, salt, 0.5)) {
      EXPECT_EQ(got, e1) << key;  // canary set has a co-located e1 replica
      ++canaried;
    } else {
      EXPECT_EQ(got, main) << key;  // non-canary keeps the plan's resolution
    }
  }
  EXPECT_GT(canaried, 0);
  EXPECT_LT(canaried, 500);
  // A call landing at the canary site is deliberate, not a straggler.
  EXPECT_EQ(table.authoritative("C", e1), e1);
  table.cancel_canary("C");
  for (std::uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(table.resolve("C", e1, t, key), main) << key;
  }
}

TEST(BindingTableTest, InvalidMutationsThrow) {
  const NodeId main{0}, e0{1}, e1{2};
  DeploymentPlan plan = two_edge_plan(main, e0, e1);
  BindingTable table{plan};
  const sim::SimTime t = sim::SimTime::origin();
  EXPECT_THROW(table.flip("C", {}, t, sim::ms(200), {}), std::invalid_argument);
  EXPECT_THROW(table.stage_canary("C", {e1}, 0.0), std::invalid_argument);
  EXPECT_THROW(table.stage_canary("C", {e1}, 1.5), std::invalid_argument);
  EXPECT_THROW(table.stage_canary("C", {}, 0.5), std::invalid_argument);
  EXPECT_THROW(table.promote_canary("C", t, sim::ms(200), {}), std::logic_error);
  table.cancel_canary("C");  // no staged canary: a no-op, never a throw
  EXPECT_EQ(table.version("C"), 0u);
}

// --- EdgeShiftPolicy hysteresis ----------------------------------------------

PlacementSnapshot snapshot(NodeId holder, std::uint64_t e0_pages, std::uint64_t e1_pages) {
  PlacementSnapshot snap;
  snap.replica_holder = holder;
  snap.edge_pages = {{NodeId{1}, e0_pages}, {NodeId{2}, e1_pages}};
  return snap;
}

TEST(EdgeShiftPolicyTest, MigratesOnlyAfterConfirmQuantaConsecutiveHotReadings) {
  EdgeShiftPolicy policy{{.high_share = 0.6, .low_share = 0.4, .confirm_quanta = 2}};
  const NodeId e0{1}, e1{2};
  EXPECT_TRUE(policy.decide(snapshot(e0, 20, 80)).empty());  // streak 1
  const auto acts = policy.decide(snapshot(e0, 20, 80));     // streak 2: go
  ASSERT_EQ(acts.size(), 1u);
  EXPECT_EQ(acts[0].kind, PlacementAction::Kind::kMigrateReplicaSet);
  EXPECT_EQ(acts[0].from, e0);
  EXPECT_EQ(acts[0].to, e1);
}

TEST(EdgeShiftPolicyTest, StreakResetsWhenTheSignalDips) {
  EdgeShiftPolicy policy{{.high_share = 0.6, .low_share = 0.4, .confirm_quanta = 2}};
  const NodeId e0{1};
  EXPECT_TRUE(policy.decide(snapshot(e0, 20, 80)).empty());  // streak 1
  EXPECT_TRUE(policy.decide(snapshot(e0, 50, 50)).empty());  // dip: reset
  EXPECT_TRUE(policy.decide(snapshot(e0, 20, 80)).empty());  // streak 1 again
  EXPECT_FALSE(policy.decide(snapshot(e0, 20, 80)).empty());
}

TEST(EdgeShiftPolicyTest, HoldsWhenHolderIsHotOrTrafficIsZero) {
  EdgeShiftPolicy policy{{.high_share = 0.6, .low_share = 0.4, .confirm_quanta = 1}};
  const NodeId e0{1};
  // Holder still carries more than low_share: hold.
  EXPECT_TRUE(policy.decide(snapshot(e0, 45, 55)).empty());
  // No traffic at all: hold.
  EXPECT_TRUE(policy.decide(snapshot(e0, 0, 0)).empty());
  // Holder is itself the hottest edge: hold.
  EXPECT_TRUE(policy.decide(snapshot(e0, 80, 20)).empty());
}

// --- Live-run properties: conservation, monotonicity, termination ------------

[[nodiscard]] sim::Task<void> run_migration(comp::MigrationManager& m, MigrationRequest req, bool* out) {
  const bool ok = co_await m.migrate(std::move(req));
  if (out != nullptr) *out = ok;
}

struct EpochCase {
  const char* name;
  std::size_t shards;
  double canary_fraction;  // 0 = direct flip, >0 = staged rollout
};

const EpochCase kEpochs[] = {
    {"flip_s1", 1, 0.0},
    {"flip_s2", 2, 0.0},
    {"canary_s1", 1, 0.4},
    {"canary_s2", 2, 0.4},
};

class MigrationEpoch : public ::testing::TestWithParam<EpochCase> {};

TEST_P(MigrationEpoch, ConservesRequestsAndKeepsVersionsMonotone) {
  // Full petstore ladder top (replicas + query caches at both edges, async
  // updates) under live load, with two back-to-back migrations of the
  // Catalog facade and its read-mostly replica set: edge0 -> edge1 at 60 s,
  // back edge1 -> edge0 at 110 s. Both the quiesce/drain/transfer/flip/
  // forward/retire epoch and the steady states around it must conserve
  // every issued request and keep the binding version strictly monotone.
  const EpochCase& c = GetParam();
  const std::vector<std::string> kComponents{"Catalog"};
  const std::vector<std::string> kEntities{"Category", "Product", "Item", "Inventory"};

  apps::petstore::PetStoreApp app;
  core::ExperimentSpec spec;
  spec.level = core::ConfigLevel::kAsyncUpdates;
  spec.shard.shards = c.shards;
  spec.duration = sim::sec(150);
  spec.warmup = sim::sec(30);
  spec.placement.enabled = true;  // binding table + migrator, no controller
  core::Experiment exp{app.driver(), spec, core::petstore_calibration()};
  ASSERT_NE(exp.bindings(), nullptr);
  ASSERT_NE(exp.migrator(), nullptr);
  EXPECT_EQ(exp.placement_controller(), nullptr);  // no policy installed

  const net::NodeId e0 = exp.nodes().edge_servers[0];
  const net::NodeId e1 = exp.nodes().edge_servers[1];
  bool first_ok = false, second_ok = false;
  auto schedule = [&](sim::Duration at, net::NodeId from, net::NodeId to, bool* out) {
    exp.simulator().schedule_at(sim::SimTime::origin() + at, [&, from, to, out] {
      MigrationRequest req;
      req.from = from;
      req.to = to;
      req.components = kComponents;
      req.entities = kEntities;
      req.canary_fraction = c.canary_fraction;
      exp.simulator().spawn(run_migration(*exp.migrator(), std::move(req), out));
    });
  };
  schedule(sim::sec(60), e0, e1, &first_ok);
  schedule(sim::sec(110), e1, e0, &second_ok);

  // Sample the binding version every 5 s: observed versions must never
  // decrease anywhere in the run (property 2, live form).
  std::vector<std::uint64_t> observed;
  for (int s = 0; s <= 150; s += 5) {
    exp.simulator().schedule_at(sim::SimTime::origin() + sim::sec(s), [&] {
      observed.push_back(exp.bindings()->version("Catalog"));
    });
  }

  exp.run();

  EXPECT_TRUE(first_ok) << c.name;
  EXPECT_TRUE(second_ok) << c.name;
  EXPECT_EQ(exp.migrator()->started(), 2u);
  EXPECT_EQ(exp.migrator()->completed(), 2u);
  EXPECT_EQ(exp.migrator()->rolled_back(), 0u);
  EXPECT_EQ(exp.migrator()->refused(), 0u);
  EXPECT_FALSE(exp.migrator()->in_progress());
  // Warm replicas moved with the binding both times.
  EXPECT_GT(exp.migrator()->entries_transferred(), 0u);

  // Property 1: conservation across the whole run, migration epochs
  // included (same identity the shard battery asserts on the static
  // ladder).
  const auto& r = exp.results();
  EXPECT_GT(exp.requests_issued(), 0u);
  EXPECT_EQ(exp.requests_issued(),
            r.total_samples() + r.failures() + r.discarded_samples() + exp.requests_in_flight())
      << c.name << ": issued=" << exp.requests_issued() << " samples=" << r.total_samples()
      << " failures=" << r.failures() << " discarded=" << r.discarded_samples()
      << " in_flight=" << exp.requests_in_flight();
  // Fault-free migrations drop nothing: quiesced calls park and resume.
  EXPECT_EQ(r.failures(), 0u);
  EXPECT_EQ(exp.dropped_requests(), 0u);

  // Property 2: sampled versions are non-decreasing and both migrations
  // advanced them (a direct flip bumps once, a canary stage+promote twice).
  ASSERT_FALSE(observed.empty());
  for (std::size_t i = 1; i < observed.size(); ++i) {
    EXPECT_GE(observed[i], observed[i - 1]) << c.name << " sample " << i;
  }
  const std::uint64_t bumps_per_migration = c.canary_fraction > 0.0 ? 2 : 1;
  EXPECT_EQ(exp.bindings()->version("Catalog"), 2 * bumps_per_migration);
  EXPECT_EQ(exp.bindings()->flips(), 2u);

  // Property 3: forwarding terminated — nothing arrived at a
  // non-authoritative site after a forwarding epoch expired.
  EXPECT_EQ(exp.runtime().late_stragglers(), 0u);

  // Retirement moved the replica membership there and back: edge0 holds the
  // read-mostly set again, edge1 left it.
  for (const std::string& entity : kEntities) {
    EXPECT_TRUE(exp.runtime().plan().has_ro_replica(entity, e0)) << entity;
    EXPECT_FALSE(exp.runtime().plan().has_ro_replica(entity, e1)) << entity;
  }
}

INSTANTIATE_TEST_SUITE_P(PoliciesTimesShards, MigrationEpoch, ::testing::ValuesIn(kEpochs),
                         [](const ::testing::TestParamInfo<EpochCase>& info) {
                           return std::string{info.param.name};
                         });

TEST(MigrationForwardingTest, StaleViewsForwardFromTheOldSiteUntilConvergence) {
  // Binding-only migration of the Catalog facade main -> edge0 with a long
  // (2 s) visibility lag: the remote islands keep routing Catalog calls to
  // the main server until their views converge, and the old site must
  // forward every one of those stragglers to the new authority — then stop
  // cleanly once the epoch expires. Also exercises every migrate() refusal
  // rule against the same live run.
  apps::petstore::PetStoreApp app;
  core::ExperimentSpec spec;
  spec.level = core::ConfigLevel::kRemoteFacade;
  spec.duration = sim::sec(120);
  spec.warmup = sim::sec(30);
  spec.placement.enabled = true;
  spec.placement.migration.notify_delay = sim::sec(2);
  spec.placement.migration.forward_epoch = sim::sec(5);
  core::Experiment exp{app.driver(), spec, core::petstore_calibration()};

  const net::NodeId main = exp.nodes().main_server;
  const net::NodeId e0 = exp.nodes().edge_servers[0];
  bool moved = false, self = true, empty = true, overlapped = true;
  exp.simulator().schedule_at(sim::SimTime::origin() + sim::sec(10), [&] {
    MigrationRequest noop;  // from == to: refused
    noop.from = main;
    noop.to = main;
    noop.components = {"Catalog"};
    exp.simulator().spawn(run_migration(*exp.migrator(), std::move(noop), &self));
    MigrationRequest hollow;  // no components: refused
    hollow.from = main;
    hollow.to = e0;
    exp.simulator().spawn(run_migration(*exp.migrator(), std::move(hollow), &empty));
  });
  exp.simulator().schedule_at(sim::SimTime::origin() + sim::sec(60), [&] {
    MigrationRequest req;
    req.from = main;
    req.to = e0;
    req.components = {"Catalog"};
    exp.simulator().spawn(run_migration(*exp.migrator(), std::move(req), &moved));
  });
  exp.simulator().schedule_at(sim::SimTime::origin() + sim::sec(61), [&] {
    MigrationRequest req;  // one already in progress (forwarding epoch): refused
    req.from = e0;
    req.to = main;
    req.components = {"Catalog"};
    exp.simulator().spawn(run_migration(*exp.migrator(), std::move(req), &overlapped));
  });

  exp.run();

  EXPECT_TRUE(moved);
  EXPECT_FALSE(self);
  EXPECT_FALSE(empty);
  EXPECT_FALSE(overlapped);
  EXPECT_EQ(exp.migrator()->completed(), 1u);
  EXPECT_EQ(exp.migrator()->refused(), 3u);
  EXPECT_EQ(exp.migrator()->rolled_back(), 0u);
  EXPECT_EQ(exp.bindings()->version("Catalog"), 1u);

  // Stragglers flowed through the old site during the visibility window...
  EXPECT_GT(exp.runtime().forwarded_calls(), 0u);
  // ...and none arrived after the forwarding epoch expired (termination).
  EXPECT_EQ(exp.runtime().late_stragglers(), 0u);

  // The epoch conserved every request despite the rerouting.
  const auto& r = exp.results();
  EXPECT_EQ(exp.requests_issued(),
            r.total_samples() + r.failures() + r.discarded_samples() + exp.requests_in_flight());
  EXPECT_EQ(r.failures(), 0u);
}

}  // namespace
}  // namespace mutsvc

// SimRace node-isolation analyzer coverage: lookahead-domain partitioning,
// the happens-before core (races flagged exactly when a cross-domain
// access is not ordered by delivered messages), the lookahead link stats
// behind the certificate, and the bit-identity guarantee — an analyzed
// ladder run must follow the exact same trajectory as a plain one while
// reporting zero races and no lookahead violations on the current tree.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/petstore/petstore.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "net/topology.hpp"
#include "sim/simrace.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace mutsvc {
namespace {

/// Enables the analyzer for one test and restores the disabled default.
struct SimRaceScope {
  SimRaceScope() {
    simrace::reset();
    simrace::set_enabled(true);
  }
  ~SimRaceScope() {
    simrace::set_enabled(false);
    simrace::reset();
  }
};

// --- lookahead domain partitioning ---------------------------------------------

TEST(SimRaceDomains, WanLinksSeparateLanIslands) {
  sim::Simulator sim;
  net::Topology topo{sim};
  auto a = topo.add_node("a", net::NodeRole::kAppServer);
  auto b = topo.add_node("b", net::NodeRole::kDatabaseServer);
  auto c = topo.add_node("c", net::NodeRole::kAppServer);
  auto d = topo.add_node("d", net::NodeRole::kClientMachine);
  topo.add_link(a, b, sim::us(500));  // LAN: same island
  topo.add_link(b, c, sim::ms(40));   // WAN: boundary
  topo.add_link(c, d, sim::ms(1));    // LAN: c and d share an island

  const std::vector<std::uint32_t> dom = topo.lookahead_domains(sim::ms(10));
  ASSERT_EQ(dom.size(), 4u);
  EXPECT_EQ(dom[a.value()], dom[b.value()]);
  EXPECT_EQ(dom[c.value()], dom[d.value()]);
  EXPECT_NE(dom[a.value()], dom[c.value()]);
  // Dense ids in node order: the island of the lowest node id is domain 0.
  EXPECT_EQ(dom[a.value()], 0u);
  EXPECT_EQ(dom[c.value()], 1u);
}

TEST(SimRaceDomains, AllLanIsOneDomainAndIsolatedNodesAreTheirOwn) {
  sim::Simulator sim;
  net::Topology topo{sim};
  auto a = topo.add_node("a", net::NodeRole::kAppServer);
  auto b = topo.add_node("b", net::NodeRole::kAppServer);
  auto c = topo.add_node("c", net::NodeRole::kAppServer);  // no links at all
  topo.add_link(a, b, sim::us(100));

  const std::vector<std::uint32_t> dom = topo.lookahead_domains(sim::ms(10));
  EXPECT_EQ(dom[a.value()], dom[b.value()]);
  EXPECT_NE(dom[c.value()], dom[a.value()]);
}

TEST(SimRaceDomains, DownedWanLinkIsStillABoundary) {
  // Link up/down state is ignored: a flapping link does not change the
  // parallelization partition.
  sim::Simulator sim;
  net::Topology topo{sim};
  auto a = topo.add_node("a", net::NodeRole::kAppServer);
  auto b = topo.add_node("b", net::NodeRole::kAppServer);
  topo.add_link(a, b, sim::ms(40));
  topo.set_link_state(a, b, false);
  const std::vector<std::uint32_t> dom = topo.lookahead_domains(sim::ms(10));
  EXPECT_NE(dom[a.value()], dom[b.value()]);
}

// --- happens-before core -------------------------------------------------------

// Two nodes, two domains: node 0 -> domain 0, node 1 -> domain 1.
void configure_two_domains() {
  simrace::configure({0, 1}, {"left", "right"});
}

TEST(SimRaceHB, CrossDomainAccessWithoutMessageEdgeIsARace) {
  SimRaceScope guard;
  configure_two_domains();
  {
    simrace::NodeScope s(0);
    simrace::on_state_access(0, "cache:left", /*is_write=*/true);
  }
  {
    simrace::NodeScope s(1);
    simrace::on_state_access(0, "cache:left", /*is_write=*/false);  // nothing ordered this
  }
  EXPECT_EQ(simrace::report().races, 1u);
  EXPECT_EQ(simrace::report().cross_domain_accesses, 1u);
  ASSERT_FALSE(simrace::report().findings.empty());
  EXPECT_NE(simrace::report().findings[0].find("cache:left"), std::string::npos);
}

TEST(SimRaceHB, DeliveredMessageOrdersTheAccess) {
  SimRaceScope guard;
  configure_two_domains();
  {
    simrace::NodeScope s(0);
    simrace::on_state_access(0, "cache:left", /*is_write=*/true);
  }
  // The write's knowledge travels to domain 1 on a delivered message.
  const simrace::MessageToken t = simrace::on_send(0);
  simrace::on_delivered(t, 1);
  {
    simrace::NodeScope s(1);
    simrace::on_state_access(0, "cache:left", /*is_write=*/false);
  }
  EXPECT_EQ(simrace::report().races, 0u);
  EXPECT_EQ(simrace::report().message_edges, 1u);
  EXPECT_EQ(simrace::report().cross_domain_accesses, 1u);
}

TEST(SimRaceHB, LostMessageCreatesNoEdge) {
  SimRaceScope guard;
  configure_two_domains();
  {
    simrace::NodeScope s(0);
    simrace::on_state_access(0, "cache:left", /*is_write=*/true);
  }
  // Token taken at send time but never delivered (message lost): the
  // receiver learns nothing, so the later read still races.
  { const simrace::MessageToken dropped = simrace::on_send(0); (void)dropped; }
  {
    simrace::NodeScope s(1);
    simrace::on_state_access(0, "cache:left", /*is_write=*/false);
  }
  EXPECT_EQ(simrace::report().races, 1u);
  EXPECT_EQ(simrace::report().message_edges, 0u);
}

TEST(SimRaceHB, UnorderedWriteAfterRemoteReadIsARace) {
  SimRaceScope guard;
  configure_two_domains();
  {
    simrace::NodeScope s(1);
    simrace::on_state_access(0, "cache:left", /*is_write=*/false);
  }
  {
    simrace::NodeScope s(0);
    simrace::on_state_access(0, "cache:left", /*is_write=*/true);  // write vs unordered read
  }
  EXPECT_EQ(simrace::report().races, 1u);
}

TEST(SimRaceHB, SameDomainAccessesNeverRace) {
  SimRaceScope guard;
  simrace::configure({0, 0}, {"a", "b"});  // one LAN island
  {
    simrace::NodeScope s(0);
    simrace::on_state_access(0, "k", /*is_write=*/true);
  }
  {
    simrace::NodeScope s(1);
    simrace::on_state_access(0, "k", /*is_write=*/true);
  }
  EXPECT_EQ(simrace::report().races, 0u);
  EXPECT_EQ(simrace::report().cross_domain_accesses, 0u);
  EXPECT_EQ(simrace::report().scoped_accesses, 2u);
}

TEST(SimRaceHB, TransitiveMessageChainOrders) {
  SimRaceScope guard;
  simrace::configure({0, 1, 2}, {"a", "b", "c"});
  {
    simrace::NodeScope s(0);
    simrace::on_state_access(0, "k", /*is_write=*/true);
  }
  // a -> b -> c: c's read of a's state is ordered through b.
  simrace::on_delivered(simrace::on_send(0), 1);
  simrace::on_delivered(simrace::on_send(1), 2);
  {
    simrace::NodeScope s(2);
    simrace::on_state_access(0, "k", /*is_write=*/false);
  }
  EXPECT_EQ(simrace::report().races, 0u);
  EXPECT_EQ(simrace::report().message_edges, 2u);
}

TEST(SimRaceHB, NodeScopesNestAndRestore) {
  SimRaceScope guard;
  configure_two_domains();
  EXPECT_EQ(simrace::current_node(), simrace::kNoNode);
  {
    simrace::NodeScope outer(0);
    EXPECT_EQ(simrace::current_node(), 0u);
    {
      simrace::NodeScope inner(1);
      EXPECT_EQ(simrace::current_node(), 1u);
    }
    EXPECT_EQ(simrace::current_node(), 0u);
  }
  EXPECT_EQ(simrace::current_node(), simrace::kNoNode);
}

TEST(SimRaceHB, UnscopedAccessIsUnattributedAndIgnored) {
  SimRaceScope guard;
  configure_two_domains();
  simrace::on_state_access(0, "k", /*is_write=*/true);  // harness code: no scope
  EXPECT_EQ(simrace::report().scoped_accesses, 0u);
  EXPECT_EQ(simrace::report().races, 0u);
}

// --- lookahead link stats ------------------------------------------------------

TEST(SimRaceLookahead, TracksMinimumObservedCrossing) {
  SimRaceScope guard;
  configure_two_domains();
  simrace::on_link_crossing(0, 1, 40000, 41000);
  simrace::on_link_crossing(0, 1, 40000, 40050);
  simrace::on_link_crossing(0, 1, 40000, 45000);
  const auto& links = simrace::report().wan_links;
  ASSERT_EQ(links.size(), 1u);
  const simrace::LinkStat& ls = links.at({0, 1});
  EXPECT_EQ(ls.declared_us, 40000);
  EXPECT_EQ(ls.min_observed_us, 40050);
  EXPECT_EQ(ls.crossings, 3u);
  EXPECT_EQ(simrace::report().lookahead_violations, 0u);
}

TEST(SimRaceLookahead, ObservedBelowDeclaredIsAViolation) {
  SimRaceScope guard;
  configure_two_domains();
  simrace::on_link_crossing(0, 1, 40000, 39999);
  EXPECT_EQ(simrace::report().lookahead_violations, 1u);
  ASSERT_FALSE(simrace::report().findings.empty());
  EXPECT_NE(simrace::report().findings[0].find("lookahead violation"), std::string::npos);
}

// --- disabled analyzer is inert ------------------------------------------------

TEST(SimRaceDisabled, ProbesAreNoOpsWhenOff) {
  simrace::reset();
  simrace::set_enabled(false);
  EXPECT_FALSE(simrace::enabled());
  configure_two_domains();
  {
    // NodeScope is inert when disabled, so the probe stays unattributed.
    simrace::NodeScope s(0);
    EXPECT_EQ(simrace::current_node(), simrace::kNoNode);
    simrace::on_state_access(0, "k", /*is_write=*/true);
  }
  EXPECT_EQ(simrace::report().scoped_accesses, 0u);
  EXPECT_EQ(simrace::report().total(), 0u);
  simrace::reset();
}

// --- full seeded run under the analyzer ----------------------------------------

struct RunStats {
  std::uint64_t samples = 0;
  std::uint64_t stale_reads = 0;
  std::uint64_t reads = 0;
  std::uint64_t executed_events = 0;
  std::uint64_t rmi_calls = 0;
  double mean_ms = 0.0;

  bool operator==(const RunStats&) const = default;
};

RunStats run_ladder_rung(core::ConfigLevel level, bool analyze, simrace::Report* out_report) {
  simrace::reset();
  simrace::set_enabled(analyze);
  apps::petstore::PetStoreApp app;
  core::ExperimentSpec spec;
  spec.level = level;
  spec.duration = sim::sec(120);
  spec.warmup = sim::sec(10);
  spec.seed = 7;
  core::Experiment exp{app.driver(), spec, core::petstore_calibration()};
  exp.run();

  RunStats out;
  out.samples = exp.results().total_samples();
  out.stale_reads = exp.runtime().consistency().stale_reads();
  out.reads = exp.runtime().consistency().reads();
  out.executed_events = exp.simulator().executed_events();
  out.rmi_calls = exp.rmi().calls();
  out.mean_ms = exp.results().pattern_mean_ms("Browser", stats::ClientGroup::kRemote);
  if (out_report != nullptr) *out_report = simrace::report();
  simrace::set_enabled(false);
  simrace::reset();
  return out;
}

TEST(SimRaceEndToEnd, AnalyzedBlockingPushRunIsCleanAndBitIdentical) {
  const RunStats plain =
      run_ladder_rung(core::ConfigLevel::kStatefulComponentCaching, false, nullptr);
  simrace::Report rep;
  const RunStats analyzed =
      run_ladder_rung(core::ConfigLevel::kStatefulComponentCaching, true, &rep);

  // The analyzer observes; it must not perturb the trajectory.
  EXPECT_EQ(plain, analyzed);
  // The instrumentation actually saw the run...
  EXPECT_GT(rep.scoped_accesses, 0u);
  EXPECT_GT(rep.message_edges, 0u);
  EXPECT_FALSE(rep.wan_links.empty());
  // ...and the current tree is race-free with a sound lookahead window:
  // every event that crossed a WAN link took at least the declared latency.
  EXPECT_EQ(rep.races, 0u) << (rep.findings.empty() ? "" : rep.findings[0]);
  EXPECT_EQ(rep.lookahead_violations, 0u);
  for (const auto& [edge, stat] : rep.wan_links) {
    EXPECT_GE(stat.min_observed_us, stat.declared_us);
  }
}

TEST(SimRaceEndToEnd, AsyncUpdatesRungIsAlsoRaceFree) {
  simrace::Report rep;
  (void)run_ladder_rung(core::ConfigLevel::kAsyncUpdates, true, &rep);
  EXPECT_GT(rep.scoped_accesses, 0u);
  EXPECT_EQ(rep.races, 0u) << (rep.findings.empty() ? "" : rep.findings[0]);
  EXPECT_EQ(rep.lookahead_violations, 0u);
}

}  // namespace
}  // namespace mutsvc

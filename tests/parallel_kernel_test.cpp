// Conservative windowed parallel execution (DESIGN §15): the tagged
// sequential loop and the windowed executor must produce bit-identical
// results at any worker count; per-domain RNG streams are pure functions of
// (seed, domain); a throwing domain surfaces the smallest-stamp error
// deterministically (mirroring core::sweep's contract within a trial); and
// incompatible experiment features are refused with a clear diagnostic
// instead of being silently degraded.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/petstore/petstore.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "net/faults.hpp"
#include "sim/simcheck.hpp"
#include "sim/simrace.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace {

using namespace mutsvc;

// Scoped environment override (MUTSVC_PAR_DOMAINS resolution tests).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffU;
    h *= 1099511628211ULL;
  }
  return h;
}

// --- kernel: tagged sequential vs windowed at any worker count ---------------

// One task per domain: local timer chatter plus a periodic hop to the next
// domain and back, always a full window or more away — the message-edge
// discipline the real Network enforces. Every iteration appends to a
// sequenced log, so the *interleaving* (not just the totals) is compared.
[[nodiscard]] sim::Task<void> domain_chatter(sim::Simulator& sim, std::uint32_t id,
                                             std::uint32_t domains,
                                             std::vector<std::uint64_t>& log,
                                             sim::SimTime end) {
  const auto dest = static_cast<sim::Simulator::DomainId>((id + 1) % domains);
  const auto home = static_cast<sim::Simulator::DomainId>(id);
  std::uint64_t draws = 0;
  while (sim.now() < end) {
    for (int i = 0; i < 3; ++i) {
      co_await sim.wait(sim::us(700 + 13 * id + i));
      const std::uint64_t draw = sim.domain_rng(sim.current_domain()).uniform_int(0, 1 << 20);
      draws += draw;
      sim.sequenced([&log, id, draw, now = sim.now()] {
        log.push_back((static_cast<std::uint64_t>(id) << 56) ^
                      (static_cast<std::uint64_t>(now.count_micros()) << 8) ^
                      (draw & 0xff));
      });
    }
    // Cross-domain round trip, each leg >= the 50 ms window.
    co_await sim.wait_in(dest, sim::ms(60));
    co_await sim.wait_in(home, sim::ms(50));
  }
  sim.sequenced([&log, draws] { log.push_back(draws); });
}

struct KernelRun {
  std::uint64_t events = 0;
  std::uint64_t digest = 0;
};

KernelRun run_kernel(bool windowed, std::size_t workers) {
  constexpr std::uint32_t kDomains = 4;
  sim::Simulator sim(90125);
  if (windowed) {
    sim.enable_windowed(kDomains, sim::ms(50));
  } else {
    sim.enable_domains(kDomains);
  }
  const sim::SimTime end = sim::SimTime::origin() + sim::sec(6);
  std::vector<std::uint64_t> log;
  for (std::uint32_t d = 0; d < kDomains; ++d) {
    sim::Simulator::DomainScope scope(sim, static_cast<sim::Simulator::DomainId>(d));
    sim.spawn(domain_chatter(sim, d, kDomains, log, end));
  }
  if (windowed) {
    sim.run_windows_until(end, workers);
  } else {
    sim.run_until(end);
  }
  KernelRun r;
  r.events = sim.executed_events();
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint64_t v : log) h = fnv1a(h, v);
  r.digest = fnv1a(h, log.size());
  return r;
}

TEST(ParallelKernel, WindowedMatchesTaggedSequentialAtAnyWorkerCount) {
  const KernelRun sequential = run_kernel(/*windowed=*/false, 0);
  EXPECT_GT(sequential.events, 1000u);
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const KernelRun par = run_kernel(/*windowed=*/true, workers);
    EXPECT_EQ(par.events, sequential.events) << "workers " << workers;
    EXPECT_EQ(par.digest, sequential.digest) << "workers " << workers;
  }
}

// --- kernel: per-domain RNG stream purity ------------------------------------

TEST(ParallelKernel, DomainRngStreamsAreForkPureAndIndependent) {
  // Same seed, different modes, draws taken in different domain orders:
  // every domain's stream must still produce the identical sequence,
  // because forking is a pure function of (root seed, stream name) and the
  // streams are mutually independent.
  sim::Simulator a(4242);
  a.enable_domains(4);
  sim::Simulator b(4242);
  b.enable_windowed(4, sim::ms(10));

  std::vector<std::vector<std::uint64_t>> draws_a(4);
  for (std::uint32_t d = 0; d < 4; ++d) {
    for (int i = 0; i < 16; ++i) {
      draws_a[d].push_back(a.domain_rng(static_cast<sim::Simulator::DomainId>(d))
                               .uniform_int(0, 1 << 30));
    }
  }
  std::vector<std::vector<std::uint64_t>> draws_b(4);
  for (int i = 0; i < 16; ++i) {  // interleaved, reverse domain order
    for (std::uint32_t d = 4; d-- > 0;) {
      draws_b[d].push_back(b.domain_rng(static_cast<sim::Simulator::DomainId>(d))
                               .uniform_int(0, 1 << 30));
    }
  }
  for (std::uint32_t d = 0; d < 4; ++d) {
    EXPECT_EQ(draws_a[d], draws_b[d]) << "domain " << d;
    for (std::uint32_t e = d + 1; e < 4; ++e) {
      EXPECT_NE(draws_a[d], draws_a[e]) << "domains " << d << "/" << e << " collide";
    }
  }
  // A different root seed moves every stream.
  sim::Simulator c(4243);
  c.enable_domains(4);
  EXPECT_NE(c.domain_rng(0).uniform_int(0, 1 << 30), draws_a[0][0]);
}

// --- kernel: deterministic error surfacing -----------------------------------

TEST(ParallelKernel, EarliestStampedDomainErrorWinsAtAnyWorkerCount) {
  // Mirrors sweep_test's ThrowingTrialDoesNotDeadlockOrSkipOthers, one
  // level down: domains stand in for trials, the window barrier for the
  // pool join, and the smallest event stamp for the lowest index.
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    sim::Simulator sim(7);
    sim.enable_windowed(3, sim::ms(50));
    {
      sim::Simulator::DomainScope scope(sim, 1);
      sim.schedule_at(sim::SimTime::origin() + sim::ms(30),
                      [] { throw std::runtime_error("boom-late"); });
    }
    {
      sim::Simulator::DomainScope scope(sim, 2);
      sim.schedule_at(sim::SimTime::origin() + sim::ms(10),
                      [] { throw std::runtime_error("boom-early"); });
      sim.schedule_at(sim::SimTime::origin() + sim::ms(5), [] {});
    }
    try {
      sim.run_windows_until(sim::SimTime::origin() + sim::ms(100), workers);
      FAIL() << "expected the domain failure to propagate (workers " << workers << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom-early") << "workers " << workers;
    }
  }
}

TEST(ParallelKernel, UndercuttingTheWindowThrowsLookaheadViolation) {
  // wait_in throws at the co_await, inside the offending coroutine — the
  // producer learns about the undercut at the exact schedule site.
  sim::Simulator sim(7);
  sim.enable_windowed(2, sim::ms(50));
  std::string caught;
  struct Hop {
    sim::Simulator& sim;
    std::string& caught;
    [[nodiscard]] sim::Task<void> operator()() const {
      try {
        co_await sim.wait_in(1, sim::ms(10));  // < the 50 ms window
      } catch (const sim::LookaheadViolation& e) {
        caught = e.what();
      }
    }
  };
  sim.spawn(Hop{sim, caught}());
  sim.run_windows_until(sim::SimTime::origin() + sim::sec(1), 2);
  EXPECT_NE(caught.find("lookahead"), std::string::npos) << "caught: '" << caught << "'";
}

// --- experiment: trial fingerprints across worker counts ---------------------

struct Fingerprint {
  std::uint64_t events = 0;
  std::uint64_t samples = 0;
  std::uint64_t digest = 0;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint run_trial(core::ConfigLevel level, int parallel_domains, std::size_t shards = 1) {
  apps::petstore::PetStoreApp app;
  apps::AppDriver driver = app.driver();
  core::ExperimentSpec spec;
  spec.level = level;
  spec.duration = sim::sec(20);
  spec.warmup = sim::sec(4);
  spec.parallel_domains = parallel_domains;
  spec.shard.shards = shards;
  core::Experiment exp{driver, spec, core::petstore_calibration()};
  exp.run();

  Fingerprint fp;
  fp.events = exp.simulator().executed_events();
  fp.samples = exp.results().total_samples();
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::string& pattern : {driver.browser_pattern, driver.writer_pattern}) {
    for (stats::ClientGroup g : {stats::ClientGroup::kLocal, stats::ClientGroup::kRemote}) {
      double d = exp.results().pattern_mean_ms(pattern, g);
      std::uint64_t bits = 0;
      std::memcpy(&bits, &d, sizeof(bits));
      h = fnv1a(h, bits);
    }
  }
  h = fnv1a(h, exp.results().failures());
  h = fnv1a(h, exp.requests_issued());
  fp.digest = h;
  return fp;
}

TEST(ParallelTrial, RungFingerprintsIdenticalAcrossWorkerCounts) {
  // One rung where edges stay independent domains (blocking push) and the
  // rung where async updates couple every island with the main server — the
  // coupling merge must stay bit-identical too, it just parallelizes less.
  for (core::ConfigLevel level :
       {core::ConfigLevel::kQueryCaching, core::ConfigLevel::kAsyncUpdates}) {
    const Fingerprint sequential = run_trial(level, 0);
    EXPECT_GT(sequential.samples, 0u);
    for (int workers : {1, 2, 4}) {
      const Fingerprint par = run_trial(level, workers);
      EXPECT_EQ(par.events, sequential.events)
          << core::to_string(level) << " workers " << workers;
      EXPECT_EQ(par.samples, sequential.samples)
          << core::to_string(level) << " workers " << workers;
      EXPECT_EQ(par.digest, sequential.digest)
          << core::to_string(level) << " workers " << workers;
    }
  }
}

TEST(ParallelTrial, ShardedTrialFingerprintsIdenticalAcrossWorkerCounts) {
  const Fingerprint sequential = run_trial(core::ConfigLevel::kQueryCaching, 0, 8);
  EXPECT_GT(sequential.samples, 0u);
  for (int workers : {1, 4}) {
    EXPECT_EQ(run_trial(core::ConfigLevel::kQueryCaching, workers, 8), sequential)
        << "workers " << workers;
  }
}

// --- experiment: configuration resolution and refusals -----------------------

TEST(ParallelTrial, SpecOverridesEnvironmentAndEnvIsDefault) {
  apps::petstore::PetStoreApp app;
  core::ExperimentSpec spec;
  spec.duration = sim::sec(1);
  // Instrumented runs (MUTSVC_SIMCHECK / MUTSVC_SIMRACE) clamp any windowed
  // request to one worker, so expectations shift when this binary itself is
  // run under the sanitizers — the clamp is exactly what's being verified.
  const std::size_t clamped =
      (mutsvc::simcheck::enabled() || mutsvc::simrace::enabled()) ? 1u : 0u;
  {
    ScopedEnv env("MUTSVC_PAR_DOMAINS", "3");
    spec.parallel_domains = -1;
    core::Experiment exp{app.driver(), spec, core::petstore_calibration()};
    EXPECT_EQ(exp.parallel_workers(), clamped != 0 ? clamped : 3u);
  }
  {
    ScopedEnv env("MUTSVC_PAR_DOMAINS", "3");
    spec.parallel_domains = 0;  // spec wins over the environment
    core::Experiment exp{app.driver(), spec, core::petstore_calibration()};
    EXPECT_EQ(exp.parallel_workers(), 0u);
  }
  {
    ScopedEnv env("MUTSVC_PAR_DOMAINS", "garbage");
    spec.parallel_domains = -1;
    core::Experiment exp{app.driver(), spec, core::petstore_calibration()};
    EXPECT_EQ(exp.parallel_workers(), 0u);
  }
}

TEST(ParallelTrial, EnvDerivedRequestsFallBackOnIncompatibleConfigs) {
  // MUTSVC_PAR_DOMAINS is a fleet-wide knob (a CI matrix row exports it for
  // an entire test run), so an env-derived request on a configuration that
  // cannot parallelize degrades to the sequential tagged loop — which is
  // bit-identical anyway — instead of refusing. Only an explicit
  // spec.parallel_domains >= 1 turns the incompatibility into an error.
  ScopedEnv env("MUTSVC_PAR_DOMAINS", "4");
  apps::petstore::PetStoreApp app;
  core::ExperimentSpec spec;
  spec.duration = sim::sec(1);
  spec.resilience.enabled = true;
  core::Experiment exp{app.driver(), spec, core::petstore_calibration()};
  EXPECT_EQ(exp.parallel_workers(), 0u);
}

TEST(ParallelTrial, IncompatibleFeaturesAreRefusedWithDiagnostics) {
  apps::petstore::PetStoreApp app;
  auto expect_refused = [&](core::ExperimentSpec spec, const char* needle) {
    spec.duration = sim::sec(1);
    spec.parallel_domains = 2;
    try {
      core::Experiment exp{app.driver(), spec, core::petstore_calibration()};
      FAIL() << "expected refusal mentioning '" << needle << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("MUTSVC_PAR_DOMAINS"), std::string::npos) << e.what();
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };

  core::ExperimentSpec faults;
  faults.fault_plan.loss_prob = 0.01;
  expect_refused(faults, "fault injection");

  core::ExperimentSpec resilient;
  resilient.resilience.enabled = true;
  expect_refused(resilient, "resilience");

  core::ExperimentSpec admission;
  admission.flow.enabled = true;
  admission.flow.admission_rate = 50.0;
  expect_refused(admission, "admission");

  // enable_metrics is a post-construction switch: refused at the call.
  core::ExperimentSpec spec;
  spec.duration = sim::sec(1);
  spec.parallel_domains = 2;
  core::Experiment exp{app.driver(), spec, core::petstore_calibration()};
  EXPECT_THROW(exp.enable_metrics(sim::sec(10)), std::invalid_argument);
}

TEST(ParallelTrial, SweepWorkerClampsWindowedWorkersToOne) {
  // Across-trial and within-trial parallelism compose: a trial on a sweep
  // worker runs the windowed executor with one worker (same bits, no nested
  // pool). The inline sweep path (jobs=1) keeps the requested width.
  apps::petstore::PetStoreApp app;
  std::vector<std::size_t> widths(2, 999);
  core::sweep::run_indexed(
      2,
      [&](std::size_t i) {
        core::ExperimentSpec spec;
        spec.duration = sim::sec(1);
        spec.parallel_domains = 4;
        core::Experiment exp{app.driver(), spec, core::petstore_calibration()};
        widths[i] = exp.parallel_workers();
      },
      /*jobs=*/2);
  EXPECT_EQ(widths[0], 1u);
  EXPECT_EQ(widths[1], 1u);

  core::ExperimentSpec spec;
  spec.duration = sim::sec(1);
  spec.parallel_domains = 4;
  core::Experiment inline_exp{app.driver(), spec, core::petstore_calibration()};
  // Under MUTSVC_SIMCHECK/MUTSVC_SIMRACE the instrumentation clamp keeps the
  // inline path at one worker too.
  const std::size_t inline_width =
      (mutsvc::simcheck::enabled() || mutsvc::simrace::enabled()) ? 1u : 4u;
  EXPECT_EQ(inline_exp.parallel_workers(), inline_width);
}

}  // namespace

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "apps/rubis/rubis.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace mutsvc::apps::rubis {
namespace {

using comp::ComponentKind;

struct Fixture {
  RubisApp app;
  sim::Simulator sim{1};
  net::Topology topo{sim};
  net::NodeId dbnode = topo.add_node("db", net::NodeRole::kDatabaseServer);
  db::Database db{topo, dbnode};

  Fixture() { app.install_database(db); }
};

// --- component architecture ------------------------------------------------------

TEST(RubisAppTest, SessionFacadeArchitecture) {
  RubisApp app;
  const auto& a = app.application();
  // §2.2: "for each type of web page there is a separate servlet which ...
  // invokes business method(s) on associated stateless session bean(s)".
  for (const char* sb : {"SB_BrowseCategories", "SB_BrowseRegions", "SB_SearchItemsByCategory",
                         "SB_SearchItemsByRegion", "SB_ViewItem", "SB_ViewBidHistory",
                         "SB_ViewUserInfo", "SB_Auth", "SB_PutBid", "SB_StoreBid",
                         "SB_PutComment", "SB_StoreComment"}) {
    EXPECT_EQ(a.component(sb).kind(), ComponentKind::kStatelessSessionBean) << sb;
  }
  // §2.2: "the application does not keep per-client session state" — no
  // stateful session beans at all.
  for (const auto& name : a.component_names()) {
    EXPECT_NE(a.component(name).kind(), ComponentKind::kStatefulSessionBean) << name;
  }
}

TEST(RubisAppTest, MetadataMatchesPaper) {
  RubisApp app;
  const AppMetadata& m = app.metadata();
  EXPECT_TRUE(m.stateful_session.empty());  // §4.2: only web components to edges
  EXPECT_EQ(std::set<std::string>(m.read_mostly.begin(), m.read_mostly.end()),
            (std::set<std::string>{"Item", "User"}));  // §4.3
  EXPECT_EQ(m.query_refresh, comp::QueryRefreshMode::kPush);  // §4.4
  EXPECT_EQ(std::set<std::string>(m.edge_facades.begin(), m.edge_facades.end()),
            (std::set<std::string>{"SB_ViewItem", "SB_ViewBidHistory", "SB_ViewUserInfo"}));
  // Writers stay at the main server.
  EXPECT_EQ(std::set<std::string>(m.main_facades.begin(), m.main_facades.end()),
            (std::set<std::string>{"SB_StoreBid", "SB_StoreComment"}));
}

TEST(RubisAppTest, EveryTable4And5PageHasAMethod) {
  RubisApp app;
  const auto& web = app.application().component("RubisWeb");
  for (const char* m : {"main", "browse", "allcategories", "allregions", "region", "category",
                        "categoryregion", "item", "bids", "userinfo", "putbidauth",
                        "putbidform", "storebid", "putcommentauth", "putcommentform",
                        "storecomment"}) {
    EXPECT_NO_THROW((void)web.find_method(m)) << m;
  }
}

// --- database (§3.4 sizing) ---------------------------------------------------------

TEST(RubisAppTest, DatabasePopulation) {
  Fixture f;
  const Shape& s = f.app.shape();
  EXPECT_EQ(f.db.table("regions").row_count(), static_cast<std::size_t>(s.regions));
  EXPECT_EQ(f.db.table("categories").row_count(), static_cast<std::size_t>(s.categories));
  EXPECT_EQ(f.db.table("users").row_count(), static_cast<std::size_t>(s.users));
  EXPECT_EQ(f.db.table("items").row_count(), static_cast<std::size_t>(s.items));
  EXPECT_EQ(f.db.table("bids").row_count(),
            static_cast<std::size_t>(s.items * s.initial_bids_per_item));
  EXPECT_EQ(f.db.table("comments").row_count(),
            static_cast<std::size_t>(s.users * s.initial_comments_per_user));
}

TEST(RubisAppTest, AggregatesRegisteredAndConsistent) {
  Fixture f;
  EXPECT_EQ(f.db.execute_immediate(db::Query::aggregate("all_categories")).rows.size(), 20u);
  EXPECT_EQ(f.db.execute_immediate(db::Query::aggregate("all_regions")).rows.size(), 20u);

  // items_in_category_region returns exactly the items whose seller lives
  // in the region.
  auto res = f.db.execute_immediate(
      db::Query::aggregate("items_in_category_region", {std::int64_t{3}, std::int64_t{5}}));
  for (const auto& item : res.rows) {
    EXPECT_EQ(db::as_int(item[2]), 3);  // category
    auto seller = f.db.table("users").get(db::as_int(item[3]));
    ASSERT_TRUE(seller.has_value());
    EXPECT_EQ(db::as_int((*seller)[3]), 5);  // region
  }
}

TEST(RubisAppTest, AuthFinderMatchesNickname) {
  Fixture f;
  auto res = f.db.execute_immediate(
      db::Query::finder("users", "nickname", std::string{"user42"}));
  ASSERT_EQ(res.rows.size(), 1u);
  EXPECT_EQ(db::as_int(res.rows[0][0]), 42);
}

// --- session scripts (Tables 4 and 5) -------------------------------------------------

TEST(RubisSessionTest, BrowserSessionLengthAndLogicalOrdering) {
  RubisApp app;
  auto factory = app.browser_factory(sim::RngStream{9});
  auto session = factory();
  int count = 0;
  bool first = true;
  std::int64_t last_category = 0;
  const Shape& s = app.shape();
  while (auto req = session->next()) {
    if (first) {
      EXPECT_EQ(req->page, "Main");
      first = false;
    }
    if (req->page == "Category" || req->page == "Category & Region") {
      last_category = db::as_int(req->args.at(0));
    }
    if (req->page == "Item" && last_category != 0) {
      // The picked item belongs to the last browsed category.
      EXPECT_EQ(s.item_category(db::as_int(req->args.at(0))), last_category);
    }
    ++count;
  }
  EXPECT_EQ(count, RubisApp::kBrowserSessionLength);
}

TEST(RubisSessionTest, BrowserMixApproximatesTable4) {
  RubisApp app;
  auto factory = app.browser_factory(sim::RngStream{17});
  std::map<std::string, int> counts;
  int total = 0;
  for (int s = 0; s < 400; ++s) {
    auto session = factory();
    while (auto req = session->next()) {
      ++counts[req->page];
      ++total;
    }
  }
  auto frac = [&](const char* page) {
    return static_cast<double>(counts[page]) / static_cast<double>(total);
  };
  EXPECT_NEAR(frac("Item"), 0.425, 0.03);
  EXPECT_NEAR(frac("Bids"), 0.15, 0.02);
  EXPECT_NEAR(frac("User Info"), 0.15, 0.02);
  EXPECT_NEAR(frac("Category"), 0.075, 0.02);
  EXPECT_NEAR(frac("Category & Region"), 0.075, 0.02);
}

TEST(RubisSessionTest, BidderSessionIsTheFixedTable5Scenario) {
  RubisApp app;
  auto factory = app.bidder_factory(sim::RngStream{23});
  auto session = factory();
  std::vector<std::string> pages;
  while (auto req = session->next()) {
    EXPECT_EQ(req->pattern, "Bidder");
    pages.push_back(req->page);
  }
  EXPECT_EQ(pages, (std::vector<std::string>{"Main", "Put Bid Auth", "Put Bid Form",
                                             "Store Bid", "Put Comment Auth",
                                             "Put Comment Form", "Store Comment"}));
}

TEST(RubisSessionTest, BidderCommentsTheSellerOfTheBidItem) {
  RubisApp app;
  const Shape& s = app.shape();
  auto factory = app.bidder_factory(sim::RngStream{29});
  for (int i = 0; i < 20; ++i) {
    auto session = factory();
    std::int64_t item = 0;
    while (auto req = session->next()) {
      if (req->page == "Store Bid") item = db::as_int(req->args.at(1));
      if (req->page == "Store Comment") {
        EXPECT_EQ(db::as_int(req->args.at(1)), s.item_seller(item));
        EXPECT_EQ(db::as_int(req->args.at(2)), item);
      }
    }
  }
}

TEST(RubisSessionTest, BiddingSkewsToHotItems) {
  RubisApp app;
  const Shape& s = app.shape();
  auto factory = app.bidder_factory(sim::RngStream{31});
  int hot = 0;
  int total = 0;
  for (int i = 0; i < 500; ++i) {
    auto session = factory();
    while (auto req = session->next()) {
      if (req->page == "Store Bid") {
        ++total;
        if (db::as_int(req->args.at(1)) <= s.items / 10) ++hot;
      }
    }
  }
  EXPECT_GT(static_cast<double>(hot) / total, 0.7);
}

TEST(RubisAppTest, TablePagesMatchTable7Layout) {
  auto pages = RubisApp::table_pages();
  EXPECT_EQ(pages.size(), 17u);  // 10 browser + 7 bidder columns
  EXPECT_EQ(pages.front(), (std::pair<std::string, std::string>{"Browser", "Main"}));
  EXPECT_EQ(pages.back(), (std::pair<std::string, std::string>{"Bidder", "Store Comment"}));
}

TEST(RubisAppTest, DriverIsComplete) {
  RubisApp app;
  AppDriver d = app.driver();
  EXPECT_EQ(d.writer_pattern, "Bidder");
  EXPECT_TRUE(d.db_colocated);  // §3.1: MySQL on the main app server
  EXPECT_TRUE(d.install_database && d.bind_entities && d.browser_factory && d.writer_factory);
}

}  // namespace
}  // namespace mutsvc::apps::rubis

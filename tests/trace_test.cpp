// Observability subsystem: hierarchical span-tree tracing, the metrics
// registry, the Chrome-trace exporter, and the end-to-end conformance
// invariant (sum of exclusive totals == measured response time, exactly).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "apps/petstore/petstore.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "stats/chrome_trace.hpp"
#include "stats/metrics.hpp"
#include "stats/trace.hpp"

namespace mutsvc {
namespace {

using sim::ms;
using sim::SimTime;
using stats::SpanKind;
using stats::TraceSink;

SimTime at(int millis) { return SimTime::origin() + ms(millis); }

// --- TraceSink: span tree mechanics -----------------------------------------

TEST(TraceSinkTest, FlatTotalsAreAdditive) {
  TraceSink t;
  t.add(SpanKind::kHttpWire, ms(10));
  t.add(SpanKind::kCpu, ms(5));
  t.add(SpanKind::kCpu, ms(3));
  EXPECT_EQ(t.total(SpanKind::kCpu), ms(8));
  EXPECT_EQ(t.sum(), ms(18));
  EXPECT_TRUE(t.conforms(ms(18)));
  EXPECT_FALSE(t.conforms(ms(18) + sim::us(1)));  // exact, no tolerance
}

TEST(TraceSinkTest, BeginEndBuildsATree) {
  TraceSink t;
  const auto root = t.begin_span(SpanKind::kHttpWire, "http", 0, 1, at(0));
  const auto rmi = t.begin_span(SpanKind::kRmiWire, "rmi", 1, 2, at(2));
  t.leaf(SpanKind::kJdbc, "write:Order", 2, 2, at(3), at(4));
  t.end_span(rmi, at(8));
  t.end_span(root, at(10));

  ASSERT_EQ(t.spans().size(), 3u);
  EXPECT_EQ(t.open_span_count(), 0u);
  const auto& spans = t.spans();
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[2].parent, rmi);
  EXPECT_EQ(spans[0].duration(), ms(10));
  EXPECT_EQ(spans[1].duration(), ms(6));

  auto roots = t.children(0);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0]->id, root);
  auto under_rmi = t.children(rmi);
  ASSERT_EQ(under_rmi.size(), 1u);
  EXPECT_EQ(under_rmi[0]->label, "write:Order");
}

TEST(TraceSinkTest, EndSpanClosesAbandonedChildren) {
  // An exception unwinding through nested frames can leave inner spans
  // open; closing an outer span must defensively close them at its end.
  TraceSink t;
  const auto outer = t.begin_span(SpanKind::kHttpWire, "http", 0, 1, at(0));
  (void)t.begin_span(SpanKind::kRmiWire, "rmi", 1, 2, at(1));
  t.end_span(outer, at(5));
  EXPECT_EQ(t.open_span_count(), 0u);
  EXPECT_EQ(t.spans()[1].end, at(5));
}

TEST(TraceSinkTest, LeafDoesNotTouchTheOpenStack) {
  TraceSink t;
  const auto root = t.begin_span(SpanKind::kHttpWire, "http", 0, 1, at(0));
  t.leaf(SpanKind::kPush, "push:edge-1", 1, 2, at(1), at(2));
  t.leaf(SpanKind::kPush, "push:edge-2", 1, 3, at(2), at(3));
  EXPECT_EQ(t.open_span_count(), 1u);  // only the root is open
  EXPECT_EQ(t.children(root).size(), 2u);
  // Leaves are tree-only: the flat totals are untouched.
  EXPECT_EQ(t.sum(), sim::Duration::zero());
  t.end_span(root, at(4));
}

TEST(TraceSinkTest, ClearResetsEverything) {
  TraceSink t;
  t.set_trace_id(7);
  t.add(SpanKind::kCpu, ms(1));
  (void)t.begin_span(SpanKind::kHttpWire, "http", 0, 1, at(0));
  t.clear();
  EXPECT_EQ(t.trace_id(), 0u);
  EXPECT_EQ(t.sum(), sim::Duration::zero());
  EXPECT_TRUE(t.spans().empty());
  EXPECT_EQ(t.open_span_count(), 0u);
}

// --- Histogram / MetricsRegistry --------------------------------------------

TEST(HistogramTest, ObserveBucketsAtBoundsInclusively) {
  stats::Histogram h{{10.0, 20.0, 50.0}};
  h.observe(10.0);  // == bound: lands in the <=10 bucket
  h.observe(10.5);
  h.observe(49.9);
  h.observe(1000.0);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0 + 10.5 + 49.9 + 1000.0);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket(3), 0u);
}

TEST(HistogramTest, BoundsMustBeStrictlyIncreasing) {
  EXPECT_THROW(stats::Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(stats::Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(MetricsRegistryTest, CountersGaugesHistogramsSeries) {
  stats::MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.counter("absent"), 0u);
  m.inc("rmi.retries");
  m.inc("rmi.retries", 2);
  m.set_counter("qcache.hits", 40);
  EXPECT_EQ(m.counter("rmi.retries"), 3u);
  EXPECT_EQ(m.counter("qcache.hits"), 40u);

  m.set_gauge("qcache.hit_rate", 0.75);
  EXPECT_DOUBLE_EQ(m.gauge("qcache.hit_rate"), 0.75);
  EXPECT_DOUBLE_EQ(m.gauge("absent"), 0.0);

  m.observe("response_ms", 42.0);
  EXPECT_EQ(m.histogram("response_ms").count(), 1u);
  // Create-on-first-use honors bounds only at creation.
  stats::Histogram& h = m.histogram("custom", {1.0, 2.0});
  EXPECT_EQ(m.histogram("custom", {9.0}).bounds().size(), 2u);
  EXPECT_EQ(&m.histogram("custom"), &h);

  EXPECT_EQ(m.find_series("topic.updates.pending"), nullptr);
  m.series("topic.updates.pending", sim::sec(10)).add(at(0), 3.0);
  ASSERT_NE(m.find_series("topic.updates.pending"), nullptr);
  EXPECT_EQ(m.find_series("topic.updates.pending")->window_count(), 1u);

  EXPECT_FALSE(m.empty());
  m.clear();
  EXPECT_TRUE(m.empty());
}

// --- ChromeTraceWriter -------------------------------------------------------

TEST(ChromeTraceWriterTest, SamplesEveryNth) {
  stats::ChromeTraceWriter w{2};
  TraceSink t;
  t.leaf(SpanKind::kCpu, "cpu", 0, 0, at(0), at(1));
  EXPECT_TRUE(w.offer(t, "a"));
  EXPECT_FALSE(w.offer(t, "b"));
  EXPECT_TRUE(w.offer(t, "c"));
  EXPECT_EQ(w.offered(), 3u);
  EXPECT_EQ(w.recorded(), 2u);
}

TEST(ChromeTraceWriterTest, WritesCompleteEventsInSimMicros) {
  stats::ChromeTraceWriter w;
  w.name_process(3, "main-as");
  TraceSink t;
  t.set_trace_id(5);
  const auto root = t.begin_span(SpanKind::kHttpWire, "http", 1, 3, at(1));
  t.leaf(SpanKind::kJdbc, "write:\"Order\"", 3, 3, at(2), at(3));
  t.end_span(root, at(4));
  ASSERT_TRUE(w.offer(t, "Commit"));

  std::ostringstream os;
  w.write(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"main-as\""), std::string::npos);
  // Root span name is prefixed with the trace label; ts/dur in sim micros.
  EXPECT_NE(json.find("\"name\":\"Commit: http\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000,\"dur\":3000"), std::string::npos);
  // Quotes in labels are escaped.
  EXPECT_NE(json.find("write:\\\"Order\\\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\":5"), std::string::npos);
}

// --- resilience counters mirrored live ---------------------------------------

TEST(RmiMetricsTest, FailedCallsAndBreakerStateReachTheRegistry) {
  sim::Simulator sim{3};
  net::Topology topo{sim};
  const net::NodeId a = topo.add_node("a", net::NodeRole::kAppServer);
  const net::NodeId b = topo.add_node("b", net::NodeRole::kAppServer);
  // No link between a and b: every call fails immediately with NoRouteError.
  net::Network netw{sim, topo, sim::Duration::zero()};
  net::RmiTransport rmi{netw};
  net::ResilienceConfig res;
  res.enabled = true;
  res.max_retries = 1;
  res.breaker_failure_threshold = 2;
  rmi.set_resilience(res);

  stats::MetricsRegistry m;
  rmi.set_metrics(&m, "rmi.");
  EXPECT_EQ(m.counter("rmi.failed_calls"), 0u);  // synced at attach

  sim.spawn([](net::RmiTransport& rmi, net::NodeId a, net::NodeId b) -> sim::Task<void> {
    bool threw = false;
    try {
      co_await rmi.call(a, b, 100, 100, []() -> sim::Task<void> { co_return; });
    } catch (const net::NetError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }(rmi, a, b));
  sim.run_until();

  EXPECT_EQ(m.counter("rmi.retries"), 1u);
  EXPECT_EQ(m.counter("rmi.failed_calls"), 1u);
  EXPECT_EQ(m.counter("rmi.breaker.opened"), 1u);  // threshold 2, 2 attempts
}

// --- end-to-end conformance ---------------------------------------------------

struct Traced {
  comp::TraceSink sink;
  sim::Duration elapsed = sim::Duration::zero();
};

Traced trace_page(core::Experiment& exp, const char* method, std::vector<db::Value> args,
                  bool warm_first) {
  workload::PageRequest req;
  req.page = method;
  req.pattern = "Test";
  req.component = "PetStoreWeb";
  req.method = method;
  req.args = std::move(args);

  const net::NodeId client = exp.nodes().remote_clients[0];
  if (warm_first) {
    exp.simulator().spawn([](core::Experiment& e, net::NodeId c,
                             const workload::PageRequest& r) -> sim::Task<void> {
      comp::TraceSink warm;
      co_await e.execute_traced(c, r, warm);
    }(exp, client, req));
    exp.simulator().run_until();
    exp.runtime().reset_cache_stats();
  }

  Traced out;
  exp.simulator().spawn([](core::Experiment& e, net::NodeId c, const workload::PageRequest& r,
                           Traced& out) -> sim::Task<void> {
    const SimTime t0 = e.simulator().now();
    co_await e.execute_traced(c, r, out.sink);
    out.elapsed = e.simulator().now() - t0;
  }(exp, client, req, out));
  exp.simulator().run_until();
  return out;
}

core::ExperimentSpec single_request_spec(core::ConfigLevel level) {
  core::ExperimentSpec spec;
  spec.level = level;
  spec.duration = sim::sec(1);
  spec.warmup = sim::Duration::zero();
  // These probes drive client coroutines from the harness thread, which
  // executes in the main island — a remote page then crosses domains at LAN
  // latency, which the windowed executor rightly rejects as a lookahead
  // violation. Pin the sequential loop so the probes also pass under a
  // fleet-wide MUTSVC_PAR_DOMAINS (the CI par rows).
  spec.parallel_domains = 0;
  return spec;
}

TEST(TraceConformanceTest, CommitPageSumsExactlyAndShowsBothPushes) {
  apps::petstore::PetStoreApp app;
  core::Experiment exp{app.driver(),
                       single_request_spec(core::ConfigLevel::kStatefulComponentCaching),
                       core::petstore_calibration()};
  Traced t = trace_page(exp, "commitorder",
                        {db::Value{std::int64_t{1}}, db::Value{std::int64_t{1001001}}},
                        /*warm_first=*/true);

  EXPECT_GT(t.elapsed, sim::Duration::zero());
  EXPECT_EQ(t.sink.sum(), t.elapsed);  // exact equality, no tolerance
  EXPECT_EQ(t.sink.open_span_count(), 0u);
  EXPECT_GT(t.sink.trace_id(), 0u);

  // The blocking push must appear as an umbrella with one child per edge —
  // the testbed has two edge servers, pushed in sequence.
  std::size_t edge_pushes = 0;
  const stats::Span* umbrella = nullptr;
  for (const auto& s : t.sink.spans()) {
    if (s.kind != SpanKind::kPush) continue;
    if (s.label.rfind("push:", 0) == 0) {
      ++edge_pushes;
    } else {
      umbrella = &s;
    }
  }
  ASSERT_NE(umbrella, nullptr);
  EXPECT_EQ(edge_pushes, 2u);
  auto children = t.sink.children(umbrella->id);
  ASSERT_EQ(children.size(), 2u);
  // Sequential: the second push starts when the first ends.
  EXPECT_EQ(children[0]->end, children[1]->start);
  EXPECT_NE(children[0]->dst, children[1]->dst);
  // The umbrella's flat total equals its inclusive duration (its children
  // are tree-only decorations, not separately billed).
  EXPECT_EQ(t.sink.total(SpanKind::kPush), umbrella->duration());
}

TEST(TraceConformanceTest, EveryLevelConformsForItemPage) {
  for (core::ConfigLevel level :
       {core::ConfigLevel::kCentralized, core::ConfigLevel::kRemoteFacade,
        core::ConfigLevel::kStatefulComponentCaching, core::ConfigLevel::kQueryCaching,
        core::ConfigLevel::kAsyncUpdates}) {
    apps::petstore::PetStoreApp app;
    core::Experiment exp{app.driver(), single_request_spec(level),
                         core::petstore_calibration()};
    Traced t =
        trace_page(exp, "item", {db::Value{std::int64_t{1001001}}}, /*warm_first=*/true);
    EXPECT_EQ(t.sink.sum(), t.elapsed) << "level " << core::to_string(level);
    EXPECT_EQ(t.sink.open_span_count(), 0u) << "level " << core::to_string(level);
  }
}

TEST(TraceConformanceTest, RootSpanIsHttpAndTreeReachesTheMainServer) {
  apps::petstore::PetStoreApp app;
  core::Experiment exp{app.driver(), single_request_spec(core::ConfigLevel::kRemoteFacade),
                       core::petstore_calibration()};
  Traced t = trace_page(exp, "category", {db::Value{std::int64_t{1}}}, /*warm_first=*/true);

  auto roots = t.sink.children(0);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0]->kind, SpanKind::kHttpWire);
  // Under the façade rung the category page crosses edge -> main over RMI:
  // the http root must have an rmi-wire descendant targeting the main server.
  bool found_rmi = false;
  for (const stats::Span* child : t.sink.children(roots[0]->id)) {
    if (child->kind == SpanKind::kRmiWire &&
        child->dst == exp.nodes().main_server.value()) {
      found_rmi = true;
    }
  }
  EXPECT_TRUE(found_rmi);
}

// --- metrics collection is observation-only ----------------------------------

TEST(MetricsSamplingTest, EnableMetricsDoesNotPerturbTheRun) {
  apps::petstore::PetStoreApp app;
  core::ExperimentSpec spec;
  spec.level = core::ConfigLevel::kStatefulComponentCaching;
  spec.duration = sim::sec(150);
  spec.warmup = sim::sec(30);
  // The metrics sampler reads every node's gauges from one domain, which the
  // windowed executor refuses — pin the sequential loop so this test also
  // passes under a fleet-wide MUTSVC_PAR_DOMAINS (e.g. the CI par rows).
  spec.parallel_domains = 0;

  core::Experiment plain{app.driver(), spec, core::petstore_calibration()};
  plain.run();

  core::Experiment metered{app.driver(), spec, core::petstore_calibration()};
  metered.enable_metrics(sim::sec(10));
  metered.run();

  // Identical trajectories: every recorded response time matches.
  for (stats::ClientGroup g : {stats::ClientGroup::kLocal, stats::ClientGroup::kRemote}) {
    EXPECT_DOUBLE_EQ(plain.results().pattern_mean_ms("Browser", g),
                     metered.results().pattern_mean_ms("Browser", g));
    EXPECT_DOUBLE_EQ(plain.results().pattern_mean_ms("Buyer", g),
                     metered.results().pattern_mean_ms("Buyer", g));
  }

  // And the registries actually filled: response histogram, cache counters,
  // consistency gauges (zero staleness under blocking push).
  stats::MetricsRegistry& main = metered.metrics(metered.nodes().main_server);
  EXPECT_EQ(main.histogram("response_ms").count(), metered.results().total_samples());
  EXPECT_GT(main.counter("runtime.blocking_pushes"), 0u);
  EXPECT_EQ(main.counter("consistency.stale_reads"), 0u);
  bool edge_has_cache_metrics = false;
  for (net::NodeId edge : metered.nodes().edge_servers) {
    for (const auto& [name, v] : metered.metrics(edge).counters()) {
      if (name.rfind("rocache.", 0) == 0 && v > 0) edge_has_cache_metrics = true;
    }
  }
  EXPECT_TRUE(edge_has_cache_metrics);
}

}  // namespace
}  // namespace mutsvc

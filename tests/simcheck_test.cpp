// SimCheck runtime-sanitizer coverage: every detector must catch its
// deliberately-buggy fixture, stay quiet on correct code, and a sanitized
// benchmark run must follow the exact same trajectory as an uninstrumented
// one (§4.3 zero staleness included).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/petstore/petstore.hpp"
#include "component/locks.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "sim/simcheck.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace mutsvc {
namespace {

using comp::LockManager;
using sim::Simulator;

/// Enables the sanitizer for one test and restores the disabled default.
struct SimCheckScope {
  SimCheckScope() {
    simcheck::reset();
    simcheck::set_enabled(true);
  }
  ~SimCheckScope() {
    simcheck::set_enabled(false);
    simcheck::reset();
  }
};

// --- deadlock detector ---------------------------------------------------------

TEST(SimCheckDeadlock, CatchesAbBaCycleAtAcquireTime) {
  SimCheckScope guard;
  Simulator sim;
  LockManager locks{sim};
  const LockManager::Key a{"Item", 1};
  const LockManager::Key b{"Item", 2};

  bool caught = false;
  // Planted bug: two transactions take the same two locks in opposite
  // order, yielding in between — the classic AB/BA deadlock.
  sim.spawn([](Simulator& s, LockManager& lm, LockManager::Key first, LockManager::Key second,
               bool* flag) -> sim::Task<void> {
    const simcheck::ActorId me = simcheck::anonymous_actor();
    co_await lm.acquire(first, me);
    co_await s.wait(sim::ms(1));
    try {
      co_await lm.acquire(second, me);
    } catch (const simcheck::SimCheckError&) {
      *flag = true;
      lm.release(first);
    }
  }(sim, locks, a, b, &caught));
  sim.spawn([](Simulator& s, LockManager& lm, LockManager::Key first, LockManager::Key second,
               bool* flag) -> sim::Task<void> {
    const simcheck::ActorId me = simcheck::anonymous_actor();
    co_await lm.acquire(first, me);
    co_await s.wait(sim::ms(1));
    try {
      co_await lm.acquire(second, me);
    } catch (const simcheck::SimCheckError&) {
      *flag = true;
      lm.release(first);
    }
  }(sim, locks, b, a, &caught));
  sim.run_until();

  EXPECT_TRUE(caught);
  EXPECT_GE(simcheck::report().deadlocks, 1u);
}

TEST(SimCheckDeadlock, CatchesReentrantSelfDeadlock) {
  SimCheckScope guard;
  Simulator sim;
  LockManager locks{sim};
  const LockManager::Key k{"Item", 7};

  bool caught = false;
  sim.spawn([](LockManager& lm, LockManager::Key key, bool* flag) -> sim::Task<void> {
    const simcheck::ActorId me = simcheck::anonymous_actor();
    co_await lm.acquire(key, me);
    try {
      co_await lm.acquire(key, me);  // bug: FIFO mutex would hang forever
    } catch (const simcheck::SimCheckError&) {
      *flag = true;
    }
    lm.release(key);
  }(locks, k, &caught));
  sim.run_until();

  EXPECT_TRUE(caught);
  EXPECT_GE(simcheck::report().deadlocks, 1u);
}

TEST(SimCheckDeadlock, ContendedButOrderedLockingIsClean) {
  SimCheckScope guard;
  Simulator sim;
  LockManager locks{sim};
  const LockManager::Key a{"Item", 1};
  const LockManager::Key b{"Item", 2};

  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Simulator& s, LockManager& lm, LockManager::Key first,
                 LockManager::Key second) -> sim::Task<void> {
      const simcheck::ActorId me = simcheck::anonymous_actor();
      co_await lm.acquire(first, me);
      co_await s.wait(sim::ms(1));
      co_await lm.acquire(second, me);
      lm.release(second);
      lm.release(first);
    }(sim, locks, a, b));
  }
  sim.run_until();

  EXPECT_EQ(simcheck::report().total(), 0u);
  EXPECT_EQ(locks.held_count(), 0u);
}

// --- lock-order inversion ------------------------------------------------------

TEST(SimCheckLockOrder, RecordsInversionWithoutActualCycle) {
  SimCheckScope guard;
  Simulator sim;
  LockManager locks{sim};
  const LockManager::Key a{"Item", 1};
  const LockManager::Key b{"Item", 2};

  // Sequential (never concurrent, so no cycle): one transaction takes A
  // then B, a later one takes B then A. The order graph still proves the
  // potential deadlock.
  sim.spawn([](LockManager& lm, LockManager::Key first, LockManager::Key second)
                -> sim::Task<void> {
    const simcheck::ActorId me = simcheck::anonymous_actor();
    co_await lm.acquire(first, me);
    co_await lm.acquire(second, me);
    lm.release(second);
    lm.release(first);
  }(locks, a, b));
  sim.run_until();
  sim.spawn([](LockManager& lm, LockManager::Key first, LockManager::Key second)
                -> sim::Task<void> {
    const simcheck::ActorId me = simcheck::anonymous_actor();
    co_await lm.acquire(first, me);
    co_await lm.acquire(second, me);
    lm.release(second);
    lm.release(first);
  }(locks, b, a));
  sim.run_until();

  EXPECT_EQ(simcheck::report().deadlocks, 0u);
  EXPECT_EQ(simcheck::report().lock_order_inversions, 1u);
}

// --- write-overlap detector ----------------------------------------------------

TEST(SimCheckWriteOverlap, FlagsUnlockedConcurrentWritesToSameKey) {
  SimCheckScope guard;
  Simulator sim;

  // Planted bug: two coroutines mutate "Item:5" across suspension points
  // without holding its lock.
  for (int i = 0; i < 2; ++i) {
    sim.spawn([](Simulator& s) -> sim::Task<void> {
      const simcheck::ActorId me = simcheck::anonymous_actor();
      simcheck::WriteGuard span(me, "Item:5", /*holds_lock=*/false);
      co_await s.wait(sim::ms(2));
    }(sim));
  }
  sim.run_until();

  EXPECT_GE(simcheck::report().write_overlaps, 1u);
}

TEST(SimCheckWriteOverlap, LockedWritersAndDistinctKeysAreClean) {
  SimCheckScope guard;
  Simulator sim;

  sim.spawn([](Simulator& s) -> sim::Task<void> {
    const simcheck::ActorId me = simcheck::anonymous_actor();
    simcheck::WriteGuard span(me, "Item:5", /*holds_lock=*/true);
    co_await s.wait(sim::ms(2));
  }(sim));
  sim.spawn([](Simulator& s) -> sim::Task<void> {
    const simcheck::ActorId me = simcheck::anonymous_actor();
    simcheck::WriteGuard span(me, "Item:6", /*holds_lock=*/false);
    co_await s.wait(sim::ms(2));
  }(sim));
  // Same key but both hold the (conceptual) lock: the lock layer already
  // serializes them, so concurrent spans cannot both be lock-holders in a
  // correct run; two locked spans are treated as serialized.
  sim.run_until();

  EXPECT_EQ(simcheck::report().write_overlaps, 0u);
}

// --- exactly-once probe --------------------------------------------------------

TEST(SimCheckExactlyOnce, SecondExecutionForOneCallIdHardFails) {
  SimCheckScope guard;
  const std::uint64_t id = simcheck::begin_rmi_call();
  simcheck::on_server_execution(id);  // first execution: fine
  EXPECT_THROW(simcheck::on_server_execution(id), simcheck::SimCheckError);
  EXPECT_EQ(simcheck::report().double_executions, 1u);

  // A different call id is independent.
  const std::uint64_t other = simcheck::begin_rmi_call();
  EXPECT_NO_THROW(simcheck::on_server_execution(other));
}

// --- zero-staleness probe ------------------------------------------------------

TEST(SimCheckStaleness, StaleReadUnderBlockingPushHardFails) {
  SimCheckScope guard;
  EXPECT_NO_THROW(simcheck::probe_zero_staleness(0, /*invariant_applies=*/true));
  EXPECT_NO_THROW(simcheck::probe_zero_staleness(3, /*invariant_applies=*/false));
  EXPECT_THROW(simcheck::probe_zero_staleness(1, /*invariant_applies=*/true),
               simcheck::SimCheckError);
  EXPECT_EQ(simcheck::report().stale_read_violations, 1u);
}

// --- disabled sanitizer is inert ----------------------------------------------

TEST(SimCheckDisabled, ProbesAreNoOpsWhenOff) {
  simcheck::reset();
  simcheck::set_enabled(false);
  EXPECT_FALSE(simcheck::enabled());
  // Instrumented call sites gate on enabled(); WriteGuard must also be inert.
  {
    simcheck::WriteGuard span(1, "Item:1", false);
    simcheck::WriteGuard span2(2, "Item:1", false);
  }
  EXPECT_EQ(simcheck::report().total(), 0u);
}

// --- full seeded run under the sanitizer ---------------------------------------

struct RunStats {
  std::uint64_t samples = 0;
  std::uint64_t stale_reads = 0;
  std::uint64_t reads = 0;
  std::uint64_t executed_events = 0;
  std::uint64_t rmi_calls = 0;
  double mean_ms = 0.0;

  bool operator==(const RunStats&) const = default;
};

RunStats run_blocking_push_experiment(bool sanitize) {
  simcheck::reset();
  simcheck::set_enabled(sanitize);
  apps::petstore::PetStoreApp app;
  core::ExperimentSpec spec;
  spec.level = core::ConfigLevel::kStatefulComponentCaching;  // blocking push
  spec.duration = sim::sec(120);
  spec.warmup = sim::sec(10);
  spec.seed = 7;
  core::Experiment exp{app.driver(), spec, core::petstore_calibration()};
  exp.run();

  RunStats out;
  out.samples = exp.results().total_samples();
  out.stale_reads = exp.runtime().consistency().stale_reads();
  out.reads = exp.runtime().consistency().reads();
  out.executed_events = exp.simulator().executed_events();
  out.rmi_calls = exp.rmi().calls();
  out.mean_ms = exp.results().pattern_mean_ms("Browser", stats::ClientGroup::kRemote);
  simcheck::set_enabled(false);
  simcheck::reset();
  return out;
}

TEST(SimCheckEndToEnd, SanitizedBlockingPushRunIsCleanAndBitIdentical) {
  const RunStats plain = run_blocking_push_experiment(false);
  const RunStats sanitized = run_blocking_push_experiment(true);

  // §4.3: zero staleness under blocking push — enforced, not sampled.
  EXPECT_EQ(sanitized.stale_reads, 0u);
  EXPECT_GT(sanitized.reads, 0u);
  // The sanitizer observes; it must not perturb the trajectory.
  EXPECT_EQ(plain, sanitized);
}

}  // namespace
}  // namespace mutsvc

// core::sweep determinism suite: the parallel trial executor must produce
// byte-identical reports at any MUTSVC_JOBS value (including the serial
// inline path), with and without the SimCheck sanitizer; a failing trial
// must neither deadlock the pool nor perturb the other trials' results.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "apps/petstore/petstore.hpp"
#include "bench/table_common.hpp"
#include "component/controller.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"
#include "sim/simcheck.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace {

using namespace mutsvc;

// Scoped environment override (tests mutate MUTSVC_JOBS / MUTSVC_BENCH_JSON).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

// --- configured_jobs / MUTSVC_JOBS parsing -----------------------------------

TEST(SweepJobs, HonorsPositiveInteger) {
  ScopedEnv env("MUTSVC_JOBS", "3");
  EXPECT_EQ(core::sweep::configured_jobs(), 3u);
}

TEST(SweepJobs, RejectsMalformedValues) {
  // Reading the host's core count to validate the fallback, not threading
  // a simulation. simlint:allow(sim-shared-across-threads)
  const unsigned hc = std::thread::hardware_concurrency();
  const std::size_t fallback = hc > 0 ? hc : 1;
  for (const char* bad : {"0", "-2", "abc", "2x", ""}) {
    ScopedEnv env("MUTSVC_JOBS", bad);
    EXPECT_EQ(core::sweep::configured_jobs(), fallback) << "MUTSVC_JOBS=" << bad;
  }
  ScopedEnv unset("MUTSVC_JOBS", nullptr);
  EXPECT_GE(core::sweep::configured_jobs(), 1u);
}

// --- run_indexed / run_trials mechanics --------------------------------------

TEST(SweepRun, AllIndicesRunExactlyOnce) {
  for (std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    std::vector<std::atomic<int>> hits(64);
    core::sweep::run_indexed(
        hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, jobs);
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs " << jobs;
    }
  }
}

TEST(SweepRun, MergesInSubmissionOrder) {
  std::vector<std::function<std::size_t()>> trials;
  for (std::size_t i = 0; i < 40; ++i) {
    trials.push_back([i] { return i * i; });
  }
  const std::vector<std::size_t> out = core::sweep::run_trials(std::move(trials), 8);
  ASSERT_EQ(out.size(), 40u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(SweepRun, ThrowingTrialDoesNotDeadlockOrSkipOthers) {
  std::vector<std::atomic<int>> hits(16);
  auto body = [&](std::size_t i) {
    hits[i].fetch_add(1);
    if (i == 5) throw std::runtime_error("trial 5 failed");
    if (i == 9) throw std::runtime_error("trial 9 failed");
  };
  try {
    core::sweep::run_indexed(hits.size(), body, 4);
    FAIL() << "expected the trial failure to propagate";
  } catch (const std::runtime_error& e) {
    // Lowest-index failure wins, regardless of worker scheduling.
    EXPECT_STREQ(e.what(), "trial 5 failed");
  }
  // The pool drained fully: every trial ran despite the failures.
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

// --- kernel determinism under the pool ---------------------------------------

[[nodiscard]] sim::Task<void> tick_forever(sim::Simulator& s, int id) {
  const sim::Duration period = sim::us(200 + id % 17);
  for (;;) co_await s.wait(period);
}

std::uint64_t run_small_sim(std::uint64_t seed) {
  sim::Simulator s(seed);
  for (int i = 0; i < 8; ++i) s.spawn(tick_forever(s, i));
  s.run_until(sim::SimTime::origin() + sim::ms(500));
  return s.executed_events();
}

TEST(SweepStress, ManySimTrialsMatchSerialReference) {
  const std::size_t n = 64;
  std::vector<std::uint64_t> reference(n);
  for (std::size_t i = 0; i < n; ++i) reference[i] = run_small_sim(i);

  std::vector<std::function<std::uint64_t()>> trials;
  for (std::size_t i = 0; i < n; ++i) {
    trials.push_back([i] { return run_small_sim(i); });
  }
  const std::vector<std::uint64_t> parallel = core::sweep::run_trials(std::move(trials), 8);
  ASSERT_EQ(parallel.size(), reference.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(parallel[i], reference[i]) << "trial " << i;
  }
}

// --- ladder report byte-identity ---------------------------------------------

// Renders the full bench ladder (five configuration rungs through the real
// core::sweep path) into the two report tables the benches print.
std::string ladder_report(const char* jobs_env) {
  ScopedEnv env("MUTSVC_JOBS", jobs_env);
  apps::petstore::PetStoreApp app;
  apps::AppDriver driver = app.driver();
  core::ExperimentSpec spec = bench::base_spec();
  spec.duration = sim::sec(20);
  spec.warmup = sim::sec(4);
  bench::LadderRun run = bench::run_ladder(driver, core::petstore_calibration(), spec);
  std::ostringstream os;
  core::print_paper_table(os, driver, run.results);
  core::print_session_averages(os, driver, run.results);
  return os.str();
}

TEST(SweepDeterminism, LadderReportIsIdenticalAcrossJobCounts) {
  const std::string serial = ladder_report("1");
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, ladder_report("2"));
  EXPECT_EQ(serial, ladder_report("8"));
}

TEST(SweepDeterminism, SanitizedLadderMatchesAcrossJobCountsToo) {
  simcheck::set_enabled(true);
  const std::string serial = ladder_report("1");
  const std::string two = ladder_report("2");
  const std::string eight = ladder_report("8");
  simcheck::set_enabled(false);
  simcheck::reset();
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);
}

// --- bench JSON identity (modulo wall_* lines) -------------------------------

std::string json_without_wall_lines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream kept;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"wall_") != std::string::npos) continue;
    kept << line << "\n";
  }
  return kept.str();
}

TEST(SweepDeterminism, LadderJsonIdenticalAcrossJobCountsIgnoringWallMetrics) {
  apps::petstore::PetStoreApp app;
  apps::AppDriver driver = app.driver();
  core::ExperimentSpec spec = bench::base_spec();
  spec.duration = sim::sec(20);
  spec.warmup = sim::sec(4);

  auto emit = [&](const char* jobs, const std::string& path) {
    ScopedEnv jenv("MUTSVC_JOBS", jobs);
    ScopedEnv penv("MUTSVC_BENCH_JSON", path.c_str());
    bench::LadderRun run = bench::run_ladder(driver, core::petstore_calibration(), spec);
    bench::maybe_write_ladder_json("petstore", run);
  };
  emit("1", "sweep_test_ladder_j1.json");
  emit("8", "sweep_test_ladder_j8.json");

  const std::string j1 = json_without_wall_lines("sweep_test_ladder_j1.json");
  const std::string j8 = json_without_wall_lines("sweep_test_ladder_j8.json");
  EXPECT_FALSE(j1.empty());
  EXPECT_EQ(j1, j8);
}

// --- runtime-placement state is per-trial, never per-slot --------------------

// A policy with *internal* state: it migrates the replica set away and back,
// keyed off its own evaluation counter (not the snapshot's). If a sweep slot
// ever reused one instance across trials — the regression this test pins, fixed
// by constructing the controller and policy fresh per Experiment via the
// PlacementConfig factory — the second trial would resume past the trigger
// counts, fire no migrations, and its fingerprint would diverge.
class ToggleTwicePolicy final : public comp::PlacementPolicy {
 public:
  explicit ToggleTwicePolicy(std::atomic<int>& instances) { instances.fetch_add(1); }

  std::vector<comp::PlacementAction> decide(const comp::PlacementSnapshot& snap) override {
    ++self_evals_;
    if (self_evals_ != 2 && self_evals_ != 5) return {};
    for (const auto& [edge, pages] : snap.edge_pages) {
      if (edge != snap.replica_holder) {
        comp::PlacementAction a;
        a.kind = comp::PlacementAction::Kind::kMigrateReplicaSet;
        a.from = snap.replica_holder;
        a.to = edge;
        return {a};
      }
    }
    return {};
  }

 private:
  int self_evals_ = 0;
};

std::string placement_trial(std::atomic<int>& instances) {
  apps::petstore::PetStoreApp app;
  core::ExperimentSpec spec;
  spec.level = core::ConfigLevel::kAsyncUpdates;
  spec.duration = sim::sec(120);
  spec.warmup = sim::sec(30);
  spec.placement.enabled = true;
  spec.placement.components = {"Catalog"};
  spec.placement.entities = {"Category", "Product", "Item", "Inventory"};
  spec.placement.policy = [&instances] { return std::make_unique<ToggleTwicePolicy>(instances); };
  core::Experiment exp{app.driver(), spec, core::petstore_calibration()};
  // A fresh trial starts from a fresh binding table, always.
  EXPECT_EQ(exp.bindings()->bound_components(), 0u);
  EXPECT_EQ(exp.bindings()->flips(), 0u);
  exp.run();

  const comp::PlacementController* pc = exp.placement_controller();
  EXPECT_NE(pc, nullptr);
  std::ostringstream os;
  os << "events=" << exp.simulator().executed_events()
     << " samples=" << exp.results().total_samples()
     << " failures=" << exp.results().failures() << " evals=" << pc->evaluations()
     << " migrations=" << pc->migrations_completed() << " flips=" << exp.bindings()->flips()
     << " version=" << exp.bindings()->version("Catalog") << " holder=" << pc->replica_holder();
  for (const auto& rec : pc->actions()) {
    os << " [" << rec.at.count_micros() << " " << rec.action.from << "->" << rec.action.to
       << " done=" << rec.completed << " v=" << rec.binding_version << "]";
  }
  return os.str();
}

TEST(SweepDeterminism, PlacementStateIsFreshPerTrialUnderSlotReuse) {
  std::atomic<int> instances{0};
  const std::string reference = placement_trial(instances);
  ASSERT_EQ(instances.load(), 1);
  // The toggle policy really acted: two completed migrations, two flips.
  EXPECT_NE(reference.find("migrations=2"), std::string::npos) << reference;
  EXPECT_NE(reference.find("flips=2"), std::string::npos) << reference;

  // Two more trials back-to-back on a single worker — the sweep-slot reuse
  // shape. Each must construct its own policy instance and reproduce the
  // reference fingerprint exactly.
  std::vector<std::function<std::string()>> trials;
  for (int i = 0; i < 2; ++i) {
    trials.push_back([&instances] { return placement_trial(instances); });
  }
  const std::vector<std::string> out = core::sweep::run_trials(std::move(trials), 1);
  EXPECT_EQ(instances.load(), 3);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], reference);
  EXPECT_EQ(out[1], reference);
}

}  // namespace

#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace mutsvc::sim {
namespace {

TEST(RngStreamTest, DeterministicForSameSeed) {
  RngStream a{42};
  RngStream b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
  }
}

TEST(RngStreamTest, DifferentSeedsDiffer) {
  RngStream a{1};
  RngStream b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform01() == b.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngStreamTest, ForkIsDeterministicAndIndependentOfDraws) {
  RngStream a{7};
  RngStream b{7};
  (void)b.uniform01();  // draws must not affect forked child seeds
  RngStream ca = a.fork("client");
  RngStream cb = b.fork("client");
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(ca.uniform01(), cb.uniform01());
  }
}

TEST(RngStreamTest, ForkedStreamsWithDifferentNamesDiffer) {
  RngStream root{7};
  RngStream a = root.fork("alpha");
  RngStream b = root.fork("beta");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform01() == b.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngStreamTest, RootsWithDifferentSeedsForkDifferentChildren) {
  RngStream a = RngStream{1}.fork("x");
  RngStream b = RngStream{2}.fork("x");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform01() == b.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngStreamTest, UniformIntRangeInclusive) {
  RngStream r{3};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    auto v = r.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo = saw_lo || v == 2;
    saw_hi = saw_hi || v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngStreamTest, UniformIntBadRangeThrows) {
  RngStream r{3};
  EXPECT_THROW((void)r.uniform_int(5, 2), std::invalid_argument);
}

TEST(RngStreamTest, ExponentialMean) {
  RngStream r{11};
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / kN, 4.0, 0.1);
}

TEST(RngStreamTest, ExponentialDurationOverload) {
  RngStream r{11};
  Duration d = r.exponential(ms(100));
  EXPECT_GE(d, Duration::zero());
}

TEST(RngStreamTest, ExponentialRejectsNonPositiveMean) {
  RngStream r{1};
  EXPECT_THROW((void)r.exponential(0.0), std::invalid_argument);
  EXPECT_THROW((void)r.exponential(-1.0), std::invalid_argument);
}

TEST(RngStreamTest, WeightedIndexProportions) {
  RngStream r{5};
  std::array<double, 3> weights{1.0, 3.0, 6.0};
  std::array<int, 3> counts{};
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[r.weighted_index(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.3, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.6, 0.015);
}

TEST(RngStreamTest, WeightedIndexValidation) {
  RngStream r{5};
  std::vector<double> empty;
  EXPECT_THROW((void)r.weighted_index(empty), std::invalid_argument);
  std::array<double, 2> neg{1.0, -1.0};
  EXPECT_THROW((void)r.weighted_index(neg), std::invalid_argument);
  std::array<double, 2> zero{0.0, 0.0};
  EXPECT_THROW((void)r.weighted_index(zero), std::invalid_argument);
}

TEST(RngStreamTest, BernoulliExtremes) {
  RngStream r{9};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(RngStreamTest, PickCoversAllElements) {
  RngStream r{13};
  std::vector<int> items{10, 20, 30};
  std::array<int, 3> seen{};
  for (int i = 0; i < 300; ++i) {
    int v = r.pick(items);
    seen[static_cast<std::size_t>(v / 10 - 1)]++;
  }
  for (int c : seen) EXPECT_GT(c, 0);
}

TEST(RngStreamTest, PickEmptyThrows) {
  RngStream r{13};
  std::vector<int> empty;
  EXPECT_THROW((void)r.pick(empty), std::invalid_argument);
}

}  // namespace
}  // namespace mutsvc::sim

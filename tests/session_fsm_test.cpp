// Million-session FSM load engine (ISSUE 9): sessions as 40-byte records in
// a flat arena, driven by a calendar of due-time buckets. Pins the timing
// semantics against the coroutine LoadGenerator (same model, same streams,
// same collector digest), the end-of-run window rule, the empty-script
// rule, determinism under repeat runs, and the memory-per-session budget.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "sim/simulator.hpp"
#include "workload/arrivals.hpp"
#include "workload/loadgen.hpp"
#include "workload/session_fsm.hpp"

namespace mutsvc::workload {
namespace {

using sim::Duration;
using sim::ms;
using sim::sec;
using sim::Simulator;
using sim::Task;

class FakeExecutor final : public RequestExecutor {
 public:
  FakeExecutor(Simulator& sim, Duration latency) : sim_(sim), latency_(latency) {}

  [[nodiscard]] Task<RequestOutcome> execute(net::NodeId, const PageRequest& req) override {
    ++requests_;
    pages_[req.page]++;
    patterns_[req.pattern]++;
    co_await sim_.wait(latency_);
    co_return RequestOutcome::kOk;
  }

  std::uint64_t requests_ = 0;
  std::map<std::string, int> pages_;
  std::map<std::string, int> patterns_;

 private:
  Simulator& sim_;
  Duration latency_;
};

/// Three-page fixed script as an FSM model (the FixedSession of
/// workload_test, expressed as a pure per-step function).
class FixedModel final : public FsmScriptModel {
 public:
  explicit FixedModel(const char* pattern) : pattern_(pattern) {}
  std::optional<PageRequest> next(std::uint32_t step, FsmScratch&, SmallRng&) const override {
    if (step >= 3) return std::nullopt;
    PageRequest req;
    req.page = "P" + std::to_string(step);
    req.pattern = pattern_;
    req.component = "Web";
    req.method = "page";
    return req;
  }
  const char* pattern() const override { return pattern_; }

 private:
  const char* pattern_;
};

class EmptyModel final : public FsmScriptModel {
 public:
  std::optional<PageRequest> next(std::uint32_t, FsmScratch&, SmallRng&) const override {
    return std::nullopt;
  }
  const char* pattern() const override { return "Empty"; }
};

struct FsmWorld {
  Simulator sim{5};
  stats::ResponseTimeCollector collector;
};

TEST(SessionFsmTest, RecordIsFortyBytes) {
  // The tentpole claim: a suspended session is tens of bytes, not a
  // coroutine frame. The static_assert in the engine pins the layout; this
  // pins the public accessor.
  EXPECT_EQ(SessionFsmEngine::record_bytes(), 40u);
}

TEST(SessionFsmTest, PopulationOffersOneRequestPerThinkTime) {
  FsmWorld w;
  FakeExecutor exec{w.sim, ms(20)};
  SessionFsmEngine::Config cfg;
  cfg.think_time = sec(5);
  cfg.between_sessions = Duration::zero();
  SessionFsmEngine engine{w.sim, exec, w.collector, cfg};
  const std::uint8_t k = engine.add_kind(std::make_shared<FixedModel>("Browser"),
                                         net::NodeId{0}, stats::ClientGroup::kLocal);
  const double duration_s = 300.0;
  engine.start_population(k, 50, sim::SimTime::origin() + sec(duration_s), 42);
  w.sim.run_until();
  // 50 sessions at one request per 5s think -> ~10/s.
  const double achieved = static_cast<double>(exec.requests_) / duration_s;
  EXPECT_NEAR(achieved, 10.0, 1.0);
  EXPECT_EQ(engine.requests_issued(), exec.requests_);
  EXPECT_EQ(engine.requests_issued(), engine.requests_completed());
  EXPECT_EQ(engine.requests_in_flight(), 0u);
  EXPECT_TRUE(w.sim.idle());
}

TEST(SessionFsmTest, RecurringSessionsRestartAfterBetweenSessions) {
  FsmWorld w;
  FakeExecutor exec{w.sim, ms(1)};
  SessionFsmEngine::Config cfg;
  cfg.think_time = sec(2);
  cfg.between_sessions = sec(1);
  SessionFsmEngine engine{w.sim, exec, w.collector, cfg};
  const std::uint8_t k = engine.add_kind(std::make_shared<FixedModel>("Browser"),
                                         net::NodeId{0}, stats::ClientGroup::kLocal);
  engine.start_population(k, 4, sim::SimTime::origin() + sec(120), 7);
  w.sim.run_until();
  // 4 clients x (~1 session per 3-page*2s + 1s gap = 7s) over 120s.
  EXPECT_GT(engine.sessions_started(), 30u);
  EXPECT_EQ(engine.requests_issued(), exec.requests_);
  // Recurring sessions stay resident until the end cutoff releases them.
  EXPECT_EQ(engine.peak_live_sessions(), 4u);
  EXPECT_EQ(engine.live_sessions(), 0u);
}

TEST(SessionFsmTest, EndOfRunRuleMatchesTheLoadGenerator) {
  // Same pin as EndOfRunTest in workload_test: issue-time counting exposes
  // the in-flight tail at end_at, and draining records the completions.
  FsmWorld w;
  FakeExecutor slow{w.sim, sec(60)};
  SessionFsmEngine::Config cfg;
  cfg.think_time = sec(5);
  cfg.between_sessions = Duration::zero();
  SessionFsmEngine engine{w.sim, slow, w.collector, cfg};
  const std::uint8_t k = engine.add_kind(std::make_shared<FixedModel>("Browser"),
                                         net::NodeId{0}, stats::ClientGroup::kLocal);
  const sim::SimTime end = sim::SimTime::origin() + sec(30);
  engine.start_population(k, 10, end, 3);

  w.sim.run_until(end);
  EXPECT_EQ(engine.requests_issued(), 10u);
  EXPECT_EQ(engine.requests_completed(), 0u);
  EXPECT_EQ(engine.requests_in_flight(), 10u);
  EXPECT_EQ(w.collector.total_samples() + w.collector.discarded_samples(), 0u);

  w.sim.run_until();
  EXPECT_EQ(engine.requests_issued(), 10u);
  EXPECT_EQ(engine.requests_completed(), 10u);
  EXPECT_EQ(w.collector.total_samples() + w.collector.discarded_samples(), 10u);
  EXPECT_EQ(engine.live_sessions(), 0u);
}

TEST(SessionFsmTest, EmptyModelsAreNeverCountedAsSessions) {
  // The FSM engine shares the open-loop LoadGenerator's rule: a script
  // empty from step 0 never counts, and sterile sessions leave the arena.
  FsmWorld w;
  FakeExecutor exec{w.sim, ms(1)};
  SessionFsmEngine engine{w.sim, exec, w.collector};
  const std::uint8_t k = engine.add_kind(std::make_shared<EmptyModel>(), net::NodeId{0},
                                         stats::ClientGroup::kLocal);
  engine.start_population(k, 10, sim::SimTime::origin() + sec(60), 5);
  engine.start_arrivals(k, RateEnvelope::constant(5.0), sim::SimTime::origin() + sec(60), 6);
  w.sim.run_until();
  EXPECT_EQ(engine.sessions_started(), 0u);
  EXPECT_EQ(engine.requests_issued(), 0u);
  EXPECT_EQ(engine.live_sessions(), 0u);
  EXPECT_TRUE(w.sim.idle());
}

TEST(SessionFsmTest, OneShotArrivalsFollowTheEnvelope) {
  FsmWorld w;
  FakeExecutor exec{w.sim, ms(10)};
  SessionFsmEngine::Config cfg;
  cfg.think_time = sec(2);
  SessionFsmEngine engine{w.sim, exec, w.collector, cfg};
  const std::uint8_t k = engine.add_kind(std::make_shared<FixedModel>("Browser"),
                                         net::NodeId{0}, stats::ClientGroup::kLocal);
  engine.start_arrivals(k, RateEnvelope::constant(5.0), sim::SimTime::origin() + sec(100), 9);
  w.sim.run_until();
  // ~500 one-shot sessions; each runs its 3-page script unless the end
  // cutoff truncates it.
  EXPECT_NEAR(static_cast<double>(engine.sessions_started()), 500.0, 70.0);
  EXPECT_LE(engine.requests_issued(), engine.sessions_started() * 3);
  EXPECT_GT(engine.requests_issued(), engine.sessions_started() * 2);
  EXPECT_EQ(engine.live_sessions(), 0u) << "one-shot sessions must leave the arena";
  EXPECT_EQ(engine.requests_issued(), engine.requests_completed());
}

TEST(SessionFsmTest, FlashCrowdArrivalsConcentrateInTheSpike) {
  FsmWorld w;
  FakeExecutor exec{w.sim, ms(5)};
  SessionFsmEngine engine{w.sim, exec, w.collector};
  const std::uint8_t k = engine.add_kind(std::make_shared<FixedModel>("Browser"),
                                         net::NodeId{0}, stats::ClientGroup::kLocal);
  // 2/s base, 20/s during [100s, 130s): the spike should add ~600 sessions
  // on top of the ~200 base arrivals over 200s.
  engine.start_arrivals(k, RateEnvelope::flash_crowd(1.0, 10.0, sec(100), sec(30)),
                        sim::SimTime::origin() + sec(200), 11);
  w.sim.run_until();
  const double expected = 1.0 * 170.0 + 10.0 * 30.0;
  EXPECT_NEAR(static_cast<double>(engine.sessions_started()), expected, expected * 0.15);
}

std::uint64_t digest_run(std::uint64_t seed, std::size_t sessions, double rate) {
  FsmWorld w;
  FakeExecutor exec{w.sim, ms(25)};
  SessionFsmEngine::Config cfg;
  cfg.think_time = sec(3);
  cfg.between_sessions = sec(1);
  SessionFsmEngine engine{w.sim, exec, w.collector, cfg};
  const std::uint8_t b = engine.add_kind(std::make_shared<FixedModel>("Browser"),
                                         net::NodeId{0}, stats::ClientGroup::kLocal);
  const std::uint8_t o = engine.add_kind(std::make_shared<FixedModel>("Writer"),
                                         net::NodeId{0}, stats::ClientGroup::kLocal);
  const sim::SimTime end = sim::SimTime::origin() + sec(90);
  engine.start_population(b, sessions, end, SmallRng::named_seed(seed, "b"));
  engine.start_arrivals(o, RateEnvelope::constant(rate), end, SmallRng::named_seed(seed, "o"));
  w.sim.run_until();
  // Fold every observable into one word: any divergence flips the digest.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto fold = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  fold(engine.requests_issued());
  fold(engine.sessions_started());
  fold(engine.peak_live_sessions());
  fold(w.collector.total_samples() + w.collector.discarded_samples());
  fold(static_cast<std::uint64_t>(w.sim.now().count_micros()));
  return h;
}

TEST(SessionFsmTest, RepeatRunsAreBitIdentical) {
  const std::uint64_t a = digest_run(1234, 30, 4.0);
  const std::uint64_t b = digest_run(1234, 30, 4.0);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, digest_run(1235, 30, 4.0)) << "the seed must actually steer the run";
}

// --- FSM vs coroutine equivalence --------------------------------------------
// A reference per-session coroutine driver implementing the engine's exact
// timing contract (same per-session streams, same stagger rule, same soft
// delay, same end rule) must produce the same aggregate digest. This is the
// pin that the arena+calendar machinery changes *representation*, not
// *semantics*.

class ReferenceDriver {
 public:
  ReferenceDriver(Simulator& sim, RequestExecutor& exec, SessionFsmEngine::Config cfg)
      : sim_(sim), exec_(exec), cfg_(cfg) {}

  void start_population(const FsmScriptModel& model, std::size_t count, sim::SimTime end_at,
                        std::uint64_t seed) {
    for (std::size_t i = 0; i < count; ++i) {
      sim_.spawn(run_session(model, SmallRng::stream_seed(seed, i), end_at));
    }
  }

  std::uint64_t issued_ = 0;

 private:
  [[nodiscard]] Task<void> run_session(const FsmScriptModel& model, std::uint64_t rng_seed,
                                       sim::SimTime end_at) {
    SmallRng rng{rng_seed};
    // Same stagger rule: the session's own first draw, uniform over one
    // think interval.
    co_await sim_.wait(
        Duration::seconds(rng.uniform(0.0, cfg_.think_time.as_seconds())));
    FsmScratch scratch;
    std::uint32_t step = 0;
    while (true) {
      if (sim_.now() >= end_at) co_return;
      std::optional<PageRequest> req = model.next(step, scratch, rng);
      if (!req) {
        if (step == 0) co_return;  // sterile
        step = 0;
        scratch = FsmScratch{};
        const sim::SimTime next = sim_.now() + cfg_.between_sessions;
        if (next >= end_at) co_return;
        co_await sim_.wait(next - sim_.now());
        continue;
      }
      ++step;
      ++issued_;
      const sim::SimTime issued_at = sim_.now();
      (void)co_await exec_.execute(net::NodeId{0}, *req);
      sim::SimTime next = issued_at + cfg_.think_time;  // §3.3 soft delay
      if (next < sim_.now()) next = sim_.now();
      if (next >= end_at) co_return;
      co_await sim_.wait(next - sim_.now());
    }
  }

  Simulator& sim_;
  RequestExecutor& exec_;
  SessionFsmEngine::Config cfg_;
};

/// A script model that actually exercises rng and scratch, so equivalence
/// covers the full record round-trip, not just step counting.
class RandomWalkModel final : public FsmScriptModel {
 public:
  std::optional<PageRequest> next(std::uint32_t step, FsmScratch& scratch,
                                  SmallRng& rng) const override {
    if (step == 0) scratch.w0 = static_cast<std::uint64_t>(rng.uniform_int(0, 9));
    const auto len = 2 + scratch.w0 % 4;  // session length 2..5, drawn at step 0
    if (step >= len) return std::nullopt;
    PageRequest req;
    req.page = "W" + std::to_string(rng.uniform_int(0, 2));
    req.pattern = "Walk";
    req.component = "Web";
    req.method = "page";
    return req;
  }
  const char* pattern() const override { return "Walk"; }
};

TEST(SessionFsmTest, MatchesACoroutineReferenceDriver) {
  constexpr std::size_t kSessions = 40;
  constexpr std::uint64_t kSeed = 99;
  SessionFsmEngine::Config cfg;
  cfg.think_time = sec(4);
  cfg.between_sessions = sec(2);
  const sim::SimTime end = sim::SimTime::origin() + sec(120);
  const RandomWalkModel model;

  FsmWorld ref_world;
  FakeExecutor ref_exec{ref_world.sim, ms(30)};
  ReferenceDriver ref{ref_world.sim, ref_exec, cfg};
  ref.start_population(model, kSessions, end, kSeed);
  ref_world.sim.run_until();

  FsmWorld fsm_world;
  FakeExecutor fsm_exec{fsm_world.sim, ms(30)};
  SessionFsmEngine engine{fsm_world.sim, fsm_exec, fsm_world.collector, cfg};
  const std::uint8_t k = engine.add_kind(std::make_shared<RandomWalkModel>(), net::NodeId{0},
                                         stats::ClientGroup::kLocal);
  engine.start_population(k, kSessions, end, kSeed);
  fsm_world.sim.run_until();

  EXPECT_EQ(engine.requests_issued(), ref.issued_);
  EXPECT_EQ(fsm_exec.requests_, ref_exec.requests_);
  EXPECT_EQ(fsm_exec.pages_, ref_exec.pages_) << "per-page counts must match exactly";
  EXPECT_EQ(fsm_world.sim.now().count_micros(), ref_world.sim.now().count_micros())
      << "the last event must land at the same instant";
}

TEST(SessionFsmTest, HundredThousandSessionsStayUnderTheByteBudget) {
  FsmWorld w;
  FakeExecutor exec{w.sim, ms(1)};
  SessionFsmEngine::Config cfg;
  cfg.think_time = sec(7);
  SessionFsmEngine engine{w.sim, exec, w.collector, cfg};
  const std::uint8_t k = engine.add_kind(std::make_shared<FixedModel>("Browser"),
                                         net::NodeId{0}, stats::ClientGroup::kLocal);
  constexpr std::size_t kSessions = 100000;
  // A short window: the staggered fleet only partially fires, which keeps
  // the test fast while the arena holds the full population.
  engine.start_population(k, kSessions, sim::SimTime::origin() + sec(1), 77);
  EXPECT_EQ(engine.live_sessions(), kSessions);
  const double per_session =
      static_cast<double>(engine.arena_bytes()) / static_cast<double>(kSessions);
  EXPECT_LE(per_session, 96.0) << "suspended sessions must stay tens of bytes";
  w.sim.run_until();
  EXPECT_GT(engine.requests_issued(), kSessions / 10);
  EXPECT_EQ(engine.live_sessions(), 0u);
}

TEST(SessionFsmTest, ConfigValidationRejectsNonPositiveDurations) {
  FsmWorld w;
  FakeExecutor exec{w.sim, ms(1)};
  SessionFsmEngine::Config bad;
  bad.calendar_quantum = Duration::zero();
  EXPECT_THROW((SessionFsmEngine{w.sim, exec, w.collector, bad}), std::invalid_argument);
  SessionFsmEngine::Config bad2;
  bad2.think_time = Duration::zero();
  EXPECT_THROW((SessionFsmEngine{w.sim, exec, w.collector, bad2}), std::invalid_argument);

  SessionFsmEngine engine{w.sim, exec, w.collector};
  EXPECT_THROW(engine.start_population(3, 1, sim::SimTime::origin() + sec(1), 0),
               std::invalid_argument);  // unknown kind
}

}  // namespace
}  // namespace mutsvc::workload

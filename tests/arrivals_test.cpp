// Arrival-process layer for the million-session FSM load engine (ISSUE 9):
// the compact SmallRng, piecewise rate envelopes (flash crowd, diurnal),
// nonhomogeneous Poisson sampling, and Zipf item popularity. Statistical
// checks run under fixed seeds with generous tolerances, so they are exact
// regression pins, not flaky moment estimates.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "workload/arrivals.hpp"

namespace mutsvc::workload {
namespace {

using sim::Duration;
using sim::sec;

// --- SmallRng ----------------------------------------------------------------

TEST(SmallRngTest, StreamsArePureFunctionsOfSeedAndIndex) {
  // Per-session streams must not depend on creation order: the seed for
  // stream k is a pure function of (seed, k).
  EXPECT_EQ(SmallRng::stream_seed(42, 7), SmallRng::stream_seed(42, 7));
  EXPECT_NE(SmallRng::stream_seed(42, 7), SmallRng::stream_seed(42, 8));
  EXPECT_NE(SmallRng::stream_seed(42, 7), SmallRng::stream_seed(43, 7));
  EXPECT_EQ(SmallRng::named_seed(42, "fsm-local-browser"),
            SmallRng::named_seed(42, "fsm-local-browser"));
  EXPECT_NE(SmallRng::named_seed(42, "fsm-local-browser"),
            SmallRng::named_seed(42, "fsm-local-writer"));

  SmallRng a{SmallRng::stream_seed(42, 7)};
  SmallRng b{SmallRng::stream_seed(42, 7)};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(SmallRngTest, StateRoundTripsThroughAWord) {
  // The engine suspends a session's rng as one 64-bit word; resuming from
  // state() must continue the exact sequence.
  SmallRng reference{SmallRng::stream_seed(9, 3)};
  SmallRng live{SmallRng::stream_seed(9, 3)};
  for (int i = 0; i < 10; ++i) (void)reference.next_u64();
  for (int i = 0; i < 10; ++i) (void)live.next_u64();
  SmallRng resumed{live.state()};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(resumed.next_u64(), reference.next_u64());
}

TEST(SmallRngTest, UniformMomentsAndRange) {
  SmallRng rng{SmallRng::stream_seed(1, 0)};
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(SmallRngTest, ExponentialHasTheRequestedMean) {
  SmallRng rng{SmallRng::stream_seed(2, 0)};
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.25);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(SmallRngTest, WeightedIndexTracksWeights) {
  // The Table 2 browser weights, same contract as RngStream::weighted_index.
  const std::array<double, 5> weights{5, 15, 30, 45, 5};
  SmallRng rng{SmallRng::stream_seed(3, 0)};
  std::array<int, 5> hits{};
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits[rng.weighted_index(weights)]++;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(hits[i]) / n, weights[i] / 100.0, 0.02) << "index " << i;
  }
}

TEST(SmallRngTest, UniformIntCoversInclusiveRange) {
  SmallRng rng{SmallRng::stream_seed(4, 0)};
  std::array<int, 5> hits{};
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.uniform_int(10, 14);
    ASSERT_GE(v, 10);
    ASSERT_LE(v, 14);
    hits[static_cast<std::size_t>(v - 10)]++;
  }
  for (int h : hits) EXPECT_GT(h, 0);
}

// --- RateEnvelope ------------------------------------------------------------

TEST(RateEnvelopeTest, ConstantRateEverywhere) {
  const RateEnvelope env = RateEnvelope::constant(12.5);
  EXPECT_DOUBLE_EQ(env.rate_at(Duration::zero()), 12.5);
  EXPECT_DOUBLE_EQ(env.rate_at(sec(1e6)), 12.5);
  EXPECT_DOUBLE_EQ(env.max_rate(), 12.5);
  EXPECT_DOUBLE_EQ(env.expected_count(sec(10), sec(30)), 12.5 * 20.0);
  EXPECT_FALSE(env.next_boundary_after(Duration::zero()).has_value());
  EXPECT_FALSE(env.periodic());
}

TEST(RateEnvelopeTest, StepSequenceIntegratesPiecewise) {
  const RateEnvelope env = RateEnvelope::steps(
      {{Duration::zero(), 2.0}, {sec(60), 10.0}, {sec(120), 4.0}});
  EXPECT_DOUBLE_EQ(env.rate_at(sec(30)), 2.0);
  EXPECT_DOUBLE_EQ(env.rate_at(sec(60)), 10.0);   // boundaries belong to the new rate
  EXPECT_DOUBLE_EQ(env.rate_at(sec(119.9)), 10.0);
  EXPECT_DOUBLE_EQ(env.rate_at(sec(1e5)), 4.0);   // aperiodic: last rate holds forever
  EXPECT_DOUBLE_EQ(env.max_rate(), 10.0);
  EXPECT_DOUBLE_EQ(env.expected_count(Duration::zero(), sec(180)),
                   2.0 * 60 + 10.0 * 60 + 4.0 * 60);
  EXPECT_DOUBLE_EQ(env.expected_count(sec(30), sec(90)), 2.0 * 30 + 10.0 * 30);
  ASSERT_TRUE(env.next_boundary_after(Duration::zero()).has_value());
  EXPECT_EQ(*env.next_boundary_after(Duration::zero()), sec(60));
  EXPECT_EQ(*env.next_boundary_after(sec(60)), sec(120));
  EXPECT_FALSE(env.next_boundary_after(sec(120)).has_value());
}

TEST(RateEnvelopeTest, RejectsMalformedSteps) {
  EXPECT_THROW(RateEnvelope::steps({{sec(5), 1.0}}), std::invalid_argument);  // not at 0
  EXPECT_THROW(RateEnvelope::steps({{Duration::zero(), 1.0}, {Duration::zero(), 2.0}}),
               std::invalid_argument);  // not strictly increasing
  EXPECT_THROW(RateEnvelope::steps({{Duration::zero(), -1.0}}), std::invalid_argument);
}

TEST(RateEnvelopeTest, FlashCrowdSpikesAndRecovers) {
  // The bench_flash_crowd shape: base -> base*mult during the spike -> base.
  const RateEnvelope env = RateEnvelope::flash_crowd(5.0, 10.0, sec(60), sec(30));
  EXPECT_DOUBLE_EQ(env.rate_at(sec(59.9)), 5.0);
  EXPECT_DOUBLE_EQ(env.rate_at(sec(60)), 50.0);
  EXPECT_DOUBLE_EQ(env.rate_at(sec(89.9)), 50.0);
  EXPECT_DOUBLE_EQ(env.rate_at(sec(90)), 5.0);
  EXPECT_DOUBLE_EQ(env.expected_count(Duration::zero(), sec(120)),
                   5.0 * 90 + 50.0 * 30);
}

TEST(RateEnvelopeTest, DiurnalCurveFoldsPeriodically) {
  const Duration period = sec(240);
  const RateEnvelope env = RateEnvelope::diurnal(2.0, 10.0, period, 24);
  EXPECT_TRUE(env.periodic());
  // Trough at offset 0, peak half a period later.
  EXPECT_LT(env.rate_at(Duration::zero()), env.rate_at(sec(120)));
  EXPECT_NEAR(env.rate_at(Duration::zero()), 2.0, 0.5);
  EXPECT_NEAR(env.rate_at(sec(120)), 10.0, 0.5);
  EXPECT_LE(env.max_rate(), 10.0 + 1e-9);
  // Folding: any offset looks exactly like offset + k*period.
  for (double t : {0.0, 37.0, 119.5, 233.0}) {
    EXPECT_DOUBLE_EQ(env.rate_at(sec(t)), env.rate_at(sec(t) + period)) << t;
    EXPECT_DOUBLE_EQ(env.rate_at(sec(t)), env.rate_at(sec(t) + period * 3.0)) << t;
  }
  // A full cycle integrates to the sinusoid's mean; multiple cycles scale.
  const double one_cycle = env.expected_count(Duration::zero(), period);
  EXPECT_NEAR(one_cycle, 6.0 * 240.0, 6.0 * 240.0 * 0.02);
  EXPECT_NEAR(env.expected_count(Duration::zero(), period * 2.5), one_cycle * 2.5,
              one_cycle * 0.02);
  // Windows agree whichever cycle they fall in.
  EXPECT_NEAR(env.expected_count(sec(30), sec(90)),
              env.expected_count(sec(30) + period, sec(90) + period), 1e-9);
}

TEST(RateEnvelopeTest, ScaledMultipliesEveryRate) {
  const RateEnvelope env = RateEnvelope::flash_crowd(4.0, 5.0, sec(10), sec(5));
  const RateEnvelope half = env.scaled(0.5);
  for (double t : {0.0, 9.9, 10.0, 14.9, 15.0, 100.0}) {
    EXPECT_DOUBLE_EQ(half.rate_at(sec(t)), env.rate_at(sec(t)) * 0.5) << t;
  }
  EXPECT_DOUBLE_EQ(half.expected_count(Duration::zero(), sec(50)),
                   env.expected_count(Duration::zero(), sec(50)) * 0.5);
}

// --- PoissonProcess ----------------------------------------------------------

std::vector<Duration> arrivals_until(const PoissonProcess& p, SmallRng& rng, Duration horizon) {
  std::vector<Duration> out;
  Duration t = Duration::zero();
  while (true) {
    const auto next = p.next_after(t, rng);
    if (!next || *next >= horizon) break;
    t = *next;
    out.push_back(t);
  }
  return out;
}

TEST(PoissonProcessTest, ConstantRateMatchesExpectedCount) {
  const PoissonProcess p{RateEnvelope::constant(50.0)};
  SmallRng rng{SmallRng::stream_seed(10, 0)};
  const auto ts = arrivals_until(p, rng, sec(200));
  // 10k expected; 3 sigma ~ 300.
  EXPECT_NEAR(static_cast<double>(ts.size()), 10000.0, 300.0);
  for (std::size_t i = 1; i < ts.size(); ++i) ASSERT_GT(ts[i], ts[i - 1]);
}

TEST(PoissonProcessTest, CountsTrackAStepEnvelope) {
  // A 10x step up and back down: each segment's count matches its own rate.
  const PoissonProcess p{RateEnvelope::steps(
      {{Duration::zero(), 2.0}, {sec(100), 20.0}, {sec(200), 2.0}})};
  SmallRng rng{SmallRng::stream_seed(11, 0)};
  const auto ts = arrivals_until(p, rng, sec(300));
  std::array<int, 3> seg{};
  for (Duration t : ts) seg[static_cast<std::size_t>(t.count_micros() / sec(100).count_micros())]++;
  EXPECT_NEAR(seg[0], 200.0, 60.0);
  EXPECT_NEAR(seg[1], 2000.0, 180.0);
  EXPECT_NEAR(seg[2], 200.0, 60.0);
}

TEST(PoissonProcessTest, ZeroRateSegmentsProduceNoArrivals) {
  const PoissonProcess p{RateEnvelope::steps({{Duration::zero(), 0.0}, {sec(50), 10.0}})};
  SmallRng rng{SmallRng::stream_seed(12, 0)};
  const auto ts = arrivals_until(p, rng, sec(100));
  ASSERT_FALSE(ts.empty());
  EXPECT_GE(ts.front(), sec(50));
  EXPECT_NEAR(static_cast<double>(ts.size()), 500.0, 90.0);
}

TEST(PoissonProcessTest, EndsWhenTheRateDropsToZeroForever) {
  const PoissonProcess p{RateEnvelope::steps({{Duration::zero(), 10.0}, {sec(50), 0.0}})};
  SmallRng rng{SmallRng::stream_seed(13, 0)};
  Duration t = Duration::zero();
  int count = 0;
  while (const auto next = p.next_after(t, rng)) {
    t = *next;
    ++count;
    ASSERT_LT(t, sec(50));
  }
  EXPECT_NEAR(count, 500.0, 90.0);  // then nullopt: the process ended
}

TEST(PoissonProcessTest, DeterministicUnderAFixedSeed) {
  const PoissonProcess p{RateEnvelope::flash_crowd(5.0, 8.0, sec(30), sec(10))};
  SmallRng a{SmallRng::stream_seed(14, 0)};
  SmallRng b{SmallRng::stream_seed(14, 0)};
  EXPECT_EQ(arrivals_until(p, a, sec(100)), arrivals_until(p, b, sec(100)));
}

// --- ZipfSampler -------------------------------------------------------------

TEST(ZipfSamplerTest, FrequenciesConvergeToTheClosedForm) {
  const ZipfSampler zipf{100, 1.0};
  SmallRng rng{SmallRng::stream_seed(20, 0)};
  std::vector<int> hits(zipf.size(), 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) hits[zipf.sample(rng)]++;
  double total_freq = 0.0;
  for (std::size_t k = 0; k < zipf.size(); ++k) total_freq += zipf.expected_freq(k);
  EXPECT_NEAR(total_freq, 1.0, 1e-9);
  // The head carries the skew: check the top ranks tightly, the rest loosely.
  for (std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{9}}) {
    const double freq = static_cast<double>(hits[k]) / n;
    EXPECT_NEAR(freq, zipf.expected_freq(k), zipf.expected_freq(k) * 0.1 + 0.001) << "rank " << k;
  }
  EXPECT_GT(hits[0], hits[50]);
}

TEST(ZipfSamplerTest, ZeroExponentIsUniform) {
  const ZipfSampler zipf{8, 0.0};
  for (std::size_t k = 0; k < zipf.size(); ++k) {
    EXPECT_NEAR(zipf.expected_freq(k), 1.0 / 8.0, 1e-12);
  }
  SmallRng rng{SmallRng::stream_seed(21, 0)};
  std::vector<int> hits(zipf.size(), 0);
  for (int i = 0; i < 16000; ++i) hits[zipf.sample(rng)]++;
  for (int h : hits) EXPECT_NEAR(h, 2000, 200);
}

TEST(ZipfSamplerTest, HigherExponentConcentratesTheHead) {
  const ZipfSampler mild{360, 0.8};
  const ZipfSampler sharp{360, 2.0};
  EXPECT_LT(mild.expected_freq(0), sharp.expected_freq(0));
  SmallRng rng{SmallRng::stream_seed(22, 0)};
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) head += sharp.sample(rng) == 0 ? 1 : 0;
  // s=2 over 360 items puts ~61% of draws on rank 0.
  EXPECT_GT(static_cast<double>(head) / n, 0.5);
}

}  // namespace
}  // namespace mutsvc::workload

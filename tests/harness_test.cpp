// Harness-layer coverage: report printers, WAN-call invariants per page
// (the §4.2 "no more than one RMI call" rule, measured), and experiment
// spec knobs.
#include <gtest/gtest.h>

#include <sstream>

#include "apps/petstore/petstore.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"

namespace mutsvc::core {
namespace {

using stats::ClientGroup;

// --- report printers -----------------------------------------------------------

TEST(ReportTest, PaperTablePrintsAllPagesAndConfigs) {
  apps::petstore::PetStoreApp app;
  apps::AppDriver driver = app.driver();

  stats::ResponseTimeCollector collector;
  collector.record(sim::SimTime::origin(), "Item", "Browser", ClientGroup::kLocal, sim::ms(55));
  collector.record(sim::SimTime::origin(), "Item", "Browser", ClientGroup::kRemote, sim::ms(57));

  std::ostringstream os;
  print_paper_table(os, driver, {{ConfigLevel::kStatefulComponentCaching, &collector}});
  const std::string out = os.str();
  EXPECT_NE(out.find("Stateful component caching"), std::string::npos);
  EXPECT_NE(out.find("Verify Signin"), std::string::npos);  // every column present
  EXPECT_NE(out.find("55"), std::string::npos);
  EXPECT_NE(out.find("57"), std::string::npos);
  // Pages without samples render as "-".
  EXPECT_NE(out.find("-"), std::string::npos);
}

TEST(ReportTest, SessionAveragesUseAppPatternNames) {
  apps::petstore::PetStoreApp app;
  apps::AppDriver driver = app.driver();
  stats::ResponseTimeCollector collector;
  collector.record(sim::SimTime::origin(), "Main", "Buyer", ClientGroup::kRemote, sim::ms(80));
  std::ostringstream os;
  print_session_averages(os, driver, {{ConfigLevel::kCentralized, &collector}});
  EXPECT_NE(os.str().find("Remote Buyer"), std::string::npos);
  EXPECT_NE(os.str().find("80"), std::string::npos);
}

// --- measured per-page WAN-call invariants (§4.2) --------------------------------

struct WanProbe {
  apps::petstore::PetStoreApp app;
  std::unique_ptr<Experiment> exp;

  explicit WanProbe(ConfigLevel level) {
    ExperimentSpec spec;
    spec.level = level;
    spec.duration = sim::sec(1);  // we drive requests by hand
    spec.warmup = sim::Duration::zero();
    // Hand-driven requests run on the harness thread in the main island;
    // a remote page then crosses domains at LAN latency, which the windowed
    // executor rejects as a lookahead violation. Pin the sequential loop so
    // the probes pass under a fleet-wide MUTSVC_PAR_DOMAINS (CI par rows).
    spec.parallel_domains = 0;
    HarnessCalibration cal = petstore_calibration();
    cal.rmi.extra_rtt_prob = 0.0;  // deterministic message counts
    exp = std::make_unique<Experiment>(app.driver(), spec, cal);
  }

  /// WAN messages used by one page request from the remote client (caches
  /// and stubs pre-warmed by an identical request).
  std::uint64_t wan_messages(const char* method, std::vector<db::Value> args) {
    workload::PageRequest req;
    req.page = method;
    req.pattern = "probe";
    req.component = "PetStoreWeb";
    req.method = method;
    req.args = std::move(args);
    const net::NodeId client = exp->nodes().remote_clients[0];
    for (int warm = 0; warm < 2; ++warm) {
      exp->simulator().spawn([](Experiment& e, net::NodeId c,
                                const workload::PageRequest& r) -> sim::Task<void> {
        comp::TraceSink sink;
        co_await e.execute_traced(c, r, sink);
      }(*exp, client, req));
      exp->simulator().run_until();
      if (warm == 0) exp->network().reset_counters();
    }
    return exp->network().wan_messages_sent();
  }
};

TEST(WanInvariantTest, CentralizedPagePaysHttpMessages) {
  WanProbe probe{ConfigLevel::kCentralized};
  // Warm run keeps the connection-less HTTP cost: SYN, SYN-ACK, request,
  // response = 4 WAN messages.
  EXPECT_EQ(probe.wan_messages("main", {}), 4u);
}

TEST(WanInvariantTest, FacadePageCostsAtMostOneRmi) {
  // §4.2: "we rewrote the application code so that every page included in
  // the experiment incurs no more than one RMI call" — 2 WAN messages.
  WanProbe probe{ConfigLevel::kRemoteFacade};
  EXPECT_EQ(probe.wan_messages("category", {db::Value{std::int64_t{1}}}), 2u);
  EXPECT_EQ(probe.wan_messages("item", {db::Value{std::int64_t{1001001}}}), 2u);
  EXPECT_EQ(probe.wan_messages("main", {}), 0u);  // edge-local
}

TEST(WanInvariantTest, VerifySigninIsTheDocumentedException) {
  // §4.2: "The only exception is the Verify Signin page, which makes two
  // RMI calls" — 4 WAN messages.
  WanProbe probe{ConfigLevel::kRemoteFacade};
  EXPECT_EQ(probe.wan_messages("verifysignin", {db::Value{std::int64_t{1}}}), 4u);
}

TEST(WanInvariantTest, CachedPagesUseZeroWanMessages) {
  WanProbe probe{ConfigLevel::kQueryCaching};
  EXPECT_EQ(probe.wan_messages("item", {db::Value{std::int64_t{1001001}}}), 0u);
  EXPECT_EQ(probe.wan_messages("category", {db::Value{std::int64_t{1}}}), 0u);
  // The keyword search is never cached: still one RMI.
  EXPECT_EQ(probe.wan_messages("search", {db::Value{std::string{"fish"}}}), 2u);
}

// --- spec knobs ---------------------------------------------------------------------

TEST(ExperimentSpecTest, OfferedRateKnobScalesSampleCount) {
  apps::petstore::PetStoreApp app;
  auto run_with_rate = [&](double rate) {
    ExperimentSpec spec;
    spec.level = ConfigLevel::kRemoteFacade;
    spec.duration = sim::sec(300);
    spec.warmup = sim::Duration::zero();
    spec.total_request_rate = rate;
    Experiment exp{app.driver(), spec, petstore_calibration()};
    exp.run();
    return exp.results().total_samples();
  };
  const auto low = run_with_rate(6.0);
  const auto high = run_with_rate(30.0);
  EXPECT_NEAR(static_cast<double>(high) / static_cast<double>(low), 5.0, 1.0);
}

TEST(ExperimentSpecTest, BrowserFractionControlsPatternMix) {
  apps::petstore::PetStoreApp app;
  ExperimentSpec spec;
  spec.level = ConfigLevel::kRemoteFacade;
  spec.duration = sim::sec(400);
  spec.warmup = sim::Duration::zero();
  spec.browser_fraction = 0.5;
  Experiment exp{app.driver(), spec, petstore_calibration()};
  exp.run();
  const stats::Summary* browser = exp.results().pattern_summary("Browser", ClientGroup::kLocal);
  const stats::Summary* buyer = exp.results().pattern_summary("Buyer", ClientGroup::kLocal);
  ASSERT_NE(browser, nullptr);
  ASSERT_NE(buyer, nullptr);
  const double ratio = static_cast<double>(browser->count()) /
                       static_cast<double>(browser->count() + buyer->count());
  EXPECT_NEAR(ratio, 0.5, 0.1);
}

}  // namespace
}  // namespace mutsvc::core

#include <gtest/gtest.h>

#include "component/deployment.hpp"
#include "component/kind.hpp"
#include "component/model.hpp"
#include "component/runtime.hpp"
#include "net/network.hpp"
#include "net/rmi.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace mutsvc::comp {
namespace {

using db::Query;
using db::Row;
using db::Value;
using net::NodeId;
using sim::Duration;
using sim::ms;
using sim::SimTime;
using sim::Simulator;
using sim::Task;

net::RmiConfig quiet_rmi() {
  net::RmiConfig cfg;
  cfg.extra_rtt_prob = 0.0;
  cfg.dgc_traffic_factor = 1.0;
  return cfg;
}

RuntimeConfig zero_cost_runtime() {
  RuntimeConfig cfg;
  cfg.local_dispatch = Duration::zero();
  cfg.entity_access = Duration::zero();
  cfg.cache_access = Duration::zero();
  cfg.apply_update = Duration::zero();
  cfg.mdb_dispatch = Duration::zero();
  cfg.jms_accept = Duration::zero();
  return cfg;
}

db::DbCostModel zero_db_cost() {
  db::DbCostModel m;
  m.pk_lookup = m.finder_base = m.aggregate_base = m.keyword_base = Duration::zero();
  m.finder_per_row = m.aggregate_per_row = m.keyword_per_row = Duration::zero();
  m.update = m.insert = m.del = Duration::zero();
  return m;
}

/// Main server (co-located with the DB, as in the paper's RUBiS testbed)
/// plus two edge servers across a 100 ms WAN.
struct World {
  Simulator sim{7};
  net::Topology topo{sim};
  NodeId main, edge1, edge2;
  net::Network net{sim, topo, Duration::zero()};
  net::RmiTransport rmi{net, quiet_rmi()};
  std::unique_ptr<db::Database> db;
  Application app{"testapp"};

  World() {
    main = topo.add_node("main", net::NodeRole::kAppServer);
    edge1 = topo.add_node("edge1", net::NodeRole::kAppServer);
    edge2 = topo.add_node("edge2", net::NodeRole::kAppServer);
    topo.add_link(main, edge1, ms(100), 100e6);
    topo.add_link(main, edge2, ms(100), 100e6);
    db = std::make_unique<db::Database>(topo, main, zero_db_cost());
    auto& items = db->create_table(
        "item", {{"id", db::ColumnType::kInt},
                 {"product_id", db::ColumnType::kInt},
                 {"price", db::ColumnType::kReal}});
    for (std::int64_t i = 0; i < 20; ++i) {
      items.insert(Row{i, i % 4, 10.0 + static_cast<double>(i)});
    }
    items.create_index("product_id");

    auto& facade = app.define("Facade", ComponentKind::kStatelessSessionBean);
    facade.method({.name = "getItem",
                   .cpu = Duration::zero(),
                   .body = [](CallContext& ctx) -> Task<void> {
                     auto row = co_await ctx.read_entity("Item", ctx.arg_int(0));
                     if (row) ctx.result.push_back(*row);
                   }});
    facade.method({.name = "list",
                   .cpu = Duration::zero(),
                   .body = [](CallContext& ctx) -> Task<void> {
                     auto res = co_await ctx.cached_query(
                         Query::finder("item", "product_id", ctx.arg(0)));
                     ctx.result = std::move(res.rows);
                   }});
    facade.method({.name = "buy",
                   .cpu = Duration::zero(),
                   .body = [](CallContext& ctx) -> Task<void> {
                     std::vector<Query> affected{
                         Query::finder("item", "product_id", std::int64_t{0})};
                     co_await ctx.write_entity("Item", ctx.arg_int(0), "price", 99.0,
                                               std::move(affected));
                   }});

    auto& servlet = app.define("Servlet", ComponentKind::kServlet);
    servlet.method({.name = "page",
                    .cpu = Duration::zero(),
                    .body = [](CallContext& ctx) -> Task<void> {
                      auto res = co_await ctx.call("Facade", "getItem", ctx.arg(0));
                      ctx.result = std::move(res.rows);
                    }});

    auto& local_bean = app.define("LocalHelper", ComponentKind::kJavaBean);
    local_bean.local_interface_only();
    local_bean.method({.name = "help", .cpu = Duration::zero()});
  }

  DeploymentPlan base_plan() {
    DeploymentPlan plan;
    plan.set_main_server(main);
    plan.add_edge_server(edge1);
    plan.add_edge_server(edge2);
    plan.place("Facade", main);
    plan.place("Servlet", main);
    plan.place("LocalHelper", main);
    return plan;
  }

  Runtime& make_runtime(DeploymentPlan plan, RuntimeConfig cfg = zero_cost_runtime()) {
    rt_holder = std::make_unique<Runtime>(sim, topo, net, rmi, *db, app, std::move(plan), cfg);
    rt_holder->bind_entity("Item", "item");
    return *rt_holder;
  }

  std::unique_ptr<Runtime> rt_holder;

  /// Runs `t` to completion (draining any background activity it spawned)
  /// and returns the time *the task itself* took — not the drain time.
  Duration timed(Task<void> t) {
    SimTime start = sim.now();
    SimTime done = start;
    sim.spawn([](Task<void> t, Simulator& s, SimTime& done) -> Task<void> {
      co_await std::move(t);
      done = s.now();
    }(std::move(t), sim, done));
    sim.run_until();
    return done - start;
  }
};

// --- deployment plan ---------------------------------------------------------

TEST(DeploymentPlanTest, PlacementAndResolution) {
  World w;
  DeploymentPlan plan = w.base_plan();
  plan.place("Servlet", w.edge1);
  EXPECT_EQ(plan.primary("Servlet"), w.main);
  EXPECT_TRUE(plan.is_deployed_at("Servlet", w.edge1));
  EXPECT_FALSE(plan.is_deployed_at("Servlet", w.edge2));
  EXPECT_EQ(plan.resolve("Servlet", w.edge1), w.edge1);  // prefer co-located
  EXPECT_EQ(plan.resolve("Servlet", w.edge2), w.main);   // fall back to primary
  EXPECT_THROW((void)plan.nodes_of("Ghost"), std::invalid_argument);
}

TEST(DeploymentPlanTest, DuplicatePlacementIgnored) {
  World w;
  DeploymentPlan plan = w.base_plan();
  plan.place("Facade", w.main);
  EXPECT_EQ(plan.nodes_of("Facade").size(), 1u);
}

TEST(DeploymentPlanTest, UpdateModeFollowsFeatures) {
  DeploymentPlan plan;
  EXPECT_EQ(plan.update_mode(), UpdateMode::kNone);
  plan.enable(Feature::kStatefulComponentCaching);
  EXPECT_EQ(plan.update_mode(), UpdateMode::kBlockingPush);
  plan.enable(Feature::kAsyncUpdates);
  EXPECT_EQ(plan.update_mode(), UpdateMode::kAsyncPush);
  plan.disable(Feature::kAsyncUpdates);
  EXPECT_EQ(plan.update_mode(), UpdateMode::kBlockingPush);
}

TEST(DeploymentPlanTest, DescribeMentionsFeaturesAndPlacement) {
  World w;
  DeploymentPlan plan = w.base_plan();
  plan.enable(Feature::kRemoteFacade);
  std::string desc = plan.describe();
  EXPECT_NE(desc.find("remote-facade"), std::string::npos);
  EXPECT_NE(desc.find("Facade"), std::string::npos);
}

// --- invocation ---------------------------------------------------------------

TEST(RuntimeTest, LocalInvocationReturnsData) {
  World w;
  Runtime& rt = w.make_runtime(w.base_plan());
  CallResult out;
  Duration d = w.timed([](Runtime& rt, World& w, CallResult& out) -> Task<void> {
    out = co_await rt.invoke(w.main, "Servlet", "page", std::int64_t{3});
  }(rt, w, out));
  ASSERT_EQ(out.rows.size(), 1u);
  EXPECT_EQ(db::as_int(out.rows[0][0]), 3);
  EXPECT_LT(d.as_millis(), 1.0);  // everything local, zero-cost config
}

TEST(RuntimeTest, RemoteInvocationPaysWanRoundTrip) {
  World w;
  DeploymentPlan plan = w.base_plan();
  plan.enable(Feature::kStubCaching);
  Runtime& rt = w.make_runtime(std::move(plan));
  CallResult out;
  // First call from edge1: stub exchange (1 RTT) + call (1 RTT).
  Duration d1 = w.timed([](Runtime& rt, World& w, CallResult& out) -> Task<void> {
    out = co_await rt.invoke(w.edge1, "Facade", "getItem", std::int64_t{1});
  }(rt, w, out));
  EXPECT_NEAR(d1.as_millis(), 400.0, 2.0);
  // Second call: stub cached -> one round trip.
  Duration d2 = w.timed([](Runtime& rt, World& w, CallResult& out) -> Task<void> {
    out = co_await rt.invoke(w.edge1, "Facade", "getItem", std::int64_t{1});
  }(rt, w, out));
  EXPECT_NEAR(d2.as_millis(), 200.0, 2.0);
  EXPECT_EQ(rt.rmi().stub_exchanges(), 1u);
}

TEST(RuntimeTest, WithoutStubCachingEveryCallPaysLookup) {
  World w;
  Runtime& rt = w.make_runtime(w.base_plan());  // kStubCaching off
  for (int i = 0; i < 3; ++i) {
    Duration d = w.timed([](Runtime& rt, World& w) -> Task<void> {
      (void)co_await rt.invoke(w.edge1, "Facade", "getItem", std::int64_t{1});
    }(rt, w));
    EXPECT_NEAR(d.as_millis(), 400.0, 2.0);
  }
  EXPECT_EQ(rt.rmi().stub_exchanges(), 3u);
}

TEST(RuntimeTest, CoLocatedReplicaPreferred) {
  World w;
  DeploymentPlan plan = w.base_plan();
  plan.place("Servlet", w.edge1);
  plan.enable(Feature::kStubCaching);
  Runtime& rt = w.make_runtime(std::move(plan));
  // Servlet at edge1 runs locally; its Facade call crosses the WAN.
  std::uint64_t before = w.net.wan_messages_sent();
  (void)w.timed([](Runtime& rt, World& w) -> Task<void> {
    (void)co_await rt.invoke(w.edge1, "Servlet", "page", std::int64_t{1});
  }(rt, w));
  // stub exchange (2 one-way messages) + call (2) = 4 WAN messages.
  EXPECT_EQ(w.net.wan_messages_sent() - before, 4u);
}

TEST(RuntimeTest, LocalOnlyComponentRejectsRemoteCall) {
  World w;
  Runtime& rt = w.make_runtime(w.base_plan());
  bool threw = false;
  w.sim.spawn([](Runtime& rt, World& w, bool& threw) -> Task<void> {
    try {
      (void)co_await rt.invoke(w.edge1, "LocalHelper", "help", {});
    } catch (const std::logic_error&) {
      threw = true;
    }
  }(rt, w, threw));
  w.sim.run_until();
  EXPECT_TRUE(threw);
}

TEST(RuntimeTest, MethodCpuAndLatencyCharged) {
  World w;
  auto& slow = w.app.define("Slow", ComponentKind::kStatelessSessionBean);
  slow.method({.name = "work", .cpu = ms(5), .latency = ms(7)});
  DeploymentPlan plan = w.base_plan();
  plan.place("Slow", w.main);
  Runtime& rt = w.make_runtime(std::move(plan));
  Duration d = w.timed([](Runtime& rt, World& w) -> Task<void> {
    (void)co_await rt.invoke(w.main, "Slow", "work", {});
  }(rt, w));
  EXPECT_NEAR(d.as_millis(), 12.0, 0.1);
}

TEST(RuntimeTest, UnknownComponentOrMethodThrows) {
  World w;
  (void)w.make_runtime(w.base_plan());
  EXPECT_THROW((void)w.app.component("Nope"), std::invalid_argument);
  EXPECT_THROW((void)w.app.component("Facade").find_method("nope"), std::invalid_argument);
}

// --- read-only entity caching (§4.3) ------------------------------------------

TEST(RuntimeTest, RoReplicaMissPullsThenHitsLocally) {
  World w;
  DeploymentPlan plan = w.base_plan();
  plan.enable(Feature::kStatefulComponentCaching);
  plan.enable(Feature::kStubCaching);
  plan.replicate_read_only("Item", w.edge1);
  plan.place("Facade", w.edge1);  // edge Catalog replica
  Runtime& rt = w.make_runtime(std::move(plan));

  // Miss: pull refresh across the WAN (~200ms).
  Duration d1 = w.timed([](Runtime& rt, World& w) -> Task<void> {
    (void)co_await rt.invoke(w.edge1, "Facade", "getItem", std::int64_t{5});
  }(rt, w));
  EXPECT_NEAR(d1.as_millis(), 200.0, 2.0);
  EXPECT_EQ(rt.ro_cache(w.edge1, "Item").misses(), 1u);

  // Hit: served locally.
  Duration d2 = w.timed([](Runtime& rt, World& w) -> Task<void> {
    (void)co_await rt.invoke(w.edge1, "Facade", "getItem", std::int64_t{5});
  }(rt, w));
  EXPECT_LT(d2.as_millis(), 1.0);
  EXPECT_EQ(rt.ro_cache(w.edge1, "Item").hits(), 1u);
}

TEST(RuntimeTest, ReadMissingEntityReturnsNullopt) {
  World w;
  DeploymentPlan plan = w.base_plan();
  Runtime& rt = w.make_runtime(std::move(plan));
  CallResult out;
  (void)w.timed([](Runtime& rt, World& w, CallResult& out) -> Task<void> {
    out = co_await rt.invoke(w.main, "Facade", "getItem", std::int64_t{12345});
  }(rt, w, out));
  EXPECT_TRUE(out.rows.empty());
}

TEST(RuntimeTest, BlockingPushKeepsRoReplicasFresh) {
  World w;
  DeploymentPlan plan = w.base_plan();
  plan.enable(Feature::kStatefulComponentCaching);
  plan.enable(Feature::kStubCaching);
  plan.replicate_read_only("Item", w.edge1);
  plan.replicate_read_only("Item", w.edge2);
  plan.place("Facade", w.edge1);
  plan.place("Facade", w.edge2);
  Runtime& rt = w.make_runtime(std::move(plan));

  (void)w.timed([](Runtime& rt, World& w) -> Task<void> {
    // Warm both edge caches.
    (void)co_await rt.invoke(w.edge1, "Facade", "getItem", std::int64_t{2});
    (void)co_await rt.invoke(w.edge2, "Facade", "getItem", std::int64_t{2});
    // Write at the main server; blocking push must update both replicas.
    (void)co_await rt.invoke(w.main, "Facade", "buy", std::int64_t{2});
    // Reads after the committed write observe the new value, locally.
    CallResult r1 = co_await rt.invoke(w.edge1, "Facade", "getItem", std::int64_t{2});
    CallResult r2 = co_await rt.invoke(w.edge2, "Facade", "getItem", std::int64_t{2});
    EXPECT_DOUBLE_EQ(db::as_real(r1.rows.at(0).at(2)), 99.0);
    EXPECT_DOUBLE_EQ(db::as_real(r2.rows.at(0).at(2)), 99.0);
  }(rt, w));

  EXPECT_EQ(rt.blocking_pushes(), 2u);  // one bulk call per edge
  // Zero staleness (§4.3): no read ever observed an outdated version.
  EXPECT_EQ(rt.consistency().stale_reads(), 0u);
}

TEST(RuntimeTest, BlockingPushCostsSequentialWanRoundTrips) {
  World w;
  DeploymentPlan plan = w.base_plan();
  plan.enable(Feature::kStatefulComponentCaching);
  plan.enable(Feature::kStubCaching);
  plan.replicate_read_only("Item", w.edge1);
  plan.replicate_read_only("Item", w.edge2);
  Runtime& rt = w.make_runtime(std::move(plan));
  Duration d = w.timed([](Runtime& rt, World& w) -> Task<void> {
    (void)co_await rt.invoke(w.main, "Facade", "buy", std::int64_t{2});
  }(rt, w));
  // Two sequential pushes across the WAN: ~2 x 200ms.
  EXPECT_NEAR(d.as_millis(), 400.0, 3.0);
}

// --- query caching (§4.4) -------------------------------------------------------

TEST(RuntimeTest, QueryCacheMissFillsThenServesLocally) {
  World w;
  DeploymentPlan plan = w.base_plan();
  plan.enable(Feature::kQueryCaching);
  plan.enable(Feature::kStubCaching);
  plan.add_query_cache(w.edge1);
  plan.place("Facade", w.edge1);
  Runtime& rt = w.make_runtime(std::move(plan));

  Duration d1 = w.timed([](Runtime& rt, World& w) -> Task<void> {
    (void)co_await rt.invoke(w.edge1, "Facade", "list", std::int64_t{1});
  }(rt, w));
  EXPECT_NEAR(d1.as_millis(), 200.0, 2.0);  // miss -> façade RMI

  CallResult out;
  Duration d2 = w.timed([](Runtime& rt, World& w, CallResult& out) -> Task<void> {
    out = co_await rt.invoke(w.edge1, "Facade", "list", std::int64_t{1});
  }(rt, w, out));
  EXPECT_LT(d2.as_millis(), 1.0);  // hit -> local
  EXPECT_EQ(out.rows.size(), 5u);
  EXPECT_EQ(rt.query_cache(w.edge1).hits(), 1u);
}

TEST(RuntimeTest, QueryCachePushRefreshOnWrite) {
  World w;
  DeploymentPlan plan = w.base_plan();
  plan.enable(Feature::kStatefulComponentCaching);
  plan.enable(Feature::kQueryCaching);
  plan.enable(Feature::kStubCaching);
  plan.set_query_refresh(QueryRefreshMode::kPush);
  plan.add_query_cache(w.edge1);
  plan.place("Facade", w.edge1);
  Runtime& rt = w.make_runtime(std::move(plan));

  (void)w.timed([](Runtime& rt, World& w) -> Task<void> {
    (void)co_await rt.invoke(w.edge1, "Facade", "list", std::int64_t{0});  // warm cache
    (void)co_await rt.invoke(w.main, "Facade", "buy", std::int64_t{0});    // invalidating write
    // Cached list must reflect the new price without leaving the edge.
    CallResult fresh = co_await rt.invoke(w.edge1, "Facade", "list", std::int64_t{0});
    bool found = false;
    for (const auto& row : fresh.rows) {
      if (db::as_int(row[0]) == 0) {
        EXPECT_DOUBLE_EQ(db::as_real(row[2]), 99.0);
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }(rt, w));
  EXPECT_EQ(rt.query_cache(w.edge1).pushes_applied(), 1u);
  EXPECT_EQ(rt.consistency().stale_reads(), 0u);
}

TEST(RuntimeTest, QueryCachePullRefreshInvalidatesThenReFetches) {
  World w;
  DeploymentPlan plan = w.base_plan();
  plan.enable(Feature::kStatefulComponentCaching);
  plan.enable(Feature::kQueryCaching);
  plan.enable(Feature::kStubCaching);
  plan.set_query_refresh(QueryRefreshMode::kPull);
  plan.add_query_cache(w.edge1);
  plan.place("Facade", w.edge1);
  Runtime& rt = w.make_runtime(std::move(plan));

  (void)w.timed([](Runtime& rt, World& w) -> Task<void> {
    (void)co_await rt.invoke(w.edge1, "Facade", "list", std::int64_t{0});
    (void)co_await rt.invoke(w.main, "Facade", "buy", std::int64_t{0});
  }(rt, w));
  EXPECT_FALSE(rt.query_cache(w.edge1).contains(
      Query::finder("item", "product_id", std::int64_t{0}).cache_key()));

  // Next read re-executes at the main server (WAN) and re-fills.
  Duration d = w.timed([](Runtime& rt, World& w) -> Task<void> {
    (void)co_await rt.invoke(w.edge1, "Facade", "list", std::int64_t{0});
  }(rt, w));
  EXPECT_NEAR(d.as_millis(), 200.0, 2.0);
}

// --- asynchronous updates (§4.5) -------------------------------------------------

TEST(RuntimeTest, AsyncUpdatesDoNotBlockTheWriter) {
  World w;
  DeploymentPlan plan = w.base_plan();
  plan.enable(Feature::kStatefulComponentCaching);
  plan.enable(Feature::kQueryCaching);
  plan.enable(Feature::kAsyncUpdates);
  plan.enable(Feature::kStubCaching);
  plan.replicate_read_only("Item", w.edge1);
  plan.replicate_read_only("Item", w.edge2);
  plan.add_query_cache(w.edge1);
  plan.add_query_cache(w.edge2);
  Runtime& rt = w.make_runtime(std::move(plan));

  Duration d = w.timed([](Runtime& rt, World& w) -> Task<void> {
    (void)co_await rt.invoke(w.main, "Facade", "buy", std::int64_t{2});
  }(rt, w));
  EXPECT_LT(d.as_millis(), 5.0);  // writer does not wait for WAN propagation
  EXPECT_EQ(rt.async_publishes(), 1u);
  EXPECT_TRUE(rt.updates_quiescent());  // run_until drained the deliveries
}

TEST(RuntimeTest, AsyncUpdatesEventuallyReachReplicas) {
  World w;
  DeploymentPlan plan = w.base_plan();
  plan.enable(Feature::kStatefulComponentCaching);
  plan.enable(Feature::kAsyncUpdates);
  plan.enable(Feature::kStubCaching);
  plan.replicate_read_only("Item", w.edge1);
  plan.place("Facade", w.edge1);
  Runtime& rt = w.make_runtime(std::move(plan));

  (void)w.timed([](Runtime& rt, World& w) -> Task<void> {
    (void)co_await rt.invoke(w.edge1, "Facade", "getItem", std::int64_t{2});  // warm
    (void)co_await rt.invoke(w.main, "Facade", "buy", std::int64_t{2});
  }(rt, w));
  // After the simulator drained everything, the replica holds the new value.
  auto entry = rt.ro_cache(w.edge1, "Item").get(2);
  ASSERT_TRUE(entry.has_value());
  EXPECT_DOUBLE_EQ(db::as_real(entry->row[2]), 99.0);
}

TEST(RuntimeTest, AsyncUpdateWindowAllowsStaleReads) {
  World w;
  DeploymentPlan plan = w.base_plan();
  plan.enable(Feature::kStatefulComponentCaching);
  plan.enable(Feature::kAsyncUpdates);
  plan.enable(Feature::kStubCaching);
  plan.replicate_read_only("Item", w.edge1);
  plan.place("Facade", w.edge1);
  Runtime& rt = w.make_runtime(std::move(plan));

  w.sim.spawn([](Runtime& rt, World& w) -> Task<void> {
    (void)co_await rt.invoke(w.edge1, "Facade", "getItem", std::int64_t{2});  // warm
    (void)co_await rt.invoke(w.main, "Facade", "buy", std::int64_t{2});
    // Read immediately after commit, before the 100ms propagation lands.
    CallResult r = co_await rt.invoke(w.edge1, "Facade", "getItem", std::int64_t{2});
    EXPECT_NE(db::as_real(r.rows.at(0).at(2)), 99.0);  // stale value visible
  }(rt, w));
  w.sim.run_until();
  EXPECT_GE(rt.consistency().stale_reads(), 1u);
}

// --- write routing & locking ------------------------------------------------------

TEST(RuntimeTest, WriteFromEdgeRoutesThroughFacade) {
  World w;
  DeploymentPlan plan = w.base_plan();
  plan.enable(Feature::kStubCaching);
  plan.place("Facade", w.edge1);
  Runtime& rt = w.make_runtime(std::move(plan));
  Duration d = w.timed([](Runtime& rt, World& w) -> Task<void> {
    // Facade resolves to edge1 locally; the write inside hops to main.
    (void)co_await rt.invoke(w.edge1, "Facade", "buy", std::int64_t{1});
  }(rt, w));
  EXPECT_NEAR(d.as_millis(), 200.0, 2.0);
  EXPECT_DOUBLE_EQ(db::as_real((*w.db->table("item").get(1))[2]), 99.0);
}

TEST(RuntimeTest, ConcurrentWritesToSameEntitySerialize) {
  World w;
  DeploymentPlan plan = w.base_plan();
  plan.enable(Feature::kStatefulComponentCaching);
  plan.enable(Feature::kStubCaching);
  plan.replicate_read_only("Item", w.edge1);
  Runtime& rt = w.make_runtime(std::move(plan));
  // Each write holds the lock for one WAN push (~200ms); the second write
  // to the SAME item must wait, while a write to ANOTHER item proceeds.
  std::vector<double> done;
  for (int i = 0; i < 2; ++i) {
    w.sim.spawn([](Runtime& rt, World& w, std::vector<double>& done) -> Task<void> {
      (void)co_await rt.invoke(w.main, "Facade", "buy", std::int64_t{2});
      done.push_back(w.sim.now().as_millis());
    }(rt, w, done));
  }
  w.sim.run_until();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 200.0, 3.0);
  EXPECT_NEAR(done[1], 400.0, 5.0);
  EXPECT_EQ(rt.locks().contended_acquisitions(), 1u);
}

TEST(RuntimeTest, InsertPropagatesToQueryCaches) {
  World w;
  auto& facade = const_cast<ComponentDef&>(w.app.component("Facade"));
  facade.method({.name = "addItem",
                 .cpu = Duration::zero(),
                 .body = [](CallContext& ctx) -> Task<void> {
                   std::vector<Query> affected{
                       Query::finder("item", "product_id", std::int64_t{1})};
                   Row row{ctx.arg_int(0), std::int64_t{1}, 5.0};
                   co_await ctx.insert_row("Item", std::move(row), std::move(affected));
                 }});
  DeploymentPlan plan = w.base_plan();
  plan.enable(Feature::kStatefulComponentCaching);
  plan.enable(Feature::kQueryCaching);
  plan.enable(Feature::kStubCaching);
  plan.set_query_refresh(QueryRefreshMode::kPush);
  plan.add_query_cache(w.edge1);
  plan.place("Facade", w.edge1);
  Runtime& rt = w.make_runtime(std::move(plan));

  (void)w.timed([](Runtime& rt, World& w) -> Task<void> {
    CallResult before = co_await rt.invoke(w.edge1, "Facade", "list", std::int64_t{1});
    EXPECT_EQ(before.rows.size(), 5u);
    (void)co_await rt.invoke(w.main, "Facade", "addItem", std::int64_t{500});
    CallResult after = co_await rt.invoke(w.edge1, "Facade", "list", std::int64_t{1});
    EXPECT_EQ(after.rows.size(), 6u);  // new row pushed into the edge cache
  }(rt, w));
}

TEST(RuntimeTest, UnboundEntityThrows) {
  World w;
  Runtime& rt = w.make_runtime(w.base_plan());
  EXPECT_THROW((void)rt.entity_table("Ghost"), std::invalid_argument);
}

// --- stub cache ---------------------------------------------------------------------

TEST(StubCacheTest, FirstUseMissesThenHits) {
  StubCache sc;
  EXPECT_TRUE(sc.need_stub_exchange(NodeId{1}, "Facade"));
  EXPECT_FALSE(sc.need_stub_exchange(NodeId{1}, "Facade"));
  EXPECT_TRUE(sc.need_stub_exchange(NodeId{2}, "Facade"));   // per-node
  EXPECT_TRUE(sc.need_stub_exchange(NodeId{1}, "Other"));    // per-component
  EXPECT_EQ(sc.hits(), 1u);
  EXPECT_EQ(sc.misses(), 3u);
  sc.clear();
  EXPECT_TRUE(sc.need_stub_exchange(NodeId{1}, "Facade"));
}

// --- lock manager --------------------------------------------------------------------

TEST(LockManagerTest, DistinctKeysDoNotContend) {
  Simulator sim;
  LockManager lm{sim};
  std::vector<double> done;
  for (std::int64_t pk : {1, 2}) {
    sim.spawn([](Simulator& s, LockManager& lm, std::int64_t pk,
                 std::vector<double>& done) -> Task<void> {
      co_await lm.acquire({"Item", pk});
      co_await s.wait(ms(10));
      lm.release({"Item", pk});
      done.push_back(s.now().as_millis());
    }(sim, lm, pk, done));
  }
  sim.run_until();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 10.0);
  EXPECT_DOUBLE_EQ(done[1], 10.0);
  EXPECT_EQ(lm.contended_acquisitions(), 0u);
}

TEST(LockManagerTest, EvictsUnlockedUncontendedMutexesOnRelease) {
  Simulator sim;
  LockManager lm{sim};
  // A benchmark-scale key stream must not grow the mutex table: each
  // uncontended acquire/release round-trip evicts its entry.
  for (std::int64_t pk = 0; pk < 100; ++pk) {
    sim.spawn([](Simulator& s, LockManager& lm, std::int64_t pk) -> Task<void> {
      co_await lm.acquire({"Item", pk});
      co_await s.wait(ms(1));
      lm.release({"Item", pk});
    }(sim, lm, pk));
  }
  sim.run_until();
  EXPECT_EQ(lm.tracked_mutexes(), 0u);
  EXPECT_EQ(lm.held_count(), 0u);
  EXPECT_EQ(lm.acquisitions(), 100u);
}

TEST(LockManagerTest, ContendedMutexSurvivesReleaseUntilLastHolder) {
  Simulator sim;
  LockManager lm{sim};
  const LockManager::Key key{"Item", 1};
  std::vector<double> done;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Simulator& s, LockManager& lm, LockManager::Key k,
                 std::vector<double>& done) -> Task<void> {
      co_await lm.acquire(k);
      co_await s.wait(ms(10));
      lm.release(k);
      done.push_back(s.now().as_millis());
    }(sim, lm, key, done));
  }
  sim.run_for(ms(15));
  // Mid-contention: the first release handed the slot to a queued waiter, so
  // the entry must survive eviction.
  EXPECT_EQ(lm.tracked_mutexes(), 1u);
  EXPECT_EQ(lm.held_count(), 1u);
  EXPECT_TRUE(lm.is_locked(key));
  sim.run_until();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_DOUBLE_EQ(done[2], 30.0);  // strict serialization preserved
  EXPECT_EQ(lm.tracked_mutexes(), 0u);
  EXPECT_FALSE(lm.is_locked(key));
}

TEST(LockManagerTest, ConstAccessorsWorkOnConstManager) {
  Simulator sim;
  LockManager lm{sim};
  const LockManager& clm = lm;
  EXPECT_FALSE(clm.is_locked({"Item", 1}));
  EXPECT_EQ(clm.held_count(), 0u);
  EXPECT_EQ(clm.tracked_mutexes(), 0u);
}

TEST(LockManagerTest, ReleaseWithoutAcquireThrows) {
  Simulator sim;
  LockManager lm{sim};
  EXPECT_THROW(lm.release({"Item", 42}), std::logic_error);
}

}  // namespace
}  // namespace mutsvc::comp

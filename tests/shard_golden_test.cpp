// Golden equivalence for the sharded data tier: with `shards = 1` (the
// default ShardConfig) every figure-7/8 ladder rung must stay bit-identical
// to the pre-sharding data tier — same executed-event count, same response
// summaries, to the last bit. The sharded path is the *only* path, so this
// suite is what guards the refactor: the constants below were captured from
// the unsharded baseline and must never drift.
//
// Runs under plain ctest and MUTSVC_SIMCHECK=1 (the CI matrix runs the whole
// suite in both modes); the fingerprints are sim-time-only and deterministic.
//
// Regenerating (only legitimate after an intentional simulation change):
//   MUTSVC_GOLDEN_PRINT=1 ./build/tests/shard_golden_test
// prints fresh rows to paste over kGolden.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "apps/petstore/petstore.hpp"
#include "apps/rubis/rubis.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"

namespace mutsvc::core {
namespace {

using stats::ClientGroup;

struct GoldenCase {
  const char* app;
  ConfigLevel level;
  std::uint64_t events;   // Simulator::executed_events() — exact
  std::uint64_t samples;  // post-warm-up page samples — exact
  std::uint64_t digest;   // FNV-1a over the pattern-mean bit patterns
};

apps::AppDriver make_driver(const char* app) {
  if (std::strcmp(app, "petstore") == 0) {
    static apps::petstore::PetStoreApp petstore;
    return petstore.driver();
  }
  static apps::rubis::RubisApp rubis;
  return rubis.driver();
}

HarnessCalibration calibration_for(const char* app) {
  return std::strcmp(app, "petstore") == 0 ? petstore_calibration() : rubis_calibration();
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffU;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t digest_double(std::uint64_t h, double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return fnv1a(h, bits);
}

struct Fingerprint {
  std::uint64_t events = 0;
  std::uint64_t samples = 0;
  std::uint64_t digest = 0;
};

Fingerprint run_case(const char* app, ConfigLevel level) {
  apps::AppDriver driver = make_driver(app);
  ExperimentSpec spec;
  spec.level = level;
  spec.duration = sim::sec(180);
  spec.warmup = sim::sec(30);
  Experiment exp{driver, spec, calibration_for(app)};
  exp.run();

  Fingerprint fp;
  fp.events = exp.simulator().executed_events();
  fp.samples = exp.results().total_samples();
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::string& pattern : {driver.browser_pattern, driver.writer_pattern}) {
    for (ClientGroup g : {ClientGroup::kLocal, ClientGroup::kRemote}) {
      h = digest_double(h, exp.results().pattern_mean_ms(pattern, g));
    }
  }
  h = fnv1a(h, exp.results().failures());
  h = fnv1a(h, exp.results().discarded_samples());
  fp.digest = h;
  return fp;
}

const char* level_name(ConfigLevel level) {
  switch (level) {
    case ConfigLevel::kCentralized: return "ConfigLevel::kCentralized";
    case ConfigLevel::kRemoteFacade: return "ConfigLevel::kRemoteFacade";
    case ConfigLevel::kStatefulComponentCaching: return "ConfigLevel::kStatefulComponentCaching";
    case ConfigLevel::kQueryCaching: return "ConfigLevel::kQueryCaching";
    case ConfigLevel::kAsyncUpdates: return "ConfigLevel::kAsyncUpdates";
  }
  return "?";
}

// Captured from the pre-sharding baseline (seed of this PR): 180 s / 30 s
// warm-up, default spec, both figure apps, all five rungs.
const GoldenCase kGolden[] = {
    {"petstore", ConfigLevel::kCentralized, 181756ULL, 4422ULL, 4317317305918343935ULL},
    {"petstore", ConfigLevel::kRemoteFacade, 141237ULL, 4421ULL, 14993410892988634727ULL},
    {"petstore", ConfigLevel::kStatefulComponentCaching, 138755ULL, 4424ULL,
     3907525992910197175ULL},
    {"petstore", ConfigLevel::kQueryCaching, 120864ULL, 4423ULL, 4244487511749618147ULL},
    {"petstore", ConfigLevel::kAsyncUpdates, 120550ULL, 4423ULL, 6782764371769714750ULL},
    {"rubis", ConfigLevel::kCentralized, 112824ULL, 4466ULL, 16537404889437813069ULL},
    {"rubis", ConfigLevel::kRemoteFacade, 117457ULL, 4464ULL, 18150912617311707733ULL},
    {"rubis", ConfigLevel::kStatefulComponentCaching, 120943ULL, 4463ULL,
     1213779533445846115ULL},
    {"rubis", ConfigLevel::kQueryCaching, 114144ULL, 4460ULL, 2946415075464466939ULL},
    {"rubis", ConfigLevel::kAsyncUpdates, 112986ULL, 4461ULL, 17491226175581796016ULL},
};

class ShardGoldenTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(ShardGoldenTest, ShardsOneMatchesUnshardedBaseline) {
  const GoldenCase& g = GetParam();
  const Fingerprint fp = run_case(g.app, g.level);
  if (std::getenv("MUTSVC_GOLDEN_PRINT") != nullptr) {
    std::printf("    {\"%s\", %s, %lluULL, %lluULL, %lluULL},\n", g.app, level_name(g.level),
                static_cast<unsigned long long>(fp.events),
                static_cast<unsigned long long>(fp.samples),
                static_cast<unsigned long long>(fp.digest));
    return;
  }
  EXPECT_EQ(fp.events, g.events) << g.app << " " << level_name(g.level)
                                 << ": executed-event trajectory diverged from the unsharded "
                                    "baseline";
  EXPECT_EQ(fp.samples, g.samples) << g.app << " " << level_name(g.level);
  EXPECT_EQ(fp.digest, g.digest) << g.app << " " << level_name(g.level)
                                 << ": response summaries diverged from the unsharded baseline";
}

std::string golden_name(const ::testing::TestParamInfo<GoldenCase>& info) {
  std::string level = level_name(info.param.level);
  return std::string(info.param.app) + "_" + level.substr(level.find("::k") + 3);
}

INSTANTIATE_TEST_SUITE_P(Ladder, ShardGoldenTest, ::testing::ValuesIn(kGolden), golden_name);

}  // namespace
}  // namespace mutsvc::core

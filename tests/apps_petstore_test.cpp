#include <gtest/gtest.h>

#include <map>
#include <set>

#include "apps/petstore/petstore.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace mutsvc::apps::petstore {
namespace {

using comp::ComponentKind;

struct Fixture {
  PetStoreApp app;
  sim::Simulator sim{1};
  net::Topology topo{sim};
  net::NodeId dbnode = topo.add_node("db", net::NodeRole::kDatabaseServer);
  db::Database db{topo, dbnode};

  Fixture() { app.install_database(db); }
};

// --- component architecture (Table 1 / Figure 1) -------------------------------

TEST(PetStoreAppTest, Table1ComponentsExist) {
  PetStoreApp app;
  const auto& a = app.application();
  // Stateless session beans.
  EXPECT_EQ(a.component("Catalog").kind(), ComponentKind::kStatelessSessionBean);
  EXPECT_EQ(a.component("Customer").kind(), ComponentKind::kStatelessSessionBean);
  EXPECT_EQ(a.component("SignOn").kind(), ComponentKind::kStatelessSessionBean);
  // Stateful session beans.
  EXPECT_EQ(a.component("ShoppingCart").kind(), ComponentKind::kStatefulSessionBean);
  EXPECT_EQ(a.component("ShoppingClientController").kind(),
            ComponentKind::kStatefulSessionBean);
  // Entity beans.
  for (const char* e : {"CategoryEJB", "ProductEJB", "ItemEJB", "InventoryEJB", "AccountEJB",
                        "OrderEJB", "LineItemEJB"}) {
    EXPECT_EQ(a.component(e).kind(), ComponentKind::kEntityBeanRW) << e;
    EXPECT_TRUE(a.component(e).is_local_only()) << e;  // EJB 2.0 local interfaces (§5)
  }
  // Web tier.
  EXPECT_EQ(a.component("PetStoreWeb").kind(), ComponentKind::kServlet);
  EXPECT_TRUE(a.component("CatalogWebImpl").is_local_only());
}

TEST(PetStoreAppTest, EveryTablePageHasAServletMethod) {
  PetStoreApp app;
  const auto& web = app.application().component("PetStoreWeb");
  for (const char* m : {"main", "category", "product", "item", "search", "signin",
                        "verifysignin", "cart", "checkout", "placeorder", "billing",
                        "commitorder", "signout"}) {
    EXPECT_NO_THROW((void)web.find_method(m)) << m;
  }
}

TEST(PetStoreAppTest, MetadataMatchesPaperSection43) {
  PetStoreApp app;
  const AppMetadata& m = app.metadata();
  // §4.3: RO versions of Category, Product, Item, Inventory.
  EXPECT_EQ(std::set<std::string>(m.read_mostly.begin(), m.read_mostly.end()),
            (std::set<std::string>{"Category", "Product", "Item", "Inventory"}));
  // §4.4: Pet Store used the pull-based query refresh.
  EXPECT_EQ(m.query_refresh, comp::QueryRefreshMode::kPull);
  // §4.2: Catalog is the delegating edge façade.
  ASSERT_EQ(m.edge_facades.size(), 1u);
  EXPECT_EQ(m.edge_facades[0], "Catalog");
}

// --- database population (§3.4) --------------------------------------------------

TEST(PetStoreAppTest, DatabasePopulationMatchesShape) {
  Fixture f;
  const Shape& s = f.app.shape();
  EXPECT_EQ(f.db.table("category").row_count(), static_cast<std::size_t>(s.categories));
  EXPECT_EQ(f.db.table("product").row_count(), static_cast<std::size_t>(s.total_products()));
  EXPECT_EQ(f.db.table("item").row_count(), static_cast<std::size_t>(s.total_items()));
  EXPECT_EQ(f.db.table("inventory").row_count(), static_cast<std::size_t>(s.total_items()));
  EXPECT_EQ(f.db.table("account").row_count(), static_cast<std::size_t>(s.accounts));
  EXPECT_EQ(f.db.table("orders").row_count(), 0u);
}

TEST(PetStoreAppTest, ReferentialIntegrity) {
  Fixture f;
  const Shape& s = f.app.shape();
  // Every item's product exists; every product's category exists.
  auto products = f.db.table("product").scan([](const db::Row&) { return true; });
  for (const auto& p : products) {
    EXPECT_TRUE(f.db.table("category").contains(db::as_int(p[1])));
  }
  auto items = f.db.table("item").scan([](const db::Row&) { return true; });
  for (const auto& i : items) {
    EXPECT_TRUE(f.db.table("product").contains(db::as_int(i[1])));
    EXPECT_TRUE(f.db.table("inventory").contains(db::as_int(i[0])));
  }
  // The shape's id scheme round-trips.
  EXPECT_TRUE(f.db.table("product").contains(s.product_id(1, 0)));
  EXPECT_TRUE(f.db.table("item").contains(s.item_id(s.product_id(1, 0), 0)));
}

TEST(PetStoreAppTest, SearchKeywordsMatchProductNames) {
  Fixture f;
  for (const char* kw : {"fish", "dog", "cat", "bird", "snake"}) {
    auto res = f.db.execute_immediate(db::Query::keyword_search("product", "name", kw));
    EXPECT_FALSE(res.rows.empty()) << kw;
  }
}

// --- session scripts (Tables 2 and 3) ---------------------------------------------

TEST(PetStoreSessionTest, BrowserSessionLengthAndStart) {
  PetStoreApp app;
  auto factory = app.browser_factory(sim::RngStream{7});
  auto session = factory();
  int count = 0;
  bool first = true;
  while (auto req = session->next()) {
    if (first) {
      EXPECT_EQ(req->page, "Main");  // "each session ... starting with the Main page"
      first = false;
    }
    EXPECT_EQ(req->pattern, "Browser");
    EXPECT_EQ(req->component, "PetStoreWeb");
    ++count;
  }
  EXPECT_EQ(count, PetStoreApp::kBrowserSessionLength);
}

TEST(PetStoreSessionTest, BrowserMixApproximatesTable2) {
  PetStoreApp app;
  auto factory = app.browser_factory(sim::RngStream{11});
  std::map<std::string, int> counts;
  int total = 0;
  for (int s = 0; s < 800; ++s) {
    auto session = factory();
    while (auto req = session->next()) {
      ++counts[req->page];
      ++total;
    }
  }
  auto frac = [&](const char* page) {
    return static_cast<double>(counts[page]) / static_cast<double>(total);
  };
  // Table 2 weights, with the forced first-Main inflating Main slightly.
  EXPECT_NEAR(frac("Main"), 0.05 + 0.05 * (1.0 - 0.05), 0.03);
  EXPECT_NEAR(frac("Category"), 0.15 * 0.95, 0.03);
  EXPECT_NEAR(frac("Product"), 0.30 * 0.95, 0.03);
  EXPECT_NEAR(frac("Item"), 0.45 * 0.95, 0.03);
  EXPECT_NEAR(frac("Search"), 0.05 * 0.95, 0.02);
}

TEST(PetStoreSessionTest, ItemRequestsBelongToPreviouslyBrowsedProduct) {
  // Table 2: "a request of an Item page always goes after a request for a
  // Product page, such that the requested item belongs to the previously
  // requested product".
  PetStoreApp app;
  const Shape& s = app.shape();
  auto factory = app.browser_factory(sim::RngStream{13});
  for (int si = 0; si < 50; ++si) {
    auto session = factory();
    std::int64_t last_product = 0;
    while (auto req = session->next()) {
      if (req->page == "Product") {
        last_product = db::as_int(req->args.at(0));
      } else if (req->page == "Item") {
        std::int64_t item = db::as_int(req->args.at(0));
        if (last_product != 0) {
          // item ids encode their product: item = product*1000 + k + 1.
          EXPECT_EQ(item / 1000, last_product);
          EXPECT_LE(item % 1000, static_cast<std::int64_t>(s.items_per_product));
        }
      } else {
        // Category/Main/Search navigations reset the product context; the
        // next Item view may implicitly pick a fresh product (§3.2 keeps
        // sessions logically ordered, not strictly alternating).
        last_product = 0;
      }
    }
  }
}

TEST(PetStoreSessionTest, BuyerSessionIsTheFixedTable3Scenario) {
  PetStoreApp app;
  auto factory = app.buyer_factory(sim::RngStream{3});
  auto session = factory();
  std::vector<std::string> pages;
  while (auto req = session->next()) {
    EXPECT_EQ(req->pattern, "Buyer");
    pages.push_back(req->page);
  }
  EXPECT_EQ(pages, (std::vector<std::string>{"Main", "Signin", "Verify Signin",
                                             "Shopping Cart", "Checkout", "Place Order",
                                             "Billing", "Commit Order", "Signout"}));
}

TEST(PetStoreSessionTest, BuyerUsesConsistentAccountAndItem) {
  PetStoreApp app;
  auto factory = app.buyer_factory(sim::RngStream{5});
  auto session = factory();
  std::int64_t verify_account = -1;
  std::int64_t cart_item = -1;
  while (auto req = session->next()) {
    if (req->page == "Verify Signin") verify_account = db::as_int(req->args.at(0));
    if (req->page == "Shopping Cart") cart_item = db::as_int(req->args.at(0));
    if (req->page == "Commit Order") {
      EXPECT_EQ(db::as_int(req->args.at(0)), verify_account);
      EXPECT_EQ(db::as_int(req->args.at(1)), cart_item);
    }
  }
}

TEST(PetStoreSessionTest, FactorySessionsAreIndependentButDeterministic) {
  PetStoreApp app;
  auto f1 = app.browser_factory(sim::RngStream{21});
  auto f2 = app.browser_factory(sim::RngStream{21});
  for (int s = 0; s < 3; ++s) {
    auto a = f1();
    auto b = f2();
    while (true) {
      auto ra = a->next();
      auto rb = b->next();
      ASSERT_EQ(ra.has_value(), rb.has_value());
      if (!ra) break;
      EXPECT_EQ(ra->page, rb->page);
      ASSERT_EQ(ra->args.size(), rb->args.size());
    }
  }
}

TEST(PetStoreAppTest, TablePagesCoverBothPatterns) {
  auto pages = PetStoreApp::table_pages();
  EXPECT_EQ(pages.size(), 14u);  // 5 browser + 9 buyer columns of Table 6
  int browser = 0;
  int buyer = 0;
  for (const auto& [pattern, page] : pages) {
    if (pattern == "Browser") ++browser;
    if (pattern == "Buyer") ++buyer;
  }
  EXPECT_EQ(browser, 5);
  EXPECT_EQ(buyer, 9);
}

TEST(PetStoreAppTest, DriverIsComplete) {
  PetStoreApp app;
  AppDriver d = app.driver();
  EXPECT_EQ(d.writer_pattern, "Buyer");
  EXPECT_FALSE(d.db_colocated);
  EXPECT_NE(d.app, nullptr);
  EXPECT_NE(d.meta, nullptr);
  EXPECT_TRUE(d.install_database && d.bind_entities && d.browser_factory && d.writer_factory);
}

}  // namespace
}  // namespace mutsvc::apps::petstore

// Overload-protection unit battery (ISSUE 6): deterministic token buckets
// (GCRA admission + WAN byte shaping), credit gates, bounded topic queues
// under all three overflow policies, bounded coalescer lanes, and the
// late-subscriber quiescence regression. Conservation identities are
// asserted exactly — shedding must account for every message, never lose
// one silently.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "messaging/coalescer.hpp"
#include "messaging/topic.hpp"
#include "net/flowcontrol.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace mutsvc {
namespace {

using net::CreditGate;
using net::OverflowPolicy;
using net::OverloadError;
using net::QueueBound;
using net::RateLimiter;
using net::TokenBucket;
using sim::Duration;
using sim::ms;
using sim::sec;
using sim::SimTime;
using sim::Simulator;
using sim::Task;

SimTime at_ms(double m) { return SimTime::origin() + ms(m); }

// --- TokenBucket (admission) -------------------------------------------------

TEST(TokenBucketTest, BurstPassesThenSustainedRateHolds) {
  // 10/s with burst 3: three back-to-back arrivals pass at t=0, the fourth
  // is rejected, and one more slot opens every 100ms.
  TokenBucket b{10.0, 3.0};
  EXPECT_TRUE(b.try_acquire(at_ms(0)));
  EXPECT_TRUE(b.try_acquire(at_ms(0)));
  EXPECT_TRUE(b.try_acquire(at_ms(0)));
  EXPECT_FALSE(b.try_acquire(at_ms(0)));
  EXPECT_FALSE(b.try_acquire(at_ms(99)));
  EXPECT_TRUE(b.try_acquire(at_ms(100)));
  EXPECT_FALSE(b.try_acquire(at_ms(100)));
  EXPECT_EQ(b.admitted(), 4u);
  EXPECT_EQ(b.rejected(), 3u);
}

TEST(TokenBucketTest, SteadyOfferAdmitsExactlyTheRate) {
  // Offer 50/s against a 10/s bucket for 10 simulated seconds: exactly
  // rate * time + burst admissions, deterministically.
  TokenBucket b{10.0, 1.0};
  std::uint64_t admitted = 0;
  for (int i = 0; i < 500; ++i) {
    if (b.try_acquire(at_ms(20.0 * i))) ++admitted;
  }
  EXPECT_EQ(admitted, 100u);
  EXPECT_EQ(b.admitted() + b.rejected(), 500u);
}

TEST(TokenBucketTest, IdlePeriodRestoresBurst) {
  TokenBucket b{10.0, 5.0};
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(b.try_acquire(at_ms(0)));
  EXPECT_FALSE(b.try_acquire(at_ms(0)));
  // After a long idle period the full burst allowance is back.
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(b.try_acquire(at_ms(10000)));
  EXPECT_FALSE(b.try_acquire(at_ms(10000)));
}

TEST(TokenBucketTest, RejectsInvalidParameters) {
  EXPECT_THROW(TokenBucket(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(TokenBucket(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(TokenBucket(10.0, 0.5), std::invalid_argument);
}

// --- RateLimiter (WAN shaping) -----------------------------------------------

TEST(RateLimiterTest, BurstFreeThenDelaysAtLineRate) {
  // 8 Mbit/s, 1 KiB burst: the first KiB goes immediately; the next KiB
  // must wait out the first one's wire time (1024*8/8e6 s = 1.024 ms).
  RateLimiter r{8e6, 1024};
  EXPECT_EQ(r.reserve(at_ms(0), 1024), Duration::zero());
  const Duration d = r.reserve(at_ms(0), 1024);
  EXPECT_EQ(d.count_micros(), 1024);
  EXPECT_EQ(r.throttled(), 1u);
  EXPECT_EQ(r.bytes_shaped(), 2048u);
}

TEST(RateLimiterTest, SpacedTrafficIsNeverThrottled) {
  RateLimiter r{8e6, 1024};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(r.reserve(at_ms(2.0 * i), 1024), Duration::zero());
  }
  EXPECT_EQ(r.throttled(), 0u);
  EXPECT_EQ(r.throttle_time(), Duration::zero());
}

TEST(RateLimiterTest, BackToBackDelaysAccumulateDeterministically) {
  RateLimiter r{8e6, 1024};
  (void)r.reserve(at_ms(0), 1024);
  Duration total;
  for (int i = 0; i < 10; ++i) total += r.reserve(at_ms(0), 1024);
  // i-th reservation waits i * wire_time: 1.024ms * (1+...+10) = 56.32ms.
  EXPECT_EQ(total.count_micros(), 1024 * 55);
  EXPECT_EQ(r.throttled(), 10u);
}

// --- QueueBound watermarks ---------------------------------------------------

TEST(QueueBoundTest, DerivedWatermarksKeepHysteresis) {
  QueueBound b;
  b.capacity = 16;
  EXPECT_EQ(b.high(), 12u);  // 3/4
  EXPECT_EQ(b.low(), 4u);    // 1/4
  b.high_watermark = 20;     // clamped to capacity
  EXPECT_EQ(b.high(), 16u);
  b.low_watermark = 16;  // clamped under high
  EXPECT_EQ(b.low(), 15u);
  QueueBound tiny;
  tiny.capacity = 1;
  EXPECT_EQ(tiny.high(), 1u);
  EXPECT_EQ(tiny.low(), 0u);
  EXPECT_LT(tiny.low(), tiny.high());
  QueueBound off;
  EXPECT_FALSE(off.bounded());
  EXPECT_EQ(off.high(), 0u);
}

TEST(QueueBoundTest, EqualExplicitWatermarksAreForcedApart) {
  // high == low would make the hysteresis band empty (the gate would close
  // and reopen at the same depth); low() caps the explicit value at
  // high() - 1, so an equal pair degrades to the tightest valid band.
  QueueBound b;
  b.capacity = 8;
  b.high_watermark = 4;
  b.low_watermark = 4;
  EXPECT_EQ(b.high(), 4u);
  EXPECT_EQ(b.low(), 3u);
  // Both watermarks pinned at capacity: the band still sits under the cap.
  QueueBound full;
  full.capacity = 8;
  full.high_watermark = 8;
  full.low_watermark = 8;
  EXPECT_EQ(full.high(), 8u);
  EXPECT_EQ(full.low(), 7u);
  // Low configured above high: clamped strictly under high, not onto it.
  QueueBound inverted;
  inverted.capacity = 8;
  inverted.high_watermark = 2;
  inverted.low_watermark = 6;
  EXPECT_EQ(inverted.high(), 2u);
  EXPECT_EQ(inverted.low(), 1u);
}

TEST(QueueBoundTest, TinyCapacitiesKeepLowStrictlyUnderHigh) {
  // capacity 2: derived 3/4 rounds down to 1, derived 1/4 rounds to 0.
  QueueBound two;
  two.capacity = 2;
  EXPECT_EQ(two.high(), 1u);
  EXPECT_EQ(two.low(), 0u);
  // capacity 1 with both explicit watermarks pinned at 1 (== capacity ==
  // high): the only valid band is [0, 1], and low() must land on 0.
  QueueBound one;
  one.capacity = 1;
  one.high_watermark = 1;
  one.low_watermark = 1;
  EXPECT_EQ(one.high(), 1u);
  EXPECT_EQ(one.low(), 0u);
  EXPECT_LT(one.low(), one.high());
}

// --- CreditGate --------------------------------------------------------------

TEST(CreditGateTest, OpenGateWaitsCompleteSynchronously) {
  Simulator sim{1};
  CreditGate gate{sim};
  bool done = false;
  sim.spawn([](CreditGate& g, bool& done) -> Task<void> {
    co_await g.wait();
    done = true;
  }(gate, done));
  // Lazy task + synchronous completion: nothing was ever scheduled.
  EXPECT_TRUE(done);
  EXPECT_EQ(gate.stalls(), 0u);
  sim.run_until();
  EXPECT_EQ(sim.now(), SimTime::origin());
}

TEST(CreditGateTest, ClosedGateParksUntilReopenedInFifoOrder) {
  Simulator sim{1};
  CreditGate gate{sim};
  gate.close_gate();
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](CreditGate& g, std::vector<int>& order, int id) -> Task<void> {
      co_await g.wait();
      order.push_back(id);
    }(gate, order, i));
  }
  EXPECT_EQ(gate.waiting(), 3u);
  EXPECT_EQ(gate.stalls(), 3u);
  sim.run_until();
  EXPECT_TRUE(order.empty());  // still parked: nothing reopened the gate
  gate.open_gate();
  sim.run_until();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(CreditGateTest, ResumedWaiterRechecksAReClosedGate) {
  Simulator sim{1};
  CreditGate gate{sim};
  gate.close_gate();
  int completions = 0;
  // The first resumed writer immediately re-closes the gate (as a refill
  // that re-crosses the high watermark would), so the second parks again.
  sim.spawn([](CreditGate& g, int& done) -> Task<void> {
    co_await g.wait();
    g.close_gate();
    ++done;
  }(gate, completions));
  sim.spawn([](CreditGate& g, int& done) -> Task<void> {
    co_await g.wait();
    ++done;
  }(gate, completions));
  gate.open_gate();
  sim.run_until();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(gate.waiting(), 1u);
  gate.open_gate();
  sim.run_until();
  EXPECT_EQ(completions, 2);
}

// --- Bounded Topic queues ----------------------------------------------------

struct TopicWorld {
  Simulator sim{1};
  net::Topology topo{sim};
  net::NodeId main, edge;
  net::Network net{sim, topo, Duration::zero()};

  TopicWorld() {
    main = topo.add_node("main", net::NodeRole::kAppServer);
    edge = topo.add_node("edge", net::NodeRole::kAppServer);
    topo.add_link(main, edge, ms(1), 100e6);
  }
};

// A subscriber that takes `service` of simulated time per message, so the
// provider-side queue actually builds up.
struct SlowSink {
  Simulator& sim;
  Duration service;
  std::vector<int> got;
  [[nodiscard]] msg::Topic<int>::Handler handler() {
    return [this](const int& v) -> Task<void> {
      co_await sim.wait(service);
      got.push_back(v);
    };
  }
};

[[nodiscard]] Task<void> publish_burst(msg::Topic<int>& t, net::NodeId from, int n,
                                       std::uint64_t* bounces = nullptr) {
  for (int i = 0; i < n; ++i) {
    bool bounced = false;
    try {
      co_await t.publish(from, i, 64);
    } catch (const OverloadError&) {
      bounced = true;  // co_await is illegal in a catch block
    }
    if (bounced && bounces != nullptr) ++*bounces;
  }
}

TEST(BoundedTopicTest, DropPolicyShedsOverCapacityAndStaysQuiescent) {
  TopicWorld w;
  msg::Topic<int> topic{w.net, w.main, "updates", Duration::zero()};
  SlowSink sink{w.sim, ms(50)};
  topic.subscribe(w.main, sink.handler());
  QueueBound b;
  b.capacity = 4;
  b.policy = OverflowPolicy::kDrop;
  topic.set_bound(b);

  w.sim.spawn(publish_burst(topic, w.main, 20));
  w.sim.run_until();

  EXPECT_EQ(topic.published(), 20u);
  EXPECT_EQ(topic.expected_deliveries(), 20u);
  EXPECT_GT(topic.shed(), 0u);
  EXPECT_EQ(topic.delivered() + topic.shed(), 20u);
  EXPECT_EQ(topic.bounced(), 0u);
  EXPECT_EQ(topic.spilled(), 0u);
  EXPECT_TRUE(topic.quiescent());
  EXPECT_EQ(topic.pending(), 0u);
  // Delivered messages kept FIFO order (a strict subsequence of 0..19).
  for (std::size_t i = 1; i < sink.got.size(); ++i) {
    EXPECT_LT(sink.got[i - 1], sink.got[i]);
  }
}

TEST(BoundedTopicTest, BouncePolicyRefusesPublisherRetryably) {
  TopicWorld w;
  msg::Topic<int> topic{w.net, w.main, "updates", Duration::zero()};
  SlowSink sink{w.sim, ms(50)};
  topic.subscribe(w.main, sink.handler());
  QueueBound b;
  b.capacity = 4;
  b.policy = OverflowPolicy::kBounce;
  topic.set_bound(b);

  std::uint64_t bounces = 0;
  w.sim.spawn(publish_burst(topic, w.main, 20, &bounces));
  w.sim.run_until();

  EXPECT_GT(bounces, 0u);
  EXPECT_EQ(topic.bounced(), bounces);
  EXPECT_EQ(topic.publish_attempts(), 20u);
  EXPECT_EQ(topic.published() + topic.bounced(), 20u);
  // Bounced messages were never accepted: everything accepted is delivered.
  EXPECT_EQ(topic.delivered(), topic.published());
  EXPECT_EQ(topic.shed(), 0u);
  EXPECT_TRUE(topic.quiescent());
}

TEST(BoundedTopicTest, LocalOverflowSpillsAndDrainsEverythingInOrder) {
  TopicWorld w;
  msg::Topic<int> topic{w.net, w.main, "updates", Duration::zero()};
  SlowSink sink{w.sim, ms(20)};
  topic.subscribe(w.main, sink.handler());
  QueueBound b;
  b.capacity = 4;
  b.policy = OverflowPolicy::kLocalOverflow;  // unbounded spill
  topic.set_bound(b);

  w.sim.spawn(publish_burst(topic, w.main, 20));
  w.sim.run_until();

  // Nothing lost: the spill absorbed the burst and drained completely.
  EXPECT_EQ(topic.published(), 20u);
  EXPECT_GT(topic.spilled(), 0u);
  EXPECT_EQ(topic.shed(), 0u);
  EXPECT_EQ(topic.delivered(), 20u);
  EXPECT_TRUE(topic.quiescent());
  EXPECT_EQ(topic.spill_depth(), 0u);
  // Spill preserves per-subscriber FIFO exactly: 0..19 in order.
  ASSERT_EQ(sink.got.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(sink.got[i], i);
}

TEST(BoundedTopicTest, FullSpillBufferShedsTerminally) {
  TopicWorld w;
  msg::Topic<int> topic{w.net, w.main, "updates", Duration::zero()};
  SlowSink sink{w.sim, ms(50)};
  topic.subscribe(w.main, sink.handler());
  QueueBound b;
  b.capacity = 2;
  b.policy = OverflowPolicy::kLocalOverflow;
  b.spill_capacity = 3;
  topic.set_bound(b);

  w.sim.spawn(publish_burst(topic, w.main, 30));
  w.sim.run_until();

  EXPECT_GT(topic.spilled(), 0u);
  EXPECT_GT(topic.shed(), 0u);
  EXPECT_EQ(topic.delivered() + topic.shed(), 30u);
  EXPECT_TRUE(topic.quiescent());
}

TEST(BoundedTopicTest, UnboundedTopicCountersStayZero) {
  TopicWorld w;
  msg::Topic<int> topic{w.net, w.main, "updates", Duration::zero()};
  SlowSink sink{w.sim, ms(5)};
  topic.subscribe(w.main, sink.handler());
  w.sim.spawn(publish_burst(topic, w.main, 50));
  w.sim.run_until();
  EXPECT_EQ(topic.shed() + topic.bounced() + topic.spilled(), 0u);
  EXPECT_EQ(topic.credit_stalls(), 0u);
  EXPECT_EQ(topic.delivered(), 50u);
  EXPECT_TRUE(topic.quiescent());
}

// Satellite regression: a subscriber added mid-stream must not make
// quiescent() permanently false. Before per-subscriber expected-delivery
// tracking, `published * subscribers != delivered` undercounted the late
// subscriber's missed history forever.
TEST(BoundedTopicTest, LateSubscriberDoesNotBreakQuiescence) {
  TopicWorld w;
  msg::Topic<int> topic{w.net, w.main, "updates", Duration::zero()};
  SlowSink early{w.sim, Duration::zero()};
  topic.subscribe(w.main, early.handler());

  w.sim.spawn(publish_burst(topic, w.main, 5));
  w.sim.run_until();
  ASSERT_TRUE(topic.quiescent());

  SlowSink late{w.sim, Duration::zero()};
  topic.subscribe(w.edge, late.handler());
  EXPECT_TRUE(topic.quiescent()) << "a fresh subscriber expects nothing";

  w.sim.spawn(publish_burst(topic, w.main, 3));
  w.sim.run_until();
  EXPECT_TRUE(topic.quiescent());
  EXPECT_EQ(early.got.size(), 8u);
  EXPECT_EQ(late.got.size(), 3u) << "only messages published after subscribing";
  EXPECT_EQ(topic.expected_deliveries(), 11u);
  EXPECT_EQ(topic.delivered(), 11u);
}

TEST(BoundedTopicTest, BackpressureClosesAtHighWatermarkAndReopensAtLow) {
  TopicWorld w;
  msg::Topic<int> topic{w.net, w.main, "updates", Duration::zero()};
  SlowSink sink{w.sim, ms(10)};
  topic.subscribe(w.main, sink.handler());
  QueueBound b;
  b.capacity = 8;  // high 6, low 2
  b.policy = OverflowPolicy::kDrop;
  topic.set_bound(b, /*backpressure=*/true);

  // A well-behaved producer: waits for credit before each publish. The
  // gate throttles it to the sink's drain rate, so nothing is ever shed.
  w.sim.spawn([](msg::Topic<int>& t, net::NodeId from) -> Task<void> {
    for (int i = 0; i < 40; ++i) {
      co_await t.credit_wait();
      co_await t.publish(from, i, 64);
    }
  }(topic, w.main));
  w.sim.run_until();

  EXPECT_GT(topic.credit_stalls(), 0u) << "the gate must actually close";
  EXPECT_EQ(topic.shed(), 0u) << "backpressure prevents shedding";
  EXPECT_EQ(topic.delivered(), 40u);
  EXPECT_TRUE(topic.quiescent());
  EXPECT_TRUE(topic.credit_open());
  ASSERT_EQ(sink.got.size(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(sink.got[i], i);
}

TEST(BoundedTopicTest, GateClosesAtHighAndReopensExactlyAtTheLowWatermark) {
  // The boundary cases of the hysteresis comparisons: backlog == high must
  // close the gate (not high + 1), and the drain reaching backlog == low
  // must reopen it (not low - 1). A parked writer records the backlog
  // depth at the moment it resumes.
  TopicWorld w;
  msg::Topic<int> topic{w.net, w.main, "updates", Duration::zero()};
  SlowSink sink{w.sim, ms(10)};
  topic.subscribe(w.main, sink.handler());
  QueueBound b;
  b.capacity = 8;
  b.high_watermark = 5;
  b.low_watermark = 2;
  b.policy = OverflowPolicy::kDrop;
  topic.set_bound(b, /*backpressure=*/true);

  // Loopback publishes complete synchronously; the drain grabs the first
  // message and parks in the slow handler, so after 5 publishes the
  // backlog sits at exactly high - 1.
  w.sim.spawn(publish_burst(topic, w.main, 5));
  EXPECT_TRUE(topic.credit_open()) << "backlog high-1 must leave the gate open";
  w.sim.spawn(publish_burst(topic, w.main, 1));
  EXPECT_FALSE(topic.credit_open()) << "backlog exactly at high must close the gate";

  std::size_t depth_at_resume = 999;
  bool resumed = false;
  w.sim.spawn([](msg::Topic<int>& t, std::size_t& depth, bool& flag) -> Task<void> {
    co_await t.credit_wait();
    depth = t.queue_depth() + t.spill_depth();
    flag = true;
  }(topic, depth_at_resume, resumed));
  EXPECT_FALSE(resumed) << "the writer must park on the closed gate";
  EXPECT_EQ(topic.credit_stalls(), 1u);

  w.sim.run_until();
  EXPECT_TRUE(resumed);
  EXPECT_EQ(depth_at_resume, b.low()) << "the gate reopened before or after the low mark";
  EXPECT_EQ(topic.shed(), 0u);
  EXPECT_EQ(topic.delivered(), 6u);
  EXPECT_TRUE(topic.quiescent());
  EXPECT_TRUE(topic.credit_open());
}

// --- Bounded Coalescer lanes -------------------------------------------------

struct CoalescerWorld {
  Simulator sim{1};
  std::vector<std::pair<std::size_t, int>> flushed;  // (lane, merged sum)
  int fail_next = 0;

  [[nodiscard]] msg::Coalescer<int>::Merge merge() {
    return [](int& into, int&& from) { into += from; };
  }
  [[nodiscard]] msg::Coalescer<int>::Flush flush() {
    return [this](std::size_t lane, int merged) -> Task<void> {
      if (fail_next > 0) {
        --fail_next;
        throw net::NetError("flush failed");
      }
      flushed.emplace_back(lane, merged);
      co_return;
    };
  }
};

TEST(BoundedCoalescerTest, DropPolicyShedsAtCapacity) {
  CoalescerWorld w;
  msg::Coalescer<int> c{w.sim, 1, ms(10), w.merge(), w.flush()};
  QueueBound b;
  b.capacity = 3;
  b.policy = OverflowPolicy::kDrop;
  c.set_bound(b);

  for (int i = 0; i < 5; ++i) c.enqueue(0, 1);
  EXPECT_EQ(c.enqueued(), 3u);
  EXPECT_EQ(c.shed(), 2u);
  EXPECT_EQ(c.lane_depth(0), 3u);
  EXPECT_EQ(c.enqueue_attempts(), 5u);
  w.sim.run_until();
  ASSERT_EQ(w.flushed.size(), 1u);
  EXPECT_EQ(w.flushed[0].second, 3);  // only the accepted items merged
  EXPECT_TRUE(c.idle());
}

TEST(BoundedCoalescerTest, BouncePolicyThrowsToTheWriter) {
  CoalescerWorld w;
  msg::Coalescer<int> c{w.sim, 1, ms(10), w.merge(), w.flush()};
  QueueBound b;
  b.capacity = 2;
  b.policy = OverflowPolicy::kBounce;
  c.set_bound(b);

  c.enqueue(0, 1);
  c.enqueue(0, 1);
  EXPECT_THROW(c.enqueue(0, 1), OverloadError);
  EXPECT_EQ(c.bounced(), 1u);
  EXPECT_EQ(c.enqueue_attempts(), 3u);
  w.sim.run_until();
  EXPECT_EQ(c.total_depth(), 0u);
  // After the flush emptied the lane the writer's retry succeeds.
  c.enqueue(0, 1);
  w.sim.run_until();
  EXPECT_EQ(w.flushed.size(), 2u);
}

TEST(BoundedCoalescerTest, LocalOverflowDrainsAfterSuccessfulFlushWithoutRecount) {
  CoalescerWorld w;
  msg::Coalescer<int> c{w.sim, 1, ms(10), w.merge(), w.flush()};
  QueueBound b;
  b.capacity = 2;
  b.policy = OverflowPolicy::kLocalOverflow;
  c.set_bound(b);

  for (int i = 0; i < 5; ++i) c.enqueue(0, 1);
  EXPECT_EQ(c.enqueued(), 2u);
  EXPECT_EQ(c.spilled(), 3u);
  EXPECT_EQ(c.spill_depth(), 3u);
  w.sim.run_until();
  // Flush 1 carries the 2 accepted items; the 3 spilled items re-enter
  // (capacity-limited: 2 then 1) and flush on later quanta.
  ASSERT_EQ(w.flushed.size(), 3u);
  EXPECT_EQ(w.flushed[0].second + w.flushed[1].second + w.flushed[2].second, 5);
  EXPECT_EQ(c.spill_depth(), 0u);
  EXPECT_TRUE(c.idle());
  // Conservation: drained spill items are NOT recounted as enqueued.
  EXPECT_EQ(c.enqueue_attempts(), 5u);
  EXPECT_EQ(c.enqueued() + c.spilled() + c.shed() + c.bounced(), 5u);
}

TEST(BoundedCoalescerTest, FailedFlushRestoresLaneDepth) {
  CoalescerWorld w;
  msg::Coalescer<int> c{w.sim, 1, ms(10), w.merge(), w.flush()};
  QueueBound b;
  b.capacity = 4;
  b.policy = OverflowPolicy::kDrop;
  c.set_bound(b);
  w.fail_next = 1;

  c.enqueue(0, 1);
  c.enqueue(0, 1);
  w.sim.spawn([](Simulator& sim) -> Task<void> { co_await sim.wait(ms(100)); }(w.sim));
  w.sim.run_until();
  // First flush failed and re-merged; its depth came back (so the bound
  // still sees those items), then the retry flush succeeded.
  EXPECT_EQ(c.flush_failures(), 1u);
  ASSERT_EQ(w.flushed.size(), 1u);
  EXPECT_EQ(w.flushed[0].second, 2);
  EXPECT_EQ(c.total_depth(), 0u);
  EXPECT_TRUE(c.idle());
}

TEST(BoundedCoalescerTest, UnboundedLaneNeverSheds) {
  CoalescerWorld w;
  msg::Coalescer<int> c{w.sim, 2, ms(10), w.merge(), w.flush()};
  for (int i = 0; i < 100; ++i) c.enqueue(i % 2, 1);
  EXPECT_EQ(c.shed() + c.bounced() + c.spilled(), 0u);
  EXPECT_EQ(c.enqueued(), 100u);
  w.sim.run_until();
  EXPECT_TRUE(c.idle());
}

}  // namespace
}  // namespace mutsvc

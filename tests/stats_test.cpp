#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "stats/collector.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "stats/timeseries.hpp"

namespace mutsvc::stats {
namespace {

using sim::ms;
using sim::SimTime;

TEST(SummaryTest, EmptyThrows) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW((void)s.mean(), std::logic_error);
  EXPECT_THROW((void)s.min(), std::logic_error);
  EXPECT_THROW((void)s.percentile(50), std::logic_error);
}

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(SummaryTest, Percentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_THROW((void)s.percentile(101), std::invalid_argument);
}

TEST(SummaryTest, PercentileThenAddStaysCorrect) {
  Summary s;
  s.add(5.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.0);
  s.add(9.0);  // must re-sort lazily after new sample
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
}

TEST(SummaryTest, MergeCombines) {
  Summary a, b;
  a.add(1.0);
  a.add(2.0);
  b.add(3.0);
  b.add(4.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
}

TEST(SummaryTest, Ci95ShrinksWithSamples) {
  Summary small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 2 == 0 ? 1.0 : 3.0);
  for (int i = 0; i < 1000; ++i) large.add(i % 2 == 0 ? 1.0 : 3.0);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(SummaryTest, ClearResets) {
  Summary s;
  s.add(1.0);
  s.clear();
  EXPECT_TRUE(s.empty());
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 10.0);
  EXPECT_DOUBLE_EQ(s.min(), 10.0);
}

TEST(CollectorTest, WarmupSamplesDiscarded) {
  ResponseTimeCollector c{sim::sec(60)};
  c.record(SimTime::origin() + sim::sec(30), "Item", "Browser", ClientGroup::kLocal, ms(50));
  c.record(SimTime::origin() + sim::sec(90), "Item", "Browser", ClientGroup::kLocal, ms(70));
  EXPECT_EQ(c.discarded_samples(), 1u);
  EXPECT_DOUBLE_EQ(c.page_mean_ms("Browser", "Item", ClientGroup::kLocal), 70.0);
}

TEST(CollectorTest, GroupsAreSeparate) {
  ResponseTimeCollector c;
  c.record(SimTime::origin(), "Item", "Browser", ClientGroup::kLocal, ms(50));
  c.record(SimTime::origin(), "Item", "Browser", ClientGroup::kRemote, ms(450));
  EXPECT_DOUBLE_EQ(c.page_mean_ms("Browser", "Item", ClientGroup::kLocal), 50.0);
  EXPECT_DOUBLE_EQ(c.page_mean_ms("Browser", "Item", ClientGroup::kRemote), 450.0);
}

TEST(CollectorTest, PatternAggregationSpansPages) {
  ResponseTimeCollector c;
  c.record(SimTime::origin(), "Main", "Browser", ClientGroup::kLocal, ms(10));
  c.record(SimTime::origin(), "Item", "Browser", ClientGroup::kLocal, ms(30));
  EXPECT_DOUBLE_EQ(c.pattern_mean_ms("Browser", ClientGroup::kLocal), 20.0);
}

TEST(CollectorTest, MissingCellIsNegative) {
  ResponseTimeCollector c;
  EXPECT_DOUBLE_EQ(c.page_mean_ms("Browser", "Nope", ClientGroup::kLocal), -1.0);
  EXPECT_EQ(c.page_summary("Browser", "Nope", ClientGroup::kLocal), nullptr);
}

TEST(CollectorTest, TotalSamplesCount) {
  ResponseTimeCollector c;
  for (int i = 0; i < 5; ++i) {
    c.record(SimTime::origin(), "P", "Browser", ClientGroup::kLocal, ms(1));
  }
  EXPECT_EQ(c.total_samples(), 5u);
}

TEST(TimeSeriesTest, WindowsBucketByTime) {
  TimeSeries ts{sim::sec(60)};
  ts.add(SimTime::origin() + sim::sec(10), 100.0);
  ts.add(SimTime::origin() + sim::sec(50), 200.0);
  ts.add(SimTime::origin() + sim::sec(70), 300.0);
  ts.add(SimTime::origin() + sim::sec(200), 400.0);
  ASSERT_EQ(ts.window_count(), 4u);
  EXPECT_DOUBLE_EQ(ts.window(0).mean(), 150.0);
  EXPECT_DOUBLE_EQ(ts.window(1).mean(), 300.0);
  EXPECT_TRUE(ts.window(2).empty());
  EXPECT_DOUBLE_EQ(ts.window(3).mean(), 400.0);
  EXPECT_EQ(ts.window_start(3), SimTime::origin() + sim::sec(180));
}

TEST(TimeSeriesTest, MeansAndCountsHandleEmptyWindows) {
  TimeSeries ts{sim::sec(10)};
  ts.add(SimTime::origin() + sim::sec(25), 5.0);
  auto means = ts.window_means(-1.0);
  ASSERT_EQ(means.size(), 3u);
  EXPECT_DOUBLE_EQ(means[0], -1.0);
  EXPECT_DOUBLE_EQ(means[2], 5.0);
  auto counts = ts.window_counts();
  EXPECT_EQ(counts[2], 1u);
}

TEST(TimeSeriesTest, RejectsBadInput) {
  EXPECT_THROW(TimeSeries{sim::Duration::zero()}, std::invalid_argument);
  TimeSeries ts{sim::sec(1)};
  EXPECT_THROW(ts.add(SimTime::origin() - sim::sec(1), 1.0), std::invalid_argument);
}

TEST(SummaryTest, PercentileNearestRankEdges) {
  // Nearest-rank: rank = ceil(p/100 * n), clamped to [1, n]. A single
  // sample answers every percentile, including the p=0 and p=100 edges.
  Summary one;
  one.add(42.0);
  EXPECT_DOUBLE_EQ(one.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(one.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(one.percentile(100), 42.0);
  EXPECT_THROW((void)one.percentile(-1), std::invalid_argument);
  EXPECT_THROW((void)one.percentile(100.0001), std::invalid_argument);

  Summary two;
  two.add(1.0);
  two.add(2.0);
  EXPECT_DOUBLE_EQ(two.percentile(0), 1.0);    // rank 0 clamps to the minimum
  EXPECT_DOUBLE_EQ(two.percentile(50), 1.0);   // ceil(0.5*2)=1
  EXPECT_DOUBLE_EQ(two.percentile(51), 2.0);   // ceil(1.02)=2
  EXPECT_DOUBLE_EQ(two.percentile(100), 2.0);
}

TEST(TimeSeriesTest, WindowEdgeSamplesBucketRight) {
  // A sample exactly on a window boundary belongs to the window it opens
  // (index = micros / width), and a zero-time sample lands in window 0.
  TimeSeries ts{sim::sec(10)};
  ts.add(SimTime::origin(), 1.0);                         // t=0 -> window 0
  ts.add(SimTime::origin() + sim::sec(10), 2.0);          // exact edge -> window 1
  ts.add(SimTime::origin() + sim::sec(10) - sim::us(1), 3.0);  // just inside -> window 0
  ASSERT_EQ(ts.window_count(), 2u);
  EXPECT_EQ(ts.window(0).count(), 2u);
  EXPECT_DOUBLE_EQ(ts.window(0).mean(), 2.0);
  EXPECT_EQ(ts.window(1).count(), 1u);
  EXPECT_DOUBLE_EQ(ts.window(1).mean(), 2.0);
  EXPECT_EQ(ts.window_start(1), SimTime::origin() + sim::sec(10));
}

TEST(TimeSeriesTest, NegativeWindowThrows) {
  EXPECT_THROW(TimeSeries{sim::sec(-1)}, std::invalid_argument);
}

TEST(CollectorTest, ObserverSeesPostWarmupSamplesOnly) {
  ResponseTimeCollector c{sim::sec(60)};
  std::vector<double> seen;
  c.set_observer([&seen](double v) { seen.push_back(v); });
  c.record(SimTime::origin() + sim::sec(30), "P", "Browser", ClientGroup::kLocal, ms(50));
  c.record(SimTime::origin() + sim::sec(90), "P", "Browser", ClientGroup::kLocal, ms(70));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_DOUBLE_EQ(seen[0], 70.0);
}

TEST(CollectorTest, TimeSeriesDisabledByDefaultEnabledOnDemand) {
  ResponseTimeCollector c;
  c.record(SimTime::origin(), "P", "Browser", ClientGroup::kRemote, ms(10));
  EXPECT_EQ(c.timeseries(ClientGroup::kRemote), nullptr);

  ResponseTimeCollector with_series;
  with_series.enable_timeseries(sim::sec(60));
  with_series.record(SimTime::origin() + sim::sec(30), "P", "Browser", ClientGroup::kRemote,
                     ms(10));
  with_series.record(SimTime::origin() + sim::sec(90), "P", "Browser", ClientGroup::kRemote,
                     ms(30));
  const TimeSeries* ts = with_series.timeseries(ClientGroup::kRemote);
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->window_count(), 2u);
  EXPECT_DOUBLE_EQ(ts->window(1).mean(), 30.0);
  EXPECT_EQ(with_series.timeseries(ClientGroup::kLocal), nullptr);
}

TEST(TextTableTest, CellFormatting) {
  EXPECT_EQ(TextTable::cell_ms(87.4), "87");
  EXPECT_EQ(TextTable::cell_ms(87.6), "88");
  EXPECT_EQ(TextTable::cell_ms(-1.0), "-");
  EXPECT_EQ(TextTable::cell_fixed(3.14159, 2), "3.14");
}

TEST(TextTableTest, PrintAlignsColumns) {
  TextTable t{{"Page", "Local", "Remote"}};
  t.add_row({"Main", "87", "488"});
  t.add_row({"Category", "95", "492"});
  std::ostringstream os;
  t.print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("Page"), std::string::npos);
  EXPECT_NE(out.find("Category | 95    | 492"), std::string::npos);
}

}  // namespace
}  // namespace mutsvc::stats

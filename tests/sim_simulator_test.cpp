#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/future.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"

namespace mutsvc::sim {
namespace {

TEST(SimulatorTest, StartsAtOrigin) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::origin());
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(ms(30), [&] { order.push_back(3); });
  sim.schedule_after(ms(10), [&] { order.push_back(1); });
  sim.schedule_after(ms(20), [&] { order.push_back(2); });
  sim.run_until();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::origin() + ms(30));
}

TEST(SimulatorTest, SameTimeEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(ms(5), [&order, i] { order.push_back(i); });
  }
  sim.run_until();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(ms(10), [&] { ++fired; });
  sim.schedule_after(ms(50), [&] { ++fired; });
  sim.run_until(SimTime::origin() + ms(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::origin() + ms(20));
  sim.run_until();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventInPastClampsToNow) {
  Simulator sim;
  sim.schedule_after(ms(10), [&] {
    // From inside an event at t=10, scheduling "at t=0" must fire at t=10.
    sim.schedule_at(SimTime::origin(), [] {});
  });
  sim.run_until();
  EXPECT_EQ(sim.now(), SimTime::origin() + ms(10));
  EXPECT_EQ(sim.executed_events(), 2u);
}

TEST(SimulatorTest, HandlerCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.schedule_after(ms(1), chain);
  };
  sim.schedule_after(ms(1), chain);
  sim.run_until();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), SimTime::origin() + ms(5));
}

// --- coroutines ------------------------------------------------------------

[[nodiscard]] Task<void> wait_twice(Simulator& sim, std::vector<double>& log) {
  co_await sim.wait(ms(10));
  log.push_back(sim.now().as_millis());
  co_await sim.wait(ms(15));
  log.push_back(sim.now().as_millis());
}

TEST(CoroutineTest, SpawnedTaskAdvancesThroughWaits) {
  Simulator sim;
  std::vector<double> log;
  sim.spawn(wait_twice(sim, log));
  sim.run_until();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_DOUBLE_EQ(log[0], 10.0);
  EXPECT_DOUBLE_EQ(log[1], 25.0);
}

[[nodiscard]] Task<int> returns_value(Simulator& sim) {
  co_await sim.wait(ms(1));
  co_return 42;
}

[[nodiscard]] Task<void> awaits_child(Simulator& sim, int& out) {
  out = co_await returns_value(sim);
}

TEST(CoroutineTest, ChildTaskReturnValue) {
  Simulator sim;
  int out = 0;
  sim.spawn(awaits_child(sim, out));
  sim.run_until();
  EXPECT_EQ(out, 42);
}

[[nodiscard]] Task<int> deep(Simulator& sim, int depth) {
  if (depth == 0) co_return 1;
  co_await sim.wait(us(1));
  int sub = co_await deep(sim, depth - 1);
  co_return sub + 1;
}

TEST(CoroutineTest, DeeplyNestedTasks) {
  Simulator sim;
  int out = 0;
  sim.spawn([](Simulator& s, int& o) -> Task<void> { o = co_await deep(s, 100); }(sim, out));
  sim.run_until();
  EXPECT_EQ(out, 101);
  EXPECT_EQ(sim.now(), SimTime::origin() + us(100));
}

[[nodiscard]] Task<void> throws_after_wait(Simulator& sim) {
  co_await sim.wait(ms(1));
  throw std::runtime_error("boom");
}

[[nodiscard]] Task<void> catches_child(Simulator& sim, std::string& msg) {
  try {
    co_await throws_after_wait(sim);
  } catch (const std::runtime_error& e) {
    msg = e.what();
  }
}

TEST(CoroutineTest, ExceptionsPropagateToAwaiter) {
  Simulator sim;
  std::string msg;
  sim.spawn(catches_child(sim, msg));
  sim.run_until();
  EXPECT_EQ(msg, "boom");
}

TEST(CoroutineTest, ManyConcurrentTasksInterleaveDeterministically) {
  Simulator sim;
  std::vector<int> completions;
  for (int i = 0; i < 50; ++i) {
    sim.spawn([](Simulator& s, std::vector<int>& out, int id) -> Task<void> {
      // Task id waits id+1 ms, so completion order equals id order.
      co_await s.wait(ms(id + 1));
      out.push_back(id);
    }(sim, completions, i));
  }
  sim.run_until();
  ASSERT_EQ(completions.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(completions[static_cast<std::size_t>(i)], i);
}

// --- futures ---------------------------------------------------------------

TEST(FutureTest, AwaitAlreadyResolved) {
  Simulator sim;
  Promise<int> p{sim};
  p.set_value(7);
  int out = 0;
  sim.spawn([](Promise<int> p, int& o) -> Task<void> { o = co_await p.future(); }(p, out));
  sim.run_until();
  EXPECT_EQ(out, 7);
}

TEST(FutureTest, MultipleWaitersAllWake) {
  Simulator sim;
  Promise<int> p{sim};
  std::vector<int> got;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Promise<int> p, std::vector<int>& g) -> Task<void> {
      g.push_back(co_await p.future());
    }(p, got));
  }
  sim.schedule_after(ms(5), [&] { p.set_value(9); });
  sim.run_until();
  EXPECT_EQ(got, (std::vector<int>{9, 9, 9}));
  EXPECT_EQ(sim.now(), SimTime::origin() + ms(5));
}

TEST(FutureTest, DoubleFulfilThrows) {
  Simulator sim;
  Promise<int> p{sim};
  p.set_value(1);
  EXPECT_THROW(p.set_value(2), std::logic_error);
}

TEST(FutureTest, ExceptionDelivery) {
  Simulator sim;
  Promise<int> p{sim};
  std::string msg;
  sim.spawn([](Promise<int> p, std::string& m) -> Task<void> {
    try {
      (void)co_await p.future();
    } catch (const std::runtime_error& e) {
      m = e.what();
    }
  }(p, msg));
  sim.schedule_after(ms(1), [&] {
    p.set_exception(std::make_exception_ptr(std::runtime_error("bad")));
  });
  sim.run_until();
  EXPECT_EQ(msg, "bad");
}

TEST(SignalTest, FireWakesWaitersOnceIdempotently) {
  Simulator sim;
  Signal sig{sim};
  int woke = 0;
  for (int i = 0; i < 2; ++i) {
    sim.spawn([](Signal& s, int& w) -> Task<void> {
      co_await s.wait();
      ++w;
    }(sig, woke));
  }
  sim.schedule_after(ms(2), [&] {
    sig.fire();
    sig.fire();  // second fire is a no-op
  });
  sim.run_until();
  EXPECT_EQ(woke, 2);
  EXPECT_TRUE(sig.fired());
}

// --- resources ---------------------------------------------------------------

TEST(FifoResourceTest, SingleServerSerializes) {
  Simulator sim;
  FifoResource cpu{sim, 1};
  std::vector<double> done;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Simulator& s, FifoResource& r, std::vector<double>& d) -> Task<void> {
      co_await r.consume(ms(10));
      d.push_back(s.now().as_millis());
    }(sim, cpu, done));
  }
  sim.run_until();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_DOUBLE_EQ(done[0], 10.0);
  EXPECT_DOUBLE_EQ(done[1], 20.0);
  EXPECT_DOUBLE_EQ(done[2], 30.0);
}

TEST(FifoResourceTest, TwoServersRunInParallel) {
  Simulator sim;
  FifoResource cpu{sim, 2};
  std::vector<double> done;
  for (int i = 0; i < 4; ++i) {
    sim.spawn([](Simulator& s, FifoResource& r, std::vector<double>& d) -> Task<void> {
      co_await r.consume(ms(10));
      d.push_back(s.now().as_millis());
    }(sim, cpu, done));
  }
  sim.run_until();
  ASSERT_EQ(done.size(), 4u);
  EXPECT_DOUBLE_EQ(done[0], 10.0);
  EXPECT_DOUBLE_EQ(done[1], 10.0);
  EXPECT_DOUBLE_EQ(done[2], 20.0);
  EXPECT_DOUBLE_EQ(done[3], 20.0);
}

TEST(FifoResourceTest, ReleaseWithoutAcquireThrows) {
  Simulator sim;
  FifoResource cpu{sim, 1};
  EXPECT_THROW(cpu.release(), std::logic_error);
}

TEST(FifoResourceTest, ZeroServersRejected) {
  Simulator sim;
  EXPECT_THROW(FifoResource(sim, 0), std::invalid_argument);
}

TEST(FifoResourceTest, UtilizationTracksBusyFraction) {
  Simulator sim;
  FifoResource cpu{sim, 2};
  sim.spawn([](FifoResource& r) -> Task<void> { co_await r.consume(ms(50)); }(cpu));
  sim.run_for(ms(100));
  // One of two servers busy for 50 of 100 ms -> 25% mean utilization.
  EXPECT_NEAR(cpu.utilization(), 0.25, 0.01);
}

TEST(FifoResourceTest, UtilizationResetsWindow) {
  Simulator sim;
  FifoResource cpu{sim, 1};
  sim.spawn([](FifoResource& r) -> Task<void> { co_await r.consume(ms(50)); }(cpu));
  sim.run_for(ms(50));
  cpu.reset_utilization();
  sim.run_for(ms(50));
  EXPECT_NEAR(cpu.utilization(), 0.0, 1e-9);
}

TEST(SimMutexTest, MutualExclusionFifo) {
  Simulator sim;
  SimMutex m{sim};
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Simulator& s, SimMutex& m, std::vector<int>& o, int id) -> Task<void> {
      co_await m.acquire();
      o.push_back(id);
      co_await s.wait(ms(5));
      m.release();
    }(sim, m, order, i));
  }
  sim.run_until();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_FALSE(m.locked());
  EXPECT_EQ(sim.now(), SimTime::origin() + ms(15));
}

}  // namespace
}  // namespace mutsvc::sim

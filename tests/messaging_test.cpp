#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "messaging/topic.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace mutsvc::msg {
namespace {

using sim::Duration;
using sim::ms;
using sim::Simulator;
using sim::Task;

struct TopicWorld {
  Simulator sim{1};
  net::Topology topo{sim};
  net::NodeId main, edge1, edge2;
  net::Network net{sim, topo, Duration::zero()};

  TopicWorld() {
    main = topo.add_node("main", net::NodeRole::kAppServer);
    edge1 = topo.add_node("edge1", net::NodeRole::kAppServer);
    edge2 = topo.add_node("edge2", net::NodeRole::kAppServer);
    topo.add_link(main, edge1, ms(100), 100e6);
    topo.add_link(main, edge2, ms(100), 100e6);
  }
};

TEST(TopicTest, PublishDeliversToAllSubscribers) {
  TopicWorld w;
  Topic<int> topic{w.net, w.main, "updates", Duration::zero()};
  std::vector<std::pair<net::NodeId, int>> received;
  for (net::NodeId n : {w.edge1, w.edge2}) {
    topic.subscribe(n, [&received, n](const int& v) -> Task<void> {
      received.emplace_back(n, v);
      co_return;
    });
  }
  w.sim.spawn([](Topic<int>& t, TopicWorld& w) -> Task<void> {
    co_await t.publish(w.main, 42, 128);
  }(topic, w));
  w.sim.run_until();
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0].second, 42);
  EXPECT_EQ(received[1].second, 42);
  EXPECT_TRUE(topic.quiescent());
}

TEST(TopicTest, PublisherDoesNotWaitForSubscribers) {
  TopicWorld w;
  Topic<int> topic{w.net, w.main, "updates", Duration::zero()};
  topic.subscribe(w.edge1, [](const int&) -> Task<void> { co_return; });
  sim::SimTime published_at;
  w.sim.spawn([](Topic<int>& t, TopicWorld& w, sim::SimTime& at) -> Task<void> {
    co_await t.publish(w.main, 1, 128);
    at = w.sim.now();
  }(topic, w, published_at));
  w.sim.run_until();
  // Publisher completes at the provider (co-located, instant); delivery to
  // the edge takes the 100ms WAN hop afterwards.
  EXPECT_LT(published_at.as_millis(), 1.0);
  EXPECT_GE(w.sim.now().as_millis(), 100.0);
}

TEST(TopicTest, PerSubscriberFifoOrdering) {
  TopicWorld w;
  Topic<int> topic{w.net, w.main, "updates", Duration::zero()};
  std::vector<int> got;
  topic.subscribe(w.edge1, [&got](const int& v) -> Task<void> {
    got.push_back(v);
    co_return;
  });
  w.sim.spawn([](Topic<int>& t, TopicWorld& w) -> Task<void> {
    for (int i = 0; i < 5; ++i) co_await t.publish(w.main, i, 64);
  }(topic, w));
  w.sim.run_until();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TopicTest, RemotePublisherPaysPathToProvider) {
  TopicWorld w;
  Topic<int> topic{w.net, w.main, "updates", Duration::zero()};
  topic.subscribe(w.edge2, [](const int&) -> Task<void> { co_return; });
  sim::SimTime published_at;
  w.sim.spawn([](Topic<int>& t, TopicWorld& w, sim::SimTime& at) -> Task<void> {
    co_await t.publish(w.edge1, 1, 128);  // publisher across the WAN
    at = w.sim.now();
  }(topic, w, published_at));
  w.sim.run_until();
  EXPECT_NEAR(published_at.as_millis(), 100.0, 1.0);
}

TEST(TopicTest, SubscriberDelayDoesNotBlockOtherSubscribers) {
  TopicWorld w;
  Topic<int> topic{w.net, w.main, "updates", Duration::zero()};
  std::vector<std::pair<double, net::NodeId>> done;
  topic.subscribe(w.edge1, [&](const int&) -> Task<void> {
    co_await w.sim.wait(ms(500));  // slow consumer
    done.emplace_back(w.sim.now().as_millis(), w.edge1);
  });
  topic.subscribe(w.edge2, [&](const int&) -> Task<void> {
    done.emplace_back(w.sim.now().as_millis(), w.edge2);
    co_return;
  });
  w.sim.spawn([](Topic<int>& t, TopicWorld& w) -> Task<void> {
    co_await t.publish(w.main, 7, 64);
  }(topic, w));
  w.sim.run_until();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].second, w.edge2);  // fast edge finishes first
  EXPECT_NEAR(done[0].first, 100.0, 1.0);
  EXPECT_NEAR(done[1].first, 600.0, 1.0);
}

TEST(TopicTest, MdbDispatchDelayApplied) {
  TopicWorld w;
  Topic<int> topic{w.net, w.main, "updates", ms(5)};
  double handled_at = 0.0;
  topic.subscribe(w.edge1, [&](const int&) -> Task<void> {
    handled_at = w.sim.now().as_millis();
    co_return;
  });
  w.sim.spawn([](Topic<int>& t, TopicWorld& w) -> Task<void> {
    co_await t.publish(w.main, 1, 64);
  }(topic, w));
  w.sim.run_until();
  EXPECT_NEAR(handled_at, 105.0, 1.0);
}

TEST(TopicTest, CountersAndQuiescence) {
  TopicWorld w;
  Topic<std::string> topic{w.net, w.main, "updates", Duration::zero()};
  topic.subscribe(w.edge1, [](const std::string&) -> Task<void> { co_return; });
  topic.subscribe(w.edge2, [](const std::string&) -> Task<void> { co_return; });
  w.sim.spawn([](Topic<std::string>& t, TopicWorld& w) -> Task<void> {
    co_await t.publish(w.main, std::string{"a"}, 64);
    co_await t.publish(w.main, std::string{"b"}, 64);
  }(topic, w));
  w.sim.run_until();
  EXPECT_EQ(topic.published(), 2u);
  EXPECT_EQ(topic.delivered(), 4u);
  EXPECT_TRUE(topic.quiescent());
}

TEST(TopicTest, NoSubscribersIsFine) {
  TopicWorld w;
  Topic<int> topic{w.net, w.main, "updates"};
  w.sim.spawn([](Topic<int>& t, TopicWorld& w) -> Task<void> {
    co_await t.publish(w.main, 1, 64);
  }(topic, w));
  w.sim.run_until();
  EXPECT_EQ(topic.published(), 1u);
  EXPECT_TRUE(topic.quiescent());
}

}  // namespace
}  // namespace mutsvc::msg

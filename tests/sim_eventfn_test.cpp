// EventFn (the event loop's small-buffer callable) and the simulator's
// slab/freelist event storage built on top of it.
#include <gtest/gtest.h>

#include <array>
#include <coroutine>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace {

using namespace mutsvc;

TEST(EventFn, DefaultIsEmpty) {
  sim::EventFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(EventFn, SmallCaptureStaysInline) {
  int hits = 0;
  sim::EventFn fn([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_FALSE(fn.spilled());
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(EventFn, CaptureAtTheInlineBoundaryStaysInline) {
  std::array<std::byte, sim::EventFn::kInlineBytes - sizeof(int*)> pad{};
  int hits = 0;
  int* p = &hits;
  sim::EventFn fn([pad, p] {
    (void)pad;
    ++*p;
  });
  EXPECT_FALSE(fn.spilled());
  fn();
  EXPECT_EQ(hits, 1);
}

TEST(EventFn, LargeCaptureSpillsAndStillRuns) {
  std::array<std::uint64_t, 16> big{};  // 128 bytes > kInlineBytes
  big[0] = 7;
  std::uint64_t out = 0;
  sim::EventFn fn([big, &out] { out = big[0]; });
  EXPECT_TRUE(fn.spilled());
  fn();
  EXPECT_EQ(out, 7u);
}

TEST(EventFn, MoveOnlyCapturesWork) {
  auto owned = std::make_unique<int>(41);
  sim::EventFn fn([p = std::move(owned)] { ++*p; });
  EXPECT_FALSE(fn.spilled());
  fn();  // no observable side effect needed; must not crash or double-free
}

TEST(EventFn, MoveTransfersTheCallable) {
  int hits = 0;
  sim::EventFn a([&hits] { ++hits; });
  sim::EventFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move): asserting moved-from state
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  sim::EventFn c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
  c();
  EXPECT_EQ(hits, 2);
}

TEST(EventFn, MoveAssignDestroysThePreviousCallable) {
  auto counter = std::make_shared<int>(0);
  struct Bump {
    std::shared_ptr<int> n;
    void operator()() const { ++*n; }
  };
  sim::EventFn a(Bump{counter});
  EXPECT_EQ(counter.use_count(), 2);
  a = sim::EventFn([] {});
  EXPECT_EQ(counter.use_count(), 1);  // old callable released on assignment
}

TEST(EventFn, DestructorReleasesSpilledCallable) {
  auto counter = std::make_shared<int>(0);
  struct FatBump {
    std::shared_ptr<int> n;
    std::array<std::uint64_t, 16> pad{};
    void operator()() const { ++*n; }
  };
  {
    sim::EventFn fn(FatBump{counter, {}});
    EXPECT_TRUE(fn.spilled());
    EXPECT_EQ(counter.use_count(), 2);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

// --- slab slot recycling through the simulator -------------------------------

TEST(EventSlab, SlotsAreRecycledAcrossRuns) {
  sim::Simulator s(1);
  int hits = 0;
  // Two waves of events; the second wave reuses the first wave's slots, so
  // pending storage never exceeds the high-water mark of one wave.
  for (int wave = 0; wave < 2; ++wave) {
    for (int i = 0; i < 100; ++i) {
      s.schedule_after(sim::us(i + 1), [&hits] { ++hits; });
    }
    s.run_until(s.now() + sim::ms(1));
    EXPECT_EQ(s.pending_events(), 0u);
  }
  EXPECT_EQ(hits, 200);
}

TEST(EventSlab, FifoTieBreakSurvivesRecycling) {
  sim::Simulator s(1);
  std::vector<int> order;
  // Same-timestamp events must run in scheduling order even after the slab
  // has recycled slots (freelist reuse must not perturb the (time, seq)
  // ordering).
  s.schedule_after(sim::us(1), [&] { order.push_back(0); });
  s.run_until(s.now() + sim::us(2));
  for (int i = 1; i <= 5; ++i) {
    s.schedule_after(sim::us(1), [&order, i] { order.push_back(i); });
  }
  s.run_until(s.now() + sim::us(2));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

[[nodiscard]] sim::Task<void> pinger(sim::Simulator& s, int& count) {
  for (int i = 0; i < 1000; ++i) co_await s.wait(sim::us(10));
  ++count;
}

TEST(EventSlab, CoroutineResumePathIsInlineAndDeterministic) {
  // The canonical hot path: Simulator::wait's resume lambda must fit the
  // inline buffer (that is EventFn's whole reason to exist).
  struct Probe {
    std::coroutine_handle<> h;
  };
  static_assert(sizeof(Probe) <= sim::EventFn::kInlineBytes,
                "coroutine resume capture must stay inline");

  std::uint64_t events_a = 0, events_b = 0;
  for (std::uint64_t* events : {&events_a, &events_b}) {
    sim::Simulator s(7);
    int done = 0;
    for (int i = 0; i < 4; ++i) s.spawn(pinger(s, done));
    s.run_until(sim::SimTime::origin() + sim::sec(1));
    EXPECT_EQ(done, 4);
    *events = s.executed_events();
  }
  EXPECT_EQ(events_a, events_b);
}

}  // namespace

// Failure injection and the relaxed-consistency extension: link/node
// failures, entry-point failover, JMS redelivery, version-monotonic cache
// fills, and the TACT-style staleness bound.
#include <gtest/gtest.h>

#include "apps/rubis/rubis.hpp"
#include "cache/read_only_cache.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "messaging/topic.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace mutsvc {
namespace {

using sim::Duration;
using sim::ms;
using sim::sec;
using sim::Simulator;
using sim::Task;

// --- topology failure primitives ----------------------------------------------

struct FailWorld {
  Simulator sim{1};
  net::Topology topo{sim};
  net::NodeId a, r, b;
  net::Network net{sim, topo, Duration::zero()};

  FailWorld() {
    a = topo.add_node("a", net::NodeRole::kAppServer);
    r = topo.add_node("r", net::NodeRole::kRouter);
    b = topo.add_node("b", net::NodeRole::kAppServer);
    topo.add_link(a, r, ms(10));
    topo.add_link(r, b, ms(10));
  }
};

TEST(FailureTest, LinkDownBreaksRoute) {
  FailWorld w;
  EXPECT_TRUE(w.topo.reachable(w.a, w.b));
  w.topo.set_link_state(w.r, w.b, false);
  EXPECT_FALSE(w.topo.reachable(w.a, w.b));
  EXPECT_TRUE(w.topo.reachable(w.a, w.r));
  EXPECT_THROW((void)w.topo.path(w.a, w.b), net::NoRouteError);
}

TEST(FailureTest, LinkRecoveryRestoresRoute) {
  FailWorld w;
  w.topo.set_link_state(w.r, w.b, false);
  w.topo.set_link_state(w.r, w.b, true);
  EXPECT_TRUE(w.topo.reachable(w.a, w.b));
  EXPECT_NEAR(w.topo.path_latency(w.a, w.b).as_millis(), 20.0, 0.01);
}

TEST(FailureTest, AlternatePathUsedWhenPrimaryDown) {
  FailWorld w;
  // Add a slower bypass a—b.
  w.topo.add_link(w.a, w.b, ms(50));
  EXPECT_NEAR(w.topo.path_latency(w.a, w.b).as_millis(), 20.0, 0.01);
  w.topo.set_link_state(w.a, w.r, false);
  EXPECT_NEAR(w.topo.path_latency(w.a, w.b).as_millis(), 50.0, 0.01);
}

TEST(FailureTest, NodeDownIsolatesIt) {
  FailWorld w;
  w.topo.set_node_state(w.r, false);
  EXPECT_FALSE(w.topo.reachable(w.a, w.b));
  EXPECT_FALSE(w.topo.reachable(w.a, w.r));
  w.topo.set_node_state(w.r, true);
  EXPECT_TRUE(w.topo.reachable(w.a, w.b));
}

TEST(FailureTest, SetStateOnMissingLinkThrows) {
  FailWorld w;
  EXPECT_THROW(w.topo.set_link_state(w.a, w.b, false), std::invalid_argument);
}

TEST(FailureTest, DeliverToPartitionedNodeThrows) {
  FailWorld w;
  w.topo.set_node_state(w.b, false);
  bool threw = false;
  w.sim.spawn([](FailWorld& w, bool& threw) -> Task<void> {
    try {
      co_await w.net.deliver(w.a, w.b, 100);
    } catch (const net::NoRouteError&) {
      threw = true;
    }
  }(w, threw));
  w.sim.run_until();
  EXPECT_TRUE(threw);
}

// --- JMS redelivery ---------------------------------------------------------------

TEST(FailureTest, TopicRedeliversAfterPartitionHeals) {
  FailWorld w;
  msg::Topic<int> topic{w.net, w.a, "updates", Duration::zero()};
  topic.set_retry_interval(ms(100));
  int received = 0;
  topic.subscribe(w.b, [&received](const int&) -> Task<void> {
    ++received;
    co_return;
  });

  w.topo.set_node_state(w.b, false);
  w.sim.spawn([](msg::Topic<int>& t, FailWorld& w) -> Task<void> {
    co_await t.publish(w.a, 1, 64);
  }(topic, w));
  w.sim.schedule_after(ms(450), [&] { w.topo.set_node_state(w.b, true); });
  w.sim.run_until();

  EXPECT_EQ(received, 1);
  EXPECT_GE(topic.delivery_retries(), 3u);
  EXPECT_TRUE(topic.quiescent());
}

// --- version-monotonic cache fills ---------------------------------------------------

TEST(CacheRaceTest, StalePullCannotClobberNewerPush) {
  cache::ReadOnlyCache c{"Item"};
  c.apply_push(1, db::Row{std::int64_t{1}, std::int64_t{99}}, /*version=*/5);
  // A pull refresh that started before the write commits arrives late with
  // version 4: it must be rejected.
  c.fill(1, db::Row{std::int64_t{1}, std::int64_t{11}}, /*version=*/4);
  auto entry = c.get(1);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(db::as_int(entry->row[1]), 99);
  EXPECT_EQ(c.stale_fills_rejected(), 1u);
}

TEST(CacheRaceTest, QueryCacheFillIsVersionMonotonic) {
  cache::QueryCache qc;
  qc.apply_push("k", {db::Row{std::int64_t{2}}}, 7);
  qc.fill("k", {db::Row{std::int64_t{1}}}, 3);
  auto entry = qc.get("k");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->version, 7u);
}

// --- end-to-end failover --------------------------------------------------------------

core::ExperimentSpec failover_spec(bool enabled) {
  core::ExperimentSpec spec;
  spec.level = core::ConfigLevel::kAsyncUpdates;
  spec.duration = sec(600);
  spec.warmup = sec(60);
  spec.failover_enabled = enabled;
  spec.failover_timeout = sec(2);
  return spec;
}

TEST(FailoverTest, EdgeCrashFailsOverToMainWithoutLosingRequests) {
  apps::rubis::RubisApp app;
  core::Experiment exp{app.driver(), failover_spec(true), core::rubis_calibration()};
  net::Topology& topo = exp.network().topology();
  const net::NodeId edge = exp.nodes().edge_servers[0];
  exp.simulator().schedule_at(sim::SimTime::origin() + sec(200),
                              [&topo, edge] { topo.set_node_state(edge, false); });
  exp.simulator().schedule_at(sim::SimTime::origin() + sec(400),
                              [&topo, edge] { topo.set_node_state(edge, true); });
  exp.run();

  EXPECT_GT(exp.failovers(), 100u);       // the affected group kept being served
  EXPECT_EQ(exp.dropped_requests(), 0u);  // nothing lost
  // The failed-over requests pay the connect timeout + WAN path, so the
  // remote mean sits well above the healthy async level but stays bounded.
  const double remote = exp.results().pattern_mean_ms("Browser", stats::ClientGroup::kRemote);
  EXPECT_GT(remote, 50.0);
  EXPECT_LT(remote, 2000.0);
}

TEST(FailoverTest, WithoutFailoverRequestsAreDropped) {
  apps::rubis::RubisApp app;
  core::Experiment exp{app.driver(), failover_spec(false), core::rubis_calibration()};
  net::Topology& topo = exp.network().topology();
  const net::NodeId edge = exp.nodes().edge_servers[0];
  exp.simulator().schedule_at(sim::SimTime::origin() + sec(200),
                              [&topo, edge] { topo.set_node_state(edge, false); });
  exp.run();
  EXPECT_EQ(exp.failovers(), 0u);
  EXPECT_GT(exp.dropped_requests(), 100u);
}

TEST(FailoverTest, HealthyRunNeverFailsOver) {
  apps::rubis::RubisApp app;
  core::ExperimentSpec spec = failover_spec(true);
  spec.duration = sec(200);
  core::Experiment exp{app.driver(), spec, core::rubis_calibration()};
  exp.run();
  EXPECT_EQ(exp.failovers(), 0u);
  EXPECT_EQ(exp.dropped_requests(), 0u);
}

// --- staleness bound -------------------------------------------------------------------

TEST(StalenessBoundTest, BoundZeroNeverStallsWriter) {
  apps::rubis::RubisApp app;
  core::ExperimentSpec spec = failover_spec(true);
  spec.duration = sec(300);
  core::Experiment exp{app.driver(), spec, core::rubis_calibration()};
  exp.run();
  EXPECT_EQ(exp.runtime().bounded_waits(), 0u);
}

TEST(StalenessBoundTest, DescriptorCarriesTheBound) {
  // The §5 "relaxed consistency parameters should also go here" claim: the
  // bound travels in the extended deployment descriptor (see
  // descriptor_test.cpp for full round-trip coverage).
  comp::DeploymentPlan plan;
  plan.set_staleness_bound(3);
  EXPECT_EQ(plan.staleness_bound(), 3u);
}

}  // namespace
}  // namespace mutsvc

// Failure injection and the relaxed-consistency extension: link/node
// failures, entry-point failover, JMS redelivery, version-monotonic cache
// fills, and the TACT-style staleness bound.
#include <gtest/gtest.h>

#include <map>

#include "apps/petstore/petstore.hpp"
#include "apps/rubis/rubis.hpp"
#include "cache/read_only_cache.hpp"
#include "cache/update.hpp"
#include "messaging/coalescer.hpp"
#include "component/kind.hpp"
#include "component/runtime.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "db/database.hpp"
#include "messaging/topic.hpp"
#include "net/faults.hpp"
#include "net/network.hpp"
#include "net/resilience.hpp"
#include "net/rmi.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace mutsvc {
namespace {

using sim::Duration;
using sim::ms;
using sim::sec;
using sim::Simulator;
using sim::Task;

// --- topology failure primitives ----------------------------------------------

struct FailWorld {
  Simulator sim{1};
  net::Topology topo{sim};
  net::NodeId a, r, b;
  net::Network net{sim, topo, Duration::zero()};

  FailWorld() {
    a = topo.add_node("a", net::NodeRole::kAppServer);
    r = topo.add_node("r", net::NodeRole::kRouter);
    b = topo.add_node("b", net::NodeRole::kAppServer);
    topo.add_link(a, r, ms(10));
    topo.add_link(r, b, ms(10));
  }
};

TEST(FailureTest, LinkDownBreaksRoute) {
  FailWorld w;
  EXPECT_TRUE(w.topo.reachable(w.a, w.b));
  w.topo.set_link_state(w.r, w.b, false);
  EXPECT_FALSE(w.topo.reachable(w.a, w.b));
  EXPECT_TRUE(w.topo.reachable(w.a, w.r));
  EXPECT_THROW((void)w.topo.path(w.a, w.b), net::NoRouteError);
}

TEST(FailureTest, LinkRecoveryRestoresRoute) {
  FailWorld w;
  w.topo.set_link_state(w.r, w.b, false);
  w.topo.set_link_state(w.r, w.b, true);
  EXPECT_TRUE(w.topo.reachable(w.a, w.b));
  EXPECT_NEAR(w.topo.path_latency(w.a, w.b).as_millis(), 20.0, 0.01);
}

TEST(FailureTest, AlternatePathUsedWhenPrimaryDown) {
  FailWorld w;
  // Add a slower bypass a—b.
  w.topo.add_link(w.a, w.b, ms(50));
  EXPECT_NEAR(w.topo.path_latency(w.a, w.b).as_millis(), 20.0, 0.01);
  w.topo.set_link_state(w.a, w.r, false);
  EXPECT_NEAR(w.topo.path_latency(w.a, w.b).as_millis(), 50.0, 0.01);
}

TEST(FailureTest, NodeDownIsolatesIt) {
  FailWorld w;
  w.topo.set_node_state(w.r, false);
  EXPECT_FALSE(w.topo.reachable(w.a, w.b));
  EXPECT_FALSE(w.topo.reachable(w.a, w.r));
  w.topo.set_node_state(w.r, true);
  EXPECT_TRUE(w.topo.reachable(w.a, w.b));
}

TEST(FailureTest, SetStateOnMissingLinkThrows) {
  FailWorld w;
  EXPECT_THROW(w.topo.set_link_state(w.a, w.b, false), std::invalid_argument);
}

TEST(FailureTest, DeliverToPartitionedNodeThrows) {
  FailWorld w;
  w.topo.set_node_state(w.b, false);
  bool threw = false;
  w.sim.spawn([](FailWorld& w, bool& threw) -> Task<void> {
    try {
      co_await w.net.deliver(w.a, w.b, 100);
    } catch (const net::NoRouteError&) {
      threw = true;
    }
  }(w, threw));
  w.sim.run_until();
  EXPECT_TRUE(threw);
}

// --- JMS redelivery ---------------------------------------------------------------

TEST(FailureTest, TopicRedeliversAfterPartitionHeals) {
  FailWorld w;
  msg::Topic<int> topic{w.net, w.a, "updates", Duration::zero()};
  topic.set_retry_interval(ms(100));
  int received = 0;
  topic.subscribe(w.b, [&received](const int&) -> Task<void> {
    ++received;
    co_return;
  });

  w.topo.set_node_state(w.b, false);
  w.sim.spawn([](msg::Topic<int>& t, FailWorld& w) -> Task<void> {
    co_await t.publish(w.a, 1, 64);
  }(topic, w));
  w.sim.schedule_after(ms(450), [&] { w.topo.set_node_state(w.b, true); });
  w.sim.run_until();

  EXPECT_EQ(received, 1);
  EXPECT_GE(topic.delivery_retries(), 3u);
  EXPECT_TRUE(topic.quiescent());
}

// --- version-monotonic cache fills ---------------------------------------------------

TEST(CacheRaceTest, StalePullCannotClobberNewerPush) {
  cache::ReadOnlyCache c{"Item"};
  c.apply_push(1, db::Row{std::int64_t{1}, std::int64_t{99}}, /*version=*/5);
  // A pull refresh that started before the write commits arrives late with
  // version 4: it must be rejected.
  c.fill(1, db::Row{std::int64_t{1}, std::int64_t{11}}, /*version=*/4);
  auto entry = c.get(1);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(db::as_int(entry->row[1]), 99);
  EXPECT_EQ(c.stale_fills_rejected(), 1u);
}

TEST(CacheRaceTest, QueryCacheFillIsVersionMonotonic) {
  cache::QueryCache qc;
  qc.apply_push("k", {db::Row{std::int64_t{2}}}, 7);
  qc.fill("k", {db::Row{std::int64_t{1}}}, 3);
  auto entry = qc.get("k");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->version, 7u);
}

// --- end-to-end failover --------------------------------------------------------------

core::ExperimentSpec failover_spec(bool enabled) {
  core::ExperimentSpec spec;
  spec.level = core::ConfigLevel::kAsyncUpdates;
  spec.duration = sec(600);
  spec.warmup = sec(60);
  spec.failover_enabled = enabled;
  spec.failover_timeout = sec(2);
  return spec;
}

TEST(FailoverTest, EdgeCrashFailsOverToMainWithoutLosingRequests) {
  apps::rubis::RubisApp app;
  core::Experiment exp{app.driver(), failover_spec(true), core::rubis_calibration()};
  net::Topology& topo = exp.network().topology();
  const net::NodeId edge = exp.nodes().edge_servers[0];
  exp.simulator().schedule_at(sim::SimTime::origin() + sec(200),
                              [&topo, edge] { topo.set_node_state(edge, false); });
  exp.simulator().schedule_at(sim::SimTime::origin() + sec(400),
                              [&topo, edge] { topo.set_node_state(edge, true); });
  exp.run();

  EXPECT_GT(exp.failovers(), 100u);       // the affected group kept being served
  EXPECT_EQ(exp.dropped_requests(), 0u);  // nothing lost
  // The failed-over requests pay the connect timeout + WAN path, so the
  // remote mean sits well above the healthy async level but stays bounded.
  const double remote = exp.results().pattern_mean_ms("Browser", stats::ClientGroup::kRemote);
  EXPECT_GT(remote, 50.0);
  EXPECT_LT(remote, 2000.0);
}

TEST(FailoverTest, WithoutFailoverRequestsAreDropped) {
  apps::rubis::RubisApp app;
  core::Experiment exp{app.driver(), failover_spec(false), core::rubis_calibration()};
  net::Topology& topo = exp.network().topology();
  const net::NodeId edge = exp.nodes().edge_servers[0];
  exp.simulator().schedule_at(sim::SimTime::origin() + sec(200),
                              [&topo, edge] { topo.set_node_state(edge, false); });
  exp.run();
  EXPECT_EQ(exp.failovers(), 0u);
  EXPECT_GT(exp.dropped_requests(), 100u);
}

TEST(FailoverTest, HealthyRunNeverFailsOver) {
  apps::rubis::RubisApp app;
  core::ExperimentSpec spec = failover_spec(true);
  spec.duration = sec(200);
  core::Experiment exp{app.driver(), spec, core::rubis_calibration()};
  exp.run();
  EXPECT_EQ(exp.failovers(), 0u);
  EXPECT_EQ(exp.dropped_requests(), 0u);
}

// --- staleness bound -------------------------------------------------------------------

TEST(StalenessBoundTest, BoundZeroNeverStallsWriter) {
  apps::rubis::RubisApp app;
  core::ExperimentSpec spec = failover_spec(true);
  spec.duration = sec(300);
  core::Experiment exp{app.driver(), spec, core::rubis_calibration()};
  exp.run();
  EXPECT_EQ(exp.runtime().bounded_waits(), 0u);
}

TEST(StalenessBoundTest, DescriptorCarriesTheBound) {
  // The §5 "relaxed consistency parameters should also go here" claim: the
  // bound travels in the extended deployment descriptor (see
  // descriptor_test.cpp for full round-trip coverage).
  comp::DeploymentPlan plan;
  plan.set_staleness_bound(3);
  EXPECT_EQ(plan.staleness_bound(), 3u);
}

// --- circuit breaker ------------------------------------------------------------------

sim::SimTime at(double s) { return sim::SimTime::origin() + sim::Duration::seconds(s); }

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailures) {
  net::CircuitBreaker br{3, sec(5)};
  EXPECT_TRUE(br.allow(at(0)));
  br.on_failure(at(0));
  br.on_failure(at(1));
  EXPECT_EQ(br.state(), net::CircuitBreaker::State::kClosed);
  br.on_failure(at(2));
  EXPECT_EQ(br.state(), net::CircuitBreaker::State::kOpen);
  EXPECT_EQ(br.opened(), 1u);
  EXPECT_FALSE(br.allow(at(3)));
  EXPECT_TRUE(br.would_reject(at(3)));
  EXPECT_EQ(br.rejected(), 1u);
}

TEST(CircuitBreakerTest, SuccessResetsConsecutiveCount) {
  net::CircuitBreaker br{3, sec(5)};
  br.on_failure(at(0));
  br.on_failure(at(1));
  br.on_success(at(2));
  br.on_failure(at(3));
  br.on_failure(at(4));
  EXPECT_EQ(br.state(), net::CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenAdmitsSingleProbe) {
  net::CircuitBreaker br{1, sec(5)};
  br.on_failure(at(0));  // open until t=5
  EXPECT_FALSE(br.allow(at(4.9)));
  EXPECT_TRUE(br.allow(at(5.1)));  // the probe
  EXPECT_EQ(br.state(), net::CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(br.half_opened(), 1u);
  EXPECT_FALSE(br.allow(at(5.2)));  // probe in flight: everyone else waits
  br.on_success(at(5.3));
  EXPECT_EQ(br.state(), net::CircuitBreaker::State::kClosed);
  EXPECT_EQ(br.closed(), 1u);
  EXPECT_TRUE(br.allow(at(5.4)));
}

TEST(CircuitBreakerTest, FailedProbeReopens) {
  net::CircuitBreaker br{1, sec(5)};
  br.on_failure(at(0));
  EXPECT_TRUE(br.allow(at(6)));  // probe
  br.on_failure(at(6.1));
  EXPECT_EQ(br.state(), net::CircuitBreaker::State::kOpen);
  EXPECT_EQ(br.opened(), 2u);
  EXPECT_FALSE(br.allow(at(10)));   // new open window runs 6.1 .. 11.1
  EXPECT_TRUE(br.allow(at(11.2)));  // second probe
}

// --- fault injection: loss and accounting --------------------------------------------

TEST(FaultInjectionTest, LostMessageRaisesDeliveryErrorAndIsCounted) {
  FailWorld w;
  net::FaultPlan plan;
  plan.loss_prob = 1.0;
  net::FaultInjector inj{w.sim, w.topo, plan};
  w.net.set_fault_injector(&inj);

  bool threw = false;
  sim::SimTime done;
  w.sim.spawn([](FailWorld& w, bool& threw, sim::SimTime& done) -> Task<void> {
    try {
      co_await w.net.deliver(w.a, w.b, 1000);
    } catch (const net::DeliveryError&) {
      threw = true;
    }
    done = w.sim.now();
  }(w, threw, done));
  w.sim.run_until();

  EXPECT_TRUE(threw);
  // The loss surfaces only after the would-be transmission time of the
  // losing hop — never instantaneously.
  EXPECT_GT(done, sim::SimTime::origin());
  EXPECT_EQ(w.net.messages_sent(), 1u);  // lost messages still occupied the wire
  EXPECT_EQ(w.net.messages_lost(), 1u);
  EXPECT_EQ(w.net.bytes_lost(), 1000u);
}

TEST(FaultInjectionTest, NoRouteGeneratesNoTraffic) {
  FailWorld w;
  w.topo.set_node_state(w.b, false);
  bool threw = false;
  w.sim.spawn([](FailWorld& w, bool& threw) -> Task<void> {
    try {
      co_await w.net.deliver(w.a, w.b, 1000);
    } catch (const net::NoRouteError&) {
      threw = true;
    }
  }(w, threw));
  w.sim.run_until();
  EXPECT_TRUE(threw);
  EXPECT_EQ(w.net.messages_sent(), 0u);
  EXPECT_EQ(w.net.messages_lost(), 0u);
}

TEST(FaultInjectionTest, TopicRedeliversThroughMessageLoss) {
  FailWorld w;
  net::FaultPlan plan;
  plan.loss_prob = 1.0;  // silent loss, not a partition: drain must retry too
  net::FaultInjector inj{w.sim, w.topo, plan};
  w.net.set_fault_injector(&inj);

  msg::Topic<int> topic{w.net, w.a, "updates", Duration::zero()};
  topic.set_retry_interval(ms(100));
  int received = 0;
  topic.subscribe(w.b, [&received](const int&) -> Task<void> {
    ++received;
    co_return;
  });

  // Total loss for the first 450ms, lossless afterwards.
  w.sim.schedule_after(ms(450), [&w] { w.net.set_fault_injector(nullptr); });
  w.sim.spawn([](msg::Topic<int>& t, FailWorld& w) -> Task<void> {
    co_await t.publish(w.a, 7, 64);
  }(topic, w));
  w.sim.run_until();

  EXPECT_EQ(received, 1);
  EXPECT_GE(topic.delivery_retries(), 1u);
  EXPECT_TRUE(topic.quiescent());
}

// --- resilient RMI --------------------------------------------------------------------

TEST(ResilienceTest, RetryExhaustionOpensBreakerAndFastFails) {
  FailWorld w;
  net::FaultPlan plan;
  plan.loss_prob = 1.0;  // every message is lost
  net::FaultInjector inj{w.sim, w.topo, plan};
  w.net.set_fault_injector(&inj);

  net::RmiTransport rmi{w.net};
  net::ResilienceConfig res;
  res.enabled = true;
  res.max_retries = 2;
  res.call_timeout = ms(100);
  res.backoff_base = ms(10);
  res.breaker_failure_threshold = 3;
  rmi.set_resilience(res);

  int delivery_errors = 0;
  int circuit_rejections = 0;
  int server_runs = 0;
  w.sim.spawn([](FailWorld& w, net::RmiTransport& rmi, int& de, int& cr,
                 int& runs) -> Task<void> {
    for (int i = 0; i < 4; ++i) {
      bool threw_delivery = false;
      bool threw_open = false;
      try {
        co_await rmi.call(w.a, w.b, 100, 100, [&runs]() -> Task<void> {
          ++runs;
          co_return;
        });
      } catch (const net::CircuitOpenError&) {
        threw_open = true;
      } catch (const net::DeliveryError&) {
        threw_delivery = true;
      }
      if (threw_delivery) ++de;
      if (threw_open) ++cr;
    }
  }(w, rmi, delivery_errors, circuit_rejections, server_runs));
  w.sim.run_until();

  EXPECT_EQ(delivery_errors, 1);    // first call exhausts its 3 attempts
  EXPECT_EQ(circuit_rejections, 3);  // breaker opened: the rest fast-fail
  EXPECT_EQ(server_runs, 0);         // no request ever arrived
  EXPECT_EQ(rmi.retries(), 2u);
  EXPECT_EQ(rmi.timeouts(), 3u);
  EXPECT_EQ(rmi.failed_calls(), 1u);
  EXPECT_EQ(rmi.breaker_opens(), 1u);
  EXPECT_EQ(rmi.breaker_rejections(), 3u);
  EXPECT_TRUE(rmi.fast_fail(w.b));
}

TEST(ResilienceTest, RetrySucceedsAfterTransientLossWithoutRerunningServerWork) {
  FailWorld w;
  net::FaultPlan plan;
  plan.loss_prob = 1.0;
  net::FaultInjector inj{w.sim, w.topo, plan};
  w.net.set_fault_injector(&inj);

  net::RmiTransport rmi{w.net};
  net::ResilienceConfig res;
  res.enabled = true;
  res.max_retries = 5;
  res.call_timeout = ms(100);
  res.backoff_base = ms(10);
  res.breaker_failure_threshold = 100;  // keep the breaker out of this test
  rmi.set_resilience(res);

  // Loss stops after 250ms: the attempts underway then start succeeding.
  w.sim.schedule_after(ms(250), [&w] { w.net.set_fault_injector(nullptr); });

  int server_runs = 0;
  bool ok = false;
  w.sim.spawn([](FailWorld& w, net::RmiTransport& rmi, int& runs, bool& ok) -> Task<void> {
    co_await rmi.call(w.a, w.b, 100, 100, [&runs]() -> Task<void> {
      ++runs;
      co_return;
    });
    ok = true;
  }(w, rmi, server_runs, ok));
  w.sim.run_until();

  EXPECT_TRUE(ok);
  EXPECT_EQ(server_runs, 1);  // exactly-once across all retries
  EXPECT_GE(rmi.retries(), 1u);
  EXPECT_EQ(rmi.failed_calls(), 0u);
}

// --- graceful degradation (component runtime) -----------------------------------------

/// Main + one edge across a 50ms link; Facade runs at both, Item has an RO
/// replica at the edge.
struct DegradedWorld {
  Simulator sim{11};
  net::Topology topo{sim};
  net::NodeId main, edge;
  net::Network net{sim, topo, Duration::zero()};
  net::RmiTransport rmi{net, quiet_rmi()};
  std::unique_ptr<db::Database> db;
  comp::Application app{"degraded"};
  std::unique_ptr<comp::Runtime> rt;

  static net::RmiConfig quiet_rmi() {
    net::RmiConfig cfg;
    cfg.extra_rtt_prob = 0.0;
    cfg.dgc_traffic_factor = 1.0;
    return cfg;
  }

  static db::DbCostModel zero_db_cost() {
    db::DbCostModel m;
    m.pk_lookup = m.finder_base = m.aggregate_base = m.keyword_base = Duration::zero();
    m.finder_per_row = m.aggregate_per_row = m.keyword_per_row = Duration::zero();
    m.update = m.insert = m.del = Duration::zero();
    return m;
  }

  DegradedWorld() {
    main = topo.add_node("main", net::NodeRole::kAppServer);
    edge = topo.add_node("edge", net::NodeRole::kAppServer);
    topo.add_link(main, edge, ms(50), 100e6);

    net::ResilienceConfig res;
    res.enabled = true;
    res.max_retries = 1;
    res.call_timeout = ms(200);
    res.backoff_base = ms(10);
    res.breaker_failure_threshold = 2;
    res.breaker_open_for = sec(5);
    rmi.set_resilience(res);

    db = std::make_unique<db::Database>(topo, main, zero_db_cost());
    auto& items = db->create_table("item", {{"id", db::ColumnType::kInt},
                                            {"price", db::ColumnType::kReal}});
    items.insert(db::Row{std::int64_t{1}, 10.0});
    items.insert(db::Row{std::int64_t{2}, 20.0});

    auto& facade = app.define("Facade", comp::ComponentKind::kStatelessSessionBean);
    facade.method({.name = "get",
                   .cpu = Duration::zero(),
                   .body = [](comp::CallContext& ctx) -> Task<void> {
                     auto row = co_await ctx.read_entity("Item", ctx.arg_int(0));
                     if (row) ctx.result.push_back(*row);
                   }});
    facade.method({.name = "buy",
                   .cpu = Duration::zero(),
                   .body = [](comp::CallContext& ctx) -> Task<void> {
                     co_await ctx.write_entity("Item", ctx.arg_int(0), "price", 99.0);
                   }});

    comp::DeploymentPlan plan;
    plan.set_main_server(main);
    plan.add_edge_server(edge);
    plan.place("Facade", main);
    plan.place("Facade", edge);
    plan.enable(comp::Feature::kStatefulComponentCaching);
    plan.replicate_read_only("Item", edge);

    comp::RuntimeConfig cfg;
    cfg.local_dispatch = cfg.entity_access = cfg.cache_access = Duration::zero();
    cfg.apply_update = cfg.mdb_dispatch = cfg.jms_accept = Duration::zero();
    cfg.ro_ttl = ms(100);  // vendor-style expiry, so entries go stale
    rt = std::make_unique<comp::Runtime>(sim, topo, net, rmi, *db, app, std::move(plan), cfg);
    rt->bind_entity("Item", "item");
  }
};

TEST(DegradedModeTest, PartitionServesStaleReadsAndQueuesWrites) {
  DegradedWorld w;
  int read_rows = 0;
  bool write_ok = false;
  w.sim.spawn([](DegradedWorld& w, int& read_rows, bool& write_ok) -> Task<void> {
    // Warm the edge replica, then let the entry pass its TTL.
    (void)co_await w.rt->invoke(w.edge, "Facade", "get", std::int64_t{1});
    co_await w.sim.wait(ms(300));
    // Partition the edge from the master.
    w.topo.set_link_state(w.main, w.edge, false);
    // TTL-expired entry + unreachable master: the degraded read serves it.
    auto res = co_await w.rt->invoke(w.edge, "Facade", "get", std::int64_t{1});
    read_rows = static_cast<int>(res.rows.size());
    // A write accepted at the edge during the outage is queued.
    (void)co_await w.rt->invoke(w.edge, "Facade", "buy", std::int64_t{2});
    write_ok = true;
    // Heal; the queue drains to the master.
    co_await w.sim.wait(sec(3));
    w.topo.set_link_state(w.main, w.edge, true);
  }(w, read_rows, write_ok));
  w.sim.run_until();

  EXPECT_EQ(read_rows, 1);
  EXPECT_TRUE(write_ok);
  EXPECT_GE(w.rt->degraded_reads(), 1u);
  EXPECT_EQ(w.rt->queued_writes(), 1u);
  EXPECT_EQ(w.rt->queued_writes_applied(), 1u);
  EXPECT_EQ(w.rt->queued_writes_dropped(), 0u);
  EXPECT_TRUE(w.rt->write_queues_quiescent());
  // The queued write reached the master's table.
  auto row = w.db->table("item").get(2);
  ASSERT_TRUE(row.has_value());
  EXPECT_DOUBLE_EQ(db::as_real((*row)[1]), 99.0);
}

// --- fault-plan driven experiments ----------------------------------------------------

net::NodeId probe_edge_node() {
  // Testbed construction is deterministic: learn the edge's NodeId from a
  // throwaway instance so a FaultPlan can reference it.
  apps::rubis::RubisApp app;
  core::Experiment probe{app.driver(), failover_spec(true), core::rubis_calibration()};
  return probe.nodes().edge_servers[0];
}

TEST(FaultPlanTest, CrashRestartRewarmsEdgeCaches) {
  const net::NodeId edge = probe_edge_node();
  apps::rubis::RubisApp app;
  core::ExperimentSpec spec = failover_spec(true);
  spec.duration = sec(400);
  spec.fault_plan.crashes.push_back(net::FaultPlan::NodeCrash{edge, sec(150), sec(60)});
  spec.resilience.enabled = true;
  core::Experiment exp{app.driver(), spec, core::rubis_calibration()};
  exp.run();

  ASSERT_NE(exp.fault_injector(), nullptr);
  EXPECT_EQ(exp.fault_injector()->crashes(), 1u);
  EXPECT_EQ(exp.fault_injector()->restarts(), 1u);
  EXPECT_EQ(exp.runtime().cache_rewarms(), 1u);
  // Failover kept the affected group served while the edge was down.
  EXPECT_GT(exp.failovers(), 0u);
  EXPECT_GT(exp.results().success_fraction(), 0.99);
}

struct RunNumbers {
  double success = 0.0;
  std::uint64_t failures = 0;
  std::uint64_t lost = 0;
  std::uint64_t retries = 0;
  std::uint64_t degraded = 0;
  double remote_browser_ms = 0.0;
};

RunNumbers lossy_run(double loss, bool resilient, std::uint64_t seed = 42) {
  apps::rubis::RubisApp app;
  core::ExperimentSpec spec = failover_spec(true);
  spec.duration = sec(300);
  spec.warmup = sec(60);
  spec.seed = seed;
  spec.fault_plan.loss_prob = loss;
  spec.resilience.enabled = resilient;
  core::Experiment exp{app.driver(), spec, core::rubis_calibration()};
  exp.run();
  RunNumbers n;
  n.success = exp.results().success_fraction();
  n.failures = exp.results().failures();
  n.lost = exp.network().messages_lost();
  n.retries = exp.rmi().retries();
  n.degraded = exp.runtime().degraded_reads();
  n.remote_browser_ms = exp.results().pattern_mean_ms("Browser", stats::ClientGroup::kRemote);
  return n;
}

TEST(FaultPlanTest, ResilienceKeepsSuccessHighUnderLoss) {
  RunNumbers on = lossy_run(0.02, true);
  RunNumbers off = lossy_run(0.02, false);
  EXPECT_GT(on.success, 0.99);
  EXPECT_LT(off.success, on.success);  // resilience-off is measurably worse
  EXPECT_GT(on.retries, 0u);
  EXPECT_GT(on.lost, 0u);
}

TEST(FaultPlanTest, IdenticalSeedsProduceIdenticalRuns) {
  RunNumbers a = lossy_run(0.02, true, 7);
  RunNumbers b = lossy_run(0.02, true, 7);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.lost, b.lost);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_DOUBLE_EQ(a.success, b.success);
  EXPECT_DOUBLE_EQ(a.remote_browser_ms, b.remote_browser_ms);
}

// --- coalescing × version-monotonic pushes -----------------------------------

TEST(CoalescingFaultTest, PartitionNeverRollsReplicaBackOrDropsFinalState) {
  // A Coalescer feeding a JMS topic whose subscriber is partitioned
  // mid-stream: batches pile up and merge while redelivery retries, and
  // once the partition heals the replica must hold every key's newest
  // version, having only ever moved forward (PR-5's version-monotonic
  // apply_push composed with the version-LWW merge).
  FailWorld w;
  msg::Topic<cache::UpdateBatch> topic{w.net, w.a, "updates", Duration::zero()};
  topic.set_retry_interval(ms(100));

  cache::ReadOnlyCache replica{"Item"};
  std::map<std::int64_t, std::uint64_t> applied_floor;  // monotonicity watch
  bool rolled_back = false;
  topic.subscribe(w.b, [&](const cache::UpdateBatch& batch) -> Task<void> {
    for (const cache::EntityUpdate& e : batch.entities) {
      replica.apply_push(e.pk, e.row, e.version);
      const std::uint64_t now_at = replica.get(e.pk)->version;
      if (now_at < applied_floor[e.pk]) rolled_back = true;
      applied_floor[e.pk] = now_at;
    }
    co_return;
  });

  msg::Coalescer<cache::UpdateBatch> co{
      w.sim, /*lanes=*/1, /*quantum=*/ms(50), cache::merge_into,
      [&](std::size_t, cache::UpdateBatch merged) -> Task<void> {
        co_await topic.publish(w.a, std::move(merged), 256);
      }};

  // 30 writes, 20ms apart, round-robin over three keys, versions 1..30.
  std::map<std::int64_t, cache::EntityUpdate> newest;
  w.sim.spawn([](sim::Simulator& sim, msg::Coalescer<cache::UpdateBatch>& co,
                 std::map<std::int64_t, cache::EntityUpdate>& newest) -> Task<void> {
    for (std::uint64_t v = 1; v <= 30; ++v) {
      co_await sim.wait(ms(20));
      const std::int64_t pk = 1 + static_cast<std::int64_t>(v % 3);
      cache::EntityUpdate e{"Item", pk, db::Row{pk, static_cast<double>(v)}, v};
      newest[pk] = e;
      co.enqueue(0, cache::UpdateBatch{{std::move(e)}, {}});
    }
  }(w.sim, co, newest));

  // Partition the subscriber through the middle of the write stream.
  w.sim.schedule_after(ms(200), [&] { w.topo.set_node_state(w.b, false); });
  w.sim.schedule_after(ms(700), [&] { w.topo.set_node_state(w.b, true); });
  w.sim.run_until();

  EXPECT_FALSE(rolled_back);
  EXPECT_TRUE(co.idle());
  EXPECT_TRUE(topic.quiescent());
  EXPECT_GT(topic.delivery_retries(), 0u);
  // Coalescing actually batched: 30 enqueues became fewer flushes, with
  // merges absorbing the writes buffered behind the partition.
  EXPECT_EQ(co.enqueued(), 30u);
  EXPECT_LT(co.flushes(), co.enqueued());
  EXPECT_GT(co.merges(), 0u);
  // No dropped final state: the replica holds each key's newest version.
  for (const auto& [pk, e] : newest) {
    auto entry = replica.get(pk);
    ASSERT_TRUE(entry.has_value()) << "pk " << pk;
    EXPECT_EQ(entry->version, e.version) << "pk " << pk;
    EXPECT_EQ(entry->row, e.row) << "pk " << pk;
  }
}

TEST(CoalescingFaultTest, FailedFlushRemergesAndRedeliversNewestState) {
  // A flush that throws (lost message surfacing as a delivery error) must
  // re-merge its batch with anything enqueued meanwhile — the retried
  // flush carries the *newest* per-key state and nothing is lost.
  sim::Simulator sim{1};
  int failures_to_inject = 2;
  std::map<std::int64_t, cache::EntityUpdate> delivered;
  msg::Coalescer<cache::UpdateBatch> co{
      sim, /*lanes=*/1, /*quantum=*/ms(10), cache::merge_into,
      [&](std::size_t, cache::UpdateBatch merged) -> Task<void> {
        if (failures_to_inject > 0) {
          --failures_to_inject;
          throw net::NetError{"injected flush loss"};
        }
        for (const cache::EntityUpdate& e : merged.entities) delivered[e.pk] = e;
        co_return;
      }};

  sim.spawn([](sim::Simulator& sim, msg::Coalescer<cache::UpdateBatch>& co) -> Task<void> {
    for (std::uint64_t v = 1; v <= 6; ++v) {
      cache::EntityUpdate e{"Item", 1, db::Row{std::int64_t{1}, static_cast<double>(v)}, v};
      co.enqueue(0, cache::UpdateBatch{{std::move(e)}, {}});
      co_await sim.wait(ms(7));  // straddles quantum boundaries
    }
  }(sim, co));
  sim.run_until();

  EXPECT_EQ(co.flush_failures(), 2u);
  EXPECT_TRUE(co.idle());
  ASSERT_TRUE(delivered.contains(1));
  EXPECT_EQ(delivered[1].version, 6u);  // final state survived both losses
  EXPECT_DOUBLE_EQ(db::as_real(delivered[1].row[1]), 6.0);
}

TEST(CoalescingFaultTest, ShardedCoalescedRunConvergesEdgeReplicasUnderLoss) {
  // End to end: async updates + 3 shards + 20ms coalescing under 2% message
  // loss with the resilience layer on. After the run drains, every edge
  // replica entry must equal the master database's row — coalescing plus
  // loss plus redelivery dropped no final state and rolled nothing back.
  apps::petstore::PetStoreApp app;
  core::ExperimentSpec spec;
  spec.level = core::ConfigLevel::kAsyncUpdates;
  spec.shard.shards = 3;
  spec.shard.coalesce_quantum = ms(20);
  spec.duration = sec(300);
  spec.warmup = sec(60);
  spec.fault_plan.loss_prob = 0.02;
  spec.resilience.enabled = true;
  core::Experiment exp{app.driver(), spec, core::petstore_calibration()};
  exp.run();
  // run() stops at the load end; give in-flight coalesced batches and JMS
  // redeliveries time to drain before checking convergence.
  (void)exp.simulator().run_until(sim::SimTime::origin() + spec.duration + sec(60));

  EXPECT_TRUE(exp.runtime().updates_quiescent());
  ASSERT_NE(exp.runtime().coalescer(), nullptr);
  EXPECT_GT(exp.runtime().coalescer()->flushes(), 0u);
  EXPECT_LE(exp.runtime().coalescer()->flushes(), exp.runtime().coalescer()->enqueued());
  EXPECT_GT(exp.network().messages_lost(), 0u);
  EXPECT_GT(exp.results().success_fraction(), 0.99);

  const std::vector<db::Row> master =
      exp.database().table("inventory").scan([](const db::Row&) { return true; });
  ASSERT_FALSE(master.empty());
  std::size_t compared = 0;
  for (net::NodeId edge : exp.nodes().edge_servers) {
    cache::ReadOnlyCache& replica = exp.runtime().ro_cache(edge, "Inventory");
    for (const db::Row& row : master) {
      auto entry = replica.get(db::as_int(row[0]));
      if (!entry.has_value()) continue;  // never read or pushed at this edge
      ++compared;
      EXPECT_EQ(entry->row, row) << "edge " << edge.value() << " pk " << db::as_int(row[0]);
    }
  }
  EXPECT_GT(compared, 0u);  // the battery actually compared something
}

}  // namespace
}  // namespace mutsvc

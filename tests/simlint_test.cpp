// simlint rule coverage: each determinism / coroutine-hazard rule must
// catch its deliberately-buggy fixture and stay quiet on the idiomatic
// equivalent; the suppression syntax must work at line and file scope.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "simlint/lint.hpp"

namespace {

using simlint::Finding;
using simlint::lint_source;

std::size_t count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

int line_of(const std::vector<Finding>& findings, const std::string& rule) {
  for (const Finding& f : findings) {
    if (f.rule == rule) return f.line;
  }
  return -1;
}

// --- wall-clock ----------------------------------------------------------------

TEST(SimlintWallClock, FlagsSystemClockOutsideSimTime) {
  const auto f = lint_source("src/apps/foo.cpp",
                             "auto t = std::chrono::system_clock::now();\n");
  EXPECT_EQ(count_rule(f, "wall-clock"), 1u);
  EXPECT_EQ(f[0].line, 1);
}

TEST(SimlintWallClock, ExemptsSimTimeHeader) {
  const auto f = lint_source("src/sim/time.hpp", "using clk = std::chrono::steady_clock;\n");
  EXPECT_EQ(count_rule(f, "wall-clock"), 0u);
}

TEST(SimlintWallClock, IgnoresTokensInStringsAndComments) {
  const auto f = lint_source("src/a.cpp",
                             "// system_clock is banned\n"
                             "const char* s = \"steady_clock\";\n");
  EXPECT_EQ(count_rule(f, "wall-clock"), 0u);
}

// --- raw-random ----------------------------------------------------------------

TEST(SimlintRawRandom, FlagsRandomDeviceAndRand) {
  const auto f = lint_source("src/a.cpp",
                             "std::random_device rd;\n"
                             "int x = rand();\n"
                             "std::mt19937 gen(42);\n");
  EXPECT_EQ(count_rule(f, "raw-random"), 3u);
}

TEST(SimlintRawRandom, ExemptsSimRandomHeader) {
  const auto f = lint_source("src/sim/random.hpp", "std::mt19937_64 engine_;\n");
  EXPECT_EQ(count_rule(f, "raw-random"), 0u);
}

TEST(SimlintRawRandom, WordBoundaryPreventsFalsePositives) {
  // "strand()" contains "rand(" but is not a call to rand.
  const auto f = lint_source("src/a.cpp", "io.strand();\nint operand(int);\n");
  EXPECT_EQ(count_rule(f, "raw-random"), 0u);
}

// --- unordered-iter ------------------------------------------------------------

TEST(SimlintUnorderedIter, FlagsRangeForOverUnorderedMember) {
  const auto f = lint_source("src/a.hpp",
                             "std::unordered_map<std::string, int> counts_;\n"
                             "void dump() {\n"
                             "  for (const auto& [k, v] : counts_) {\n"
                             "  }\n"
                             "}\n");
  EXPECT_EQ(count_rule(f, "unordered-iter"), 1u);
  EXPECT_EQ(line_of(f, "unordered-iter"), 3);
}

TEST(SimlintUnorderedIter, FlagsIteratorLoop) {
  const auto f = lint_source("src/a.hpp",
                             "std::unordered_set<int> live_;\n"
                             "void sweep() {\n"
                             "  for (auto it = live_.begin(); it != live_.end();) {\n"
                             "  }\n"
                             "}\n");
  EXPECT_EQ(count_rule(f, "unordered-iter"), 1u);
}

TEST(SimlintUnorderedIter, OrderedMapIsFine) {
  const auto f = lint_source("src/a.hpp",
                             "std::map<std::string, int> counts_;\n"
                             "void dump() {\n"
                             "  for (const auto& [k, v] : counts_) {\n"
                             "  }\n"
                             "}\n");
  EXPECT_EQ(count_rule(f, "unordered-iter"), 0u);
}

TEST(SimlintUnorderedIter, LookupsAreFine) {
  const auto f = lint_source("src/a.hpp",
                             "std::unordered_map<std::string, int> counts_;\n"
                             "int get(const std::string& k) { return counts_.at(k); }\n");
  EXPECT_EQ(count_rule(f, "unordered-iter"), 0u);
}

// --- lost-task -----------------------------------------------------------------

TEST(SimlintLostTask, FlagsTaskNeverAwaited) {
  const auto f = lint_source("src/a.cpp",
                             "sim::Task<void> run() {\n"
                             "  sim::Task<void> t = step();\n"
                             "  co_return;\n"
                             "}\n");
  EXPECT_EQ(count_rule(f, "lost-task"), 1u);
  EXPECT_EQ(line_of(f, "lost-task"), 2);
}

TEST(SimlintLostTask, AwaitedTaskIsFine) {
  const auto f = lint_source("src/a.cpp",
                             "sim::Task<void> run() {\n"
                             "  sim::Task<void> t = step();\n"
                             "  co_await t;\n"
                             "}\n");
  EXPECT_EQ(count_rule(f, "lost-task"), 0u);
}

TEST(SimlintLostTask, MovedOrSpawnedTaskIsFine) {
  const auto moved = lint_source("src/a.cpp",
                                 "void run() {\n"
                                 "  sim::Task<void> t = step();\n"
                                 "  sim.spawn(std::move(t));\n"
                                 "}\n");
  EXPECT_EQ(count_rule(moved, "lost-task"), 0u);
  const auto released = lint_source("src/b.cpp",
                                    "void run() {\n"
                                    "  sim::Task<void> t = step();\n"
                                    "  auto h = t.release();\n"
                                    "}\n");
  EXPECT_EQ(count_rule(released, "lost-task"), 0u);
}

// --- lock-balance --------------------------------------------------------------

TEST(SimlintLockBalance, FlagsAcquireWithoutAnyRelease) {
  const auto f = lint_source("src/a.cpp",
                             "sim::Task<void> f(sim::SimMutex& m) {\n"
                             "  co_await m.acquire();\n"
                             "  co_return;\n"
                             "}\n");
  EXPECT_EQ(count_rule(f, "lock-balance"), 1u);
  EXPECT_EQ(line_of(f, "lock-balance"), 2);
}

TEST(SimlintLockBalance, BalancedFileIsFine) {
  const auto f = lint_source("src/a.cpp",
                             "sim::Task<void> f(sim::SimMutex& m) {\n"
                             "  co_await m.acquire();\n"
                             "  m.release();\n"
                             "}\n");
  EXPECT_EQ(count_rule(f, "lock-balance"), 0u);
}

// --- nodiscard-task ------------------------------------------------------------

TEST(SimlintNodiscardTask, FlagsUnattributedDeclaration) {
  const auto f = lint_source("src/a.hpp", "sim::Task<void> refresh(int pk);\n");
  EXPECT_EQ(count_rule(f, "nodiscard-task"), 1u);
}

TEST(SimlintNodiscardTask, AttributedDeclarationIsFine) {
  const auto same = lint_source("src/a.hpp", "[[nodiscard]] sim::Task<void> refresh(int pk);\n");
  EXPECT_EQ(count_rule(same, "nodiscard-task"), 0u);
  const auto prev = lint_source("src/b.hpp",
                                "[[nodiscard]]\n"
                                "sim::Task<void> refresh(int pk);\n");
  EXPECT_EQ(count_rule(prev, "nodiscard-task"), 0u);
}

TEST(SimlintNodiscardTask, SkipsLambdaReturnTypesAndOutOfLineDefinitions) {
  const auto lambda = lint_source("src/a.cpp", "auto f = [&]() -> sim::Task<int> { co_return 1; };\n");
  EXPECT_EQ(count_rule(lambda, "nodiscard-task"), 0u);
  const auto defn = lint_source("src/b.cpp", "sim::Task<void> Runtime::push(int x) {\n}\n");
  EXPECT_EQ(count_rule(defn, "nodiscard-task"), 0u);
}

// --- sim-shared-across-threads -------------------------------------------------

TEST(SimlintSimSharedAcrossThreads, FlagsThreadsNextToSimulator) {
  const auto f = lint_source("src/core/bad.cpp",
                             "void run(sim::Simulator& s) {\n"
                             "  std::thread t([&] { s.run_until(end); });\n"
                             "  t.join();\n"
                             "}\n");
  EXPECT_EQ(count_rule(f, "sim-shared-across-threads"), 1u);
  EXPECT_EQ(line_of(f, "sim-shared-across-threads"), 2);
}

TEST(SimlintSimSharedAcrossThreads, FlagsJthreadToo) {
  const auto f = lint_source("src/core/bad.cpp",
                             "#include \"sim/simulator.hpp\"\n"
                             "sim::Simulator s(1);\n"
                             "std::jthread worker;\n");
  EXPECT_EQ(count_rule(f, "sim-shared-across-threads"), 1u);
}

TEST(SimlintSimSharedAcrossThreads, ThreadsWithoutSimulatorAreFine) {
  const auto f = lint_source("tools/misc.cpp",
                             "void fanout() {\n"
                             "  std::thread t([] {});\n"
                             "  t.join();\n"
                             "}\n");
  EXPECT_EQ(count_rule(f, "sim-shared-across-threads"), 0u);
}

TEST(SimlintSimSharedAcrossThreads, SimulatorWithoutThreadsIsFine) {
  const auto f = lint_source("src/core/fine.cpp",
                             "sim::Simulator s(1);\n"
                             "s.run_until(sim::SimTime::origin());\n");
  EXPECT_EQ(count_rule(f, "sim-shared-across-threads"), 0u);
}

TEST(SimlintSimSharedAcrossThreads, SuppressibleWhereJustified) {
  const auto f = lint_source("src/core/sweep.cpp",
                             "sim::Simulator* owned_by_trial;\n"
                             "// simlint:allow(sim-shared-across-threads)\n"
                             "std::vector<std::thread> pool;\n");
  EXPECT_EQ(count_rule(f, "sim-shared-across-threads"), 0u);
}

// --- raw string blanking -------------------------------------------------------

TEST(SimlintRawString, BannedTokensInsideRawStringsAreBlanked) {
  const auto f = lint_source("src/a.cpp",
                             "const char* q = R\"(select rand() from system_clock)\";\n");
  EXPECT_EQ(f.size(), 0u);
}

TEST(SimlintRawString, MultiLineRawStringIsBlanked) {
  const auto f = lint_source("src/a.cpp",
                             "const char* q = R\"sql(\n"
                             "  std::mt19937 gen;  // not code\n"
                             "  gettimeofday(now)\n"
                             ")sql\";\n"
                             "int x = rand();\n");
  EXPECT_EQ(count_rule(f, "raw-random"), 1u);
  EXPECT_EQ(line_of(f, "raw-random"), 5);
  EXPECT_EQ(count_rule(f, "wall-clock"), 0u);
}

TEST(SimlintRawString, EncodingPrefixedRawStringsAreBlanked) {
  // u8R"(...)" / LR"(...)" must enter the raw-string state; falling into
  // the plain-string state mishandles the embedded quote and leaks the
  // tail into scanned code.
  const auto f = lint_source("src/a.cpp",
                             "auto a = u8R\"(quote \" then rand())\";\n"
                             "auto b = LR\"(backslash \\ then mt19937)\";\n"
                             "auto c = uR\"(steady_clock)\";\n"
                             "auto d = UR\"(random_device)\";\n");
  EXPECT_EQ(count_rule(f, "raw-random"), 0u);
  EXPECT_EQ(count_rule(f, "wall-clock"), 0u);
}

TEST(SimlintRawString, IdentifierEndingInRIsNotARawString) {
  // `fooR"..."` is an identifier adjacent to a plain string, not a raw
  // string: the contents must still be blanked as a plain string.
  const auto f = lint_source("src/a.cpp", "auto s = fooR\"rand()\";\nint y = rand();\n");
  EXPECT_EQ(count_rule(f, "raw-random"), 1u);
  EXPECT_EQ(line_of(f, "raw-random"), 2);
}

// --- cross-node-state ----------------------------------------------------------

TEST(SimlintCrossNodeState, FlagsDirectContainerAccessInComponentCode) {
  const auto f = lint_source("src/component/runtime.cpp",
                             "void f() {\n"
                             "  auto it = ro_caches_.find(key);\n"
                             "  jdbc_clients_[node]->query(q);\n"
                             "  write_queues_->front();\n"
                             "}\n");
  EXPECT_EQ(count_rule(f, "cross-node-state"), 3u);
}

TEST(SimlintCrossNodeState, DeclarationsAndOtherDirsAreFine) {
  // Declaring the member is fine; only subscripts / member calls reach in.
  const auto decl = lint_source("src/component/runtime.hpp",
                                "std::map<Key, CachePtr> ro_caches_;\n");
  EXPECT_EQ(count_rule(decl, "cross-node-state"), 0u);
  // Outside component/cache/db the rule does not apply.
  const auto other = lint_source("src/core/experiment.cpp",
                                 "auto it = ro_caches_.find(key);\n");
  EXPECT_EQ(count_rule(other, "cross-node-state"), 0u);
}

TEST(SimlintCrossNodeState, WholeIdentifierMatchOnly) {
  const auto f = lint_source("src/cache/rocache.cpp",
                             "int caches_x = 0;\n"
                             "caches_x.foo();\n");
  EXPECT_EQ(count_rule(f, "cross-node-state"), 0u);
}

// --- ambient-node-capture ------------------------------------------------------

TEST(SimlintAmbientNodeCapture, FlagsDefaultRefCaptureInDeferredWork) {
  const auto f = lint_source("src/component/runtime.cpp",
                             "void f(sim::Simulator& sim) {\n"
                             "  sim.spawn(run([&] { touch(other_node); }));\n"
                             "  sim.schedule_after(d, [&] { tick(); });\n"
                             "}\n");
  EXPECT_EQ(count_rule(f, "ambient-node-capture"), 2u);
}

TEST(SimlintAmbientNodeCapture, ExplicitCapturesAndTestsAreFine) {
  const auto expl = lint_source("src/component/runtime.cpp",
                                "sim.schedule_after(d, [this, node] { tick(node); });\n");
  EXPECT_EQ(count_rule(expl, "ambient-node-capture"), 0u);
  // Tests run a single simulation whose lambdas outlive the run.
  const auto test = lint_source("tests/foo_test.cpp",
                                "sim.schedule_after(ms(10), [&] { ++fired; });\n");
  EXPECT_EQ(count_rule(test, "ambient-node-capture"), 0u);
}

TEST(SimlintAmbientNodeCapture, NonDeferredLambdasAreFine) {
  const auto f = lint_source("src/core/report.cpp",
                             "std::sort(v.begin(), v.end(), [&](int a, int b) { return a < b; });\n");
  EXPECT_EQ(count_rule(f, "ambient-node-capture"), 0u);
}

// --- global-mutable ------------------------------------------------------------

TEST(SimlintGlobalMutable, FlagsNamespaceScopeMutables) {
  const auto f = lint_source("src/core/bad.cpp",
                             "namespace mutsvc::core {\n"
                             "int g_counter = 0;\n"
                             "std::atomic<bool> g_flag{false};\n"
                             "static double g_rate;\n"
                             "}\n");
  EXPECT_EQ(count_rule(f, "global-mutable"), 3u);
}

TEST(SimlintGlobalMutable, ConstAndFunctionsAndLocalsAreFine) {
  const auto f = lint_source("src/core/fine.cpp",
                             "namespace mutsvc::core {\n"
                             "constexpr int kLimit = 8;\n"
                             "const char* const kName = \"x\";\n"
                             "int bump();\n"
                             "int bump() {\n"
                             "  static int local = 0;\n"
                             "  return ++local;\n"
                             "}\n"
                             "struct S { int member = 0; };\n"
                             "using Alias = int;\n"
                             "}\n");
  EXPECT_EQ(count_rule(f, "global-mutable"), 0u);
}

TEST(SimlintGlobalMutable, SimDirAndNonSrcAreExempt) {
  const auto sim = lint_source("src/sim/simcheck.cpp",
                               "namespace d {\nstd::atomic<bool> g_enabled{false};\n}\n");
  EXPECT_EQ(count_rule(sim, "global-mutable"), 0u);
  const auto test = lint_source("tests/foo_test.cpp", "int g_seen = 0;\n");
  EXPECT_EQ(count_rule(test, "global-mutable"), 0u);
}

TEST(SimlintGlobalMutable, ReportsDeclarationLine) {
  const auto f = lint_source("src/core/bad.cpp",
                             "namespace a {\n"
                             "namespace b {\n"
                             "\n"
                             "long g_total = 0;\n"
                             "}\n"
                             "}\n");
  ASSERT_EQ(count_rule(f, "global-mutable"), 1u);
  EXPECT_EQ(line_of(f, "global-mutable"), 4);
  EXPECT_NE(f[0].message.find("g_total"), std::string::npos);
}

// --- suppressions --------------------------------------------------------------

TEST(SimlintSuppression, SameLineAllow) {
  const auto f = lint_source("src/a.cpp", "int x = rand();  // simlint:allow(raw-random)\n");
  EXPECT_EQ(count_rule(f, "raw-random"), 0u);
}

TEST(SimlintSuppression, PrecedingLineAllow) {
  const auto f = lint_source("src/a.cpp",
                             "// simlint:allow(raw-random)\n"
                             "int x = rand();\n");
  EXPECT_EQ(count_rule(f, "raw-random"), 0u);
}

TEST(SimlintSuppression, AllowOnlySilencesNamedRule) {
  const auto f = lint_source("src/a.cpp",
                             "// simlint:allow(wall-clock)\n"
                             "int x = rand();\n");
  EXPECT_EQ(count_rule(f, "raw-random"), 1u);
}

TEST(SimlintSuppression, FileWideAllow) {
  const auto f = lint_source("src/a.cpp",
                             "// simlint:allow-file(raw-random)\n"
                             "int x = rand();\n"
                             "int y = rand();\n");
  EXPECT_EQ(count_rule(f, "raw-random"), 0u);
}

// --- output formats ------------------------------------------------------------

TEST(SimlintOutput, JsonReportIsVersionedMachineReadable) {
  const auto f = lint_source("src/a.cpp", "int x = rand();\n");
  std::ostringstream os;
  simlint::print_json(os, f);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"schema\": \"simlint-v2\""), std::string::npos);
  EXPECT_NE(out.find("\"rule\": \"raw-random\""), std::string::npos);
  EXPECT_NE(out.find("\"line\": 1"), std::string::npos);
  EXPECT_EQ(out.front(), '{');
}

TEST(SimlintOutput, EmptyJsonReportStillCarriesSchema) {
  std::ostringstream os;
  simlint::print_json(os, {});
  EXPECT_NE(os.str().find("\"schema\": \"simlint-v2\""), std::string::npos);
  EXPECT_NE(os.str().find("\"findings\": []"), std::string::npos);
}

TEST(SimlintOutput, FixSuppressionsPrintsExactAllowLine) {
  // Write a real file: the dry run re-reads the source to echo the line.
  const std::string path = testing::TempDir() + "/simlint_fix_src.cpp";
  {
    std::ofstream out(path);
    out << "int x = rand();\n";
  }
  // Two rules on one line must merge into a single allow comment.
  std::vector<Finding> findings = {{path, 1, "raw-random", "m"}, {path, 1, "wall-clock", "m"}};
  std::ostringstream os;
  simlint::print_fix_suppressions(os, findings);
  const std::string out = os.str();
  EXPECT_NE(out.find(path + ":1:"), std::string::npos);
  EXPECT_NE(out.find("- int x = rand();"), std::string::npos);
  EXPECT_NE(out.find("+ int x = rand();  // simlint:allow(raw-random,wall-clock)"),
            std::string::npos);
}

TEST(SimlintOutput, RuleListingIsComplete) {
  const auto& rules = simlint::rules();
  EXPECT_EQ(rules.size(), 10u);
}

}  // namespace
